// Package repro is a from-scratch Go reproduction of "phpSAFE: A Security
// Analysis Tool for OOP Web Application Plugins" (Nunes, Fonseca, Vieira —
// DSN 2015).
//
// The repository contains the complete system the paper describes and
// everything its evaluation depends on:
//
//   - internal/phplex, internal/phpparse, internal/phpast: a PHP 5 lexer,
//     parser and AST (the substrate PHP's token_get_all provides in the
//     original).
//   - internal/taint: phpSAFE itself — a configuration-driven,
//     OOP-aware, summary-based taint analyzer for XSS and SQLi.
//   - internal/rips, internal/pixy: faithful reimplementations of the two
//     comparison baselines with their documented capability envelopes.
//   - internal/config, internal/wordpress: the generic-PHP and WordPress
//     configuration profiles (sources, sanitizers, reverts, sinks).
//   - internal/corpus: a deterministic generator for the 35-plugin,
//     two-version evaluation corpus with machine-readable ground truth.
//   - internal/eval, internal/report: the evaluation harness and the
//     renderers for the paper's Table I, Fig. 2, Table II, §V.D and
//     Table III.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section; see EXPERIMENTS.md for paper-vs-measured
// results and README.md for usage.
package repro
