package phplex

// Version is the lexer's model fingerprint. It participates in the
// incremental-analysis cache key (internal/incremental), so any change to
// the token taxonomy or to how source text is split into tokens must bump
// it: artifacts derived from an older lexical model would otherwise be
// replayed against ASTs the current lexer would no longer produce.
const Version = "phplex-1"
