package phplex

import (
	"sync"

	"repro/internal/phptoken"
)

// Allocation diet for the per-file hot path. Token values are already
// zero-copy: every Token.Text is a substring of the scanned source, so
// the source string itself is the per-scan arena and lexing a file
// allocates nothing per token beyond the slice that holds the stream.
// This file removes the remaining per-file garbage: the token slices
// are pooled (a scan lexes hundreds of files one after another and the
// parser is done with the stream as soon as the AST is built), and
// identifier case-folding gets an ASCII fast path plus an intern table
// so each distinct lowercase name is materialized once per scan instead
// of once per reference.

// tokenBufPool recycles token-stream backing arrays across files. Safe
// because Token fields are value types and substrings of the source:
// nothing retained from a parse aliases the slice's backing array.
var tokenBufPool sync.Pool

// getTokenBuf returns an empty token slice, reusing a pooled backing
// array when one is available.
func getTokenBuf(capHint int) []phptoken.Token {
	if v := tokenBufPool.Get(); v != nil {
		return (*(v.(*[]phptoken.Token)))[:0]
	}
	return make([]phptoken.Token, 0, capHint)
}

// PutTokens hands a token stream obtained from TokenizeCode,
// TokenizeCodeObserved or TokenizeCodeGoverned back to the pool. The
// caller must not touch the slice afterwards. Putting a slice that was
// not obtained from those functions is allowed; it just donates the
// backing array.
func PutTokens(toks []phptoken.Token) {
	if cap(toks) == 0 {
		return
	}
	toks = toks[:0]
	tokenBufPool.Put(&toks)
}

// LowerASCII is strings.ToLower restricted to the ASCII identifiers the
// lexer and parser fold: when s is already lowercase (the overwhelmingly
// common case for PHP names) it is returned unchanged with no
// allocation.
func LowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			return lowerASCIISlow(s, i)
		}
	}
	return s
}

func lowerASCIISlow(s string, first int) string {
	b := make([]byte, len(s))
	copy(b, s[:first])
	for i := first; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}

// Interner deduplicates lowercase identifier spellings. It is
// deliberately not synchronized: the parallel pipeline gives each
// worker its own shard and merges them at the barrier with Merge, so
// the hot path stays lock-free.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 256)}
}

// Lower returns the canonical lowercase form of s, interned. A nil
// interner still folds case, it just doesn't deduplicate.
func (in *Interner) Lower(s string) string {
	low := LowerASCII(s)
	if in == nil {
		return low
	}
	if got, ok := in.m[low]; ok {
		return got
	}
	// When LowerASCII returned s itself, low is a substring of the
	// source file; interning it would pin the file's bytes for the
	// scan's lifetime, which is fine — sources are held by the scan
	// anyway.
	in.m[low] = low
	return low
}

// Merge folds another shard's entries into in. Entries already present
// win, so merging in deterministic shard order yields a deterministic
// table. Merge of or with nil is a no-op.
func (in *Interner) Merge(other *Interner) {
	if in == nil || other == nil {
		return
	}
	for k, v := range other.m {
		if _, ok := in.m[k]; !ok {
			in.m[k] = v
		}
	}
}

// Len reports the number of distinct interned spellings.
func (in *Interner) Len() int {
	if in == nil {
		return 0
	}
	return len(in.m)
}
