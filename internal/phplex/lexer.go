// Package phplex tokenizes PHP 5 source code.
//
// It is the Go substitute for the PHP interpreter's token_get_all function,
// which phpSAFE (DSN 2015, §III.B) uses to build its abstract syntax tree:
// the lexer emits the same token taxonomy (see package phptoken), including
// inline HTML segments, line numbers, interpolated string parts and
// heredocs, so the downstream model-construction stage can be implemented
// exactly as the paper describes.
package phplex

import (
	"strings"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/phptoken"
)

// mode is the lexer's top-level state.
type mode int

const (
	// modeHTML emits inline HTML until a PHP open tag.
	modeHTML mode = iota + 1
	// modePHP lexes ordinary PHP code.
	modePHP
	// modeDQString lexes the inside of an interpolated double-quoted string.
	modeDQString
	// modeBacktick lexes the inside of a backtick (shell) string.
	modeBacktick
	// modeHeredoc lexes the inside of a heredoc body.
	modeHeredoc
)

// Lexer converts PHP source text into a stream of tokens.
// The zero value is not usable; construct with New.
type Lexer struct {
	src  string
	pos  int
	line int

	mode mode
	// curlyDepth tracks brace nesting while lexing a {$...} interpolation
	// so the lexer knows when to resume string mode. The stack handles
	// strings nested inside interpolations.
	returnModes []mode
	curlyDepths []int
	// heredocLabel is the terminator label of the heredoc being lexed.
	heredocLabel string
}

// New returns a Lexer over src. Lexing starts in HTML mode, as PHP does.
func New(src string) *Lexer {
	return &Lexer{src: src, pos: 0, line: 1, mode: modeHTML}
}

// Tokenize lexes src completely and returns all tokens, including trivia
// (whitespace and comments), terminated by an EOF token. It never fails:
// unrecognized bytes are emitted as Invalid tokens, mirroring
// token_get_all's tolerance of malformed input.
func Tokenize(src string) []phptoken.Token {
	l := New(src)
	// A rough pre-size: PHP averages about one token per 4 bytes.
	toks := make([]phptoken.Token, 0, len(src)/4+8)
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == phptoken.EOF {
			return toks
		}
	}
}

// TokenizeCode lexes src and returns only syntactically meaningful tokens
// (trivia removed), matching phpSAFE's cleaned AST input (paper §III.B).
// The stream is filtered in a single pass straight into a pooled buffer;
// callers that are done with the stream may return it with PutTokens.
func TokenizeCode(src string) []phptoken.Token {
	code, _ := tokenizeCode(src)
	return code
}

// tokenizeCode is the single-pass core shared by the TokenizeCode
// variants: it lexes and drops trivia in one loop (no intermediate
// all-tokens slice) and reports the total token count, trivia included,
// for the lex_tokens_total counter.
func tokenizeCode(src string) (code []phptoken.Token, total int) {
	l := New(src)
	// A rough pre-size: PHP averages about one code token per 6 bytes
	// once whitespace and comments are dropped.
	code = getTokenBuf(len(src)/6 + 8)
	for {
		t := l.Next()
		total++
		if !t.IsTrivia() {
			code = append(code, t)
		}
		if t.Kind == phptoken.EOF {
			return code, total
		}
	}
}

// TokenizeCodeObserved is TokenizeCode with lexing cost recorded into a
// recorder: tokens lexed (including trivia), source lines, and lex time
// under parent as a "lex" span observed into the stage_lex_seconds
// histogram. A nil recorder makes it identical to TokenizeCode.
func TokenizeCodeObserved(src string, rec *obs.Recorder, parent *obs.Span) []phptoken.Token {
	if rec == nil {
		return TokenizeCode(src)
	}
	sp := rec.StartSpan("lex", parent)
	code, total := tokenizeCode(src)
	sp.EndAndObserve("stage_lex_seconds")
	rec.Counter("lex_tokens_total").Add(int64(total))
	rec.Counter("lex_lines_total").Add(int64(strings.Count(src, "\n") + 1))
	return code
}

// TokenizeCodeGoverned is TokenizeCodeObserved with a governance
// checkpoint per token: when the governor halts (cancellation, scan
// deadline, step budget, file slice) lexing stops and the stream is
// terminated with an early EOF, so the parser sees a truncated but
// well-formed input. A nil governor makes it identical to
// TokenizeCodeObserved.
func TokenizeCodeGoverned(src string, rec *obs.Recorder, parent *obs.Span, gov *govern.Governor) []phptoken.Token {
	if gov == nil {
		return TokenizeCodeObserved(src, rec, parent)
	}
	sp := rec.StartSpan("lex", parent)
	l := New(src)
	code := getTokenBuf(len(src)/6 + 8)
	total := 0
	for {
		gov.Step()
		if gov.Halted() {
			code = append(code, phptoken.Token{Kind: phptoken.EOF, Line: l.line, Offset: l.pos})
			total++
			break
		}
		t := l.Next()
		total++
		if !t.IsTrivia() {
			code = append(code, t)
		}
		if t.Kind == phptoken.EOF {
			break
		}
	}
	sp.EndAndObserve("stage_lex_seconds")
	if rec != nil {
		rec.Counter("lex_tokens_total").Add(int64(total))
		rec.Counter("lex_lines_total").Add(int64(strings.Count(src, "\n") + 1))
	}
	return code
}

// Next returns the next token. After the end of input it returns EOF
// forever.
func (l *Lexer) Next() phptoken.Token {
	if l.pos >= len(l.src) {
		return l.token(phptoken.EOF, l.pos)
	}
	switch l.mode {
	case modeHTML:
		return l.lexHTML()
	case modeDQString:
		return l.lexInterpolated('"', phptoken.Quote)
	case modeBacktick:
		return l.lexInterpolated('`', phptoken.Backtick)
	case modeHeredoc:
		return l.lexHeredocBody()
	default:
		return l.lexPHP()
	}
}

// token builds a token whose text spans [start, l.pos).
func (l *Lexer) token(k phptoken.Kind, start int) phptoken.Token {
	text := l.src[start:l.pos]
	return phptoken.Token{
		Kind:   k,
		Text:   text,
		Line:   l.line - strings.Count(text, "\n"),
		Offset: start,
	}
}

// advance moves the cursor n bytes forward, keeping the line count current.
func (l *Lexer) advance(n int) {
	end := l.pos + n
	if end > len(l.src) {
		end = len(l.src)
	}
	for i := l.pos; i < end; i++ {
		if l.src[i] == '\n' {
			l.line++
		}
	}
	l.pos = end
}

// peek returns the byte at offset n from the cursor, or 0 past the end.
func (l *Lexer) peek(n int) byte {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

// hasPrefix reports whether the remaining input starts with s,
// case-sensitively.
func (l *Lexer) hasPrefix(s string) bool {
	return strings.HasPrefix(l.src[l.pos:], s)
}

// hasPrefixFold reports whether the remaining input starts with s ignoring
// ASCII case.
func (l *Lexer) hasPrefixFold(s string) bool {
	if l.pos+len(s) > len(l.src) {
		return false
	}
	return strings.EqualFold(l.src[l.pos:l.pos+len(s)], s)
}

// lexHTML scans inline HTML until an open tag or end of input.
func (l *Lexer) lexHTML() phptoken.Token {
	start := l.pos
	if l.hasPrefixFold("<?php") {
		l.advance(5)
		// token_get_all includes one following whitespace char in the tag.
		l.mode = modePHP
		return l.token(phptoken.OpenTag, start)
	}
	if l.hasPrefix("<?=") {
		l.advance(3)
		l.mode = modePHP
		return l.token(phptoken.OpenTagEcho, start)
	}
	if l.hasPrefix("<?") {
		l.advance(2)
		l.mode = modePHP
		return l.token(phptoken.OpenTag, start)
	}
	for l.pos < len(l.src) {
		if l.peek(0) == '<' && l.peek(1) == '?' {
			break
		}
		l.advance(1)
	}
	return l.token(phptoken.InlineHTML, start)
}

// lexPHP scans one token of ordinary PHP code.
func (l *Lexer) lexPHP() phptoken.Token {
	start := l.pos
	c := l.peek(0)

	switch {
	case c == ' ' || c == '\t' || c == '\n' || c == '\r':
		for {
			c := l.peek(0)
			if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
				break
			}
			l.advance(1)
			if l.pos >= len(l.src) {
				break
			}
		}
		return l.token(phptoken.Whitespace, start)

	case c == '?' && l.peek(1) == '>':
		l.advance(2)
		l.mode = modeHTML
		return l.token(phptoken.CloseTag, start)

	case c == '/' && l.peek(1) == '/', c == '#':
		return l.lexLineComment(start)

	case c == '/' && l.peek(1) == '*':
		return l.lexBlockComment(start)

	case c == '$':
		return l.lexVariable(start)

	case isIdentStart(c):
		return l.lexIdent(start)

	case c >= '0' && c <= '9', c == '.' && isDigit(l.peek(1)):
		return l.lexNumber(start)

	case c == '\'':
		return l.lexSingleQuoted(start)

	case c == '"':
		return l.lexDoubleQuoted(start)

	case c == '`':
		l.advance(1)
		l.pushMode(modeBacktick)
		return l.token(phptoken.Backtick, start)

	case c == '<' && l.hasPrefix("<<<"):
		return l.lexHeredocStart(start)

	case c == '(':
		if k, n, ok := l.castAhead(); ok {
			l.advance(n)
			return l.token(k, start)
		}
		l.advance(1)
		return l.token(phptoken.LParen, start)

	case c == '}':
		l.advance(1)
		// A closing brace may terminate a {$...} interpolation.
		if n := len(l.curlyDepths); n > 0 {
			l.curlyDepths[n-1]--
			if l.curlyDepths[n-1] == 0 {
				l.popMode()
			}
		}
		return l.token(phptoken.RBrace, start)

	case c == '{':
		l.advance(1)
		if n := len(l.curlyDepths); n > 0 {
			l.curlyDepths[n-1]++
		}
		return l.token(phptoken.LBrace, start)

	default:
		return l.lexOperator(start)
	}
}

// lexLineComment scans a // or # comment. The comment ends at the newline
// or, as in PHP, immediately before a close tag.
func (l *Lexer) lexLineComment(start int) phptoken.Token {
	for l.pos < len(l.src) {
		if l.peek(0) == '\n' {
			break
		}
		if l.peek(0) == '?' && l.peek(1) == '>' {
			break
		}
		l.advance(1)
	}
	return l.token(phptoken.Comment, start)
}

// lexBlockComment scans a /* */ or /** */ comment.
func (l *Lexer) lexBlockComment(start int) phptoken.Token {
	kind := phptoken.Comment
	if l.peek(2) == '*' && l.peek(3) != '/' {
		kind = phptoken.DocComment
	}
	l.advance(2)
	for l.pos < len(l.src) {
		if l.peek(0) == '*' && l.peek(1) == '/' {
			l.advance(2)
			return l.token(kind, start)
		}
		l.advance(1)
	}
	return l.token(kind, start) // unterminated comment runs to EOF
}

// lexVariable scans $name, or a bare $ for variable-variables ($$x).
func (l *Lexer) lexVariable(start int) phptoken.Token {
	l.advance(1)
	if !isIdentStart(l.peek(0)) {
		return l.token(phptoken.Dollar, start)
	}
	for isIdentPart(l.peek(0)) {
		l.advance(1)
	}
	return l.token(phptoken.Variable, start)
}

// lexIdent scans an identifier and classifies keywords.
func (l *Lexer) lexIdent(start int) phptoken.Token {
	for isIdentPart(l.peek(0)) {
		l.advance(1)
	}
	text := l.src[start:l.pos]
	if k, ok := phptoken.LookupKeyword(text); ok {
		return l.token(k, start)
	}
	return l.token(phptoken.Ident, start)
}

// lexNumber scans integer and floating point literals, including hex and
// octal integers and exponent notation.
func (l *Lexer) lexNumber(start int) phptoken.Token {
	if l.peek(0) == '0' && (l.peek(1) == 'x' || l.peek(1) == 'X') {
		l.advance(2)
		for isHexDigit(l.peek(0)) {
			l.advance(1)
		}
		return l.token(phptoken.IntLit, start)
	}
	float := false
	for isDigit(l.peek(0)) {
		l.advance(1)
	}
	if l.peek(0) == '.' && isDigit(l.peek(1)) {
		float = true
		l.advance(1)
		for isDigit(l.peek(0)) {
			l.advance(1)
		}
	}
	if c := l.peek(0); c == 'e' || c == 'E' {
		next := l.peek(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peek(2))) {
			float = true
			l.advance(2)
			for isDigit(l.peek(0)) {
				l.advance(1)
			}
		}
	}
	if float {
		return l.token(phptoken.FloatLit, start)
	}
	return l.token(phptoken.IntLit, start)
}

// lexSingleQuoted scans a complete single-quoted string literal.
func (l *Lexer) lexSingleQuoted(start int) phptoken.Token {
	l.advance(1)
	for l.pos < len(l.src) {
		switch l.peek(0) {
		case '\\':
			l.advance(2)
		case '\'':
			l.advance(1)
			return l.token(phptoken.StringLit, start)
		default:
			l.advance(1)
		}
	}
	return l.token(phptoken.StringLit, start) // unterminated
}

// lexDoubleQuoted scans a double-quoted string. Non-interpolated strings
// are emitted as one StringLit; interpolated ones emit the opening Quote
// and switch to string mode, as token_get_all does.
func (l *Lexer) lexDoubleQuoted(start int) phptoken.Token {
	if end, plain := l.scanPlainDQ(); plain {
		l.advance(end - l.pos)
		return l.token(phptoken.StringLit, start)
	}
	l.advance(1)
	l.pushMode(modeDQString)
	return l.token(phptoken.Quote, start)
}

// scanPlainDQ looks ahead over a double-quoted string. If the string
// contains no interpolation it returns the position just past the closing
// quote and true.
func (l *Lexer) scanPlainDQ() (end int, plain bool) {
	i := l.pos + 1
	for i < len(l.src) {
		switch l.src[i] {
		case '\\':
			i += 2
		case '"':
			return i + 1, true
		case '$':
			if i+1 < len(l.src) && (isIdentStart(l.src[i+1]) || l.src[i+1] == '{') {
				return 0, false
			}
			i++
		case '{':
			if i+1 < len(l.src) && l.src[i+1] == '$' {
				return 0, false
			}
			i++
		default:
			i++
		}
	}
	return i, true // unterminated: treat as plain
}

// lexInterpolated scans the next token inside a double-quoted or backtick
// string: a text fragment, an interpolated variable, or the delimiter.
func (l *Lexer) lexInterpolated(delim byte, delimKind phptoken.Kind) phptoken.Token {
	start := l.pos
	c := l.peek(0)

	if c == delim {
		l.advance(1)
		l.popMode()
		return l.token(delimKind, start)
	}
	if tok, ok := l.lexInterpolationStart(start); ok {
		return tok
	}
	// Text fragment until the next interpolation point or delimiter.
	for l.pos < len(l.src) {
		c := l.peek(0)
		if c == delim {
			break
		}
		if c == '\\' {
			l.advance(2)
			continue
		}
		if c == '$' && (isIdentStart(l.peek(1)) || l.peek(1) == '{') {
			break
		}
		if c == '{' && l.peek(1) == '$' {
			break
		}
		l.advance(1)
	}
	return l.token(phptoken.EncapsedText, start)
}

// lexInterpolationStart handles the three interpolation forms at the
// cursor: $name (with optional ->prop or [idx]), {$expr}, and ${name}.
// It reports false when the cursor is not at an interpolation point.
func (l *Lexer) lexInterpolationStart(start int) (phptoken.Token, bool) {
	c := l.peek(0)
	if c == '{' && l.peek(1) == '$' {
		l.advance(1)
		l.pushCurly()
		return l.token(phptoken.CurlyOpen, start), true
	}
	if c == '$' && l.peek(1) == '{' {
		l.advance(2)
		l.pushCurly()
		return l.token(phptoken.DollarCurlyOpen, start), true
	}
	if c == '$' && isIdentStart(l.peek(1)) {
		// Simple interpolation: lex the variable now; -> and [ ] accesses
		// are picked up by subsequent calls in simple-syntax mode. PHP's
		// simple syntax only allows one level, which the fragment scanner
		// naturally produces because "->" and "[" are consumed here.
		l.advance(1)
		for isIdentPart(l.peek(0)) {
			l.advance(1)
		}
		tok := l.token(phptoken.Variable, start)
		return tok, true
	}
	// ->prop directly after an interpolated variable.
	if c == '-' && l.peek(1) == '>' && isIdentStart(l.peek(2)) && l.prevWasInterpVar() {
		l.advance(2)
		return l.token(phptoken.Arrow, start), true
	}
	// The property name directly after an interpolated "->".
	if isIdentStart(c) && l.pos >= 2 && l.src[l.pos-1] == '>' && l.src[l.pos-2] == '-' {
		for isIdentPart(l.peek(0)) {
			l.advance(1)
		}
		return l.token(phptoken.Ident, start), true
	}
	if c == '[' && l.prevWasInterpVar() {
		l.advance(1)
		return l.token(phptoken.LBracket, start), true
	}
	if c == ']' && l.prevWasInterpBracket() {
		l.advance(1)
		return l.token(phptoken.RBracket, start), true
	}
	if l.prevWasInterpBracket() {
		// Index token inside simple-syntax brackets: int, ident or $var.
		if c == '$' {
			return l.lexVariable(start), true
		}
		if isDigit(c) {
			for isDigit(l.peek(0)) {
				l.advance(1)
			}
			return l.token(phptoken.IntLit, start), true
		}
		if isIdentStart(c) {
			for isIdentPart(l.peek(0)) {
				l.advance(1)
			}
			return l.token(phptoken.Ident, start), true
		}
	}
	return phptoken.Token{}, false
}

// prevWasInterpVar reports whether the bytes immediately before the cursor
// end a simple-syntax interpolated variable or property access, enabling
// the ->prop and [idx] continuations.
func (l *Lexer) prevWasInterpVar() bool {
	i := l.pos - 1
	for i >= 0 && isIdentPart(l.src[i]) {
		i--
	}
	if i < 0 || i == l.pos-1 {
		return false
	}
	if l.src[i] == '$' {
		return true
	}
	// ...->prop
	return i >= 1 && l.src[i] == '>' && l.src[i-1] == '-'
}

// prevWasInterpBracket reports whether the cursor is inside a simple-syntax
// [idx] access: scanning back over the index token must reach "[" preceded
// by a variable.
func (l *Lexer) prevWasInterpBracket() bool {
	i := l.pos - 1
	for i >= 0 && (isIdentPart(l.src[i]) || l.src[i] == '$') {
		i--
	}
	if i < 0 || l.src[i] != '[' {
		return false
	}
	j := i - 1
	for j >= 0 && isIdentPart(l.src[j]) {
		j--
	}
	return j >= 0 && j < i-1 && l.src[j] == '$'
}

// lexHeredocStart scans <<<LABEL, <<<"LABEL" or <<<'LABEL' (nowdoc).
func (l *Lexer) lexHeredocStart(start int) phptoken.Token {
	l.advance(3)
	for l.peek(0) == ' ' || l.peek(0) == '\t' {
		l.advance(1)
	}
	quote := byte(0)
	if c := l.peek(0); c == '"' || c == '\'' {
		quote = c
		l.advance(1)
	}
	labelStart := l.pos
	for isIdentPart(l.peek(0)) {
		l.advance(1)
	}
	l.heredocLabel = l.src[labelStart:l.pos]
	if quote != 0 && l.peek(0) == quote {
		l.advance(1)
	}
	if l.peek(0) == '\r' {
		l.advance(1)
	}
	if l.peek(0) == '\n' {
		l.advance(1)
	}
	if quote == '\'' {
		// Nowdoc: no interpolation; consume the whole body here by
		// switching to heredoc mode with interpolation disabled. For
		// simplicity nowdoc bodies are emitted as one EncapsedText by
		// lexHeredocBody because '$' never starts interpolation there.
		l.heredocLabel = "'" + l.heredocLabel
	}
	l.pushMode(modeHeredoc)
	return l.token(phptoken.StartHeredoc, start)
}

// lexHeredocBody scans heredoc content, emitting text fragments and
// interpolations until the terminator label.
func (l *Lexer) lexHeredocBody() phptoken.Token {
	start := l.pos
	label := l.heredocLabel
	nowdoc := strings.HasPrefix(label, "'")
	if nowdoc {
		label = label[1:]
	}

	if l.atHeredocEnd(label) {
		l.advance(len(label))
		l.popMode()
		l.heredocLabel = ""
		return l.token(phptoken.EndHeredoc, start)
	}
	if !nowdoc {
		if tok, ok := l.lexInterpolationStart(start); ok {
			return tok
		}
	}
	for l.pos < len(l.src) {
		c := l.peek(0)
		if c == '\\' && !nowdoc {
			l.advance(2)
			continue
		}
		if !nowdoc {
			if c == '$' && (isIdentStart(l.peek(1)) || l.peek(1) == '{') {
				break
			}
			if c == '{' && l.peek(1) == '$' {
				break
			}
		}
		if c == '\n' {
			l.advance(1)
			if l.atHeredocEnd(label) {
				break
			}
			continue
		}
		l.advance(1)
	}
	return l.token(phptoken.EncapsedText, start)
}

// atHeredocEnd reports whether the cursor sits at the start of a line whose
// content is the heredoc terminator label.
func (l *Lexer) atHeredocEnd(label string) bool {
	if l.pos != 0 && l.src[l.pos-1] != '\n' {
		return false
	}
	if !strings.HasPrefix(l.src[l.pos:], label) {
		return false
	}
	after := l.pos + len(label)
	if after >= len(l.src) {
		return true
	}
	c := l.src[after]
	return c == ';' || c == '\n' || c == '\r'
}

// castAhead looks for a cast operator "(type)" at the cursor and returns
// its kind and byte length.
func (l *Lexer) castAhead() (phptoken.Kind, int, bool) {
	i := l.pos + 1
	for i < len(l.src) && (l.src[i] == ' ' || l.src[i] == '\t') {
		i++
	}
	wordStart := i
	for i < len(l.src) && isIdentPart(l.src[i]) {
		i++
	}
	word := LowerASCII(l.src[wordStart:i])
	for i < len(l.src) && (l.src[i] == ' ' || l.src[i] == '\t') {
		i++
	}
	if i >= len(l.src) || l.src[i] != ')' {
		return 0, 0, false
	}
	var k phptoken.Kind
	switch word {
	case "int", "integer":
		k = phptoken.IntCast
	case "float", "double", "real":
		k = phptoken.FloatCast
	case "string", "binary":
		k = phptoken.StringCast
	case "array":
		k = phptoken.ArrayCast
	case "object":
		k = phptoken.ObjectCast
	case "bool", "boolean":
		k = phptoken.BoolCast
	case "unset":
		k = phptoken.UnsetCast
	default:
		return 0, 0, false
	}
	return k, i + 1 - l.pos, true
}

// operators lists multi-character operators longest-first so the scanner
// can use simple prefix matching.
var operators = []struct {
	text string
	kind phptoken.Kind
}{
	{"===", phptoken.IsIdentical},
	{"!==", phptoken.IsNotIdentical},
	{"<<=", phptoken.ShlAssign},
	{">>=", phptoken.ShrAssign},
	{"...", phptoken.Ellipsis},
	{"==", phptoken.IsEqual},
	{"!=", phptoken.IsNotEqual},
	{"<>", phptoken.IsNotEqual},
	{"<=", phptoken.Le},
	{">=", phptoken.Ge},
	{"&&", phptoken.BoolAnd},
	{"||", phptoken.BoolOr},
	{"++", phptoken.Inc},
	{"--", phptoken.Dec},
	{"+=", phptoken.PlusAssign},
	{"-=", phptoken.MinusAssign},
	{"*=", phptoken.StarAssign},
	{"/=", phptoken.SlashAssign},
	{".=", phptoken.DotAssign},
	{"%=", phptoken.PercentAssign},
	{"&=", phptoken.AmpAssign},
	{"|=", phptoken.PipeAssign},
	{"^=", phptoken.CaretAssign},
	{"<<", phptoken.Shl},
	{">>", phptoken.Shr},
	{"->", phptoken.Arrow},
	{"::", phptoken.DoubleColon},
	{"=>", phptoken.DoubleArrow},
	{"=", phptoken.Assign},
	{"+", phptoken.Plus},
	{"-", phptoken.Minus},
	{"*", phptoken.Star},
	{"/", phptoken.Slash},
	{"%", phptoken.Percent},
	{".", phptoken.Dot},
	{"!", phptoken.Bang},
	{"?", phptoken.Question},
	{":", phptoken.Colon},
	{";", phptoken.Semicolon},
	{",", phptoken.Comma},
	{")", phptoken.RParen},
	{"[", phptoken.LBracket},
	{"]", phptoken.RBracket},
	{"<", phptoken.Lt},
	{">", phptoken.Gt},
	{"&", phptoken.Amp},
	{"|", phptoken.Pipe},
	{"^", phptoken.Caret},
	{"~", phptoken.Tilde},
	{"@", phptoken.At},
	{"\\", phptoken.Backslash},
}

// lexOperator scans punctuation and operators with longest-match-first.
func (l *Lexer) lexOperator(start int) phptoken.Token {
	for _, op := range operators {
		if l.hasPrefix(op.text) {
			l.advance(len(op.text))
			return l.token(op.kind, start)
		}
	}
	l.advance(1)
	return l.token(phptoken.Invalid, start)
}

// pushMode enters a string-like mode, remembering where to return.
func (l *Lexer) pushMode(m mode) {
	l.returnModes = append(l.returnModes, l.mode)
	l.mode = m
}

// popMode returns to the mode active before the last pushMode/pushCurly.
func (l *Lexer) popMode() {
	if n := len(l.returnModes); n > 0 {
		l.mode = l.returnModes[n-1]
		l.returnModes = l.returnModes[:n-1]
	} else {
		l.mode = modePHP
	}
	if n := len(l.curlyDepths); n > 0 && l.curlyDepths[n-1] == 0 {
		l.curlyDepths = l.curlyDepths[:n-1]
	}
}

// pushCurly enters PHP mode for a {$...} or ${...} interpolation; the
// matching } returns to the surrounding string mode.
func (l *Lexer) pushCurly() {
	l.returnModes = append(l.returnModes, l.mode)
	l.curlyDepths = append(l.curlyDepths, 1)
	l.mode = modePHP
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c|0x20 >= 'a' && c|0x20 <= 'f') }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
