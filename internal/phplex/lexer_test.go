package phplex

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/phptoken"
)

// kinds extracts the kind sequence of non-trivia tokens, dropping EOF.
func kinds(src string) []phptoken.Kind {
	toks := TokenizeCode(src)
	out := make([]phptoken.Kind, 0, len(toks))
	for _, t := range toks {
		if t.Kind == phptoken.EOF {
			break
		}
		out = append(out, t.Kind)
	}
	return out
}

// texts extracts the text sequence of non-trivia tokens, dropping EOF.
func texts(src string) []string {
	toks := TokenizeCode(src)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == phptoken.EOF {
			break
		}
		out = append(out, t.Text)
	}
	return out
}

func eqKinds(a, b []phptoken.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTokenizeBasicStatement(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php $x = $_GET['id']; echo $x;`)
	want := []phptoken.Kind{
		phptoken.OpenTag,
		phptoken.Variable, phptoken.Assign,
		phptoken.Variable, phptoken.LBracket, phptoken.StringLit, phptoken.RBracket,
		phptoken.Semicolon,
		phptoken.KwEcho, phptoken.Variable, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeInlineHTML(t *testing.T) {
	t.Parallel()
	src := "<html><?php echo 1; ?></html>"
	got := kinds(src)
	want := []phptoken.Kind{
		phptoken.InlineHTML, phptoken.OpenTag, phptoken.KwEcho,
		phptoken.IntLit, phptoken.Semicolon, phptoken.CloseTag,
		phptoken.InlineHTML,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeShortEchoTag(t *testing.T) {
	t.Parallel()
	got := kinds(`<?= $x ?>`)
	want := []phptoken.Kind{
		phptoken.OpenTagEcho, phptoken.Variable, phptoken.CloseTag,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeObjectOperator(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php $wpdb->get_results($q);`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Arrow, phptoken.Ident,
		phptoken.LParen, phptoken.Variable, phptoken.RParen, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeDoubleColon(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php Foo::bar(); Foo::$baz; Foo::CONST_A;`)
	want := []phptoken.Kind{
		phptoken.OpenTag,
		phptoken.Ident, phptoken.DoubleColon, phptoken.Ident, phptoken.LParen, phptoken.RParen, phptoken.Semicolon,
		phptoken.Ident, phptoken.DoubleColon, phptoken.Variable, phptoken.Semicolon,
		phptoken.Ident, phptoken.DoubleColon, phptoken.Ident, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeKeywordsCaseInsensitive(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php IF (TRUE) { ECHO 1; } ELSE { Echo 2; }`)
	// TRUE is an identifier (constant), not a keyword.
	want := []phptoken.Kind{
		phptoken.OpenTag,
		phptoken.KwIf, phptoken.LParen, phptoken.Ident, phptoken.RParen,
		phptoken.LBrace, phptoken.KwEcho, phptoken.IntLit, phptoken.Semicolon, phptoken.RBrace,
		phptoken.KwElse,
		phptoken.LBrace, phptoken.KwEcho, phptoken.IntLit, phptoken.Semicolon, phptoken.RBrace,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	t.Parallel()
	tests := []struct {
		src  string
		kind phptoken.Kind
		text string
	}{
		{`<?php 42;`, phptoken.IntLit, "42"},
		{`<?php 0x1F;`, phptoken.IntLit, "0x1F"},
		{`<?php 3.14;`, phptoken.FloatLit, "3.14"},
		{`<?php .5;`, phptoken.FloatLit, ".5"},
		{`<?php 1e10;`, phptoken.FloatLit, "1e10"},
		{`<?php 2E-3;`, phptoken.FloatLit, "2E-3"},
	}
	for _, tt := range tests {
		toks := TokenizeCode(tt.src)
		if len(toks) < 2 {
			t.Fatalf("%q: too few tokens", tt.src)
		}
		if toks[1].Kind != tt.kind || toks[1].Text != tt.text {
			t.Errorf("%q: got %v(%q), want %v(%q)",
				tt.src, toks[1].Kind, toks[1].Text, tt.kind, tt.text)
		}
	}
}

func TestTokenizeSingleQuotedString(t *testing.T) {
	t.Parallel()
	got := texts(`<?php $a = 'it\'s $not interpolated';`)
	want := []string{"<?php", "$a", "=", `'it\'s $not interpolated'`, ";"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("texts = %v, want %v", got, want)
	}
}

func TestTokenizePlainDoubleQuotedString(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php $a = "no vars here";`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Assign,
		phptoken.StringLit, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeInterpolatedString(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php $q = "SELECT * FROM t WHERE id=$id";`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Assign,
		phptoken.Quote, phptoken.EncapsedText, phptoken.Variable, phptoken.Quote,
		phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeInterpolatedPropertyAccess(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php echo "name: $row->name!";`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.KwEcho,
		phptoken.Quote, phptoken.EncapsedText,
		phptoken.Variable, phptoken.Arrow, phptoken.Ident,
		phptoken.EncapsedText, phptoken.Quote,
		phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeInterpolatedArrayAccess(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php echo "v=$_GET[id]";`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.KwEcho,
		phptoken.Quote, phptoken.EncapsedText,
		phptoken.Variable, phptoken.LBracket, phptoken.Ident, phptoken.RBracket,
		phptoken.Quote, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeCurlyInterpolation(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php echo "x={$row['name']}!";`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.KwEcho,
		phptoken.Quote, phptoken.EncapsedText,
		phptoken.CurlyOpen, phptoken.Variable, phptoken.LBracket,
		phptoken.StringLit, phptoken.RBracket, phptoken.RBrace,
		phptoken.EncapsedText, phptoken.Quote, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeCurlyInterpolationMethodCall(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php $s = "pre {$wpdb->prefix}post";`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Assign,
		phptoken.Quote, phptoken.EncapsedText,
		phptoken.CurlyOpen, phptoken.Variable, phptoken.Arrow, phptoken.Ident, phptoken.RBrace,
		phptoken.EncapsedText, phptoken.Quote, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeHeredoc(t *testing.T) {
	t.Parallel()
	src := "<?php $s = <<<EOT\nHello $name\nmore text\nEOT;\n"
	got := kinds(src)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Assign,
		phptoken.StartHeredoc, phptoken.EncapsedText, phptoken.Variable,
		phptoken.EncapsedText, phptoken.EndHeredoc, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeNowdoc(t *testing.T) {
	t.Parallel()
	src := "<?php $s = <<<'EOT'\nliteral $name\nEOT;\n"
	got := kinds(src)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Assign,
		phptoken.StartHeredoc, phptoken.EncapsedText, phptoken.EndHeredoc,
		phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeCasts(t *testing.T) {
	t.Parallel()
	tests := []struct {
		src  string
		kind phptoken.Kind
	}{
		{`<?php (int)$x;`, phptoken.IntCast},
		{`<?php (integer) $x;`, phptoken.IntCast},
		{`<?php (string)$x;`, phptoken.StringCast},
		{`<?php (bool)$x;`, phptoken.BoolCast},
		{`<?php (float)$x;`, phptoken.FloatCast},
		{`<?php (array)$x;`, phptoken.ArrayCast},
	}
	for _, tt := range tests {
		got := kinds(tt.src)
		if len(got) < 2 || got[1] != tt.kind {
			t.Errorf("%q: kinds = %v, want cast %v at index 1", tt.src, got, tt.kind)
		}
	}
}

func TestTokenizeParenNotCast(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php ($x);`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.LParen, phptoken.Variable,
		phptoken.RParen, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeComments(t *testing.T) {
	t.Parallel()
	src := "<?php // line\n# hash\n/* block */ /** doc */ $x;"
	all := Tokenize(src)
	var comments, docs int
	for _, tok := range all {
		switch tok.Kind {
		case phptoken.Comment:
			comments++
		case phptoken.DocComment:
			docs++
		}
	}
	if comments != 3 || docs != 1 {
		t.Fatalf("comments = %d, docs = %d; want 3, 1", comments, docs)
	}
	got := kinds(src)
	want := []phptoken.Kind{phptoken.OpenTag, phptoken.Variable, phptoken.Semicolon}
	if !eqKinds(got, want) {
		t.Fatalf("code kinds = %v, want %v", got, want)
	}
}

func TestTokenizeLineCommentEndsAtCloseTag(t *testing.T) {
	t.Parallel()
	got := kinds("<?php // comment ?>html")
	want := []phptoken.Kind{phptoken.OpenTag, phptoken.CloseTag, phptoken.InlineHTML}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeOperators(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php $a .= $b === $c ? $d : $e;`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.DotAssign,
		phptoken.Variable, phptoken.IsIdentical, phptoken.Variable,
		phptoken.Question, phptoken.Variable, phptoken.Colon, phptoken.Variable,
		phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeLineNumbers(t *testing.T) {
	t.Parallel()
	src := "<?php\n$a = 1;\n\necho $a;\n"
	var echoLine, aLine int
	for _, tok := range Tokenize(src) {
		if tok.Kind == phptoken.KwEcho {
			echoLine = tok.Line
		}
		if tok.Kind == phptoken.Variable && tok.Text == "$a" && aLine == 0 {
			aLine = tok.Line
		}
	}
	if aLine != 2 {
		t.Errorf("first $a on line %d, want 2", aLine)
	}
	if echoLine != 4 {
		t.Errorf("echo on line %d, want 4", echoLine)
	}
}

func TestTokenizeLineNumberInsideInterpolation(t *testing.T) {
	t.Parallel()
	src := "<?php\n$s = \"a\nb $x c\";\n"
	for _, tok := range Tokenize(src) {
		if tok.Kind == phptoken.Variable && tok.Text == "$x" {
			if tok.Line != 3 {
				t.Fatalf("$x on line %d, want 3", tok.Line)
			}
			return
		}
	}
	t.Fatal("$x token not found")
}

func TestTokenizeVariableVariable(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php $$name = 1;`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Dollar, phptoken.Variable,
		phptoken.Assign, phptoken.IntLit, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeEscapedDollarNotInterpolated(t *testing.T) {
	t.Parallel()
	got := kinds(`<?php $a = "price: \$100";`)
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Assign,
		phptoken.StringLit, phptoken.Semicolon,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeClassDeclaration(t *testing.T) {
	t.Parallel()
	src := `<?php class Foo extends Bar { public $prop = 1; function m() { return $this->prop; } }`
	got := kinds(src)
	want := []phptoken.Kind{
		phptoken.OpenTag,
		phptoken.KwClass, phptoken.Ident, phptoken.KwExtends, phptoken.Ident, phptoken.LBrace,
		phptoken.KwPublic, phptoken.Variable, phptoken.Assign, phptoken.IntLit, phptoken.Semicolon,
		phptoken.KwFunction, phptoken.Ident, phptoken.LParen, phptoken.RParen, phptoken.LBrace,
		phptoken.KwReturn, phptoken.Variable, phptoken.Arrow, phptoken.Ident, phptoken.Semicolon,
		phptoken.RBrace, phptoken.RBrace,
	}
	if !eqKinds(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestTokenizeEOFIsStable(t *testing.T) {
	t.Parallel()
	l := New("<?php")
	for {
		if tok := l.Next(); tok.Kind == phptoken.EOF {
			break
		}
	}
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != phptoken.EOF {
			t.Fatalf("call %d after EOF: got %v, want EOF", i, tok)
		}
	}
}

func TestKindNamesExhaustive(t *testing.T) {
	t.Parallel()
	for k := 0; k < phptoken.KindCount(); k++ {
		if name := phptoken.Kind(k).String(); name == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

// TestQuickTextReassembly verifies the fundamental lexer invariant: the
// concatenation of all token texts reproduces the input exactly, for
// arbitrary inputs. This is the property token_get_all guarantees.
func TestQuickTextReassembly(t *testing.T) {
	t.Parallel()
	f := func(body string) bool {
		src := "<?php " + body
		var sb strings.Builder
		for _, tok := range Tokenize(src) {
			sb.WriteString(tok.Text)
		}
		return sb.String() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTextReassemblyHTML checks reassembly when the input mixes HTML
// and PHP regions.
func TestQuickTextReassemblyHTML(t *testing.T) {
	t.Parallel()
	f := func(a, b string) bool {
		src := a + "<?php echo 1; ?>" + b
		var sb strings.Builder
		for _, tok := range Tokenize(src) {
			sb.WriteString(tok.Text)
		}
		return sb.String() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLinesMonotonic verifies that token start lines never decrease
// and stay within the physical line count of the source.
func TestQuickLinesMonotonic(t *testing.T) {
	t.Parallel()
	f := func(body string) bool {
		src := "<?php\n" + body
		maxLine := strings.Count(src, "\n") + 1
		prev := 1
		for _, tok := range Tokenize(src) {
			if tok.Kind == phptoken.EOF {
				break
			}
			if tok.Line < prev || tok.Line > maxLine {
				return false
			}
			prev = tok.Line
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNoEmptyTokens verifies the lexer always makes progress: no
// non-EOF token has empty text.
func TestQuickNoEmptyTokens(t *testing.T) {
	t.Parallel()
	f := func(body string) bool {
		for _, tok := range Tokenize("<?php " + body) {
			if tok.Kind == phptoken.EOF {
				break
			}
			if tok.Text == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	src := `<?php
class Widget {
	public $name;
	function render($id) {
		$row = $this->fetch($id);
		echo "<div class='w'>" . $row->name . "</div>";
		$q = "SELECT * FROM t WHERE id=$id";
		return mysql_query($q);
	}
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(src)
	}
}
