package phplex

import (
	"strings"
	"testing"

	"repro/internal/phptoken"
)

// FuzzTokenize exercises the lexer's two invariants on arbitrary input:
// exact text reassembly and guaranteed progress. `go test` runs the seed
// corpus; `go test -fuzz=FuzzTokenize` explores further.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"<?php echo $_GET['x'];",
		"<?php $a = \"interp $x {$y->z} ${w}\";",
		"<?php /* comment ?> */ $a = 1; ?>html<?= $b ?>",
		"<?php $s = <<<EOT\nbody $v\nEOT;\n",
		"<?php $s = <<<'EOT'\nliteral\nEOT;\n",
		"<?php (int)$x; (string) $y; `cmd $z`;",
		"<?php class A { function b() { return $this->c[1]; } }",
		"<?php \"unterminated",
		"<?php 'unterminated",
		"<?php $x = 0x1F + .5e-3;",
		"no php at all <? $short ?>",
		"<?php $a[$b[$c]] = $$d;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks := Tokenize(src)
		if len(toks) == 0 || toks[len(toks)-1].Kind != phptoken.EOF {
			t.Fatal("stream must end with EOF")
		}
		var sb strings.Builder
		for _, tok := range toks {
			if tok.Kind != phptoken.EOF && tok.Text == "" {
				t.Fatalf("empty non-EOF token %v", tok.Kind)
			}
			sb.WriteString(tok.Text)
		}
		if sb.String() != src {
			t.Fatalf("reassembly mismatch:\n in: %q\nout: %q", src, sb.String())
		}
	})
}
