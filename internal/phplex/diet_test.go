package phplex

import (
	"testing"

	"repro/internal/phptoken"
)

func TestLowerASCII(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"already_lower", "already_lower"},
		{"MixedCase", "mixedcase"},
		{"UPPER", "upper"},
		{"$_GET", "$_get"},
		{"with-Ümlaut-É", "with-Ümlaut-É"}, // non-ASCII bytes pass through untouched
	}
	for _, c := range cases {
		if got := LowerASCII(c.in); got != c.want {
			t.Errorf("LowerASCII(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// The fast path must not allocate for already-lowercase input.
	s := "some_plugin_handler_name"
	if n := testing.AllocsPerRun(100, func() { _ = LowerASCII(s) }); n != 0 {
		t.Errorf("LowerASCII allocated %.1f times on lowercase input, want 0", n)
	}
}

func TestInternerDedupes(t *testing.T) {
	in := NewInterner()
	a := in.Lower("EchoHandler")
	b := in.Lower("ECHOHANDLER")
	c := in.Lower("echohandler")
	if a != "echohandler" || b != a || c != a {
		t.Fatalf("Lower results differ: %q %q %q", a, b, c)
	}
	if in.Len() != 1 {
		t.Errorf("Len = %d, want 1 distinct spelling", in.Len())
	}

	var nilIn *Interner
	if got := nilIn.Lower("AbC"); got != "abc" {
		t.Errorf("nil interner Lower = %q, want plain fold", got)
	}
	if nilIn.Len() != 0 {
		t.Errorf("nil interner Len = %d", nilIn.Len())
	}
}

func TestInternerMerge(t *testing.T) {
	a, b := NewInterner(), NewInterner()
	a.Lower("shared")
	b.Lower("shared")
	b.Lower("only_b")
	a.Merge(b)
	if a.Len() != 2 {
		t.Errorf("merged Len = %d, want 2", a.Len())
	}
	// Merges with nil on either side are no-ops, not panics.
	a.Merge(nil)
	(*Interner)(nil).Merge(a)
}

func TestPutTokensRoundTrip(t *testing.T) {
	PutTokens(nil) // zero-cap donation is a no-op

	src := "<?php $x = $_GET['a']; echo $x;"
	toks := TokenizeCode(src)
	if len(toks) == 0 {
		t.Fatal("no tokens")
	}
	// Snapshot before the put: the pool owns the backing array afterwards.
	want := make([]phptoken.Token, len(toks))
	copy(want, toks)
	PutTokens(toks)

	// The next lex must produce the same stream whether or not it got
	// the recycled backing array.
	again := TokenizeCode(src)
	if len(again) != len(want) {
		t.Fatalf("relexed %d tokens, want %d", len(again), len(want))
	}
	for i := range again {
		if again[i].Kind != want[i].Kind || again[i].Text != want[i].Text {
			t.Fatalf("token %d differs after pool round trip: %+v vs %+v", i, again[i], want[i])
		}
	}
	if again[len(again)-1].Kind != phptoken.EOF {
		t.Error("stream does not end in EOF")
	}
}
