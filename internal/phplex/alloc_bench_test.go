package phplex

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// benchSource builds a representative plugin file: markup, functions,
// a class with methods, superglobal reads, interpolated SQL and echo
// sinks — the token mix the corpus actually exercises. It is synthetic
// so the benchmark has no testdata dependency and a stable size.
func benchSource() string {
	var b strings.Builder
	b.WriteString("<html><body>\n<?php\n")
	for i := 0; i < 40; i++ {
		n := strconv.Itoa(i)
		b.WriteString("function handler_" + n + "($req) {\n")
		b.WriteString("    $id = $_GET['id_" + n + "'];\n")
		b.WriteString("    $name = mysql_real_escape_string($req['name']);\n")
		b.WriteString("    $sql = \"SELECT * FROM t_" + n + " WHERE id = $id AND name = '$name'\";\n")
		b.WriteString("    $res = mysql_query($sql);\n")
		b.WriteString("    if ($res && count($res) > " + n + ") {\n")
		b.WriteString("        echo \"<div id='row-{$id}'>\" . htmlentities($name) . '</div>';\n")
		b.WriteString("    }\n")
		b.WriteString("    return $res; // per-row handler\n")
		b.WriteString("}\n")
	}
	b.WriteString("class Plugin_Widget {\n")
	b.WriteString("    var $options = array('a' => 1, 'b' => 2);\n")
	b.WriteString("    function render($attrs) {\n")
	b.WriteString("        foreach ($attrs as $k => $v) { echo $k . '=' . $v; }\n")
	b.WriteString("        return (int)$this->options['a'];\n")
	b.WriteString("    }\n")
	b.WriteString("}\n?>\n</body></html>\n")
	return b.String()
}

// BenchmarkLexAllocs is the allocation gate for the lexer hot path:
// tokenize a representative file, hand the stream back to the pool,
// repeat. CI compares its allocs/op against the checked-in baseline in
// testdata/lex_allocs_baseline.txt and fails on a >10% regression
// (TestLexAllocsGate enforces the same bound without needing -bench).
func BenchmarkLexAllocs(b *testing.B) {
	src := benchSource()
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		PutTokens(TokenizeCode(src))
	}
}

// lexAllocsPerOp measures steady-state allocations per TokenizeCode +
// PutTokens cycle, after a warm-up pass that populates the buffer pool.
func lexAllocsPerOp() float64 {
	src := benchSource()
	PutTokens(TokenizeCode(src))
	return testing.AllocsPerRun(200, func() {
		PutTokens(TokenizeCode(src))
	})
}

// TestLexAllocsGate fails when the lexer's allocs/op regresses more
// than 10% over the checked-in baseline. Refresh the baseline with
// UPDATE_ALLOCS_BASELINE=1 go test ./internal/phplex -run LexAllocsGate
// after an intentional change.
func TestLexAllocsGate(t *testing.T) {
	const baselinePath = "testdata/lex_allocs_baseline.txt"
	got := lexAllocsPerOp()
	if os.Getenv("UPDATE_ALLOCS_BASELINE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(baselinePath, []byte(strconv.FormatFloat(got, 'f', -1, 64)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %v allocs/op", got)
		return
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("missing allocs baseline (run with UPDATE_ALLOCS_BASELINE=1 to create): %v", err)
	}
	baseline, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("bad baseline %q: %v", raw, err)
	}
	// Allow 10% headroom plus one alloc of slack so a tiny integer
	// baseline doesn't make the gate flake on scheduler noise.
	limit := baseline*1.10 + 1
	if got > limit {
		t.Fatalf("lexer allocations regressed: %v allocs/op, baseline %v (limit %.2f)", got, baseline, limit)
	}
	t.Logf("lex allocs/op = %v (baseline %v)", got, baseline)
}
