package pixy

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analyzer"
)

// Additional Pixy envelope coverage.

func TestInterpolatedStringFlow(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$q = $_GET['q'];
echo "<p>result: $q</p>";`)
	want(t, res, 1, 0)
}

func TestHeredocFlow(t *testing.T) {
	t.Parallel()
	src := "<?php\n$n = $_POST['n'];\necho <<<HTML\n<b>$n</b>\nHTML;\n"
	res := scan(t, src)
	want(t, res, 1, 0)
}

func TestForeachPropagation(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
foreach ($_GET as $v) {
	echo $v;
}`)
	want(t, res, 1, 0)
}

func TestCastNeutralizes(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$n = (int) $_GET['n'];
echo $n;`)
	want(t, res, 0, 0)
}

func TestCompoundConcat(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$out = 'a';
$out .= $_GET['b'];
echo $out;`)
	want(t, res, 1, 0)
}

func TestTernaryArms(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$v = true ? $_GET['x'] : 'safe';
echo $v;`)
	want(t, res, 1, 0)
}

func TestUnsetKillsTaintAndDefines(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$x = $_GET['x'];
unset($x);
echo $x;`)
	// After unset the variable is defined-but-empty: neither tainted nor
	// register_globals-injectable (Pixy tracks the redefinition).
	want(t, res, 0, 0)
}

func TestSwitchBodies(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
switch ($_GET['t']) {
case 'a': echo $_GET['a']; break;
default: echo 'safe';
}`)
	want(t, res, 1, 0)
}

func TestExitSink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php die($_COOKIE['session']);`)
	want(t, res, 1, 0)
}

func TestPrintfSink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php printf('%s', $_GET['f']);`)
	want(t, res, 1, 0)
}

func TestGlobalStatementDefines(t *testing.T) {
	t.Parallel()
	// "global $x" inside a function marks $x defined (no register_globals
	// noise), though Pixy does not track the global's taint.
	res := scan(t, `<?php
function f() {
	global $conf;
	echo $conf;
}
f();`)
	want(t, res, 0, 0)
}

func TestStaticVarsDefined(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function f() {
	static $count = 0;
	echo $count;
}
f();`)
	want(t, res, 0, 0)
}

func TestNestedCallDepthBounded(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	sb.WriteString("<?php\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "function f%d($x) { return f%d($x); }\n", i, i+1)
	}
	sb.WriteString("function f30($x) { return $x; }\n")
	sb.WriteString("echo f0($_GET['x']);\n")
	res := scan(t, sb.String())
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestRegisterGlobalsVectorAndTrace(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php echo $undefined_setting;`)
	want(t, res, 1, 0)
	f := res.Findings[0]
	if !RegisterGlobalsFinding(f) {
		t.Error("should be marked register_globals")
	}
	if f.Variable != "undefined_setting" {
		t.Errorf("variable = %q", f.Variable)
	}
}

func TestDynamicCallPassthrough(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$fn = 'strtoupper';
echo $fn($_GET['x']);`)
	want(t, res, 1, 0)
}

// TestQuickPixyNeverPanics exercises robustness on arbitrary inputs.
func TestQuickPixyNeverPanics(t *testing.T) {
	t.Parallel()
	eng := New()
	f := func(body string) bool {
		res, err := eng.Analyze(&analyzer.Target{
			Name:  "fuzz",
			Files: []analyzer.SourceFile{{Path: "fuzz.php", Content: "<?php " + body}},
		})
		return err == nil && res != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
