package pixy

import (
	"testing"

	"repro/internal/analyzer"
)

// scan runs Pixy over one file.
func scan(t *testing.T, src string) *analyzer.Result {
	t.Helper()
	res, err := New().Analyze(&analyzer.Target{
		Name:  "test-plugin",
		Files: []analyzer.SourceFile{{Path: "plugin.php", Content: src}},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

func want(t *testing.T, res *analyzer.Result, xss, sqli int) {
	t.Helper()
	gx, gs := 0, 0
	for _, f := range res.Findings {
		switch f.Class {
		case analyzer.XSS:
			gx++
		case analyzer.SQLi:
			gs++
		}
	}
	if gx != xss || gs != sqli {
		t.Fatalf("XSS=%d SQLi=%d, want XSS=%d SQLi=%d\n%v", gx, gs, xss, sqli, res.Findings)
	}
}

func TestForwardDirectGET(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php echo $_GET['q'];`)
	want(t, res, 1, 0)
}

func TestFlowSensitiveOverwrite(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$x = $_GET['q'];
$x = 'safe';
echo $x;`)
	want(t, res, 0, 0)
}

func TestSanitizer2007Known(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php echo htmlentities($_GET['q']);`)
	want(t, res, 0, 0)
}

func TestSanitizerPost2007Unknown(t *testing.T) {
	t.Parallel()
	// filter_var postdates Pixy's last update: pass-through → FP.
	res := scan(t, `<?php echo filter_var($_GET['q'], FILTER_SANITIZE_STRING);`)
	want(t, res, 1, 0)
}

func TestWordPressSanitizerUnknown(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php echo esc_html($_GET['q']);`)
	want(t, res, 1, 0)
}

func TestClassFileFailsCompletely(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Widget { function show() { echo $_GET['x']; } }
echo $_GET['y'];`)
	// The whole file fails: no findings, one failed file, one error.
	want(t, res, 0, 0)
	if len(res.FilesFailed) != 1 {
		t.Fatalf("FilesFailed = %v, want 1 entry", res.FilesFailed)
	}
	if len(res.Errors) == 0 {
		t.Fatal("expected a parse error message")
	}
	if res.FilesAnalyzed != 0 {
		t.Fatalf("FilesAnalyzed = %d, want 0", res.FilesAnalyzed)
	}
}

func TestObjectOperatorRaisesWarning(t *testing.T) {
	t.Parallel()
	// Procedural file that touches an object: analysis continues but the
	// flow is invisible and a warning is recorded.
	res := scan(t, `<?php
$rows = $wpdb->get_results("SELECT * FROM t");
echo $_GET['x'];`)
	want(t, res, 1, 0)
	if len(res.Errors) == 0 {
		t.Fatal("expected an object-operator warning")
	}
}

func TestRegisterGlobalsFinding(t *testing.T) {
	t.Parallel()
	// $page is never initialized: with register_globals=1 an attacker
	// controls it (§V.A: half of Pixy's findings).
	res := scan(t, `<?php
if ($page) {
	echo $page;
}`)
	want(t, res, 1, 0)
	if !RegisterGlobalsFinding(res.Findings[0]) {
		t.Error("finding should be marked as register_globals")
	}
	if res.Findings[0].Vector != analyzer.VectorRequest {
		t.Errorf("vector = %v, want Request", res.Findings[0].Vector)
	}
}

func TestDefinedVariableNoRegisterGlobals(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$page = 'home';
echo $page;`)
	want(t, res, 0, 0)
}

func TestIncludedDefinitionInvisible(t *testing.T) {
	t.Parallel()
	// $title is defined in another file; Pixy does not follow includes,
	// so the read looks register_globals-injectable (false positive
	// against ground truth).
	res, err := New().Analyze(&analyzer.Target{
		Name: "multi",
		Files: []analyzer.SourceFile{
			{Path: "defs.php", Content: `<?php $title = 'Hello';`},
			{Path: "main.php", Content: `<?php
include 'defs.php';
echo $title;`},
		},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	want(t, res, 1, 0)
	if res.Findings[0].File != "main.php" {
		t.Errorf("finding in %s, want main.php", res.Findings[0].File)
	}
}

func TestUncalledFunctionNotAnalyzed(t *testing.T) {
	t.Parallel()
	// §V.A: "Pixy is unable to [detect vulnerabilities in functions that
	// are not called from the plugin code]".
	res := scan(t, `<?php
function my_hook() { echo $_GET['x']; }`)
	want(t, res, 0, 0)
}

func TestCalledFunctionAnalyzed(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function show($m) { echo $m; }
show($_GET['m']);`)
	want(t, res, 1, 0)
}

func TestContextSensitivePerCall(t *testing.T) {
	t.Parallel()
	// Re-analysis per call: the safe call produces no finding even after
	// the tainted one.
	res := scan(t, `<?php
function show($m) { echo $m; }
show('safe');
show($_GET['m']);`)
	want(t, res, 1, 0)
}

func TestAliasAnalysis(t *testing.T) {
	t.Parallel()
	// The "-A" reference-operator flag (§IV.B): $b aliases $a, so taint
	// written through $a is visible through $b.
	res := scan(t, `<?php
$a = 'clean';
$b =& $a;
$a = $_GET['x'];
echo $b;`)
	want(t, res, 1, 0)
}

func TestSQLiSink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM t WHERE id=$id");`)
	want(t, res, 0, 1)
}

func TestFunctionScopeNoRegisterGlobals(t *testing.T) {
	t.Parallel()
	// Locals inside functions are not register_globals-injectable.
	res := scan(t, `<?php
function f() {
	echo $local;
}
f();`)
	want(t, res, 0, 0)
}

func TestRecursionTerminates(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function r($n) { return r($n); }
echo r($_GET['x']);`)
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestRobustnessAccounting(t *testing.T) {
	t.Parallel()
	res, err := New().Analyze(&analyzer.Target{
		Name: "mixed",
		Files: []analyzer.SourceFile{
			{Path: "oop.php", Content: `<?php class A {}`},
			{Path: "proc.php", Content: `<?php echo 'ok';`},
		},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.FilesAnalyzed != 1 || len(res.FilesFailed) != 1 {
		t.Fatalf("analyzed=%d failed=%v, want 1 and 1", res.FilesAnalyzed, res.FilesFailed)
	}
}
