// Package pixy reimplements the Pixy static analyzer (Jovanovic, Kruegel
// & Kirda, IEEE S&P 2006) at the fidelity the phpSAFE paper's comparison
// depends on (DSN 2015, §II, §IV-V).
//
// Pixy is a flow-sensitive, inter-procedural, context-sensitive forward
// data-flow analyzer with precise alias analysis — but it has not been
// updated since 2007, and the paper's results hinge on that envelope:
//
//   - It "does not parse Object Oriented constructs" (§II): a file that
//     declares a class fails to analyze entirely (the paper counts 32
//     such failures), and stray object-operator uses raise error messages.
//   - It models the register_globals=1 PHP directive: an uninitialized
//     variable can be injected by an attacker via the request, so using
//     one in a sink is reported (§V.A: "half of the vulnerabilities it
//     found were due to this directive").
//   - It only analyzes code reachable from each file's main flow: unlike
//     phpSAFE and RIPS it cannot detect vulnerabilities in functions that
//     are never called from the plugin (§V.A).
//   - Its sanitizer knowledge is frozen in 2007: filter_var, filter_input,
//     json_encode and every WordPress function are unknown.
//   - Alias analysis: reference assignments ($a =& $b) make both names
//     point to the same abstract cell (the paper's "-A" flag).
package pixy

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/config"
	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/phpast"
	"repro/internal/pipeline"
)

// maxCallDepth bounds inter-procedural descent.
const maxCallDepth = 16

// Engine is the Pixy-like analyzer. It is immutable and safe for
// concurrent use on distinct targets.
type Engine struct {
	cfg *config.Compiled
	// registerGlobals enables the register_globals=1 modeling.
	registerGlobals bool
	// rec receives metrics and spans; nil disables instrumentation.
	rec *obs.Recorder
}

var _ analyzer.Analyzer = (*Engine)(nil)

// New returns a Pixy engine with its 2007-era configuration.
func New() *Engine {
	return &Engine{cfg: config.Compile(profile2007()), registerGlobals: true}
}

// profile2007 trims the generic PHP profile down to what a tool frozen in
// 2007 knows: no filter extension, no JSON, and of course no WordPress.
func profile2007() config.Profile {
	g := config.Generic()
	unknown := map[string]bool{
		"filter_var":   true,
		"filter_input": true,
		"json_encode":  true,
		"absint":       true,
	}
	sanitizers := g.Sanitizers[:0]
	for _, s := range g.Sanitizers {
		if !unknown[s.Name] {
			sanitizers = append(sanitizers, s)
		}
	}
	g.Sanitizers = sanitizers
	g.Name = "pixy-2007"
	return g
}

// Name returns the tool name used in reports.
func (e *Engine) Name() string { return "Pixy" }

// OptionsFingerprint identifies the configuration the engine scans with,
// so cached results are never reused across different rule sets.
func (e *Engine) OptionsFingerprint() string { return "pixy|cfg:" + e.cfg.Digest() }

// WithRecorder returns a copy of the engine that records per-plugin
// model/analysis stage spans and parse metrics into rec.
func (e *Engine) WithRecorder(rec *obs.Recorder) *Engine {
	clone := *e
	clone.rec = rec
	return &clone
}

// Analyze scans one plugin target file by file with a background
// context and default budgets.
func (e *Engine) Analyze(target *analyzer.Target) (*analyzer.Result, error) {
	return e.AnalyzeContext(context.Background(), target, nil)
}

// AnalyzeContext scans one plugin target under a context and resource
// budgets (analyzer.ContextAnalyzer). Per-file analysis is
// crash-isolated; a halted governor stops the scan between files and
// inside the forward data-flow walk.
func (e *Engine) AnalyzeContext(ctx context.Context, target *analyzer.Target, opts *analyzer.ScanOptions) (*analyzer.Result, error) {
	if target == nil {
		return nil, fmt.Errorf("pixy: nil target")
	}
	gov := govern.New(ctx, opts, e.rec)
	workers := opts.EffectiveFileWorkers()
	res := &analyzer.Result{Tool: e.Name(), Target: target.Name}

	scan := e.rec.StartNamedSpan("scan:", target.Name, nil)

	// Parse everything up front; function definitions resolve per file
	// only (Pixy does not build a whole-plugin model).
	msp := scan.StartChild("model")
	files, _ := pipeline.ParseFiles(target.Files, nil, e.rec, msp, gov, workers)
	paths := make([]string, 0, len(target.Files))
	for _, sf := range target.Files {
		paths = append(paths, sf.Path)
	}
	sort.Strings(paths)
	msp.EndAndObserve("stage_model_seconds")

	// Pixy keeps no whole-plugin state at all, so the per-file forward
	// walk fans across the worker pool: one Result shard per file,
	// merged in sorted path order for byte-identical output.
	tsp := scan.StartChild("taint")
	shards := make([]*analyzer.Result, len(paths))
	govern.ForkJoin(gov, workers, len(paths), func(child *govern.Governor, _, idx int) {
		path := paths[idx]
		file := files[path]
		shard := &analyzer.Result{}
		shards[idx] = shard
		if hasClassDecl(file) {
			// OOP file: total parse failure, as the paper observed on 32
			// of the 2014 files.
			shard.FilesFailed = append(shard.FilesFailed, path)
			shard.Errors = append(shard.Errors, fmt.Sprintf(
				"%s: parse error: unexpected T_CLASS (object-oriented code is not supported)", path))
			return
		}
		child.CheckNow()
		if child.ScanHalted() {
			return
		}
		fa := &fileAnalysis{
			eng:  e,
			res:  shard,
			path: path,
			fns:  collectFunctions(file),
			vars: make(map[string]*cell),
			gov:  child,
		}
		ok := govern.Protect(child, path, shard, func() {
			child.BeginFile(path)
			fa.execStmts(file.Stmts)
		})
		if child.EndFile() {
			shard.FilesFailed = append(shard.FilesFailed, path)
			shard.Errors = append(shard.Errors, fmt.Sprintf(
				"%s: file time slice exhausted; file not fully analyzed", path))
			return
		}
		if ok && !child.ScanHalted() {
			shard.FilesAnalyzed++
			shard.LinesAnalyzed += file.Lines
		}
	})
	for _, shard := range shards {
		if shard != nil {
			res.Merge(shard)
		}
	}
	tsp.EndAndObserve("stage_taint_seconds")
	res.Dedup()
	err := gov.Finish(res)
	scan.End()
	return res, err
}

// hasClassDecl reports whether a file declares a class or interface.
func hasClassDecl(f *phpast.File) bool {
	found := false
	phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
		if _, ok := n.(*phpast.ClassDecl); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// collectFunctions inventories a single file's function declarations.
func collectFunctions(f *phpast.File) map[string]*phpast.FuncDecl {
	fns := make(map[string]*phpast.FuncDecl)
	phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
		if fd, ok := n.(*phpast.FuncDecl); ok && fd.Name != "" {
			if _, dup := fns[fd.Name]; !dup {
				fns[fd.Name] = fd
			}
			return false
		}
		return true
	})
	return fns
}

// taint is Pixy's per-class taint lattice element.
type taint struct {
	classes map[analyzer.VulnClass]bool
	vector  analyzer.Vector
	source  string
}

// cell is one abstract memory location. Alias analysis makes several
// variable names share a cell.
type cell struct {
	t *taint
	// defined marks locations that have been assigned; undefined reads
	// trigger the register_globals modeling.
	defined bool
}

// fileAnalysis is the forward walk over one file.
type fileAnalysis struct {
	eng  *Engine
	res  *analyzer.Result
	path string
	fns  map[string]*phpast.FuncDecl

	// vars is the current scope: variable name → cell (aliases share).
	vars map[string]*cell

	// objectErrorOnce limits object-operator error spam per file.
	objectErrorOnce bool
	callDepth       int
	// inFunction marks non-main scope (register_globals only applies to
	// the main scope's undefined variables).
	inFunction bool
	// gov carries the scan's budgets into the statement walk (nil when
	// ungoverned).
	gov *govern.Governor
}

// lookup returns the cell for a variable, creating an undefined cell on
// first sight.
func (fa *fileAnalysis) lookup(name string) *cell {
	if c, ok := fa.vars[name]; ok {
		return c
	}
	c := &cell{}
	fa.vars[name] = c
	return c
}

// readVar models a variable read, including superglobals and the
// register_globals injection channel.
func (fa *fileAnalysis) readVar(name string, line int) *taint {
	if src, ok := fa.eng.cfg.Superglobal(name); ok {
		return sourceTaint(src, "$"+name)
	}
	c := fa.lookup(name)
	if c.defined {
		return c.t
	}
	if fa.eng.registerGlobals && !fa.inFunction {
		// register_globals=1: ?name=payload initializes $name from the
		// request before the script runs.
		return &taint{
			classes: map[analyzer.VulnClass]bool{analyzer.XSS: true, analyzer.SQLi: true},
			vector:  analyzer.VectorRequest,
			source:  "register_globals $" + name,
		}
	}
	return nil
}

// sourceTaint builds the taint of a configured source.
func sourceTaint(src config.Source, label string) *taint {
	classes := src.Taints
	if len(classes) == 0 {
		classes = analyzer.Classes()
	}
	m := make(map[analyzer.VulnClass]bool, len(classes))
	for _, c := range classes {
		m[c] = true
	}
	return &taint{classes: m, vector: src.Vector, source: label}
}

// mergeTaint unions two lattice elements.
func mergeTaint(a, b *taint) *taint {
	if a == nil || len(a.classes) == 0 {
		return b
	}
	if b == nil || len(b.classes) == 0 {
		return a
	}
	m := make(map[analyzer.VulnClass]bool, len(a.classes)+len(b.classes))
	for c := range a.classes {
		m[c] = true
	}
	for c := range b.classes {
		m[c] = true
	}
	return &taint{classes: m, vector: a.vector, source: a.source}
}

// sanitizeTaint removes classes from a lattice element.
func sanitizeTaint(t *taint, classes []analyzer.VulnClass) *taint {
	if t == nil {
		return nil
	}
	m := make(map[analyzer.VulnClass]bool, len(t.classes))
	for c := range t.classes {
		m[c] = true
	}
	for _, c := range classes {
		delete(m, c)
	}
	if len(m) == 0 {
		return nil
	}
	return &taint{classes: m, vector: t.vector, source: t.source}
}

// tainted reports whether t carries class c.
func (t *taint) tainted(c analyzer.VulnClass) bool { return t != nil && t.classes[c] }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// execStmts walks statements in order (flow-sensitive forward analysis).
func (fa *fileAnalysis) execStmts(stmts []phpast.Stmt) {
	for _, s := range stmts {
		fa.execStmt(s)
	}
}

// execStmt dispatches one statement. It is the walk's governance
// checkpoint.
func (fa *fileAnalysis) execStmt(s phpast.Stmt) {
	if fa.gov.Halted() {
		return
	}
	fa.gov.Step()
	switch st := s.(type) {
	case *phpast.ExprStmt:
		fa.eval(st.X)
	case *phpast.Echo:
		for _, arg := range st.Args {
			t := fa.eval(arg)
			fa.checkSink("echo", analyzer.XSS, t, arg.Pos(), arg)
		}
	case *phpast.Block:
		fa.execStmts(st.List)
	case *phpast.If:
		fa.eval(st.Cond)
		fa.execStmts(st.Then)
		for _, ei := range st.Elseifs {
			fa.eval(ei.Cond)
			fa.execStmts(ei.Body)
		}
		fa.execStmts(st.Else)
	case *phpast.While:
		fa.eval(st.Cond)
		fa.execStmts(st.Body)
	case *phpast.DoWhile:
		fa.execStmts(st.Body)
		fa.eval(st.Cond)
	case *phpast.For:
		for _, e := range st.Init {
			fa.eval(e)
		}
		for _, e := range st.Cond {
			fa.eval(e)
		}
		fa.execStmts(st.Body)
		for _, e := range st.Post {
			fa.eval(e)
		}
	case *phpast.Foreach:
		coll := fa.eval(st.Expr)
		if v, ok := st.Value.(*phpast.Var); ok {
			c := fa.lookup(v.Name)
			c.t, c.defined = coll, true
		}
		if k, ok := st.Key.(*phpast.Var); ok {
			c := fa.lookup(k.Name)
			c.t, c.defined = coll, true
		}
		fa.execStmts(st.Body)
	case *phpast.Switch:
		fa.eval(st.Cond)
		for _, c := range st.Cases {
			if c.Cond != nil {
				fa.eval(c.Cond)
			}
			fa.execStmts(c.Body)
		}
	case *phpast.Return:
		if st.X != nil {
			t := fa.eval(st.X)
			ret := fa.lookup(retName)
			ret.t, ret.defined = mergeTaint(ret.t, t), true
		}
	case *phpast.Global:
		// Pixy treats globals inside functions as undefined-but-declared
		// (it analyzes per reachable call; we approximate with defined
		// empty cells so register_globals does not fire on them).
		for _, n := range st.Names {
			c := fa.lookup(n)
			c.defined = true
		}
	case *phpast.StaticVars:
		for _, sv := range st.Vars {
			c := fa.lookup(sv.Name)
			c.defined = true
			if sv.Default != nil {
				c.t = fa.eval(sv.Default)
			}
		}
	case *phpast.Unset:
		for _, v := range st.Vars {
			if vv, ok := v.(*phpast.Var); ok {
				fa.vars[vv.Name] = &cell{defined: true}
			}
		}
	case *phpast.Throw:
		fa.eval(st.X)
	case *phpast.Try:
		fa.execStmts(st.Body)
		for _, c := range st.Catches {
			fa.execStmts(c.Body)
		}
		fa.execStmts(st.Finally)
	case *phpast.FuncDecl, *phpast.ClassDecl, *phpast.InlineHTML,
		*phpast.Break, *phpast.Continue, *phpast.BadStmt:
		// Declarations inventoried separately; no data flow here.
	}
}

// retName is the pseudo-variable collecting return values.
const retName = "\x00return"

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// eval computes the taint of an expression. A halted governor
// collapses evaluation so deep trees unwind quickly.
func (fa *fileAnalysis) eval(e phpast.Expr) *taint {
	if fa.gov.Halted() {
		return nil
	}
	switch x := e.(type) {
	case nil:
		return nil
	case *phpast.Literal, *phpast.ConstFetch, *phpast.ClassConstFetch:
		return nil
	case *phpast.Var:
		return fa.readVar(x.Name, x.Pos())
	case *phpast.VarVar:
		fa.eval(x.Expr)
		return nil
	case *phpast.IndexFetch:
		return fa.eval(x.Base)
	case *phpast.InterpString:
		var t *taint
		for _, p := range x.Parts {
			t = mergeTaint(t, fa.eval(p))
		}
		return t
	case *phpast.Binary:
		l := fa.eval(x.L)
		r := fa.eval(x.R)
		if x.Op == "." {
			return mergeTaint(l, r)
		}
		return nil
	case *phpast.Unary:
		t := fa.eval(x.X)
		if x.Op == "@" {
			return t
		}
		return nil
	case *phpast.IncDec:
		fa.eval(x.X)
		return nil
	case *phpast.Assign:
		return fa.evalAssign(x)
	case *phpast.Ternary:
		c := fa.eval(x.Cond)
		var th *taint
		if x.Then != nil {
			th = fa.eval(x.Then)
		} else {
			th = c
		}
		return mergeTaint(th, fa.eval(x.Else))
	case *phpast.Cast:
		t := fa.eval(x.X)
		switch x.Type {
		case "int", "float", "bool", "unset":
			return nil
		default:
			return t
		}
	case *phpast.ArrayLit:
		var t *taint
		for _, it := range x.Items {
			fa.eval(it.Key)
			t = mergeTaint(t, fa.eval(it.Value))
		}
		return t
	case *phpast.IssetExpr, *phpast.EmptyExpr, *phpast.InstanceOf, *phpast.ListExpr:
		return nil
	case *phpast.FuncCall:
		return fa.evalCall(x)
	case *phpast.PrintExpr:
		t := fa.eval(x.X)
		fa.checkSink("print", analyzer.XSS, t, x.Pos(), x.X)
		return nil
	case *phpast.ExitExpr:
		if x.X != nil {
			t := fa.eval(x.X)
			fa.checkSink("exit", analyzer.XSS, t, x.Pos(), x.X)
		}
		return nil
	case *phpast.MethodCall, *phpast.PropertyFetch, *phpast.StaticCall,
		*phpast.New, *phpast.StaticPropertyFetch, *phpast.CloneExpr:
		fa.objectError(e.Pos())
		return nil
	case *phpast.IncludeExpr:
		// Pixy does not expand plugin includes; variables defined in the
		// included file stay invisible (register_globals noise source).
		fa.eval(x.Path)
		return nil
	case *phpast.Closure:
		// 2007 predates closures entirely.
		fa.objectError(e.Pos())
		return nil
	default:
		return nil
	}
}

// objectError records one "unsupported construct" error per file.
func (fa *fileAnalysis) objectError(line int) {
	if fa.objectErrorOnce {
		return
	}
	fa.objectErrorOnce = true
	fa.res.Errors = append(fa.res.Errors, fmt.Sprintf(
		"%s:%d: warning: unsupported object-oriented construct skipped", fa.path, line))
}

// evalAssign handles assignment including the alias form $a =& $b.
func (fa *fileAnalysis) evalAssign(x *phpast.Assign) *taint {
	if x.ByRef {
		// Alias analysis: both names share one cell afterwards.
		if lv, ok := x.LHS.(*phpast.Var); ok {
			if rv, ok := x.RHS.(*phpast.Var); ok {
				c := fa.lookup(rv.Name)
				fa.vars[lv.Name] = c
				return c.t
			}
		}
	}
	rhs := fa.eval(x.RHS)
	var t *taint
	switch x.Op {
	case "=":
		t = rhs
	case ".=":
		t = mergeTaint(fa.eval(x.LHS), rhs)
	default:
		fa.eval(x.LHS)
		t = nil // numeric compound operators
	}
	fa.assignTo(x.LHS, t)
	return t
}

// assignTo stores taint into an assignable expression.
func (fa *fileAnalysis) assignTo(lhs phpast.Expr, t *taint) {
	switch target := lhs.(type) {
	case *phpast.Var:
		c := fa.lookup(target.Name)
		c.t, c.defined = t, true
	case *phpast.IndexFetch:
		if base, ok := rootVar(target); ok {
			c := fa.lookup(base)
			c.t, c.defined = mergeTaint(c.t, t), true
		}
	case *phpast.ListExpr:
		for _, inner := range target.Targets {
			if inner != nil {
				fa.assignTo(inner, t)
			}
		}
	}
}

// rootVar finds the base variable of an index chain.
func rootVar(e phpast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *phpast.Var:
			return x.Name, true
		case *phpast.IndexFetch:
			e = x.Base
		default:
			return "", false
		}
	}
}

// evalCall handles function calls: sanitizers, sources, sinks and
// same-file user functions (analyzed per call, context-sensitively).
func (fa *fileAnalysis) evalCall(x *phpast.FuncCall) *taint {
	if x.NameExpr != nil {
		fa.eval(x.NameExpr)
		var t *taint
		for _, a := range x.Args {
			t = mergeTaint(t, fa.eval(a.Value))
		}
		return t
	}
	name := x.Name
	args := make([]*taint, len(x.Args))
	for i, a := range x.Args {
		args[i] = fa.eval(a.Value)
	}

	if classes, ok := fa.eng.cfg.FunctionSanitizer(name); ok {
		var t *taint
		for _, a := range args {
			t = mergeTaint(t, a)
		}
		return sanitizeTaint(t, classes)
	}
	if sinks := fa.eng.cfg.FunctionSinks(name); len(sinks) > 0 {
		for _, sink := range sinks {
			for i, a := range args {
				if !config.SinkSensitiveArg(sink, i) {
					continue
				}
				var argExpr phpast.Expr
				if i < len(x.Args) {
					argExpr = x.Args[i].Value
				}
				fa.checkSink(name, sink.Vuln, a, x.Pos(), argExpr)
			}
		}
		return nil
	}
	if src, ok := fa.eng.cfg.FunctionSource(name); ok {
		return sourceTaint(src, name+"()")
	}

	// Same-file user function: re-analyzed per call (context-sensitive).
	if fd, ok := fa.fns[name]; ok && fa.callDepth < maxCallDepth {
		return fa.callFunction(fd, args)
	}

	// Unknown function: pass-through (WordPress sanitizers land here →
	// Pixy false positives).
	var t *taint
	for _, a := range args {
		t = mergeTaint(t, a)
	}
	return t
}

// callFunction analyzes a function body with concrete argument taints in
// a fresh scope (Pixy's context-sensitive inter-procedural analysis).
func (fa *fileAnalysis) callFunction(fd *phpast.FuncDecl, args []*taint) *taint {
	savedVars := fa.vars
	savedInFunction := fa.inFunction
	fa.vars = make(map[string]*cell, len(fd.Params)+4)
	fa.inFunction = true
	fa.callDepth++

	for i, p := range fd.Params {
		c := fa.lookup(p.Name)
		c.defined = true
		if i < len(args) {
			c.t = args[i]
		}
	}
	fa.execStmts(fd.Body)
	ret := fa.vars[retName]

	fa.callDepth--
	fa.inFunction = savedInFunction
	fa.vars = savedVars
	if ret != nil {
		return ret.t
	}
	return nil
}

// checkSink reports a finding when taint of the sink's class reaches it.
func (fa *fileAnalysis) checkSink(sink string, class analyzer.VulnClass,
	t *taint, line int, expr phpast.Expr) {
	if !t.tainted(class) {
		return
	}
	varName := ""
	if expr != nil {
		if base, ok := rootVar(expr); ok {
			varName = base
		}
	}
	note := "flow from " + t.source
	fa.res.Findings = append(fa.res.Findings, analyzer.Finding{
		Tool:     fa.eng.Name(),
		File:     fa.path,
		Line:     line,
		Class:    class,
		Sink:     sink,
		Variable: varName,
		Vector:   t.vector,
		Trace: []analyzer.TraceStep{
			{File: fa.path, Line: line, Var: "$" + varName, Note: note},
		},
	})
	fa.gov.CheckFindings(len(fa.res.Findings))
}

// RegisterGlobalsFinding reports whether a finding came from the
// register_globals modeling (used by the evaluation's §V.A breakdown).
func RegisterGlobalsFinding(f analyzer.Finding) bool {
	for _, step := range f.Trace {
		if strings.Contains(step.Note, "register_globals") {
			return true
		}
	}
	return false
}
