package phpprint

import (
	"strings"
	"testing"

	"repro/internal/phpast"
	"repro/internal/phpparse"
)

// roundTrip parses src, prints it, reparses, and reprints: the two
// printed forms must be identical (print∘parse is idempotent past the
// first normalization).
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	f1 := phpparse.Parse("a.php", src)
	if len(f1.Errors) > 0 {
		t.Fatalf("first parse errors: %v", f1.Errors)
	}
	out1 := File(f1)
	f2 := phpparse.Parse("b.php", out1)
	if len(f2.Errors) > 0 {
		t.Fatalf("reparse errors: %v\nprinted:\n%s", f2.Errors, out1)
	}
	out2 := File(f2)
	if out1 != out2 {
		t.Fatalf("round trip unstable:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
	return out1
}

func TestRoundTripStatements(t *testing.T) {
	t.Parallel()
	sources := []string{
		`<?php $x = $_GET['id']; echo $x;`,
		`<?php if ($a > 1) { echo 'big'; } elseif ($a < 0) { echo 'neg'; } else { echo 'small'; }`,
		`<?php while ($x) { $x--; }`,
		`<?php do { $i++; } while ($i < 5);`,
		`<?php for ($i = 0; $i < 10; $i++) { continue; }`,
		`<?php foreach ($rows as $k => $v) { echo $v; }`,
		`<?php foreach ($rows as &$v) { $v = 1; }`,
		`<?php switch ($m) { case 'a': echo 1; break; default: echo 2; }`,
		`<?php function f(&$a, $b = 3, array $c = array()) { return $a + $b; }`,
		`<?php global $wpdb, $post;`,
		`<?php static $cache = array();`,
		`<?php unset($a, $b['k']);`,
		`<?php try { f(); } catch (Exception $e) { log_it($e); }`,
		`<?php throw new Exception('x');`,
		`<?php $f = function ($a) use (&$t) { $t += $a; };`,
	}
	for _, src := range sources {
		src := src
		t.Run(src[:min(30, len(src))], func(t *testing.T) {
			t.Parallel()
			roundTrip(t, src)
		})
	}
}

func TestRoundTripExpressions(t *testing.T) {
	t.Parallel()
	sources := []string{
		`<?php $a = 1 + 2 * 3 - 4 / 5 % 6;`,
		`<?php $a = ($x . 'b') . "c";`,
		`<?php $a = $b ? $c : $d;`,
		`<?php $a = $b ?: $d;`,
		`<?php $a = !$b && $c || $d;`,
		`<?php $a = (int) $x + (float) $y;`,
		`<?php $a = array('k' => 1, 2, 'x' => array(3));`,
		`<?php $a = isset($x) && !empty($y);`,
		`<?php list($a, $b) = explode(',', $s);`,
		`<?php $obj->method($x)->prop[2] = 5;`,
		`<?php Foo::bar($x); $y = Foo::$prop; $z = Foo::BAZ;`,
		`<?php $w = new WP_Query(array('p' => 1));`,
		`<?php $a = clone $b;`,
		`<?php $ok = $x instanceof WP_Post;`,
		`<?php include 'a.php'; require_once 'b.php';`,
		`<?php print $x;`,
		`<?php $a =& $b;`,
		`<?php $a = @file_get_contents('x');`,
		`<?php $a++; --$b;`,
		`<?php $a = $x << 2 | $y & 3 ^ $z;`,
	}
	for _, src := range sources {
		src := src
		t.Run(src[:min(30, len(src))], func(t *testing.T) {
			t.Parallel()
			roundTrip(t, src)
		})
	}
}

func TestRoundTripClasses(t *testing.T) {
	t.Parallel()
	roundTrip(t, `<?php
abstract class Base_Widget extends WP_Widget implements Renderable {
	const VERSION = '1.0';
	public $name = 'w';
	private static $count = 0;
	public function __construct($n) { $this->name = $n; }
	abstract protected function render();
	public static function boot() { return new self('x'); }
}`)
}

func TestRoundTripInterpolation(t *testing.T) {
	t.Parallel()
	// Interpolated strings normalize to concatenation and stay stable.
	out := roundTrip(t, `<?php $q = "SELECT * FROM {$wpdb->prefix}t WHERE id=$id";`)
	if !strings.Contains(out, "$wpdb->prefix") || !strings.Contains(out, "$id") {
		t.Fatalf("interpolation lost: %s", out)
	}
}

func TestRoundTripBacktick(t *testing.T) {
	t.Parallel()
	out := roundTrip(t, "<?php $r = `ls -la $dir`;")
	if !strings.Contains(out, "`") {
		t.Fatalf("backtick semantics lost: %s", out)
	}
}

func TestPrecedencePreserved(t *testing.T) {
	t.Parallel()
	// (1 + 2) * 3 must keep its parentheses through the round trip.
	out := roundTrip(t, `<?php $a = (1 + 2) * 3;`)
	if !strings.Contains(out, "(1 + 2) * 3") {
		t.Fatalf("precedence lost: %s", out)
	}
	out2 := roundTrip(t, `<?php $a = 1 + 2 * 3;`)
	if strings.Contains(out2, "(") {
		t.Fatalf("needless parens added: %s", out2)
	}
}

func TestStringQuoting(t *testing.T) {
	t.Parallel()
	roundTrip(t, `<?php $a = 'simple';`)
	roundTrip(t, `<?php $a = "with \"quotes\" and \$dollar";`)
	roundTrip(t, `<?php $a = 'it\'s';`)
	out := roundTrip(t, "<?php $a = \"line\\nbreak\";")
	if !strings.Contains(out, `\n`) {
		t.Fatalf("newline escape lost: %s", out)
	}
}

func TestExprHelper(t *testing.T) {
	t.Parallel()
	f := phpparse.Parse("x.php", `<?php $a = $b . 'c';`)
	as := f.Stmts[0].(*phpast.ExprStmt).X
	if got := Expr(as); got != `$a = $b . 'c'` {
		t.Fatalf("Expr = %q", got)
	}
}

func TestStmtsHelper(t *testing.T) {
	t.Parallel()
	f := phpparse.Parse("x.php", `<?php echo 1; echo 2;`)
	out := Stmts(f.Stmts)
	if !strings.Contains(out, "echo 1;") || !strings.Contains(out, "echo 2;") {
		t.Fatalf("Stmts = %q", out)
	}
	if strings.Contains(out, "<?php") {
		t.Fatal("Stmts should not emit the open tag")
	}
}

func TestRoundTripTortureSubset(t *testing.T) {
	t.Parallel()
	roundTrip(t, `<?php
function torture($a, &$b) {
	$sql = "SELECT * FROM {$GLOBALS['table']} WHERE id=$a";
	$rows = mysql_query($sql);
	while ($row = mysql_fetch_assoc($rows)) {
		foreach ($row as $k => $v) {
			echo '<td>' . htmlspecialchars($v) . '</td>';
		}
	}
	return isset($b) ? $b : null;
}
torture(1, $x);`)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
