package phpprint

import (
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/phpast"
	"repro/internal/phpparse"
)

// TestCorpusRoundTrip prints and reparses every file of the generated
// corpus: the printed form must parse cleanly and preserve the top-level
// statement structure. This exercises the printer over ~270 KLOC of
// realistic plugin PHP.
func TestCorpusRoundTrip(t *testing.T) {
	t.Parallel()
	c12, c14 := corpus.MustGenerate()
	for _, c := range []*corpus.Corpus{c12, c14} {
		for _, target := range c.Targets {
			for _, file := range target.Files {
				orig := phpparse.Parse(file.Path, file.Content)
				if len(orig.Errors) > 0 {
					t.Fatalf("%s/%s: corpus file has parse errors: %v",
						target.Name, file.Path, orig.Errors)
				}
				printed := File(orig)
				re := phpparse.Parse(file.Path, printed)
				if len(re.Errors) > 0 {
					t.Fatalf("%s/%s: printed form has parse errors: %v\n%s",
						target.Name, file.Path, re.Errors[:min(3, len(re.Errors))], printed)
				}
				if got, want := countNodes(re.Stmts), countNodes(orig.Stmts); got < want {
					t.Errorf("%s/%s: node count shrank %d -> %d",
						target.Name, file.Path, want, got)
				}
			}
		}
	}
}

// countNodes counts AST nodes, ignoring pure-literal echo splitting
// differences.
func countNodes(stmts []phpast.Stmt) int {
	n := 0
	phpast.InspectStmts(stmts, func(node phpast.Node) bool {
		switch node.(type) {
		case *phpast.Literal, *phpast.Echo:
			// Inline HTML normalization merges/splits literal echoes.
			return true
		}
		n++
		return true
	})
	return n
}

// TestQuickPrintedFormAlwaysParses generates small random statement
// sequences via the parser itself and checks print→parse stability.
func TestQuickPrintedFormAlwaysParses(t *testing.T) {
	t.Parallel()
	snippets := []string{
		`$a = %d;`,
		`echo $a . '%d';`,
		`if ($a > %d) { echo 'x'; }`,
		`function f%d($x) { return $x; }`,
		`$arr[%d] = 'v';`,
		`for ($i = 0; $i < %d; $i++) { continue; }`,
	}
	f := func(picks []uint8) bool {
		src := "<?php\n"
		for i, pk := range picks {
			if i > 12 {
				break
			}
			tpl := snippets[int(pk)%len(snippets)]
			src += replaceCount(tpl, i) + "\n"
		}
		orig := phpparse.Parse("gen.php", src)
		if len(orig.Errors) > 0 {
			return true // the generator built something odd; skip
		}
		printed := File(orig)
		re := phpparse.Parse("gen2.php", printed)
		return len(re.Errors) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// replaceCount substitutes the %d placeholder.
func replaceCount(tpl string, n int) string {
	out := ""
	for i := 0; i < len(tpl); i++ {
		if i+1 < len(tpl) && tpl[i] == '%' && tpl[i+1] == 'd' {
			out += itoa(n)
			i++
			continue
		}
		out += string(tpl[i])
	}
	return out
}

// itoa is a minimal integer renderer.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
