// Package phpprint renders phpast trees back to PHP source text.
//
// The printer is the inverse of package phpparse for the analyzed PHP 5
// subset. It exists for three reasons: inspecting what the parser
// actually understood (debugging analyzers), emitting normalized PHP from
// programmatically-built trees (the corpus generator's test oracle), and
// the strongest parser test we have — the round-trip property
// parse(print(parse(src))) ≡ parse(src).
//
// Output is normalized, not source-preserving: comments and original
// whitespace are gone, strings are emitted single-quoted where possible,
// and every statement is terminated explicitly.
package phpprint

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/phpast"
)

// File renders a whole parsed file, including the opening tag.
func File(f *phpast.File) string {
	var p printer
	p.sb.WriteString("<?php\n")
	p.stmts(f.Stmts)
	return p.sb.String()
}

// Stmts renders a statement list at top level (no opening tag).
func Stmts(stmts []phpast.Stmt) string {
	var p printer
	p.stmts(stmts)
	return p.sb.String()
}

// Expr renders a single expression.
func Expr(e phpast.Expr) string {
	var p printer
	p.expr(e, precLowest)
	return p.sb.String()
}

// printer accumulates output with indentation.
type printer struct {
	sb     strings.Builder
	indent int
}

// line writes an indented line.
func (p *printer) line(s string) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteByte('\t')
	}
	p.sb.WriteString(s)
	p.sb.WriteByte('\n')
}

// open writes a line and increases the indent.
func (p *printer) open(s string) {
	p.line(s)
	p.indent++
}

// close decreases the indent and writes a line.
func (p *printer) close(s string) {
	p.indent--
	p.line(s)
}

// stmts renders a statement list.
func (p *printer) stmts(list []phpast.Stmt) {
	for _, s := range list {
		p.stmt(s)
	}
}

// stmt renders one statement.
func (p *printer) stmt(s phpast.Stmt) {
	switch st := s.(type) {
	case *phpast.ExprStmt:
		p.line(exprString(st.X) + ";")

	case *phpast.Echo:
		if st.FromHTML {
			// Normalized form: inline HTML becomes an explicit echo.
			p.line("echo " + exprListString(st.Args) + ";")
			return
		}
		p.line("echo " + exprListString(st.Args) + ";")

	case *phpast.Block:
		p.open("{")
		p.stmts(st.List)
		p.close("}")

	case *phpast.If:
		p.open("if (" + exprString(st.Cond) + ") {")
		p.stmts(st.Then)
		for _, ei := range st.Elseifs {
			p.indent--
			p.line("} elseif (" + exprString(ei.Cond) + ") {")
			p.indent++
			p.stmts(ei.Body)
		}
		if st.Else != nil {
			p.indent--
			p.line("} else {")
			p.indent++
			p.stmts(st.Else)
		}
		p.close("}")

	case *phpast.While:
		p.open("while (" + exprString(st.Cond) + ") {")
		p.stmts(st.Body)
		p.close("}")

	case *phpast.DoWhile:
		p.open("do {")
		p.stmts(st.Body)
		p.close("} while (" + exprString(st.Cond) + ");")

	case *phpast.For:
		p.open(fmt.Sprintf("for (%s; %s; %s) {",
			exprsJoin(st.Init), exprsJoin(st.Cond), exprsJoin(st.Post)))
		p.stmts(st.Body)
		p.close("}")

	case *phpast.Foreach:
		head := "foreach (" + exprString(st.Expr) + " as "
		if st.Key != nil {
			head += exprString(st.Key) + " => "
		}
		if st.ByRef {
			head += "&"
		}
		head += exprString(st.Value) + ") {"
		p.open(head)
		p.stmts(st.Body)
		p.close("}")

	case *phpast.Switch:
		p.open("switch (" + exprString(st.Cond) + ") {")
		for _, c := range st.Cases {
			if c.Cond != nil {
				p.open("case " + exprString(c.Cond) + ":")
			} else {
				p.open("default:")
			}
			p.stmts(c.Body)
			p.indent--
		}
		p.close("}")

	case *phpast.Return:
		if st.X != nil {
			p.line("return " + exprString(st.X) + ";")
		} else {
			p.line("return;")
		}

	case *phpast.Break:
		p.line("break;")
	case *phpast.Continue:
		p.line("continue;")

	case *phpast.Global:
		names := make([]string, len(st.Names))
		for i, n := range st.Names {
			names[i] = "$" + n
		}
		p.line("global " + strings.Join(names, ", ") + ";")

	case *phpast.StaticVars:
		parts := make([]string, len(st.Vars))
		for i, v := range st.Vars {
			parts[i] = "$" + v.Name
			if v.Default != nil {
				parts[i] += " = " + exprString(v.Default)
			}
		}
		p.line("static " + strings.Join(parts, ", ") + ";")

	case *phpast.Unset:
		p.line("unset(" + exprListString(st.Vars) + ");")

	case *phpast.InlineHTML:
		p.line("echo " + phpString(st.Text) + ";")

	case *phpast.Throw:
		p.line("throw " + exprString(st.X) + ";")

	case *phpast.Try:
		p.open("try {")
		p.stmts(st.Body)
		for _, c := range st.Catches {
			p.indent--
			p.line("} catch (" + c.Class + " $" + c.Var + ") {")
			p.indent++
			p.stmts(c.Body)
		}
		if st.Finally != nil {
			p.indent--
			p.line("} finally {")
			p.indent++
			p.stmts(st.Finally)
		}
		p.close("}")

	case *phpast.FuncDecl:
		name := st.OrigName
		if name == "" {
			name = st.Name
		}
		amp := ""
		if st.ByRefReturn {
			amp = "&"
		}
		p.open("function " + amp + name + "(" + params(st.Params) + ") {")
		p.stmts(st.Body)
		p.close("}")

	case *phpast.ClassDecl:
		p.classDecl(st)

	case *phpast.BadStmt:
		p.line("/* unparseable: " + st.Reason + " */")
	}
}

// classDecl renders a class or interface declaration.
func (p *printer) classDecl(st *phpast.ClassDecl) {
	head := ""
	if st.Abstract {
		head += "abstract "
	}
	if st.IsInterface {
		head += "interface "
	} else {
		head += "class "
	}
	name := st.OrigName
	if name == "" {
		name = st.Name
	}
	head += name
	if st.Extends != "" {
		head += " extends " + st.Extends
	}
	if len(st.Implements) > 0 {
		head += " implements " + strings.Join(st.Implements, ", ")
	}
	p.open(head + " {")
	for _, c := range st.Consts {
		p.line("const " + c.Name + " = " + exprString(c.Value) + ";")
	}
	for _, prop := range st.Props {
		line := visibility(prop.Visibility)
		if prop.Static {
			line += " static"
		}
		line += " $" + prop.Name
		if prop.Default != nil {
			line += " = " + exprString(prop.Default)
		}
		p.line(line + ";")
	}
	for _, m := range st.Methods {
		head := visibility(m.Visibility)
		if m.Static {
			head += " static"
		}
		if m.Abstract {
			head += " abstract"
		}
		name := m.OrigName
		if name == "" {
			name = m.Name
		}
		head += " function " + name + "(" + params(m.Params) + ")"
		if m.Abstract || m.Body == nil {
			p.line(head + ";")
			continue
		}
		p.open(head + " {")
		p.stmts(m.Body)
		p.close("}")
	}
	p.close("}")
}

// visibility renders a member visibility keyword.
func visibility(v phpast.Visibility) string {
	switch v {
	case phpast.Protected:
		return "protected"
	case phpast.Private:
		return "private"
	default:
		return "public"
	}
}

// params renders a parameter list.
func params(list []phpast.Param) string {
	parts := make([]string, len(list))
	for i, prm := range list {
		s := ""
		if prm.TypeHint != "" {
			s += prm.TypeHint + " "
		}
		if prm.ByRef {
			s += "&"
		}
		s += "$" + prm.Name
		if prm.Default != nil {
			s += " = " + exprString(prm.Default)
		}
		parts[i] = s
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Operator precedence levels for parenthesization (loosest first).
const (
	precLowest = iota
	precAssign
	precTernary
	precOr
	precAnd
	precBitOr
	precBitXor
	precBitAnd
	precEquality
	precRelational
	precShift
	precAdditive
	precMultiplicative
	precUnary
	precPostfix
)

// binaryPrec maps operators to precedence levels.
func binaryPrec(op string) int {
	switch op {
	case "or", "xor", "and":
		return precLowest + 1
	case "||":
		return precOr
	case "&&":
		return precAnd
	case "|":
		return precBitOr
	case "^":
		return precBitXor
	case "&":
		return precBitAnd
	case "==", "!=", "===", "!==":
		return precEquality
	case "<", "<=", ">", ">=":
		return precRelational
	case "<<", ">>":
		return precShift
	case "+", "-", ".":
		return precAdditive
	case "*", "/", "%":
		return precMultiplicative
	default:
		return precUnary
	}
}

// exprString renders an expression at lowest precedence.
func exprString(e phpast.Expr) string {
	var p printer
	p.expr(e, precLowest)
	return p.sb.String()
}

// exprListString renders comma-separated expressions.
func exprListString(list []phpast.Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = exprString(e)
	}
	return strings.Join(parts, ", ")
}

// exprsJoin renders expressions joined by ", " (for for-headers).
func exprsJoin(list []phpast.Expr) string {
	return exprListString(list)
}

// expr renders an expression, parenthesizing when its precedence is lower
// than the context.
func (p *printer) expr(e phpast.Expr, ctx int) {
	switch x := e.(type) {
	case nil:
		return

	case *phpast.Var:
		p.sb.WriteString("$" + x.Name)

	case *phpast.VarVar:
		p.sb.WriteString("${" + exprString(x.Expr) + "}")

	case *phpast.Literal:
		p.literal(x)

	case *phpast.InterpString:
		p.interp(x)

	case *phpast.ConstFetch:
		p.sb.WriteString(x.Name)

	case *phpast.ClassConstFetch:
		p.sb.WriteString(x.Class + "::" + x.Name)

	case *phpast.StaticPropertyFetch:
		p.sb.WriteString(x.Class + "::$" + x.Name)

	case *phpast.PropertyFetch:
		p.expr(x.Object, precPostfix)
		if x.NameExpr != nil {
			p.sb.WriteString("->{" + exprString(x.NameExpr) + "}")
		} else {
			p.sb.WriteString("->" + x.Name)
		}

	case *phpast.IndexFetch:
		p.expr(x.Base, precPostfix)
		p.sb.WriteString("[")
		if x.Index != nil {
			p.expr(x.Index, precLowest)
		}
		p.sb.WriteString("]")

	case *phpast.FuncCall:
		if x.NameExpr != nil {
			p.expr(x.NameExpr, precPostfix)
		} else {
			p.sb.WriteString(x.Name)
		}
		p.args(x.Args)

	case *phpast.MethodCall:
		p.expr(x.Object, precPostfix)
		if x.NameExpr != nil {
			p.sb.WriteString("->{" + exprString(x.NameExpr) + "}")
		} else {
			p.sb.WriteString("->" + x.Name)
		}
		p.args(x.Args)

	case *phpast.StaticCall:
		p.sb.WriteString(x.Class + "::" + x.Name)
		p.args(x.Args)

	case *phpast.New:
		p.sb.WriteString("new ")
		if x.ClassExpr != nil {
			p.expr(x.ClassExpr, precPostfix)
		} else {
			p.sb.WriteString(x.Class)
		}
		p.args(x.Args)

	case *phpast.Assign:
		if ctx > precAssign {
			p.sb.WriteString("(")
			defer p.sb.WriteString(")")
		}
		p.expr(x.LHS, precPostfix)
		p.sb.WriteString(" " + x.Op)
		if x.ByRef {
			p.sb.WriteString("&")
		}
		p.sb.WriteString(" ")
		p.expr(x.RHS, precAssign)

	case *phpast.Binary:
		prec := binaryPrec(x.Op)
		if ctx > prec {
			p.sb.WriteString("(")
			defer p.sb.WriteString(")")
		}
		p.expr(x.L, prec)
		p.sb.WriteString(" " + x.Op + " ")
		p.expr(x.R, prec+1)

	case *phpast.Unary:
		if ctx > precUnary {
			p.sb.WriteString("(")
			defer p.sb.WriteString(")")
		}
		p.sb.WriteString(x.Op)
		p.expr(x.X, precUnary)

	case *phpast.IncDec:
		if x.Prefix {
			p.sb.WriteString(x.Op)
			p.expr(x.X, precUnary)
		} else {
			p.expr(x.X, precPostfix)
			p.sb.WriteString(x.Op)
		}

	case *phpast.Ternary:
		if ctx > precTernary {
			p.sb.WriteString("(")
			defer p.sb.WriteString(")")
		}
		p.expr(x.Cond, precOr)
		if x.Then != nil {
			p.sb.WriteString(" ? ")
			p.expr(x.Then, precTernary)
			p.sb.WriteString(" : ")
		} else {
			p.sb.WriteString(" ?: ")
		}
		p.expr(x.Else, precTernary)

	case *phpast.Cast:
		if ctx > precUnary {
			p.sb.WriteString("(")
			defer p.sb.WriteString(")")
		}
		p.sb.WriteString("(" + x.Type + ") ")
		p.expr(x.X, precUnary)

	case *phpast.ArrayLit:
		p.sb.WriteString("array(")
		for i, item := range x.Items {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			if item.Key != nil {
				p.expr(item.Key, precTernary)
				p.sb.WriteString(" => ")
			}
			if item.ByRef {
				p.sb.WriteString("&")
			}
			p.expr(item.Value, precTernary)
		}
		p.sb.WriteString(")")

	case *phpast.ListExpr:
		p.sb.WriteString("list(")
		for i, target := range x.Targets {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			if target != nil {
				p.expr(target, precLowest)
			}
		}
		p.sb.WriteString(")")

	case *phpast.IssetExpr:
		p.sb.WriteString("isset(" + exprListString(x.Vars) + ")")

	case *phpast.EmptyExpr:
		p.sb.WriteString("empty(" + exprString(x.X) + ")")

	case *phpast.IncludeExpr:
		kw := map[phpast.IncludeKind]string{
			phpast.IncInclude:     "include",
			phpast.IncIncludeOnce: "include_once",
			phpast.IncRequire:     "require",
			phpast.IncRequireOnce: "require_once",
		}[x.Kind]
		p.sb.WriteString(kw + " ")
		p.expr(x.Path, precAssign)

	case *phpast.ExitExpr:
		p.sb.WriteString("exit(")
		if x.X != nil {
			p.expr(x.X, precLowest)
		}
		p.sb.WriteString(")")

	case *phpast.PrintExpr:
		if ctx > precAssign {
			p.sb.WriteString("(")
			defer p.sb.WriteString(")")
		}
		p.sb.WriteString("print ")
		p.expr(x.X, precAssign)

	case *phpast.CloneExpr:
		p.sb.WriteString("clone ")
		p.expr(x.X, precUnary)

	case *phpast.InstanceOf:
		if ctx > precUnary {
			p.sb.WriteString("(")
			defer p.sb.WriteString(")")
		}
		p.expr(x.X, precUnary)
		p.sb.WriteString(" instanceof " + x.Class)

	case *phpast.Closure:
		p.sb.WriteString("function (" + params(x.Params) + ")")
		if len(x.Uses) > 0 {
			uses := make([]string, len(x.Uses))
			for i, u := range x.Uses {
				prefix := ""
				if u.ByRef {
					prefix = "&"
				}
				uses[i] = prefix + "$" + u.Name
			}
			p.sb.WriteString(" use (" + strings.Join(uses, ", ") + ")")
		}
		p.sb.WriteString(" {\n")
		inner := printer{indent: p.indent + 1}
		inner.stmts(x.Body)
		p.sb.WriteString(inner.sb.String())
		for i := 0; i < p.indent; i++ {
			p.sb.WriteByte('\t')
		}
		p.sb.WriteString("}")

	case *phpast.BadExpr:
		p.sb.WriteString("/* bad expr: " + x.Reason + " */ null")

	default:
		p.sb.WriteString("/* unknown expr */ null")
	}
}

// args renders a call argument list.
func (p *printer) args(list []phpast.Arg) {
	p.sb.WriteString("(")
	for i, a := range list {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		if a.ByRef {
			p.sb.WriteString("&")
		}
		p.expr(a.Value, precTernary)
	}
	p.sb.WriteString(")")
}

// literal renders a scalar literal.
func (p *printer) literal(x *phpast.Literal) {
	switch x.Kind {
	case phpast.LitInt, phpast.LitFloat:
		p.sb.WriteString(x.Value)
	default:
		p.sb.WriteString(phpString(x.Value))
	}
}

// interp renders an interpolated string using explicit concatenation,
// which is unambiguous and round-trips cleanly.
func (p *printer) interp(x *phpast.InterpString) {
	if x.IsShell {
		// Keep backticks: the shell semantics matter to analyzers.
		p.sb.WriteString("`")
		for _, part := range x.Parts {
			switch pt := part.(type) {
			case *phpast.Literal:
				p.sb.WriteString(pt.Value)
			case *phpast.Var:
				p.sb.WriteString("$" + pt.Name)
			default:
				// Curly interpolation; the rendered expression starts
				// with "$" for every interpolatable node.
				p.sb.WriteString("{" + exprString(part) + "}")
			}
		}
		p.sb.WriteString("`")
		return
	}
	if len(x.Parts) == 0 {
		p.sb.WriteString("''")
		return
	}
	for i, part := range x.Parts {
		if i > 0 {
			p.sb.WriteString(" . ")
		}
		p.expr(part, precAdditive+1)
	}
}

// phpString renders a Go string as a single-quoted PHP string literal.
func phpString(s string) string {
	if !strings.ContainsAny(s, "'\\") && isPrintable(s) {
		return "'" + s + "'"
	}
	// Fall back to a double-quoted form with escapes.
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '$':
			sb.WriteString(`\$`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			if c < 0x20 {
				sb.WriteString(`\x` + strconv.FormatUint(uint64(c), 16))
			} else {
				sb.WriteByte(c)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// isPrintable reports whether every byte renders cleanly inside a
// single-quoted literal on one line (control characters force the
// double-quoted escape form).
func isPrintable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 {
			return false
		}
	}
	return true
}
