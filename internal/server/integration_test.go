package server

// End-to-end test of the daemon's public API contract: repeated
// submissions of identical content are served from the
// content-addressed cache (one engine run, one scan span), and the
// worker pool drains accepted scans on shutdown.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
)

// scanSpans counts recorded scan:<name> root spans.
func scanSpans(rec *obs.Recorder) int {
	n := 0
	for _, s := range rec.SpanRoots() {
		if strings.HasPrefix(s.Name(), "scan:") {
			n++
		}
	}
	return n
}

func TestSecondSubmissionServedFromCache(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 2, 8)

	// First submission: queued, computed by the engine.
	status, first := e.submitJSON(t, submission("cached-plugin"))
	if status != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", status)
	}
	done := e.wait(t, first.ID)
	if done.Status != stateDone || done.Cached {
		t.Fatalf("first scan = status %s cached %v", done.Status, done.Cached)
	}
	if len(done.Result.Findings) == 0 {
		t.Fatal("first scan found nothing")
	}

	snapBefore := e.rec.Snapshot()
	hitsBefore := snapBefore.Counters["scancache_hits_total"]
	spansBefore := scanSpans(e.rec)
	if spansBefore == 0 {
		t.Fatal("first scan recorded no scan span")
	}

	// Second submission of identical content: answered inline from the
	// cache — no queueing, no engine run, no new scan span.
	status, second := e.submitJSON(t, submission("cached-plugin"))
	if status != http.StatusOK {
		t.Fatalf("second submit status = %d, want 200 (inline cached result)", status)
	}
	if !second.Cached || second.Status != stateDone {
		t.Fatalf("second scan = %+v, want cached done", second)
	}
	if second.ID == first.ID {
		t.Error("cached submission should still get its own scan id")
	}
	if len(second.Result.Findings) != len(done.Result.Findings) {
		t.Errorf("cached findings = %d, want %d", len(second.Result.Findings), len(done.Result.Findings))
	}

	snapAfter := e.rec.Snapshot()
	if got := snapAfter.Counters["scancache_hits_total"]; got <= hitsBefore {
		t.Errorf("scancache_hits_total = %d, want > %d", got, hitsBefore)
	}
	if got := snapAfter.Counters["scans_served_from_cache_total"]; got != 1 {
		t.Errorf("scans_served_from_cache_total = %d, want 1", got)
	}
	if got := scanSpans(e.rec); got != spansBefore {
		t.Errorf("scan spans after cached submit = %d, want %d (no second engine run)", got, spansBefore)
	}

	// A different plugin must miss the cache and run the engine.
	status, third := e.submitJSON(t, submission("different-plugin"))
	if status != http.StatusAccepted {
		t.Fatalf("third submit status = %d, want 202", status)
	}
	if e.wait(t, third.ID).Cached {
		t.Error("different content must not be served from cache")
	}
}

func TestGracefulDrainCompletesAcceptedScans(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: 1, QueueSize: 8, Recorder: rec})
	cache := scancache.New(1<<20, rec)
	srv := New(Config{Pool: pool, Cache: cache, Recorder: rec})

	// Submit through the handler, then drain the pool: every accepted
	// scan must reach a terminal state before Shutdown returns.
	ids := make([]string, 0, 4)
	for _, name := range []string{"a", "b", "c", "d"} {
		req := httptest.NewRequest(http.MethodPost, "/v1/scans",
			strings.NewReader(submission("drain-"+name)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit %s status = %d", name, w.Code)
		}
		var sc scanJSON
		if err := json.Unmarshal(w.Body.Bytes(), &sc); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sc.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	srv.mu.Lock()
	defer srv.mu.Unlock()
	for _, id := range ids {
		sc := srv.scans[id]
		if sc.State != stateDone {
			t.Errorf("scan %s state after drain = %s, want done", id, sc.State)
		}
	}
}
