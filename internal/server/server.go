// Package server exposes the scan pipeline as an HTTP API — the
// phpsafed daemon's request layer. It turns the paper's one-shot batch
// analyzer into a service: plugins are uploaded, queued onto a bounded
// worker pool (package jobs), computed at most once per content
// address (package scancache) and served in any of the repository's
// report formats (package report).
//
// Endpoints:
//
//	POST /v1/scans             submit a plugin (JSON file map or zip);
//	                           returns 200 with the result when cached,
//	                           202 with a job id when queued, 429 when
//	                           the queue is full. The JSON body may
//	                           carry per-scan budget overrides
//	                           (deadline_ms, max_parse_depth, max_steps,
//	                           max_findings, file_slice_ms), clamped to
//	                           the server's configured caps.
//	POST /v1/scans/{id}/cancel cancel a queued or running scan; the
//	                           scan settles in the "cancelled" state
//	                           and its worker is freed at the next
//	                           governor checkpoint
//	GET  /v1/scans/{id}        job status; ?format=json|sarif|html
//	                           renders a finished scan's report
//	POST /v1/scans/{id}/retry  resubmit a quarantined scan with a
//	                           fresh attempt budget
//	GET  /v1/quarantine        list dead-lettered scans
//	GET  /healthz              combined health plus queue/cache/journal
//	                           occupancy
//	GET  /livez                liveness only (always ok while serving)
//	GET  /readyz               readiness: 503 while draining, a
//	                           "degraded" status when the scan journal
//	                           has failed to in-memory mode
//	GET  /v1/scans/{id}/trace  the scan's flight-recorder timeline:
//	                           every lifecycle event (accepted, queued,
//	                           attempts with queue wait and backoff,
//	                           cache/incremental reuse, degradations,
//	                           journal replay, settle) plus the last
//	                           attempt's span tree
//	GET  /debug/events         tail of the global event ring
//	                           (?since=SEQ&limit=N)
//	GET  /metrics              obs registry (Prometheus text;
//	                           ?format=json)
//
// When Config.Journal is set, every scan lifecycle transition is
// journaled before the client sees it, and Replay rebuilds the
// registry after a crash: finished scans are rehydrated from their
// persisted results (and re-seeded into the cache, so resubmitting
// pre-crash content stays byte-identical), unsettled scans are
// resubmitted, and quarantined scans stay visible for manual retry.
package server

import (
	"archive/zip"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/eval"
	"repro/internal/evolution"
	"repro/internal/incremental"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rulepack"
	"repro/internal/scancache"
	"repro/internal/taint"
	"repro/internal/version"
)

// DefaultMaxUploadBytes bounds one submission body (32 MiB) when the
// config leaves it unset.
const DefaultMaxUploadBytes = 32 << 20

// Config wires a Server to its pool, cache and instrumentation.
type Config struct {
	// Pool runs accepted scans. Required.
	Pool *jobs.Pool
	// Cache stores results by content address. Required.
	Cache *scancache.Cache
	// Recorder (which may be nil) receives the HTTP metrics: the
	// httpd_requests_total_<route> counters, the
	// httpd_latency_seconds_<route> histograms and the scans_in_flight
	// gauge, alongside whatever the pool, cache and engines record.
	Recorder *obs.Recorder
	// MaxUploadBytes bounds one submission body
	// (DefaultMaxUploadBytes when non-positive).
	MaxUploadBytes int64
	// BuildTool constructs the engine for a submission; the default
	// delegates to eval.BuildTool with the recorder threaded in. Tests
	// substitute slow or failing analyzers here.
	BuildTool func(tool, profile string, rec *obs.Recorder) (analyzer.Analyzer, error)
	// Fingerprint prefixes every cache key; it defaults to
	// version.Version so a tool upgrade invalidates cached results.
	Fingerprint string
	// IncStore, when set, enables incremental analysis for phpSAFE
	// scans: per-file artifacts from earlier scans of the same plugin
	// are reused when their dependency component is unchanged, so
	// re-submitting a new plugin version re-analyzes only what changed.
	// The scan record then carries the reuse report.
	IncStore *incremental.Store
	// Budgets caps the resource budgets any single scan may run under.
	// Each dimension is both the default for requests that leave it
	// unset and the ceiling for requests that override it: a request
	// can tighten a budget but never loosen it past the cap. Zero
	// fields fall back to the analyzer package defaults (durations:
	// disabled).
	Budgets analyzer.ScanOptions
	// Journal, when set, makes accepted scans durable: lifecycle
	// transitions are journaled and Replay recovers them after a
	// crash. A nil Journal runs fully in-memory, as before.
	Journal *durable.Journal
	// Retry shapes each scan's attempt budget and backoff schedule
	// (zero value: jobs package defaults — 3 attempts, 100ms base,
	// 5s cap).
	Retry jobs.RetryPolicy
	// MaxScans bounds the registry: when tracked scans exceed it, the
	// oldest finished ones are evicted (DefaultMaxScans when 0;
	// queued/running scans are never evicted). Journal replay honours
	// the same bound.
	MaxScans int
	// ScanTTL, when positive, additionally evicts finished scans older
	// than this at insertion sweeps.
	ScanTTL time.Duration
	// CompactWALBytes is the journal size that triggers a
	// snapshot+compaction after a scan settles
	// (DefaultCompactWALBytes when 0).
	CompactWALBytes int64
	// Logger receives structured scan lifecycle logs (accept, attempt,
	// retry, settle, replay), each line carrying scan_id and component
	// attrs. Nil discards them.
	Logger *slog.Logger
	// SlowScanThreshold, when positive, makes the daemon log a scan's
	// full flight-recorder timeline at warn level whenever its
	// end-to-end time (accept to settle) reaches the threshold.
	SlowScanThreshold time.Duration
	// NewID generates scan ids (random hex when nil); tests pin it for
	// deterministic traces.
	NewID func() string
	// Dispatch, when set, turns this server into a fleet coordinator:
	// instead of running an accepted scan's engine locally, each attempt
	// hands the scan to Dispatch (the fleet dispatcher routes it to a
	// worker by consistent hash of the content digest and returns the
	// worker's result). Everything else — journal, retry budget, cache,
	// in-flight dedup, traces — is unchanged: a failed dispatch is a
	// failed attempt, retried with backoff and re-routed, and an
	// interrupted dispatch settles nothing so journal replay re-owns it.
	Dispatch func(ctx context.Context, req *DispatchRequest) (*DispatchResult, error)
	// FleetStatus, when set, contributes per-worker fleet health to
	// /readyz. ready=false (zero workers reachable) turns readiness
	// into 503; detail is embedded under the "fleet" key.
	FleetStatus func() (detail any, ready bool)
	// OnSettle, when set, fires after every live terminal transition
	// (done, cancelled, quarantined) with the scan id and final state.
	// Fleet workers hook it to close their local dispatch journal
	// records; replay-rehydrated settles (which happened in a previous
	// process lifetime) do not fire it.
	OnSettle func(scanID, state string)
	// ExtraLiveRecords, when set, contributes additional records to
	// every journal compaction's live set — state owned by a layer
	// above the scan registry (the fleet's member set) that must
	// survive the WAL reset.
	ExtraLiveRecords func() []durable.Record
}

// DispatchRequest is one scan attempt handed to a fleet dispatcher.
type DispatchRequest struct {
	// ScanID is the coordinator's scan id (trace events key off it).
	ScanID string
	// Key is the scan's content digest (the cache key); the dispatcher
	// routes by consistent hash of it so a digest always lands on the
	// same worker's cache shard.
	Key string
	// Attempt is the 1-based attempt number this dispatch executes.
	Attempt int
	// Resubmitted marks an attempt born from journal replay: the scan
	// was accepted by a previous coordinator process and may already be
	// running on a worker. A fleet dispatcher should reconcile with the
	// workers' in-flight tables and adopt a live dispatch rather than
	// start a duplicate one.
	Resubmitted bool
	// Name, Tool, Profile and Opts identify the submission exactly as
	// the worker must run it; Opts carries the coordinator-clamped
	// effective budgets.
	Name    string
	Tool    string
	Profile string
	Target  *analyzer.Target
	Opts    *analyzer.ScanOptions
}

// DispatchResult is a worker's settled answer to one dispatch.
type DispatchResult struct {
	// Worker is the address of the worker that computed the result.
	Worker string
	// Result is the worker's scan result, byte-identical (after the
	// JSON round trip) to what a standalone daemon would have produced.
	Result *analyzer.Result
	// Inc is the worker's incremental-reuse report, when its sharded
	// artifact store reused per-file work.
	Inc *incremental.Report
}

// DefaultMaxScans bounds the scan registry when Config.MaxScans is
// unset: enough for a day of steady scanning, small enough that a
// long-lived daemon's memory stays flat.
const DefaultMaxScans = 4096

// DefaultCompactWALBytes triggers journal compaction once the WAL
// outgrows it.
const DefaultCompactWALBytes = 4 << 20

// scanState is a job's lifecycle position.
type scanState string

const (
	stateQueued      scanState = "queued"
	stateRunning     scanState = "running"
	stateDone        scanState = "done"
	stateFailed      scanState = "failed"
	stateCancelled   scanState = "cancelled"
	stateQuarantined scanState = "quarantined"
)

// scan is one submission's record; all fields are guarded by
// Server.mu after construction.
type scan struct {
	ID       string
	State    scanState
	Tool     string
	Profile  string
	Key      string
	Cached   bool
	Created  time.Time
	Finished time.Time
	Target   *analyzer.Target
	Engine   analyzer.Analyzer
	Opts     *analyzer.ScanOptions
	Result   *analyzer.Result
	Inc      *incremental.Report
	Err      string
	Attempts int
	// Worker is the fleet worker that computed the result (coordinator
	// role only; empty in standalone mode or before the first dispatch
	// succeeds).
	Worker string

	// queuedAt is when the scan (re-)entered the queue: acceptance,
	// replay resubmission, or the projected end of a retry backoff.
	// Attempt starts measure queue wait against it.
	queuedAt time.Time
	// span is the span tree of the scan's last executed attempt,
	// stitched into the trace endpoint's response.
	span *obs.Span

	// resubmitted marks a scan re-owned by journal replay; the first
	// dispatch after replay carries it so the fleet layer can adopt a
	// still-running remote attempt instead of duplicating it. Cleared
	// after that first dispatch.
	resubmitted bool

	// cancelReq marks a cancellation request; set while queued it makes
	// runScan settle immediately, set while running it is paired with a
	// call to cancel.
	cancelReq bool
	// cancel aborts the running scan's context; non-nil only while the
	// scan is actually running on a worker.
	cancel context.CancelFunc
}

// Server is the daemon's HTTP handler. Create with New.
type Server struct {
	cfg Config
	rec *obs.Recorder
	log *slog.Logger
	mux *http.ServeMux

	mu    sync.Mutex
	scans map[string]*scan
	// active maps a cache key to the queued/running scan computing it,
	// so a duplicate submission joins the existing job instead of
	// occupying a second queue slot. An entry survives retries and is
	// removed only when the scan settles.
	active map[string]string
	// draining flips readiness off ahead of shutdown (StartDrain).
	draining bool

	// journalMu serializes journal appends against compaction's
	// build-live-set-and-truncate, so no lifecycle record can fall
	// between a snapshot and the WAL reset. Lock order: journalMu
	// before mu, never the reverse.
	journalMu sync.Mutex
}

// New builds a Server over cfg, filling defaults.
func New(cfg Config) *Server {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if cfg.BuildTool == nil {
		cfg.BuildTool = func(tool, profile string, rec *obs.Recorder) (analyzer.Analyzer, error) {
			return eval.BuildTool(tool, profile, eval.ToolOptions{Recorder: rec})
		}
	}
	if cfg.Fingerprint == "" {
		cfg.Fingerprint = version.Version
	}
	if cfg.MaxScans <= 0 {
		cfg.MaxScans = DefaultMaxScans
	}
	if cfg.CompactWALBytes <= 0 {
		cfg.CompactWALBytes = DefaultCompactWALBytes
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DiscardLogger()
	}
	if cfg.NewID == nil {
		cfg.NewID = newID
	}
	s := &Server{
		cfg:    cfg,
		rec:    cfg.Recorder,
		log:    cfg.Logger.With("component", "server"),
		mux:    http.NewServeMux(),
		scans:  make(map[string]*scan),
		active: make(map[string]string),
	}
	s.mux.HandleFunc("POST /v1/scans", s.instrument("scans_submit", s.handleSubmit))
	s.mux.HandleFunc("POST /v1/scans/{id}/cancel", s.instrument("scans_cancel", s.handleCancel))
	s.mux.HandleFunc("POST /v1/scans/{id}/retry", s.instrument("scans_retry", s.handleRetry))
	s.mux.HandleFunc("GET /v1/scans/{id}", s.instrument("scans_get", s.handleGet))
	s.mux.HandleFunc("GET /v1/scans/{id}/trace", s.instrument("scans_trace", s.handleTrace))
	s.mux.HandleFunc("GET /debug/events", s.instrument("debug_events", s.handleDebugEvents))
	s.mux.HandleFunc("GET /v1/quarantine", s.instrument("quarantine", s.handleQuarantine))
	s.mux.HandleFunc("GET /v1/rulepacks", s.instrument("rulepacks", s.handleRulepacks))
	s.mux.HandleFunc("GET /v1/diffs", s.instrument("diffs", s.handleDiff))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /livez", s.instrument("livez", s.handleLivez))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// now reads the recorder's clock so scan lifecycle times (and thus
// trace timelines) are deterministic under obs.ManualClock in tests;
// a nil recorder falls back to the system clock.
func (s *Server) now() time.Time { return s.rec.Now() }

// instrument wraps a handler with the per-route counter and latency
// histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.rec.Counter("httpd_requests_total_" + route).Inc()
		s.rec.Observe("httpd_latency_seconds_"+route, time.Since(start).Seconds())
	}
}

// budgetJSON is the wire shape of a scan's effective budgets.
// Durations are milliseconds; zero durations mean "no limit" and are
// omitted. Integer budgets are always concrete (defaults resolved);
// negative means unlimited.
type budgetJSON struct {
	DeadlineMS    int64 `json:"deadline_ms,omitempty"`
	MaxParseDepth int   `json:"max_parse_depth,omitempty"`
	MaxSteps      int64 `json:"max_steps,omitempty"`
	MaxFindings   int   `json:"max_findings,omitempty"`
	FileSliceMS   int64 `json:"file_slice_ms,omitempty"`
	FileWorkers   int   `json:"file_workers,omitempty"`
}

// budgetView renders effective ScanOptions for the wire.
func budgetView(o *analyzer.ScanOptions) *budgetJSON {
	if o == nil {
		return nil
	}
	return &budgetJSON{
		DeadlineMS:    o.Deadline.Milliseconds(),
		MaxParseDepth: o.EffectiveMaxParseDepth(),
		MaxSteps:      o.EffectiveMaxSteps(),
		MaxFindings:   o.EffectiveMaxFindings(),
		FileSliceMS:   o.FileTimeSlice.Milliseconds(),
		FileWorkers:   o.FileWorkers,
	}
}

// scanJSON is the wire shape of one scan record.
type scanJSON struct {
	ID       string              `json:"id"`
	Status   scanState           `json:"status"`
	Tool     string              `json:"tool"`
	Profile  string              `json:"profile"`
	Target   string              `json:"target"`
	Cached   bool                `json:"cached"`
	Created  time.Time           `json:"created"`
	Finished *time.Time          `json:"finished,omitempty"`
	Attempts int                 `json:"attempts,omitempty"`
	Worker   string              `json:"worker,omitempty"`
	Budgets  *budgetJSON         `json:"budgets,omitempty"`
	Result   *analyzer.Result    `json:"result,omitempty"`
	Inc      *incremental.Report `json:"incremental,omitempty"`
	Error    string              `json:"error,omitempty"`
}

// viewLocked renders a scan for the wire; caller holds s.mu.
func (sc *scan) viewLocked() scanJSON {
	v := scanJSON{
		ID:       sc.ID,
		Status:   sc.State,
		Tool:     sc.Tool,
		Profile:  sc.Profile,
		Target:   sc.Target.Name,
		Cached:   sc.Cached,
		Created:  sc.Created,
		Attempts: sc.Attempts,
		Worker:   sc.Worker,
		Budgets:  budgetView(sc.Opts),
		Result:   sc.Result,
		Inc:      sc.Inc,
		Error:    sc.Err,
	}
	if !sc.Finished.IsZero() {
		f := sc.Finished
		v.Finished = &f
	}
	return v
}

// submitRequest is the JSON submission body.
type submitRequest struct {
	// Name labels the target (default "upload").
	Name string `json:"name"`
	// Tool picks the engine: phpsafe (default), rips or pixy.
	Tool string `json:"tool"`
	// Profile picks the configuration: a rule-pack spec, i.e. a
	// comma-separated list of pack names (default "wordpress"; see
	// GET /v1/rulepacks for the available packs).
	Profile string `json:"profile"`
	// RulePacks, when non-empty, overrides Profile with an explicit
	// pack list: ["wordpress","security-extended"] scans with both.
	RulePacks []string `json:"rule_packs"`
	// Files maps relative paths to PHP source text; non-PHP paths are
	// ignored, matching the directory loader.
	Files map[string]string `json:"files"`

	// Per-scan budget overrides. Each may tighten the server's
	// configured cap but never exceed it; unset (zero) fields take the
	// cap itself. Durations are milliseconds.
	DeadlineMS    int64 `json:"deadline_ms"`
	MaxParseDepth int   `json:"max_parse_depth"`
	MaxSteps      int64 `json:"max_steps"`
	MaxFindings   int   `json:"max_findings"`
	FileSliceMS   int64 `json:"file_slice_ms"`
	// FileWorkers sizes the intra-scan worker pool (0 takes the server
	// default, 1 forces a serial scan). It is a throughput knob, not a
	// budget: results are identical at any worker count.
	FileWorkers int `json:"file_workers"`
}

// scanOptions converts the request's budget overrides to ScanOptions
// (nil when no override was given).
func (r *submitRequest) scanOptions() *analyzer.ScanOptions {
	if r.DeadlineMS == 0 && r.MaxParseDepth == 0 && r.MaxSteps == 0 &&
		r.MaxFindings == 0 && r.FileSliceMS == 0 && r.FileWorkers == 0 {
		return nil
	}
	return &analyzer.ScanOptions{
		Deadline:      time.Duration(r.DeadlineMS) * time.Millisecond,
		MaxParseDepth: r.MaxParseDepth,
		MaxSteps:      r.MaxSteps,
		MaxFindings:   r.MaxFindings,
		FileTimeSlice: time.Duration(r.FileSliceMS) * time.Millisecond,
		FileWorkers:   r.FileWorkers,
	}
}

// tighterLimit picks the stricter of two integer budgets where
// negative means unlimited (callers resolve zero-means-default first).
func tighterLimit(a, b int64) int64 {
	if a < 0 {
		return b
	}
	if b < 0 || a < b {
		return a
	}
	return b
}

// tighterDuration picks the stricter of two durations where <= 0
// means no limit.
func tighterDuration(a, b time.Duration) time.Duration {
	if a <= 0 {
		return b
	}
	if b <= 0 || a < b {
		return a
	}
	return b
}

// effectiveBudgets clamps a request's overrides (which may be nil)
// against the server caps, resolving integer defaults so the result
// states the concrete budgets the scan runs under.
func (s *Server) effectiveBudgets(req *analyzer.ScanOptions) *analyzer.ScanOptions {
	caps := &s.cfg.Budgets
	var r analyzer.ScanOptions
	if req != nil {
		r = *req
	}
	fw := r.FileWorkers
	if fw <= 0 {
		// Not a cap: the request either picks a pool size or inherits
		// the server's configured default (0 = every core).
		fw = caps.FileWorkers
	}
	return &analyzer.ScanOptions{
		Deadline:      tighterDuration(r.Deadline, caps.Deadline),
		MaxParseDepth: int(tighterLimit(int64(r.EffectiveMaxParseDepth()), int64(caps.EffectiveMaxParseDepth()))),
		MaxSteps:      tighterLimit(r.EffectiveMaxSteps(), caps.EffectiveMaxSteps()),
		MaxFindings:   int(tighterLimit(int64(r.EffectiveMaxFindings()), int64(caps.EffectiveMaxFindings()))),
		FileTimeSlice: tighterDuration(r.FileTimeSlice, caps.FileTimeSlice),
		FileWorkers:   fw,
	}
}

// budgetKey folds the effective budgets into the cache key so a
// truncated result is only ever served to submissions that would run
// under the same budgets. FileWorkers is deliberately excluded: the
// worker count never changes a scan's output, so cached results flow
// freely across pool sizes.
func budgetKey(o *analyzer.ScanOptions) string {
	return fmt.Sprintf("d%d:p%d:s%d:f%d:t%d",
		o.Deadline, o.EffectiveMaxParseDepth(), o.EffectiveMaxSteps(),
		o.EffectiveMaxFindings(), o.FileTimeSlice)
}

// handleSubmit accepts a plugin, serves it from cache when possible,
// and otherwise queues a scan job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseSubmission(r)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	s.Submit(w, SubmitSpec{
		Name:    req.Name,
		Tool:    req.Tool,
		Profile: req.Profile,
		Target:  &analyzer.Target{Name: req.Name, Files: filesFromMap(req.Files)},
		Opts:    req.scanOptions(),
	})
}

// SubmitSpec is a programmatic submission: POST /v1/scans with the
// HTTP parsing already done. The fleet worker's dispatch endpoint uses
// it so file content arrives as raw bytes (never mangled through a
// JSON string) and budgets arrive pre-clamped by the coordinator.
type SubmitSpec struct {
	// Name labels the target (default "upload").
	Name string
	// Tool picks the engine (default "phpsafe").
	Tool string
	// Profile is the rule-pack spec (default "wordpress").
	Profile string
	// Target carries the PHP sources to scan.
	Target *analyzer.Target
	// Opts are per-scan budget overrides, clamped against the server's
	// caps exactly like request overrides (nil: the caps themselves).
	Opts *analyzer.ScanOptions
}

// Submit accepts spec exactly like POST /v1/scans — cache fast path,
// in-flight dedup, journaled acceptance, 202/200/429 — and writes the
// scan envelope to w.
func (s *Server) Submit(w http.ResponseWriter, spec SubmitSpec) {
	_, status, body := s.Accept(spec)
	s.writeJSON(w, status, body)
}

// Accept runs the full submission pipeline — cache fast path, in-flight
// dedup, journaled acceptance — and returns the accepted (or joined)
// scan id, the HTTP status a handler should answer with, and the
// response body. Fleet workers call it directly so they learn the local
// scan id a dispatch mapped to (the wire envelope only carries views).
// id is "" when the submission was rejected outright.
func (s *Server) Accept(spec SubmitSpec) (id string, status int, body any) {
	if spec.Name == "" {
		spec.Name = "upload"
	}
	if spec.Tool == "" {
		spec.Tool = "phpsafe"
	}
	if spec.Profile == "" {
		spec.Profile = "wordpress"
	}
	req := &spec
	target := spec.Target
	if target == nil || len(target.Files) == 0 {
		return "", http.StatusBadRequest, errorBody("no .php files in submission")
	}
	if target.Name == "" {
		target.Name = spec.Name
	}
	engine, err := s.cfg.BuildTool(req.Tool, req.Profile, s.rec)
	if err != nil {
		return "", http.StatusBadRequest, errorBody(err.Error())
	}
	opts := s.effectiveBudgets(req.Opts)
	key := scancache.Key(target, fmt.Sprintf("%s|%s|%s|%s|%s",
		s.cfg.Fingerprint, req.Tool, req.Profile, engineFingerprint(engine), budgetKey(opts)))

	// Fast path: the content has been scanned before.
	if res, ok := s.cfg.Cache.Get(key); ok {
		now := s.now()
		sc := &scan{
			ID: s.cfg.NewID(), State: stateDone, Tool: req.Tool, Profile: req.Profile,
			Key: key, Cached: true, Created: now, Finished: now,
			Target: target, Opts: opts, Result: res,
		}
		s.mu.Lock()
		s.addScanLocked(sc)
		view := sc.viewLocked()
		s.mu.Unlock()
		s.rec.Counter("scans_served_from_cache_total").Inc()
		s.recordEvent(obs.Event{Scan: sc.ID, Type: evAccepted, Detail: sc.Target.Name})
		s.recordEvent(obs.Event{Scan: sc.ID, Type: evCacheHit, Detail: "served from result cache"})
		s.settleEvent(sc, stateDone, "", now, now)
		return sc.ID, http.StatusOK, view
	}

	// Duplicate of an in-flight submission: answer with the existing
	// job instead of spending a second queue slot on identical work.
	s.mu.Lock()
	if id, ok := s.active[key]; ok {
		view := s.scans[id].viewLocked()
		s.mu.Unlock()
		s.rec.Counter("scans_joined_inflight_total").Inc()
		s.recordEvent(obs.Event{Scan: id, Type: evJoinedInflight, Detail: "duplicate submission joined"})
		return id, http.StatusAccepted, view
	}
	now := s.now()
	sc := &scan{
		ID: s.cfg.NewID(), State: stateQueued, Tool: req.Tool, Profile: req.Profile,
		Key: key, Created: now, queuedAt: now, Target: target, Engine: engine, Opts: opts,
	}
	s.addScanLocked(sc)
	s.active[key] = sc.ID
	s.mu.Unlock()

	// Record acceptance before the pool sees the job: a worker may
	// start the attempt immediately, and the timeline must read
	// accepted → queued → attempt_started. A failed submission below
	// closes the pair with a rejected event.
	s.recordEvent(obs.Event{Scan: sc.ID, Type: evAccepted, Detail: sc.Target.Name})
	s.recordEvent(obs.Event{Scan: sc.ID, Type: evQueued})

	// journalMu spans the pool submission and the accepted record so
	// the journal sees "accepted" before any record the worker writes.
	s.journalMu.Lock()
	err = s.cfg.Pool.SubmitJob(s.scanJob(sc, 0))
	if err == nil {
		s.journalLocked(s.acceptedRecord(sc))
	}
	s.journalMu.Unlock()
	if err != nil {
		s.mu.Lock()
		delete(s.scans, sc.ID)
		delete(s.active, key)
		s.mu.Unlock()
		s.recordEvent(obs.Event{Scan: sc.ID, Type: evRejected, Err: err.Error()})
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			s.rec.Counter("scans_rejected_total").Inc()
			return "", http.StatusTooManyRequests, errorBody("scan queue is full, retry later")
		case errors.Is(err, jobs.ErrClosed):
			return "", http.StatusServiceUnavailable, errorBody("daemon is shutting down")
		default:
			return "", http.StatusInternalServerError, errorBody(err.Error())
		}
	}
	s.rec.Counter("scans_accepted_total").Inc()
	s.log.Info("scan accepted",
		"scan_id", sc.ID, "target", sc.Target.Name, "tool", sc.Tool,
		"profile", sc.Profile, "files", len(sc.Target.Files))
	s.mu.Lock()
	view := sc.viewLocked()
	s.mu.Unlock()
	return sc.ID, http.StatusAccepted, view
}

// robustnessRetryError classifies a scan whose per-file analysis
// crashed (panics recovered into RobustnessFailures) as a failed
// attempt: transient crashes heal on retry, deterministic ones exhaust
// the attempt budget and quarantine the plugin with the partial result
// attached.
type robustnessRetryError struct {
	res   *analyzer.Result
	files []string
}

func (e *robustnessRetryError) Error() string {
	return fmt.Sprintf("analysis crashed on %d file(s): %s", len(e.files), strings.Join(e.files, ", "))
}

// scanJob wraps one scan as a retryable pool job, journaling every
// lifecycle transition.
func (s *Server) scanJob(sc *scan, priorAttempts int) *jobs.Job {
	return &jobs.Job{
		ID:            sc.ID,
		Retry:         s.cfg.Retry,
		PriorAttempts: priorAttempts,
		Run: func(ctx context.Context) error {
			return s.runScanAttempt(ctx, sc)
		},
		OnStart: func(attempt int) {
			now := s.now()
			s.mu.Lock()
			sc.Attempts = attempt
			wait := now.Sub(sc.queuedAt)
			s.mu.Unlock()
			if wait < 0 {
				// A retry's queuedAt is the projected end of its backoff;
				// a worker picking it up early clamps to zero.
				wait = 0
			}
			s.rec.Observe("scan_queue_wait_seconds", wait.Seconds())
			s.recordEvent(obs.Event{
				Scan: sc.ID, Type: evAttemptStarted, Attempt: attempt,
				DurMS: wait.Milliseconds(),
			})
			s.log.Debug("scan attempt started",
				"scan_id", sc.ID, "attempt", attempt, "queue_wait_ms", wait.Milliseconds())
			s.journal(durable.Record{Type: durable.RecStarted, ScanID: sc.ID, Attempt: attempt})
		},
		OnRetry: func(attempt int, err error, backoff time.Duration) {
			now := s.now()
			s.mu.Lock()
			sc.State = stateQueued
			sc.cancel = nil
			sc.Err = err.Error()
			sc.queuedAt = now.Add(backoff)
			s.mu.Unlock()
			s.rec.Counter("scans_retried_total").Inc()
			s.recordEvent(obs.Event{
				Scan: sc.ID, Type: evAttemptFailed, Attempt: attempt,
				Err: err.Error(), DurMS: backoff.Milliseconds(),
			})
			s.recordEvent(obs.Event{Scan: sc.ID, Type: evQueued, Detail: "retry after backoff"})
			s.log.Warn("scan attempt failed, retrying",
				"scan_id", sc.ID, "attempt", attempt, "error", err.Error(),
				"backoff_ms", backoff.Milliseconds())
			s.journal(durable.Record{
				Type: durable.RecAttemptFailed, ScanID: sc.ID, Attempt: attempt,
				Error: err.Error(), BackoffMS: backoff.Milliseconds(),
			})
		},
		OnQuarantine: func(attempts int, err error) {
			s.settleQuarantined(sc, attempts, err)
		},
	}
}

// runScanAttempt executes one attempt of a queued scan on a pool
// worker. The scan runs under a child context so POST
// /v1/scans/{id}/cancel can abort just this scan; the engines observe
// it at governor checkpoints, return a partial result, and the worker
// moves on to the next job. A nil return settles the scan (done or
// cancelled); an error hands the attempt to the retry lifecycle.
func (s *Server) runScanAttempt(ctx context.Context, sc *scan) error {
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	s.mu.Lock()
	if sc.cancelReq {
		// Cancelled while still queued (or parked between attempts):
		// settle without running.
		s.settleCancelledLocked(sc, context.Canceled, nil)
		return nil
	}
	sc.State = stateRunning
	sc.cancel = cancel
	s.mu.Unlock()
	s.rec.Gauge("scans_in_flight").Add(1)
	defer s.rec.Gauge("scans_in_flight").Add(-1)
	attemptStart := s.now()
	defer func() {
		s.rec.Observe("scan_attempt_seconds", s.now().Sub(attemptStart).Seconds())
	}()

	var incRep *incremental.Report
	var dispatchWorker string
	res, hit, err := s.cfg.Cache.Do(sc.Key, func() (*analyzer.Result, error) {
		// The scan span exists only when the engine actually runs:
		// cache hits and joined flights record no span.
		span := s.rec.StartNamedSpan("scan:", sc.Target.Name, nil)
		defer span.EndAndObserve("scan_seconds")
		s.mu.Lock()
		sc.span = span
		attempt := sc.Attempts
		s.mu.Unlock()
		if err := scanCtx.Err(); err != nil {
			return nil, err
		}
		// Coordinator role: route the attempt to a fleet worker instead
		// of running the engine here. The worker owns the sharded
		// scancache and incremental store for this digest; a dispatch
		// failure is a failed attempt, classified and retried exactly
		// like a local one.
		if s.cfg.Dispatch != nil {
			s.mu.Lock()
			resub := sc.resubmitted
			sc.resubmitted = false
			s.mu.Unlock()
			dr, derr := s.cfg.Dispatch(scanCtx, &DispatchRequest{
				ScanID: sc.ID, Key: sc.Key, Attempt: attempt, Resubmitted: resub,
				Name: sc.Target.Name, Tool: sc.Tool, Profile: sc.Profile,
				Target: sc.Target, Opts: sc.Opts,
			})
			if derr != nil {
				return nil, derr
			}
			incRep = dr.Inc
			dispatchWorker = dr.Worker
			return dr.Result, nil
		}
		// Incremental reuse kicks in below the whole-result cache:
		// an exact resubmission hits the scan cache, while a new
		// version of a previously scanned plugin reuses the
		// unchanged files' artifacts here.
		var r *analyzer.Result
		var aerr error
		if engine, ok := sc.Engine.(*taint.Engine); ok && s.cfg.IncStore != nil {
			inc := incremental.New(engine, s.cfg.IncStore,
				fmt.Sprintf("%s|%s|%s", s.cfg.Fingerprint, sc.Tool, sc.Profile), s.rec)
			r, incRep, aerr = inc.AnalyzeWithReportContext(scanCtx, sc.Target, sc.Opts)
		} else {
			r, aerr = sc.Engine.AnalyzeContext(scanCtx, sc.Target, sc.Opts)
		}
		if aerr == nil && r != nil && len(r.RobustnessFailures) > 0 {
			// Crash-grade file failures fail the attempt (and are
			// never cached): a retry may heal a transient crash.
			files := make([]string, 0, len(r.RobustnessFailures))
			for _, rf := range r.RobustnessFailures {
				files = append(files, rf.File)
			}
			return r, &robustnessRetryError{res: r, files: files}
		}
		return r, aerr
	})

	s.mu.Lock()
	sc.cancel = nil
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if sc.cancelReq {
				// The client cancelled: terminal, keep the engine's
				// labelled partial result.
				s.settleCancelledLocked(sc, err, res)
				return nil
			}
			if ctx.Err() == nil {
				// The cancel sentinel did not come from this attempt's
				// context — it leaked out of some inner exchange (a
				// dispatch branch a fleet layer cancelled, a dependency
				// aborting internally) while the coordinator is alive and
				// nobody decided anything about this scan. Treating it as
				// an interruption would strand the scan queued forever (no
				// restart is coming to replay it); hand the retry
				// lifecycle a plain failed attempt instead.
				if res != nil {
					sc.Result = res
				}
				s.mu.Unlock()
				return fmt.Errorf("attempt aborted by cancelled inner exchange: %v", err)
			}
			// The pool's base context is cancelled: shutdown. This is
			// drain-deadline pressure, not a decision about the scan.
			// Leave it unsettled — no terminal journal record — so replay
			// resubmits it after restart, exactly as if the process had
			// been killed mid-attempt.
			sc.State = stateQueued
			if res != nil {
				sc.Result = res
			}
			s.mu.Unlock()
			s.rec.Counter("scans_interrupted_total").Inc()
			s.recordEvent(obs.Event{
				Scan: sc.ID, Type: evInterrupted, Attempt: sc.Attempts,
				Detail: "shutdown interrupted the attempt; journal replay re-owns the scan",
			})
			s.log.Info("scan attempt interrupted by shutdown", "scan_id", sc.ID)
			return jobs.ErrInterrupted
		}
		// Deadline (job timeout), crashed files, injected faults,
		// engine errors: the attempt failed. Remember the latest
		// partial result so an eventual quarantine keeps it, and let
		// the retry lifecycle classify the error.
		if res != nil {
			sc.Result = res
		}
		s.mu.Unlock()
		return err
	}
	sc.State = stateDone
	sc.Finished = s.now()
	sc.Result = res
	sc.Cached = hit
	if !hit {
		sc.Inc = incRep
		sc.Worker = dispatchWorker
	}
	delete(s.active, sc.Key)
	payload := s.resultPayloadLocked(sc)
	created, finished := sc.Created, sc.Finished
	worker := sc.Worker
	s.mu.Unlock()
	s.rec.Counter("scans_completed_total").Inc()
	if hit {
		s.recordEvent(obs.Event{Scan: sc.ID, Type: evCacheHit, Detail: "coalesced with in-flight identical scan"})
	}
	if !hit && incRep != nil && incRep.ReusedFiles > 0 {
		s.recordEvent(obs.Event{
			Scan: sc.ID, Type: evIncReuse,
			Detail: fmt.Sprintf("%d/%d files reused", incRep.ReusedFiles, incRep.TotalFiles),
		})
	}
	s.degradationEvents(sc.ID, res)
	s.settleEvent(sc, stateDone, "", created, finished)
	s.journal(durable.Record{
		Type: durable.RecCompleted, ScanID: sc.ID, Attempt: sc.Attempts,
		Worker: worker, Payload: payload,
	})
	s.maybeCompact()
	return nil
}

// degradationEvents records governor degradations of a finished
// attempt — truncated budgets and per-file failures — so a trace shows
// not just that a scan was slow or partial but which ladder rung it
// hit.
func (s *Server) degradationEvents(id string, res *analyzer.Result) {
	if res == nil {
		return
	}
	if res.Truncated {
		s.recordEvent(obs.Event{
			Scan: id, Type: evDegraded,
			Detail: "truncated_by:" + strings.Join(res.TruncatedBy, ","),
		})
	}
	if n := len(res.FilesFailed); n > 0 {
		s.recordEvent(obs.Event{
			Scan: id, Type: evDegraded,
			Detail: fmt.Sprintf("%d file(s) failed analysis", n),
		})
	}
}

// settleCancelledLocked settles a cancelled scan; caller holds s.mu,
// which is released before journaling.
func (s *Server) settleCancelledLocked(sc *scan, cause error, partial *analyzer.Result) {
	sc.State = stateCancelled
	sc.Err = cause.Error()
	if partial != nil {
		sc.Result = partial
	}
	sc.Finished = s.now()
	delete(s.active, sc.Key)
	payload := s.resultPayloadLocked(sc)
	created, finished := sc.Created, sc.Finished
	s.mu.Unlock()
	s.rec.Counter("scans_cancelled_total").Inc()
	s.settleEvent(sc, stateCancelled, cause.Error(), created, finished)
	// A cancelled scan is settled work: journal it as completed (the
	// payload records the cancelled state) so replay does not re-run
	// what a client deliberately stopped.
	s.journal(durable.Record{
		Type: durable.RecCompleted, ScanID: sc.ID, Attempt: sc.Attempts,
		Error: sc.Err, Payload: payload,
	})
	s.maybeCompact()
}

// settleQuarantined dead-letters a scan whose attempts are exhausted
// (or whose failure was terminal), keeping its latest partial result.
func (s *Server) settleQuarantined(sc *scan, attempts int, err error) {
	s.mu.Lock()
	sc.State = stateQuarantined
	sc.Attempts = attempts
	sc.Err = err.Error()
	sc.Finished = s.now()
	sc.cancel = nil
	delete(s.active, sc.Key)
	payload := s.resultPayloadLocked(sc)
	created, finished := sc.Created, sc.Finished
	s.mu.Unlock()
	s.rec.Counter("scans_quarantined_total").Inc()
	s.settleEvent(sc, stateQuarantined, err.Error(), created, finished)
	s.journal(durable.Record{
		Type: durable.RecQuarantined, ScanID: sc.ID, Attempt: attempts,
		Error: err.Error(), Payload: payload,
	})
	s.maybeCompact()
}

// handleCancel requests cancellation of a queued or running scan.
// Cancellation is cooperative: a running scan stops at its next
// governor checkpoint and settles as "cancelled" with whatever partial
// result the engine had produced. Finished scans conflict.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sc, ok := s.scans[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		s.error(w, http.StatusNotFound, "unknown scan id")
		return
	}
	switch sc.State {
	case stateDone, stateFailed, stateCancelled, stateQuarantined:
		state := sc.State
		s.mu.Unlock()
		s.error(w, http.StatusConflict, fmt.Sprintf("scan is already %s", state))
		return
	}
	sc.cancelReq = true
	if sc.cancel != nil {
		sc.cancel()
	}
	view := sc.viewLocked()
	s.mu.Unlock()
	s.rec.Counter("scans_cancel_requests_total").Inc()
	s.recordEvent(obs.Event{Scan: sc.ID, Type: evCancelRequest})
	s.log.Info("scan cancellation requested", "scan_id", sc.ID)
	s.writeJSON(w, http.StatusAccepted, view)
}

// diffJSON is the wire shape of a cross-version comparison.
type diffJSON struct {
	Plugin     string           `json:"plugin"`
	From       string           `json:"from"`
	To         string           `json:"to"`
	Fixed      int              `json:"fixed"`
	Persisting int              `json:"persisting"`
	Introduced int              `json:"introduced"`
	Changes    []diffChangeJSON `json:"changes"`
}

type diffChangeJSON struct {
	Status  string           `json:"status"`
	Finding analyzer.Finding `json:"finding"`
}

// handleDiff compares two finished scans: GET /v1/diffs?from=ID&to=ID
// classifies every vulnerability as fixed, persisting or introduced
// between the two snapshots (§V.D).
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	fromID, toID := r.URL.Query().Get("from"), r.URL.Query().Get("to")
	if fromID == "" || toID == "" {
		s.error(w, http.StatusBadRequest, "both from and to scan ids are required")
		return
	}
	resolve := func(id string) (*analyzer.Result, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		sc, ok := s.scans[id]
		if !ok || sc.State != stateDone {
			return nil, false
		}
		return sc.Result, true
	}
	oldRes, ok := resolve(fromID)
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Sprintf("scan %q not found or not finished", fromID))
		return
	}
	newRes, ok := resolve(toID)
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Sprintf("scan %q not found or not finished", toID))
		return
	}

	rep := evolution.Compare(oldRes, newRes, fromID, toID)
	out := diffJSON{
		Plugin:     rep.Plugin,
		From:       fromID,
		To:         toID,
		Fixed:      rep.Count(evolution.Fixed),
		Persisting: rep.Count(evolution.Persisting),
		Introduced: rep.Count(evolution.Introduced),
		Changes:    make([]diffChangeJSON, 0, len(rep.Changes)),
	}
	for _, c := range rep.Changes {
		out.Changes = append(out.Changes, diffChangeJSON{
			Status: c.Status.String(), Finding: c.Finding,
		})
	}
	s.rec.Counter("diffs_served_total").Inc()
	s.writeJSON(w, http.StatusOK, out)
}

// handleGet reports a scan's status or renders its finished report.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sc, ok := s.scans[r.PathValue("id")]
	var view scanJSON
	if ok {
		view = sc.viewLocked()
	}
	s.mu.Unlock()
	if !ok {
		s.error(w, http.StatusNotFound, "unknown scan id")
		return
	}

	format := r.URL.Query().Get("format")
	if format == "" || format == "json" {
		s.writeJSON(w, http.StatusOK, view)
		return
	}
	if view.Status != stateDone {
		s.error(w, http.StatusConflict,
			fmt.Sprintf("scan is %s; %s is only available for finished scans", view.Status, format))
		return
	}
	renderStart := s.now()
	switch format {
	case "sarif":
		data, err := report.SARIF(view.Result)
		if err != nil {
			s.error(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/sarif+json")
		w.Write(data)
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, report.HTML(view.Result))
	default:
		s.error(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (want json, sarif or html)", format))
		return
	}
	elapsed := s.now().Sub(renderStart)
	s.rec.Observe("render_seconds", elapsed.Seconds())
	s.recordEvent(obs.Event{
		Scan: view.ID, Type: evRendered, Detail: format, DurMS: elapsed.Milliseconds(),
	})
}

// engineFingerprint returns the engine's self-reported configuration
// fingerprint (rule digest + options), or "" for engines that do not
// expose one. Folding it into the cache key keeps results computed
// under different rule-pack sets from ever being served for each other.
func engineFingerprint(a analyzer.Analyzer) string {
	if f, ok := a.(interface{ OptionsFingerprint() string }); ok {
		return f.OptionsFingerprint()
	}
	return ""
}

// rulepackJSON is the wire shape of one pack in the listing.
type rulepackJSON struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Extends     []string `json:"extends,omitempty"`
	Rules       int      `json:"rules"`
}

// handleRulepacks lists the builtin rule packs a submission may name in
// its profile / rule_packs fields.
func (s *Server) handleRulepacks(w http.ResponseWriter, _ *http.Request) {
	packs := rulepack.Builtins()
	out := make([]rulepackJSON, 0, len(packs))
	for _, p := range packs {
		out = append(out, rulepackJSON{
			Name:        p.Name,
			Description: p.Description,
			Extends:     p.Extends,
			Rules:       p.RuleCount(),
		})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"rulepacks": out})
}

// handleHealthz reports liveness and occupancy. The status flips to
// "degraded" when the journal has failed over to in-memory mode: the
// daemon still scans correctly but accepted work would not survive a
// crash.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tracked := len(s.scans)
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	body := map[string]any{
		"version":     version.Version,
		"queue_depth": s.cfg.Pool.QueueDepth(),
		"workers":     s.cfg.Pool.Workers(),
		"scans":       tracked,
		"draining":    draining,
		"cache_items": s.cfg.Cache.Len(),
		"cache_bytes": s.cfg.Cache.Bytes(),
		"cache_stats": s.cfg.Cache.Stats(),
	}
	if s.cfg.Journal != nil {
		degraded, jerr := s.cfg.Journal.Degraded()
		j := map[string]any{
			"enabled":   true,
			"degraded":  degraded,
			"wal_bytes": s.cfg.Journal.WALBytes(),
		}
		if degraded {
			status = "degraded"
			if jerr != nil {
				j["error"] = jerr.Error()
			}
		}
		body["journal"] = j
	} else {
		body["journal"] = map[string]any{"enabled": false}
	}
	body["status"] = status
	s.writeJSON(w, http.StatusOK, body)
}

// handleMetrics exposes the obs registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Occupancy gauges are sampled at scrape time; everything else is
	// pushed by the pool, cache and engines as it happens.
	s.rec.Gauge("jobs_queue_depth").Set(float64(s.cfg.Pool.QueueDepth()))
	s.rec.Gauge("jobs_inflight_workers").Set(float64(s.cfg.Pool.InFlight()))
	s.rec.Gauge("jobs_retry_backlog").Set(float64(s.cfg.Pool.RetryBacklog()))
	s.rec.Gauge("obs_events_resident").Set(float64(s.rec.Events().Len()))
	s.rec.Gauge("obs_events_dropped").Set(float64(s.rec.Events().Dropped()))
	s.rec.Gauge("scancache_entries").Set(float64(s.cfg.Cache.Len()))
	s.rec.Gauge("scancache_bytes").Set(float64(s.cfg.Cache.Bytes()))
	snap := s.rec.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WritePrometheus(w)
}

// parseSubmission decodes a POST /v1/scans body in either encoding.
func (s *Server) parseSubmission(r *http.Request) (*submitRequest, error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxUploadBytes)
	defer body.Close()

	req := &submitRequest{}
	ct := r.Header.Get("Content-Type")
	switch {
	case ct == "application/zip" || ct == "application/x-zip-compressed":
		data, err := io.ReadAll(body)
		if err != nil {
			return nil, fmt.Errorf("reading zip body: %w", err)
		}
		files, err := filesFromZip(data)
		if err != nil {
			return nil, err
		}
		req.Files = files
		q := r.URL.Query()
		req.Name, req.Tool, req.Profile = q.Get("name"), q.Get("tool"), q.Get("profile")
		if packs := q.Get("packs"); packs != "" {
			req.Profile = packs
		}
	default:
		if err := json.NewDecoder(body).Decode(req); err != nil {
			return nil, fmt.Errorf("decoding JSON body: %w", err)
		}
	}
	if len(req.RulePacks) > 0 {
		req.Profile = strings.Join(req.RulePacks, ",")
	}
	if req.Name == "" {
		req.Name = "upload"
	}
	if req.Tool == "" {
		req.Tool = "phpsafe"
	}
	if req.Profile == "" {
		req.Profile = "wordpress"
	}
	return req, nil
}

// filesFromMap converts a path→source map into sorted source files,
// keeping only PHP paths (case-insensitive, like the directory
// loader).
func filesFromMap(m map[string]string) []analyzer.SourceFile {
	files := make([]analyzer.SourceFile, 0, len(m))
	for path, content := range m {
		if !analyzer.IsPHPPath(path) {
			continue
		}
		files = append(files, analyzer.SourceFile{Path: path, Content: content})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	return files
}

// filesFromZip extracts the PHP members of a zip archive.
func filesFromZip(data []byte) (map[string]string, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("invalid zip: %w", err)
	}
	files := make(map[string]string)
	for _, f := range zr.File {
		if f.FileInfo().IsDir() || !analyzer.IsPHPPath(f.Name) {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("zip member %s: %w", f.Name, err)
		}
		content, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("zip member %s: %w", f.Name, err)
		}
		files[f.Name] = string(content)
	}
	return files, nil
}

// writeJSON sends v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// error sends a JSON error body.
func (s *Server) error(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, errorBody(msg))
}

// errorBody is the JSON error envelope shared by handlers and Accept.
func errorBody(msg string) map[string]string {
	return map[string]string{"error": msg}
}

// newID returns a 16-hex-char random scan id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a counter
		// fallback would race, so surface the impossible loudly.
		panic(err)
	}
	return hex.EncodeToString(b[:])
}
