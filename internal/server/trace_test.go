package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
)

var updateTrace = flag.Bool("update", false, "rewrite the trace golden file")

// syncBuffer is a mutex-guarded bytes.Buffer: slog handlers write from
// worker goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// traceOrigin is the manual clocks' epoch: every time in the golden
// file derives from it plus scripted engine advances.
var traceOrigin = time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)

// scriptedAnalyzer advances its manual clock by a fixed amount per
// attempt and fails a scripted number of leading attempts — the whole
// scan lifecycle becomes a pure function of the script, so traces are
// golden-testable.
type scriptedAnalyzer struct {
	clock    *obs.ManualClock
	advance  time.Duration
	failures atomic.Int32
}

func (a *scriptedAnalyzer) Name() string { return "scripted" }
func (a *scriptedAnalyzer) AnalyzeContext(_ context.Context, tg *analyzer.Target, _ *analyzer.ScanOptions) (*analyzer.Result, error) {
	a.clock.Advance(a.advance)
	if a.failures.Add(-1) >= 0 {
		return nil, fmt.Errorf("scripted transient failure")
	}
	return &analyzer.Result{Tool: "scripted", Target: tg.Name, Findings: []analyzer.Finding{}}, nil
}

// scriptedBuild dispatches on the submission profile: the profile
// names the script the engine runs under.
func scriptedBuild(clock *obs.ManualClock) func(string, string, *obs.Recorder) (analyzer.Analyzer, error) {
	return func(_, profile string, _ *obs.Recorder) (analyzer.Analyzer, error) {
		a := &scriptedAnalyzer{clock: clock}
		switch profile {
		case "steady":
			a.advance = 50 * time.Millisecond
		case "flaky":
			a.advance = 30 * time.Millisecond
			a.failures.Store(1)
		case "replay":
			a.advance = 40 * time.Millisecond
		case "phoenix":
			a.advance = 25 * time.Millisecond
		default:
			a.advance = 10 * time.Millisecond
		}
		return a, nil
	}
}

// newTraceEnv is newEnv with every nondeterminism pinned: a manual
// clock behind the recorder, sequential scan ids, a jitter-free retry
// schedule and the scripted engine.
func newTraceEnv(t *testing.T, clock *obs.ManualClock, prefix string, mutate ...func(*Config)) *env {
	t.Helper()
	rec := obs.NewRecorderWithClock(clock)
	pool := jobs.New(jobs.Config{Workers: 1, QueueSize: 8, Recorder: rec})
	var n atomic.Int64
	cfg := Config{
		Pool:      pool,
		Cache:     scancache.New(1<<20, rec),
		Recorder:  rec,
		BuildTool: scriptedBuild(clock),
		Retry: jobs.RetryPolicy{
			MaxAttempts: 3, Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond,
			Jitter: func() float64 { return 0 },
		},
		NewID: func() string { return fmt.Sprintf("%s-%04d", prefix, n.Add(1)) },
	}
	for _, m := range mutate {
		m(&cfg)
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
	})
	return &env{ts: ts, srv: srv, pool: pool, rec: rec}
}

func traceSubmission(name, profile string) string {
	b, _ := json.Marshal(map[string]any{
		"name":    name,
		"profile": profile,
		"files":   map[string]string{name + ".php": "<?php // " + name},
	})
	return string(b)
}

// waitScanEvent blocks until the flight recorder holds an event of the
// given type for the scan — unlike polling GET /v1/scans/{id}, this
// waits for the timeline itself, so a subsequent trace fetch is
// deterministic.
func waitScanEvent(t *testing.T, rec *obs.Recorder, id, typ string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		for _, e := range rec.Events().ForScan(id) {
			if e.Type == typ {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("scan %s never recorded a %q event; timeline: %+v", id, typ, rec.Events().ForScan(id))
}

// getTraceRaw fetches one scan's trace document as raw JSON.
func getTraceRaw(t *testing.T, e *env, id string) json.RawMessage {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/scans/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace %s = %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// TestTraceGolden pins the trace endpoint's wire format for the four
// lifecycle shapes the flight recorder must explain: a normal scan, a
// retried scan, a journal-resubmitted scan (crash mid-attempt) and a
// journal-rehydrated scan (crash after settle — its timeline spans two
// process lifetimes). Regenerate with:
//
//	go test ./internal/server -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	doc := map[string]json.RawMessage{}

	// Normal and retried scans share a daemon: "steady" settles on the
	// first attempt, "flaky" fails once and settles on the second.
	clockA := obs.NewManualClock(traceOrigin)
	eA := newTraceEnv(t, clockA, "norm")
	status, sc := eA.submitJSON(t, traceSubmission("steady-plugin", "steady"))
	if status != http.StatusAccepted {
		t.Fatalf("submit steady = %d, want 202", status)
	}
	waitScanEvent(t, eA.rec, sc.ID, evSettled)
	resp, err := http.Get(eA.ts.URL + "/v1/scans/" + sc.ID + "?format=sarif")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render sarif = %d, want 200", resp.StatusCode)
	}
	doc["normal"] = getTraceRaw(t, eA, sc.ID)

	status, flaky := eA.submitJSON(t, traceSubmission("flaky-plugin", "flaky"))
	if status != http.StatusAccepted {
		t.Fatalf("submit flaky = %d, want 202", status)
	}
	waitScanEvent(t, eA.rec, flaky.ID, evSettled)
	doc["retried"] = getTraceRaw(t, eA, flaky.ID)

	// A journal a crashed daemon left behind: accepted an hour before
	// this boot, first attempt failed, never settled. Replay resubmits
	// it; the trace stitches the historical acceptance to the live
	// completion.
	dirB := t.TempDir()
	jB, _, err := durable.Open(dirB, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const replayID = "crashed-0001"
	crashTime := traceOrigin.Add(-time.Hour)
	payload, _ := json.Marshal(submissionPayload{
		Name: "crashed-plugin", Tool: "phpsafe", Profile: "replay",
		Key: "trace-replay-key", Created: crashTime,
		Files: []filePayload{{Path: "crashed-plugin.php", Content: []byte("<?php // crashed-plugin")}},
	})
	for _, r := range []durable.Record{
		{Type: durable.RecAccepted, ScanID: replayID, Payload: payload, Time: crashTime},
		{Type: durable.RecStarted, ScanID: replayID, Attempt: 1, Time: crashTime},
		{Type: durable.RecAttemptFailed, ScanID: replayID, Attempt: 1, Error: "simulated crash", Time: crashTime},
	} {
		if err := jB.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jB.Close(); err != nil {
		t.Fatal(err)
	}
	jB2, recsB, err := durable.Open(dirB, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jB2.Close() })
	clockB := obs.NewManualClock(traceOrigin)
	eB := newTraceEnv(t, clockB, "rsub", func(cfg *Config) { cfg.Journal = jB2 })
	if resub, _, _ := eB.srv.Replay(recsB); resub != 1 {
		t.Fatalf("replay resubmitted %d scans, want 1", resub)
	}
	waitScanEvent(t, eB.rec, replayID, evSettled)
	doc["resubmitted"] = getTraceRaw(t, eB, replayID)

	// A scan that settled before a crash: the second boot rehydrates it
	// with its historical acceptance and settle times backfilled.
	dirC := t.TempDir()
	jC, _, err := durable.Open(dirC, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clockC1 := obs.NewManualClock(traceOrigin)
	eC1 := newTraceEnv(t, clockC1, "phx", func(cfg *Config) { cfg.Journal = jC })
	status, phoenix := eC1.submitJSON(t, traceSubmission("phoenix-plugin", "phoenix"))
	if status != http.StatusAccepted {
		t.Fatalf("submit phoenix = %d, want 202", status)
	}
	waitScanEvent(t, eC1.rec, phoenix.ID, evSettled)
	eC1.crash(t)

	jC2, recsC, err := durable.Open(dirC, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jC2.Close() })
	clockC2 := obs.NewManualClock(traceOrigin.Add(time.Hour))
	eC2 := newTraceEnv(t, clockC2, "phx2", func(cfg *Config) { cfg.Journal = jC2 })
	if _, rehyd, _ := eC2.srv.Replay(recsC); rehyd != 1 {
		t.Fatalf("replay rehydrated %d scans, want 1", rehyd)
	}
	doc["rehydrated"] = getTraceRaw(t, eC2, phoenix.ID)

	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "trace.json.golden")
	if *updateTrace {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("trace document differs from golden (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTraceTimelineOrder asserts the invariant CI smoke-checks over
// the wire: a settled scan's timeline starts accepted → queued →
// attempt_started and ends with settled.
func TestTraceTimelineOrder(t *testing.T) {
	clock := obs.NewManualClock(traceOrigin)
	e := newTraceEnv(t, clock, "ord")
	_, sc := e.submitJSON(t, traceSubmission("ordered-plugin", "steady"))
	waitScanEvent(t, e.rec, sc.ID, evSettled)

	var tr traceJSON
	if err := json.Unmarshal(getTraceRaw(t, e, sc.ID), &tr); err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, ev := range tr.Events {
		types = append(types, ev.Type)
	}
	if len(types) < 4 || types[0] != evAccepted || types[1] != evQueued ||
		types[2] != evAttemptStarted || types[len(types)-1] != evSettled {
		t.Fatalf("timeline order = %v, want accepted,queued,attempt_started,...,settled", types)
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Seq <= tr.Events[i-1].Seq {
			t.Fatalf("timeline seqs not increasing: %v", types)
		}
	}
	if tr.Span == nil || tr.Span.DurationNS != (50*time.Millisecond).Nanoseconds() {
		t.Fatalf("span = %+v, want a 50ms scan span", tr.Span)
	}
}

// TestDebugEventsTail covers the ring-tail endpoint: cursoring with
// since/next_since and input validation.
func TestDebugEventsTail(t *testing.T) {
	clock := obs.NewManualClock(traceOrigin)
	e := newTraceEnv(t, clock, "tail")
	_, sc := e.submitJSON(t, traceSubmission("tail-plugin", "steady"))
	waitScanEvent(t, e.rec, sc.ID, evSettled)

	var page struct {
		Events    []obs.Event `json:"events"`
		NextSince uint64      `json:"next_since"`
		Dropped   int64       `json:"dropped"`
	}
	if code := e.getJSON(t, "/debug/events?limit=2", &page); code != http.StatusOK {
		t.Fatalf("GET /debug/events = %d", code)
	}
	if len(page.Events) != 2 || page.NextSince != page.Events[1].Seq {
		t.Fatalf("first page = %+v", page)
	}
	// The cursor resumes exactly after the first page.
	var rest struct {
		Events []obs.Event `json:"events"`
	}
	if code := e.getJSON(t, fmt.Sprintf("/debug/events?since=%d", page.NextSince), &rest); code != http.StatusOK {
		t.Fatal("second page failed")
	}
	if len(rest.Events) == 0 || rest.Events[0].Seq != page.NextSince+1 {
		t.Fatalf("second page starts at seq %d, want %d", rest.Events[0].Seq, page.NextSince+1)
	}

	if code := e.getJSON(t, "/debug/events?since=nope", nil); code != http.StatusBadRequest {
		t.Errorf("bad since = %d, want 400", code)
	}
	if code := e.getJSON(t, "/debug/events?limit=-1", nil); code != http.StatusBadRequest {
		t.Errorf("bad limit = %d, want 400", code)
	}
	if code := e.getJSON(t, "/v1/scans/nosuch/trace", nil); code != http.StatusNotFound {
		t.Errorf("trace of unknown scan = %d, want 404", code)
	}
}

// TestSlowScanLogsTimeline pins the slow-scan escape hatch: a scan
// whose end-to-end time crosses the threshold dumps its timeline at
// warn level and bumps scans_slow_total.
func TestSlowScanLogsTimeline(t *testing.T) {
	clock := obs.NewManualClock(traceOrigin)
	var logBuf syncBuffer
	logger, err := obs.NewLogger(&logBuf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	e := newTraceEnv(t, clock, "slow", func(cfg *Config) {
		cfg.Logger = logger
		cfg.SlowScanThreshold = 40 * time.Millisecond
	})
	_, sc := e.submitJSON(t, traceSubmission("slow-plugin", "steady")) // 50ms > 40ms
	waitScanEvent(t, e.rec, sc.ID, evSettled)

	if got := e.rec.Snapshot().Counters["scans_slow_total"]; got != 1 {
		t.Errorf("scans_slow_total = %d, want 1", got)
	}
	var found bool
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		if rec["msg"] == "slow scan" {
			found = true
			if rec["scan_id"] != sc.ID || rec["level"] != "WARN" {
				t.Errorf("slow scan line = %v", rec)
			}
		}
	}
	if !found {
		t.Errorf("no slow-scan line in log output:\n%s", logBuf.String())
	}
}
