package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/analyzer"
)

// TestRulepackListing exercises GET /v1/rulepacks: every builtin pack
// is listed with its metadata.
func TestRulepackListing(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 1, 4)

	resp, err := http.Get(e.ts.URL + "/v1/rulepacks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Rulepacks []rulepackJSON `json:"rulepacks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]rulepackJSON, len(body.Rulepacks))
	for _, p := range body.Rulepacks {
		got[p.Name] = p
	}
	for _, name := range []string{"generic", "wordpress", "drupal", "joomla", "security-extended"} {
		p, ok := got[name]
		if !ok {
			t.Errorf("pack %q missing from listing", name)
			continue
		}
		if p.Rules == 0 {
			t.Errorf("pack %q lists zero rules", name)
		}
	}
	if got["wordpress"].Extends[0] != "generic" {
		t.Errorf("wordpress extends = %v", got["wordpress"].Extends)
	}
}

// TestPackSelectionChangesResults is the end-to-end pack-selection and
// cache-separation check: the same content scanned under the default
// packs and under security-extended must produce different results —
// which also proves the scan-cache keys of the two pack sets are
// distinct, because a key collision would serve the first (finding-free)
// result for the second submission.
func TestPackSelectionChangesResults(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 1, 8)

	const traversal = `{"name":"trav","files":{"dl.php":"<?php readfile('uploads/' . $_GET['f']);"}}`

	status, sc := e.submitJSON(t, traversal)
	if status != http.StatusAccepted {
		t.Fatalf("default submit status = %d", status)
	}
	if done := e.wait(t, sc.ID); len(done.Result.Findings) != 0 {
		t.Fatalf("default packs found %d findings, want 0: %+v", len(done.Result.Findings), done.Result.Findings)
	}

	const withPacks = `{"name":"trav","rule_packs":["wordpress","security-extended"],"files":{"dl.php":"<?php readfile('uploads/' . $_GET['f']);"}}`
	status, sc = e.submitJSON(t, withPacks)
	if status != http.StatusAccepted {
		t.Fatalf("extended submit status = %d (a cache key collision would yield 200)", status)
	}
	done := e.wait(t, sc.ID)
	if done.Profile != "wordpress,security-extended" {
		t.Errorf("profile = %q", done.Profile)
	}
	if len(done.Result.Findings) != 1 {
		t.Fatalf("extended packs found %d findings, want 1: %+v", len(done.Result.Findings), done.Result.Findings)
	}
	f := done.Result.Findings[0]
	if f.Class != analyzer.PathTraversal || f.Sink != "readfile" {
		t.Errorf("finding = %+v, want readfile path traversal", f)
	}
	if f.CWE != 22 || f.Severity != "high" {
		t.Errorf("finding metadata cwe=%d severity=%q, want 22/high", f.CWE, f.Severity)
	}
}

// TestNewClassesEndToEnd drives one representative of each new
// vulnerability class through the daemon under the security-extended
// pack and checks class, CWE and severity on the wire.
func TestNewClassesEndToEnd(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 2, 8)

	cases := []struct {
		name, php string
		class     analyzer.VulnClass
		cwe       int
	}{
		{"cmdi", `<?php system('ls ' . $_GET['d']);`, analyzer.CmdInjection, 78},
		{"eval", `<?php assert($_POST['expr']);`, analyzer.CodeEval, 95},
		{"traversal", `<?php $fh = fopen($_GET['p'], 'r');`, analyzer.PathTraversal, 22},
		{"redirect", `<?php header('Location: ' . $_GET['next']);`, analyzer.OpenRedirect, 601},
		{"lfi", `<?php include $_GET['page'] . '.php';`, analyzer.FileInclusion, 98},
	}
	for _, tc := range cases {
		body, _ := json.Marshal(map[string]any{
			"name":       tc.name,
			"rule_packs": []string{"generic", "security-extended"},
			"files":      map[string]string{tc.name + ".php": tc.php},
		})
		status, sc := e.submitJSON(t, string(body))
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("%s: submit status = %d", tc.name, status)
		}
		done := e.wait(t, sc.ID)
		found := false
		for _, f := range done.Result.Findings {
			if f.Class == tc.class {
				found = true
				if f.CWE != tc.cwe {
					t.Errorf("%s: cwe = %d, want %d", tc.name, f.CWE, tc.cwe)
				}
				if f.Severity == "" {
					t.Errorf("%s: empty severity", tc.name)
				}
			}
		}
		if !found {
			t.Errorf("%s: no %v finding: %+v", tc.name, tc.class, done.Result.Findings)
		}
	}
}
