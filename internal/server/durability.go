// Durability: journaling helpers, crash replay, registry retention and
// the operational endpoints (quarantine, retry, livez, readyz) that sit
// on top of the durable journal. The journal itself (format, fsync,
// compaction mechanics) lives in package durable; this file decides
// what the daemon records and how it recovers.

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/incremental"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// filePayload is one source file in a journaled submission. The wire
// tags are explicit (analyzer.SourceFile has none) so the journal
// format stays stable even if the in-memory type grows fields. Content
// is []byte (base64 on the wire): zip submissions may carry non-UTF-8
// source, which a JSON string would silently mangle into U+FFFD —
// replay would then re-run the scan on corrupted bytes and seed the
// wrong result under the original content key.
type filePayload struct {
	Path    string `json:"path"`
	Content []byte `json:"content"`
}

// submissionPayload is the accepted record's payload: everything
// needed to re-create and re-run the scan after a crash.
type submissionPayload struct {
	Name    string                `json:"name"`
	Tool    string                `json:"tool"`
	Profile string                `json:"profile"`
	Key     string                `json:"key"`
	Created time.Time             `json:"created"`
	Files   []filePayload         `json:"files"`
	Opts    *analyzer.ScanOptions `json:"opts,omitempty"`
}

// resultPayload is the completed/quarantined record's payload: the
// settled state and whatever result (possibly partial) the scan ended
// with, so replay rehydrates it byte-identically.
type resultPayload struct {
	State  scanState           `json:"state"`
	Cached bool                `json:"cached,omitempty"`
	Worker string              `json:"worker,omitempty"`
	Result *analyzer.Result    `json:"result,omitempty"`
	Inc    *incremental.Report `json:"incremental,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// acceptedRecord builds the submission record for sc. Marshalling the
// payload cannot fail (every field round-trips JSON); an impossible
// failure journals an empty payload rather than nothing.
func (s *Server) acceptedRecord(sc *scan) durable.Record {
	p := submissionPayload{
		Name: sc.Target.Name, Tool: sc.Tool, Profile: sc.Profile,
		Key: sc.Key, Created: sc.Created, Opts: sc.Opts,
		Files: make([]filePayload, 0, len(sc.Target.Files)),
	}
	for _, f := range sc.Target.Files {
		p.Files = append(p.Files, filePayload{Path: f.Path, Content: []byte(f.Content)})
	}
	raw, _ := json.Marshal(p)
	return durable.Record{Type: durable.RecAccepted, ScanID: sc.ID, Payload: raw}
}

// resultPayloadLocked marshals sc's settled outcome; caller holds s.mu.
func (s *Server) resultPayloadLocked(sc *scan) json.RawMessage {
	raw, _ := json.Marshal(resultPayload{
		State: sc.State, Cached: sc.Cached, Worker: sc.Worker,
		Result: sc.Result, Inc: sc.Inc, Error: sc.Err,
	})
	return raw
}

// journal appends one lifecycle record, taking journalMu. A degraded
// journal swallows the append (the durable package counts it); the
// scan path never blocks on disk health.
func (s *Server) journal(r durable.Record) {
	if s.cfg.Journal == nil {
		return
	}
	s.journalMu.Lock()
	s.journalLocked(r)
	s.journalMu.Unlock()
}

// journalLocked appends one record; caller holds s.journalMu. Records
// are stamped from the server's clock so journaled times agree with
// the flight recorder (and stay deterministic under a manual clock).
func (s *Server) journalLocked(r durable.Record) {
	if s.cfg.Journal == nil {
		return
	}
	if r.Time.IsZero() {
		r.Time = s.now()
	}
	if err := s.cfg.Journal.Append(r); err != nil {
		s.rec.Counter("journal_append_errors_total").Inc()
	}
}

// maybeCompact snapshots the journal when the WAL has outgrown the
// configured threshold. Called after a scan settles, off the s.mu lock.
func (s *Server) maybeCompact() {
	if s.cfg.Journal == nil {
		return
	}
	if s.cfg.Journal.WALBytes() < s.cfg.CompactWALBytes {
		return
	}
	s.CompactJournal()
}

// CompactJournal folds the live registry into a snapshot and truncates
// the WAL. The live set is rebuilt from the registry itself — an
// accepted record per tracked scan, a final record for settled ones,
// and an attempt_failed marker preserving an unsettled scan's spent
// budget — so compaction also garbage-collects records of evicted
// scans.
func (s *Server) CompactJournal() {
	if s.cfg.Journal == nil {
		return
	}
	s.journalMu.Lock()
	defer s.journalMu.Unlock()

	s.mu.Lock()
	live := make([]durable.Record, 0, 2*len(s.scans))
	for _, sc := range s.scans {
		live = append(live, s.acceptedRecord(sc))
		switch sc.State {
		case stateDone, stateCancelled:
			// Time carries the original settle time through compaction so
			// replay rehydrates Finished (and the trace timeline) exactly.
			live = append(live, durable.Record{
				Type: durable.RecCompleted, ScanID: sc.ID,
				Attempt: sc.Attempts, Error: sc.Err, Time: sc.Finished,
				Payload: s.resultPayloadLocked(sc),
			})
		case stateQuarantined:
			live = append(live, durable.Record{
				Type: durable.RecQuarantined, ScanID: sc.ID,
				Attempt: sc.Attempts, Error: sc.Err, Time: sc.Finished,
				Payload: s.resultPayloadLocked(sc),
			})
		default:
			if sc.Attempts > 0 {
				live = append(live, durable.Record{
					Type: durable.RecAttemptFailed, ScanID: sc.ID,
					Attempt: sc.Attempts, Error: sc.Err,
				})
			}
		}
	}
	s.mu.Unlock()

	if s.cfg.ExtraLiveRecords != nil {
		live = append(live, s.cfg.ExtraLiveRecords()...)
	}

	if err := s.cfg.Journal.Compact(live); err != nil {
		s.rec.Counter("journal_compact_errors_total").Inc()
		return
	}
	s.rec.Counter("journal_compactions_total").Inc()
}

// Replay rebuilds the scan registry from a journal's replayed records
// (the second return of durable.Open). Settled scans are rehydrated —
// finished results are also re-seeded into the content cache, so
// resubmitting pre-crash content is served byte-identically — and
// unsettled ones are resubmitted with their attempt budget resumed.
// Call it once, after New and before serving traffic.
func (s *Server) Replay(records []durable.Record) (resubmitted, rehydrated, quarantined int) {
	for _, st := range durable.Fold(records) {
		var sub submissionPayload
		if err := json.Unmarshal(st.Accepted.Payload, &sub); err != nil {
			// An accepted record we cannot decode is unrecoverable
			// work; count it rather than guess.
			s.rec.Counter("replay_undecodable_total").Inc()
			s.log.Error("journal replay: undecodable accepted record",
				"scan_id", st.ScanID, "error", err.Error())
			continue
		}
		target := &analyzer.Target{Name: sub.Name, Files: make([]analyzer.SourceFile, 0, len(sub.Files))}
		for _, f := range sub.Files {
			target.Files = append(target.Files, analyzer.SourceFile{Path: f.Path, Content: string(f.Content)})
		}
		sc := &scan{
			ID: st.ScanID, Tool: sub.Tool, Profile: sub.Profile,
			Key: sub.Key, Created: sub.Created, Target: target, Opts: sub.Opts,
		}

		if st.Settled() {
			var res resultPayload
			if st.Final != nil {
				if err := json.Unmarshal(st.Final.Payload, &res); err != nil {
					res = resultPayload{}
				}
				sc.Finished = st.Final.Time
				sc.Attempts = st.Final.Attempt
			}
			sc.State = res.State
			if sc.State == "" {
				// Payload lost (e.g. journaled while degraded):
				// fall back to the record type.
				if st.Phase == durable.RecQuarantined {
					sc.State = stateQuarantined
				} else {
					sc.State = stateDone
				}
			}
			sc.Result = res.Result
			sc.Inc = res.Inc
			sc.Cached = res.Cached
			sc.Worker = res.Worker
			sc.Err = res.Error
			s.mu.Lock()
			s.addScanLocked(sc)
			s.mu.Unlock()
			if sc.State == stateDone && sc.Result != nil {
				s.cfg.Cache.Put(sc.Key, sc.Result)
			}
			// Reconstruct the pre-crash timeline from the journal so the
			// trace spans both process lifetimes: acceptance and settle
			// keep their historical times, the replay marker gets the
			// boot's.
			s.recordEvent(obs.Event{Scan: sc.ID, Type: evAccepted, Time: sc.Created, Detail: sc.Target.Name})
			if !sc.Finished.IsZero() {
				s.recordEvent(obs.Event{
					Scan: sc.ID, Type: evSettled, Time: sc.Finished,
					Detail: string(sc.State), Err: sc.Err,
				})
			}
			s.recordEvent(obs.Event{
				Scan: sc.ID, Type: evReplayed,
				Detail: "rehydrated as " + string(sc.State) + " from journal",
			})
			s.log.Info("journal replay: scan rehydrated",
				"scan_id", sc.ID, "state", string(sc.State), "target", sc.Target.Name)
			if sc.State == stateQuarantined {
				quarantined++
			} else {
				rehydrated++
			}
			continue
		}

		// Unsettled: the crash interrupted it. Rebuild the engine and
		// resubmit with the journaled attempt budget already spent. The
		// resubmitted mark rides the first dispatch so a fleet layer can
		// adopt a still-running remote attempt instead of duplicating it.
		sc.State = stateQueued
		sc.Attempts = st.Attempts
		sc.queuedAt = s.now()
		sc.resubmitted = true
		s.recordEvent(obs.Event{Scan: sc.ID, Type: evAccepted, Time: sc.Created, Detail: sc.Target.Name})
		engine, err := s.cfg.BuildTool(sc.Tool, sc.Profile, s.rec)
		if err != nil {
			// The tool that accepted this scan no longer builds
			// (config drift across the restart): dead-letter it so the
			// submission stays visible instead of vanishing.
			s.mu.Lock()
			s.addScanLocked(sc)
			s.mu.Unlock()
			s.recordEvent(obs.Event{
				Scan: sc.ID, Type: evReplayed, Err: err.Error(),
				Detail: "engine no longer builds; quarantined",
			})
			s.log.Error("journal replay: engine no longer builds, quarantining",
				"scan_id", sc.ID, "tool", sc.Tool, "error", err.Error())
			s.settleQuarantined(sc, st.Attempts, jobs.Terminal(err))
			quarantined++
			continue
		}
		sc.Engine = engine
		s.mu.Lock()
		s.addScanLocked(sc)
		s.active[sc.Key] = sc.ID
		s.mu.Unlock()
		// Record the resubmission before the pool sees the job: a worker
		// may start the attempt immediately, and the timeline must read
		// resubmitted → queued → attempt_started.
		s.recordEvent(obs.Event{
			Scan: sc.ID, Type: evResubmitted, Attempt: st.Attempts,
			Detail: fmt.Sprintf("resubmitted with %d prior attempt(s)", st.Attempts),
		})
		s.recordEvent(obs.Event{Scan: sc.ID, Type: evQueued, Detail: "journal replay"})
		for {
			err := s.cfg.Pool.SubmitJob(s.scanJob(sc, st.Attempts))
			if err == nil {
				break
			}
			if err == jobs.ErrClosed {
				// Shut down mid-replay; the journal still owns the scan.
				return resubmitted, rehydrated, quarantined
			}
			// Queue full: replay outran the workers. Wait for a slot —
			// accepted scans are never shed.
			time.Sleep(5 * time.Millisecond)
		}
		s.rec.Counter("scans_replayed_total").Inc()
		s.log.Info("journal replay: scan resubmitted",
			"scan_id", sc.ID, "prior_attempts", st.Attempts, "target", sc.Target.Name)
		resubmitted++
	}
	return resubmitted, rehydrated, quarantined
}

// StartDrain flips readiness off ahead of shutdown: /readyz starts
// answering 503 so load balancers stop routing new submissions while
// in-flight scans finish.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.rec.Counter("server_drains_total").Inc()
}

// addScanLocked registers sc and enforces the registry bound; caller
// holds s.mu.
func (s *Server) addScanLocked(sc *scan) {
	s.scans[sc.ID] = sc
	s.evictScansLocked()
}

// settledState reports whether state needs no further execution.
func settledState(st scanState) bool {
	switch st {
	case stateDone, stateFailed, stateCancelled, stateQuarantined:
		return true
	}
	return false
}

// evictScansLocked enforces ScanTTL and MaxScans over settled scans;
// queued and running scans are never evicted. Caller holds s.mu.
func (s *Server) evictScansLocked() {
	if s.cfg.ScanTTL > 0 {
		cutoff := s.now().Add(-s.cfg.ScanTTL)
		for id, sc := range s.scans {
			if settledState(sc.State) && !sc.Finished.IsZero() && sc.Finished.Before(cutoff) {
				delete(s.scans, id)
				s.rec.Counter("scans_evicted_total").Inc()
			}
		}
	}
	for len(s.scans) > s.cfg.MaxScans {
		var victim *scan
		for _, sc := range s.scans {
			if !settledState(sc.State) {
				continue
			}
			if victim == nil || sc.Finished.Before(victim.Finished) {
				victim = sc
			}
		}
		if victim == nil {
			// Everything tracked is still queued or running; the pool's
			// bounded queue keeps this transient.
			return
		}
		delete(s.scans, victim.ID)
		s.rec.Counter("scans_evicted_total").Inc()
	}
}

// handleQuarantine lists dead-lettered scans, oldest first.
func (s *Server) handleQuarantine(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]scanJSON, 0)
	for _, sc := range s.scans {
		if sc.State == stateQuarantined {
			views = append(views, sc.viewLocked())
		}
	}
	s.mu.Unlock()
	sortViewsByCreated(views)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"count":       len(views),
		"quarantined": views,
	})
}

// handleRetry resubmits a quarantined scan with a fresh attempt
// budget. Only quarantined scans are retryable: everything else is
// either still owed an execution or finished successfully.
func (s *Server) handleRetry(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sc, ok := s.scans[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		s.error(w, http.StatusNotFound, "unknown scan id")
		return
	}
	if sc.State != stateQuarantined {
		state := sc.State
		s.mu.Unlock()
		s.error(w, http.StatusConflict, fmt.Sprintf("scan is %s; only quarantined scans can be retried", state))
		return
	}
	if id, inflight := s.active[sc.Key]; inflight {
		s.mu.Unlock()
		s.error(w, http.StatusConflict, fmt.Sprintf("identical content is already in flight as scan %s", id))
		return
	}
	if sc.Engine == nil {
		// Quarantined scans rehydrated by replay carry no engine.
		engine, err := s.cfg.BuildTool(sc.Tool, sc.Profile, s.rec)
		if err != nil {
			s.mu.Unlock()
			s.error(w, http.StatusInternalServerError, err.Error())
			return
		}
		sc.Engine = engine
	}
	sc.State = stateQueued
	sc.Attempts = 0
	sc.Err = ""
	sc.Result = nil
	sc.Inc = nil
	sc.Cached = false
	sc.Finished = time.Time{}
	sc.cancelReq = false
	sc.queuedAt = s.now()
	s.active[sc.Key] = sc.ID
	s.mu.Unlock()

	// A fresh accepted record resets the journaled attempt budget
	// (Fold folds re-acceptance into a reopened scan).
	s.journalMu.Lock()
	err := s.cfg.Pool.SubmitJob(s.scanJob(sc, 0))
	if err == nil {
		s.journalLocked(s.acceptedRecord(sc))
	}
	s.journalMu.Unlock()
	if err != nil {
		s.mu.Lock()
		sc.State = stateQuarantined
		delete(s.active, sc.Key)
		s.mu.Unlock()
		switch err {
		case jobs.ErrQueueFull:
			s.error(w, http.StatusTooManyRequests, "scan queue is full, retry later")
		case jobs.ErrClosed:
			s.error(w, http.StatusServiceUnavailable, "daemon is shutting down")
		default:
			s.error(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.rec.Counter("scans_retry_requests_total").Inc()
	s.recordEvent(obs.Event{Scan: sc.ID, Type: evRetryRequest, Detail: "quarantined scan resubmitted with fresh budget"})
	s.recordEvent(obs.Event{Scan: sc.ID, Type: evQueued, Detail: "manual retry"})
	s.log.Info("quarantined scan resubmitted", "scan_id", sc.ID)
	s.mu.Lock()
	view := sc.viewLocked()
	s.mu.Unlock()
	s.writeJSON(w, http.StatusAccepted, view)
}

// handleLivez is pure liveness: if the process can answer, it is live.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether the daemon should receive new
// submissions: 503 while draining; "degraded" (still 200 — the daemon
// scans correctly, it has just lost durability) when the journal has
// failed over to in-memory mode. Every response carries live queue
// occupancy detail, so a saturating queue is visible before it turns
// into 429s. A coordinator additionally reports per-worker fleet
// health (state, inflight, last heartbeat) and degrades to 503 only
// when zero workers are reachable.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	body := map[string]any{
		"queue_depth":      s.cfg.Pool.QueueDepth(),
		"queue_capacity":   s.cfg.Pool.QueueCap(),
		"inflight_workers": s.cfg.Pool.InFlight(),
		"retry_backlog":    s.cfg.Pool.RetryBacklog(),
		"workers":          s.cfg.Pool.Workers(),
	}
	if draining {
		body["status"] = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	if s.cfg.FleetStatus != nil {
		detail, ready := s.cfg.FleetStatus()
		body["fleet"] = detail
		if !ready {
			body["status"] = "no_workers"
			s.writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
	}
	body["status"] = "ready"
	if s.cfg.Journal != nil {
		if degraded, err := s.cfg.Journal.Degraded(); degraded {
			body["status"] = "degraded"
			if err != nil {
				body["journal_error"] = err.Error()
			} else {
				body["journal_error"] = ""
			}
		}
	}
	s.writeJSON(w, http.StatusOK, body)
}

// sortViewsByCreated orders scan views oldest first (stable listing
// for the quarantine endpoint).
func sortViewsByCreated(views []scanJSON) {
	sort.Slice(views, func(i, j int) bool { return views[i].Created.Before(views[j].Created) })
}
