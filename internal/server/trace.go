// Flight recorder: the scan lifecycle event timeline and the endpoints
// that expose it. Every accepted scan's transitions are appended to the
// recorder's bounded event ring (package obs); GET /v1/scans/{id}/trace
// stitches one scan's events back into an ordered timeline with the
// span tree of its last executed attempt, and GET /debug/events tails
// the global ring for ad-hoc debugging. The daemon-level latency
// histograms (queue wait, attempt duration, end-to-end settle, render
// time) are observed alongside the events they describe.

package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Event types of the scan lifecycle timeline. One scan's normal path
// is accepted → queued → attempt_started → settled; retries interleave
// attempt_failed → queued pairs, crash recovery replays the journal
// into journal_replayed / journal_resubmitted events, and cache reuse,
// incremental reuse and governor degradations annotate the attempt
// they happened in.
const (
	evAccepted       = "accepted"
	evRejected       = "rejected"
	evQueued         = "queued"
	evAttemptStarted = "attempt_started"
	evAttemptFailed  = "attempt_failed"
	evInterrupted    = "interrupted"
	evCacheHit       = "cache_hit"
	evJoinedInflight = "joined_inflight"
	evIncReuse       = "incremental_reuse"
	evDegraded       = "degraded"
	evCancelRequest  = "cancel_requested"
	evRetryRequest   = "retry_requested"
	evReplayed       = "journal_replayed"
	evResubmitted    = "journal_resubmitted"
	evRendered       = "rendered"
	evSettled        = "settled"
)

// recordEvent appends one lifecycle event to the flight recorder
// (no-op on a nil recorder).
func (s *Server) recordEvent(e obs.Event) {
	s.rec.Events().Append(e)
}

// settleEvent records a scan's terminal transition: the settled event
// (detail = final state), the end-to-end settle-time histogram, a
// structured log line, and the slow-scan timeline dump when the scan
// exceeded the configured threshold. Callers pass the scan's fields
// rather than the scan so no lock is held while logging.
func (s *Server) settleEvent(sc *scan, state scanState, errMsg string, created, finished time.Time) {
	elapsed := finished.Sub(created)
	if elapsed < 0 {
		elapsed = 0
	}
	s.recordEvent(obs.Event{
		Scan: sc.ID, Type: evSettled, Detail: string(state),
		Err: errMsg, DurMS: elapsed.Milliseconds(),
	})
	if s.cfg.OnSettle != nil {
		s.cfg.OnSettle(sc.ID, string(state))
	}
	s.rec.Observe("scan_settle_seconds", elapsed.Seconds())
	logf := s.log.Info
	if state == stateQuarantined {
		logf = s.log.Error
	}
	logf("scan settled",
		"scan_id", sc.ID, "state", string(state), "target", sc.Target.Name,
		"elapsed_ms", elapsed.Milliseconds(), "error", errMsg)
	s.maybeLogSlow(sc.ID, sc.Target.Name, elapsed)
}

// maybeLogSlow dumps a scan's full timeline at warn level when its
// end-to-end time crossed Config.SlowScanThreshold, so outliers
// explain themselves without anyone having to re-run them.
func (s *Server) maybeLogSlow(id, target string, elapsed time.Duration) {
	if s.cfg.SlowScanThreshold <= 0 || elapsed < s.cfg.SlowScanThreshold {
		return
	}
	s.rec.Counter("scans_slow_total").Inc()
	s.log.Warn("slow scan",
		"scan_id", id, "target", target,
		"elapsed_ms", elapsed.Milliseconds(),
		"threshold_ms", s.cfg.SlowScanThreshold.Milliseconds(),
		"timeline", s.rec.Events().ForScan(id))
}

// traceJSON is the wire shape of GET /v1/scans/{id}/trace: the scan's
// identity, its ordered lifecycle timeline, and the span tree of its
// last executed attempt (absent for scans served purely from cache).
type traceJSON struct {
	ID       string      `json:"id"`
	Status   scanState   `json:"status"`
	Target   string      `json:"target"`
	Tool     string      `json:"tool"`
	Profile  string      `json:"profile"`
	Attempts int         `json:"attempts,omitempty"`
	Created  time.Time   `json:"created"`
	Finished *time.Time  `json:"finished,omitempty"`
	SettleMS int64       `json:"settle_ms,omitempty"`
	Events   []obs.Event `json:"events"`
	// Span is the last attempt's span tree (engine stages, per-file
	// timings), stitched from the recorder.
	Span *obs.SpanSnapshot `json:"span,omitempty"`
	// EventsDropped is the ring's global eviction count; non-zero means
	// early events of long-lived scans may be missing from Events.
	EventsDropped int64 `json:"events_dropped,omitempty"`
}

// handleTrace serves one scan's lifecycle timeline.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sc, ok := s.scans[r.PathValue("id")]
	var out traceJSON
	var span *obs.Span
	if ok {
		out = traceJSON{
			ID: sc.ID, Status: sc.State, Target: sc.Target.Name,
			Tool: sc.Tool, Profile: sc.Profile, Attempts: sc.Attempts,
			Created: sc.Created,
		}
		if !sc.Finished.IsZero() {
			f := sc.Finished
			out.Finished = &f
			if d := sc.Finished.Sub(sc.Created); d > 0 {
				out.SettleMS = d.Milliseconds()
			}
		}
		span = sc.span
	}
	s.mu.Unlock()
	if !ok {
		s.error(w, http.StatusNotFound, "unknown scan id")
		return
	}
	out.Events = s.rec.Events().ForScan(out.ID)
	if out.Events == nil {
		out.Events = []obs.Event{}
	}
	if span != nil {
		ss := span.Snapshot()
		out.Span = &ss
	}
	out.EventsDropped = s.rec.Events().Dropped()
	s.rec.Counter("traces_served_total").Inc()
	s.writeJSON(w, http.StatusOK, out)
}

// handleDebugEvents tails the global event ring: GET
// /debug/events?since=SEQ&limit=N returns events with Seq > since in
// append order. Pollers feed next_since back as since to read only
// what is new; dropped counts ring evictions (a gap between since and
// the first returned Seq means the tail outran the poller).
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.error(w, http.StatusBadRequest, "since must be a non-negative integer")
			return
		}
		since = n
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.error(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	events := s.rec.Events().Since(since, limit)
	if events == nil {
		events = []obs.Event{}
	}
	next := since
	if n := len(events); n > 0 {
		next = events[n-1].Seq
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"events":     events,
		"next_since": next,
		"dropped":    s.rec.Events().Dropped(),
	})
}
