package server

import (
	"archive/zip"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/incremental"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
)

// vulnerablePHP trips the phpSAFE engine deterministically: a direct
// reflected XSS and a concatenated SQL injection.
const vulnerablePHP = `<?php
$path = $_GET['img_path'];
echo 'Created ' . $path . '.';
$user = $_POST['user'];
mysql_query("SELECT * FROM users WHERE login='" . $user . "'");
`

// env is one daemon-in-a-test: server, pool, cache and recorder.
type env struct {
	ts   *httptest.Server
	srv  *Server
	pool *jobs.Pool
	rec  *obs.Recorder
}

// newEnv starts a test daemon; cfg mutators tweak the default config.
func newEnv(t *testing.T, workers, queueSize int, mutate ...func(*Config)) *env {
	t.Helper()
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: workers, QueueSize: queueSize, Recorder: rec})
	cfg := Config{
		Pool:     pool,
		Cache:    scancache.New(1<<20, rec),
		Recorder: rec,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
	})
	return &env{ts: ts, srv: srv, pool: pool, rec: rec}
}

// submitJSON posts a JSON submission and decodes the scan envelope.
func (e *env) submitJSON(t *testing.T, body string) (int, scanJSON) {
	t.Helper()
	resp, err := http.Post(e.ts.URL+"/v1/scans", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sc scanJSON
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, sc
}

// wait polls a scan until it leaves the queued/running states.
func (e *env) wait(t *testing.T, id string) scanJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(e.ts.URL + "/v1/scans/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sc scanJSON
		err = json.NewDecoder(resp.Body).Decode(&sc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sc.Status == stateDone || sc.Status == stateFailed ||
			sc.Status == stateCancelled || sc.Status == stateQuarantined {
			return sc
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("scan %s did not finish", id)
	return scanJSON{}
}

func submission(name string) string {
	b, _ := json.Marshal(map[string]any{
		"name":  name,
		"files": map[string]string{name + ".php": vulnerablePHP},
	})
	return string(b)
}

func TestSubmitPollFetchAllFormats(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 2, 8)

	status, sc := e.submitJSON(t, submission("demo"))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if sc.ID == "" || sc.Status != stateQueued {
		t.Fatalf("submit envelope = %+v", sc)
	}

	done := e.wait(t, sc.ID)
	if done.Status != stateDone || done.Cached {
		t.Fatalf("finished scan = %+v", done)
	}
	if done.Result == nil || len(done.Result.Findings) == 0 {
		t.Fatalf("scan found nothing: %+v", done.Result)
	}
	var sawXSS, sawSQLi bool
	for _, f := range done.Result.Findings {
		sawXSS = sawXSS || f.Class == analyzer.XSS
		sawSQLi = sawSQLi || f.Class == analyzer.SQLi
	}
	if !sawXSS || !sawSQLi {
		t.Errorf("findings missed a class: XSS=%v SQLi=%v", sawXSS, sawSQLi)
	}

	// SARIF rendering.
	resp, err := http.Get(e.ts.URL + "/v1/scans/" + sc.ID + "?format=sarif")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/sarif+json" {
		t.Fatalf("sarif response: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, `"2.1.0"`) {
		t.Error("sarif body missing version")
	}

	// HTML rendering.
	resp, err = http.Get(e.ts.URL + "/v1/scans/" + sc.ID + "?format=html")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("html response: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "<!DOCTYPE html>") {
		t.Error("html body is not a page")
	}
}

func TestSubmitZip(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 2, 8)

	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for name, content := range map[string]string{
		"plugin/main.PHP":   vulnerablePHP, // uppercase extension must load
		"plugin/readme.txt": "ignored",
	} {
		f, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte(content))
	}
	zw.Close()

	resp, err := http.Post(e.ts.URL+"/v1/scans?name=zipped", "application/zip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("zip submit status = %d", resp.StatusCode)
	}
	var sc scanJSON
	if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	done := e.wait(t, sc.ID)
	if done.Status != stateDone || len(done.Result.Findings) == 0 {
		t.Fatalf("zip scan = %+v", done)
	}
	if done.Target != "zipped" {
		t.Errorf("target name = %q", done.Target)
	}
}

func TestBadRequests(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 1, 4)

	cases := []struct {
		name, body string
		want       int
	}{
		{"invalid json", "{", http.StatusBadRequest},
		{"no files", `{"name":"x","files":{}}`, http.StatusBadRequest},
		{"no php files", `{"name":"x","files":{"a.txt":"hi"}}`, http.StatusBadRequest},
		{"unknown tool", `{"tool":"sonar","files":{"a.php":"<?php"}}`, http.StatusBadRequest},
		{"unknown pack", `{"profile":"no-such-pack","files":{"a.php":"<?php"}}`, http.StatusBadRequest},
		{"unknown pack in list", `{"rule_packs":["wordpress","no-such-pack"],"files":{"a.php":"<?php"}}`, http.StatusBadRequest},
		{"joomla is a builtin pack now", `{"profile":"joomla","files":{"a.php":"<?php"}}`, http.StatusAccepted},
	}
	for _, tc := range cases {
		status, _ := e.submitJSON(t, tc.body)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, status, tc.want)
		}
	}

	// The unknown-pack rejection must tell the caller what packs exist.
	resp, err := http.Post(e.ts.URL+"/v1/scans", "application/json",
		strings.NewReader(`{"profile":"no-such-pack","files":{"a.php":"<?php"}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown pack status = %d, want 400", resp.StatusCode)
	}
	for _, name := range []string{"generic", "wordpress", "drupal", "joomla", "security-extended"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("unknown-pack 400 body does not name pack %q: %s", name, body)
		}
	}

	if resp, err := http.Get(e.ts.URL + "/v1/scans/no-such-id"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown id status = %d, want 404", resp.StatusCode)
		}
	}

	// Unfinished scans have no report yet; rendering formats conflict.
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	eSlow := newEnv(t, 1, 4, withBlockingAnalyzer(block, nil))
	_, sc := eSlow.submitJSON(t, submission("slow"))
	resp, err = http.Get(eSlow.ts.URL + "/v1/scans/" + sc.ID + "?format=sarif")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("sarif of unfinished scan = %d, want 409", resp.StatusCode)
	}
	resp, err = http.Get(eSlow.ts.URL + "/v1/scans/" + sc.ID + "?format=pdf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unknown format of unfinished scan = %d, want 409", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 1, 4)

	resp, err := http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz = %+v", health)
	}

	resp, err = http.Get(e.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom := readAll(t, resp)
	if !strings.Contains(prom, "# TYPE httpd_requests_total_healthz counter") {
		t.Errorf("prometheus exposition missing request counter:\n%s", prom)
	}

	resp, err = http.Get(e.ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := snap["counters"]; !ok {
		t.Errorf("json metrics missing counters: %v", snap)
	}
}

// blockingAnalyzer parks every Analyze call until released.
type blockingAnalyzer struct {
	release <-chan struct{}
	started chan<- struct{}
}

func (b blockingAnalyzer) Name() string { return "blocking" }

func (b blockingAnalyzer) AnalyzeContext(_ context.Context, t *analyzer.Target, _ *analyzer.ScanOptions) (*analyzer.Result, error) {
	if b.started != nil {
		select {
		case b.started <- struct{}{}:
		default: // only the first entry needs to be observable
		}
	}
	<-b.release
	return &analyzer.Result{Tool: "blocking", Target: t.Name, FilesAnalyzed: len(t.Files)}, nil
}

// withBlockingAnalyzer substitutes an engine that blocks on release;
// started (when non-nil) receives one value per Analyze entry.
func withBlockingAnalyzer(release <-chan struct{}, started chan<- struct{}) func(*Config) {
	return func(cfg *Config) {
		cfg.BuildTool = func(_, _ string, _ *obs.Recorder) (analyzer.Analyzer, error) {
			return blockingAnalyzer{release: release, started: started}, nil
		}
	}
}

// TestQueueSaturationReturns429 drives the acceptance scenario: a
// saturated queue sheds new submissions with 429 while every accepted
// job still completes.
func TestQueueSaturationReturns429(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	e := newEnv(t, 1, 2, withBlockingAnalyzer(release, started))

	// One scan occupies the worker; two fill the queue. Distinct file
	// contents keep the cache keys (and so the jobs) distinct.
	accepted := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		status, sc := e.submitJSON(t, fmt.Sprintf(`{"name":"p%d","files":{"a.php":"<?php echo %d;"}}`, i, i))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, status)
		}
		accepted = append(accepted, sc.ID)
		if i == 0 {
			<-started // worker is provably busy before we fill the queue
		}
	}

	status, _ := e.submitJSON(t, `{"name":"overflow","files":{"a.php":"<?php echo 99;"}}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status = %d, want 429", status)
	}
	if got := e.rec.Snapshot().Counters["scans_rejected_total"]; got != 1 {
		t.Errorf("scans_rejected_total = %d, want 1", got)
	}

	// The rejection must not have lost accepted work.
	close(release)
	for _, id := range accepted {
		if done := e.wait(t, id); done.Status != stateDone {
			t.Errorf("accepted scan %s ended %s (%s)", id, done.Status, done.Error)
		}
	}
}

// TestDuplicateInFlightSubmissionJoins checks that submitting content
// identical to a queued scan answers with the existing job instead of
// consuming another queue slot.
func TestDuplicateInFlightSubmissionJoins(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	e := newEnv(t, 1, 2, withBlockingAnalyzer(release, started))

	_, first := e.submitJSON(t, submission("dup"))
	<-started
	status, second := e.submitJSON(t, submission("dup"))
	if status != http.StatusAccepted || second.ID != first.ID {
		t.Fatalf("duplicate submit = %d id %s, want 202 with id %s", status, second.ID, first.ID)
	}
	if got := e.rec.Snapshot().Counters["scans_joined_inflight_total"]; got != 1 {
		t.Errorf("scans_joined_inflight_total = %d, want 1", got)
	}
	close(release)
	if done := e.wait(t, first.ID); done.Status != stateDone {
		t.Fatalf("joined scan ended %s", done.Status)
	}
}

func TestFailedScanRetriesThenQuarantines(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 1, 4, func(cfg *Config) {
		cfg.BuildTool = func(_, _ string, _ *obs.Recorder) (analyzer.Analyzer, error) {
			return failingAnalyzer{}, nil
		}
		cfg.Retry = jobs.RetryPolicy{MaxAttempts: 2, Base: 2 * time.Millisecond, Cap: 5 * time.Millisecond}
	})
	_, sc := e.submitJSON(t, submission("broken"))
	done := e.wait(t, sc.ID)
	if done.Status != stateQuarantined || done.Error == "" {
		t.Fatalf("failing scan = %+v, want quarantined with error", done)
	}
	if done.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (the full budget)", done.Attempts)
	}
	snap := e.rec.Snapshot()
	if got := snap.Counters["scans_quarantined_total"]; got != 1 {
		t.Errorf("scans_quarantined_total = %d, want 1", got)
	}
	if got := snap.Counters["scans_retried_total"]; got != 1 {
		t.Errorf("scans_retried_total = %d, want 1", got)
	}
	// Failures are not cached: a resubmission runs again.
	_, sc2 := e.submitJSON(t, submission("broken"))
	if sc2.Cached {
		t.Error("failed result must not be served from cache")
	}
}

type failingAnalyzer struct{}

func (failingAnalyzer) Name() string { return "failing" }
func (failingAnalyzer) AnalyzeContext(context.Context, *analyzer.Target, *analyzer.ScanOptions) (*analyzer.Result, error) {
	return nil, fmt.Errorf("engine exploded")
}

// ctxAnalyzer parks every scan on its context, like a long scan whose
// governor checkpoints are the only exit; it returns the partial
// result alongside the wrapped ctx error, matching the engine
// contract.
type ctxAnalyzer struct {
	started chan<- struct{}
}

func (c ctxAnalyzer) Name() string { return "ctxblocking" }

func (c ctxAnalyzer) Analyze(t *analyzer.Target) (*analyzer.Result, error) {
	return c.AnalyzeContext(context.Background(), t, nil)
}

func (c ctxAnalyzer) AnalyzeContext(ctx context.Context, t *analyzer.Target, _ *analyzer.ScanOptions) (*analyzer.Result, error) {
	select {
	case c.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	res := &analyzer.Result{Tool: c.Name(), Target: t.Name}
	return res, fmt.Errorf("scan cancelled: %w", ctx.Err())
}

// TestCancelRunningScanFreesWorker drives the acceptance scenario:
// cancelling a mid-flight scan settles it as "cancelled", frees its
// worker for the next job, and the daemon keeps serving.
func TestCancelRunningScanFreesWorker(t *testing.T) {
	t.Parallel()
	started := make(chan struct{}, 4)
	e := newEnv(t, 1, 4, func(cfg *Config) {
		cfg.BuildTool = func(_, _ string, _ *obs.Recorder) (analyzer.Analyzer, error) {
			return ctxAnalyzer{started: started}, nil
		}
	})

	_, first := e.submitJSON(t, submission("victim"))
	<-started // the single worker is provably inside the scan

	resp, err := http.Post(e.ts.URL+"/v1/scans/"+first.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}

	done := e.wait(t, first.ID)
	if done.Status != stateCancelled {
		t.Fatalf("cancelled scan ended %s (%s)", done.Status, done.Error)
	}
	if done.Error == "" {
		t.Error("cancelled scan should carry the cancellation error")
	}
	if done.Result == nil || done.Result.Tool != "ctxblocking" {
		t.Errorf("cancelled scan lost its partial result: %+v", done.Result)
	}
	if got := e.rec.Snapshot().Counters["scans_cancelled_total"]; got != 1 {
		t.Errorf("scans_cancelled_total = %d, want 1", got)
	}

	// The worker is free: the next scan starts. The daemon still serves.
	_, second := e.submitJSON(t, submission("next"))
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker was not freed by the cancellation")
	}
	if resp, err := http.Get(e.ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after cancel: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	http.Post(e.ts.URL+"/v1/scans/"+second.ID+"/cancel", "", nil)
	e.wait(t, second.ID)

	// Cancelling a settled scan conflicts; unknown ids are 404.
	resp, err = http.Post(e.ts.URL+"/v1/scans/"+first.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel status = %d, want 409", resp.StatusCode)
	}
	resp, err = http.Post(e.ts.URL+"/v1/scans/nope/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-id cancel status = %d, want 404", resp.StatusCode)
	}
}

// TestCancelQueuedScanNeverRuns cancels a scan while it is still
// waiting in the queue; it must settle as cancelled without the
// engine ever starting.
func TestCancelQueuedScanNeverRuns(t *testing.T) {
	t.Parallel()
	started := make(chan struct{}, 4)
	e := newEnv(t, 1, 4, func(cfg *Config) {
		cfg.BuildTool = func(_, _ string, _ *obs.Recorder) (analyzer.Analyzer, error) {
			return ctxAnalyzer{started: started}, nil
		}
	})

	_, blocker := e.submitJSON(t, submission("blocker"))
	<-started
	_, queued := e.submitJSON(t, submission("waiting"))

	resp, err := http.Post(e.ts.URL+"/v1/scans/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued cancel status = %d, want 202", resp.StatusCode)
	}

	// Free the worker; the queued scan must settle cancelled without
	// its engine ever entering Analyze.
	http.Post(e.ts.URL+"/v1/scans/"+blocker.ID+"/cancel", "", nil)
	e.wait(t, blocker.ID)
	done := e.wait(t, queued.ID)
	if done.Status != stateCancelled {
		t.Fatalf("queued-cancelled scan ended %s", done.Status)
	}
	select {
	case <-started:
		t.Error("cancelled queued scan still ran its engine")
	default:
	}
}

// TestBudgetOverridesClampedAndReported submits per-request budgets
// beyond and below the server caps and checks the clamped effective
// budgets on the scan record, plus genuine truncation (with its
// budget-keyed cache entry) when the step budget bites.
func TestBudgetOverridesClampedAndReported(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 2, 8, func(cfg *Config) {
		cfg.Budgets = analyzer.ScanOptions{MaxSteps: 100_000, Deadline: 30 * time.Second}
	})

	// A source long enough that the interpreter provably crosses a
	// governor checkpoint (every 256 steps).
	var b strings.Builder
	b.WriteString("<?php\n$a = $_GET['x'];\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "$v%d = $a . 'pad';\n", i)
	}
	b.WriteString("echo $a;\n")
	body, _ := json.Marshal(map[string]any{
		"name":         "clamped",
		"files":        map[string]string{"big.php": b.String()},
		"max_steps":    500,       // tightens below the 100k cap
		"deadline_ms":  3_600_000, // tries to exceed the 30s cap
		"max_findings": 50,        // tightens below the default
	})

	status, sc := e.submitJSON(t, string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if sc.Budgets == nil {
		t.Fatal("scan record has no effective budgets")
	}
	if sc.Budgets.MaxSteps != 500 {
		t.Errorf("effective max_steps = %d, want the tightened 500", sc.Budgets.MaxSteps)
	}
	if sc.Budgets.DeadlineMS != 30_000 {
		t.Errorf("effective deadline_ms = %d, want clamped 30000", sc.Budgets.DeadlineMS)
	}
	if sc.Budgets.MaxFindings != 50 {
		t.Errorf("effective max_findings = %d, want 50", sc.Budgets.MaxFindings)
	}

	done := e.wait(t, sc.ID)
	if done.Status != stateDone {
		t.Fatalf("budgeted scan ended %s (%s)", done.Status, done.Error)
	}
	if done.Result == nil || !done.Result.Truncated {
		t.Fatal("500-step scan of a 2000-statement file must be truncated")
	}
	found := false
	for _, dim := range done.Result.TruncatedBy {
		if dim == "steps" {
			found = true
		}
	}
	if !found {
		t.Errorf("truncated_by = %v, want to include steps", done.Result.TruncatedBy)
	}

	// The same content without the tight budget runs under a different
	// cache key: it must not be served the truncated result.
	full, _ := json.Marshal(map[string]any{
		"name":  "clamped",
		"files": map[string]string{"big.php": b.String()},
	})
	_, sc2 := e.submitJSON(t, string(full))
	if sc2.Cached {
		t.Fatal("default-budget submission reused the truncated result's cache entry")
	}
	done2 := e.wait(t, sc2.ID)
	if done2.Status != stateDone || done2.Result == nil || done2.Result.Truncated {
		t.Errorf("default-budget rescan = %s truncated=%v, want clean done",
			done2.Status, done2.Result != nil && done2.Result.Truncated)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// submissionFiles builds a JSON submission with an explicit file map.
func submissionFiles(name string, files map[string]string) string {
	b, _ := json.Marshal(map[string]any{"name": name, "files": files})
	return string(b)
}

func TestIncrementalReuseAcrossVersions(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 2, 8, func(cfg *Config) {
		store, err := incremental.NewStore("", cfg.Recorder)
		if err != nil {
			t.Fatal(err)
		}
		cfg.IncStore = store
	})

	v1 := map[string]string{
		"a.php": `<?php echo $_GET['a'];`,
		"b.php": `<?php mysql_query("q" . $_POST['b']);`,
		"c.php": `<?php echo strip_tags($_COOKIE['c']);`,
	}
	_, sc := e.submitJSON(t, submissionFiles("plugin", v1))
	done := e.wait(t, sc.ID)
	if done.Status != stateDone {
		t.Fatalf("v1 scan ended %s: %s", done.Status, done.Error)
	}
	if done.Inc == nil || done.Inc.ReusedFiles != 0 {
		t.Fatalf("v1 incremental report = %+v, want cold scan", done.Inc)
	}

	// Version 2 changes one independent file: the other two reuse.
	v2 := map[string]string{
		"a.php": v1["a.php"],
		"b.php": v1["b.php"],
		"c.php": `<?php echo strip_tags($_COOKIE['c']); // patched`,
	}
	_, sc2 := e.submitJSON(t, submissionFiles("plugin", v2))
	done2 := e.wait(t, sc2.ID)
	if done2.Status != stateDone {
		t.Fatalf("v2 scan ended %s: %s", done2.Status, done2.Error)
	}
	if done2.Cached {
		t.Fatal("changed submission must not hit the whole-result cache")
	}
	if done2.Inc == nil || done2.Inc.ReusedFiles != 2 || done2.Inc.AnalyzedFiles != 1 {
		t.Fatalf("v2 incremental report = %+v, want 2 reused / 1 analyzed", done2.Inc)
	}

	// The reuse shows up on /metrics for scraping.
	resp, err := http.Get(e.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	if !strings.Contains(metrics, "inc_files_reused_total 2") {
		t.Errorf("metrics missing incremental reuse counter:\n%s", metrics)
	}
}

func TestDiffEndpoint(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 2, 8)

	old := map[string]string{
		"p.php": "<?php\necho $_GET['x'];\nmysql_query('q' . $_POST['y']);\n",
	}
	fixed := map[string]string{
		"p.php": "<?php\necho htmlspecialchars($_GET['x']);\nmysql_query('q' . $_POST['y']);\necho $_COOKIE['z'];\n",
	}
	_, scOld := e.submitJSON(t, submissionFiles("evolving", old))
	_, scNew := e.submitJSON(t, submissionFiles("evolving", fixed))
	if e.wait(t, scOld.ID).Status != stateDone || e.wait(t, scNew.ID).Status != stateDone {
		t.Fatal("scans did not finish")
	}

	resp, err := http.Get(e.ts.URL + "/v1/diffs?from=" + scOld.ID + "&to=" + scNew.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var d diffJSON
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d.Fixed != 1 || d.Persisting != 1 || d.Introduced != 1 {
		t.Fatalf("diff = %+v, want 1 fixed / 1 persisting / 1 introduced", d)
	}
	if len(d.Changes) != 3 {
		t.Fatalf("diff changes = %d, want 3", len(d.Changes))
	}

	// Error paths: missing params and unknown ids.
	resp, err = http.Get(e.ts.URL + "/v1/diffs?from=" + scOld.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("diff without to = %d, want 400", resp.StatusCode)
	}
	readAll(t, resp)
	resp, err = http.Get(e.ts.URL + "/v1/diffs?from=nope&to=" + scNew.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("diff with unknown id = %d, want 404", resp.StatusCode)
	}
	readAll(t, resp)
}
