package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/govern"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// newJournalEnv starts a test daemon journaling into dir, replaying
// whatever the journal already holds before serving traffic — the
// daemon's restart sequence, in-process.
func newJournalEnv(t *testing.T, dir string, mutate ...func(*Config)) *env {
	t.Helper()
	j, records, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	e := newEnv(t, 1, 16, append([]func(*Config){func(cfg *Config) {
		cfg.Journal = j
	}}, mutate...)...)
	e.srv.Replay(records)
	return e
}

// crash stops a journal env the hard way for in-process restart tests:
// the HTTP listener closes, the pool drains (workers finish their
// current job, including its journal append) and the journal closes,
// leaving the on-disk state exactly as a later Open will find it.
func (e *env) crash(t *testing.T) {
	t.Helper()
	e.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.pool.Shutdown(ctx); err != nil {
		t.Fatalf("draining pool: %v", err)
	}
	if err := e.srv.cfg.Journal.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}
}

// getJSON GETs path and decodes the body into v, returning the status.
func (e *env) getJSON(t *testing.T, path string, v any) int {
	t.Helper()
	resp, err := http.Get(e.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestReplayRehydratesFinishedScanByteIdentically(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	e1 := newJournalEnv(t, dir)
	_, sc := e1.submitJSON(t, submission("durableplugin"))
	done := e1.wait(t, sc.ID)
	if done.Status != stateDone || done.Result == nil || len(done.Result.Findings) == 0 {
		t.Fatalf("pre-crash scan = %+v, want done with findings", done)
	}
	want, err := json.Marshal(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	e1.crash(t)

	e2 := newJournalEnv(t, dir)
	// The pre-crash scan id answers from the rebuilt registry.
	var replayed scanJSON
	if code := e2.getJSON(t, "/v1/scans/"+sc.ID, &replayed); code != http.StatusOK {
		t.Fatalf("GET replayed scan = %d, want 200", code)
	}
	if replayed.Status != stateDone {
		t.Fatalf("replayed status = %s, want done", replayed.Status)
	}
	got, err := json.Marshal(replayed.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("replayed result differs from pre-crash result:\npre:  %s\npost: %s", want, got)
	}
	// The cache was re-seeded from the journal: resubmitting the same
	// content is served from cache, not re-analyzed.
	code, resub := e2.submitJSON(t, submission("durableplugin"))
	if code != http.StatusOK || !resub.Cached {
		t.Errorf("resubmission after replay: code=%d cached=%v, want 200 from cache", code, resub.Cached)
	}
	resubBytes, _ := json.Marshal(resub.Result)
	if string(resubBytes) != string(want) {
		t.Errorf("resubmitted result differs from pre-crash result")
	}
}

func TestReplayResubmitsUnsettledScanAndResumesBudget(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	// Handcraft the journal a crashed daemon would leave behind: an
	// accepted scan whose first attempt failed with no settlement.
	j, _, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(submissionPayload{
		Name: "interrupted", Tool: "phpsafe", Profile: "wordpress",
		Key: "replay-test-key", Created: time.Now(),
		Files: []filePayload{{Path: "interrupted.php", Content: []byte(vulnerablePHP)}},
	})
	const id = "replayscan001"
	for _, r := range []durable.Record{
		{Type: durable.RecAccepted, ScanID: id, Payload: payload},
		{Type: durable.RecStarted, ScanID: id, Attempt: 1},
		{Type: durable.RecAttemptFailed, ScanID: id, Attempt: 1, Error: "simulated crash", BackoffMS: 1},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	e := newJournalEnv(t, dir)
	done := e.wait(t, id)
	if done.Status != stateDone || done.Result == nil || len(done.Result.Findings) == 0 {
		t.Fatalf("replayed scan = %+v, want done with findings", done)
	}
	// The journaled failed attempt counts against the budget: this
	// execution was attempt 2.
	if done.Attempts != 2 {
		t.Errorf("attempts after replay = %d, want 2 (1 journaled + 1 live)", done.Attempts)
	}
	if got := e.rec.Snapshot().Counters["scans_replayed_total"]; got != 1 {
		t.Errorf("scans_replayed_total = %d, want 1", got)
	}
}

// TestJournalPreservesNonUTF8Source covers the zip path: archive
// members may be arbitrary bytes, and the journal must replay them
// exactly — a JSON string payload would mangle invalid UTF-8 into
// U+FFFD and re-run the scan on corrupted source.
func TestJournalPreservesNonUTF8Source(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	raw := "<?php $x = $_GET['a']; echo $x; // \xff\xfe\x80 latin1 comment"

	j, _, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(submissionPayload{
		Name: "binary", Tool: "phpsafe", Profile: "wordpress",
		Key: "bin-key", Created: time.Now(),
		Files: []filePayload{{Path: "bin.php", Content: []byte(raw)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const id = "binscan00001"
	if err := j.Append(durable.Record{Type: durable.RecAccepted, ScanID: id, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	e := newJournalEnv(t, dir)
	done := e.wait(t, id)
	if done.Status != stateDone {
		t.Fatalf("replayed binary scan = %+v, want done", done)
	}
	e.srv.mu.Lock()
	got := e.srv.scans[id].Target.Files[0].Content
	e.srv.mu.Unlock()
	if got != raw {
		t.Errorf("replayed source = %q, want the original bytes %q", got, raw)
	}
	// And a freshly journaled acceptance round-trips the same bytes.
	rec := e.srv.acceptedRecord(&scan{ID: "x", Target: &analyzer.Target{
		Name: "x", Files: []analyzer.SourceFile{{Path: "x.php", Content: raw}},
	}})
	var sub submissionPayload
	if err := json.Unmarshal(rec.Payload, &sub); err != nil {
		t.Fatal(err)
	}
	if string(sub.Files[0].Content) != raw {
		t.Errorf("journaled payload = %q, want %q", sub.Files[0].Content, raw)
	}
}

// TestShutdownInterruptedScanReplaysAfterRestart pins the drain-deadline
// path: a scan cancelled because shutdown blew its deadline must not be
// journaled as terminally cancelled — after restart the journal still
// owes it an execution.
func TestShutdownInterruptedScanReplaysAfterRestart(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	e1 := newJournalEnv(t, dir, func(cfg *Config) {
		cfg.BuildTool = func(_, _ string, _ *obs.Recorder) (analyzer.Analyzer, error) {
			return ctxAnalyzer{started: started}, nil
		}
	})
	_, sc := e1.submitJSON(t, submission("interrupted-by-drain"))
	<-started // the worker is provably inside the scan

	// A drain whose deadline has already expired: Shutdown cancels the
	// pool's base context, aborting the in-flight attempt.
	e1.ts.Close()
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e1.pool.Shutdown(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("deadline-blown shutdown = %v, want context.Canceled", err)
	}
	// Shutdown returned before the worker observed the cancellation;
	// a second (idempotent) call waits for the workers to finish.
	ctx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := e1.pool.Shutdown(ctx); err != nil {
		t.Fatalf("draining workers: %v", err)
	}
	if got := e1.rec.Snapshot().Counters["scans_interrupted_total"]; got != 1 {
		t.Errorf("scans_interrupted_total = %d, want 1", got)
	}
	if err := e1.srv.cfg.Journal.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}

	// Restart with a working engine: replay resubmits the interrupted
	// scan and it completes.
	e2 := newJournalEnv(t, dir)
	done := e2.wait(t, sc.ID)
	if done.Status != stateDone || done.Result == nil {
		t.Fatalf("replayed interrupted scan = %+v, want done (was it journaled as cancelled?)", done)
	}
	if got := e2.rec.Snapshot().Counters["scans_replayed_total"]; got != 1 {
		t.Errorf("scans_replayed_total = %d, want 1", got)
	}
}

// healingAnalyzer fails every scan until healed, then finds nothing.
type healingAnalyzer struct{ healed *atomic.Bool }

func (h healingAnalyzer) Name() string { return "healing" }
func (h healingAnalyzer) AnalyzeContext(ctx context.Context, tg *analyzer.Target, opts *analyzer.ScanOptions) (*analyzer.Result, error) {
	if !h.healed.Load() {
		return nil, fmt.Errorf("transient backend failure")
	}
	return &analyzer.Result{Tool: "healing", Target: tg.Name, Findings: []analyzer.Finding{}}, nil
}

func TestQuarantineListingAndManualRetry(t *testing.T) {
	t.Parallel()
	healed := &atomic.Bool{}
	e := newEnv(t, 1, 4, func(cfg *Config) {
		cfg.BuildTool = func(_, _ string, _ *obs.Recorder) (analyzer.Analyzer, error) {
			return healingAnalyzer{healed: healed}, nil
		}
		cfg.Retry = jobs.RetryPolicy{MaxAttempts: 2, Base: 2 * time.Millisecond, Cap: 5 * time.Millisecond}
	})

	_, sc := e.submitJSON(t, submission("flaky"))
	done := e.wait(t, sc.ID)
	if done.Status != stateQuarantined {
		t.Fatalf("scan = %+v, want quarantined", done)
	}

	var list struct {
		Count       int        `json:"count"`
		Quarantined []scanJSON `json:"quarantined"`
	}
	if code := e.getJSON(t, "/v1/quarantine", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/quarantine = %d", code)
	}
	if list.Count != 1 || len(list.Quarantined) != 1 || list.Quarantined[0].ID != sc.ID {
		t.Fatalf("quarantine list = %+v, want exactly scan %s", list, sc.ID)
	}

	// Retrying a non-quarantined scan conflicts.
	resp, err := http.Post(e.ts.URL+"/v1/scans/nosuchscan/retry", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("retry of unknown scan = %d, want 404", resp.StatusCode)
	}

	// Heal the backend and retry: the scan completes with a reset
	// attempt budget.
	healed.Store(true)
	resp, err = http.Post(e.ts.URL+"/v1/scans/"+sc.ID+"/retry", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var retried scanJSON
	if err := json.NewDecoder(resp.Body).Decode(&retried); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retry = %d, want 202", resp.StatusCode)
	}
	done = e.wait(t, sc.ID)
	if done.Status != stateDone {
		t.Fatalf("retried scan = %+v, want done", done)
	}
	if done.Attempts != 1 {
		t.Errorf("retried attempts = %d, want 1 (budget reset)", done.Attempts)
	}
	if code := e.getJSON(t, "/v1/quarantine", &list); code != http.StatusOK || list.Count != 0 {
		t.Errorf("quarantine after retry: code=%d count=%d, want empty", code, list.Count)
	}
	// A second retry of the now-finished scan conflicts.
	resp, err = http.Post(e.ts.URL+"/v1/scans/"+sc.ID+"/retry", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("retry of finished scan = %d, want 409", resp.StatusCode)
	}
}

func TestRegistryBoundEvictsOldestFinished(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 1, 8, func(cfg *Config) {
		cfg.MaxScans = 2
	})
	var ids []string
	for i := 0; i < 3; i++ {
		_, sc := e.submitJSON(t, submission(fmt.Sprintf("plugin%d", i)))
		done := e.wait(t, sc.ID)
		if done.Status != stateDone {
			t.Fatalf("scan %d = %+v", i, done)
		}
		ids = append(ids, sc.ID)
	}
	// The oldest finished scan was evicted to hold the bound.
	if code := e.getJSON(t, "/v1/scans/"+ids[0], nil); code != http.StatusNotFound {
		t.Errorf("GET evicted scan = %d, want 404", code)
	}
	if code := e.getJSON(t, "/v1/scans/"+ids[2], nil); code != http.StatusOK {
		t.Errorf("GET newest scan = %d, want 200", code)
	}
	var health struct {
		Scans int `json:"scans"`
	}
	e.getJSON(t, "/healthz", &health)
	if health.Scans > 2 {
		t.Errorf("tracked scans = %d, want <= 2", health.Scans)
	}
	if got := e.rec.Snapshot().Counters["scans_evicted_total"]; got != 1 {
		t.Errorf("scans_evicted_total = %d, want 1", got)
	}
}

func TestScanTTLEvictsStaleFinishedScans(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 1, 8, func(cfg *Config) {
		cfg.ScanTTL = 10 * time.Millisecond
	})
	_, first := e.submitJSON(t, submission("ttl-old"))
	if done := e.wait(t, first.ID); done.Status != stateDone {
		t.Fatalf("first scan = %+v", done)
	}
	time.Sleep(25 * time.Millisecond)
	// The next insertion sweeps expired scans.
	_, second := e.submitJSON(t, submission("ttl-new"))
	e.wait(t, second.ID)
	if code := e.getJSON(t, "/v1/scans/"+first.ID, nil); code != http.StatusNotFound {
		t.Errorf("GET expired scan = %d, want 404", code)
	}
}

func TestLivezReadyzAndDrain(t *testing.T) {
	t.Parallel()
	e := newEnv(t, 1, 4)
	var live map[string]string
	if code := e.getJSON(t, "/livez", &live); code != http.StatusOK || live["status"] != "ok" {
		t.Errorf("livez = %d %v, want 200 ok", code, live)
	}
	var body map[string]any
	if code := e.getJSON(t, "/readyz", &body); code != http.StatusOK || body["status"] != "ready" {
		t.Errorf("readyz = %d %v, want 200 ready", code, body)
	}
	// Readiness carries live queue occupancy so saturation is visible
	// before it turns into 429s.
	for _, field := range []string{"queue_depth", "queue_capacity", "inflight_workers", "retry_backlog", "workers"} {
		if _, ok := body[field]; !ok {
			t.Errorf("readyz body missing %q: %v", field, body)
		}
	}
	if got := body["queue_capacity"]; got != float64(4) {
		t.Errorf("readyz queue_capacity = %v, want 4", got)
	}
	e.srv.StartDrain()
	if code := e.getJSON(t, "/readyz", &body); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("readyz while draining = %d %v, want 503 draining", code, body)
	}
	// Liveness is unaffected by draining.
	if code := e.getJSON(t, "/livez", &live); code != http.StatusOK {
		t.Errorf("livez while draining = %d, want 200", code)
	}
}

// Not parallel: installs the global I/O fault hook.
func TestJournalDiskFailureDegradesButKeepsScanning(t *testing.T) {
	dir := t.TempDir()
	e := newJournalEnv(t, dir)

	var body map[string]any
	if code := e.getJSON(t, "/readyz", &body); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz before fault = %d %v", code, body)
	}

	govern.IOFaultHookForTesting = func(op, path string) error {
		if strings.Contains(path, dir) {
			return errors.New("injected disk failure")
		}
		return nil
	}
	defer func() { govern.IOFaultHookForTesting = nil }()

	// Scans still complete while the journal is unwritable.
	_, sc := e.submitJSON(t, submission("degradedplugin"))
	done := e.wait(t, sc.ID)
	if done.Status != stateDone || done.Result == nil {
		t.Fatalf("scan under journal failure = %+v, want done", done)
	}

	var health struct {
		Status  string `json:"status"`
		Journal struct {
			Enabled  bool `json:"enabled"`
			Degraded bool `json:"degraded"`
		} `json:"journal"`
	}
	if code := e.getJSON(t, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "degraded" || !health.Journal.Degraded || !health.Journal.Enabled {
		t.Errorf("healthz under journal failure = %+v, want degraded", health)
	}
	// Degraded is not draining: readiness stays 200 so the daemon keeps
	// serving, with the status telling operators durability is gone.
	if code := e.getJSON(t, "/readyz", &body); code != http.StatusOK || body["status"] != "degraded" {
		t.Errorf("readyz under journal failure = %d %v, want 200 degraded", code, body)
	}
}

func TestCompactionKeepsRegistryReplayable(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	e1 := newJournalEnv(t, dir)
	_, sc := e1.submitJSON(t, submission("compacted"))
	done := e1.wait(t, sc.ID)
	if done.Status != stateDone {
		t.Fatalf("scan = %+v", done)
	}
	before := e1.srv.cfg.Journal.WALBytes()
	e1.srv.CompactJournal()
	if after := e1.srv.cfg.Journal.WALBytes(); after >= before {
		t.Errorf("WAL bytes after compaction = %d, want < %d", after, before)
	}
	e1.crash(t)

	e2 := newJournalEnv(t, dir)
	var replayed scanJSON
	if code := e2.getJSON(t, "/v1/scans/"+sc.ID, &replayed); code != http.StatusOK {
		t.Fatalf("GET after compacted replay = %d, want 200", code)
	}
	if replayed.Status != stateDone || replayed.Result == nil {
		t.Errorf("compacted replay = %+v, want done with result", replayed)
	}
}
