package obs

import (
	"sync"
	"time"
)

// DefaultMaxEvents bounds the flight recorder's ring buffer. At the
// daemon's typical ~10 events per scan lifecycle this keeps the last
// several hundred scans' timelines resident; older events are evicted
// oldest-first and counted in Dropped.
const DefaultMaxEvents = 8192

// Event is one timestamped step of a scan's lifecycle (or a
// daemon-level occurrence when Scan is empty). Events are the flight
// recorder's unit: the daemon appends one per transition — accepted,
// queued, attempt started/failed, replayed, reuse, degradation,
// settled — and the trace endpoint stitches a scan's events back into
// a timeline.
type Event struct {
	// Seq is the log-assigned global sequence number; it orders events
	// across scans and survives ring eviction (gaps reveal drops).
	Seq uint64 `json:"seq"`
	// Time is when the event happened (log clock unless the appender
	// backfills a historical time, e.g. journal replay).
	Time time.Time `json:"time"`
	// Scan is the owning scan id; empty for daemon-level events.
	Scan string `json:"scan_id,omitempty"`
	// Type names the lifecycle step ("accepted", "queued", ...).
	Type string `json:"type"`
	// Attempt is the 1-based attempt number, when the event belongs to
	// one.
	Attempt int `json:"attempt,omitempty"`
	// DurMS is the event's associated duration in milliseconds: queue
	// wait for attempt starts, backoff for failures, end-to-end
	// elapsed for settles, render time for renders.
	DurMS int64 `json:"dur_ms,omitempty"`
	// Err carries the failure message for failed/quarantined events.
	Err string `json:"error,omitempty"`
	// Detail is free-form context ("truncated_by:deadline",
	// "3/5 files reused", ...).
	Detail string `json:"detail,omitempty"`
}

// EventLog is a bounded, concurrency-safe ring buffer of events. When
// full, appends evict the oldest event. All methods are safe for
// concurrent use and for a nil receiver (the disabled state).
type EventLog struct {
	clock Clock

	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest resident event
	n       int // resident events
	seq     uint64
	dropped int64
}

// NewEventLog returns a ring holding at most capacity events
// (DefaultMaxEvents when non-positive), timestamped by clock (system
// clock when nil).
func NewEventLog(capacity int, clock Clock) *EventLog {
	if capacity <= 0 {
		capacity = DefaultMaxEvents
	}
	if clock == nil {
		clock = SystemClock()
	}
	return &EventLog{clock: clock, buf: make([]Event, capacity)}
}

// Append stamps e with the next sequence number (and the clock's time,
// unless the caller backfilled one) and stores it, evicting the oldest
// event when the ring is full. It returns the assigned sequence number
// (0 on a nil log).
func (l *EventLog) Append(e Event) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = l.clock.Now()
	}
	if l.n == len(l.buf) {
		// Full: overwrite the oldest slot.
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
		l.dropped++
	} else {
		l.buf[(l.head+l.n)%len(l.buf)] = e
		l.n++
	}
	return l.seq
}

// ForScan returns the resident events of one scan, in append order.
func (l *EventLog) ForScan(id string) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for i := 0; i < l.n; i++ {
		e := l.buf[(l.head+i)%len(l.buf)]
		if e.Scan == id {
			out = append(out, e)
		}
	}
	return out
}

// Since returns up to max resident events with Seq > since, in append
// order (max <= 0 means no limit). It is the tail primitive behind
// /debug/events: a poller passes the last Seq it saw and receives only
// what is new.
func (l *EventLog) Since(since uint64, max int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for i := 0; i < l.n; i++ {
		e := l.buf[(l.head+i)%len(l.buf)]
		if e.Seq <= since {
			continue
		}
		out = append(out, e)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Len returns the number of resident events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Cap returns the ring's capacity (0 on a nil log).
func (l *EventLog) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}

// Dropped returns how many events eviction has discarded.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// LastSeq returns the most recently assigned sequence number.
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
