package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// safe for concurrent use and for a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions. All
// methods are safe for concurrent use and for a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are the histogram bucket upper bounds used when
// a histogram is registered without explicit bounds. They span 100µs to
// 10s, the useful range for per-file and per-plugin analysis stages.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Histogram is a fixed-bucket distribution metric (Prometheus-style
// cumulative buckets). All methods are safe for concurrent use and for
// a nil receiver.
type Histogram struct {
	// bounds are the sorted bucket upper bounds; an implicit +Inf bucket
	// follows the last bound.
	bounds []float64
	// counts[i] tallies observations v <= bounds[i]; the final element
	// is the +Inf bucket. Counts are NOT cumulative in memory — the
	// snapshot accumulates them.
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram over sorted, deduplicated bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, counts: make([]atomic.Int64, len(dedup)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Metrics is a registry of named counters, gauges and histograms. The
// zero value is not usable; construct with NewMetrics. A nil *Metrics is
// a valid no-op registry: lookups return nil instruments, whose methods
// also do nothing.
type Metrics struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (DefaultLatencyBuckets when omitted).
// Bounds are fixed at creation; later calls with different bounds get
// the existing instrument.
func (m *Metrics) Histogram(name string, bounds ...float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h := m.histograms[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.histograms[name]; h == nil {
		h = newHistogram(bounds)
		m.histograms[name] = h
	}
	return h
}
