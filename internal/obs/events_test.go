package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogAppendAndForScan(t *testing.T) {
	clock := NewManualClock(time.Unix(1700000000, 0).UTC())
	l := NewEventLog(8, clock)

	l.Append(Event{Scan: "a", Type: "accepted"})
	clock.Advance(5 * time.Millisecond)
	l.Append(Event{Scan: "b", Type: "accepted"})
	clock.Advance(5 * time.Millisecond)
	l.Append(Event{Scan: "a", Type: "queued", Detail: "worker pool"})

	got := l.ForScan("a")
	if len(got) != 2 {
		t.Fatalf("ForScan(a) = %d events, want 2", len(got))
	}
	if got[0].Type != "accepted" || got[1].Type != "queued" {
		t.Fatalf("ForScan(a) order = %s,%s, want accepted,queued", got[0].Type, got[1].Type)
	}
	if got[0].Seq != 1 || got[1].Seq != 3 {
		t.Fatalf("ForScan(a) seqs = %d,%d, want 1,3", got[0].Seq, got[1].Seq)
	}
	if !got[1].Time.Equal(time.Unix(1700000000, 0).UTC().Add(10 * time.Millisecond)) {
		t.Fatalf("queued event time = %v, want origin+10ms", got[1].Time)
	}
	if l.Len() != 3 || l.Cap() != 8 || l.Dropped() != 0 || l.LastSeq() != 3 {
		t.Fatalf("Len/Cap/Dropped/LastSeq = %d/%d/%d/%d", l.Len(), l.Cap(), l.Dropped(), l.LastSeq())
	}
}

func TestEventLogBackfilledTimeIsKept(t *testing.T) {
	clock := NewManualClock(time.Unix(1700000000, 0).UTC())
	l := NewEventLog(4, clock)
	historical := time.Unix(1600000000, 0).UTC()
	l.Append(Event{Scan: "old", Type: "accepted", Time: historical})
	got := l.ForScan("old")
	if len(got) != 1 || !got[0].Time.Equal(historical) {
		t.Fatalf("backfilled time not preserved: %+v", got)
	}
}

func TestEventLogEviction(t *testing.T) {
	l := NewEventLog(4, NewManualClock(time.Unix(0, 0)))
	for i := 0; i < 10; i++ {
		l.Append(Event{Scan: "s", Type: fmt.Sprintf("e%d", i)})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	got := l.ForScan("s")
	if len(got) != 4 || got[0].Type != "e6" || got[3].Type != "e9" {
		t.Fatalf("resident after eviction = %+v, want e6..e9", got)
	}
	// Seq numbers survive eviction: the oldest resident is seq 7.
	if got[0].Seq != 7 {
		t.Fatalf("oldest resident seq = %d, want 7", got[0].Seq)
	}
}

func TestEventLogSince(t *testing.T) {
	l := NewEventLog(16, NewManualClock(time.Unix(0, 0)))
	for i := 0; i < 6; i++ {
		l.Append(Event{Scan: "s", Type: "tick"})
	}
	tail := l.Since(4, 0)
	if len(tail) != 2 || tail[0].Seq != 5 || tail[1].Seq != 6 {
		t.Fatalf("Since(4) = %+v, want seqs 5,6", tail)
	}
	if got := l.Since(0, 3); len(got) != 3 || got[2].Seq != 3 {
		t.Fatalf("Since(0, max 3) = %+v, want seqs 1..3", got)
	}
	if got := l.Since(6, 0); got != nil {
		t.Fatalf("Since(last) = %+v, want nil", got)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	if seq := l.Append(Event{Type: "x"}); seq != 0 {
		t.Fatalf("nil Append = %d, want 0", seq)
	}
	if l.ForScan("x") != nil || l.Since(0, 0) != nil {
		t.Fatal("nil reads should return nil")
	}
	if l.Len() != 0 || l.Cap() != 0 || l.Dropped() != 0 || l.LastSeq() != 0 {
		t.Fatal("nil counters should be zero")
	}
}

// TestEventLogConcurrency hammers a small ring from concurrent
// appenders and readers. Run under -race (the CI race job covers this
// package); correctness checks: every assigned seq is unique, reads
// see events in strictly increasing seq order, and resident + dropped
// equals total appends.
func TestEventLogConcurrency(t *testing.T) {
	const (
		writers   = 8
		perWriter = 500
	)
	l := NewEventLog(64, nil) // tiny ring: eviction is constant
	var wg sync.WaitGroup
	seqs := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("scan-%d", w%4)
			for i := 0; i < perWriter; i++ {
				seqs[w] = append(seqs[w], l.Append(Event{Scan: id, Type: "tick", Attempt: i}))
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			var since uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var evs []Event
				if r%2 == 0 {
					evs = l.Since(since, 16)
				} else {
					evs = l.ForScan("scan-1")
				}
				last := uint64(0)
				for _, e := range evs {
					if e.Seq <= last {
						t.Errorf("reader saw non-increasing seqs: %d then %d", last, e.Seq)
						return
					}
					last = e.Seq
				}
				if r%2 == 0 && last > since {
					since = last
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	seen := make(map[uint64]bool)
	for _, ws := range seqs {
		for _, s := range ws {
			if s == 0 || seen[s] {
				t.Fatalf("seq %d assigned twice (or zero)", s)
			}
			seen[s] = true
		}
	}
	total := int64(writers * perWriter)
	if int64(l.Len())+l.Dropped() != total {
		t.Fatalf("resident %d + dropped %d != appended %d", l.Len(), l.Dropped(), total)
	}
	if l.LastSeq() != uint64(total) {
		t.Fatalf("LastSeq = %d, want %d", l.LastSeq(), total)
	}
}

func TestNewLoggerJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	logger.With("component", "test").Info("scan accepted", "scan_id", "scan-1", "files", 3)
	logger.Debug("fine detail")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line is not JSON: %v (%q)", err, lines[0])
	}
	if rec["msg"] != "scan accepted" || rec["scan_id"] != "scan-1" || rec["component"] != "test" {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestNewLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("dropped")
	logger.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filter wrong: %q", out)
	}
}

func TestNewLoggerRejectsBadConfig(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "yaml", "info"); err == nil {
		t.Fatal("want error for unknown format")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "json", "loud"); err == nil {
		t.Fatal("want error for unknown level")
	}
}

func TestDiscardLogger(t *testing.T) {
	// Must not panic, and With must stay discarding.
	DiscardLogger().With("k", "v").Info("nothing")
}
