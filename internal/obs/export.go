package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a recorder's metrics and span
// tree, ready for serialization. Maps serialize with sorted keys, so
// JSON output is deterministic.
type Snapshot struct {
	// Counters maps counter name to its count.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to its value.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps histogram name to its distribution.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Spans holds the root spans of the trace tree.
	Spans []SpanSnapshot `json:"spans,omitempty"`
}

// HistogramSnapshot is one histogram's frozen distribution.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is the sum of observations (seconds for latency histograms).
	Sum float64 `json:"sum"`
	// Buckets are cumulative Prometheus-style buckets; the final bucket
	// has UpperBound +Inf (serialized as "+Inf").
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	// UpperBound is the bucket's inclusive upper bound.
	UpperBound float64 `json:"le"`
	// Count is the cumulative number of observations <= UpperBound.
	Count int64 `json:"count"`
}

// MarshalJSON renders +Inf upper bounds as the string "+Inf", which
// encoding/json cannot represent as a number.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = formatFloat(b.UpperBound)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// SpanSnapshot is one span subtree with timings resolved to wall-clock
// offsets, so a trace is readable without the recorder's clock.
type SpanSnapshot struct {
	Name string `json:"name"`
	// Start is the span's absolute start time (RFC 3339, ns precision).
	Start time.Time `json:"start"`
	// DurationNS is the span's elapsed nanoseconds (0 when never ended).
	DurationNS int64          `json:"duration_ns"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot freezes the recorder's current metrics and spans. A nil
// recorder yields an empty (but serializable) snapshot.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	m := r.metrics
	m.mu.RLock()
	for name, c := range m.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range m.histograms {
		snap.Histograms[name] = h.snapshot()
	}
	m.mu.RUnlock()

	r.mu.Lock()
	for _, root := range r.roots {
		snap.Spans = append(snap.Spans, snapshotSpanLocked(root))
	}
	r.mu.Unlock()
	return snap
}

// snapshot freezes one histogram into cumulative buckets.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Buckets: make([]BucketSnapshot, 0, len(h.bounds)+1),
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: bound, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: math.Inf(1), Count: cum})
	return hs
}

// Snapshot freezes one span's subtree. It lets the daemon attach a
// single scan's span tree to its trace without exporting every root
// the recorder holds. A nil span yields the zero snapshot.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	return snapshotSpanLocked(s)
}

// snapshotSpanLocked copies one span subtree; the caller holds rec.mu.
func snapshotSpanLocked(s *Span) SpanSnapshot {
	ss := SpanSnapshot{Name: s.name, Start: s.start}
	if !s.end.IsZero() {
		ss.DurationNS = s.end.Sub(s.start).Nanoseconds()
	}
	for _, child := range s.children {
		ss.Children = append(ss.Children, snapshotSpanLocked(child))
	}
	return ss
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot's counters, gauges and histograms
// in the Prometheus text exposition format (version 0.0.4). Spans have
// no Prometheus representation and are omitted. Metric names are
// sanitized: characters outside [a-zA-Z0-9_:] become underscores.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		hs := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, b := range hs.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatFloat(b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, formatFloat(hs.Sum), pn, hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps an arbitrary metric name onto the Prometheus grammar.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// formatFloat renders a float without exponent noise for round values.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
