package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// update regenerates the golden exposition files:
//
//	go test ./internal/obs/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder builds the fixed scan the golden files encode: one
// plugin span with model/taint stages, a few counters, a gauge and two
// histograms, all on a manual clock.
func goldenRecorder() *Recorder {
	clock := NewManualClock(testOrigin)
	r := NewRecorderWithClock(clock)

	scan := r.StartSpan("scan:hello-plugin", nil)
	model := scan.StartChild("model")
	parse := model.StartChild("parse:hello.php")
	clock.Advance(3 * time.Millisecond)
	parse.EndAndObserve("stage_parse_seconds")
	model.EndAndObserve("stage_model_seconds")
	taint := scan.StartChild("taint")
	clock.Advance(20 * time.Millisecond)
	taint.EndAndObserve("stage_taint_seconds")
	scan.End()

	r.Counter("lex_tokens_total").Add(1234)
	r.Counter("lex_lines_total").Add(87)
	r.Counter("parse_ast_nodes_total").Add(456)
	r.Counter("taint_functions_analyzed_total").Add(9)
	r.Gauge("eval_workers").Set(4)
	qw := r.Histogram("eval_queue_wait_seconds", 0.001, 0.01, 0.1)
	qw.Observe(0.0005)
	qw.Observe(0.05)
	qw.Observe(2)
	return r
}

// TestGoldenJSON locks the JSON exposition format.
func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "snapshot.json.golden"), buf.Bytes())
}

// TestGoldenPrometheus locks the Prometheus text exposition format.
func TestGoldenPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "snapshot.prom.golden"), buf.Bytes())
}

// compareGolden diffs got against the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestPromName locks the metric-name sanitizer.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"lex_tokens_total": "lex_tokens_total",
		"stage:taint":      "stage:taint",
		"bad-name.9":       "bad_name_9",
		"9lead":            "_lead",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
