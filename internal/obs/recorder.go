package obs

import (
	"sync"
	"time"
)

// DefaultMaxSpans bounds the span tree so unattended corpus runs cannot
// grow memory without limit; spans beyond the cap are counted in the
// obs_spans_dropped_total counter instead of being kept.
const DefaultMaxSpans = 65536

// Recorder ties a metrics registry, a span tree and a clock together.
// It is the single handle instrumented code threads through the
// pipeline. A nil *Recorder is the disabled state: every method —
// including those of the instruments and spans it hands out — is a
// no-op, so callers never branch on enablement.
type Recorder struct {
	clock   Clock
	metrics *Metrics
	events  *EventLog

	mu        sync.Mutex
	roots     []*Span
	spanCount int
	maxSpans  int
}

// NewRecorder returns an enabled recorder on the system clock.
func NewRecorder() *Recorder {
	return NewRecorderWithClock(SystemClock())
}

// NewRecorderWithClock returns an enabled recorder on the given clock;
// tests pass a ManualClock for deterministic span timings.
func NewRecorderWithClock(c Clock) *Recorder {
	if c == nil {
		c = SystemClock()
	}
	return &Recorder{
		clock:    c,
		metrics:  NewMetrics(),
		events:   NewEventLog(DefaultMaxEvents, c),
		maxSpans: DefaultMaxSpans,
	}
}

// Now reads the recorder's clock; a nil recorder falls back to the
// system clock, so callers can time lifecycle fields without branching
// on enablement.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	return r.clock.Now()
}

// Events returns the recorder's flight-recorder event log (nil when
// the recorder is nil, which is itself a valid no-op log).
func (r *Recorder) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// Metrics returns the recorder's registry (nil when the recorder is
// nil, which is itself a valid no-op registry).
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.metrics
}

// Counter is shorthand for Metrics().Counter.
func (r *Recorder) Counter(name string) *Counter { return r.Metrics().Counter(name) }

// Gauge is shorthand for Metrics().Gauge.
func (r *Recorder) Gauge(name string) *Gauge { return r.Metrics().Gauge(name) }

// Histogram is shorthand for Metrics().Histogram.
func (r *Recorder) Histogram(name string, bounds ...float64) *Histogram {
	return r.Metrics().Histogram(name, bounds...)
}

// Observe records one sample into the named histogram.
func (r *Recorder) Observe(name string, v float64) { r.Metrics().Histogram(name).Observe(v) }

// StartSpan opens a span under parent (nil parent makes a root span).
// The returned span must be closed with End or EndAndObserve.
func (r *Recorder) StartSpan(name string, parent *Span) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spanCount >= r.maxSpans {
		// The registry has its own lock, so this is safe under mu.
		r.Counter("obs_spans_dropped_total").Inc()
		return nil
	}
	s := &Span{rec: r, name: name, parent: parent, start: r.clock.Now()}
	r.spanCount++
	if parent != nil {
		parent.children = append(parent.children, s)
	} else {
		r.roots = append(r.roots, s)
	}
	return s
}

// StartNamedSpan is StartSpan with the span name split into a static
// prefix and a dynamic part, concatenated only when the recorder is
// live. Hot paths use it so the disabled state allocates nothing — a
// plain StartSpan(prefix+name, ...) call would pay the concatenation
// even on a nil recorder.
func (r *Recorder) StartNamedSpan(prefix, name string, parent *Span) *Span {
	if r == nil {
		return nil
	}
	return r.StartSpan(prefix+name, parent)
}

// SpanRoots returns the root spans recorded so far, in start order.
func (r *Recorder) SpanRoots() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.roots...)
}
