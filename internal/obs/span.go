package obs

import "time"

// Span is one timed region of a scan: a whole plugin, a pipeline stage,
// or a single file's parse. Spans form a tree via parent linkage; the
// Recorder keeps the roots. All methods are safe on a nil receiver, so
// instrumented code never branches on whether tracing is enabled.
type Span struct {
	rec    *Recorder
	name   string
	parent *Span
	start  time.Time
	end    time.Time
	// children is guarded by rec.mu (spans of concurrent workers attach
	// to per-worker parents, but a shared parent must tolerate races).
	children []*Span
}

// Name returns the span's label.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild opens a sub-span under s using the recorder's clock.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.StartSpan(name, s)
}

// End closes the span. Ending an already-ended or nil span is a no-op.
func (s *Span) End() {
	if s == nil || !s.end.IsZero() {
		return
	}
	s.rec.mu.Lock()
	s.end = s.rec.clock.Now()
	s.rec.mu.Unlock()
}

// Duration returns the span's elapsed time, or the time elapsed so far
// when the span is still open.
func (s *Span) Duration() time.Duration {
	if s == nil || s.start.IsZero() {
		return 0
	}
	s.rec.mu.Lock()
	end := s.end
	s.rec.mu.Unlock()
	if end.IsZero() {
		return s.rec.clock.Now().Sub(s.start)
	}
	return end.Sub(s.start)
}

// EndAndObserve closes the span and records its duration in seconds
// into the named histogram of the recorder's registry.
func (s *Span) EndAndObserve(histogram string) {
	if s == nil {
		return
	}
	s.End()
	s.rec.Metrics().Histogram(histogram).Observe(s.Duration().Seconds())
}
