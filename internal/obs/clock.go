package obs

import (
	"sync"
	"time"
)

// Clock abstracts time so span timings are testable. The production
// implementation is the system clock; tests inject a ManualClock.
type Clock interface {
	Now() time.Time
}

// systemClock reads the real time.
type systemClock struct{}

// Now returns the current system time.
func (systemClock) Now() time.Time { return time.Now() }

// SystemClock returns the production clock.
func SystemClock() Clock { return systemClock{} }

// ManualClock is a test clock that only moves when told to. The zero
// value starts at the Unix epoch; construct with NewManualClock to pick
// an origin.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a manual clock frozen at origin.
func NewManualClock(origin time.Time) *ManualClock {
	return &ManualClock{now: origin}
}

// Now returns the clock's frozen time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
