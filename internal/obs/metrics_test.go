package obs

import (
	"math"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// with -race to guard the lock-free implementation.
func TestCounterConcurrent(t *testing.T) {
	m := NewMetrics()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				m.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestCounterMonotone rejects negative increments.
func TestCounterMonotone(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (negative Add must be ignored)", got)
	}
}

// TestGaugeConcurrent exercises the CAS loop of Gauge.Add under -race.
func TestGaugeConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				m.Gauge("g").Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := m.Gauge("g").Value(); got != 8*500*0.5 {
		t.Fatalf("gauge = %v, want %v", got, 8*500*0.5)
	}
}

// TestHistogramBuckets checks the boundary semantics: a sample equal to
// an upper bound lands in that bucket (inclusive upper bounds), and
// samples beyond the last bound land in +Inf.
func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("h", 1, 5, 10)
	for _, v := range []float64{0.5, 1, 1.0001, 5, 7, 10, 11, 1000} {
		h.Observe(v)
	}
	hs := h.snapshot()
	if hs.Count != 8 {
		t.Fatalf("count = %d, want 8", hs.Count)
	}
	wantSum := 0.5 + 1 + 1.0001 + 5 + 7 + 10 + 11 + 1000
	if math.Abs(hs.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", hs.Sum, wantSum)
	}
	// Cumulative: le=1 → {0.5, 1}; le=5 → +{1.0001, 5}; le=10 → +{7, 10};
	// +Inf → +{11, 1000}.
	wantCum := []int64{2, 4, 6, 8}
	if len(hs.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(hs.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if hs.Buckets[i].Count != want {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d",
				i, hs.Buckets[i].UpperBound, hs.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(hs.Buckets[len(hs.Buckets)-1].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", hs.Buckets[len(hs.Buckets)-1].UpperBound)
	}
}

// TestHistogramConcurrent guards concurrent Observe under -race.
func TestHistogramConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				m.Histogram("lat").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := m.Histogram("lat").Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
}

// TestHistogramDedupBounds verifies duplicate and unsorted bounds are
// normalized at creation.
func TestHistogramDedupBounds(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("d", 5, 1, 5, 1)
	if got := len(h.bounds); got != 2 {
		t.Fatalf("bounds = %v, want [1 5]", h.bounds)
	}
	if h.bounds[0] != 1 || h.bounds[1] != 5 {
		t.Fatalf("bounds = %v, want [1 5]", h.bounds)
	}
}

// TestNilSafety drives every instrument and registry method through nil
// receivers: the disabled pipeline must never panic.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	var m *Metrics
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v", got)
	}
	r.Histogram("h").Observe(1)
	r.Observe("h", 1)
	if got := r.Histogram("h").Count(); got != 0 {
		t.Fatalf("nil histogram count = %d", got)
	}
	if m.Counter("x") != nil || m.Gauge("x") != nil || m.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	sp := r.StartSpan("root", nil)
	child := sp.StartChild("child")
	child.End()
	sp.EndAndObserve("h")
	if sp.Duration() != 0 || sp.Name() != "" {
		t.Fatal("nil span must report zero duration and empty name")
	}
	if roots := r.SpanRoots(); roots != nil {
		t.Fatalf("nil recorder roots = %v", roots)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil recorder snapshot must be empty, got %+v", snap)
	}
}

// TestRegistryReturnsSameInstrument checks create-or-get semantics.
func TestRegistryReturnsSameInstrument(t *testing.T) {
	m := NewMetrics()
	if m.Counter("a") != m.Counter("a") {
		t.Fatal("Counter must return the same instance per name")
	}
	if m.Gauge("a") != m.Gauge("a") {
		t.Fatal("Gauge must return the same instance per name")
	}
	if m.Histogram("a") != m.Histogram("a", 1, 2) {
		t.Fatal("Histogram must return the same instance per name")
	}
}
