package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger writing to w. Format is "text"
// (logfmt-style, the default) or "json" (one JSON object per line);
// level is the minimum severity emitted: "debug", "info" (default),
// "warn" or "error". Both are validated so a typo in a daemon flag
// fails startup instead of silently logging nothing.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// discardHandler drops every record. (slog.DiscardHandler arrived in
// Go 1.24; the module targets 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// DiscardLogger returns a logger that drops everything. Packages take
// it as the default for an unset Config.Logger, so instrumented code
// never branches on whether logging is enabled.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }
