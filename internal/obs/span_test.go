package obs

import (
	"sync"
	"testing"
	"time"
)

// testOrigin is the fixed origin every deterministic-clock test uses.
var testOrigin = time.Date(2015, 6, 22, 9, 0, 0, 0, time.UTC)

// TestSpanTreeDeterministic builds a two-level span tree on a manual
// clock and checks exact parentage and durations.
func TestSpanTreeDeterministic(t *testing.T) {
	clock := NewManualClock(testOrigin)
	r := NewRecorderWithClock(clock)

	scan := r.StartSpan("scan:plugin-a", nil)
	clock.Advance(10 * time.Millisecond)
	model := scan.StartChild("model")
	clock.Advance(40 * time.Millisecond)
	model.End()
	taint := scan.StartChild("taint")
	clock.Advance(250 * time.Millisecond)
	taint.End()
	scan.End()

	roots := r.SpanRoots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if got := roots[0].Duration(); got != 300*time.Millisecond {
		t.Fatalf("scan duration = %v, want 300ms", got)
	}
	snap := r.Snapshot()
	root := snap.Spans[0]
	if root.Name != "scan:plugin-a" || !root.Start.Equal(testOrigin) {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
	if got := root.Children[0]; got.Name != "model" || got.DurationNS != int64(40*time.Millisecond) {
		t.Fatalf("model child = %+v", got)
	}
	if got := root.Children[1]; got.Name != "taint" || got.DurationNS != int64(250*time.Millisecond) {
		t.Fatalf("taint child = %+v", got)
	}
	if !root.Children[1].Start.Equal(testOrigin.Add(50 * time.Millisecond)) {
		t.Fatalf("taint start = %v", root.Children[1].Start)
	}
}

// TestSpanEndAndObserve checks the span→histogram bridge used by stage
// timings.
func TestSpanEndAndObserve(t *testing.T) {
	clock := NewManualClock(testOrigin)
	r := NewRecorderWithClock(clock)
	sp := r.StartSpan("stage", nil)
	clock.Advance(2 * time.Second)
	sp.EndAndObserve("stage_seconds")
	h := r.Histogram("stage_seconds")
	if h.Count() != 1 || h.Sum() != 2 {
		t.Fatalf("histogram count=%d sum=%v, want 1 and 2", h.Count(), h.Sum())
	}
	// Ending again must not re-observe or move the end time.
	clock.Advance(time.Second)
	sp.End()
	if got := sp.Duration(); got != 2*time.Second {
		t.Fatalf("duration after double End = %v, want 2s", got)
	}
}

// TestSpanOpenDuration reports elapsed-so-far for unfinished spans.
func TestSpanOpenDuration(t *testing.T) {
	clock := NewManualClock(testOrigin)
	r := NewRecorderWithClock(clock)
	sp := r.StartSpan("open", nil)
	clock.Advance(7 * time.Millisecond)
	if got := sp.Duration(); got != 7*time.Millisecond {
		t.Fatalf("open duration = %v, want 7ms", got)
	}
}

// TestStartNamedSpan checks the prefix form: same name as the concat
// call on a live recorder, nil (no concatenation) on a nil one.
func TestStartNamedSpan(t *testing.T) {
	r := NewRecorderWithClock(NewManualClock(testOrigin))
	sp := r.StartNamedSpan("scan:", "my-plugin", nil)
	if sp.Name() != "scan:my-plugin" {
		t.Fatalf("name = %q, want scan:my-plugin", sp.Name())
	}
	sp.End()
	var disabled *Recorder
	if disabled.StartNamedSpan("scan:", "my-plugin", nil) != nil {
		t.Fatal("nil recorder must return a nil span")
	}
}

// TestSpanCap verifies the span cap drops (and counts) the overflow.
func TestSpanCap(t *testing.T) {
	r := NewRecorderWithClock(NewManualClock(testOrigin))
	r.maxSpans = 3
	for i := 0; i < 5; i++ {
		r.StartSpan("s", nil).End()
	}
	if got := len(r.SpanRoots()); got != 3 {
		t.Fatalf("kept roots = %d, want 3", got)
	}
	if got := r.Counter("obs_spans_dropped_total").Value(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

// TestConcurrentSpans attaches children to a shared parent from many
// goroutines; run with -race.
func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder()
	root := r.StartSpan("root", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				root.StartChild("worker").End()
			}
		}()
	}
	wg.Wait()
	root.End()
	snap := r.Snapshot()
	if got := len(snap.Spans[0].Children); got != 400 {
		t.Fatalf("children = %d, want 400", got)
	}
}
