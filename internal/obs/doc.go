// Package obs is the reproduction's dependency-free observability layer:
// a concurrency-safe registry of named counters, gauges and latency
// histograms, span-based stage tracing with parent linkage, and JSON /
// Prometheus-text exposition of a completed scan.
//
// The paper's evaluation (DSN 2015, §V, Table III) reports per-tool,
// per-plugin analysis cost; this package generalizes that single
// wall-clock number into a per-stage breakdown (lex → parse → model →
// taint) so scaling work on the pipeline can be measured rather than
// asserted.
//
// Two design rules keep Table III timings honest:
//
//   - Nil safety: every method of Recorder, Metrics, Counter, Gauge,
//     Histogram and Span works on a nil receiver and does nothing. Code
//     under measurement threads a possibly-nil *Recorder and never
//     branches on it, so a disabled pipeline pays only a nil check.
//   - Injectable clock: a Recorder owns a Clock; tests install a
//     ManualClock and get fully deterministic span trees and golden
//     exposition output.
package obs
