// Package config models phpSAFE's configuration stage (DSN 2015, §III.A).
//
// phpSAFE ships three configuration files — class-vulnerable-input.php,
// class-vulnerable-filter.php and class-vulnerable_output.php — holding the
// potentially malicious sources, the sanitization/revert functions, and the
// sensitive output sinks, for generic PHP and for the WordPress framework.
// This package is their Go equivalent: declarative Profile values plus a
// Compiled form with constant-time lookups used by the analysis engines.
//
// Profiles compose: the WordPress profile extends the generic PHP profile,
// and callers can extend further for other CMSs (the paper's §VI names
// Drupal and Joomla as future work; see examples/custom-cms).
package config

import (
	"strings"

	"repro/internal/analyzer"
)

// SourceKind distinguishes how a source is referenced in code.
type SourceKind int

// Source kinds.
const (
	// SuperglobalSource is a PHP superglobal array such as $_GET.
	SuperglobalSource SourceKind = iota + 1
	// FunctionSource is a function whose return value is attacker
	// influenced (e.g. file_get_contents, mysql_fetch_assoc).
	FunctionSource
	// MethodSource is a method whose return value is attacker influenced
	// (e.g. $wpdb->get_results).
	MethodSource
)

// Source declares one potentially malicious input vector
// (class-vulnerable-input.php).
type Source struct {
	// Kind is how the source appears in code.
	Kind SourceKind
	// Name is the superglobal name without "$" (e.g. "_GET") or the
	// lower-case function/method name.
	Name string
	// Class is the lower-case class name for MethodSource entries; empty
	// matches any receiver whose class is unknown.
	Class string
	// Vector is the input-vector classification of data from this source.
	Vector analyzer.Vector
	// Taints lists the vulnerability classes the data is dangerous for;
	// empty means all classes.
	Taints []analyzer.VulnClass
}

// Sanitizer declares one filtering function
// (class-vulnerable-filter.php). A sanitizer's return value is safe for
// the listed vulnerability classes.
type Sanitizer struct {
	// Name is the lower-case function or method name.
	Name string
	// Class is the lower-case class name for method sanitizers
	// ($wpdb->prepare); empty for plain functions.
	Class string
	// Untaints lists the classes the function protects against; empty
	// means all classes.
	Untaints []analyzer.VulnClass
}

// Sink declares one sensitive output function
// (class-vulnerable_output.php). Language constructs (echo, print) are
// handled natively by the engines and need no entry here.
type Sink struct {
	// Name is the lower-case function or method name.
	Name string
	// Class is the lower-case class name for method sinks ($wpdb->query);
	// empty for plain functions.
	Class string
	// Vuln is the vulnerability class the sink is sensitive to.
	Vuln analyzer.VulnClass
	// Args lists the 0-based sensitive argument positions; empty means
	// every argument.
	Args []int
	// CWE is the rule's Common Weakness Enumeration identifier; zero
	// means the class default (Vuln.CWE()), filled in by Compile.
	CWE int
	// Severity is the rule's severity label; empty means the class
	// default (Vuln.Severity()), filled in by Compile.
	Severity string
}

// Profile is one named configuration layer.
type Profile struct {
	// Name identifies the profile (e.g. "generic-php", "wordpress").
	Name string
	// Sources are the profile's input vectors.
	Sources []Source
	// Sanitizers are the profile's filtering functions.
	Sanitizers []Sanitizer
	// Reverts are lower-case names of functions that undo sanitization
	// (e.g. stripslashes), re-enabling an attack (§III.A).
	Reverts []string
	// Sinks are the profile's sensitive output functions.
	Sinks []Sink
	// ObjectClasses maps well-known global object variable names (without
	// "$") to their lower-case class names, letting the engine resolve
	// methods on framework globals such as $wpdb.
	ObjectClasses map[string]string
}

// Merge combines profiles left to right into one profile. Later profiles
// extend earlier ones; entries are concatenated (lookups tolerate
// duplicates) and object-class bindings of later profiles win.
func Merge(name string, profiles ...Profile) Profile {
	out := Profile{Name: name, ObjectClasses: make(map[string]string)}
	for _, p := range profiles {
		out.Sources = append(out.Sources, p.Sources...)
		out.Sanitizers = append(out.Sanitizers, p.Sanitizers...)
		out.Reverts = append(out.Reverts, p.Reverts...)
		out.Sinks = append(out.Sinks, p.Sinks...)
		for k, v := range p.ObjectClasses {
			out.ObjectClasses[k] = v
		}
	}
	return out
}

// allClasses is the expansion of an empty Taints/Untaints list.
var allClasses = analyzer.Classes()

// classesOrAll returns the given classes, or all classes when empty.
func classesOrAll(cs []analyzer.VulnClass) []analyzer.VulnClass {
	if len(cs) == 0 {
		return allClasses
	}
	return cs
}

// Compiled is a Profile preprocessed for constant-time lookup. It is
// immutable after Compile and safe for concurrent use.
type Compiled struct {
	profile Profile

	superglobals map[string]Source
	funcSources  map[string]Source
	// methodSources is keyed by "class::name"; class may be empty for
	// wildcard entries.
	methodSources map[string]Source

	funcSanitizers   map[string][]analyzer.VulnClass
	methodSanitizers map[string][]analyzer.VulnClass

	reverts map[string]bool

	funcSinks   map[string][]Sink
	methodSinks map[string][]Sink

	objectClasses map[string]string

	digest string
}

// Compile preprocesses a profile.
func Compile(p Profile) *Compiled {
	c := &Compiled{
		profile:          p,
		superglobals:     make(map[string]Source),
		funcSources:      make(map[string]Source),
		methodSources:    make(map[string]Source),
		funcSanitizers:   make(map[string][]analyzer.VulnClass),
		methodSanitizers: make(map[string][]analyzer.VulnClass),
		reverts:          make(map[string]bool, len(p.Reverts)),
		funcSinks:        make(map[string][]Sink),
		methodSinks:      make(map[string][]Sink),
		objectClasses:    make(map[string]string, len(p.ObjectClasses)),
	}
	for _, s := range p.Sources {
		switch s.Kind {
		case SuperglobalSource:
			c.superglobals[s.Name] = s
		case FunctionSource:
			c.funcSources[strings.ToLower(s.Name)] = s
		case MethodSource:
			c.methodSources[methodKey(s.Class, s.Name)] = s
		}
	}
	for _, s := range p.Sanitizers {
		classes := classesOrAll(s.Untaints)
		if s.Class == "" {
			name := strings.ToLower(s.Name)
			c.funcSanitizers[name] = unionClasses(c.funcSanitizers[name], classes)
		} else {
			k := methodKey(s.Class, s.Name)
			c.methodSanitizers[k] = unionClasses(c.methodSanitizers[k], classes)
		}
	}
	for _, r := range p.Reverts {
		c.reverts[strings.ToLower(r)] = true
	}
	for _, s := range p.Sinks {
		if s.CWE == 0 {
			s.CWE = s.Vuln.CWE()
		}
		if s.Severity == "" {
			s.Severity = s.Vuln.Severity()
		}
		if s.Class == "" {
			name := strings.ToLower(s.Name)
			c.funcSinks[name] = append(c.funcSinks[name], s)
		} else {
			k := methodKey(s.Class, s.Name)
			c.methodSinks[k] = append(c.methodSinks[k], s)
		}
	}
	for k, v := range p.ObjectClasses {
		c.objectClasses[k] = strings.ToLower(v)
	}
	c.digest = profileDigest(p)
	return c
}

// unionClasses merges two sanitizer class lists, preserving first-seen
// order. Duplicate sanitizer entries (a layered profile re-declaring a
// function for additional classes) widen what the function protects
// against rather than overwriting it.
func unionClasses(have, add []analyzer.VulnClass) []analyzer.VulnClass {
	if len(have) == 0 {
		return add
	}
	out := have
	copied := false
	for _, c := range add {
		seen := false
		for _, h := range out {
			if h == c {
				seen = true
				break
			}
		}
		if !seen {
			if !copied {
				// Profiles share class-list slices between entries; never
				// append into a caller-owned backing array.
				out = append(append([]analyzer.VulnClass(nil), out...), c)
				copied = true
			} else {
				out = append(out, c)
			}
		}
	}
	return out
}

// methodKey builds the lookup key for class-qualified names.
func methodKey(class, name string) string {
	return strings.ToLower(class) + "::" + strings.ToLower(name)
}

// Name returns the underlying profile name.
func (c *Compiled) Name() string { return c.profile.Name }

// Superglobal looks up a superglobal source by name (without "$").
func (c *Compiled) Superglobal(name string) (Source, bool) {
	s, ok := c.superglobals[name]
	return s, ok
}

// FunctionSource looks up a function source by lower-case name.
func (c *Compiled) FunctionSource(name string) (Source, bool) {
	s, ok := c.funcSources[name]
	return s, ok
}

// MethodSource looks up a method source. An exact class match is
// preferred; an empty-class wildcard entry matches any class, and an
// unknown receiver class ("") matches both wildcard entries and any
// class-qualified entry with the same method name.
func (c *Compiled) MethodSource(class, name string) (Source, bool) {
	if s, ok := c.methodSources[methodKey(class, name)]; ok {
		return s, ok
	}
	if class != "" {
		s, ok := c.methodSources[methodKey("", name)]
		return s, ok
	}
	// Unknown receiver: match any class with this method name.
	for k, s := range c.methodSources {
		if strings.HasSuffix(k, "::"+strings.ToLower(name)) {
			return s, true
		}
	}
	return Source{}, false
}

// FunctionSanitizer returns the classes a function sanitizes.
func (c *Compiled) FunctionSanitizer(name string) ([]analyzer.VulnClass, bool) {
	cs, ok := c.funcSanitizers[name]
	return cs, ok
}

// MethodSanitizer returns the classes a method sanitizes, with the same
// matching rules as MethodSource.
func (c *Compiled) MethodSanitizer(class, name string) ([]analyzer.VulnClass, bool) {
	if cs, ok := c.methodSanitizers[methodKey(class, name)]; ok {
		return cs, ok
	}
	if class != "" {
		cs, ok := c.methodSanitizers[methodKey("", name)]
		return cs, ok
	}
	for k, cs := range c.methodSanitizers {
		if strings.HasSuffix(k, "::"+strings.ToLower(name)) {
			return cs, true
		}
	}
	return nil, false
}

// Revert reports whether the function undoes sanitization.
func (c *Compiled) Revert(name string) bool { return c.reverts[name] }

// FunctionSinks returns the sink declarations for a function name.
func (c *Compiled) FunctionSinks(name string) []Sink { return c.funcSinks[name] }

// MethodSinks returns the sink declarations for a method, with the same
// matching rules as MethodSource.
func (c *Compiled) MethodSinks(class, name string) []Sink {
	if sinks, ok := c.methodSinks[methodKey(class, name)]; ok {
		return sinks
	}
	if class != "" {
		return c.methodSinks[methodKey("", name)]
	}
	for k, sinks := range c.methodSinks {
		if strings.HasSuffix(k, "::"+strings.ToLower(name)) {
			return sinks
		}
	}
	return nil
}

// ObjectClass returns the configured class of a well-known global object
// variable (e.g. "wpdb" → "wpdb").
func (c *Compiled) ObjectClass(varName string) (string, bool) {
	cls, ok := c.objectClasses[varName]
	return cls, ok
}

// SinkSensitiveArg reports whether argument position i is sensitive for
// the sink declaration.
func SinkSensitiveArg(s Sink, i int) bool {
	if len(s.Args) == 0 {
		return true
	}
	for _, a := range s.Args {
		if a == i {
			return true
		}
	}
	return false
}
