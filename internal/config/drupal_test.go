package config

import (
	"testing"

	"repro/internal/analyzer"
)

func TestDrupalProfileLookups(t *testing.T) {
	t.Parallel()
	c := Compile(Merge("drupal", Generic(), Drupal()))

	if src, ok := c.FunctionSource("db_fetch_object"); !ok || src.Vector != analyzer.VectorDB {
		t.Errorf("db_fetch_object = %+v, %v", src, ok)
	}
	if src, ok := c.FunctionSource("variable_get"); !ok || src.Vector != analyzer.VectorDB {
		t.Errorf("variable_get = %+v, %v", src, ok)
	}
	if src, ok := c.FunctionSource("arg"); !ok || src.Vector != analyzer.VectorGET {
		t.Errorf("arg = %+v, %v", src, ok)
	}
	classes, ok := c.FunctionSanitizer("check_plain")
	if !ok || len(classes) != 1 || classes[0] != analyzer.XSS {
		t.Errorf("check_plain = %v, %v", classes, ok)
	}
	sinks := c.FunctionSinks("db_query")
	if len(sinks) != 1 || sinks[0].Vuln != analyzer.SQLi {
		t.Errorf("db_query sinks = %+v", sinks)
	}
	if _, ok := c.MethodSource("databasestatementinterface", "fetchobject"); !ok {
		t.Error("fetchObject method source missing")
	}
	// The generic layer still resolves.
	if _, ok := c.Superglobal("_GET"); !ok {
		t.Error("generic superglobals lost in Drupal merge")
	}
	if !c.Revert("decode_entities") || !c.Revert("stripslashes") {
		t.Error("reverts from both layers should resolve")
	}
}
