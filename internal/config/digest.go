package config

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"repro/internal/analyzer"
)

// profileDigest computes a deterministic content hash of a profile: two
// profiles with the same sources, sanitizers, reverts, sinks and object
// classes share a digest regardless of their display names. Engines fold
// the digest into their options fingerprint so the scan cache and the
// incremental artifact store never serve results computed under a
// different rule set (cross-pack cache pollution).
func profileDigest(p Profile) string {
	h := sha256.New()
	w := func(parts ...any) {
		for _, part := range parts {
			fmt.Fprintf(h, "%v\x1f", part)
		}
		h.Write([]byte{'\n'})
	}
	w("schema", 1)
	for _, s := range p.Sources {
		w("source", int(s.Kind), strings.ToLower(s.Name), strings.ToLower(s.Class),
			int(s.Vector), classInts(s.Taints))
	}
	for _, s := range p.Sanitizers {
		w("sanitizer", strings.ToLower(s.Name), strings.ToLower(s.Class), classInts(s.Untaints))
	}
	for _, r := range p.Reverts {
		w("revert", strings.ToLower(r))
	}
	for _, s := range p.Sinks {
		w("sink", strings.ToLower(s.Name), strings.ToLower(s.Class), int(s.Vuln),
			s.Args, s.CWE, s.Severity)
	}
	keys := make([]string, 0, len(p.ObjectClasses))
	for k := range p.ObjectClasses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w("object", k, strings.ToLower(p.ObjectClasses[k]))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// classInts renders a class list for hashing.
func classInts(cs []analyzer.VulnClass) string {
	var sb strings.Builder
	for _, c := range cs {
		fmt.Fprintf(&sb, "%d,", int(c))
	}
	return sb.String()
}

// Digest returns the compiled profile's deterministic content hash (see
// profileDigest). It is stable across processes and releases for
// identical rule content.
func (c *Compiled) Digest() string { return c.digest }
