package config

import (
	"testing"
	"testing/quick"

	"repro/internal/analyzer"
)

func TestGenericProfileLookups(t *testing.T) {
	t.Parallel()
	c := Compile(Generic())

	if src, ok := c.Superglobal("_GET"); !ok || src.Vector != analyzer.VectorGET {
		t.Errorf("_GET lookup = %+v, %v", src, ok)
	}
	if src, ok := c.Superglobal("_POST"); !ok || src.Vector != analyzer.VectorPOST {
		t.Errorf("_POST lookup = %+v, %v", src, ok)
	}
	if _, ok := c.Superglobal("not_a_superglobal"); ok {
		t.Error("unexpected superglobal match")
	}

	if src, ok := c.FunctionSource("mysql_fetch_assoc"); !ok || src.Vector != analyzer.VectorDB {
		t.Errorf("mysql_fetch_assoc = %+v, %v", src, ok)
	}
	if src, ok := c.FunctionSource("fgets"); !ok || src.Vector != analyzer.VectorFile {
		t.Errorf("fgets = %+v, %v", src, ok)
	}

	classes, ok := c.FunctionSanitizer("htmlentities")
	if !ok {
		t.Fatal("htmlentities should be a sanitizer")
	}
	if len(classes) != 1 || classes[0] != analyzer.XSS {
		t.Errorf("htmlentities classes = %v, want [XSS]", classes)
	}
	classes, ok = c.FunctionSanitizer("intval")
	if !ok || len(classes) != len(analyzer.Classes()) {
		t.Errorf("intval classes = %v, %v; want all classes", classes, ok)
	}

	if !c.Revert("stripslashes") {
		t.Error("stripslashes should be a revert")
	}
	if c.Revert("htmlentities") {
		t.Error("htmlentities should not be a revert")
	}

	sinks := c.FunctionSinks("mysql_query")
	if len(sinks) != 1 || sinks[0].Vuln != analyzer.SQLi {
		t.Errorf("mysql_query sinks = %+v", sinks)
	}
	if !SinkSensitiveArg(sinks[0], 0) || SinkSensitiveArg(sinks[0], 1) {
		t.Error("mysql_query should be sensitive in arg 0 only")
	}
}

func TestMergeLayering(t *testing.T) {
	t.Parallel()
	base := Profile{
		Name:          "base",
		Sources:       []Source{{Kind: SuperglobalSource, Name: "_GET", Vector: analyzer.VectorGET}},
		ObjectClasses: map[string]string{"a": "ClassA"},
	}
	ext := Profile{
		Name:          "ext",
		Sanitizers:    []Sanitizer{{Name: "my_esc", Untaints: []analyzer.VulnClass{analyzer.XSS}}},
		ObjectClasses: map[string]string{"a": "ClassB", "b": "ClassC"},
	}
	merged := Merge("combo", base, ext)
	c := Compile(merged)

	if _, ok := c.Superglobal("_GET"); !ok {
		t.Error("base source lost in merge")
	}
	if _, ok := c.FunctionSanitizer("my_esc"); !ok {
		t.Error("extension sanitizer lost in merge")
	}
	if cls, _ := c.ObjectClass("a"); cls != "classb" {
		t.Errorf("object class a = %q, want classb (later profile wins)", cls)
	}
	if cls, _ := c.ObjectClass("b"); cls != "classc" {
		t.Errorf("object class b = %q, want classc", cls)
	}
}

func TestMethodLookupRules(t *testing.T) {
	t.Parallel()
	p := Profile{
		Name: "m",
		Sources: []Source{
			{Kind: MethodSource, Class: "wpdb", Name: "get_results", Vector: analyzer.VectorDB},
		},
		Sinks: []Sink{
			{Class: "wpdb", Name: "query", Vuln: analyzer.SQLi, Args: []int{0}},
		},
	}
	c := Compile(p)

	// Exact class match.
	if _, ok := c.MethodSource("wpdb", "get_results"); !ok {
		t.Error("exact class method source not found")
	}
	// Unknown receiver class: matched by method name.
	if _, ok := c.MethodSource("", "get_results"); !ok {
		t.Error("unknown-receiver method source should match by name")
	}
	// Non-matching class with no wildcard entry.
	if _, ok := c.MethodSource("other", "get_results"); ok {
		t.Error("mismatched class should not match")
	}
	if sinks := c.MethodSinks("", "query"); len(sinks) != 1 {
		t.Errorf("unknown-receiver method sink = %v, want 1", sinks)
	}
}

func TestCaseInsensitiveNames(t *testing.T) {
	t.Parallel()
	c := Compile(Profile{
		Name:       "case",
		Sanitizers: []Sanitizer{{Name: "ESC_HTML"}},
		Reverts:    []string{"StripSlashes"},
	})
	if _, ok := c.FunctionSanitizer("esc_html"); !ok {
		t.Error("sanitizer names should compile to lower case")
	}
	if !c.Revert("stripslashes") {
		t.Error("revert names should compile to lower case")
	}
}

// TestQuickMergeIdempotent checks that merging a profile with an empty
// profile preserves lookup behavior for arbitrary names.
func TestQuickMergeIdempotent(t *testing.T) {
	t.Parallel()
	base := Compile(Generic())
	merged := Compile(Merge("again", Generic(), Profile{Name: "empty"}))
	f := func(name string) bool {
		_, a := base.FunctionSanitizer(name)
		_, b := merged.FunctionSanitizer(name)
		if a != b {
			return false
		}
		_, a = base.Superglobal(name)
		_, b = merged.Superglobal(name)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledIsolation(t *testing.T) {
	t.Parallel()
	// Mutating the source profile after Compile must not affect lookups.
	p := Generic()
	c := Compile(p)
	p.Sanitizers = nil
	p.Reverts = nil
	if _, ok := c.FunctionSanitizer("htmlentities"); !ok {
		t.Error("compiled config should not alias the profile slices")
	}
}
