package config

import "repro/internal/analyzer"

// Generic returns the generic PHP profile: the XSS and SQLi sources,
// sanitizers, reverts and sinks of the PHP language and standard library.
// The paper notes these entries are "based on the default configurations
// of the RIPS tool" (§III.A).
func Generic() Profile {
	xss := []analyzer.VulnClass{analyzer.XSS}
	sqli := []analyzer.VulnClass{analyzer.SQLi}
	cmdi := []analyzer.VulnClass{analyzer.CmdInjection}
	lfi := []analyzer.VulnClass{analyzer.FileInclusion}

	return Profile{
		Name: "generic-php",
		Sources: []Source{
			// User-input superglobals.
			{Kind: SuperglobalSource, Name: "_GET", Vector: analyzer.VectorGET},
			{Kind: SuperglobalSource, Name: "_POST", Vector: analyzer.VectorPOST},
			{Kind: SuperglobalSource, Name: "_COOKIE", Vector: analyzer.VectorCookie},
			{Kind: SuperglobalSource, Name: "_REQUEST", Vector: analyzer.VectorRequest},
			{Kind: SuperglobalSource, Name: "_FILES", Vector: analyzer.VectorRequest},
			{Kind: SuperglobalSource, Name: "_SERVER", Vector: analyzer.VectorOther},
			{Kind: SuperglobalSource, Name: "HTTP_GET_VARS", Vector: analyzer.VectorGET},
			{Kind: SuperglobalSource, Name: "HTTP_POST_VARS", Vector: analyzer.VectorPOST},
			{Kind: SuperglobalSource, Name: "HTTP_COOKIE_VARS", Vector: analyzer.VectorCookie},

			// File input functions (paper §V.C class 3).
			{Kind: FunctionSource, Name: "file_get_contents", Vector: analyzer.VectorFile},
			{Kind: FunctionSource, Name: "file", Vector: analyzer.VectorFile},
			{Kind: FunctionSource, Name: "fgets", Vector: analyzer.VectorFile},
			{Kind: FunctionSource, Name: "fgetc", Vector: analyzer.VectorFile},
			{Kind: FunctionSource, Name: "fread", Vector: analyzer.VectorFile},
			{Kind: FunctionSource, Name: "fscanf", Vector: analyzer.VectorFile},
			{Kind: FunctionSource, Name: "readdir", Vector: analyzer.VectorFile},
			{Kind: FunctionSource, Name: "glob", Vector: analyzer.VectorFile},

			// Database read-back functions (paper §V.C class 2).
			{Kind: FunctionSource, Name: "mysql_fetch_array", Vector: analyzer.VectorDB},
			{Kind: FunctionSource, Name: "mysql_fetch_assoc", Vector: analyzer.VectorDB},
			{Kind: FunctionSource, Name: "mysql_fetch_row", Vector: analyzer.VectorDB},
			{Kind: FunctionSource, Name: "mysql_fetch_object", Vector: analyzer.VectorDB},
			{Kind: FunctionSource, Name: "mysql_result", Vector: analyzer.VectorDB},
			{Kind: FunctionSource, Name: "mysqli_fetch_array", Vector: analyzer.VectorDB},
			{Kind: FunctionSource, Name: "mysqli_fetch_assoc", Vector: analyzer.VectorDB},
			{Kind: FunctionSource, Name: "mysqli_fetch_row", Vector: analyzer.VectorDB},
			{Kind: FunctionSource, Name: "mysqli_fetch_object", Vector: analyzer.VectorDB},

			// Environment and other indirect sources.
			{Kind: FunctionSource, Name: "getenv", Vector: analyzer.VectorOther},
			{Kind: FunctionSource, Name: "get_headers", Vector: analyzer.VectorOther},
		},

		Sanitizers: []Sanitizer{
			// Numeric conversions neutralize both classes.
			{Name: "intval"},
			{Name: "floatval"},
			{Name: "doubleval"},
			{Name: "absint"}, // defined by WordPress but harmless here
			{Name: "count"},
			{Name: "sizeof"},
			{Name: "strlen"},
			{Name: "md5"},
			{Name: "sha1"},
			{Name: "crc32"},
			{Name: "base64_encode"},
			{Name: "number_format"},
			{Name: "ctype_digit"},
			{Name: "ctype_alnum"},

			// HTML-context sanitizers (XSS).
			{Name: "htmlentities", Untaints: xss},
			{Name: "htmlspecialchars", Untaints: xss},
			{Name: "strip_tags", Untaints: xss},
			{Name: "urlencode", Untaints: xss},
			{Name: "rawurlencode", Untaints: xss},
			{Name: "json_encode", Untaints: xss},
			{Name: "filter_var", Untaints: xss},
			{Name: "filter_input", Untaints: xss},

			// SQL-context sanitizers (SQLi).
			{Name: "addslashes", Untaints: sqli},
			{Name: "mysql_escape_string", Untaints: sqli},
			{Name: "mysql_real_escape_string", Untaints: sqli},
			{Name: "mysqli_real_escape_string", Untaints: sqli},
			{Name: "mysqli_escape_string", Untaints: sqli},
			{Name: "pg_escape_string", Untaints: sqli},
			{Name: "sqlite_escape_string", Untaints: sqli},
			{Name: "preg_quote", Untaints: sqli},

			// Shell-context sanitizers (command injection).
			{Name: "escapeshellarg", Untaints: cmdi},
			{Name: "escapeshellcmd", Untaints: cmdi},

			// Path sanitizers (file inclusion).
			{Name: "basename", Untaints: lfi},
			{Name: "realpath", Untaints: lfi},
			{Name: "pathinfo", Untaints: lfi},
		},

		Reverts: []string{
			"stripslashes",
			"stripcslashes",
			"html_entity_decode",
			"htmlspecialchars_decode",
			"urldecode",
			"rawurldecode",
			"base64_decode",
		},

		Sinks: []Sink{
			// XSS output functions; the echo and print constructs are
			// handled natively by the engines.
			{Name: "printf", Vuln: analyzer.XSS},
			{Name: "vprintf", Vuln: analyzer.XSS},
			{Name: "print_r", Vuln: analyzer.XSS, Args: []int{0}},
			{Name: "var_dump", Vuln: analyzer.XSS},
			{Name: "trigger_error", Vuln: analyzer.XSS, Args: []int{0}},

			// SQL query functions.
			{Name: "mysql_query", Vuln: analyzer.SQLi, Args: []int{0}},
			{Name: "mysql_db_query", Vuln: analyzer.SQLi, Args: []int{1}},
			{Name: "mysql_unbuffered_query", Vuln: analyzer.SQLi, Args: []int{0}},
			{Name: "mysqli_query", Vuln: analyzer.SQLi, Args: []int{1}},
			{Name: "mysqli_multi_query", Vuln: analyzer.SQLi, Args: []int{1}},
			{Name: "pg_query", Vuln: analyzer.SQLi},
			{Name: "sqlite_query", Vuln: analyzer.SQLi},

			// Shell execution functions (command injection). The backtick
			// operator is handled natively by the engines.
			{Name: "exec", Vuln: analyzer.CmdInjection, Args: []int{0}},
			{Name: "system", Vuln: analyzer.CmdInjection, Args: []int{0}},
			{Name: "passthru", Vuln: analyzer.CmdInjection, Args: []int{0}},
			{Name: "shell_exec", Vuln: analyzer.CmdInjection, Args: []int{0}},
			{Name: "popen", Vuln: analyzer.CmdInjection, Args: []int{0}},
			{Name: "proc_open", Vuln: analyzer.CmdInjection, Args: []int{0}},
			{Name: "pcntl_exec", Vuln: analyzer.CmdInjection, Args: []int{0}},

			// Dynamic code and file loading beyond the include family
			// (handled natively by the engines).
			{Name: "eval", Vuln: analyzer.CmdInjection, Args: []int{0}},
			{Name: "virtual", Vuln: analyzer.FileInclusion, Args: []int{0}},
		},

		ObjectClasses: map[string]string{},
	}
}
