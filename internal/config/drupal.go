package config

import "repro/internal/analyzer"

// Drupal returns a configuration layer for Drupal 7-era modules — the
// first of the CMSs the paper names as future targets (§VI: "the
// analysis of other CMS applications like Drupal or Joomla"). Merge it
// on top of Generic the same way the WordPress profile is:
//
//	cfg := config.Compile(config.Merge("drupal", config.Generic(), config.Drupal()))
//
// The entries follow the same taxonomy as phpSAFE's configuration files
// (§III.A): database readers as second-order sources, the check/filter
// API as sanitizers, and db_query-style functions as SQL sinks.
func Drupal() Profile {
	xss := []analyzer.VulnClass{analyzer.XSS}
	sqli := []analyzer.VulnClass{analyzer.SQLi}

	return Profile{
		Name: "drupal",
		Sources: []Source{
			// Database fetch API: rows other users may have poisoned.
			{Kind: FunctionSource, Name: "db_fetch_object", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: FunctionSource, Name: "db_fetch_array", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: FunctionSource, Name: "db_result", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: MethodSource, Class: "databasestatementinterface", Name: "fetchobject",
				Vector: analyzer.VectorDB, Taints: xss},
			{Kind: MethodSource, Class: "databasestatementinterface", Name: "fetchassoc",
				Vector: analyzer.VectorDB, Taints: xss},
			{Kind: MethodSource, Class: "databasestatementinterface", Name: "fetchfield",
				Vector: analyzer.VectorDB, Taints: xss},

			// Variable (settings) storage is database backed.
			{Kind: FunctionSource, Name: "variable_get", Vector: analyzer.VectorDB, Taints: xss},

			// Path/query helpers wrap the request.
			{Kind: FunctionSource, Name: "arg", Vector: analyzer.VectorGET, Taints: xss},
			{Kind: FunctionSource, Name: "drupal_get_query_parameters", Vector: analyzer.VectorGET, Taints: xss},
		},

		Sanitizers: []Sanitizer{
			// The check/filter API.
			{Name: "check_plain", Untaints: xss},
			{Name: "check_markup", Untaints: xss},
			{Name: "check_url", Untaints: xss},
			{Name: "filter_xss", Untaints: xss},
			{Name: "filter_xss_admin", Untaints: xss},
			{Name: "drupal_clean_css_identifier"},
			{Name: "drupal_html_id"},

			// SQL escaping helpers.
			{Name: "db_escape_table", Untaints: sqli},
			{Name: "db_like", Untaints: sqli},
		},

		Reverts: []string{
			"decode_entities",
		},

		Sinks: []Sink{
			// Query functions: the query-string argument is sensitive.
			{Name: "db_query", Vuln: analyzer.SQLi, Args: []int{0}},
			{Name: "db_query_range", Vuln: analyzer.SQLi, Args: []int{0}},
			{Name: "pager_query", Vuln: analyzer.SQLi, Args: []int{0}},

			// Message and render helpers that emit HTML.
			{Name: "drupal_set_message", Vuln: analyzer.XSS, Args: []int{0}},
			{Name: "drupal_set_title", Vuln: analyzer.XSS, Args: []int{0}},
		},

		ObjectClasses: map[string]string{
			// $query = db_select(...); $result = $query->execute();
			"query":  "databasestatementinterface",
			"result": "databasestatementinterface",
		},
	}
}
