package report

import (
	"encoding/json"
	"fmt"

	"repro/internal/analyzer"
)

// SARIF renders an analysis result as a SARIF 2.1.0 log, the interchange
// format modern CI systems ingest for static-analysis findings. This is
// the integration story the paper sketches in §III ("it can be tuned to
// produce and store the results in other formats or distribute them over
// the network") in today's vocabulary.
func SARIF(res *analyzer.Result) ([]byte, error) {
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           res.Tool,
				InformationURI: "https://github.com/JoseCarlosFonseca/phpSAFE",
				Rules:          sarifRules(),
			}},
			Taxonomies: []sarifTaxonomy{cweTaxonomy()},
			Results:    make([]sarifResult, 0, len(res.Findings)),
		}},
	}
	run := &log.Runs[0]
	for _, f := range res.Findings {
		run.Results = append(run.Results, sarifResult{
			RuleID:  ruleID(f.Class),
			Level:   severityLevel(f.EffectiveSeverity()),
			Message: sarifMessage{Text: f.String()},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line},
				},
			}},
			CodeFlows: sarifFlows(f),
			Properties: &sarifResultProps{
				CWE:      fmt.Sprintf("CWE-%d", f.EffectiveCWE()),
				Severity: f.EffectiveSeverity(),
			},
		})
	}
	for _, failed := range res.FilesFailed {
		run.Invocations = append(run.Invocations, sarifInvocation{
			ExecutionSuccessful: false,
			ToolExecutionNotifications: []sarifNotification{{
				Level:   "warning",
				Message: sarifMessage{Text: "file not analyzed: " + failed},
			}},
		})
	}
	return json.MarshalIndent(log, "", "  ")
}

// ruleID maps vulnerability classes to stable rule identifiers.
func ruleID(c analyzer.VulnClass) string {
	if slug := c.Slug(); slug != "" {
		return "phpsafe/" + slug
	}
	return fmt.Sprintf("phpsafe/class-%d", int(c))
}

// severityLevel maps a finding severity to a SARIF result level.
func severityLevel(severity string) string {
	switch severity {
	case "critical", "high":
		return "error"
	case "medium":
		return "warning"
	default:
		return "note"
	}
}

// securityScore maps a severity label to GitHub's security-severity
// scale (a CVSS-shaped 0-10 score carried as a string property).
func securityScore(severity string) string {
	switch severity {
	case "critical":
		return "9.8"
	case "high":
		return "8.0"
	case "medium":
		return "5.0"
	default:
		return "3.0"
	}
}

// sarifRules describes one rule per vulnerability class, with CWE and
// severity metadata and a taxonomy reference into the CWE taxonomy.
func sarifRules() []sarifRule {
	classes := analyzer.Classes()
	rules := make([]sarifRule, 0, len(classes))
	for _, c := range classes {
		rules = append(rules, sarifRule{
			ID:               ruleID(c),
			ShortDescription: sarifMessage{Text: c.Description()},
			Properties: &sarifRuleProps{
				CWE:              fmt.Sprintf("CWE-%d", c.CWE()),
				Severity:         c.Severity(),
				SecuritySeverity: securityScore(c.Severity()),
			},
			Relationships: []sarifRelationship{{
				Target: sarifReportingDescriptorRef{
					ID:            fmt.Sprintf("CWE-%d", c.CWE()),
					ToolComponent: sarifToolComponentRef{Name: "CWE"},
				},
				Kinds: []string{"superset"},
			}},
		})
	}
	return rules
}

// cweTaxonomy builds the CWE taxonomy component the rules reference:
// one taxon per distinct CWE across the vulnerability classes.
func cweTaxonomy() sarifTaxonomy {
	tax := sarifTaxonomy{
		Name:             "CWE",
		Organization:     "MITRE",
		ShortDescription: sarifMessage{Text: "The MITRE Common Weakness Enumeration"},
	}
	seen := make(map[int]bool, 8)
	for _, c := range analyzer.Classes() {
		if seen[c.CWE()] {
			continue
		}
		seen[c.CWE()] = true
		tax.Taxa = append(tax.Taxa, sarifTaxon{
			ID:               fmt.Sprintf("CWE-%d", c.CWE()),
			ShortDescription: sarifMessage{Text: c.Description()},
		})
	}
	return tax
}

// sarifFlows converts a finding's trace into a SARIF code flow.
func sarifFlows(f analyzer.Finding) []sarifCodeFlow {
	if len(f.Trace) == 0 {
		return nil
	}
	locs := make([]sarifThreadFlowLocation, 0, len(f.Trace))
	for _, step := range f.Trace {
		locs = append(locs, sarifThreadFlowLocation{
			Location: sarifLocation{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: step.File},
					Region:           sarifRegion{StartLine: step.Line},
				},
				Message: &sarifMessage{Text: step.Var + ": " + step.Note},
			},
		})
	}
	return []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{{Locations: locs}}}}
}

// --- SARIF 2.1.0 document model (the subset this tool emits) ---

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool        sarifTool         `json:"tool"`
	Taxonomies  []sarifTaxonomy   `json:"taxonomies,omitempty"`
	Results     []sarifResult     `json:"results"`
	Invocations []sarifInvocation `json:"invocations,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID               string              `json:"id"`
	ShortDescription sarifMessage        `json:"shortDescription"`
	Properties       *sarifRuleProps     `json:"properties,omitempty"`
	Relationships    []sarifRelationship `json:"relationships,omitempty"`
}

type sarifRuleProps struct {
	CWE              string `json:"cwe"`
	Severity         string `json:"severity"`
	SecuritySeverity string `json:"security-severity"`
}

type sarifRelationship struct {
	Target sarifReportingDescriptorRef `json:"target"`
	Kinds  []string                    `json:"kinds,omitempty"`
}

type sarifReportingDescriptorRef struct {
	ID            string                `json:"id"`
	ToolComponent sarifToolComponentRef `json:"toolComponent"`
}

type sarifToolComponentRef struct {
	Name string `json:"name"`
}

type sarifTaxonomy struct {
	Name             string       `json:"name"`
	Organization     string       `json:"organization,omitempty"`
	ShortDescription sarifMessage `json:"shortDescription"`
	Taxa             []sarifTaxon `json:"taxa"`
}

type sarifTaxon struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID     string            `json:"ruleId"`
	Level      string            `json:"level"`
	Message    sarifMessage      `json:"message"`
	Locations  []sarifLocation   `json:"locations"`
	CodeFlows  []sarifCodeFlow   `json:"codeFlows,omitempty"`
	Properties *sarifResultProps `json:"properties,omitempty"`
}

type sarifResultProps struct {
	CWE      string `json:"cwe"`
	Severity string `json:"severity"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          *sarifMessage         `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLocation `json:"locations"`
}

type sarifThreadFlowLocation struct {
	Location sarifLocation `json:"location"`
}

type sarifInvocation struct {
	ExecutionSuccessful        bool                `json:"executionSuccessful"`
	ToolExecutionNotifications []sarifNotification `json:"toolExecutionNotifications,omitempty"`
}

type sarifNotification struct {
	Level   string       `json:"level"`
	Message sarifMessage `json:"message"`
}
