package report

import (
	"encoding/json"
	"fmt"

	"repro/internal/analyzer"
)

// SARIF renders an analysis result as a SARIF 2.1.0 log, the interchange
// format modern CI systems ingest for static-analysis findings. This is
// the integration story the paper sketches in §III ("it can be tuned to
// produce and store the results in other formats or distribute them over
// the network") in today's vocabulary.
func SARIF(res *analyzer.Result) ([]byte, error) {
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           res.Tool,
				InformationURI: "https://github.com/JoseCarlosFonseca/phpSAFE",
				Rules:          sarifRules(),
			}},
			Results: make([]sarifResult, 0, len(res.Findings)),
		}},
	}
	run := &log.Runs[0]
	for _, f := range res.Findings {
		run.Results = append(run.Results, sarifResult{
			RuleID:  ruleID(f.Class),
			Level:   "error",
			Message: sarifMessage{Text: f.String()},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line},
				},
			}},
			CodeFlows: sarifFlows(f),
		})
	}
	for _, failed := range res.FilesFailed {
		run.Invocations = append(run.Invocations, sarifInvocation{
			ExecutionSuccessful: false,
			ToolExecutionNotifications: []sarifNotification{{
				Level:   "warning",
				Message: sarifMessage{Text: "file not analyzed: " + failed},
			}},
		})
	}
	return json.MarshalIndent(log, "", "  ")
}

// ruleID maps vulnerability classes to stable rule identifiers.
func ruleID(c analyzer.VulnClass) string {
	switch c {
	case analyzer.XSS:
		return "phpsafe/xss"
	case analyzer.SQLi:
		return "phpsafe/sqli"
	case analyzer.CmdInjection:
		return "phpsafe/cmdi"
	case analyzer.FileInclusion:
		return "phpsafe/lfi"
	default:
		return fmt.Sprintf("phpsafe/class-%d", int(c))
	}
}

// sarifRules describes the four rule IDs.
func sarifRules() []sarifRule {
	return []sarifRule{
		{ID: "phpsafe/xss", ShortDescription: sarifMessage{Text: "Cross-Site Scripting: attacker data reaches an HTML output sink"}},
		{ID: "phpsafe/sqli", ShortDescription: sarifMessage{Text: "SQL Injection: attacker data reaches a query sink"}},
		{ID: "phpsafe/cmdi", ShortDescription: sarifMessage{Text: "Command Injection: attacker data reaches a shell-execution sink"}},
		{ID: "phpsafe/lfi", ShortDescription: sarifMessage{Text: "File Inclusion: attacker data used as an include path"}},
	}
}

// sarifFlows converts a finding's trace into a SARIF code flow.
func sarifFlows(f analyzer.Finding) []sarifCodeFlow {
	if len(f.Trace) == 0 {
		return nil
	}
	locs := make([]sarifThreadFlowLocation, 0, len(f.Trace))
	for _, step := range f.Trace {
		locs = append(locs, sarifThreadFlowLocation{
			Location: sarifLocation{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: step.File},
					Region:           sarifRegion{StartLine: step.Line},
				},
				Message: &sarifMessage{Text: step.Var + ": " + step.Note},
			},
		})
	}
	return []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{{Locations: locs}}}}
}

// --- SARIF 2.1.0 document model (the subset this tool emits) ---

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool        sarifTool         `json:"tool"`
	Results     []sarifResult     `json:"results"`
	Invocations []sarifInvocation `json:"invocations,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          *sarifMessage         `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLocation `json:"locations"`
}

type sarifThreadFlowLocation struct {
	Location sarifLocation `json:"location"`
}

type sarifInvocation struct {
	ExecutionSuccessful        bool                `json:"executionSuccessful"`
	ToolExecutionNotifications []sarifNotification `json:"toolExecutionNotifications,omitempty"`
}

type sarifNotification struct {
	Level   string       `json:"level"`
	Message sarifMessage `json:"message"`
}
