package report

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
)

// sampleResult builds a result with both classes and a trace.
func sampleResult() *analyzer.Result {
	return &analyzer.Result{
		Tool:          "phpSAFE",
		Target:        "demo-plugin",
		FilesAnalyzed: 2,
		LinesAnalyzed: 120,
		Findings: []analyzer.Finding{
			{
				Tool: "phpSAFE", File: "admin.php", Line: 14, Class: analyzer.XSS,
				Sink: "echo", Variable: "title", Vector: analyzer.VectorDB,
				Trace: []analyzer.TraceStep{
					{File: "admin.php", Line: 12, Var: "$wpdb->get_var()", Note: "source: get_var"},
					{File: "admin.php", Line: 14, Var: "$title", Note: "reaches sink echo"},
				},
			},
			{
				Tool: "phpSAFE", File: "admin.php", Line: 30, Class: analyzer.SQLi,
				Sink: "$wpdb->query", Variable: "id", Vector: analyzer.VectorGET,
			},
		},
		FilesFailed: []string{"huge-admin.php"},
		Errors:      []string{"huge-admin.php: include closure exceeds budget"},
	}
}

func TestHTMLStructure(t *testing.T) {
	t.Parallel()
	out := HTML(sampleResult())
	for _, want := range []string{
		"<!DOCTYPE html>",
		"demo-plugin",
		"2 file(s) analyzed",
		"admin.php:14",
		"XSS", "SQLi", "GET", "DB",
		"source: get_var",
		"reaches sink echo",
		"not analyzed: <code>huge-admin.php</code>",
		"include closure exceeds budget",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestHTMLEscapesHostileContent(t *testing.T) {
	t.Parallel()
	res := &analyzer.Result{
		Tool:   "phpSAFE",
		Target: `<script>alert(1)</script>`,
		Findings: []analyzer.Finding{{
			File: `"><img src=x onerror=alert(2)>`, Line: 1,
			Class: analyzer.XSS, Sink: "echo",
			Variable: `<b>bold</b>`, Vector: analyzer.VectorGET,
			Trace: []analyzer.TraceStep{
				{File: "f.php", Line: 1, Var: "$x", Note: `<iframe>`},
			},
		}},
	}
	out := HTML(res)
	for _, bad := range []string{"<script>alert", "<img src=x", "<b>bold</b>", "<iframe>"} {
		if strings.Contains(out, bad) {
			t.Errorf("HTML contains unescaped hostile content %q", bad)
		}
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("hostile target name should appear escaped")
	}
}

func TestHTMLEmptyResult(t *testing.T) {
	t.Parallel()
	out := HTML(&analyzer.Result{Tool: "phpSAFE", Target: "clean-plugin"})
	if !strings.Contains(out, "0 finding(s)") {
		t.Error("empty result should render a zero summary")
	}
	if strings.Contains(out, "class=\"warnings\"") {
		t.Error("no warnings block without failures")
	}
}

func TestHTMLSortsByLocation(t *testing.T) {
	t.Parallel()
	res := &analyzer.Result{
		Tool: "phpSAFE", Target: "p",
		Findings: []analyzer.Finding{
			{File: "z.php", Line: 1, Class: analyzer.XSS, Sink: "echo", Vector: analyzer.VectorGET},
			{File: "a.php", Line: 9, Class: analyzer.XSS, Sink: "echo", Vector: analyzer.VectorGET},
			{File: "a.php", Line: 2, Class: analyzer.XSS, Sink: "echo", Vector: analyzer.VectorGET},
		},
	}
	out := HTML(res)
	iA2 := strings.Index(out, "a.php:2")
	iA9 := strings.Index(out, "a.php:9")
	iZ1 := strings.Index(out, "z.php:1")
	if !(iA2 < iA9 && iA9 < iZ1) {
		t.Errorf("findings not sorted by location: %d %d %d", iA2, iA9, iZ1)
	}
}
