package report

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"repro/internal/analyzer"
)

// HTML renders an analysis result as a standalone web page — the shape of
// phpSAFE's original output ("presented in a web page that helps
// reviewing the results, including the vulnerable variables, the entry
// point ... the flow of the vulnerable data from variable to variable",
// §III). The page is self-contained: inline styles, no scripts, safe to
// open locally.
func HTML(res *analyzer.Result) string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s — %s report</title>\n", esc(res.Target), esc(res.Tool))
	sb.WriteString(`<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; }
.summary { color: #555; margin-bottom: 1.5rem; }
.finding { border: 1px solid #ddd; border-left: 4px solid #c0392b; border-radius: 4px;
           padding: .75rem 1rem; margin-bottom: 1rem; }
.finding.sqli { border-left-color: #8e44ad; }
.finding h2 { font-size: 1rem; margin: 0 0 .5rem; }
.badge { display: inline-block; padding: .1rem .5rem; border-radius: 3px;
         font-size: .75rem; color: #fff; background: #c0392b; margin-right: .5rem; }
.badge.sqli { background: #8e44ad; }
.badge.vector { background: #2c3e50; }
table.trace { border-collapse: collapse; font-size: .85rem; width: 100%; }
table.trace td, table.trace th { border: 1px solid #eee; padding: .25rem .5rem; text-align: left; }
table.trace th { background: #fafafa; }
code { background: #f4f4f4; padding: 0 .25rem; border-radius: 2px; }
.warnings { margin-top: 1.5rem; color: #8a6d3b; background: #fcf8e3;
            padding: .75rem 1rem; border-radius: 4px; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&sb, "<h1>%s analysis of <code>%s</code></h1>\n", esc(res.Tool), esc(res.Target))
	fmt.Fprintf(&sb, "<p class=\"summary\">%d finding(s) · %d file(s) analyzed · %d line(s)</p>\n",
		len(res.Findings), res.FilesAnalyzed, res.LinesAnalyzed)

	findings := append([]analyzer.Finding(nil), res.Findings...)
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	for i, f := range findings {
		cls := ""
		if f.Class == analyzer.SQLi {
			cls = " sqli"
		}
		fmt.Fprintf(&sb, "<div class=\"finding%s\">\n", cls)
		fmt.Fprintf(&sb, "<h2>#%d <span class=\"badge%s\">%s</span><span class=\"badge vector\">%s</span> <code>%s:%d</code>",
			i+1, cls, esc(f.Class.String()), esc(f.Vector.String()), esc(f.File), f.Line)
		if f.Variable != "" {
			fmt.Fprintf(&sb, " — variable <code>$%s</code>", esc(f.Variable))
		}
		fmt.Fprintf(&sb, " reaches sink <code>%s</code></h2>\n", esc(f.Sink))
		if len(f.Trace) > 0 {
			sb.WriteString("<table class=\"trace\">\n<tr><th>Location</th><th>Variable</th><th>Step</th></tr>\n")
			for _, step := range f.Trace {
				fmt.Fprintf(&sb, "<tr><td><code>%s:%d</code></td><td><code>%s</code></td><td>%s</td></tr>\n",
					esc(step.File), step.Line, esc(step.Var), esc(step.Note))
			}
			sb.WriteString("</table>\n")
		}
		sb.WriteString("</div>\n")
	}

	if len(res.FilesFailed) > 0 || len(res.Errors) > 0 {
		sb.WriteString("<div class=\"warnings\">\n")
		for _, f := range res.FilesFailed {
			fmt.Fprintf(&sb, "<p>not analyzed: <code>%s</code></p>\n", esc(f))
		}
		for _, e := range res.Errors {
			fmt.Fprintf(&sb, "<p>warning: %s</p>\n", esc(e))
		}
		sb.WriteString("</div>\n")
	}
	sb.WriteString("</body>\n</html>\n")
	return sb.String()
}

// esc HTML-escapes untrusted text. A vulnerability report about XSS must
// not itself be injectable through hostile file names or variable names.
func esc(s string) string { return html.EscapeString(s) }
