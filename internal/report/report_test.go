package report

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/eval"
)

var (
	once sync.Once
	e12  *eval.Evaluation
	e14  *eval.Evaluation
)

// evals computes the package-wide evaluations once.
func evals(t *testing.T) (*eval.Evaluation, *eval.Evaluation) {
	t.Helper()
	once.Do(func() {
		c12, c14 := corpus.MustGenerate()
		var err error
		if e12, err = eval.EvaluateCorpusContext(context.Background(), c12, eval.EvalOptions{}); err != nil {
			t.Fatal(err)
		}
		if e14, err = eval.EvaluateCorpusContext(context.Background(), c14, eval.EvalOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if e12 == nil || e14 == nil {
		t.Fatal("evaluation failed earlier")
	}
	return e12, e14
}

func TestTableIRendering(t *testing.T) {
	a, b := evals(t)
	out := TableI(a, b)
	for _, want := range []string{
		"TABLE I", "phpSAFE", "RIPS", "Pixy",
		"True Positives", "False Positives", "Precision", "Recall", "F-Score",
		"XSS", "SQLi", "Global",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig2Rendering(t *testing.T) {
	a, b := evals(t)
	out := Fig2(a, b)
	for _, want := range []string{
		"FIG. 2", "distinct vulnerabilities detected",
		"only phpSAFE:", "only RIPS:", "only Pixy:",
		"grew",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 2 missing %q in:\n%s", want, out)
		}
	}
}

func TestTableIIRendering(t *testing.T) {
	a, b := evals(t)
	out := TableII(a, b)
	for _, want := range []string{
		"TABLE II", "POST", "GET", "POST/GET/COOKIE", "DB",
		"File/Function/Array", "Both versions", "numeric",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestInertiaRendering(t *testing.T) {
	_, b := evals(t)
	out := Inertia(b)
	for _, want := range []string{"INERTIA", "Already disclosed", "easy to exploit"} {
		if !strings.Contains(out, want) {
			t.Errorf("inertia missing %q", want)
		}
	}
}

func TestTableIIIRendering(t *testing.T) {
	a, b := evals(t)
	out := TableIII(a, b)
	for _, want := range []string{
		"TABLE III", "s/KLOC", "Robustness", "files failed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}

func TestFindingsRendering(t *testing.T) {
	t.Parallel()
	res := &analyzer.Result{
		Tool:          "phpSAFE",
		Target:        "demo",
		FilesAnalyzed: 1,
		LinesAnalyzed: 10,
		Findings: []analyzer.Finding{{
			Tool: "phpSAFE", File: "demo.php", Line: 3,
			Class: analyzer.XSS, Sink: "echo", Variable: "name",
			Vector: analyzer.VectorGET,
			Trace: []analyzer.TraceStep{
				{File: "demo.php", Line: 2, Var: "$_GET", Note: "source: superglobal"},
				{File: "demo.php", Line: 3, Var: "$name", Note: "reaches sink echo"},
			},
		}},
		FilesFailed: []string{"broken.php"},
		Errors:      []string{"broken.php: too complex"},
	}
	out := Findings(res)
	for _, want := range []string{
		"1 finding(s)", "demo.php:3", "source: superglobal",
		"reaches sink echo", "files not analyzed: broken.php",
		"warning: broken.php: too complex",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q in:\n%s", want, out)
		}
	}
}

func TestPctFormatting(t *testing.T) {
	t.Parallel()
	if got := pct(-1); got != "-" {
		t.Errorf("pct(-1) = %q, want -", got)
	}
	if got := pct(0.835); got != "84%" {
		t.Errorf("pct(0.835) = %q, want 84%%", got)
	}
}

func TestTableIIIIncludesDurations(t *testing.T) {
	a, b := evals(t)
	for _, tm := range a.Tools {
		if tm.Duration <= 0 || tm.Duration > time.Minute {
			t.Errorf("%s duration = %v, implausible", tm.Tool, tm.Duration)
		}
	}
	_ = b
}
