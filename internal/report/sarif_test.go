package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analyzer"
)

func TestSARIFStructure(t *testing.T) {
	t.Parallel()
	data, err := SARIF(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	// Must be valid JSON with the expected top-level shape.
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v", doc["version"])
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v", doc["runs"])
	}
	run := runs[0].(map[string]any)
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}

	first := results[0].(map[string]any)
	if first["ruleId"] != "phpsafe/xss" {
		t.Errorf("ruleId = %v", first["ruleId"])
	}
	// The XSS finding has a code flow with both trace steps.
	flows := first["codeFlows"].([]any)
	tf := flows[0].(map[string]any)["threadFlows"].([]any)
	locs := tf[0].(map[string]any)["locations"].([]any)
	if len(locs) != 2 {
		t.Fatalf("thread flow locations = %d, want 2", len(locs))
	}

	// The failed file appears as an invocation notification.
	if !strings.Contains(string(data), "huge-admin.php") {
		t.Error("failed file missing from invocations")
	}
}

func TestSARIFRuleIDs(t *testing.T) {
	t.Parallel()
	tests := []struct {
		class analyzer.VulnClass
		want  string
	}{
		{analyzer.XSS, "phpsafe/xss"},
		{analyzer.SQLi, "phpsafe/sqli"},
		{analyzer.CmdInjection, "phpsafe/cmdi"},
		{analyzer.FileInclusion, "phpsafe/lfi"},
	}
	for _, tt := range tests {
		if got := ruleID(tt.class); got != tt.want {
			t.Errorf("ruleID(%v) = %q, want %q", tt.class, got, tt.want)
		}
	}
}

func TestSARIFEmptyResult(t *testing.T) {
	t.Parallel()
	data, err := SARIF(&analyzer.Result{Tool: "phpSAFE", Target: "clean"})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	run := doc["runs"].([]any)[0].(map[string]any)
	if results := run["results"].([]any); len(results) != 0 {
		t.Errorf("results = %v, want empty array (not null)", results)
	}
}
