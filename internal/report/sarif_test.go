package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analyzer"
)

func TestSARIFStructure(t *testing.T) {
	t.Parallel()
	data, err := SARIF(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	// Must be valid JSON with the expected top-level shape.
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v", doc["version"])
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v", doc["runs"])
	}
	run := runs[0].(map[string]any)
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}

	first := results[0].(map[string]any)
	if first["ruleId"] != "phpsafe/xss" {
		t.Errorf("ruleId = %v", first["ruleId"])
	}
	// The XSS finding has a code flow with both trace steps.
	flows := first["codeFlows"].([]any)
	tf := flows[0].(map[string]any)["threadFlows"].([]any)
	locs := tf[0].(map[string]any)["locations"].([]any)
	if len(locs) != 2 {
		t.Fatalf("thread flow locations = %d, want 2", len(locs))
	}

	// The failed file appears as an invocation notification.
	if !strings.Contains(string(data), "huge-admin.php") {
		t.Error("failed file missing from invocations")
	}
}

func TestSARIFRuleIDs(t *testing.T) {
	t.Parallel()
	tests := []struct {
		class analyzer.VulnClass
		want  string
	}{
		{analyzer.XSS, "phpsafe/xss"},
		{analyzer.SQLi, "phpsafe/sqli"},
		{analyzer.CmdInjection, "phpsafe/cmdi"},
		{analyzer.FileInclusion, "phpsafe/lfi"},
	}
	for _, tt := range tests {
		if got := ruleID(tt.class); got != tt.want {
			t.Errorf("ruleID(%v) = %q, want %q", tt.class, got, tt.want)
		}
	}
}

func TestSARIFCWEMetadata(t *testing.T) {
	t.Parallel()
	res := &analyzer.Result{
		Tool:   "phpSAFE",
		Target: "demo",
		Findings: []analyzer.Finding{
			{Class: analyzer.SQLi, File: "a.php", Line: 3, Sink: "query"},
			{Class: analyzer.OpenRedirect, File: "b.php", Line: 9, Sink: "header",
				CWE: 601, Severity: "medium"},
		},
	}
	data, err := SARIF(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	run := doc["runs"].([]any)[0].(map[string]any)

	// Every rule carries CWE, severity and security-severity properties
	// plus a relationship into the CWE taxonomy.
	rules := run["tool"].(map[string]any)["driver"].(map[string]any)["rules"].([]any)
	if len(rules) != len(analyzer.Classes()) {
		t.Fatalf("rules = %d, want one per class (%d)", len(rules), len(analyzer.Classes()))
	}
	for _, r := range rules {
		rule := r.(map[string]any)
		props := rule["properties"].(map[string]any)
		for _, key := range []string{"cwe", "severity", "security-severity"} {
			if s, _ := props[key].(string); s == "" {
				t.Errorf("rule %v: missing property %q", rule["id"], key)
			}
		}
		rels := rule["relationships"].([]any)
		target := rels[0].(map[string]any)["target"].(map[string]any)
		if tc := target["toolComponent"].(map[string]any); tc["name"] != "CWE" {
			t.Errorf("rule %v: relationship target component = %v", rule["id"], tc["name"])
		}
	}

	// The run-level taxonomy enumerates each distinct CWE once.
	tax := run["taxonomies"].([]any)[0].(map[string]any)
	if tax["name"] != "CWE" {
		t.Fatalf("taxonomy name = %v", tax["name"])
	}
	taxa := tax["taxa"].([]any)
	seen := map[string]bool{}
	for _, tx := range taxa {
		id := tx.(map[string]any)["id"].(string)
		if seen[id] {
			t.Errorf("duplicate taxon %s", id)
		}
		seen[id] = true
	}
	if !seen["CWE-89"] || !seen["CWE-601"] {
		t.Errorf("taxa missing expected CWEs: %v", seen)
	}

	// Results carry per-finding CWE/severity and severity-derived levels.
	results := run["results"].([]any)
	sqli := results[0].(map[string]any)
	if sqli["level"] != "error" {
		t.Errorf("sqli level = %v, want error (critical severity)", sqli["level"])
	}
	if props := sqli["properties"].(map[string]any); props["cwe"] != "CWE-89" || props["severity"] != "critical" {
		t.Errorf("sqli properties = %v", props)
	}
	redirect := results[1].(map[string]any)
	if redirect["level"] != "warning" {
		t.Errorf("redirect level = %v, want warning (medium severity)", redirect["level"])
	}
	if props := redirect["properties"].(map[string]any); props["cwe"] != "CWE-601" {
		t.Errorf("redirect properties = %v", props)
	}
}

func TestSARIFEmptyResult(t *testing.T) {
	t.Parallel()
	data, err := SARIF(&analyzer.Result{Tool: "phpSAFE", Target: "clean"})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	run := doc["runs"].([]any)[0].(map[string]any)
	if results := run["results"].([]any); len(results) != 0 {
		t.Errorf("results = %v, want empty array (not null)", results)
	}
}
