// Package report renders the evaluation results in the shape of the
// paper's tables and figures (DSN 2015, §V): Table I (detection metrics),
// Fig. 2 (overlap), Table II (input vectors), the §V.D inertia numbers
// and Table III (timing and robustness). It also renders individual
// findings with their data-flow traces, the output of phpSAFE's
// results-processing stage (§III.D).
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/eval"
)

// pct renders a ratio as a percentage, or "-" when undefined.
func pct(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", v*100)
}

// TableI renders the paper's Table I for a pair of evaluations (2012 and
// 2014 corpora).
func TableI(ev2012, ev2014 *eval.Evaluation) string {
	var sb strings.Builder
	sb.WriteString("TABLE I. VULNERABILITIES OF 2012 AND 2014 PLUGIN VERSIONS\n\n")

	tools := toolNames(ev2012)
	fmt.Fprintf(&sb, "%-8s %-16s", "", "")
	for _, tool := range tools {
		fmt.Fprintf(&sb, " | %-11s %-11s", tool+" '12", tool+" '14")
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", 26+len(tools)*27) + "\n")

	sections := []struct {
		label string
		class analyzer.VulnClass
	}{
		{"XSS", analyzer.XSS},
		{"SQLi", analyzer.SQLi},
	}
	rowNames := []string{"True Positives", "False Positives", "Precision", "Recall", "F-Score"}

	writeRow := func(section, row string, get func(tm *eval.ToolMetrics) string) {
		fmt.Fprintf(&sb, "%-8s %-16s", section, row)
		for _, tool := range tools {
			a := get(ev2012.Tool(tool))
			b := get(ev2014.Tool(tool))
			fmt.Fprintf(&sb, " | %-11s %-11s", a, b)
		}
		sb.WriteString("\n")
	}

	for _, sec := range sections {
		for i, row := range rowNames {
			label := ""
			if i == 0 {
				label = sec.label
			}
			class := sec.class
			writeRow(label, row, func(tm *eval.ToolMetrics) string {
				c := tm.ByClass[class]
				switch row {
				case "True Positives":
					return fmt.Sprint(c.TP)
				case "False Positives":
					return fmt.Sprint(c.FP)
				case "Precision":
					return pct(c.Precision())
				case "Recall":
					return pct(c.Recall())
				default:
					return pct(c.FScore())
				}
			})
		}
		sb.WriteString("\n")
	}
	for i, row := range rowNames {
		label := ""
		if i == 0 {
			label = "Global"
		}
		writeRow(label, row, func(tm *eval.ToolMetrics) string {
			switch row {
			case "True Positives":
				return fmt.Sprint(tm.Global.TP)
			case "False Positives":
				return fmt.Sprint(tm.Global.FP)
			case "Precision":
				return pct(tm.Global.Precision())
			case "Recall":
				return pct(tm.Global.Recall())
			default:
				return pct(tm.Global.FScore())
			}
		})
	}
	return sb.String()
}

// toolNames lists the evaluation's tools in run order.
func toolNames(ev *eval.Evaluation) []string {
	names := make([]string, 0, len(ev.Tools))
	for _, tm := range ev.Tools {
		names = append(names, tm.Tool)
	}
	return names
}

// Fig2 renders the overlap diagram data as text (the Venn regions of the
// paper's Fig. 2).
func Fig2(ev2012, ev2014 *eval.Evaluation) string {
	var sb strings.Builder
	sb.WriteString("FIG. 2. TOOLS VULNERABILITY DETECTION OVERLAP\n\n")
	for _, ev := range []*eval.Evaluation{ev2012, ev2014} {
		ov := ev.ComputeOverlap()
		fmt.Fprintf(&sb, "Version %s: %d distinct vulnerabilities detected (of %d seeded)\n",
			ev.Corpus.Version, ov.Union, ov.Seeded)
		regions := make([]string, 0, len(ov.Regions))
		for sig := range ov.Regions {
			regions = append(regions, sig)
		}
		sort.Slice(regions, func(i, j int) bool {
			if n := strings.Count(regions[i], "+") - strings.Count(regions[j], "+"); n != 0 {
				return n < 0
			}
			return regions[i] < regions[j]
		})
		for _, sig := range regions {
			fmt.Fprintf(&sb, "  only %-24s %4d\n", sig+":", ov.Regions[sig])
		}
		tools := make([]string, 0, len(ov.PerTool))
		for t := range ov.PerTool {
			tools = append(tools, t)
		}
		sort.Strings(tools)
		for _, t := range tools {
			fmt.Fprintf(&sb, "  total %-23s %4d\n", t+":", ov.PerTool[t])
		}
		if missed := ov.Seeded - ov.Union; missed > 0 {
			fmt.Fprintf(&sb, "  undetected by all tools:      %4d\n", missed)
		}
		sb.WriteString("\n")
	}
	v12, v14 := ev2012.ComputeOverlap().Union, ev2014.ComputeOverlap().Union
	if v12 > 0 {
		fmt.Fprintf(&sb, "Distinct vulnerabilities grew %d -> %d (+%.0f%%) in two years.\n",
			v12, v14, 100*float64(v14-v12)/float64(v12))
	}
	return sb.String()
}

// TableII renders the paper's Table II: malicious input vector types.
func TableII(ev2012, ev2014 *eval.Evaluation) string {
	vb12 := ev2012.ComputeVectors()
	vb14 := ev2014.ComputeVectors()

	var sb strings.Builder
	sb.WriteString("TABLE II. MALICIOUS INPUT VECTOR TYPE\n\n")
	fmt.Fprintf(&sb, "%-22s %12s %12s %14s\n", "Input Vectors", "Version 2012", "Version 2014", "Both versions")
	sb.WriteString(strings.Repeat("-", 64) + "\n")
	for _, row := range eval.VectorRows() {
		fmt.Fprintf(&sb, "%-22s %12d %12d %14d\n", row, vb12.Rows[row], vb14.Rows[row], vb14.Persisting[row])
	}
	total14 := vb14.Direct + vb14.DB + vb14.Indirect
	if total14 > 0 {
		sb.WriteString("\nRoot causes, 2014 (§V.C):\n")
		fmt.Fprintf(&sb, "  directly manipulable (GET/POST/COOKIE): %d (%.0f%%)\n",
			vb14.Direct, 100*float64(vb14.Direct)/float64(total14))
		fmt.Fprintf(&sb, "  database (indirect, blended attacks):   %d (%.0f%%)\n",
			vb14.DB, 100*float64(vb14.DB)/float64(total14))
		fmt.Fprintf(&sb, "  file/function/array (hard to reach):    %d (%.1f%%)\n",
			vb14.Indirect, 100*float64(vb14.Indirect)/float64(total14))
		fmt.Fprintf(&sb, "  numeric vulnerable variables:           %.0f%%\n", vb14.NumericShare*100)
	}
	return sb.String()
}

// Inertia renders the §V.D analysis.
func Inertia(ev2014 *eval.Evaluation) string {
	in := ev2014.ComputeInertia()
	var sb strings.Builder
	sb.WriteString("INERTIA IN FIXING VULNERABILITIES (§V.D)\n\n")
	fmt.Fprintf(&sb, "Vulnerabilities detected in 2014 versions:        %d\n", in.Detected2014)
	fmt.Fprintf(&sb, "Already disclosed in the 2012 versions:           %d (%.0f%%)\n",
		in.Persisting, in.PersistShare()*100)
	fmt.Fprintf(&sb, "Of those, easy to exploit (GET/POST/COOKIE):      %d (%.0f%%)\n",
		in.PersistingEasy, in.EasyShare()*100)
	return sb.String()
}

// TableIII renders the paper's Table III (detection time) plus the §V.E
// robustness accounting.
func TableIII(ev2012, ev2014 *eval.Evaluation) string {
	var sb strings.Builder
	sb.WriteString("TABLE III. DETECTION TIME OF ALL PLUGINS IN SECONDS\n\n")
	fmt.Fprintf(&sb, "%-10s %14s %14s %16s %16s\n",
		"Tool", "Ver. 2012 (s)", "Ver. 2014 (s)", "s/KLOC 2012", "s/KLOC 2014")
	sb.WriteString(strings.Repeat("-", 74) + "\n")
	for _, tm12 := range ev2012.Tools {
		tm14 := ev2014.Tool(tm12.Tool)
		s12 := tm12.Duration.Seconds()
		s14 := tm14.Duration.Seconds()
		kloc12 := float64(ev2012.Corpus.Lines()) / 1000
		kloc14 := float64(ev2014.Corpus.Lines()) / 1000
		fmt.Fprintf(&sb, "%-10s %14.3f %14.3f %16.4f %16.4f\n",
			tm12.Tool, s12, s14, s12/kloc12, s14/kloc14)
	}

	sb.WriteString("\nRobustness (§V.E):\n")
	fmt.Fprintf(&sb, "  corpus 2012: %d files, %d lines; corpus 2014: %d files, %d lines\n",
		ev2012.Corpus.Files(), ev2012.Corpus.Lines(),
		ev2014.Corpus.Files(), ev2014.Corpus.Lines())
	for _, tm12 := range ev2012.Tools {
		tm14 := ev2014.Tool(tm12.Tool)
		fmt.Fprintf(&sb, "  %-8s files failed: %d (2012), %d (2014); errors raised: %d (2012), %d (2014)\n",
			tm12.Tool, tm12.FilesFailed, tm14.FilesFailed, tm12.ErrorCount, tm14.ErrorCount)
	}
	return sb.String()
}

// Findings renders a result's findings with their data-flow traces — the
// output of phpSAFE's results-processing stage (§III.D).
func Findings(res *analyzer.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d finding(s) in %s (%d files, %d lines analyzed)\n",
		res.Tool, len(res.Findings), res.Target, res.FilesAnalyzed, res.LinesAnalyzed)
	for i, f := range res.Findings {
		fmt.Fprintf(&sb, "\n[%d] %s\n", i+1, f)
		for _, step := range f.Trace {
			fmt.Fprintf(&sb, "      %s:%d  %-24s %s\n", step.File, step.Line, step.Var, step.Note)
		}
	}
	if len(res.FilesFailed) > 0 {
		fmt.Fprintf(&sb, "\nfiles not analyzed: %s\n", strings.Join(res.FilesFailed, ", "))
	}
	for _, e := range res.Errors {
		fmt.Fprintf(&sb, "warning: %s\n", e)
	}
	return sb.String()
}

// Summary renders the one-paragraph overall analysis of §V.A.
func Summary(ev2012, ev2014 *eval.Evaluation) string {
	var sb strings.Builder
	sb.WriteString("OVERALL ANALYSIS (§V.A)\n\n")
	for _, pair := range []struct {
		ev  *eval.Evaluation
		ver string
	}{{ev2012, "2012"}, {ev2014, "2014"}} {
		oop := 0
		for _, g := range pair.ev.Corpus.Truths {
			if g.OOP && pair.ev.Tool("phpSAFE") != nil && pair.ev.Tool("phpSAFE").Detected[g.ID] {
				oop++
			}
		}
		fmt.Fprintf(&sb, "Version %s: phpSAFE detected %d WordPress-object (OOP) vulnerabilities; ",
			pair.ver, oop)
		rips, pixy := 0, 0
		for _, g := range pair.ev.Corpus.Truths {
			if !g.OOP {
				continue
			}
			if tm := pair.ev.Tool("RIPS"); tm != nil && tm.Detected[g.ID] {
				rips++
			}
			if tm := pair.ev.Tool("Pixy"); tm != nil && tm.Detected[g.ID] {
				pixy++
			}
		}
		fmt.Fprintf(&sb, "RIPS detected %d, Pixy detected %d.\n", rips, pixy)
	}
	return sb.String()
}
