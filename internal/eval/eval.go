// Package eval is the evaluation harness of the reproduction: it runs
// the three analyzers over a generated corpus, matches their reports
// against the ground truth (standing in for the paper's manual expert
// verification, §IV.B step 5), and computes every number the paper's
// evaluation section reports — Table I metrics, the Fig. 2 overlap sets,
// the Table II input-vector breakdown, the §V.D inertia analysis and the
// Table III timing/robustness figures.
package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/obs"
)

// lineTolerance is how far a reported line may sit from the ground-truth
// sink line and still match (tools disagree slightly on multi-line
// statements).
const lineTolerance = 0

// ToolRun is the raw output of one tool over one corpus.
type ToolRun struct {
	// Tool is the tool's display name.
	Tool string
	// Results holds one result per plugin, in corpus order.
	Results []*analyzer.Result
	// Duration is the wall-clock analysis time for the whole corpus.
	Duration time.Duration
}

// Options tunes a tool run over a corpus. The zero value runs
// serially, uninstrumented, with default budgets.
type Options struct {
	// Workers sizes the worker pool; 0 or 1 runs serially (the paper's
	// Table III mode), negative uses GOMAXPROCS.
	Workers int
	// Recorder receives per-plugin spans and harness metrics (queue
	// wait, plugins completed); nil disables harness instrumentation.
	Recorder *obs.Recorder
	// Progress, when non-nil, is called after each plugin completes.
	// Under a worker pool it is invoked from worker goroutines but
	// never concurrently.
	Progress func(ev Progress)
	// Budgets carries per-plugin resource budgets into every engine
	// that implements analyzer.ContextAnalyzer; nil means defaults.
	Budgets *analyzer.ScanOptions
}

// Progress is one progress-callback event.
type Progress struct {
	// Tool is the running tool's display name.
	Tool string
	// Plugin is the plugin that just finished.
	Plugin string
	// Done and Total count completed and overall plugins.
	Done, Total int
	// Err is the plugin's analysis error, nil on success.
	Err error
}

// Run executes a tool over every plugin of a corpus, timing it. It is
// the one entry point for corpus sweeps: opts selects serial or pooled
// execution, instrumentation and budgets, and ctx cancels the sweep
// between (and, for governed engines, inside) plugins. With Workers > 1
// it delegates to the worker pool; results keep corpus order either
// way.
func Run(ctx context.Context, tool analyzer.Analyzer, c *corpus.Corpus, opts Options) (*ToolRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Workers > 1 || opts.Workers < 0 {
		return runParallel(ctx, tool, c, opts)
	}
	run := &ToolRun{Tool: tool.Name()}
	rec := opts.Recorder
	start := time.Now()
	for i, target := range c.Targets {
		sp := rec.StartNamedSpan("plugin:", target.Name, nil)
		// A context already dead skips the engine but still flows through
		// the progress/error path, so cancellation between plugins is
		// reported identically to cancellation inside one.
		res, err := (*analyzer.Result)(nil), ctx.Err()
		if err == nil {
			res, err = tool.AnalyzeContext(ctx, target, opts.Budgets)
		}
		sp.EndAndObserve("eval_plugin_seconds")
		rec.Counter("eval_plugins_total").Inc()
		if opts.Progress != nil {
			opts.Progress(Progress{
				Tool: tool.Name(), Plugin: target.Name,
				Done: i + 1, Total: len(c.Targets), Err: err,
			})
		}
		if err != nil {
			run.Duration = time.Since(start)
			return run, fmt.Errorf("eval: %s on %s: %w", tool.Name(), target.Name, err)
		}
		run.Results = append(run.Results, res)
	}
	run.Duration = time.Since(start)
	return run, nil
}

// Counts is a TP/FP tally with derived metrics.
type Counts struct {
	TP int
	FP int
	FN int
}

// Precision returns TP/(TP+FP), or -1 when undefined.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return -1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or -1 when undefined.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return -1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FScore returns the harmonic mean of precision and recall, or -1.
func (c Counts) FScore() float64 {
	p, r := c.Precision(), c.Recall()
	if p <= 0 || r <= 0 {
		return -1
	}
	return 2 * p * r / (p + r)
}

// ToolMetrics is one tool's oracle-matched outcome on one corpus.
type ToolMetrics struct {
	// Tool is the tool's display name.
	Tool string
	// Detected maps ground-truth IDs the tool found.
	Detected map[string]bool
	// ByClass holds TP/FP/FN per vulnerability class.
	ByClass map[analyzer.VulnClass]*Counts
	// Global is the all-classes tally.
	Global Counts
	// TrapFP counts false positives that hit seeded traps, per trap kind.
	TrapFP map[string]int
	// UnplannedFP counts false positives matching neither truth nor trap.
	UnplannedFP int
	// Duration is the wall-clock analysis time.
	Duration time.Duration
	// FilesAnalyzed / FilesFailed / ErrorCount aggregate robustness
	// accounting (§V.E).
	FilesAnalyzed int
	FilesFailed   int
	ErrorCount    int
	LinesAnalyzed int
}

// Evaluation is the complete oracle-matched outcome on one corpus.
type Evaluation struct {
	// Corpus is the evaluated snapshot.
	Corpus *corpus.Corpus
	// Tools holds per-tool metrics in run order.
	Tools []*ToolMetrics
	// UnionDetected maps truth IDs found by at least one tool (the
	// paper's "total number of vulnerabilities detected by the tools and
	// confirmed manually", §IV.B).
	UnionDetected map[string]bool
}

// truthKey indexes ground truths for matching.
type truthKey struct {
	plugin string
	file   string
	class  analyzer.VulnClass
}

// Evaluate matches tool runs against the corpus labels and computes the
// paper's metrics, including its optimistic FN definition: "we considered
// as the FN of one tool the vulnerabilities that it did not detect but
// were detected by the other tools" (§V.A).
func Evaluate(c *corpus.Corpus, runs []*ToolRun) *Evaluation {
	truthIdx := make(map[truthKey][]corpus.GroundTruth)
	for _, g := range c.Truths {
		k := truthKey{g.Plugin, g.File, g.Class}
		truthIdx[k] = append(truthIdx[k], g)
	}
	trapIdx := make(map[truthKey][]corpus.Trap)
	for _, tr := range c.Traps {
		k := truthKey{tr.Plugin, tr.File, tr.Class}
		trapIdx[k] = append(trapIdx[k], tr)
	}

	ev := &Evaluation{Corpus: c, UnionDetected: make(map[string]bool)}

	for _, run := range runs {
		tm := &ToolMetrics{
			Tool:     run.Tool,
			Detected: make(map[string]bool),
			ByClass:  make(map[analyzer.VulnClass]*Counts, len(analyzer.Classes())),
			TrapFP:   make(map[string]int),
			Duration: run.Duration,
		}
		for _, class := range analyzer.Classes() {
			tm.ByClass[class] = &Counts{}
		}
		for i, res := range run.Results {
			plugin := c.Targets[i].Name
			tm.FilesAnalyzed += res.FilesAnalyzed
			tm.FilesFailed += len(res.FilesFailed)
			tm.ErrorCount += len(res.Errors)
			tm.LinesAnalyzed += res.LinesAnalyzed
			for _, f := range res.Findings {
				matchFinding(tm, truthIdx, trapIdx, plugin, f)
			}
		}
		for id := range tm.Detected {
			ev.UnionDetected[id] = true
		}
		ev.Tools = append(ev.Tools, tm)
	}

	// Tally TPs per class, then the optimistic FNs.
	truthByID := make(map[string]corpus.GroundTruth, len(c.Truths))
	for _, g := range c.Truths {
		truthByID[g.ID] = g
	}
	for _, tm := range ev.Tools {
		for id := range tm.Detected {
			g := truthByID[id]
			tm.ByClass[g.Class].TP++
			tm.Global.TP++
		}
		for id := range ev.UnionDetected {
			if !tm.Detected[id] {
				g := truthByID[id]
				tm.ByClass[g.Class].FN++
				tm.Global.FN++
			}
		}
		for class, counts := range tm.ByClass {
			_ = class
			tm.Global.FP += counts.FP
		}
	}
	return ev
}

// matchFinding classifies one finding as TP (matches a truth), trap FP,
// or unplanned FP.
func matchFinding(tm *ToolMetrics, truthIdx map[truthKey][]corpus.GroundTruth,
	trapIdx map[truthKey][]corpus.Trap, plugin string, f analyzer.Finding) {

	k := truthKey{plugin, f.File, f.Class}
	for _, g := range truthIdx[k] {
		if abs(g.Line-f.Line) <= lineTolerance {
			tm.Detected[g.ID] = true
			return
		}
	}
	for _, tr := range trapIdx[k] {
		if abs(tr.Line-f.Line) <= lineTolerance {
			tm.ByClass[f.Class].FP++
			tm.TrapFP[tr.Kind]++
			return
		}
	}
	tm.ByClass[f.Class].FP++
	tm.UnplannedFP++
}

// abs returns the absolute value of an int.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Tool returns the metrics for a tool by name, or nil.
func (ev *Evaluation) Tool(name string) *ToolMetrics {
	for _, tm := range ev.Tools {
		if tm.Tool == name {
			return tm
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Fig. 2: detection overlap
// ---------------------------------------------------------------------------

// Overlap is the Venn decomposition of detected vulnerabilities.
type Overlap struct {
	// Regions maps a subset signature (sorted tool names joined by "+")
	// to the number of vulnerabilities detected by exactly that subset.
	Regions map[string]int
	// Union is the total number of distinct detected vulnerabilities.
	Union int
	// Seeded is the total ground-truth size (vulnerabilities missed by
	// every tool = Seeded - Union; the paper's "empty circle").
	Seeded int
	// PerTool is each tool's total detections.
	PerTool map[string]int
}

// ComputeOverlap builds the Fig. 2 data.
func (ev *Evaluation) ComputeOverlap() Overlap {
	ov := Overlap{
		Regions: make(map[string]int),
		PerTool: make(map[string]int),
		Seeded:  len(ev.Corpus.Truths),
		Union:   len(ev.UnionDetected),
	}
	for id := range ev.UnionDetected {
		sig := ""
		for _, tm := range ev.Tools {
			if tm.Detected[id] {
				if sig != "" {
					sig += "+"
				}
				sig += tm.Tool
			}
		}
		ov.Regions[sig]++
	}
	for _, tm := range ev.Tools {
		ov.PerTool[tm.Tool] = len(tm.Detected)
	}
	return ov
}

// ---------------------------------------------------------------------------
// Table II: input vectors, §V.C root causes
// ---------------------------------------------------------------------------

// VectorBreakdown is one corpus's Table II column.
type VectorBreakdown struct {
	// Rows maps Table II row label → count of detected vulnerabilities.
	Rows map[string]int
	// Persisting maps row label → count also present in the 2012 version
	// (only meaningful for the 2014 corpus).
	Persisting map[string]int
	// Direct / DB / Indirect are the §V.C root-cause class totals.
	Direct   int
	DB       int
	Indirect int
	// NumericShare is the fraction of vulnerable variables meant to hold
	// numbers (§V.C reports 39%).
	NumericShare float64
}

// VectorRows lists Table II's row labels in paper order.
func VectorRows() []string {
	return []string{"POST", "GET", "POST/GET/COOKIE", "DB", "File/Function/Array"}
}

// ComputeVectors builds the Table II breakdown over the union of
// confirmed (detected) vulnerabilities, as the paper does.
func (ev *Evaluation) ComputeVectors() VectorBreakdown {
	vb := VectorBreakdown{
		Rows:       make(map[string]int),
		Persisting: make(map[string]int),
	}
	numeric, total := 0, 0
	for _, g := range ev.Corpus.Truths {
		if !ev.UnionDetected[g.ID] {
			continue
		}
		row := g.Vector.TableIIRow()
		vb.Rows[row]++
		if g.Persists {
			vb.Persisting[row]++
		}
		switch {
		case g.Vector.DirectlyManipulable():
			vb.Direct++
		case g.Vector == analyzer.VectorDB:
			vb.DB++
		default:
			vb.Indirect++
		}
		total++
		if g.Numeric {
			numeric++
		}
	}
	if total > 0 {
		vb.NumericShare = float64(numeric) / float64(total)
	}
	return vb
}

// ---------------------------------------------------------------------------
// §V.D: inertia in fixing vulnerabilities
// ---------------------------------------------------------------------------

// Inertia summarizes how many detected 2014 vulnerabilities were already
// disclosed in 2012.
type Inertia struct {
	// Detected2014 is the union-detected 2014 count.
	Detected2014 int
	// Persisting is how many of those persist from 2012.
	Persisting int
	// PersistingEasy is how many persisting ones are easy to exploit
	// (GET/POST/COOKIE manipulation, §V.D reports 24%).
	PersistingEasy int
}

// PersistShare returns the persisting fraction (§V.D reports 42%).
func (in Inertia) PersistShare() float64 {
	if in.Detected2014 == 0 {
		return 0
	}
	return float64(in.Persisting) / float64(in.Detected2014)
}

// EasyShare returns the easy-to-exploit fraction of persisting
// vulnerabilities.
func (in Inertia) EasyShare() float64 {
	if in.Persisting == 0 {
		return 0
	}
	return float64(in.PersistingEasy) / float64(in.Persisting)
}

// ComputeInertia builds the §V.D analysis; call it on the 2014
// evaluation.
func (ev *Evaluation) ComputeInertia() Inertia {
	var in Inertia
	for _, g := range ev.Corpus.Truths {
		if !ev.UnionDetected[g.ID] {
			continue
		}
		in.Detected2014++
		if !g.Persists {
			continue
		}
		in.Persisting++
		if g.EasyToExploit() {
			in.PersistingEasy++
		}
	}
	return in
}
