package eval

import (
	"fmt"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/corpus"
)

// ClassRow is one vulnerability class's outcome for one tool run,
// scored against every seeded instance of the class. Unlike the paper's
// optimistic FN (which only counts misses another tool caught, §V.A),
// FN here is the real residual: seeded instances the tool missed.
type ClassRow struct {
	// Class is the vulnerability class.
	Class analyzer.VulnClass
	// CWE and Severity are the class's default metadata.
	CWE      int
	Severity string
	// Seeded counts the ground-truth instances of this class.
	Seeded int
	// TP/FP/FN are the tool's counts for this class.
	TP, FP, FN int
}

// Precision is TP/(TP+FP), or -1 when undefined.
func (r ClassRow) Precision() float64 {
	if r.TP+r.FP == 0 {
		return -1
	}
	return float64(r.TP) / float64(r.TP+r.FP)
}

// Recall is TP/Seeded, or -1 when nothing was seeded.
func (r ClassRow) Recall() float64 {
	if r.Seeded == 0 {
		return -1
	}
	return float64(r.TP) / float64(r.Seeded)
}

// ClassBreakdown scores one tool run per vulnerability class against
// the corpus labels. Classes with no seeded instances and no findings
// are omitted.
func ClassBreakdown(c *corpus.Corpus, run *ToolRun) []ClassRow {
	ev := Evaluate(c, []*ToolRun{run})
	tm := ev.Tools[0]

	seeded := make(map[analyzer.VulnClass]int, len(analyzer.Classes()))
	for _, g := range c.Truths {
		seeded[g.Class]++
	}

	rows := make([]ClassRow, 0, len(analyzer.Classes()))
	for _, class := range analyzer.Classes() {
		counts := tm.ByClass[class]
		row := ClassRow{
			Class:    class,
			CWE:      class.CWE(),
			Severity: class.Severity(),
			Seeded:   seeded[class],
			TP:       counts.TP,
			FP:       counts.FP,
			FN:       seeded[class] - counts.TP,
		}
		if row.Seeded == 0 && row.TP == 0 && row.FP == 0 {
			continue
		}
		rows = append(rows, row)
	}
	return rows
}

// ClassTable renders a breakdown as an aligned text table.
func ClassTable(tool string, rows []ClassRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-class breakdown — %s\n", tool)
	fmt.Fprintf(&sb, "%-10s %-8s %-9s %7s %5s %5s %5s %6s %7s\n",
		"Class", "CWE", "Severity", "Seeded", "TP", "FP", "FN", "Prec", "Recall")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s CWE-%-4d %-9s %7d %5d %5d %5d %6s %7s\n",
			r.Class.Slug(), r.CWE, r.Severity, r.Seeded, r.TP, r.FP, r.FN,
			pct(r.Precision()), pct(r.Recall()))
	}
	return sb.String()
}

// pct renders a ratio as a percentage, "-" when undefined.
func pct(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", v*100)
}
