package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/pixy"
	"repro/internal/rips"
	"repro/internal/rulepack"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// DefaultTools returns the paper's three tools in presentation order:
// phpSAFE with its out-of-the-box WordPress configuration (§III.A), RIPS
// with its generic-PHP knowledge, and Pixy frozen in 2007.
func DefaultTools() []analyzer.Analyzer {
	return ObservedTools(nil)
}

// ObservedTools returns DefaultTools with the recorder threaded into
// every engine, so a corpus sweep records lex/parse/model/taint stage
// timings and engine counters. A nil recorder yields uninstrumented
// engines (identical to DefaultTools).
func ObservedTools(rec *obs.Recorder) []analyzer.Analyzer {
	return []analyzer.Analyzer{
		taint.New(wordpress.Compiled(), taint.DefaultOptions()).WithRecorder(rec),
		rips.NewDefault().WithRecorder(rec),
		pixy.New().WithRecorder(rec),
	}
}

// ToolOptions tunes BuildTool's engine construction. The zero value is
// the default configuration: OOP analysis on, uncalled-function
// analysis on, no instrumentation.
type ToolOptions struct {
	// NoOOP disables object-oriented analysis (paper §III.E).
	NoOOP bool
	// NoUncalled skips functions never called from plugin code.
	NoUncalled bool
	// Recorder, when non-nil, instruments the engine.
	Recorder *obs.Recorder
	// ExtraPacks are rule packs loaded from files, registered on top of
	// the builtin packs before the profile spec is resolved.
	ExtraPacks []*rulepack.Pack
}

// BuildTool constructs one engine by name ("phpsafe", "rips" or
// "pixy") over a rule-pack spec: a comma-separated list of pack names
// ("wordpress", "generic", "wordpress,security-extended", ...) resolved
// against the builtin packs plus opts.ExtraPacks. The phpsafe CLI and
// the phpsafed daemon both construct engines through this function, so
// the two binaries cannot drift in how a tool/pack pair maps onto an
// analyzer.
func BuildTool(name, profile string, opts ToolOptions) (analyzer.Analyzer, error) {
	reg := rulepack.NewRegistry()
	for _, p := range opts.ExtraPacks {
		reg.Register(p)
	}
	names := rulepack.SplitSpec(profile)
	if len(names) == 0 {
		return nil, fmt.Errorf("empty rule-pack spec (known packs: %s)",
			strings.Join(reg.Names(), ", "))
	}
	cfg, err := reg.Compile(names...)
	if err != nil {
		return nil, err
	}
	switch name {
	case "phpsafe":
		o := taint.DefaultOptions()
		o.OOP = !opts.NoOOP
		o.AnalyzeUncalled = !opts.NoUncalled
		return taint.New(cfg, o).WithRecorder(opts.Recorder), nil
	case "rips":
		return rips.New(cfg).WithRecorder(opts.Recorder), nil
	case "pixy":
		return pixy.New().WithRecorder(opts.Recorder), nil
	default:
		return nil, fmt.Errorf("unknown tool %q", name)
	}
}

// EvalOptions tunes a full-corpus evaluation.
type EvalOptions struct {
	// Workers sizes the per-tool worker pool; 0 or 1 is the serial
	// Table III mode.
	Workers int
	// RecorderFor, when non-nil, supplies one recorder per tool (keyed
	// by display name) so per-tool metrics stay separable. The recorder
	// is threaded both into the engine (stage spans, engine counters)
	// and the harness (per-plugin spans, queue wait).
	RecorderFor func(tool string) *obs.Recorder
	// Progress, when non-nil, is called after every plugin of every
	// tool run.
	Progress func(ev Progress)
	// Budgets carries per-plugin resource budgets into every engine;
	// nil means defaults.
	Budgets *analyzer.ScanOptions
}

// EvaluateCorpusContext runs the default tools over a corpus under ctx
// and matches the results against its labels; cancelling ctx aborts
// the sweep mid-tool with the wrapped context error.
func EvaluateCorpusContext(ctx context.Context, c *corpus.Corpus, opts EvalOptions) (*Evaluation, error) {
	runs := make([]*ToolRun, 0, 3)
	for _, tool := range DefaultTools() {
		var rec *obs.Recorder
		if opts.RecorderFor != nil {
			rec = opts.RecorderFor(tool.Name())
		}
		if rec != nil {
			tool = observe(tool, rec)
		}
		run, err := Run(ctx, tool, c, Options{
			Workers:  opts.Workers,
			Recorder: rec,
			Progress: opts.Progress,
			Budgets:  opts.Budgets,
		})
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return Evaluate(c, runs), nil
}

// observe rebinds a known engine to a recorder; tools without recorder
// support pass through unchanged (harness-level spans still apply).
func observe(tool analyzer.Analyzer, rec *obs.Recorder) analyzer.Analyzer {
	switch t := tool.(type) {
	case *taint.Engine:
		return t.WithRecorder(rec)
	case *rips.Engine:
		return t.WithRecorder(rec)
	case *pixy.Engine:
		return t.WithRecorder(rec)
	default:
		return tool
	}
}
