package eval

import (
	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/pixy"
	"repro/internal/rips"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// DefaultTools returns the paper's three tools in presentation order:
// phpSAFE with its out-of-the-box WordPress configuration (§III.A), RIPS
// with its generic-PHP knowledge, and Pixy frozen in 2007.
func DefaultTools() []analyzer.Analyzer {
	return []analyzer.Analyzer{
		taint.New(wordpress.Compiled(), taint.DefaultOptions()),
		rips.NewDefault(),
		pixy.New(),
	}
}

// EvaluateCorpus runs the default tools over a corpus and matches the
// results against its labels.
func EvaluateCorpus(c *corpus.Corpus) (*Evaluation, error) {
	runs := make([]*ToolRun, 0, 3)
	for _, tool := range DefaultTools() {
		run, err := Run(tool, c)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return Evaluate(c, runs), nil
}
