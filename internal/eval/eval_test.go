package eval

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/corpus"
)

// evaluations are expensive; compute them once for the package.
var (
	evalOnce sync.Once
	ev2012   *Evaluation
	ev2014   *Evaluation
)

// evals returns the cached 2012/2014 evaluations.
func evals(t *testing.T) (*Evaluation, *Evaluation) {
	t.Helper()
	evalOnce.Do(func() {
		c12, c14 := corpus.MustGenerate()
		var err error
		if ev2012, err = EvaluateCorpusContext(context.Background(), c12, EvalOptions{}); err != nil {
			t.Fatalf("evaluate 2012: %v", err)
		}
		if ev2014, err = EvaluateCorpusContext(context.Background(), c14, EvalOptions{}); err != nil {
			t.Fatalf("evaluate 2014: %v", err)
		}
	})
	if ev2012 == nil || ev2014 == nil {
		t.Fatal("evaluation failed in an earlier test")
	}
	return ev2012, ev2014
}

// TestTableIRanking asserts the paper's headline result: phpSAFE
// outperforms RIPS, which outperforms Pixy, on every Table I metric, in
// both corpus versions.
func TestTableIRanking(t *testing.T) {
	e12, e14 := evals(t)
	for _, ev := range []*Evaluation{e12, e14} {
		php := ev.Tool("phpSAFE").Global
		rips := ev.Tool("RIPS").Global
		pixy := ev.Tool("Pixy").Global

		if !(php.TP > rips.TP && rips.TP > pixy.TP) {
			t.Errorf("%s: TP ranking broken: phpSAFE=%d RIPS=%d Pixy=%d",
				ev.Corpus.Version, php.TP, rips.TP, pixy.TP)
		}
		if !(php.Precision() > rips.Precision() && rips.Precision() > pixy.Precision()) {
			t.Errorf("%s: precision ranking broken: %.2f %.2f %.2f",
				ev.Corpus.Version, php.Precision(), rips.Precision(), pixy.Precision())
		}
		if !(php.Recall() > rips.Recall() && rips.Recall() > pixy.Recall()) {
			t.Errorf("%s: recall ranking broken: %.2f %.2f %.2f",
				ev.Corpus.Version, php.Recall(), rips.Recall(), pixy.Recall())
		}
		if !(php.FScore() > rips.FScore() && rips.FScore() > pixy.FScore()) {
			t.Errorf("%s: F-score ranking broken: %.2f %.2f %.2f",
				ev.Corpus.Version, php.FScore(), rips.FScore(), pixy.FScore())
		}
	}
}

// TestOnlyPhpSAFEDetectsSQLi asserts the paper's §V.A observation that
// phpSAFE was the only tool able to detect SQLi correctly.
func TestOnlyPhpSAFEDetectsSQLi(t *testing.T) {
	e12, e14 := evals(t)
	for _, ev := range []*Evaluation{e12, e14} {
		if got := ev.Tool("phpSAFE").ByClass[analyzer.SQLi].TP; got == 0 {
			t.Errorf("%s: phpSAFE found no SQLi", ev.Corpus.Version)
		}
		if got := ev.Tool("RIPS").ByClass[analyzer.SQLi].TP; got != 0 {
			t.Errorf("%s: RIPS found %d SQLi, want 0", ev.Corpus.Version, got)
		}
		if got := ev.Tool("Pixy").ByClass[analyzer.SQLi].TP; got != 0 {
			t.Errorf("%s: Pixy found %d SQLi, want 0", ev.Corpus.Version, got)
		}
	}
	// phpSAFE's SQLi recall is 100% under the paper's optimistic FN.
	if r := e12.Tool("phpSAFE").ByClass[analyzer.SQLi].Recall(); r != 1 {
		t.Errorf("2012 phpSAFE SQLi recall = %.2f, want 1.00", r)
	}
}

// TestOnlyPhpSAFEDetectsOOP asserts §V.A: "RIPS and Pixy were not able to
// detect any vulnerability of this kind" (WordPress-object).
func TestOnlyPhpSAFEDetectsOOP(t *testing.T) {
	e12, e14 := evals(t)
	for _, ev := range []*Evaluation{e12, e14} {
		phpOOP := 0
		for _, g := range ev.Corpus.Truths {
			if !g.OOP {
				continue
			}
			if ev.Tool("phpSAFE").Detected[g.ID] {
				phpOOP++
			}
			if ev.Tool("RIPS").Detected[g.ID] {
				t.Errorf("%s: RIPS detected OOP vuln %s", ev.Corpus.Version, g.ID)
			}
			if ev.Tool("Pixy").Detected[g.ID] {
				t.Errorf("%s: Pixy detected OOP vuln %s", ev.Corpus.Version, g.ID)
			}
		}
		if phpOOP < 140 {
			t.Errorf("%s: phpSAFE OOP detections = %d, want >= 140", ev.Corpus.Version, phpOOP)
		}
	}
}

// TestRIPSImproves2014 asserts the §V.A observation of RIPS's large XSS
// detection increase from 2012 to 2014 (the paper reports 115%), driven
// partly by files phpSAFE was unable to parse.
func TestRIPSImproves2014(t *testing.T) {
	e12, e14 := evals(t)
	tp12 := e12.Tool("RIPS").ByClass[analyzer.XSS].TP
	tp14 := e14.Tool("RIPS").ByClass[analyzer.XSS].TP
	growth := float64(tp14-tp12) / float64(tp12)
	if growth < 0.6 {
		t.Errorf("RIPS XSS growth = %.0f%%, want >= 60%% (paper: 115%%)", growth*100)
	}
}

// TestPixyDeclines2014 asserts Pixy's decline as plugins adopt OOP.
func TestPixyDeclines2014(t *testing.T) {
	e12, e14 := evals(t)
	tp12 := e12.Tool("Pixy").Global.TP
	tp14 := e14.Tool("Pixy").Global.TP
	if tp14 >= tp12 {
		t.Errorf("Pixy TP 2012=%d 2014=%d, want a decline", tp12, tp14)
	}
}

// TestPixyRegisterGlobalsShare asserts §V.A: about half of Pixy's found
// vulnerabilities come from the register_globals directive.
func TestPixyRegisterGlobalsShare(t *testing.T) {
	e12, _ := evals(t)
	pixy := e12.Tool("Pixy")
	rg := 0
	for _, g := range e12.Corpus.Truths {
		if g.RegisterGlobals && pixy.Detected[g.ID] {
			rg++
		}
	}
	share := float64(rg) / float64(len(pixy.Detected))
	if share < 0.15 || share > 0.65 {
		t.Errorf("Pixy register_globals share = %.2f, want roughly half", share)
	}
}

// TestVulnGrowth asserts Fig. 2's +51% two-year growth in distinct
// vulnerabilities.
func TestVulnGrowth(t *testing.T) {
	e12, e14 := evals(t)
	u12 := e12.ComputeOverlap().Union
	u14 := e14.ComputeOverlap().Union
	growth := float64(u14-u12) / float64(u12)
	if growth < 0.40 || growth > 0.62 {
		t.Errorf("union growth = %.0f%%, want ≈ 51%%", growth*100)
	}
}

// TestOverlapStructure asserts Fig. 2's qualitative structure: every tool
// contributes detections the others miss.
func TestOverlapStructure(t *testing.T) {
	_, e14 := evals(t)
	ov := e14.ComputeOverlap()
	if ov.Regions["phpSAFE"] == 0 {
		t.Error("no phpSAFE-only detections")
	}
	if ov.Regions["RIPS"] == 0 {
		t.Error("no RIPS-only detections (huge-file region missing)")
	}
	if ov.Regions["Pixy"] == 0 {
		t.Error("no Pixy-only detections (register_globals region missing)")
	}
	if ov.Regions["phpSAFE+RIPS"] == 0 {
		t.Error("no phpSAFE+RIPS shared region")
	}
	if ov.Regions["phpSAFE+RIPS+Pixy"] == 0 {
		t.Error("no all-three shared region")
	}
}

// TestTableIIShape asserts Table II's qualitative shape over detected
// vulnerabilities: DB dominates, direct manipulation second, files a
// small tail.
func TestTableIIShape(t *testing.T) {
	_, e14 := evals(t)
	vb := e14.ComputeVectors()
	if vb.DB <= vb.Direct {
		t.Errorf("DB (%d) should dominate direct (%d)", vb.DB, vb.Direct)
	}
	if vb.Indirect >= vb.Direct {
		t.Errorf("file/function/array (%d) should be the smallest class", vb.Indirect)
	}
	total := vb.DB + vb.Direct + vb.Indirect
	dbShare := float64(vb.DB) / float64(total)
	if dbShare < 0.5 || dbShare > 0.75 {
		t.Errorf("DB share = %.2f, want ≈ 0.62", dbShare)
	}
	if vb.NumericShare < 0.30 || vb.NumericShare > 0.50 {
		t.Errorf("numeric share = %.2f, want ≈ 0.39", vb.NumericShare)
	}
}

// TestInertiaShape asserts §V.D: ≈42% of 2014 vulnerabilities persist
// from 2012, and ≈24% of those are easy to exploit.
func TestInertiaShape(t *testing.T) {
	_, e14 := evals(t)
	in := e14.ComputeInertia()
	if s := in.PersistShare(); s < 0.33 || s > 0.50 {
		t.Errorf("persist share = %.2f, want ≈ 0.42", s)
	}
	if s := in.EasyShare(); s < 0.15 || s > 0.40 {
		t.Errorf("easy share = %.2f, want ≈ 0.24", s)
	}
}

// TestRobustnessAccounting asserts §V.E: phpSAFE fails 1 file in 2012 and
// 3 in 2014; Pixy fails OOP files and raises errors; RIPS completes
// everything.
func TestRobustnessAccounting(t *testing.T) {
	e12, e14 := evals(t)
	if got := e12.Tool("phpSAFE").FilesFailed; got != 1 {
		t.Errorf("2012 phpSAFE failed files = %d, want 1", got)
	}
	if got := e14.Tool("phpSAFE").FilesFailed; got != 3 {
		t.Errorf("2014 phpSAFE failed files = %d, want 3", got)
	}
	if got := e12.Tool("RIPS").FilesFailed + e14.Tool("RIPS").FilesFailed; got != 0 {
		t.Errorf("RIPS failed files = %d, want 0", got)
	}
	if got := e14.Tool("Pixy").FilesFailed; got < 20 {
		t.Errorf("2014 Pixy failed files = %d, want many (OOP files)", got)
	}
	if got := e14.Tool("Pixy").ErrorCount; got == 0 {
		t.Error("2014 Pixy should raise error messages")
	}
}

// TestNoUnplannedFalsePositives asserts the corpus discipline: every
// reported finding matches either a seeded vulnerability or a seeded
// trap, so the metrics are fully explained by the generator's labels.
func TestNoUnplannedFalsePositives(t *testing.T) {
	e12, e14 := evals(t)
	for _, ev := range []*Evaluation{e12, e14} {
		for _, tm := range ev.Tools {
			if tm.UnplannedFP != 0 {
				t.Errorf("%s %s: %d unplanned false positives",
					ev.Corpus.Version, tm.Tool, tm.UnplannedFP)
			}
		}
	}
}

// TestFalsePositiveAttribution asserts each tool's FPs come from the
// blind spots the paper attributes to it.
func TestFalsePositiveAttribution(t *testing.T) {
	e12, _ := evals(t)
	php := e12.Tool("phpSAFE")
	if php.TrapFP["esc-html"] != 0 || php.TrapFP["included-var"] != 0 {
		t.Errorf("phpSAFE should not trip WordPress-sanitizer or include traps: %v", php.TrapFP)
	}
	if php.TrapFP["numeric-guard"] == 0 || php.TrapFP["preg-whitelist"] == 0 {
		t.Errorf("phpSAFE FPs should come from guards and regex cleaners: %v", php.TrapFP)
	}
	rips := e12.Tool("RIPS")
	if rips.TrapFP["numeric-guard"] != 0 || rips.TrapFP["preg-whitelist"] != 0 {
		t.Errorf("RIPS simulates guards and regex whitelists: %v", rips.TrapFP)
	}
	if rips.TrapFP["esc-html"] == 0 {
		t.Errorf("RIPS FPs should come from unknown WordPress sanitizers: %v", rips.TrapFP)
	}
	pixy := e12.Tool("Pixy")
	if pixy.TrapFP["included-var"] == 0 {
		t.Errorf("Pixy FPs should be dominated by included-var suspicion: %v", pixy.TrapFP)
	}
	if pixy.TrapFP["prepared-query"] != 0 {
		t.Errorf("nobody should flag prepared queries: %v", pixy.TrapFP)
	}
}

// TestMetricsArithmetic sanity-checks Counts math.
func TestMetricsArithmetic(t *testing.T) {
	t.Parallel()
	c := Counts{TP: 80, FP: 20, FN: 20}
	if p := c.Precision(); p != 0.8 {
		t.Errorf("precision = %v, want 0.8", p)
	}
	if r := c.Recall(); r != 0.8 {
		t.Errorf("recall = %v, want 0.8", r)
	}
	if f := c.FScore(); f < 0.79 || f > 0.81 {
		t.Errorf("f-score = %v, want 0.8", f)
	}
	var zero Counts
	if zero.Precision() != -1 || zero.Recall() != -1 || zero.FScore() != -1 {
		t.Error("zero counts should yield undefined metrics")
	}
}

// TestEvaluateEmptyRuns ensures Evaluate tolerates empty input.
func TestEvaluateEmptyRuns(t *testing.T) {
	t.Parallel()
	c := &corpus.Corpus{Version: corpus.V2012}
	ev := Evaluate(c, nil)
	if len(ev.Tools) != 0 || len(ev.UnionDetected) != 0 {
		t.Error("empty evaluation should be empty")
	}
}

// TestSummaryJSON checks the machine-readable export carries the same
// numbers as the metric structs.
func TestSummaryJSON(t *testing.T) {
	e12, _ := evals(t)
	data, err := e12.MarshalSummary()
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := jsonUnmarshal(data, &s); err != nil {
		t.Fatalf("invalid summary JSON: %v", err)
	}
	if s.Version != "2012" {
		t.Errorf("version = %q", s.Version)
	}
	if len(s.Tools) != 3 {
		t.Fatalf("tools = %d, want 3", len(s.Tools))
	}
	php := s.Tools[0]
	if php.Tool != "phpSAFE" || php.Global.TP != e12.Tool("phpSAFE").Global.TP {
		t.Errorf("phpSAFE summary = %+v", php.Global)
	}
	if php.ByClass["SQLi"].TP != e12.Tool("phpSAFE").ByClass[analyzer.SQLi].TP {
		t.Errorf("SQLi by-class mismatch")
	}
	if s.Overlap.Union != len(e12.UnionDetected) {
		t.Errorf("overlap union = %d", s.Overlap.Union)
	}
	if s.Vectors["DB"] == 0 {
		t.Error("vectors missing DB row")
	}
	if s.Corpus.Plugins != 35 {
		t.Errorf("corpus plugins = %d", s.Corpus.Plugins)
	}
}

// jsonUnmarshal wraps encoding/json for the summary test.
func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }
