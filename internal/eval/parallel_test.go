package eval

import (
	"testing"

	"repro/internal/corpus"
)

// TestParallelMatchesSerial verifies the worker-pool runner produces the
// identical detection outcome as the serial path (and, under -race,
// that the engines really are safe for concurrent use on distinct
// targets).
func TestParallelMatchesSerial(t *testing.T) {
	serial, _ := evals(t)

	c12, _ := corpus.MustGenerate()
	parallel, err := EvaluateCorpusParallel(c12, 4)
	if err != nil {
		t.Fatal(err)
	}

	for _, tm := range serial.Tools {
		pm := parallel.Tool(tm.Tool)
		if pm == nil {
			t.Fatalf("%s missing from parallel evaluation", tm.Tool)
		}
		if pm.Global.TP != tm.Global.TP || pm.Global.FP != tm.Global.FP {
			t.Errorf("%s: parallel (TP=%d FP=%d) != serial (TP=%d FP=%d)",
				tm.Tool, pm.Global.TP, pm.Global.FP, tm.Global.TP, tm.Global.FP)
		}
		if len(pm.Detected) != len(tm.Detected) {
			t.Errorf("%s: detected sets differ: %d vs %d",
				tm.Tool, len(pm.Detected), len(tm.Detected))
		}
		for id := range tm.Detected {
			if !pm.Detected[id] {
				t.Errorf("%s: parallel run missed %s", tm.Tool, id)
			}
		}
	}
}

// TestParallelWorkerDefaults checks the zero-worker default.
func TestParallelWorkerDefaults(t *testing.T) {
	c12, _ := corpus.MustGenerate()
	run, err := RunParallel(DefaultTools()[1], c12, 0) // RIPS: cheapest
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != len(c12.Targets) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(c12.Targets))
	}
	for i, res := range run.Results {
		if res == nil {
			t.Fatalf("result %d is nil", i)
		}
	}
}
