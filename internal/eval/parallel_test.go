package eval

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/obs"
)

// TestParallelMatchesSerial verifies the worker-pool runner produces the
// identical detection outcome as the serial path (and, under -race,
// that the engines really are safe for concurrent use on distinct
// targets).
func TestParallelMatchesSerial(t *testing.T) {
	serial, _ := evals(t)

	c12, _ := corpus.MustGenerate()
	parallel, err := EvaluateCorpusContext(context.Background(), c12, EvalOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	for _, tm := range serial.Tools {
		pm := parallel.Tool(tm.Tool)
		if pm == nil {
			t.Fatalf("%s missing from parallel evaluation", tm.Tool)
		}
		if pm.Global.TP != tm.Global.TP || pm.Global.FP != tm.Global.FP {
			t.Errorf("%s: parallel (TP=%d FP=%d) != serial (TP=%d FP=%d)",
				tm.Tool, pm.Global.TP, pm.Global.FP, tm.Global.TP, tm.Global.FP)
		}
		if len(pm.Detected) != len(tm.Detected) {
			t.Errorf("%s: detected sets differ: %d vs %d",
				tm.Tool, len(pm.Detected), len(tm.Detected))
		}
		for id := range tm.Detected {
			if !pm.Detected[id] {
				t.Errorf("%s: parallel run missed %s", tm.Tool, id)
			}
		}
	}
}

// TestParallelWorkerDefaults checks the zero-worker default.
func TestParallelWorkerDefaults(t *testing.T) {
	c12, _ := corpus.MustGenerate()
	// Workers < 0 means GOMAXPROCS; RIPS is the cheapest tool.
	run, err := Run(context.Background(), DefaultTools()[1], c12, Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != len(c12.Targets) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(c12.Targets))
	}
	for i, res := range run.Results {
		if res == nil {
			t.Fatalf("result %d is nil", i)
		}
	}
}

// flakyTool fails on plugin names with a given prefix; everything else
// succeeds with an empty result.
type flakyTool struct {
	failPrefix string
	calls      atomic.Int64
}

func (f *flakyTool) Name() string { return "flaky" }

func (f *flakyTool) AnalyzeContext(ctx context.Context, target *analyzer.Target, _ *analyzer.ScanOptions) (*analyzer.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.calls.Add(1)
	if strings.HasPrefix(target.Name, f.failPrefix) {
		return nil, fmt.Errorf("induced failure on %s", target.Name)
	}
	return &analyzer.Result{Tool: f.Name(), Target: target.Name}, nil
}

// failCorpus builds a synthetic corpus with the given plugin names.
func failCorpus(names ...string) *corpus.Corpus {
	c := &corpus.Corpus{}
	for _, name := range names {
		c.Targets = append(c.Targets, &analyzer.Target{Name: name})
	}
	return c
}

// TestParallelJoinsAllErrors verifies the drain fix: a sweep failing on
// several plugins reports every failure (joined), not an arbitrary first
// one, and still returns the partial run with Duration set.
func TestParallelJoinsAllErrors(t *testing.T) {
	c := failCorpus("bad-one", "good-one", "bad-two", "good-two", "bad-three")
	tool := &flakyTool{failPrefix: "bad-"}

	run, err := Run(context.Background(), tool, c, Options{Workers: 3})
	if err == nil {
		t.Fatal("want error, got nil")
	}
	for _, want := range []string{"bad-one", "bad-two", "bad-three"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %s: %v", want, err)
		}
	}
	if run == nil {
		t.Fatal("partial run is nil")
	}
	if run.Duration <= 0 {
		t.Error("run.Duration not set on error return")
	}
	if got := tool.calls.Load(); got != int64(len(c.Targets)) {
		t.Errorf("analyzed %d plugins, want all %d", got, len(c.Targets))
	}
	// Successful plugins keep their slots in the partial run.
	good := 0
	for _, res := range run.Results {
		if res != nil {
			good++
		}
	}
	if good != 2 {
		t.Errorf("partial run has %d results, want 2", good)
	}
}

// TestSerialDurationOnError checks the serial path's early error return
// also stamps Duration.
func TestSerialDurationOnError(t *testing.T) {
	c := failCorpus("bad-only")
	run, err := Run(context.Background(), &flakyTool{failPrefix: "bad-"}, c, Options{})
	if err == nil {
		t.Fatal("want error, got nil")
	}
	if run == nil || run.Duration <= 0 {
		t.Fatalf("partial run missing Duration: %+v", run)
	}
}

// TestRunContextCancellation checks the single Run entry point refuses
// to analyze under a dead context: the harness pre-checks ctx before
// dispatching each plugin, so no engine work starts.
func TestRunContextCancellation(t *testing.T) {
	c := failCorpus("p1", "p2", "p3")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run, err := Run(ctx, &flakyTool{failPrefix: "none"}, c, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep err = %v, want context.Canceled", err)
	}
	if run == nil || len(run.Results) != 0 {
		t.Errorf("cancelled sweep still produced results: %+v", run)
	}
}

// TestRunProgressAndMetrics exercises the harness-level
// instrumentation: progress callbacks fire once per plugin (serially
// observable thanks to the callback mutex) and the recorder accumulates
// per-plugin spans plus queue-wait samples under the worker pool.
func TestRunProgressAndMetrics(t *testing.T) {
	c := failCorpus("p1", "p2", "p3", "p4")
	rec := obs.NewRecorder()
	seen := map[string]bool{}
	maxDone := 0
	run, err := Run(context.Background(), &flakyTool{failPrefix: "none"}, c, Options{
		Workers:  2,
		Recorder: rec,
		Progress: func(ev Progress) {
			seen[ev.Plugin] = true
			if ev.Done > maxDone {
				maxDone = ev.Done
			}
			if ev.Total != len(c.Targets) {
				t.Errorf("Total = %d, want %d", ev.Total, len(c.Targets))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(c.Targets) || maxDone != len(c.Targets) {
		t.Errorf("progress: saw %d plugins (maxDone %d), want %d", len(seen), maxDone, len(c.Targets))
	}
	if run.Duration <= 0 {
		t.Error("Duration not set")
	}
	snap := rec.Snapshot()
	if got := snap.Counters["eval_plugins_total"]; got != int64(len(c.Targets)) {
		t.Errorf("eval_plugins_total = %d, want %d", got, len(c.Targets))
	}
	if hs, ok := snap.Histograms["eval_plugin_seconds"]; !ok || hs.Count != int64(len(c.Targets)) {
		t.Errorf("eval_plugin_seconds count wrong: %+v", snap.Histograms["eval_plugin_seconds"])
	}
	if hs, ok := snap.Histograms["eval_queue_wait_seconds"]; !ok || hs.Count != int64(len(c.Targets)) {
		t.Errorf("eval_queue_wait_seconds count wrong: %+v", snap.Histograms["eval_queue_wait_seconds"])
	}
	if len(snap.Spans) != len(c.Targets) {
		t.Errorf("span roots = %d, want %d", len(snap.Spans), len(c.Targets))
	}
}
