package eval

import (
	"encoding/json"

	"repro/internal/analyzer"
)

// Summary is a machine-readable rendering of one corpus evaluation: every
// number behind the paper's Table I, Fig. 2 and Table II, in one JSON
// document. It exists so downstream pipelines (plotting, regression
// tracking) can consume the reproduction without scraping the ASCII
// tables.
type Summary struct {
	// Version is the corpus snapshot year.
	Version string `json:"version"`
	// Corpus describes the evaluated population.
	Corpus CorpusStats `json:"corpus"`
	// Tools holds one entry per analyzer, in run order.
	Tools []ToolSummary `json:"tools"`
	// Overlap is the Fig. 2 decomposition.
	Overlap OverlapSummary `json:"overlap"`
	// Vectors is the Table II row map over detected vulnerabilities.
	Vectors map[string]int `json:"vectors"`
	// NumericShare is the §V.C numeric-variable fraction.
	NumericShare float64 `json:"numeric_share"`
}

// CorpusStats describes the evaluated corpus.
type CorpusStats struct {
	Plugins         int `json:"plugins"`
	Files           int `json:"files"`
	Lines           int `json:"lines"`
	Vulnerabilities int `json:"vulnerabilities"`
	Traps           int `json:"traps"`
}

// ToolSummary is one tool's Table I row set.
type ToolSummary struct {
	Tool          string                   `json:"tool"`
	Global        CountsSummary            `json:"global"`
	ByClass       map[string]CountsSummary `json:"by_class"`
	DurationMS    float64                  `json:"duration_ms"`
	FilesAnalyzed int                      `json:"files_analyzed"`
	FilesFailed   int                      `json:"files_failed"`
	Errors        int                      `json:"errors"`
}

// CountsSummary carries a tally with its derived metrics (negative means
// undefined).
type CountsSummary struct {
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	FScore    float64 `json:"f_score"`
}

// OverlapSummary is the Fig. 2 data.
type OverlapSummary struct {
	Union   int            `json:"union"`
	Seeded  int            `json:"seeded"`
	Regions map[string]int `json:"regions"`
}

// Summarize builds the machine-readable summary of an evaluation.
func (ev *Evaluation) Summarize() Summary {
	s := Summary{
		Version: string(ev.Corpus.Version),
		Corpus: CorpusStats{
			Plugins:         len(ev.Corpus.Targets),
			Files:           ev.Corpus.Files(),
			Lines:           ev.Corpus.Lines(),
			Vulnerabilities: len(ev.Corpus.Truths),
			Traps:           len(ev.Corpus.Traps),
		},
		Vectors: make(map[string]int),
	}
	for _, tm := range ev.Tools {
		ts := ToolSummary{
			Tool:          tm.Tool,
			Global:        countsSummary(tm.Global),
			ByClass:       make(map[string]CountsSummary, len(tm.ByClass)),
			DurationMS:    float64(tm.Duration.Microseconds()) / 1000,
			FilesAnalyzed: tm.FilesAnalyzed,
			FilesFailed:   tm.FilesFailed,
			Errors:        tm.ErrorCount,
		}
		for _, class := range analyzer.Classes() {
			if c, ok := tm.ByClass[class]; ok {
				ts.ByClass[class.String()] = countsSummary(*c)
			}
		}
		s.Tools = append(s.Tools, ts)
	}
	ov := ev.ComputeOverlap()
	s.Overlap = OverlapSummary{Union: ov.Union, Seeded: ov.Seeded, Regions: ov.Regions}
	vb := ev.ComputeVectors()
	for row, n := range vb.Rows {
		s.Vectors[row] = n
	}
	s.NumericShare = vb.NumericShare
	return s
}

// countsSummary converts a Counts tally.
func countsSummary(c Counts) CountsSummary {
	return CountsSummary{
		TP: c.TP, FP: c.FP, FN: c.FN,
		Precision: c.Precision(), Recall: c.Recall(), FScore: c.FScore(),
	}
}

// MarshalSummary renders the evaluation summary as indented JSON.
func (ev *Evaluation) MarshalSummary() ([]byte, error) {
	return json.MarshalIndent(ev.Summarize(), "", "  ")
}
