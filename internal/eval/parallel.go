package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analyzer"
	"repro/internal/corpus"
)

// runParallel is the worker-pool implementation behind Run. Results
// keep corpus order, so Evaluate consumes them identically to the
// serial path; the recorded Duration is wall-clock, NOT comparable
// with a serial sweep's Table III timing. Every worker error is
// collected and returned joined; the partial run (with Duration set)
// accompanies a non-nil error so failed corpus sweeps are still
// inspectable.
func runParallel(ctx context.Context, tool analyzer.Analyzer, c *corpus.Corpus, opts Options) (*ToolRun, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rec := opts.Recorder
	rec.Gauge("eval_workers").Set(float64(workers))
	run := &ToolRun{
		Tool:    tool.Name(),
		Results: make([]*analyzer.Result, len(c.Targets)),
	}
	start := time.Now()

	type job struct {
		idx    int
		target *analyzer.Target
		// enqueued stamps submission time for the queue-wait histogram;
		// zero when no recorder is attached.
		enqueued time.Time
	}
	jobs := make(chan job)
	errs := make(chan error, len(c.Targets))

	// done serializes progress callbacks across workers.
	var progressMu sync.Mutex
	done := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if !j.enqueued.IsZero() {
					rec.Observe("eval_queue_wait_seconds", time.Since(j.enqueued).Seconds())
				}
				sp := rec.StartNamedSpan("plugin:", j.target.Name, nil)
				res, err := (*analyzer.Result)(nil), ctx.Err()
				if err == nil {
					res, err = tool.AnalyzeContext(ctx, j.target, opts.Budgets)
				}
				sp.EndAndObserve("eval_plugin_seconds")
				rec.Counter("eval_plugins_total").Inc()
				if err != nil {
					err = fmt.Errorf("eval: %s on %s: %w", tool.Name(), j.target.Name, err)
					errs <- err
				} else {
					run.Results[j.idx] = res
				}
				if opts.Progress != nil {
					progressMu.Lock()
					done++
					opts.Progress(Progress{
						Tool: tool.Name(), Plugin: j.target.Name,
						Done: done, Total: len(c.Targets), Err: err,
					})
					progressMu.Unlock()
				}
			}
		}()
	}
	for i, target := range c.Targets {
		j := job{idx: i, target: target}
		if rec != nil {
			j.enqueued = time.Now()
		}
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	close(errs)

	// Drain every worker error — a sweep that fails on several plugins
	// must report all of them, not an arbitrary first one.
	var all []error
	for err := range errs {
		all = append(all, err)
	}
	run.Duration = time.Since(start)
	if len(all) > 0 {
		return run, errors.Join(all...)
	}
	return run, nil
}
