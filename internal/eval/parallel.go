package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analyzer"
	"repro/internal/corpus"
)

// RunParallel executes a tool over every plugin of a corpus using a
// bounded worker pool. Results keep corpus order, so Evaluate consumes
// them identically to Run's output. The engines are documented as safe
// for concurrent use on distinct targets; this is the practical mode for
// auditing large plugin collections (the paper's §III integration story).
//
// The recorded Duration is wall-clock, so it is NOT comparable with the
// serial Run used for Table III.
func RunParallel(tool analyzer.Analyzer, c *corpus.Corpus, workers int) (*ToolRun, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	run := &ToolRun{
		Tool:    tool.Name(),
		Results: make([]*analyzer.Result, len(c.Targets)),
	}
	start := time.Now()

	type job struct {
		idx    int
		target *analyzer.Target
	}
	jobs := make(chan job)
	errs := make(chan error, len(c.Targets))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := tool.Analyze(j.target)
				if err != nil {
					errs <- fmt.Errorf("eval: %s on %s: %w", tool.Name(), j.target.Name, err)
					continue
				}
				run.Results[j.idx] = res
			}
		}()
	}
	for i, target := range c.Targets {
		jobs <- job{idx: i, target: target}
	}
	close(jobs)
	wg.Wait()
	close(errs)

	if err, ok := <-errs; ok {
		return nil, err
	}
	run.Duration = time.Since(start)
	return run, nil
}

// EvaluateCorpusParallel is EvaluateCorpus with a bounded worker pool per
// tool. Detection results are identical to the serial path; only the
// timings differ.
func EvaluateCorpusParallel(c *corpus.Corpus, workers int) (*Evaluation, error) {
	runs := make([]*ToolRun, 0, 3)
	for _, tool := range DefaultTools() {
		run, err := RunParallel(tool, c, workers)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return Evaluate(c, runs), nil
}
