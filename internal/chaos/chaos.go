// Package chaos is the deterministic fault-injection harness for the
// phpsafed fleet. A Schedule is a seeded plan of faults — dropped,
// delayed, and duplicated dispatches, heartbeat blackholes, worker
// kills, coordinator restarts, journal write errors — derived entirely
// from one int64, so any failure a chaos run finds reproduces from the
// printed seed.
//
// The package injects at two seams and owns only the first:
//
//   - Network faults run through Injector, an http.RoundTripper plugged
//     into fleet.Config.HTTPClient. It classifies each request by path
//     (dispatch vs heartbeat), matches it against the schedule's active
//     fault windows for that worker, and drops, delays, or duplicates
//     it. No fleet or server code knows it is being tested.
//
//   - Process faults (WorkerKill, CoordinatorRestart) and disk faults
//     (JournalError, via govern.IOFaultHookForTesting) cannot be
//     expressed as a RoundTripper; the schedule carries them
//     (Schedule.ProcessFaults) and the test driver executes them on its
//     own timeline.
//
// Determinism is about the plan, not the interleaving: goroutine
// scheduling still varies run to run, but the faults — their kinds,
// targets, onsets, and durations — are a pure function of the seed, so
// a failing seed replays the same adversary.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// FaultKind names one class of injected failure.
type FaultKind string

const (
	// DispatchDrop fails POST /internal/v1/scan to the target worker at
	// the transport layer — the coordinator sees a connection error, a
	// retryable miss.
	DispatchDrop FaultKind = "dispatch_drop"
	// DispatchDelay holds dispatches to the target worker for Dur before
	// letting them through — the slow-worker fault hedging exists for.
	DispatchDelay FaultKind = "dispatch_delay"
	// DispatchDup sends each dispatch to the target worker twice; the
	// duplicate's response is discarded. Worker-side content dedup and
	// the dispatch table must make this invisible.
	DispatchDup FaultKind = "dispatch_dup"
	// HeartbeatBlackhole fails GET /internal/v1/heartbeat to the target
	// worker while the window is open: the worker looks dead to the
	// monitor while still serving dispatches.
	HeartbeatBlackhole FaultKind = "heartbeat_blackhole"
	// WorkerKill hard-stops the target worker (in-flight scans
	// interrupted, listener gone) and reboots it on the same dispatch
	// journal after Dur. Driver-executed.
	WorkerKill FaultKind = "worker_kill"
	// CoordinatorRestart hard-stops the coordinator and reboots it on
	// the same scan journal: replay, adoption, and membership recovery
	// all on the line. Driver-executed.
	CoordinatorRestart FaultKind = "coordinator_restart"
	// JournalError makes the target worker's dispatch-journal writes
	// fail while the window is open (via govern.IOFaultHookForTesting),
	// degrading that journal to in-memory mode. Driver-installed.
	JournalError FaultKind = "journal_error"
)

// Fault is one scheduled injection. At is the onset relative to
// Injector.Start (the harness epoch); Dur is the window length for
// windowed kinds and the downtime for WorkerKill. Target is the worker
// index, or -1 for the coordinator.
type Fault struct {
	Kind   FaultKind
	Target int
	At     time.Duration
	Dur    time.Duration
}

func (f Fault) String() string {
	who := fmt.Sprintf("worker[%d]", f.Target)
	if f.Target < 0 {
		who = "coordinator"
	}
	return fmt.Sprintf("%s %s at=%s dur=%s", f.Kind, who, f.At, f.Dur)
}

// Schedule is a deterministic fault plan: the seed it was derived from
// and its faults in onset order.
type Schedule struct {
	Seed   int64
	Faults []Fault
}

// Schedule shape constants: fault count range, onset window, and
// duration range. Onsets start late enough for the corpus to be
// accepted and in flight, and end early enough that the post-fault
// settle wait dominates the run, not the fault tail.
const (
	minFaults  = 3
	maxFaults  = 7
	minOnset   = 100 * time.Millisecond
	onsetSpan  = 1100 * time.Millisecond
	minWindow  = 60 * time.Millisecond
	windowSpan = 240 * time.Millisecond
	// maxCoordRestarts bounds the most expensive fault per schedule so
	// run time stays predictable; extra draws degrade to DispatchDrop.
	maxCoordRestarts = 2
)

// NewSchedule derives the fault plan for a fleet of `workers` workers
// from seed. Two invariants hold for every seed: worker 0 is never
// process-killed (at least one worker always survives, so the
// settles-exactly-once property is satisfiable), and at most
// maxCoordRestarts coordinator restarts are drawn (run time stays
// bounded). Journal faults target only workers — a coordinator journal
// fault would legitimately lose accepted scans, which is durability's
// documented contract, not a chaos bug.
func NewSchedule(seed int64, workers int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	kinds := []FaultKind{
		DispatchDrop, DispatchDelay, DispatchDup,
		HeartbeatBlackhole, WorkerKill, CoordinatorRestart, JournalError,
	}
	n := minFaults + rng.Intn(maxFaults-minFaults+1)
	restarts := 0
	for i := 0; i < n; i++ {
		f := Fault{
			Kind: kinds[rng.Intn(len(kinds))],
			At:   minOnset + time.Duration(rng.Int63n(int64(onsetSpan))),
			Dur:  minWindow + time.Duration(rng.Int63n(int64(windowSpan))),
		}
		switch f.Kind {
		case WorkerKill:
			if workers < 2 {
				f.Kind = DispatchDrop // nobody is expendable
				f.Target = 0
				break
			}
			f.Target = 1 + rng.Intn(workers-1)
		case CoordinatorRestart:
			if restarts++; restarts > maxCoordRestarts {
				f.Kind = DispatchDrop
				f.Target = rng.Intn(workers)
				break
			}
			f.Target = -1
		default:
			f.Target = rng.Intn(workers)
		}
		s.Faults = append(s.Faults, f)
	}
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].At < s.Faults[j].At })
	return s
}

// ProcessFaults returns the driver-executed faults (worker kills,
// coordinator restarts) in onset order.
func (s Schedule) ProcessFaults() []Fault {
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind == WorkerKill || f.Kind == CoordinatorRestart {
			out = append(out, f)
		}
	}
	return out
}

// JournalFaults returns the disk faults in onset order.
func (s Schedule) JournalFaults() []Fault {
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind == JournalError {
			out = append(out, f)
		}
	}
	return out
}

// Injector is the network seam: an http.RoundTripper that applies the
// schedule's dispatch and heartbeat faults to matching requests and
// passes everything else through untouched.
type Injector struct {
	sched Schedule
	base  http.RoundTripper

	mu      sync.Mutex
	start   time.Time
	targets map[string]int // URL host → worker index
	fired   map[FaultKind]int
}

// NewInjector builds an injector over base (nil: the default
// transport). Bind worker hosts with BindTarget, then Start the clock.
func NewInjector(s Schedule, base http.RoundTripper) *Injector {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Injector{
		sched:   s,
		base:    base,
		targets: make(map[string]int),
		fired:   make(map[FaultKind]int),
	}
}

// BindTarget maps a worker's URL host ("127.0.0.1:41234") to its
// schedule index. Rebinding after a worker restart is allowed.
func (in *Injector) BindTarget(idx int, host string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.targets[host] = idx
}

// Start stamps the harness epoch; fault windows are offsets from it.
func (in *Injector) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.start = time.Now()
}

// Fired reports how many times faults of the given kind were applied
// to a request — the harness's visibility into whether a schedule's
// windows actually intersected traffic.
func (in *Injector) Fired(kind FaultKind) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[kind]
}

// RoundTrip applies any active fault window matching the request, then
// delegates to the base transport. Only the fleet-internal dispatch
// and heartbeat paths are ever touched; result polling, adoption
// queries, and client traffic pass through clean.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	var (
		drop, dup bool
		delay     time.Duration
		dropKind  FaultKind
	)
	in.mu.Lock()
	if !in.start.IsZero() {
		idx, known := in.targets[req.URL.Host]
		if known {
			elapsed := time.Since(in.start)
			dispatch := req.Method == http.MethodPost && strings.HasPrefix(req.URL.Path, "/internal/v1/scan")
			heartbeat := strings.HasPrefix(req.URL.Path, "/internal/v1/heartbeat")
			for _, f := range in.sched.Faults {
				if f.Target != idx || elapsed < f.At || elapsed > f.At+f.Dur {
					continue
				}
				switch {
				case f.Kind == DispatchDrop && dispatch:
					drop, dropKind = true, DispatchDrop
				case f.Kind == DispatchDelay && dispatch && f.Dur > delay:
					delay = f.Dur
				case f.Kind == DispatchDup && dispatch:
					dup = true
				case f.Kind == HeartbeatBlackhole && heartbeat:
					drop, dropKind = true, HeartbeatBlackhole
				}
			}
			if drop {
				in.fired[dropKind]++
			}
			if delay > 0 {
				in.fired[DispatchDelay]++
			}
			if dup {
				in.fired[DispatchDup]++
			}
		}
	}
	in.mu.Unlock()

	if drop {
		return nil, fmt.Errorf("chaos: %s injected for %s %s", dropKind, req.Method, req.URL)
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	if dup {
		if clone := cloneForDup(req); clone != nil {
			// Fire-and-forget duplicate: its response (or error) is
			// discarded. The fleet must tolerate the double delivery.
			go func() {
				if resp, err := in.base.RoundTrip(clone); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
	}
	return in.base.RoundTrip(req)
}

// cloneForDup copies a request with a replayable body, buffering the
// original's body so both copies can be sent. Returns nil when the
// body cannot be duplicated.
func cloneForDup(req *http.Request) *http.Request {
	clone := req.Clone(req.Context())
	if req.Body == nil {
		return clone
	}
	buf, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return nil
	}
	req.Body = io.NopCloser(bytes.NewReader(buf))
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(buf)), nil
	}
	clone.Body = io.NopCloser(bytes.NewReader(buf))
	clone.GetBody = req.GetBody
	clone.ContentLength = int64(len(buf))
	return clone
}
