// The chaos property test: a coordinator + 3-worker fleet, built from
// the same pieces phpsafed wires in main, runs a fixed scan corpus
// while a seeded fault schedule drops, delays, and duplicates
// dispatches, blackholes heartbeats, kills and reboots workers,
// restarts the coordinator, and fails journal writes. The property:
// every accepted scan settles done exactly once, with a result
// byte-identical to a standalone daemon's, under every schedule.
//
// Seeds come from CHAOS_SEED (pin one schedule) or CHAOS_SCHEDULES
// (how many sequential seeds to run; default 4, CI runs 20). Every
// failure message carries the seed, so any red run reproduces with
//
//	CHAOS_SEED=<n> go test -race -run TestChaosProperty ./internal/chaos/
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/govern"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
	"repro/internal/server"
)

const (
	nWorkers   = 3
	corpusSize = 10
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// chunkyPHP generates a vulnerable plugin big enough that its scan
// spans fault windows instead of finishing before they open.
func chunkyPHP(name string, blocks int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<?php\n// chaos corpus: %s\n", name)
	for i := 0; i < blocks; i++ {
		fmt.Fprintf(&b, "$in%d = $_GET['p%d'];\n", i, i)
		fmt.Fprintf(&b, "$mid%d = 'x' . $in%d;\n", i, i)
		fmt.Fprintf(&b, "echo 'row' . $mid%d;\n", i)
		fmt.Fprintf(&b, "mysql_query(\"SELECT * FROM t WHERE c='\" . $mid%d . \"'\");\n", i)
	}
	return b.String()
}

type corpusItem struct{ name, php string }

func corpus() []corpusItem {
	items := make([]corpusItem, 0, corpusSize)
	for i := 0; i < corpusSize; i++ {
		name := fmt.Sprintf("chaos%02d", i)
		items = append(items, corpusItem{name: name, php: chunkyPHP(name, 150)})
	}
	return items
}

// scanView is the envelope slice the property asserts on; Result stays
// raw for byte-identity.
type scanView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Worker string          `json:"worker"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

func settledStatus(s string) bool {
	switch s {
	case "done", "failed", "cancelled", "quarantined":
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Disk-fault seam. govern.IOFaultHookForTesting is a plain global read
// by every journal in the process, so it is installed exactly once for
// the whole test binary and never uninstalled — a job goroutine
// lingering past one schedule's teardown must not race a hook rewrite.
// The hook itself reads the active windows under a mutex; between
// schedules the window set is swapped, not the hook.

type journalWindow struct {
	dir       string
	at, until time.Duration
}

var (
	journalHookOnce     sync.Once
	journalFaultMu      sync.Mutex
	journalFaultEpoch   time.Time
	journalFaultWindows []journalWindow
)

func installJournalFaultHook() {
	journalHookOnce.Do(func() {
		govern.IOFaultHookForTesting = func(op, path string) error {
			journalFaultMu.Lock()
			defer journalFaultMu.Unlock()
			if journalFaultEpoch.IsZero() {
				return nil
			}
			elapsed := time.Since(journalFaultEpoch)
			for _, w := range journalFaultWindows {
				if elapsed >= w.at && elapsed <= w.until && strings.Contains(path, w.dir) {
					return fmt.Errorf("chaos: injected journal %s failure", op)
				}
			}
			return nil
		}
	})
}

func setJournalWindows(sched Schedule, epoch time.Time, dirs []string) {
	journalFaultMu.Lock()
	defer journalFaultMu.Unlock()
	journalFaultEpoch = epoch
	journalFaultWindows = nil
	for _, f := range sched.JournalFaults() {
		if f.Target >= 0 && f.Target < len(dirs) {
			journalFaultWindows = append(journalFaultWindows,
				journalWindow{dir: dirs[f.Target], at: f.At, until: f.At + f.Dur})
		}
	}
}

func clearJournalWindows() {
	journalFaultMu.Lock()
	defer journalFaultMu.Unlock()
	journalFaultEpoch = time.Time{}
	journalFaultWindows = nil
}

// ---------------------------------------------------------------------------
// Worker process. A stable httptest front door whose backend handler
// is swappable: kill() aborts every request at the transport layer
// (the coordinator sees connection errors, exactly like a SIGKILLed
// process behind a dead port) and hard-stops the pool so in-flight
// scans are interrupted un-settled; boot() rebuilds the full stack on
// the same dispatch-journal directory and replays it.

type workerProc struct {
	t   *testing.T
	idx int
	dir string
	url string

	front *httptest.Server

	mu   sync.Mutex
	h    http.Handler
	pool *jobs.Pool
	jrnl *durable.Journal
}

func newWorkerProc(t *testing.T, idx int) *workerProc {
	t.Helper()
	wp := &workerProc{t: t, idx: idx, dir: t.TempDir()}
	wp.front = httptest.NewServer(http.HandlerFunc(wp.serve))
	wp.url = wp.front.URL
	wp.boot()
	return wp
}

func (wp *workerProc) serve(w http.ResponseWriter, r *http.Request) {
	wp.mu.Lock()
	h := wp.h
	wp.mu.Unlock()
	if h == nil {
		panic(http.ErrAbortHandler) // dead process: abort the connection
	}
	h.ServeHTTP(w, r)
}

func (wp *workerProc) boot() {
	wp.t.Helper()
	rec := obs.NewRecorder()
	var (
		jrnl    *durable.Journal
		records []durable.Record
		err     error
	)
	// A reboot can land inside this worker's own journal-fault window;
	// a real process would crash-loop until the disk heals, so retry.
	for attempt := 0; ; attempt++ {
		jrnl, records, err = durable.Open(wp.dir, durable.Options{Recorder: rec, Logger: quietLogger()})
		if err == nil {
			break
		}
		if attempt >= 20 {
			wp.t.Fatalf("worker[%d] journal never reopened: %v", wp.idx, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	pool := jobs.New(jobs.Config{Workers: 2, QueueSize: 64, Recorder: rec})
	wk := fleet.NewWorker(fleet.WorkerConfig{
		Advertise: wp.url, Journal: jrnl, Recorder: rec, Logger: quietLogger(),
	})
	api := server.New(server.Config{
		Pool:     pool,
		Cache:    scancache.New(1<<20, rec),
		Recorder: rec,
		Retry:    jobs.RetryPolicy{MaxAttempts: 1},
		OnSettle: wk.OnSettle,
		Logger:   quietLogger(),
	})
	wk.Bind(api, pool)
	wk.Replay(records)

	wp.mu.Lock()
	wp.h = wk.Handler()
	wp.pool = pool
	wp.jrnl = jrnl
	wp.mu.Unlock()
}

// kill hard-stops the worker: requests abort, running scans are
// interrupted before they settle, the dispatch journal keeps its open
// records for the reboot's replay.
func (wp *workerProc) kill() {
	wp.mu.Lock()
	pool, jrnl := wp.pool, wp.jrnl
	wp.h, wp.pool, wp.jrnl = nil, nil, nil
	wp.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if pool != nil {
		pool.Shutdown(ctx)
	}
	if jrnl != nil {
		jrnl.Close()
	}
}

func (wp *workerProc) shutdown() {
	wp.front.Close()
	wp.mu.Lock()
	pool, jrnl := wp.pool, wp.jrnl
	wp.h, wp.pool, wp.jrnl = nil, nil, nil
	wp.mu.Unlock()
	if pool != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		pool.Shutdown(ctx)
		cancel()
	}
	if jrnl != nil {
		jrnl.Close()
	}
}

// ---------------------------------------------------------------------------
// Coordinator process: same swappable front door, full server + fleet
// stack, scan journal on a stable directory so restart() exercises
// replay and adoption.

type coordProc struct {
	t          *testing.T
	dir        string
	workerURLs []string
	inj        *Injector

	front *httptest.Server

	mu   sync.Mutex
	h    http.Handler
	pool *jobs.Pool
	fl   *fleet.Fleet
	jrnl *durable.Journal
}

func newCoordProc(t *testing.T, workerURLs []string, inj *Injector) *coordProc {
	t.Helper()
	cp := &coordProc{t: t, dir: t.TempDir(), workerURLs: workerURLs, inj: inj}
	cp.front = httptest.NewServer(http.HandlerFunc(cp.serve))
	cp.boot()
	return cp
}

func (cp *coordProc) serve(w http.ResponseWriter, r *http.Request) {
	cp.mu.Lock()
	h := cp.h
	cp.mu.Unlock()
	if h == nil {
		panic(http.ErrAbortHandler)
	}
	h.ServeHTTP(w, r)
}

func (cp *coordProc) boot() {
	cp.t.Helper()
	rec := obs.NewRecorder()
	jrnl, records, err := durable.Open(cp.dir, durable.Options{Recorder: rec, Logger: quietLogger()})
	if err != nil {
		cp.t.Fatalf("coordinator journal: %v", err)
	}
	pool := jobs.New(jobs.Config{Workers: 8, QueueSize: 64, Recorder: rec})

	members := append([]string(nil), cp.workerURLs...)
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		seen[m] = true
	}
	for _, m := range fleet.MembersFromRecords(records) {
		if !seen[m] {
			seen[m] = true
			members = append(members, m)
		}
	}
	// The retry budget is deliberately generous: every schedule's chaos
	// is bounded (faults end ~1.6s in), so the property demands the
	// fleet heal afterward — a budget that dies inside the fault window
	// would quarantine scans the design can save. ~25 attempts at a
	// 250ms cap gives the coordinator ~5s of runway past the last fault.
	fl := fleet.New(fleet.Config{
		Workers:           members,
		HeartbeatInterval: 60 * time.Millisecond,
		SuspectAfter:      1,
		DeadAfter:         3,
		ReviveAfter:       2,
		HedgeDelay:        60 * time.Millisecond,
		ReconnectBackoff:  jobs.RetryPolicy{Base: 20 * time.Millisecond, Cap: 120 * time.Millisecond},
		Journal:           jrnl,
		Recorder:          rec,
		Logger:            quietLogger(),
		HTTPClient:        &http.Client{Transport: cp.inj},
	})
	api := server.New(server.Config{
		Pool:             pool,
		Cache:            scancache.New(1<<20, rec),
		Recorder:         rec,
		Journal:          jrnl,
		Retry:            jobs.RetryPolicy{MaxAttempts: 25, Base: 15 * time.Millisecond, Cap: 250 * time.Millisecond},
		Dispatch:         fl.Dispatch,
		FleetStatus:      fl.Status,
		ExtraLiveRecords: fl.MemberRecords,
		Logger:           quietLogger(),
	})
	api.Replay(records)
	fl.Start()

	cp.mu.Lock()
	cp.h = api
	cp.pool = pool
	cp.fl = fl
	cp.jrnl = jrnl
	cp.mu.Unlock()
}

// restart crash-stops the coordinator (no drain, no compaction — the
// journal tail is whatever the crash left) and reboots it on the same
// journal directory: replay resubmits unsettled scans flagged for
// reconciliation, and adoption finds them still running on workers.
func (cp *coordProc) restart() {
	cp.mu.Lock()
	pool, fl, jrnl := cp.pool, cp.fl, cp.jrnl
	cp.h, cp.pool, cp.fl, cp.jrnl = nil, nil, nil, nil
	cp.mu.Unlock()
	if fl != nil {
		fl.Stop()
	}
	if pool != nil {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		pool.Shutdown(ctx)
	}
	if jrnl != nil {
		jrnl.Close()
	}
	cp.boot()
}

func (cp *coordProc) shutdown() {
	cp.front.Close()
	cp.mu.Lock()
	pool, fl, jrnl := cp.pool, cp.fl, cp.jrnl
	cp.h, cp.pool, cp.fl, cp.jrnl = nil, nil, nil, nil
	cp.mu.Unlock()
	if fl != nil {
		fl.Stop()
	}
	if pool != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		pool.Shutdown(ctx)
		cancel()
	}
	if jrnl != nil {
		jrnl.Close()
	}
}

// ---------------------------------------------------------------------------
// Harness: the fleet under test plus fault-tolerant client helpers
// (submission and polling retry through restart windows — a real
// client would too).

type harness struct {
	t       *testing.T
	workers []*workerProc
	coord   *coordProc
}

func newHarness(t *testing.T, inj *Injector) *harness {
	t.Helper()
	h := &harness{t: t}
	urls := make([]string, 0, nWorkers)
	for i := 0; i < nWorkers; i++ {
		wp := newWorkerProc(t, i)
		inj.BindTarget(i, strings.TrimPrefix(wp.url, "http://"))
		h.workers = append(h.workers, wp)
		urls = append(urls, wp.url)
	}
	h.coord = newCoordProc(t, urls, inj)
	return h
}

func (h *harness) workerDirs() []string {
	dirs := make([]string, len(h.workers))
	for i, wp := range h.workers {
		dirs[i] = wp.dir
	}
	return dirs
}

func (h *harness) teardown() {
	h.coord.shutdown()
	for _, wp := range h.workers {
		wp.shutdown()
	}
}

func (h *harness) submit(name, php string) string {
	h.t.Helper()
	body, _ := json.Marshal(map[string]any{
		"name":  name,
		"files": map[string]string{name + ".php": php},
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Post(h.coord.front.URL+"/v1/scans", "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		var sv scanView
		code := resp.StatusCode
		derr := json.NewDecoder(resp.Body).Decode(&sv)
		resp.Body.Close()
		if code == http.StatusOK || code == http.StatusAccepted {
			if derr != nil {
				h.t.Fatalf("submit %s: undecodable acceptance: %v", name, derr)
			}
			return sv.ID
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.t.Fatalf("submission %s never accepted", name)
	return ""
}

// getScan reads one scan, retrying through transport errors (restart
// windows abort connections). A missing scan after replay would
// surface here as a poll timeout.
func (h *harness) getScan(id string, deadline time.Time) (scanView, error) {
	for {
		resp, err := http.Get(h.coord.front.URL + "/v1/scans/" + id)
		if err == nil {
			var sv scanView
			derr := json.NewDecoder(resp.Body).Decode(&sv)
			code := resp.StatusCode
			resp.Body.Close()
			if derr == nil && code == http.StatusOK {
				return sv, nil
			}
		}
		if time.Now().After(deadline) {
			return scanView{}, fmt.Errorf("scan %s unreadable past deadline (last err: %v)", id, err)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// dumpTrace logs a scan's event timeline — the first thing to read
// when a seed fails, so the stall point is visible without rerunning.
func (h *harness) dumpTrace(id string) {
	resp, err := http.Get(h.coord.front.URL + "/v1/scans/" + id + "/trace")
	if err != nil {
		h.t.Logf("trace %s: %v", id, err)
		return
	}
	defer resp.Body.Close()
	var tr struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		h.t.Logf("trace %s: %v", id, err)
		return
	}
	for _, ev := range tr.Events {
		h.t.Logf("trace %s: %s attempt=%d detail=%q err=%q", id, ev.Type, ev.Attempt, ev.Detail, ev.Err)
	}
}

func (h *harness) waitDone(id string) (scanView, error) {
	deadline := time.Now().Add(90 * time.Second)
	for {
		sv, err := h.getScan(id, deadline)
		if err != nil {
			return scanView{}, err
		}
		if settledStatus(sv.Status) {
			return sv, nil
		}
		if time.Now().After(deadline) {
			return sv, fmt.Errorf("scan %s never settled (status %s)", id, sv.Status)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Reference: the same corpus through a standalone daemon, no fleet, no
// faults. The fleet under chaos must reproduce these bytes exactly.

func referenceResults(t *testing.T) map[string]string {
	t.Helper()
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: 4, QueueSize: 64, Recorder: rec})
	api := server.New(server.Config{
		Pool: pool, Cache: scancache.New(1<<20, rec), Recorder: rec,
		Logger: quietLogger(),
	})
	ts := httptest.NewServer(api)
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
	}()

	ref := make(map[string]string, corpusSize)
	for _, c := range corpus() {
		body, _ := json.Marshal(map[string]any{
			"name":  c.name,
			"files": map[string]string{c.name + ".php": c.php},
		})
		resp, err := http.Post(ts.URL+"/v1/scans", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sv scanView
		if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		deadline := time.Now().Add(60 * time.Second)
		for {
			r2, err := http.Get(ts.URL + "/v1/scans/" + sv.ID)
			if err != nil {
				t.Fatal(err)
			}
			var got scanView
			err = json.NewDecoder(r2.Body).Decode(&got)
			r2.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if settledStatus(got.Status) {
				if got.Status != "done" {
					t.Fatalf("reference scan %s = %s (%s)", c.name, got.Status, got.Error)
				}
				ref[c.name] = string(got.Result)
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reference scan %s never settled", c.name)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return ref
}

// ---------------------------------------------------------------------------
// Seed selection.

func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	n := 4
	if s := os.Getenv("CHAOS_SCHEDULES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("CHAOS_SCHEDULES=%q: want a positive integer", s)
		}
		n = v
	}
	seeds := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		seeds = append(seeds, int64(i+1))
	}
	return seeds
}

// ---------------------------------------------------------------------------
// Schedule unit tests: cheap, no harness.

// TestScheduleDeterministic: the plan is a pure function of the seed,
// and every seed respects the harness invariants — worker 0 immortal,
// bounded coordinator restarts, onset-sorted.
func TestScheduleDeterministic(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 200; seed++ {
		a := NewSchedule(seed, nWorkers)
		b := NewSchedule(seed, nWorkers)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedule not deterministic:\n%v\n%v", seed, a.Faults, b.Faults)
		}
		if len(a.Faults) < minFaults || len(a.Faults) > maxFaults {
			t.Fatalf("seed %d: %d faults, want %d..%d", seed, len(a.Faults), minFaults, maxFaults)
		}
		restarts := 0
		for i, f := range a.Faults {
			if i > 0 && f.At < a.Faults[i-1].At {
				t.Fatalf("seed %d: faults not onset-sorted: %v", seed, a.Faults)
			}
			switch f.Kind {
			case WorkerKill:
				if f.Target == 0 {
					t.Fatalf("seed %d: schedule kills worker 0: %v", seed, f)
				}
			case CoordinatorRestart:
				if restarts++; restarts > maxCoordRestarts {
					t.Fatalf("seed %d: %d coordinator restarts, max %d", seed, restarts, maxCoordRestarts)
				}
				if f.Target != -1 {
					t.Fatalf("seed %d: coordinator restart targets %d", seed, f.Target)
				}
			}
			if f.Kind != CoordinatorRestart && (f.Target < 0 || f.Target >= nWorkers) {
				t.Fatalf("seed %d: fault targets worker %d of %d: %v", seed, f.Target, nWorkers, f)
			}
		}
	}
}

// TestScheduleSingleWorker: with nobody expendable, no kill is ever
// scheduled.
func TestScheduleSingleWorker(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 100; seed++ {
		for _, f := range NewSchedule(seed, 1).Faults {
			if f.Kind == WorkerKill {
				t.Fatalf("seed %d: worker kill scheduled for a 1-worker fleet", seed)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// The property.

func TestChaosProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short mode")
	}
	installJournalFaultHook()
	ref := referenceResults(t)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		if !t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSchedule(t, seed, ref)
		}) {
			t.Logf("reproduce with: CHAOS_SEED=%d go test -race -run TestChaosProperty ./internal/chaos/", seed)
		}
	}
}

func runSchedule(t *testing.T, seed int64, ref map[string]string) {
	sched := NewSchedule(seed, nWorkers)
	for _, f := range sched.Faults {
		t.Logf("schedule: %s", f)
	}

	inj := NewInjector(sched, nil)
	h := newHarness(t, inj)
	defer h.teardown()
	defer clearJournalWindows()

	epoch := time.Now()
	inj.Start()
	setJournalWindows(sched, epoch, h.workerDirs())

	// One timeline, one goroutine: submissions staggered across the
	// schedule span interleaved with the process faults, so dispatch
	// traffic actually intersects the fault windows instead of
	// finishing before the first one opens. (Everything runs on the
	// test goroutine because kill/boot/restart may t.Fatal.)
	type timelineEvent struct {
		at    time.Duration
		fault *Fault
		item  corpusItem
	}
	var timeline []timelineEvent
	for i, c := range corpus() {
		timeline = append(timeline, timelineEvent{
			at:   time.Duration(i) * (onsetSpan / corpusSize),
			item: c,
		})
	}
	for _, f := range sched.ProcessFaults() {
		f := f
		timeline = append(timeline, timelineEvent{at: f.At, fault: &f})
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].at < timeline[j].at })

	ids := make(map[string]string, corpusSize)
	for _, ev := range timeline {
		if d := time.Until(epoch.Add(ev.at)); d > 0 {
			time.Sleep(d)
		}
		if ev.fault == nil {
			ids[ev.item.name] = h.submit(ev.item.name, ev.item.php)
			continue
		}
		t.Logf("executing: %s", ev.fault)
		switch ev.fault.Kind {
		case WorkerKill:
			wp := h.workers[ev.fault.Target]
			wp.kill()
			time.Sleep(ev.fault.Dur)
			wp.boot()
		case CoordinatorRestart:
			h.coord.restart()
		}
	}

	// The property: every accepted scan settles done, byte-identical
	// to the standalone reference, and stays settled.
	for _, c := range corpus() {
		id := ids[c.name]
		sv, err := h.waitDone(id)
		if err != nil {
			t.Errorf("seed %d: scan %s (%s): %v", seed, c.name, id, err)
			h.dumpTrace(id)
			continue
		}
		if sv.Status != "done" {
			t.Errorf("seed %d: scan %s settled %s (%s), want done", seed, c.name, sv.Status, sv.Error)
			h.dumpTrace(id)
			continue
		}
		if string(sv.Result) != ref[c.name] {
			t.Errorf("seed %d: scan %s result differs from standalone reference", seed, c.name)
		}
		again, err := h.getScan(id, time.Now().Add(10*time.Second))
		if err != nil {
			t.Errorf("seed %d: scan %s unreadable after settling: %v", seed, c.name, err)
			continue
		}
		if again.Status != "done" || string(again.Result) != string(sv.Result) {
			t.Errorf("seed %d: scan %s re-settled: status %s→%s", seed, c.name, sv.Status, again.Status)
		}
	}

	t.Logf("network faults fired: drop=%d delay=%d dup=%d blackhole=%d",
		inj.Fired(DispatchDrop), inj.Fired(DispatchDelay),
		inj.Fired(DispatchDup), inj.Fired(HeartbeatBlackhole))
}
