package taint

import (
	"repro/internal/analyzer"
)

// taintInfo carries the provenance of one vulnerability-class taint.
type taintInfo struct {
	// vector is where the data entered (GET, POST, DB, ...).
	vector analyzer.Vector
	// trace is the data-flow path so far, oldest step first.
	trace []analyzer.TraceStep
}

// withStep returns a copy of t with one more trace step appended. Traces
// are bounded: when the limit is reached the middle is elided so the
// source and the most recent hops remain visible.
func (t *taintInfo) withStep(limit int, step analyzer.TraceStep) *taintInfo {
	trace := make([]analyzer.TraceStep, 0, len(t.trace)+1)
	trace = append(trace, t.trace...)
	trace = append(trace, step)
	if limit > 2 && len(trace) > limit {
		// Keep the first and the last (limit-1) steps.
		head := trace[:1]
		tail := trace[len(trace)-(limit-1):]
		squeezed := make([]analyzer.TraceStep, 0, limit)
		squeezed = append(squeezed, head...)
		squeezed = append(squeezed, tail...)
		trace = squeezed
	}
	return &taintInfo{vector: t.vector, trace: trace}
}

// paramDep records that a value depends on the enclosing function's
// parameters, per vulnerability class. It drives the function-summary
// instantiation (paper §III.C: "every function is analyzed only the first
// time it is called ... the data flow of the variables of this analysis is
// used to process future calls").
type paramDep map[int]map[analyzer.VulnClass]bool

// value is the abstract value of an expression or variable: which
// vulnerability classes it is tainted for, where that taint came from,
// which sanitizers neutralized it (latent taint that revert functions can
// resurrect, §III.A), its parameter dependencies in summary mode, and
// coarse type knowledge (object class, numeric).
//
// values are immutable after construction; all combinators allocate.
type value struct {
	// taints holds the active taint per vulnerability class.
	taints map[analyzer.VulnClass]*taintInfo
	// latent holds taints neutralized by sanitizers; a revert function
	// (stripslashes, urldecode, ...) moves them back to taints.
	latent map[analyzer.VulnClass]*taintInfo
	// params tracks symbolic dependence on function parameters.
	params paramDep
	// class is the lower-case class name when the value is a known
	// object (from "new X" or a configured global like $wpdb).
	class string
	// numeric marks values known to be numbers (arithmetic results,
	// casts); numeric values cannot carry attack payloads.
	numeric bool
	// filters lists sanitizer names applied to the value, for reporting.
	filters []string
}

// untainted returns a clean value.
func untainted() *value { return &value{} }

// numericValue returns a clean numeric value.
func numericValue() *value { return &value{numeric: true} }

// objectValue returns a clean value of a known class.
func objectValue(class string) *value { return &value{class: class} }

// newTaint returns a value tainted for the given classes.
func newTaint(classes []analyzer.VulnClass, vector analyzer.Vector, step analyzer.TraceStep) *value {
	v := &value{taints: make(map[analyzer.VulnClass]*taintInfo, len(classes))}
	for _, c := range classes {
		v.taints[c] = &taintInfo{vector: vector, trace: []analyzer.TraceStep{step}}
	}
	return v
}

// paramValue returns a symbolic value depending on parameter i for all
// vulnerability classes.
func paramValue(i int) *value {
	classes := analyzer.Classes()
	deps := make(paramDep, 1)
	inner := make(map[analyzer.VulnClass]bool, len(classes))
	for _, c := range classes {
		inner[c] = true
	}
	deps[i] = inner
	return &value{params: deps}
}

// isTainted reports whether the value carries active taint for class c.
func (v *value) isTainted(c analyzer.VulnClass) bool {
	if v == nil {
		return false
	}
	_, ok := v.taints[c]
	return ok
}

// taintedClasses returns the classes with active taint.
func (v *value) taintedClasses() []analyzer.VulnClass {
	if v == nil || len(v.taints) == 0 {
		return nil
	}
	out := make([]analyzer.VulnClass, 0, len(v.taints))
	for _, c := range analyzer.Classes() {
		if _, ok := v.taints[c]; ok {
			out = append(out, c)
		}
	}
	return out
}

// hasParamDeps reports whether the value depends on any parameter.
func (v *value) hasParamDeps() bool { return v != nil && len(v.params) > 0 }

// clone returns a shallow-copied value with freshly allocated maps.
func (v *value) clone() *value {
	if v == nil {
		return untainted()
	}
	out := &value{class: v.class, numeric: v.numeric}
	if len(v.taints) > 0 {
		out.taints = make(map[analyzer.VulnClass]*taintInfo, len(v.taints))
		for c, t := range v.taints {
			out.taints[c] = t
		}
	}
	if len(v.latent) > 0 {
		out.latent = make(map[analyzer.VulnClass]*taintInfo, len(v.latent))
		for c, t := range v.latent {
			out.latent[c] = t
		}
	}
	if len(v.params) > 0 {
		out.params = make(paramDep, len(v.params))
		for i, cs := range v.params {
			inner := make(map[analyzer.VulnClass]bool, len(cs))
			for c, b := range cs {
				inner[c] = b
			}
			out.params[i] = inner
		}
	}
	if len(v.filters) > 0 {
		out.filters = append([]string(nil), v.filters...)
	}
	return out
}

// merge returns the union of two values: taint from either side survives
// (string concatenation, branch joins). Numeric survives only when both
// sides are numeric; class knowledge survives when unambiguous.
func merge(a, b *value) *value {
	if a == nil || (len(a.taints) == 0 && len(a.latent) == 0 && len(a.params) == 0 && a.class == "" && !a.numeric) {
		if b == nil {
			return untainted()
		}
		return b
	}
	if b == nil || (len(b.taints) == 0 && len(b.latent) == 0 && len(b.params) == 0 && b.class == "" && !b.numeric) {
		return a
	}
	out := a.clone()
	out.numeric = a.numeric && b.numeric
	if out.class == "" {
		out.class = b.class
	}
	for c, t := range b.taints {
		if _, ok := out.taints[c]; !ok {
			if out.taints == nil {
				out.taints = make(map[analyzer.VulnClass]*taintInfo, len(b.taints))
			}
			out.taints[c] = t
		}
	}
	for c, t := range b.latent {
		if _, ok := out.latent[c]; !ok {
			if out.latent == nil {
				out.latent = make(map[analyzer.VulnClass]*taintInfo, len(b.latent))
			}
			out.latent[c] = t
		}
	}
	for i, cs := range b.params {
		if out.params == nil {
			out.params = make(paramDep, len(b.params))
		}
		dst := out.params[i]
		if dst == nil {
			dst = make(map[analyzer.VulnClass]bool, len(cs))
			out.params[i] = dst
		}
		for c, ok := range cs {
			if ok {
				dst[c] = true
			}
		}
	}
	for _, f := range b.filters {
		out.filters = append(out.filters, f)
	}
	return out
}

// mergeAll unions a list of values.
func mergeAll(vals ...*value) *value {
	out := untainted()
	for _, v := range vals {
		out = merge(out, v)
	}
	return out
}

// sanitize returns a copy of v with the given classes neutralized: active
// taints move to the latent set, and parameter dependencies for those
// classes are dropped. The sanitizer name is recorded for reporting.
func (v *value) sanitize(classes []analyzer.VulnClass, name string) *value {
	out := v.clone()
	for _, c := range classes {
		if t, ok := out.taints[c]; ok {
			delete(out.taints, c)
			if out.latent == nil {
				out.latent = make(map[analyzer.VulnClass]*taintInfo, 2)
			}
			out.latent[c] = t
		}
		for i := range out.params {
			delete(out.params[i], c)
			if len(out.params[i]) == 0 {
				delete(out.params, i)
			}
		}
	}
	out.filters = append(out.filters, name)
	return out
}

// revert returns a copy of v with latent taints re-activated (the effect
// of stripslashes and friends, §III.A).
func (v *value) revert(name string, limit int, step analyzer.TraceStep) *value {
	out := v.clone()
	for c, t := range out.latent {
		if _, active := out.taints[c]; !active {
			if out.taints == nil {
				out.taints = make(map[analyzer.VulnClass]*taintInfo, 2)
			}
			out.taints[c] = t.withStep(limit, step)
		}
	}
	out.latent = nil
	out.filters = append(out.filters, name)
	return out
}

// toNumeric returns a clean numeric value (arithmetic, numeric casts).
func toNumeric() *value { return numericValue() }

// withStep returns a copy of v whose active taints carry one more trace
// step (an assignment hop).
func (v *value) withStep(limit int, step analyzer.TraceStep) *value {
	if v == nil || len(v.taints) == 0 {
		return v
	}
	out := v.clone()
	for c, t := range out.taints {
		out.taints[c] = t.withStep(limit, step)
	}
	return out
}
