// Package taint implements phpSAFE, the paper's primary contribution
// (DSN 2015, §III): a static source-code analyzer that detects XSS and
// SQL-Injection vulnerabilities in PHP plugins, including plugins written
// with PHP 5 object-oriented constructs.
//
// The engine follows the paper's four stages:
//
//  1. Configuration — a config.Compiled profile supplies sources,
//     sanitizers, revert functions and sinks (§III.A).
//  2. Model construction — each file is lexed and parsed (packages phplex
//     and phpparse stand in for PHP's token_get_all), and an inventory of
//     user-defined functions, classes and call sites is collected,
//     including the functions never called from plugin code (§III.B).
//  3. Analysis — tainted data is followed from sources through
//     assignments, expressions, includes, function and method calls to
//     sinks. Functions are analyzed once and their data flow is reused as
//     a summary at later call sites; uncalled functions are analyzed
//     first, then the "main function" of every file (§III.C).
//  4. Results processing — findings carry the vulnerable variable, the
//     sink, the input vector and the hop-by-hop data flow (§III.D).
//
// OOP support (§III.E) resolves $this and tracked object variables to
// classes, follows property data flow, and maps framework globals such as
// $wpdb through the configuration.
package taint

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/config"
	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/phpast"
	"repro/internal/pipeline"
)

// Options tune the engine. The zero value is not meaningful; start from
// DefaultOptions.
type Options struct {
	// OOP enables object-oriented analysis (§III.E). Disabling it
	// reproduces the RIPS/Pixy blind spot as an ablation.
	OOP bool
	// AnalyzeUncalled analyzes functions never called from plugin code
	// (§III.B-C); plugins export such functions as CMS hooks.
	AnalyzeUncalled bool
	// FunctionSummaries reuses each function's first-call data flow at
	// later call sites (§II "functions summaries"). Disabling re-analyzes
	// every call (whole-program style) as an ablation.
	FunctionSummaries bool
	// IncludeBudget bounds the include closure a single file may pull in
	// before the engine refuses the file. It models the paper's observed
	// failures: "phpSAFE was unable to parse [files that] had many
	// includes and required a lot of memory" (§V.A, §V.E).
	IncludeBudget int
	// MaxTraceDepth bounds recorded data-flow traces.
	MaxTraceDepth int
	// MaxCallDepth bounds nested call analysis (recursion guard backstop).
	MaxCallDepth int
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		OOP:               true,
		AnalyzeUncalled:   true,
		FunctionSummaries: true,
		IncludeBudget:     24,
		MaxTraceDepth:     12,
		MaxCallDepth:      32,
	}
}

// Engine is the phpSAFE analyzer. It is immutable and safe for concurrent
// use on distinct targets.
type Engine struct {
	cfg  *config.Compiled
	opts Options
	// rec receives metrics and spans; nil (the default) disables all
	// instrumentation at the cost of a nil check.
	rec *obs.Recorder
}

// Compile-time checks that Engine implements the shared interfaces.
var _ analyzer.Analyzer = (*Engine)(nil)

// New returns an engine over the given compiled configuration.
func New(cfg *config.Compiled, opts Options) *Engine {
	return &Engine{cfg: cfg, opts: opts}
}

// Name returns the tool name used in reports.
func (e *Engine) Name() string { return "phpSAFE" }

// WithRecorder returns a copy of the engine that records metrics and
// per-plugin stage spans (scan → model/taint → per-file parse/lex) into
// rec. The receiver is unchanged, so one immutable engine can serve
// both observed and unobserved scans.
func (e *Engine) WithRecorder(rec *obs.Recorder) *Engine {
	clone := *e
	clone.rec = rec
	return &clone
}

// scanStats accumulates per-scan instrumentation counts in plain ints;
// they are flushed to the recorder once per scan so the hot paths never
// touch an atomic, and they cost only an integer increment when
// instrumentation is disabled.
type scanStats struct {
	funcsAnalyzed    int64
	summaryReuses    int64
	propagationSteps int64
	sanitizerHits    int64
	sinkChecks       int64
}

// Analyze scans one plugin target with a background context and default
// budgets. It is a thin adapter over AnalyzeContext for callers that
// need neither cancellation nor custom budgets.
func (e *Engine) Analyze(target *analyzer.Target) (*analyzer.Result, error) {
	return e.AnalyzeContext(context.Background(), target, nil)
}

// AnalyzeContext scans one plugin target under a context and resource
// budgets (the context-first contract, see analyzer.ContextAnalyzer).
// Cancellation returns the partial result plus an error wrapping
// ctx.Err(); exhausted budgets return a partial result flagged
// Truncated with a nil error; per-file panics and time-slice overruns
// fail only the affected file.
func (e *Engine) AnalyzeContext(ctx context.Context, target *analyzer.Target, opts *analyzer.ScanOptions) (*analyzer.Result, error) {
	res, _, err := e.analyze(ctx, target, opts, nil, false)
	return res, err
}

// IsSuperglobal reports whether name (without "$") is a superglobal in
// the engine's configuration. The incremental planner needs this to
// build its shared-global dependency edges: the engine never routes
// data between files through a superglobal (reads mint fresh taint from
// the configuration and writes are discarded), so superglobals must not
// glue otherwise-independent files together.
func (e *Engine) IsSuperglobal(name string) bool {
	_, ok := e.cfg.Superglobal(name)
	return ok
}

// OptionsFingerprint returns a deterministic rendering of the engine's
// analysis options AND its configuration digest for cache keys: two
// engines with equal fingerprints produce identical results on identical
// input, so cached artifacts may flow between them. Folding the rule-set
// digest in keeps the scan cache and the incremental artifact store from
// mixing results across different rule-pack selections.
func (e *Engine) OptionsFingerprint() string {
	return fmt.Sprintf("%+v|cfg:%s", e.opts, e.cfg.Digest())
}

// flushStats publishes the scan's accumulated counts to the recorder.
func (a *analysis) flushStats() {
	rec := a.eng.rec
	if rec == nil {
		return
	}
	rec.Counter("taint_plugins_scanned_total").Inc()
	rec.Counter("taint_functions_analyzed_total").Add(a.stats.funcsAnalyzed)
	rec.Counter("taint_summary_reuses_total").Add(a.stats.summaryReuses)
	rec.Counter("taint_propagation_iterations_total").Add(a.stats.propagationSteps)
	rec.Counter("taint_sanitizer_hits_total").Add(a.stats.sanitizerHits)
	rec.Counter("taint_sink_checks_total").Add(a.stats.sinkChecks)
	rec.Counter("taint_findings_total").Add(int64(len(a.result.Findings)))
	rec.Counter("taint_files_failed_total").Add(int64(len(a.result.FilesFailed)))
}

// funcInfo is one user-defined function in the model.
type funcInfo struct {
	decl *phpast.FuncDecl
	file string
}

// methodInfo is one method in the model.
type methodInfo struct {
	decl  *phpast.MethodDecl
	class *classInfo
	file  string
}

// classInfo is one user-defined class in the model.
type classInfo struct {
	decl    *phpast.ClassDecl
	file    string
	methods map[string]*methodInfo
	// props holds the class-level abstract property state. The engine
	// tracks properties per class (not per instance), which is the
	// paper's granularity: "$this->prop" and "$obj->prop" flows resolve
	// through the object's class (§III.E).
	props map[string]*value
	// parent is resolved lazily from decl.Extends.
	parent *classInfo
}

// method resolves a method by lower-case name, walking the inheritance
// chain (§III.E: inheritance and override of methods).
func (ci *classInfo) method(name string) *methodInfo {
	for c := ci; c != nil; c = c.parent {
		if m, ok := c.methods[name]; ok {
			return m
		}
	}
	return nil
}

// analysis is the per-target mutable state.
type analysis struct {
	eng    *Engine
	cfg    *config.Compiled
	opts   Options
	target *analyzer.Target

	// files maps path → parsed AST for every target file.
	files map[string]*phpast.File
	// fileOrder is the deterministic processing order.
	fileOrder []string

	// funcs maps lower-case name → function info.
	funcs map[string]*funcInfo
	// classes maps lower-case name → class info.
	classes map[string]*classInfo

	// calledFuncs / calledMethods record names invoked anywhere in the
	// plugin, for the uncalled-function pass (§III.B).
	calledFuncs   map[string]bool
	calledMethods map[string]bool

	// globals is the global variable scope shared by all files.
	globals map[string]*value

	// summaries caches per-function data flow (§III.C).
	summaries map[string]*summary
	// inProgress guards against recursive summary analysis.
	inProgress map[string]bool

	// includeStack tracks files being textually included.
	includeStack map[string]bool
	callDepth    int
	// curCollector is the summary currently receiving parameter flows.
	curCollector *summary

	// curFile is the path of the file whose code is being walked.
	curFile string

	// skip maps paths whose analysis is replayed from a previous scan's
	// artifacts instead of being re-run (incremental warm scans): their
	// declarations are still inventoried and their include-budget checks
	// still run, but their summaries come from the seed and their
	// top-level flows are not executed. Nil for ordinary scans.
	skip map[string]*FileResult
	// preparsed supplies ready ASTs by path (content-addressed reuse);
	// files not present are parsed normally.
	preparsed map[string]*phpast.File

	// stats collects instrumentation counts flushed at the end of the
	// scan (see scanStats).
	stats scanStats

	// gov enforces the scan's context and resource budgets; checkpoints
	// in the interpreter and the model stage consult it. Never nil — an
	// ungoverned call path gets a background-context governor with
	// default budgets.
	gov *govern.Governor
	// fileWorkers sizes the parallel parse front end (see
	// ScanOptions.FileWorkers); 1 means strictly serial.
	fileWorkers int
	// completed marks files whose analysis finished (replayed skips
	// included): only these count into FilesAnalyzed/LinesAnalyzed and
	// only these may export artifacts.
	completed map[string]bool

	result *analyzer.Result
}

// newAnalysis builds the empty per-target state.
func newAnalysis(e *Engine, target *analyzer.Target) *analysis {
	return &analysis{
		eng:           e,
		cfg:           e.cfg,
		opts:          e.opts,
		target:        target,
		files:         make(map[string]*phpast.File, len(target.Files)),
		funcs:         make(map[string]*funcInfo),
		classes:       make(map[string]*classInfo),
		calledFuncs:   make(map[string]bool),
		calledMethods: make(map[string]bool),
		globals:       make(map[string]*value),
		summaries:     make(map[string]*summary),
		inProgress:    make(map[string]bool),
		includeStack:  make(map[string]bool),
		completed:     make(map[string]bool),
		result: &analyzer.Result{
			Tool:   e.Name(),
			Target: target.Name,
		},
	}
}

// buildModel is the model-construction stage (§III.B): parse every file,
// inventory declarations and call sites. The model span (nil when
// unobserved) parents the per-file parse spans. Parsing fans across the
// scan's worker pool — files are independent until the declaration
// inventory below links them into one model, which runs serially over
// the sorted file order exactly as before.
func (a *analysis) buildModel(modelSpan *obs.Span) {
	files, _ := pipeline.ParseFiles(a.target.Files, a.preparsed, a.eng.rec, modelSpan, a.gov, a.fileWorkers)
	a.files = files
	for _, sf := range a.target.Files {
		a.fileOrder = append(a.fileOrder, sf.Path)
	}
	sort.Strings(a.fileOrder)

	// Declarations.
	for _, path := range a.fileOrder {
		f := a.files[path]
		phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
			switch d := n.(type) {
			case *phpast.FuncDecl:
				if _, dup := a.funcs[d.Name]; !dup && d.Name != "" {
					a.funcs[d.Name] = &funcInfo{decl: d, file: path}
				}
				return false // nested declarations are rare; skip inside
			case *phpast.ClassDecl:
				a.registerClass(d, path)
				return false
			}
			return true
		})
	}
	// Resolve inheritance.
	for _, ci := range a.classes {
		if ci.decl.Extends != "" {
			ci.parent = a.classes[ci.decl.Extends]
		}
	}

	// Call sites (for the uncalled-function inventory).
	for _, path := range a.fileOrder {
		phpast.InspectStmts(a.files[path].Stmts, func(n phpast.Node) bool {
			switch c := n.(type) {
			case *phpast.FuncCall:
				if c.Name != "" {
					a.calledFuncs[c.Name] = true
				}
			case *phpast.MethodCall:
				if c.Name != "" {
					a.calledMethods[c.Name] = true
				}
			case *phpast.StaticCall:
				a.calledMethods[c.Name] = true
			case *phpast.New:
				if c.Class != "" {
					a.calledMethods["__construct"] = true
					a.calledFuncs[c.Class] = true
				}
			}
			return true
		})
	}
}

// registerClass adds a class declaration to the model.
func (a *analysis) registerClass(d *phpast.ClassDecl, path string) {
	if d.Name == "" {
		return
	}
	if _, dup := a.classes[d.Name]; dup {
		return
	}
	ci := &classInfo{
		decl:    d,
		file:    path,
		methods: make(map[string]*methodInfo, len(d.Methods)),
		props:   make(map[string]*value, len(d.Props)),
	}
	for i := range d.Methods {
		m := &d.Methods[i]
		ci.methods[m.Name] = &methodInfo{decl: m, class: ci, file: path}
	}
	for _, p := range d.Props {
		ci.props[p.Name] = untainted()
	}
	a.classes[d.Name] = ci
}

// run is the analysis stage (§III.C): first the functions not called from
// plugin code, then the "main function" of every file. Every per-file
// unit runs under govern.Protect, so a crash in one file degrades to a
// RobustnessFailure instead of sinking the scan; a halted governor
// stops the stage between files.
func (a *analysis) run() {
	failed := a.failOversizedFiles()
	crashed := make(map[string]bool)

	if a.opts.AnalyzeUncalled {
		a.analyzeUncalled(failed, crashed)
	}

	for _, path := range a.fileOrder {
		if failed[path] || crashed[path] {
			continue
		}
		if a.skipped(path) {
			a.completed[path] = true
			continue
		}
		a.gov.CheckNow()
		if a.gov.ScanHalted() {
			break
		}
		path := path
		ok := govern.Protect(a.gov, path, a.result, func() {
			a.gov.BeginFile(path)
			a.analyzeMainFlow(path)
		})
		if a.gov.EndFile() {
			// The file overran its time slice: fail it, keep the scan.
			a.result.FilesFailed = append(a.result.FilesFailed, path)
			a.result.Errors = append(a.result.Errors, fmt.Sprintf(
				"%s: file time slice exhausted; file not fully analyzed", path))
			continue
		}
		if ok && !a.gov.ScanHalted() {
			a.completed[path] = true
		}
	}

	// Accounting for §V.E (responsiveness and robustness): only files
	// whose analysis ran to completion count.
	for _, path := range a.fileOrder {
		if a.completed[path] {
			a.result.FilesAnalyzed++
			a.result.LinesAnalyzed += a.files[path].Lines
		}
	}
}

// failOversizedFiles applies the include-budget robustness model: a file
// whose transitive include closure exceeds the budget is reported as not
// analyzed, reproducing the paper's phpSAFE failures (1 file in the 2012
// corpus, 3 in 2014).
func (a *analysis) failOversizedFiles() map[string]bool {
	failed := make(map[string]bool)
	for _, path := range a.fileOrder {
		size := a.includeClosureSize(path, make(map[string]bool))
		if size > a.opts.IncludeBudget {
			failed[path] = true
			a.result.FilesFailed = append(a.result.FilesFailed, path)
			a.result.Errors = append(a.result.Errors, fmt.Sprintf(
				"%s: include closure of %d files exceeds budget %d; file not analyzed",
				path, size, a.opts.IncludeBudget))
		}
	}
	return failed
}

// includeClosureSize counts the transitive include closure of path.
func (a *analysis) includeClosureSize(path string, seen map[string]bool) int {
	if seen[path] {
		return 0
	}
	seen[path] = true
	f, ok := a.files[path]
	if !ok {
		return 0
	}
	count := 0
	phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
		inc, ok := n.(*phpast.IncludeExpr)
		if !ok {
			return true
		}
		if target, resolved := a.resolveIncludePath(path, inc.Path); resolved {
			count += 1 + a.includeClosureSize(target, seen)
		}
		return true
	})
	return count
}

// analyzeUncalled analyzes every function and method that is never called
// from plugin code (§III.B: "these functions should be parsed anyway, as
// they may be directly called from the main application").
func (a *analysis) analyzeUncalled(failed, crashed map[string]bool) {
	names := make([]string, 0, len(a.funcs))
	for name := range a.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fi := a.funcs[name]
		if a.calledFuncs[name] || failed[fi.file] || crashed[fi.file] {
			continue
		}
		if a.gov.ScanHalted() {
			return
		}
		name := name
		if !govern.Protect(a.gov, fi.file, a.result, func() {
			a.summarizeFunction("func:"+name, fi.file, nil, fi.decl.Params, fi.decl.Body, nil)
		}) {
			crashed[fi.file] = true
		}
	}

	if !a.opts.OOP {
		return
	}
	classNames := make([]string, 0, len(a.classes))
	for name := range a.classes {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, cn := range classNames {
		ci := a.classes[cn]
		if failed[ci.file] || crashed[ci.file] {
			continue
		}
		methodNames := make([]string, 0, len(ci.methods))
		for mn := range ci.methods {
			methodNames = append(methodNames, mn)
		}
		sort.Strings(methodNames)
		for _, mn := range methodNames {
			if a.calledMethods[mn] || crashed[ci.file] {
				continue
			}
			if a.gov.ScanHalted() {
				return
			}
			ci, cn, mn := ci, cn, mn
			mi := ci.methods[mn]
			if !govern.Protect(a.gov, mi.file, a.result, func() {
				a.summarizeFunction("method:"+cn+"::"+mn, mi.file, ci, mi.decl.Params, mi.decl.Body, nil)
			}) {
				crashed[mi.file] = true
			}
		}
	}
}

// analyzeMainFlow analyzes a file's top-level statements (§III.C: "the
// inter-procedural analysis starting from the main function").
func (a *analysis) analyzeMainFlow(path string) {
	f := a.files[path]
	sc := &scope{
		vars:        a.globals,
		isGlobal:    true,
		globalNames: nil,
	}
	prevFile := a.curFile
	a.curFile = path
	a.includeStack = map[string]bool{path: true}
	a.execStmts(f.Stmts, sc)
	a.curFile = prevFile
}

// resolveIncludePath statically resolves an include expression to a target
// file path. It understands string literals, concatenations whose tail is
// a literal (dirname(__FILE__) . '/x.php'), and resolves against the
// including file's directory, the plugin root, and by basename suffix.
func (a *analysis) resolveIncludePath(fromFile string, pathExpr phpast.Expr) (string, bool) {
	lit, ok := trailingPathLiteral(pathExpr)
	if !ok || lit == "" {
		return "", false
	}
	lit = strings.TrimPrefix(lit, "/")

	// Exact target-relative match.
	if _, ok := a.files[lit]; ok {
		return lit, true
	}
	// Relative to the including file's directory.
	if dir := dirOf(fromFile); dir != "" {
		cand := dir + "/" + lit
		if _, ok := a.files[cand]; ok {
			return cand, true
		}
	}
	// Basename suffix match (plugin_dir_path(__FILE__) style).
	for _, path := range a.fileOrder {
		if strings.HasSuffix(path, "/"+lit) || path == lit {
			return path, true
		}
	}
	return "", false
}

// trailingPathLiteral extracts the rightmost string-literal component of
// an include path expression.
func trailingPathLiteral(e phpast.Expr) (string, bool) {
	switch x := e.(type) {
	case *phpast.Literal:
		if x.Kind == phpast.LitString {
			return x.Value, true
		}
	case *phpast.Binary:
		if x.Op == "." {
			return trailingPathLiteral(x.R)
		}
	case *phpast.InterpString:
		if n := len(x.Parts); n > 0 {
			return trailingPathLiteral(x.Parts[n-1])
		}
	}
	return "", false
}

// dirOf returns the directory part of a slash-separated path, or "".
func dirOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return ""
}
