package taint

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/wordpress"
)

func TestModelInventory(t *testing.T) {
	t.Parallel()
	eng := New(wordpress.Compiled(), DefaultOptions())
	info, err := eng.Model(&analyzer.Target{
		Name: "p",
		Files: []analyzer.SourceFile{
			{Path: "main.php", Content: `<?php
include 'lib/helpers.php';
add_action('init', 'p_hook');
function p_hook() { echo 1; }
function p_used($a, $b) { return $a; }
p_used(1, 2);
class Widget extends WP_Widget {
	public $title;
	public function render() {}
	public static function boot() {}
}
$w = new Widget();
$w->render();
`},
			{Path: "lib/helpers.php", Content: `<?php function p_helper() { return 1; }`},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(info.Functions) != 3 {
		t.Fatalf("functions = %d, want 3: %+v", len(info.Functions), info.Functions)
	}
	byName := map[string]FunctionInfo{}
	for _, f := range info.Functions {
		byName[f.Name] = f
	}
	if byName["p_used"].Params != 2 || !byName["p_used"].Called {
		t.Errorf("p_used = %+v, want 2 params, called", byName["p_used"])
	}
	if byName["p_hook"].Called {
		t.Error("p_hook is only referenced by name in add_action; it must count as uncalled (§III.B)")
	}
	if byName["p_helper"].Called {
		t.Error("p_helper is never called")
	}
	uncalled := info.Uncalled()
	if len(uncalled) != 2 {
		t.Errorf("uncalled = %+v, want p_hook and p_helper", uncalled)
	}

	cls, ok := info.Class("widget")
	if !ok {
		t.Fatal("class widget missing")
	}
	if cls.Extends != "wp_widget" || cls.Props != 1 || len(cls.Methods) != 2 {
		t.Errorf("class = %+v", cls)
	}
	var boot MethodInfoSummary
	for _, m := range cls.Methods {
		if m.Name == "boot" {
			boot = m
		}
	}
	if !boot.Static || boot.Called {
		t.Errorf("boot = %+v, want static, uncalled", boot)
	}

	if len(info.Includes) != 1 || info.Includes[0].To != "lib/helpers.php" {
		t.Errorf("includes = %+v", info.Includes)
	}
	if len(info.ParseErrors) != 0 {
		t.Errorf("parse errors = %v", info.ParseErrors)
	}
}

func TestModelParseErrorsSurface(t *testing.T) {
	t.Parallel()
	eng := New(wordpress.Compiled(), DefaultOptions())
	info, err := eng.Model(&analyzer.Target{
		Name:  "p",
		Files: []analyzer.SourceFile{{Path: "bad.php", Content: `<?php $x = ;`}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.ParseErrors) == 0 {
		t.Fatal("expected surfaced parse errors")
	}
}

func TestModelNilTarget(t *testing.T) {
	t.Parallel()
	eng := New(wordpress.Compiled(), DefaultOptions())
	if _, err := eng.Model(nil); err == nil {
		t.Fatal("nil target should error")
	}
	if _, err := eng.Analyze(nil); err == nil {
		t.Fatal("nil target should error in Analyze too")
	}
}
