<?php
/**
 * Direct reflected XSS from $_GET (the paper's wp-symposium pattern,
 * §V.C class 1).
 */
$path = $_GET['img_path'];
echo 'Created ' . $path . '.'; // EXPECT: XSS
