<?php
/** Sanitize-then-revert (§III.A): the attack becomes possible again. */
$x = addslashes($_GET['x']);
$y = stripslashes($x);
mysql_query("SELECT * FROM t WHERE a='$y'"); // EXPECT: SQLi
