<?php
/**
 * The §V.C wp-photo-album-plus pattern: SQL-safe prepared query, but the
 * stored value is echoed raw (blended attack) — stripslashes does not
 * help.
 */
global $wpdb;
$image = $wpdb->get_var($wpdb->prepare("SELECT name FROM {$wpdb->prefix}photos WHERE id = %d", 3));
echo stripslashes($image); // EXPECT: XSS
