<?php
/** Properly escaped output: no findings expected. */
echo '<h2>' . esc_html($_GET['title']) . '</h2>';
echo '<input value="' . esc_attr($_POST['q']) . '">';
printf('%s', htmlspecialchars($_REQUEST['msg']));
