<?php
/** POST form handler echoing unsanitized input. */
if (isset($_POST['submit'])) {
	$name = trim($_POST['name']);
	$email = $_POST['email'];
	echo '<p>Thanks, ' . $name . '!</p>'; // EXPECT: XSS
	echo '<p>We will write to ' . htmlspecialchars($email) . '</p>';
}
