<?php
/**
 * The hook-callback surface (§III.B): never called from plugin code,
 * called by WordPress.
 */
add_action('admin_menu', 'suite_admin_page');

function suite_admin_page() {
	echo '<h1>' . $_GET['tab'] . '</h1>'; // EXPECT: XSS
}
