<?php
/** Command injection into system() (extended coverage, §VI). */
$host = $_GET['host'];
system('ping -c 1 ' . $host); // EXPECT: CMDi
