<?php
/** File inclusion with an attacker-controlled path (extended coverage). */
$page = $_GET['page'];
include 'pages/' . $page . '.php'; // EXPECT: LFI
