<?php
/**
 * Sequential overwrite (§III.C semantics): the tainted value is replaced
 * before it reaches the sink. No findings expected.
 */
$x = $_GET['x'];
$x = 'constant';
echo $x;
unset($y);
echo $y;
