<?php
/** $GLOBALS array aliasing. */
$GLOBALS['suite_msg'] = $_POST['msg'];
function suite_show_msg() {
	echo $GLOBALS['suite_msg']; // EXPECT: XSS
}
suite_show_msg();
