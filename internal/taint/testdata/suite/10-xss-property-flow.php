<?php
/** OOP property data flow across methods (§III.E). */
class Suite_Form {
	public $value;
	public function load() {
		$this->value = $_POST['comment'];
	}
	public function render() {
		echo '<textarea>' . $this->value . '</textarea>'; // EXPECT: XSS
	}
}
$f = new Suite_Form();
$f->load();
$f->render();
