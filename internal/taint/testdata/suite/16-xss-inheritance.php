<?php
/** Method resolution through the inheritance chain (§III.E). */
class Suite_Base {
	public function emit($s) {
		echo $s; // EXPECT: XSS
	}
}
class Suite_Child extends Suite_Base {
}
$c = new Suite_Child();
$c->emit($_REQUEST['q']);
