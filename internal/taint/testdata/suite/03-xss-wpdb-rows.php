<?php
/**
 * The §III.E mail-subscribe-list pattern: WordPress-object data flow
 * only an OOP-aware analyzer can see.
 */
global $wpdb;
$results = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
foreach ($results as $row) {
	echo $row->sml_name; // EXPECT: XSS
}
