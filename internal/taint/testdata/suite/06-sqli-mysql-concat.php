<?php
/** Classic procedural SQL injection via concatenation. */
$user = $_POST['user'];
mysql_query("SELECT * FROM users WHERE login='" . $user . "'"); // EXPECT: SQLi
