<?php
/** SQL injection through string interpolation into a wpdb query. */
global $wpdb;
$id = $_GET['id'];
$wpdb->query("DELETE FROM {$wpdb->prefix}items WHERE id=$id"); // EXPECT: SQLi
