<?php
/** Parameterized queries and numeric casts: no findings expected. */
global $wpdb;
$id = intval($_GET['id']);
$row = $wpdb->get_row($wpdb->prepare("SELECT * FROM {$wpdb->prefix}t WHERE id = %d", $id));
$n = (int) $_POST['n'];
mysql_query("SELECT * FROM t LIMIT $n");
