<?php
/** The §V.C qtranslate pattern: file contents echoed raw. */
$fp = fopen('data/messages.txt', 'r');
$res = fgets($fp, 128);
echo $res; // EXPECT: XSS
