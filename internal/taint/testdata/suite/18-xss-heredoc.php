<?php
/** Interpolation inside a heredoc. */
$who = $_GET['who'];
$html = <<<HTML
<p>Hello $who</p>
HTML;
echo $html; // EXPECT: XSS
