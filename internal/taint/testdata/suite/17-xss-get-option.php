<?php
/** WordPress option storage is database-backed (second-order). */
$motd = get_option('suite_motd');
echo '<div class="motd">' . $motd . '</div>'; // EXPECT: XSS
