<?php
/** Taint through a helper's return value and another helper's sink. */
function suite_wrap($s) {
	return '<b>' . $s . '</b>';
}
function suite_put($s) {
	echo $s; // EXPECT: XSS
}
suite_put(suite_wrap($_COOKIE['pref']));
