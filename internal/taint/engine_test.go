package taint

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/wordpress"
)

// scan runs the default-configuration engine over a single-file target.
func scan(t *testing.T, src string) *analyzer.Result {
	t.Helper()
	return scanOpts(t, DefaultOptions(), src)
}

// scanOpts runs the engine with custom options over a single-file target.
func scanOpts(t *testing.T, opts Options, src string) *analyzer.Result {
	t.Helper()
	eng := New(wordpress.Compiled(), opts)
	res, err := eng.Analyze(&analyzer.Target{
		Name:  "test-plugin",
		Files: []analyzer.SourceFile{{Path: "plugin.php", Content: src}},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// scanFiles runs the engine over a multi-file target.
func scanFiles(t *testing.T, files map[string]string) *analyzer.Result {
	t.Helper()
	target := &analyzer.Target{Name: "test-plugin"}
	for path, content := range files {
		target.Files = append(target.Files, analyzer.SourceFile{Path: path, Content: content})
	}
	eng := New(wordpress.Compiled(), DefaultOptions())
	res, err := eng.Analyze(target)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// wantFindings asserts the number of findings per class.
func wantFindings(t *testing.T, res *analyzer.Result, xss, sqli int) {
	t.Helper()
	gotXSS, gotSQLi := 0, 0
	for _, f := range res.Findings {
		switch f.Class {
		case analyzer.XSS:
			gotXSS++
		case analyzer.SQLi:
			gotSQLi++
		}
	}
	if gotXSS != xss || gotSQLi != sqli {
		t.Fatalf("findings XSS=%d SQLi=%d, want XSS=%d SQLi=%d\nall: %v",
			gotXSS, gotSQLi, xss, sqli, res.Findings)
	}
}

func TestDirectGETEcho(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php echo $_GET['name'];`)
	wantFindings(t, res, 1, 0)
	f := res.Findings[0]
	if f.Vector != analyzer.VectorGET {
		t.Errorf("vector = %v, want GET", f.Vector)
	}
	if f.Sink != "echo" {
		t.Errorf("sink = %q, want echo", f.Sink)
	}
	if f.Line != 1 {
		t.Errorf("line = %d, want 1", f.Line)
	}
}

func TestTaintThroughAssignment(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$name = $_POST['name'];
$greeting = "Hello " . $name;
echo $greeting;`)
	wantFindings(t, res, 1, 0)
	f := res.Findings[0]
	if f.Vector != analyzer.VectorPOST {
		t.Errorf("vector = %v, want POST", f.Vector)
	}
	if f.Line != 4 {
		t.Errorf("line = %d, want 4", f.Line)
	}
	if len(f.Trace) < 3 {
		t.Errorf("trace too short: %v", f.Trace)
	}
	if !strings.Contains(f.Trace[0].Note, "source") {
		t.Errorf("trace should start at source, got %v", f.Trace[0])
	}
}

func TestSanitizerClearsTaint(t *testing.T) {
	t.Parallel()
	for _, fn := range []string{"htmlentities", "htmlspecialchars", "esc_html", "esc_attr", "intval", "sanitize_text_field"} {
		fn := fn
		t.Run(fn, func(t *testing.T) {
			t.Parallel()
			res := scan(t, fmt.Sprintf(`<?php echo %s($_GET['x']);`, fn))
			wantFindings(t, res, 0, 0)
		})
	}
}

func TestXSSSanitizerDoesNotClearSQLi(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$x = htmlentities($_GET['x']);
mysql_query("SELECT * FROM t WHERE a='$x'");`)
	wantFindings(t, res, 0, 1)
}

func TestRevertReactivatesTaint(t *testing.T) {
	t.Parallel()
	// The §III.A revert scenario: sanitize, then stripslashes undoes it.
	res := scan(t, `<?php
$x = addslashes($_GET['x']);
$y = stripslashes($x);
mysql_query("SELECT * FROM t WHERE a='$y'");`)
	wantFindings(t, res, 0, 1)
}

func TestSQLiDirectInterpolation(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM posts WHERE id=$id");`)
	wantFindings(t, res, 0, 1)
}

func TestWpdbQuerySink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
global $wpdb;
$id = $_REQUEST['id'];
$wpdb->query("DELETE FROM {$wpdb->prefix}items WHERE id=" . $id);`)
	wantFindings(t, res, 0, 1)
	if res.Findings[0].Vector != analyzer.VectorRequest {
		t.Errorf("vector = %v, want Request", res.Findings[0].Vector)
	}
}

func TestWpdbPrepareIsSafe(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
global $wpdb;
$id = $_GET['id'];
$wpdb->query($wpdb->prepare("SELECT * FROM t WHERE id=%d", $id));`)
	wantFindings(t, res, 0, 0)
}

func TestPaperMailSubscribeListExample(t *testing.T) {
	t.Parallel()
	// The motivating example of §III.E, adapted from mail-subscribe-list
	// 2.1.1: rows from $wpdb->get_results echoed without sanitization.
	res := scan(t, `<?php
global $wpdb;
$results = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
foreach ($results as $row) {
	echo '<li>' . $row->sml_name . '</li>';
}`)
	wantFindings(t, res, 1, 0)
	f := res.Findings[0]
	if f.Vector != analyzer.VectorDB {
		t.Errorf("vector = %v, want DB", f.Vector)
	}
	if f.Line != 5 {
		t.Errorf("line = %d, want 5", f.Line)
	}
}

func TestOOPDisabledMissesWpdbFlow(t *testing.T) {
	t.Parallel()
	opts := DefaultOptions()
	opts.OOP = false
	res := scanOpts(t, opts, `<?php
global $wpdb;
$rows = $wpdb->get_results("SELECT * FROM t");
foreach ($rows as $row) { echo $row->name; }`)
	wantFindings(t, res, 0, 0)
}

func TestInterproceduralParamToSink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function show($msg) {
	echo '<div>' . $msg . '</div>';
}
show($_GET['m']);
show('a literal');`)
	// One finding: the tainted call instantiates the summary flow; the
	// literal call does not.
	wantFindings(t, res, 1, 0)
	if res.Findings[0].Line != 3 {
		t.Errorf("line = %d, want 3 (sink inside show)", res.Findings[0].Line)
	}
}

func TestInterproceduralReturnFlow(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function pick($arr, $key) {
	return $arr[$key];
}
$v = pick($_POST, 'name');
echo $v;`)
	wantFindings(t, res, 1, 0)
}

func TestTransitiveSummaryFlow(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function inner($x) { echo $x; }
function outer($y) { inner($y); }
outer($_GET['q']);`)
	wantFindings(t, res, 1, 0)
}

func TestFunctionSourceInsideBody(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function dump_file($fp) {
	$res = fgets($fp, 128);
	echo $res;
}
dump_file($h);`)
	wantFindings(t, res, 1, 0)
	if res.Findings[0].Vector != analyzer.VectorFile {
		t.Errorf("vector = %v, want File", res.Findings[0].Vector)
	}
}

func TestUncalledFunctionAnalyzed(t *testing.T) {
	t.Parallel()
	// §III.B: hook callbacks are never called from plugin code but must
	// be analyzed anyway.
	res := scan(t, `<?php
add_action('admin_menu', 'myplugin_admin_page');
function myplugin_admin_page() {
	echo $_GET['tab'];
}`)
	wantFindings(t, res, 1, 0)
}

func TestUncalledMethodAnalyzed(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class My_Widget {
	function render_page() {
		echo $_COOKIE['pref'];
	}
}`)
	wantFindings(t, res, 1, 0)
	if res.Findings[0].Vector != analyzer.VectorCookie {
		t.Errorf("vector = %v, want Cookie", res.Findings[0].Vector)
	}
}

func TestUncalledPassDisabled(t *testing.T) {
	t.Parallel()
	opts := DefaultOptions()
	opts.AnalyzeUncalled = false
	res := scanOpts(t, opts, `<?php
function never_called() { echo $_GET['x']; }`)
	wantFindings(t, res, 0, 0)
}

func TestPropertyFlowBetweenMethods(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Form {
	public $value;
	function load() { $this->value = $_POST['v']; }
	function render() { echo $this->value; }
}
$f = new Form();
$f->load();
$f->render();`)
	wantFindings(t, res, 1, 0)
}

func TestMethodCallSummary(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Printer {
	function out($s) { echo $s; }
}
$p = new Printer();
$p->out($_GET['x']);
$p->out('safe');`)
	wantFindings(t, res, 1, 0)
}

func TestInheritedMethodResolution(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Base {
	function show($s) { echo $s; }
}
class Child extends Base {
}
$c = new Child();
$c->show($_GET['x']);`)
	wantFindings(t, res, 1, 0)
}

func TestStaticCallFlow(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Util {
	static function output($s) { echo $s; }
}
Util::output($_REQUEST['q']);`)
	wantFindings(t, res, 1, 0)
}

func TestUnsetClearsTaint(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$x = $_GET['x'];
unset($x);
echo $x;`)
	wantFindings(t, res, 0, 0)
}

func TestArithmeticNeutralizes(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$n = $_GET['n'] + 1;
echo $n;
$m = (int) $_GET['m'];
echo $m;`)
	wantFindings(t, res, 0, 0)
}

func TestSequentialBranchSemantics(t *testing.T) {
	t.Parallel()
	// Paper §III.C: conditionals do not change the data flow; blocks are
	// parsed in sequence. A later overwrite clears the taint.
	res := scan(t, `<?php
$x = $_GET['x'];
if ($mode) { $x = 'safe'; }
echo $x;`)
	wantFindings(t, res, 0, 0)

	// ...and taint assigned inside a branch persists after it.
	res2 := scan(t, `<?php
$x = 'safe';
if ($mode) { $x = $_GET['x']; }
echo $x;`)
	wantFindings(t, res2, 1, 0)
}

func TestNumericGuardIgnored(t *testing.T) {
	t.Parallel()
	// phpSAFE does not interpret validation conditions — a documented
	// source of its false positives (§V.A). The engine must flag this.
	res := scan(t, `<?php
$id = $_GET['id'];
if (!is_numeric($id)) { die('bad id'); }
echo $id;`)
	wantFindings(t, res, 1, 0)
}

func TestLoopConcatenation(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$out = '';
foreach ($_POST['items'] as $item) {
	$out .= '<li>' . $item . '</li>';
}
echo $out;`)
	wantFindings(t, res, 1, 0)
}

func TestDedupAcrossRepeatedCalls(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function f($x) { echo $x; }
f($_GET['a']);
f($_GET['b']);`)
	// Same sink location: one deduplicated finding.
	wantFindings(t, res, 1, 0)
}

func TestPrintAndExitSinks(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
print $_GET['a'];
die($_GET['b']);`)
	wantFindings(t, res, 2, 0)
}

func TestPrintfSink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php printf("<b>%s</b>", $_GET['x']);`)
	wantFindings(t, res, 1, 0)
}

func TestRecursionTerminates(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function rec($n) {
	if ($n > 0) { rec($n - 1); }
	echo $_GET['x'];
	return rec($n);
}
rec(5);`)
	wantFindings(t, res, 1, 0)
}

func TestMutualRecursionTerminates(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function a($x) { return b($x); }
function b($x) { return a($x); }
echo a($_GET['q']);`)
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestIncludeFollowing(t *testing.T) {
	t.Parallel()
	res := scanFiles(t, map[string]string{
		"main.php": `<?php
include 'helpers.php';
echo $greeting;`,
		"helpers.php": `<?php
$greeting = 'Hi ' . $_GET['name'];`,
	})
	wantFindings(t, res, 1, 0)
}

func TestIncludeFunctionDefinition(t *testing.T) {
	t.Parallel()
	res := scanFiles(t, map[string]string{
		"main.php": `<?php
require_once 'lib.php';
render_it($_GET['x']);`,
		"lib.php": `<?php
function render_it($s) { echo $s; }`,
	})
	wantFindings(t, res, 1, 0)
}

func TestIncludeBudgetFailsFile(t *testing.T) {
	t.Parallel()
	files := map[string]string{}
	var includes strings.Builder
	includes.WriteString("<?php\n")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&includes, "include 'part%d.php';\n", i)
		files[fmt.Sprintf("part%d.php", i)] = "<?php $x" + fmt.Sprint(i) + " = 1;"
	}
	includes.WriteString("echo $_GET['x'];\n")
	files["huge.php"] = includes.String()

	res := scanFiles(t, files)
	foundFailed := false
	for _, f := range res.FilesFailed {
		if f == "huge.php" {
			foundFailed = true
		}
	}
	if !foundFailed {
		t.Fatalf("huge.php should fail the include budget; failed = %v", res.FilesFailed)
	}
	// The vulnerability inside the failed file must NOT be reported.
	for _, f := range res.Findings {
		if f.File == "huge.php" {
			t.Errorf("finding in failed file: %v", f)
		}
	}
}

func TestGlobalKeywordBinding(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$payload = $_GET['p'];
function emit() {
	global $payload;
	echo $payload;
}
emit();`)
	wantFindings(t, res, 1, 0)
}

func TestClosureBodyAnalyzed(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
add_action('init', function () {
	echo $_GET['q'];
});`)
	wantFindings(t, res, 1, 0)
}

func TestGetOptionIsDBSource(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$title = get_option('my_plugin_title');
echo $title;`)
	wantFindings(t, res, 1, 0)
	if res.Findings[0].Vector != analyzer.VectorDB {
		t.Errorf("vector = %v, want DB", res.Findings[0].Vector)
	}
}

func TestMysqlFetchSource(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$r = mysql_query("SELECT * FROM t");
while ($row = mysql_fetch_assoc($r)) {
	echo $row['name'];
}`)
	wantFindings(t, res, 1, 0)
	if res.Findings[0].Vector != analyzer.VectorDB {
		t.Errorf("vector = %v, want DB", res.Findings[0].Vector)
	}
}

func TestPaperStripslashesDBExample(t *testing.T) {
	t.Parallel()
	// §V.C example adapted from wp-photo-album-plus: a prepared query is
	// SQL-safe but the echoed result is still an XSS (blended attack).
	res := scan(t, `<?php
global $wpdb;
$image = $wpdb->get_var($wpdb->prepare("SELECT name FROM t WHERE id=%d", $id));
echo stripslashes($image);`)
	wantFindings(t, res, 1, 0)
	if res.Findings[0].Class != analyzer.XSS {
		t.Errorf("class = %v, want XSS", res.Findings[0].Class)
	}
}

func TestCustomSanitizerNotRecognized(t *testing.T) {
	t.Parallel()
	// A plugin-defined regex cleaner is beyond the configuration's
	// knowledge: phpSAFE conservatively keeps the taint (its documented
	// FP profile, §V.A).
	res := scan(t, `<?php
function my_clean($s) {
	return preg_replace('/[^a-z0-9_]/', '', $s);
}
echo my_clean($_GET['slug']);`)
	wantFindings(t, res, 1, 0)
}

func TestResultAccounting(t *testing.T) {
	t.Parallel()
	res := scanFiles(t, map[string]string{
		"a.php": "<?php\necho 1;\n",
		"b.php": "<?php\necho 2;\n",
	})
	if res.FilesAnalyzed != 2 {
		t.Errorf("FilesAnalyzed = %d, want 2", res.FilesAnalyzed)
	}
	if res.LinesAnalyzed < 4 {
		t.Errorf("LinesAnalyzed = %d, want >= 4", res.LinesAnalyzed)
	}
}

func TestFindingTraceEndsAtSink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$a = $_GET['a'];
$b = $a;
echo $b;`)
	wantFindings(t, res, 1, 0)
	trace := res.Findings[0].Trace
	last := trace[len(trace)-1]
	if !strings.Contains(last.Note, "sink") {
		t.Errorf("last trace step should be the sink, got %v", last)
	}
}

func TestSummariesVsConcreteAgree(t *testing.T) {
	t.Parallel()
	src := `<?php
function wrap($s) { return '<b>' . $s . '</b>'; }
function show($s) { echo wrap($s); }
show($_GET['x']);
echo wrap($_POST['y']);`
	withSummaries := scan(t, src)

	opts := DefaultOptions()
	opts.FunctionSummaries = false
	concrete := scanOpts(t, opts, src)

	if len(withSummaries.Findings) != len(concrete.Findings) {
		t.Fatalf("summary mode found %d, concrete mode found %d",
			len(withSummaries.Findings), len(concrete.Findings))
	}
}
