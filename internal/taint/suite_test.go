package taint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/wordpress"
)

// The testdata/suite directory holds hand-written PHP cases in the style
// of public static-analysis benchmarks: each sink line carries an inline
// "// EXPECT: <CLASS>" marker, and safe files carry none. The driver runs
// phpSAFE over every file and demands an exact match — no missed
// expectations, no extra findings.

// expectMarker is the inline directive.
const expectMarker = "// EXPECT: "

// parseExpectations extracts (line, class) pairs from a suite file.
func parseExpectations(t *testing.T, content string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	for i, line := range strings.Split(content, "\n") {
		idx := strings.Index(line, expectMarker)
		if idx < 0 {
			continue
		}
		name := strings.TrimSpace(line[idx+len(expectMarker):])
		var class analyzer.VulnClass
		switch name {
		case "XSS":
			class = analyzer.XSS
		case "SQLi":
			class = analyzer.SQLi
		case "CMDi":
			class = analyzer.CmdInjection
		case "LFI":
			class = analyzer.FileInclusion
		default:
			t.Fatalf("unknown expectation %q", name)
		}
		want[fmt.Sprintf("%d:%s", i+1, class)] = true
	}
	return want
}

func TestSuite(t *testing.T) {
	t.Parallel()
	entries, err := os.ReadDir(filepath.Join("testdata", "suite"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 15 {
		t.Fatalf("suite has %d files, expected the full set", len(entries))
	}
	engine := New(wordpress.Compiled(), DefaultOptions())

	for _, entry := range entries {
		entry := entry
		if !strings.HasSuffix(entry.Name(), ".php") {
			continue
		}
		t.Run(entry.Name(), func(t *testing.T) {
			t.Parallel()
			raw, err := os.ReadFile(filepath.Join("testdata", "suite", entry.Name()))
			if err != nil {
				t.Fatal(err)
			}
			content := string(raw)
			want := parseExpectations(t, content)

			res, err := engine.Analyze(&analyzer.Target{
				Name:  entry.Name(),
				Files: []analyzer.SourceFile{{Path: entry.Name(), Content: content}},
			})
			if err != nil {
				t.Fatal(err)
			}

			got := make(map[string]bool, len(res.Findings))
			for _, f := range res.Findings {
				got[fmt.Sprintf("%d:%s", f.Line, f.Class)] = true
			}
			for key := range want {
				if !got[key] {
					t.Errorf("missed expected finding at %s", key)
				}
			}
			for key := range got {
				if !want[key] {
					t.Errorf("unexpected finding at %s", key)
				}
			}
		})
	}
}

// TestSuiteBaselinesEnvelope spot-checks the capability envelopes on the
// suite: the baselines must miss the OOP cases and Pixy must miss the
// uncalled-hook case.
func TestSuiteBaselinesEnvelope(t *testing.T) {
	t.Parallel()
	read := func(name string) string {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join("testdata", "suite", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	oopCase := &analyzer.Target{
		Name:  "oop",
		Files: []analyzer.SourceFile{{Path: "x.php", Content: read("03-xss-wpdb-rows.php")}},
	}

	php := New(wordpress.Compiled(), DefaultOptions())
	res, err := php.Analyze(oopCase)
	if err != nil || len(res.Findings) != 1 {
		t.Fatalf("phpSAFE on OOP case: %v findings, err %v", len(res.Findings), err)
	}

	blind := DefaultOptions()
	blind.OOP = false
	res, err = New(wordpress.Compiled(), blind).Analyze(oopCase)
	if err != nil || len(res.Findings) != 0 {
		t.Fatalf("OOP-blind engine on OOP case: %d findings, err %v (must be 0)",
			len(res.Findings), err)
	}
}
