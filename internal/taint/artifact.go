package taint

// Incremental-analysis support: per-file replayable results and portable
// (serializable) function summaries. internal/incremental plans which
// files of a snapshot may be reused from a previous scan and calls
// AnalyzeIncremental with a Seed; everything here keeps that warm path
// byte-identical to a cold Analyze.
//
// The soundness contract is the planner's: a file may only be skipped
// when every file it could interact with — via includes, cross-file
// calls, class references or shared globals — is skipped with it (the
// dependency component, see internal/incremental). Under that contract
// the engine still parses and inventories every file (so the
// called-function tables and declaration maps match a cold scan
// exactly), still runs the include-budget checks for every file (they
// are deterministic in the ASTs), and only replaces the skipped files'
// summarization and top-level flows with their recorded outcomes.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/govern"
	"repro/internal/phpast"
)

// FileResult is the replayable per-file outcome of one scan: the
// findings attributed to the file and the summaries of the functions
// and methods it declares. It is the payload of one artifact in the
// incremental store and round-trips through JSON unchanged.
type FileResult struct {
	Findings  []analyzer.Finding          `json:"findings,omitempty"`
	Summaries map[string]*PortableSummary `json:"summaries,omitempty"`
}

// Seed carries a previous scan's reusable state into an incremental
// scan: Skip maps file paths to the results replayed for them, and
// Parsed supplies ready ASTs by path for any file (skipped or not).
type Seed struct {
	Skip   map[string]*FileResult
	Parsed map[string]*phpast.File
}

// PortableTaint is one vulnerability-class taint with its provenance.
type PortableTaint struct {
	Class  analyzer.VulnClass   `json:"class"`
	Vector analyzer.Vector      `json:"vector"`
	Trace  []analyzer.TraceStep `json:"trace,omitempty"`
}

// PortableParam is a symbolic dependency on one function parameter.
type PortableParam struct {
	Param   int                  `json:"param"`
	Classes []analyzer.VulnClass `json:"classes"`
}

// PortableValue is the serializable form of an abstract value.
type PortableValue struct {
	Taints  []PortableTaint `json:"taints,omitempty"`
	Latent  []PortableTaint `json:"latent,omitempty"`
	Params  []PortableParam `json:"params,omitempty"`
	Class   string          `json:"class,omitempty"`
	Numeric bool            `json:"numeric,omitempty"`
	Filters []string        `json:"filters,omitempty"`
}

// PortableFlow is a parameter→sink flow recorded inside a function body.
type PortableFlow struct {
	Param    int                `json:"param"`
	Class    analyzer.VulnClass `json:"class"`
	Sink     string             `json:"sink"`
	File     string             `json:"file"`
	Line     int                `json:"line"`
	Variable string             `json:"variable,omitempty"`
	CWE      int                `json:"cwe,omitempty"`
	Severity string             `json:"severity,omitempty"`
}

// PortableSummary is the serializable form of one function summary.
type PortableSummary struct {
	Ret   *PortableValue `json:"ret,omitempty"`
	Flows []PortableFlow `json:"flows,omitempty"`
}

// AnalyzeIncremental scans target like Analyze, replaying the seeded
// files instead of re-analyzing them, and additionally returns the
// per-file artifacts of every file it did analyze (for write-back into
// the store). A nil seed makes it a cold scan that still exports
// artifacts.
func (e *Engine) AnalyzeIncremental(target *analyzer.Target, seed *Seed) (*analyzer.Result, map[string]*FileResult, error) {
	return e.analyze(context.Background(), target, nil, seed, true)
}

// AnalyzeIncrementalContext is AnalyzeIncremental under a context and
// resource budgets. A scan touched by any budget — truncation,
// cancellation, a recovered panic — exports no artifacts: partial
// per-file results must never be written back as reusable state.
func (e *Engine) AnalyzeIncrementalContext(ctx context.Context, target *analyzer.Target, opts *analyzer.ScanOptions, seed *Seed) (*analyzer.Result, map[string]*FileResult, error) {
	return e.analyze(ctx, target, opts, seed, true)
}

// analyze is the shared scan pipeline behind Analyze, AnalyzeContext
// and the incremental entry points.
func (e *Engine) analyze(ctx context.Context, target *analyzer.Target, opts *analyzer.ScanOptions, seed *Seed, export bool) (*analyzer.Result, map[string]*FileResult, error) {
	if target == nil {
		return nil, nil, fmt.Errorf("taint: nil target")
	}
	a := newAnalysis(e, target)
	a.gov = govern.New(ctx, opts, e.rec)
	a.fileWorkers = opts.EffectiveFileWorkers()
	if seed != nil {
		a.skip = seed.Skip
		a.preparsed = seed.Parsed
	}
	scan := e.rec.StartNamedSpan("scan:", target.Name, nil)
	model := scan.StartChild("model")
	a.buildModel(model)
	model.EndAndObserve("stage_model_seconds")
	a.importSummaries()
	tsp := scan.StartChild("taint")
	a.run()
	a.replaySkipped()
	tsp.EndAndObserve("stage_taint_seconds")
	a.result.Dedup()
	err := a.gov.Finish(a.result)
	scan.End()
	a.flushStats()
	var arts map[string]*FileResult
	if export && err == nil && !a.result.Truncated && len(a.result.RobustnessFailures) == 0 {
		arts = a.exportArtifacts()
	}
	return a.result, arts, err
}

// skipped reports whether path's analysis is replayed from a seed.
func (a *analysis) skipped(path string) bool {
	_, ok := a.skip[path]
	return ok
}

// importSummaries seeds the summary table from the skipped files'
// artifacts. Seeded summaries are complete (done), so summarizeFunction
// short-circuits on them: the uncalled-function pass over a skipped
// file costs a map lookup instead of a body walk.
func (a *analysis) importSummaries() {
	for _, path := range sortedKeys(a.skip) {
		fr := a.skip[path]
		if fr == nil {
			continue
		}
		if _, inTarget := a.files[path]; !inTarget {
			continue
		}
		for _, key := range sortedKeys(fr.Summaries) {
			if _, exists := a.summaries[key]; exists {
				continue
			}
			a.summaries[key] = fr.Summaries[key].summary(path)
		}
	}
}

// replaySkipped appends the recorded findings of every skipped file.
// Ordering relative to the freshly generated findings is irrelevant:
// findings sharing a dedup key share a file, hence a dependency
// component, hence are either all replayed or all fresh — and Dedup
// sorts the final list either way.
func (a *analysis) replaySkipped() {
	for _, path := range sortedKeys(a.skip) {
		fr := a.skip[path]
		if fr == nil {
			continue
		}
		if _, inTarget := a.files[path]; !inTarget {
			continue
		}
		a.result.Findings = append(a.result.Findings, fr.Findings...)
	}
}

// exportArtifacts groups the scan's outcome per analyzed (non-skipped)
// file: its findings from the deduplicated result and the summaries of
// the functions it declares. Every analyzed file gets an entry, even an
// empty one — "analyzed and clean" must be reusable too.
func (a *analysis) exportArtifacts() map[string]*FileResult {
	out := make(map[string]*FileResult, len(a.fileOrder))
	for _, path := range a.fileOrder {
		if a.skipped(path) {
			continue
		}
		out[path] = &FileResult{}
	}
	for _, f := range a.result.Findings {
		if fr, ok := out[f.File]; ok {
			fr.Findings = append(fr.Findings, f)
		}
	}
	for _, key := range sortedKeys(a.summaries) {
		s := a.summaries[key]
		if !s.done || s.imported {
			continue
		}
		fr, ok := out[s.file]
		if !ok {
			continue
		}
		if fr.Summaries == nil {
			fr.Summaries = make(map[string]*PortableSummary, 4)
		}
		fr.Summaries[key] = portableSummary(s)
	}
	return out
}

// sortedKeys returns the map's keys in sorted order, for deterministic
// iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// summary <-> portable conversions
// ---------------------------------------------------------------------------

// portableSummary converts an engine summary to its serializable form.
func portableSummary(s *summary) *PortableSummary {
	out := &PortableSummary{Ret: portableValue(s.ret)}
	for _, f := range s.flows {
		out.Flows = append(out.Flows, PortableFlow{
			Param:    f.param,
			Class:    f.class,
			Sink:     f.sink,
			File:     f.file,
			Line:     f.line,
			Variable: f.variable,
			CWE:      f.cwe,
			Severity: f.severity,
		})
	}
	return out
}

// summary reconstructs an engine summary marked complete and imported.
func (p *PortableSummary) summary(file string) *summary {
	s := &summary{done: true, imported: true, file: file}
	if p == nil {
		s.ret = untainted()
		return s
	}
	s.ret = p.Ret.value()
	for _, f := range p.Flows {
		s.flows = append(s.flows, sinkFlow{
			param:    f.Param,
			class:    f.Class,
			sink:     f.Sink,
			file:     f.File,
			line:     f.Line,
			variable: f.Variable,
			cwe:      f.CWE,
			severity: f.Severity,
		})
	}
	return s
}

// portableValue converts an abstract value to its serializable form.
// Map-shaped state is flattened into slices ordered by class/parameter
// number so the encoding is deterministic.
func portableValue(v *value) *PortableValue {
	if v == nil {
		return nil
	}
	out := &PortableValue{Class: v.class, Numeric: v.numeric}
	out.Taints = portableTaints(v.taints)
	out.Latent = portableTaints(v.latent)
	if len(v.params) > 0 {
		idxs := make([]int, 0, len(v.params))
		for i := range v.params {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			out.Params = append(out.Params, PortableParam{
				Param:   i,
				Classes: sortedClassSet(v.params[i]),
			})
		}
	}
	if len(v.filters) > 0 {
		out.Filters = append([]string(nil), v.filters...)
	}
	return out
}

// value reconstructs an abstract value from its serializable form.
func (p *PortableValue) value() *value {
	if p == nil {
		return untainted()
	}
	v := &value{class: p.Class, numeric: p.Numeric}
	v.taints = taintMap(p.Taints)
	v.latent = taintMap(p.Latent)
	if len(p.Params) > 0 {
		v.params = make(paramDep, len(p.Params))
		for _, pp := range p.Params {
			inner := make(map[analyzer.VulnClass]bool, len(pp.Classes))
			for _, c := range pp.Classes {
				inner[c] = true
			}
			v.params[pp.Param] = inner
		}
	}
	if len(p.Filters) > 0 {
		v.filters = append([]string(nil), p.Filters...)
	}
	return v
}

// portableTaints flattens a taint map into class-ordered slices.
func portableTaints(m map[analyzer.VulnClass]*taintInfo) []PortableTaint {
	if len(m) == 0 {
		return nil
	}
	classes := make([]int, 0, len(m))
	for c := range m {
		classes = append(classes, int(c))
	}
	sort.Ints(classes)
	out := make([]PortableTaint, 0, len(classes))
	for _, c := range classes {
		t := m[analyzer.VulnClass(c)]
		pt := PortableTaint{Class: analyzer.VulnClass(c), Vector: t.vector}
		if len(t.trace) > 0 {
			pt.Trace = append([]analyzer.TraceStep(nil), t.trace...)
		}
		out = append(out, pt)
	}
	return out
}

// taintMap rebuilds a taint map from its flattened form.
func taintMap(list []PortableTaint) map[analyzer.VulnClass]*taintInfo {
	if len(list) == 0 {
		return nil
	}
	m := make(map[analyzer.VulnClass]*taintInfo, len(list))
	for _, pt := range list {
		ti := &taintInfo{vector: pt.Vector}
		if len(pt.Trace) > 0 {
			ti.trace = append([]analyzer.TraceStep(nil), pt.Trace...)
		}
		m[pt.Class] = ti
	}
	return m
}

// sortedClassSet flattens a class set into an ordered slice.
func sortedClassSet(set map[analyzer.VulnClass]bool) []analyzer.VulnClass {
	ints := make([]int, 0, len(set))
	for c, ok := range set {
		if ok {
			ints = append(ints, int(c))
		}
	}
	sort.Ints(ints)
	out := make([]analyzer.VulnClass, len(ints))
	for i, c := range ints {
		out[i] = analyzer.VulnClass(c)
	}
	return out
}
