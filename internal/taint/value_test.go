package taint

import (
	"testing"
	"testing/quick"

	"repro/internal/analyzer"
)

// step is a shared trace step for tests.
var step = analyzer.TraceStep{File: "f.php", Line: 1, Var: "$x", Note: "test"}

func TestNewTaintAndPredicates(t *testing.T) {
	t.Parallel()
	v := newTaint([]analyzer.VulnClass{analyzer.XSS}, analyzer.VectorGET, step)
	if !v.isTainted(analyzer.XSS) || v.isTainted(analyzer.SQLi) {
		t.Fatalf("taints = %v", v.taintedClasses())
	}
	all := newTaint(analyzer.Classes(), analyzer.VectorPOST, step)
	if got := all.taintedClasses(); len(got) != len(analyzer.Classes()) {
		t.Fatalf("taintedClasses = %v, want every class", got)
	}
	if untainted().isTainted(analyzer.XSS) {
		t.Error("untainted value is tainted")
	}
	var nilVal *value
	if nilVal.isTainted(analyzer.XSS) || nilVal.taintedClasses() != nil {
		t.Error("nil value should behave as untainted")
	}
}

func TestMergeUnionsTaint(t *testing.T) {
	t.Parallel()
	xss := newTaint([]analyzer.VulnClass{analyzer.XSS}, analyzer.VectorGET, step)
	sqli := newTaint([]analyzer.VulnClass{analyzer.SQLi}, analyzer.VectorDB, step)
	m := merge(xss, sqli)
	if !m.isTainted(analyzer.XSS) || !m.isTainted(analyzer.SQLi) {
		t.Fatalf("merge lost taint: %v", m.taintedClasses())
	}
	// The inputs must be unchanged (immutability).
	if xss.isTainted(analyzer.SQLi) || sqli.isTainted(analyzer.XSS) {
		t.Error("merge mutated its inputs")
	}
	// Vector of the first taint wins for provenance.
	if m.taints[analyzer.XSS].vector != analyzer.VectorGET {
		t.Errorf("XSS vector = %v", m.taints[analyzer.XSS].vector)
	}
}

func TestMergeNumericAndClass(t *testing.T) {
	t.Parallel()
	n1, n2 := numericValue(), numericValue()
	if !merge(n1, n2).numeric {
		t.Error("numeric ∧ numeric should stay numeric")
	}
	if merge(n1, untainted()).numeric {
		// untainted() is the neutral element: merge returns the other
		// side unchanged, which is numeric here.
		t.Log("merge with neutral keeps the non-neutral side")
	}
	tainted := newTaint(analyzer.Classes(), analyzer.VectorGET, step)
	if merge(numericValue(), tainted).numeric {
		t.Error("numeric ∧ tainted-string should not be numeric")
	}
	obj := objectValue("wpdb")
	if got := merge(obj, untainted()).class; got != "wpdb" {
		t.Errorf("class lost in merge: %q", got)
	}
}

func TestSanitizeMovesToLatentAndRevertRestores(t *testing.T) {
	t.Parallel()
	v := newTaint(analyzer.Classes(), analyzer.VectorGET, step)
	s := v.sanitize([]analyzer.VulnClass{analyzer.SQLi}, "addslashes")
	if s.isTainted(analyzer.SQLi) {
		t.Fatal("sanitize did not clear SQLi")
	}
	if !s.isTainted(analyzer.XSS) {
		t.Fatal("sanitize cleared the wrong class")
	}
	if len(s.latent) != 1 {
		t.Fatalf("latent = %v, want the sanitized taint", s.latent)
	}
	if len(s.filters) != 1 || s.filters[0] != "addslashes" {
		t.Fatalf("filters = %v", s.filters)
	}
	// Original untouched.
	if !v.isTainted(analyzer.SQLi) {
		t.Fatal("sanitize mutated its input")
	}

	r := s.revert("stripslashes", 12, step)
	if !r.isTainted(analyzer.SQLi) || !r.isTainted(analyzer.XSS) {
		t.Fatalf("revert did not restore taint: %v", r.taintedClasses())
	}
	if len(r.latent) != 0 {
		t.Fatalf("latent should drain on revert: %v", r.latent)
	}
}

func TestParamDependencies(t *testing.T) {
	t.Parallel()
	p := paramValue(0)
	if !p.hasParamDeps() {
		t.Fatal("param value should have deps")
	}
	s := p.sanitize([]analyzer.VulnClass{analyzer.XSS}, "esc_html")
	if s.params[0][analyzer.XSS] {
		t.Error("sanitize should clear the class from param deps")
	}
	if !s.params[0][analyzer.SQLi] {
		t.Error("sanitize cleared too much")
	}
	s2 := s.sanitize(analyzer.Classes(), "intval")
	if s2.hasParamDeps() {
		t.Error("fully sanitized param deps should vanish")
	}
}

func TestTraceBounding(t *testing.T) {
	t.Parallel()
	limit := 5
	v := newTaint([]analyzer.VulnClass{analyzer.XSS}, analyzer.VectorGET, step)
	for i := 0; i < 20; i++ {
		v = v.withStep(limit, analyzer.TraceStep{File: "f.php", Line: i + 2, Var: "$x"})
	}
	trace := v.taints[analyzer.XSS].trace
	if len(trace) > limit {
		t.Fatalf("trace length = %d, want <= %d", len(trace), limit)
	}
	// The source step must survive the elision.
	if trace[0].Note != "test" {
		t.Errorf("first step lost: %+v", trace[0])
	}
	// The newest step must be present.
	if trace[len(trace)-1].Line != 21 {
		t.Errorf("last step = %+v, want line 21", trace[len(trace)-1])
	}
}

func TestWithStepNoTaintIsNoop(t *testing.T) {
	t.Parallel()
	v := untainted()
	if got := v.withStep(10, step); got != v {
		t.Error("withStep on untainted value should be a no-op")
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	v := newTaint(analyzer.Classes(), analyzer.VectorGET, step)
	v.filters = []string{"a"}
	c := v.clone()
	c.filters = append(c.filters, "b")
	delete(c.taints, analyzer.XSS)
	if len(v.filters) != 1 || !v.isTainted(analyzer.XSS) {
		t.Fatal("clone aliases its source")
	}
	var nilVal *value
	if nilVal.clone() == nil {
		t.Fatal("clone of nil should produce a fresh value")
	}
}

// TestQuickMergeMonotone checks the lattice property: merging never
// removes taint from either operand's class set.
func TestQuickMergeMonotone(t *testing.T) {
	t.Parallel()
	mk := func(bits uint8) *value {
		var classes []analyzer.VulnClass
		if bits&1 != 0 {
			classes = append(classes, analyzer.XSS)
		}
		if bits&2 != 0 {
			classes = append(classes, analyzer.SQLi)
		}
		if len(classes) == 0 {
			return untainted()
		}
		return newTaint(classes, analyzer.VectorGET, step)
	}
	f := func(a, b uint8) bool {
		va, vb := mk(a), mk(b)
		m := merge(va, vb)
		for _, c := range analyzer.Classes() {
			if (va.isTainted(c) || vb.isTainted(c)) && !m.isTainted(c) {
				return false
			}
			if m.isTainted(c) && !va.isTainted(c) && !vb.isTainted(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeCommutativeTaintSet checks the taint set (not provenance)
// is commutative.
func TestQuickMergeCommutativeTaintSet(t *testing.T) {
	t.Parallel()
	mk := func(bits uint8) *value {
		v := untainted()
		if bits&1 != 0 {
			v = merge(v, newTaint([]analyzer.VulnClass{analyzer.XSS}, analyzer.VectorGET, step))
		}
		if bits&2 != 0 {
			v = merge(v, newTaint([]analyzer.VulnClass{analyzer.SQLi}, analyzer.VectorDB, step))
		}
		if bits&4 != 0 {
			v = merge(v, numericValue())
		}
		return v
	}
	f := func(a, b uint8) bool {
		ab := merge(mk(a), mk(b))
		ba := merge(mk(b), mk(a))
		for _, c := range analyzer.Classes() {
			if ab.isTainted(c) != ba.isTainted(c) {
				return false
			}
		}
		return ab.numeric == ba.numeric
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSanitizeRevertRoundTrip checks sanitize followed by revert
// restores the original taint set for any class subset.
func TestQuickSanitizeRevertRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(bits uint8) bool {
		var classes []analyzer.VulnClass
		if bits&1 != 0 {
			classes = append(classes, analyzer.XSS)
		}
		if bits&2 != 0 {
			classes = append(classes, analyzer.SQLi)
		}
		v := newTaint(analyzer.Classes(), analyzer.VectorGET, step)
		round := v.sanitize(classes, "s").revert("r", 12, step)
		for _, c := range analyzer.Classes() {
			if !round.isTainted(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAll(t *testing.T) {
	t.Parallel()
	vals := []*value{
		untainted(),
		newTaint([]analyzer.VulnClass{analyzer.XSS}, analyzer.VectorGET, step),
		nil,
		newTaint([]analyzer.VulnClass{analyzer.SQLi}, analyzer.VectorDB, step),
	}
	m := mergeAll(vals...)
	if len(m.taintedClasses()) != 2 {
		t.Fatalf("mergeAll = %v", m.taintedClasses())
	}
	if got := mergeAll(); got == nil || got.isTainted(analyzer.XSS) {
		t.Error("empty mergeAll should be untainted")
	}
}
