package taint

import (
	"repro/internal/analyzer"
	"repro/internal/phpast"
)

// summary is the reusable data flow of one user-defined function or
// method: its abstract return value (which may depend symbolically on
// parameters) and the parameter-to-sink flows discovered in the body.
// The paper (§III.C): "every function is analyzed only the first time it
// is called ... The data flow of the variables of this analysis is used to
// process future calls."
type summary struct {
	// ret is the merged abstract value of all return statements.
	ret *value
	// flows lists parameter-dependent sink reaches inside the body.
	flows []sinkFlow
	// done marks the summary complete and reusable.
	done bool
	// file is the declaring file, so incremental scans can group
	// summaries into per-file artifacts (see artifact.go).
	file string
	// imported marks summaries seeded from a previous scan's artifacts;
	// they short-circuit re-analysis and are never re-exported.
	imported bool
}

// sinkFlow records that parameter 'param', if tainted for 'class',
// reaches the named sink at file:line. cwe/severity carry the sink
// rule's metadata (zero/empty = class defaults).
type sinkFlow struct {
	param    int
	class    analyzer.VulnClass
	sink     string
	file     string
	line     int
	variable string
	cwe      int
	severity string
}

// addReturn merges a return value into the summary.
func (s *summary) addReturn(v *value) {
	if s.ret == nil {
		s.ret = v
		return
	}
	s.ret = merge(s.ret, v)
}

// callUser analyzes a call to a user-defined function or method. In
// summary mode the body is analyzed once with symbolic parameters; later
// calls instantiate the recorded flows with the actual argument taints.
// With summaries disabled (whole-program ablation, §II), the body is
// re-analyzed with the concrete arguments at every call site.
func (a *analysis) callUser(key, file string, class *classInfo,
	params []phpast.Param, body []phpast.Stmt,
	args []*value, displayName string, line int, sc *scope) *value {

	if a.callDepth >= a.opts.MaxCallDepth {
		return untainted()
	}

	if !a.opts.FunctionSummaries {
		return a.callConcrete(key, file, class, params, body, args)
	}

	sum := a.summarizeFunction(key, file, class, params, body, args)
	if sum == nil {
		return untainted() // recursion in progress
	}
	return a.instantiate(sum, args, displayName, line)
}

// summarizeFunction analyzes a function body once and caches the result.
// Parameters are bound to the union of a symbolic marker (so later calls
// can be instantiated with their own argument taints) and the first
// call's concrete argument value — the paper's context: "every function
// is analyzed only the first time it is called, taking into account the
// context (parameters, global variables, scope) of the call" (§III.C).
// The concrete binding is what lets first-call taint flow into object
// properties and globals. It returns nil when the function is already
// being analyzed (recursion, §III.C: "functions that are called
// recursively are parsed only once to avoid endless loops").
func (a *analysis) summarizeFunction(key, file string, class *classInfo,
	params []phpast.Param, body []phpast.Stmt, args []*value) *summary {

	if sum, ok := a.summaries[key]; ok && sum.done {
		a.stats.summaryReuses++
		return sum
	}
	if a.inProgress[key] {
		return nil
	}
	a.inProgress[key] = true
	defer delete(a.inProgress, key)
	a.stats.funcsAnalyzed++

	sum := &summary{file: file}
	inner := &scope{
		vars:      make(map[string]*value, len(params)+4),
		class:     class,
		collector: sum,
		funcName:  key,
	}
	for i, p := range params {
		pv := paramValue(i)
		if i < len(args) && args[i] != nil {
			pv = merge(pv, args[i])
		}
		if p.Default != nil {
			a.eval(p.Default, inner) // defaults are harmless but may declare state
		}
		inner.vars[p.Name] = pv
	}

	prevFile, prevCollector := a.curFile, a.curCollector
	a.curFile, a.curCollector = file, sum
	a.callDepth++
	a.execStmts(body, inner)
	a.callDepth--
	a.curFile, a.curCollector = prevFile, prevCollector

	if sum.ret == nil {
		sum.ret = untainted()
	}
	sum.done = true
	a.summaries[key] = sum
	return sum
}

// instantiate applies a completed summary to concrete argument values:
// parameter-dependent sink flows with tainted arguments become findings,
// and the return value is the summary return with parameter dependencies
// substituted by the argument taints.
func (a *analysis) instantiate(sum *summary, args []*value, displayName string, line int) *value {
	for _, flow := range sum.flows {
		if flow.param >= len(args) || args[flow.param] == nil {
			continue
		}
		arg := args[flow.param]
		t, ok := arg.taints[flow.class]
		if !ok {
			continue
		}
		step := analyzer.TraceStep{
			File: a.curFile, Line: line, Var: displayName + "()",
			Note: "passed into " + displayName,
		}
		inner := t.withStep(a.opts.MaxTraceDepth, step)
		a.report(flow.sink, flow.class, flow.file, flow.line, flow.variable, inner,
			flow.cwe, flow.severity)
	}
	// Transitive parameter flows: an argument carrying outer-parameter
	// dependencies turns inner sink flows into outer sink flows.
	for _, flow := range sum.flows {
		if flow.param >= len(args) || args[flow.param] == nil {
			continue
		}
		arg := args[flow.param]
		for outerParam, classes := range arg.params {
			if classes[flow.class] {
				a.recordFlow(a.curCollector, sinkFlow{
					param:    outerParam,
					class:    flow.class,
					sink:     flow.sink,
					file:     flow.file,
					line:     flow.line,
					variable: flow.variable,
					cwe:      flow.cwe,
					severity: flow.severity,
				})
			}
		}
	}

	return a.substituteParams(sum.ret, args, displayName, line)
}

// substituteParams resolves a summary return value against concrete
// arguments: real taints survive; parameter dependencies import the
// matching argument taints (restricted to the classes that were not
// sanitized inside the callee).
func (a *analysis) substituteParams(ret *value, args []*value, displayName string, line int) *value {
	if ret == nil {
		return untainted()
	}
	out := ret.clone()
	deps := out.params
	out.params = nil
	for i, classes := range deps {
		if i >= len(args) || args[i] == nil {
			continue
		}
		arg := args[i]
		for c := range classes {
			if t, ok := arg.taints[c]; ok {
				if out.taints == nil {
					out.taints = make(map[analyzer.VulnClass]*taintInfo, 2)
				}
				if _, exists := out.taints[c]; !exists {
					out.taints[c] = t.withStep(a.opts.MaxTraceDepth, analyzer.TraceStep{
						File: a.curFile, Line: line, Var: displayName + "()",
						Note: "returned from " + displayName,
					})
				}
			}
			// Keep outer-parameter dependencies flowing through.
			for outerParam, outerClasses := range arg.params {
				if outerClasses[c] {
					if out.params == nil {
						out.params = make(paramDep, 2)
					}
					if out.params[outerParam] == nil {
						out.params[outerParam] = make(map[analyzer.VulnClass]bool, 2)
					}
					out.params[outerParam][c] = true
				}
			}
		}
	}
	return out
}

// callConcrete re-analyzes a body with concrete argument values — the
// whole-program ablation mode (§II: "a function is parsed every time it
// is called ... requires a lot of memory and processing power").
func (a *analysis) callConcrete(key, file string, class *classInfo,
	params []phpast.Param, body []phpast.Stmt, args []*value) *value {

	if a.inProgress[key] {
		return untainted()
	}
	a.inProgress[key] = true
	defer delete(a.inProgress, key)
	a.stats.funcsAnalyzed++

	collector := &summary{}
	inner := &scope{
		vars:      make(map[string]*value, len(params)+4),
		class:     class,
		collector: collector,
		funcName:  key,
	}
	for i, p := range params {
		if i < len(args) && args[i] != nil {
			inner.vars[p.Name] = args[i]
		} else if p.Default != nil {
			inner.vars[p.Name] = a.eval(p.Default, inner)
		} else {
			inner.vars[p.Name] = untainted()
		}
	}
	prevFile, prevCollector := a.curFile, a.curCollector
	a.curFile, a.curCollector = file, collector
	a.callDepth++
	a.execStmts(body, inner)
	a.callDepth--
	a.curFile, a.curCollector = prevFile, prevCollector

	if collector.ret == nil {
		return untainted()
	}
	return collector.ret
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

// checkSink inspects a value reaching a native sink (echo, backticks,
// include) whose CWE/severity metadata is the class default.
func (a *analysis) checkSink(sinkName string, class analyzer.VulnClass,
	v *value, line int, varName string, sc *scope) {
	a.checkSinkMeta(sinkName, class, v, line, varName, sc, 0, "")
}

// checkSinkMeta inspects a value reaching a sink. Active taint of the
// sink's class yields a finding; in summary mode, parameter dependence
// records a flow for call-site instantiation. cwe/severity carry the
// sink rule's metadata (zero/empty = class defaults).
func (a *analysis) checkSinkMeta(sinkName string, class analyzer.VulnClass,
	v *value, line int, varName string, sc *scope, cwe int, severity string) {
	a.stats.sinkChecks++
	if v == nil {
		return
	}
	if t, ok := v.taints[class]; ok {
		a.report(sinkName, class, a.curFile, line, varName, t, cwe, severity)
	}
	if sc.collector != nil {
		for param, classes := range v.params {
			if classes[class] {
				a.recordFlow(sc.collector, sinkFlow{
					param:    param,
					class:    class,
					sink:     sinkName,
					file:     a.curFile,
					line:     line,
					variable: varName,
					cwe:      cwe,
					severity: severity,
				})
			}
		}
	}
}

// recordFlow appends a parameter→sink flow to a summary, deduplicating
// identical flows.
func (a *analysis) recordFlow(sum *summary, flow sinkFlow) {
	if sum == nil {
		return
	}
	for _, f := range sum.flows {
		if f == flow {
			return
		}
	}
	sum.flows = append(sum.flows, flow)
}

// report emits a finding with its data-flow trace. cwe and severity
// carry the sink rule's metadata; zero/empty fall back to the class
// defaults so native sinks (echo, backticks, include) need no rule.
func (a *analysis) report(sinkName string, class analyzer.VulnClass,
	file string, line int, varName string, t *taintInfo, cwe int, severity string) {

	if cwe == 0 {
		cwe = class.CWE()
	}
	if severity == "" {
		severity = class.Severity()
	}
	trace := make([]analyzer.TraceStep, 0, len(t.trace)+1)
	trace = append(trace, t.trace...)
	trace = append(trace, analyzer.TraceStep{
		File: file, Line: line, Var: varName, Note: "reaches sink " + sinkName,
	})
	a.result.Findings = append(a.result.Findings, analyzer.Finding{
		Tool:     a.eng.Name(),
		File:     file,
		Line:     line,
		Class:    class,
		Sink:     sinkName,
		Variable: trimDollar(varName),
		Vector:   t.vector,
		CWE:      cwe,
		Severity: severity,
		Trace:    trace,
	})
	a.gov.CheckFindings(len(a.result.Findings))
}

// trimDollar removes a leading "$" from a variable display name.
func trimDollar(s string) string {
	if len(s) > 0 && s[0] == '$' {
		return s[1:]
	}
	return s
}
