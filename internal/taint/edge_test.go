package taint

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analyzer"
	"repro/internal/wordpress"
)

// Edge-case coverage for the analysis stage beyond the §III scenarios in
// engine_test.go.

func TestArrayAppendTaintsContainer(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$items = array();
$items[] = $_GET['x'];
foreach ($items as $it) { echo $it; }`)
	wantFindings(t, res, 1, 0)
}

func TestArrayKeyedStoreTaintsContainer(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$data = array('safe' => 'ok');
$data['user'] = $_POST['v'];
echo $data['anything'];`)
	// Coarse array model: the container carries the element taint.
	wantFindings(t, res, 1, 0)
}

func TestListDestructuringPropagates(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
list($a, $b) = array($_GET['x'], 'safe');
echo $a;`)
	wantFindings(t, res, 1, 0)
}

func TestForeachKeyTainted(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
foreach ($_POST as $key => $value) {
	echo '<li>' . $key . '</li>';
}`)
	wantFindings(t, res, 1, 0)
}

func TestCompoundConcatChain(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$html = '<ul>';
$html .= '<li>' . $_GET['a'] . '</li>';
$html .= '</ul>';
echo $html;`)
	wantFindings(t, res, 1, 0)
}

func TestSuppressionOperatorKeepsTaint(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php echo @$_GET['x'];`)
	wantFindings(t, res, 1, 0)
}

func TestTernaryBothArms(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$v = isset($_GET['x']) ? $_GET['x'] : 'default';
echo $v;`)
	wantFindings(t, res, 1, 0)

	res2 := scan(t, `<?php
$v = $_GET['x'] ?: 'default';
echo $v;`)
	wantFindings(t, res2, 1, 0)
}

func TestStaticPropertyFlow(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Store {
	public static $cache;
	static function put() { Store::$cache = $_GET['q']; }
	static function show() { echo Store::$cache; }
}
Store::put();
Store::show();`)
	wantFindings(t, res, 1, 0)
}

func TestParentCallResolution(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Base {
	function emit($s) { echo $s; }
}
class Child extends Base {
	function emit($s) { parent::emit('<b>' . $s . '</b>'); }
}
$c = new Child();
$c->emit($_COOKIE['pref']);`)
	wantFindings(t, res, 1, 0)
}

func TestConstructorTaintsProperty(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Form {
	public $value;
	function __construct($v) { $this->value = $v; }
	function render() { echo $this->value; }
}
$f = new Form($_POST['input']);
$f->render();`)
	wantFindings(t, res, 1, 0)
}

func TestIncludeCycleTerminates(t *testing.T) {
	t.Parallel()
	res := scanFiles(t, map[string]string{
		"a.php": `<?php include 'b.php'; echo $fromB;`,
		"b.php": `<?php include 'a.php'; $fromB = $_GET['x'];`,
	})
	if res == nil {
		t.Fatal("nil result")
	}
	// Mutual inclusion must terminate; the flow through b is visible.
	xss := 0
	for _, f := range res.Findings {
		if f.Class == analyzer.XSS {
			xss++
		}
	}
	if xss == 0 {
		t.Error("cross-include flow missed")
	}
}

func TestSprintfPropagates(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$msg = sprintf('<p>Hello %s</p>', $_GET['name']);
echo $msg;`)
	wantFindings(t, res, 1, 0)
}

func TestImplodePropagates(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$parts = $_POST['tags'];
echo implode(', ', $parts);`)
	wantFindings(t, res, 1, 0)
}

func TestUrlencodeSanitizesXSS(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
echo '<a href="?q=' . urlencode($_GET['q']) . '">search</a>';`)
	wantFindings(t, res, 0, 0)
}

func TestJsonEncodeSanitizesXSS(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php echo json_encode($_GET['data']);`)
	wantFindings(t, res, 0, 0)
}

func TestMd5NeutralizesBoth(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$h = md5($_GET['token']);
echo $h;
mysql_query("SELECT * FROM t WHERE h='$h'");`)
	wantFindings(t, res, 0, 0)
}

func TestSwitchCasesAllWalked(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
switch ($_GET['tab']) {
case 'a':
	echo $_GET['a'];
	break;
case 'b':
	echo $_GET['b'];
	break;
}`)
	wantFindings(t, res, 2, 0)
}

func TestWhileLoopBodyWalked(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
while ($row = mysql_fetch_assoc($res)) {
	echo $row['name'];
}`)
	wantFindings(t, res, 1, 0)
}

func TestVariableVariableIsOpaque(t *testing.T) {
	t.Parallel()
	// $$name cannot be resolved statically; the engine must neither
	// crash nor taint.
	res := scan(t, `<?php
$name = 'x';
$$name = $_GET['x'];
echo $x;`)
	wantFindings(t, res, 0, 0)
}

func TestSelfStaticCall(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
class Util {
	static function show($s) { echo $s; }
	static function run() { self::show($_GET['v']); }
}
Util::run();`)
	wantFindings(t, res, 1, 0)
}

func TestEchoInsideAlternativeSyntax(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php if (true): ?>
<p><?= $_GET['inline'] ?></p>
<?php endif; ?>`)
	wantFindings(t, res, 1, 0)
}

func TestHeredocSQLInjection(t *testing.T) {
	t.Parallel()
	src := "<?php\n$id = $_GET['id'];\n$sql = <<<SQL\nSELECT * FROM t WHERE id = $id\nSQL;\nmysql_query($sql);\n"
	res := scan(t, src)
	wantFindings(t, res, 0, 1)
}

func TestReturnInsideBranches(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function pick($which) {
	if ($which) {
		return $_GET['a'];
	}
	return 'safe';
}
echo pick(true);`)
	wantFindings(t, res, 1, 0)
}

func TestTraceFileTracksIncludes(t *testing.T) {
	t.Parallel()
	res := scanFiles(t, map[string]string{
		"main.php": `<?php
include 'lib.php';
echo $loaded;`,
		"lib.php": `<?php $loaded = $_GET['x'];`,
	})
	wantFindings(t, res, 1, 0)
	f := res.Findings[0]
	if f.File != "main.php" {
		t.Errorf("sink file = %s, want main.php", f.File)
	}
	foundLib := false
	for _, step := range f.Trace {
		if step.File == "lib.php" {
			foundLib = true
		}
	}
	if !foundLib {
		t.Errorf("trace should pass through lib.php: %v", f.Trace)
	}
}

// TestQuickEngineNeverPanics feeds arbitrary text through the full
// engine: parse failures must degrade, never crash (robustness, §IV.A).
func TestQuickEngineNeverPanics(t *testing.T) {
	t.Parallel()
	eng := newTestEngine()
	f := func(body string) bool {
		res, err := eng.Analyze(&analyzer.Target{
			Name:  "fuzz",
			Files: []analyzer.SourceFile{{Path: "fuzz.php", Content: "<?php " + body}},
		})
		return err == nil && res != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickManyEchoesBounded checks findings stay bounded by the number
// of echo statements for generated inputs.
func TestQuickManyEchoesBounded(t *testing.T) {
	t.Parallel()
	eng := newTestEngine()
	f := func(n uint8) bool {
		count := int(n%20) + 1
		var sb strings.Builder
		sb.WriteString("<?php\n")
		for i := 0; i < count; i++ {
			fmt.Fprintf(&sb, "echo $_GET['k%d'];\n", i)
		}
		res, err := eng.Analyze(&analyzer.Target{
			Name:  "gen",
			Files: []analyzer.SourceFile{{Path: "gen.php", Content: sb.String()}},
		})
		return err == nil && len(res.Findings) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newTestEngine builds the default-configured engine for edge tests.
func newTestEngine() *Engine {
	return New(wordpress.Compiled(), DefaultOptions())
}

func TestGlobalsArrayAccess(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$GLOBALS['payload'] = $_GET['p'];
function show() {
	echo $GLOBALS['payload'];
}
show();`)
	wantFindings(t, res, 1, 0)
}

func TestGlobalsArrayUnknownKeySafe(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$k = 'dyn';
echo $GLOBALS[$k];
echo $GLOBALS['never_assigned'];`)
	wantFindings(t, res, 0, 0)
}

func TestCallUserFuncDispatch(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function cb_show($m) { echo $m; }
call_user_func('cb_show', $_GET['m']);`)
	wantFindings(t, res, 1, 0)
}

func TestArrayMapDispatch(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function cb_wrap($s) { return '<li>' . $s . '</li>'; }
$items = array_map('cb_wrap', $_POST['items']);
foreach ($items as $li) { echo $li; }`)
	wantFindings(t, res, 1, 0)
}

func TestCallUserFuncArrayDispatch(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function cb_put($a, $b) { echo $b; }
call_user_func_array('cb_put', array('x', $_COOKIE['c']));`)
	wantFindings(t, res, 1, 0)
}

func TestCallableDispatchUnknownNameSafe(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
call_user_func($dynamic, $_GET['x']);
call_user_func('no_such_function', 'literal');`)
	// Unresolvable callables degrade to pass-through without findings.
	wantFindings(t, res, 0, 0)
}
