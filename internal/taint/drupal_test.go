package taint

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/config"
)

// drupalEngine builds phpSAFE configured for Drupal modules (§VI).
func drupalEngine() *Engine {
	cfg := config.Compile(config.Merge("drupal", config.Generic(), config.Drupal()))
	return New(cfg, DefaultOptions())
}

// scanDrupal analyzes one Drupal module file.
func scanDrupal(t *testing.T, src string) *analyzer.Result {
	t.Helper()
	res, err := drupalEngine().Analyze(&analyzer.Target{
		Name:  "test-module",
		Files: []analyzer.SourceFile{{Path: "test.module", Content: src}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDrupalDBFetchEcho(t *testing.T) {
	t.Parallel()
	res := scanDrupal(t, `<?php
function mymodule_block_view() {
	$result = db_query("SELECT title FROM {node} LIMIT 5");
	$row = db_fetch_object($result);
	echo '<h3>' . $row->title . '</h3>';
}`)
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %v, want 1 DB XSS", res.Findings)
	}
	f := res.Findings[0]
	if f.Class != analyzer.XSS || f.Vector != analyzer.VectorDB {
		t.Errorf("finding = %v, want DB XSS", f)
	}
}

func TestDrupalCheckPlainSanitizes(t *testing.T) {
	t.Parallel()
	res := scanDrupal(t, `<?php
echo check_plain($_GET['q']);
echo filter_xss(arg(1));`)
	if len(res.Findings) != 0 {
		t.Fatalf("findings = %v, want none (check/filter API)", res.Findings)
	}
}

func TestDrupalSQLiSink(t *testing.T) {
	t.Parallel()
	res := scanDrupal(t, `<?php
$nid = $_GET['nid'];
db_query("SELECT * FROM {node} WHERE nid = $nid");`)
	if len(res.Findings) != 1 || res.Findings[0].Class != analyzer.SQLi {
		t.Fatalf("findings = %v, want 1 SQLi", res.Findings)
	}
}

func TestDrupalArgIsGETSource(t *testing.T) {
	t.Parallel()
	res := scanDrupal(t, `<?php
$section = arg(2);
drupal_set_message('Viewing ' . $section);`)
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %v, want 1", res.Findings)
	}
	if res.Findings[0].Vector != analyzer.VectorGET {
		t.Errorf("vector = %v, want GET", res.Findings[0].Vector)
	}
	if res.Findings[0].Sink != "drupal_set_message" {
		t.Errorf("sink = %q", res.Findings[0].Sink)
	}
}

func TestDrupalVariableGetSecondOrder(t *testing.T) {
	t.Parallel()
	res := scanDrupal(t, `<?php
$motd = variable_get('site_motd', '');
echo '<div class="motd">' . $motd . '</div>';`)
	if len(res.Findings) != 1 || res.Findings[0].Vector != analyzer.VectorDB {
		t.Fatalf("findings = %v, want 1 DB-vector XSS", res.Findings)
	}
}
