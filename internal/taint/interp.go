package taint

import (
	"strings"

	"repro/internal/analyzer"
	"repro/internal/phpast"
)

// scope is one variable scope: the global scope of the target, or a
// function/method activation. It is the engine's equivalent of a slice of
// the paper's parser_variables array (§III.C).
type scope struct {
	// vars maps variable name (without "$") to abstract value. For the
	// global scope this aliases analysis.globals.
	vars map[string]*value
	// isGlobal marks the target-wide top-level scope.
	isGlobal bool
	// globalNames lists names bound to the global scope via "global $x".
	globalNames map[string]bool
	// class is the enclosing class when analyzing a method ($this).
	class *classInfo
	// collector receives parameter-dependent data flows in summary mode;
	// nil outside function analysis.
	collector *summary
	// funcName labels trace steps ("inside render_widget").
	funcName string
}

// readVar resolves a variable read. Superglobal reads create fresh taint
// from the configuration (§III.A sources).
func (a *analysis) readVar(name string, sc *scope, line int) *value {
	if src, ok := a.cfg.Superglobal(name); ok {
		return newTaint(taintClasses(src.Taints), src.Vector, analyzer.TraceStep{
			File: a.curFile, Line: line, Var: "$" + name,
			Note: "source: superglobal",
		})
	}
	if !sc.isGlobal && sc.globalNames[name] {
		if v, ok := a.globals[name]; ok {
			return v
		}
		return untainted()
	}
	if v, ok := sc.vars[name]; ok {
		return v
	}
	return untainted()
}

// writeVar stores a variable.
func (a *analysis) writeVar(name string, v *value, sc *scope) {
	if _, isSuper := a.cfg.Superglobal(name); isSuper {
		return
	}
	if !sc.isGlobal && sc.globalNames[name] {
		a.globals[name] = v
		return
	}
	sc.vars[name] = v
}

// taintClasses expands an empty class list to all classes.
func taintClasses(cs []analyzer.VulnClass) []analyzer.VulnClass {
	if len(cs) == 0 {
		return analyzer.Classes()
	}
	return cs
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// execStmts walks a statement list in order. Per the paper (§III.C),
// conditionals and loops "do not change the data flow": their blocks are
// parsed normally in sequence.
func (a *analysis) execStmts(stmts []phpast.Stmt, sc *scope) {
	for _, s := range stmts {
		a.execStmt(s, sc)
	}
}

// execStmt dispatches one statement. Every dispatch is one taint
// propagation step; the count sizes a scan's abstract-interpretation
// work for the observability layer and charges the governor's step
// budget — this is the interpreter's cancellation checkpoint.
func (a *analysis) execStmt(s phpast.Stmt, sc *scope) {
	if a.gov.Halted() {
		return
	}
	a.gov.Step()
	a.stats.propagationSteps++
	switch st := s.(type) {
	case *phpast.ExprStmt:
		a.eval(st.X, sc)

	case *phpast.Echo:
		for _, arg := range st.Args {
			v := a.eval(arg, sc)
			a.checkSink("echo", analyzer.XSS, v, arg.Pos(), exprName(arg), sc)
		}

	case *phpast.Block:
		a.execStmts(st.List, sc)

	case *phpast.If:
		a.eval(st.Cond, sc)
		a.execStmts(st.Then, sc)
		for _, ei := range st.Elseifs {
			a.eval(ei.Cond, sc)
			a.execStmts(ei.Body, sc)
		}
		a.execStmts(st.Else, sc)

	case *phpast.While:
		a.eval(st.Cond, sc)
		a.execStmts(st.Body, sc)

	case *phpast.DoWhile:
		a.execStmts(st.Body, sc)
		a.eval(st.Cond, sc)

	case *phpast.For:
		for _, e := range st.Init {
			a.eval(e, sc)
		}
		for _, e := range st.Cond {
			a.eval(e, sc)
		}
		a.execStmts(st.Body, sc)
		for _, e := range st.Post {
			a.eval(e, sc)
		}

	case *phpast.Foreach:
		a.execForeach(st, sc)

	case *phpast.Switch:
		a.eval(st.Cond, sc)
		for _, c := range st.Cases {
			if c.Cond != nil {
				a.eval(c.Cond, sc)
			}
			a.execStmts(c.Body, sc)
		}

	case *phpast.Return:
		var v *value
		if st.X != nil {
			v = a.eval(st.X, sc)
		} else {
			v = untainted()
		}
		if sc.collector != nil {
			sc.collector.addReturn(v)
		}

	case *phpast.Global:
		if sc.globalNames == nil {
			sc.globalNames = make(map[string]bool, len(st.Names))
		}
		for _, n := range st.Names {
			sc.globalNames[n] = true
		}

	case *phpast.StaticVars:
		for _, sv := range st.Vars {
			if sv.Default != nil {
				a.writeVar(sv.Name, a.eval(sv.Default, sc), sc)
			}
		}

	case *phpast.Unset:
		// §III.C T_UNSET: destroying a variable marks it untainted.
		for _, target := range st.Vars {
			if v, ok := target.(*phpast.Var); ok {
				a.writeVar(v.Name, untainted(), sc)
			}
		}

	case *phpast.Throw:
		a.eval(st.X, sc)

	case *phpast.Try:
		a.execStmts(st.Body, sc)
		for _, c := range st.Catches {
			a.execStmts(c.Body, sc)
		}
		a.execStmts(st.Finally, sc)

	case *phpast.FuncDecl, *phpast.ClassDecl:
		// Declarations were inventoried during model construction.

	case *phpast.Break, *phpast.Continue, *phpast.InlineHTML, *phpast.BadStmt:
		// No data flow.
	}
}

// execForeach models foreach: elements of a tainted collection are
// tainted. This is how the paper's mail-subscribe-list example flows:
// $wpdb->get_results rows → foreach → echo $row->sml_name (§III.E).
func (a *analysis) execForeach(st *phpast.Foreach, sc *scope) {
	coll := a.eval(st.Expr, sc)
	elem := coll.withStep(a.opts.MaxTraceDepth, analyzer.TraceStep{
		File: a.curFile, Line: st.Pos(), Var: exprName(st.Value),
		Note: "foreach element of " + exprName(st.Expr),
	})
	if st.Key != nil {
		a.assignTo(st.Key, elem, sc, st.Pos())
	}
	if st.Value != nil {
		a.assignTo(st.Value, elem, sc, st.Pos())
	}
	a.execStmts(st.Body, sc)
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// eval computes the abstract value of an expression, raising findings at
// sinks along the way. A halted governor collapses evaluation to an
// untainted constant so deep expression trees unwind quickly.
func (a *analysis) eval(e phpast.Expr, sc *scope) *value {
	if a.gov.Halted() {
		return untainted()
	}
	switch x := e.(type) {
	case nil:
		return untainted()

	case *phpast.Literal:
		if x.Kind == phpast.LitInt || x.Kind == phpast.LitFloat {
			return numericValue()
		}
		return untainted()

	case *phpast.Var:
		return a.readVar(x.Name, sc, x.Pos())

	case *phpast.VarVar:
		a.eval(x.Expr, sc)
		return untainted()

	case *phpast.IndexFetch:
		// $GLOBALS['name'] aliases the global variable directly.
		if base, ok := x.Base.(*phpast.Var); ok && base.Name == "GLOBALS" {
			if key, ok := x.Index.(*phpast.Literal); ok && key.Kind == phpast.LitString {
				if v, ok := a.globals[key.Value]; ok {
					return v
				}
				return untainted()
			}
			return untainted()
		}
		return a.eval(x.Base, sc)

	case *phpast.InterpString:
		vals := make([]*value, 0, len(x.Parts))
		for _, part := range x.Parts {
			vals = append(vals, a.eval(part, sc))
		}
		v := mergeAll(vals...)
		if x.IsShell {
			// The backtick operator executes its content as a shell
			// command (command-injection sink).
			a.checkSink("`shell`", analyzer.CmdInjection, v, x.Pos(), exprName(x), sc)
			return untainted()
		}
		return v

	case *phpast.Binary:
		return a.evalBinary(x, sc)

	case *phpast.Unary:
		v := a.eval(x.X, sc)
		switch x.Op {
		case "@":
			return v
		case "-", "+", "~":
			return toNumeric()
		default: // "!"
			return untainted()
		}

	case *phpast.IncDec:
		a.eval(x.X, sc)
		return toNumeric()

	case *phpast.Assign:
		return a.evalAssign(x, sc)

	case *phpast.Ternary:
		condV := a.eval(x.Cond, sc)
		var thenV *value
		if x.Then != nil {
			thenV = a.eval(x.Then, sc)
		} else {
			thenV = condV // short ternary: cond ?: else
		}
		elseV := a.eval(x.Else, sc)
		return merge(thenV, elseV)

	case *phpast.Cast:
		v := a.eval(x.X, sc)
		switch x.Type {
		case "int", "float", "bool":
			return toNumeric()
		case "unset":
			return untainted()
		default:
			return v
		}

	case *phpast.ArrayLit:
		vals := make([]*value, 0, len(x.Items))
		for _, item := range x.Items {
			if item.Key != nil {
				a.eval(item.Key, sc)
			}
			vals = append(vals, a.eval(item.Value, sc))
		}
		return mergeAll(vals...)

	case *phpast.ListExpr:
		return untainted()

	case *phpast.IssetExpr, *phpast.EmptyExpr, *phpast.InstanceOf, *phpast.ConstFetch,
		*phpast.ClassConstFetch, *phpast.BadExpr:
		return untainted()

	case *phpast.FuncCall:
		return a.evalFuncCall(x, sc)

	case *phpast.MethodCall:
		return a.evalMethodCall(x, sc)

	case *phpast.StaticCall:
		return a.evalStaticCall(x, sc)

	case *phpast.New:
		return a.evalNew(x, sc)

	case *phpast.PropertyFetch:
		return a.readProperty(x, sc)

	case *phpast.StaticPropertyFetch:
		if ci := a.classes[x.Class]; ci != nil && a.opts.OOP {
			if v, ok := ci.props[x.Name]; ok {
				return v
			}
		}
		return untainted()

	case *phpast.PrintExpr:
		v := a.eval(x.X, sc)
		a.checkSink("print", analyzer.XSS, v, x.Pos(), exprName(x.X), sc)
		return untainted()

	case *phpast.ExitExpr:
		if x.X != nil {
			v := a.eval(x.X, sc)
			a.checkSink("exit", analyzer.XSS, v, x.Pos(), exprName(x.X), sc)
		}
		return untainted()

	case *phpast.CloneExpr:
		return a.eval(x.X, sc)

	case *phpast.IncludeExpr:
		a.execInclude(x, sc)
		return untainted()

	case *phpast.Closure:
		a.execClosure(x, sc)
		return untainted()

	default:
		return untainted()
	}
}

// evalBinary handles binary operators: "." concatenation merges taint;
// arithmetic neutralizes it (numbers cannot carry payloads); comparisons
// and logic yield booleans.
func (a *analysis) evalBinary(x *phpast.Binary, sc *scope) *value {
	l := a.eval(x.L, sc)
	r := a.eval(x.R, sc)
	switch x.Op {
	case ".":
		return merge(l, r)
	case "+", "-", "*", "/", "%", "<<", ">>", "|", "&", "^":
		return toNumeric()
	default: // comparisons, &&, ||, and, or, xor
		return untainted()
	}
}

// evalAssign handles =, .= and the arithmetic compound assignments.
func (a *analysis) evalAssign(x *phpast.Assign, sc *scope) *value {
	rhs := a.eval(x.RHS, sc)
	var v *value
	switch x.Op {
	case "=":
		v = rhs
	case ".=":
		v = merge(a.eval(x.LHS, sc), rhs)
	default: // numeric compound assignments
		a.eval(x.LHS, sc)
		v = toNumeric()
	}
	v = v.withStep(a.opts.MaxTraceDepth, analyzer.TraceStep{
		File: a.curFile, Line: x.Pos(), Var: exprName(x.LHS), Note: "assigned",
	})
	a.assignTo(x.LHS, v, sc, x.Pos())
	return v
}

// assignTo stores a value into an assignable expression.
func (a *analysis) assignTo(lhs phpast.Expr, v *value, sc *scope, line int) {
	switch t := lhs.(type) {
	case *phpast.Var:
		a.writeVar(t.Name, v, sc)

	case *phpast.IndexFetch:
		// $GLOBALS['name'] = ... writes the global variable directly.
		if base, ok := t.Base.(*phpast.Var); ok && base.Name == "GLOBALS" {
			if key, ok := t.Index.(*phpast.Literal); ok && key.Kind == phpast.LitString {
				a.globals[key.Value] = v
			}
			return
		}
		// Element store: the whole container becomes tainted when the
		// element is (coarse array model).
		if t.Index != nil {
			a.eval(t.Index, sc)
		}
		base := a.eval(t.Base, sc)
		a.assignTo(t.Base, merge(base, v), sc, line)

	case *phpast.PropertyFetch:
		a.writeProperty(t, v, sc)

	case *phpast.StaticPropertyFetch:
		if ci := a.classes[t.Class]; ci != nil && a.opts.OOP {
			ci.props[t.Name] = v
		}

	case *phpast.ListExpr:
		for _, target := range t.Targets {
			if target != nil {
				a.assignTo(target, v, sc, line)
			}
		}
	}
}

// resolveObjectClass determines the class of a method-call or property
// receiver: $this, a configured framework global ($wpdb), or a variable
// holding a tracked "new X" value (§III.E).
func (a *analysis) resolveObjectClass(obj phpast.Expr, objVal *value, sc *scope) *classInfo {
	if !a.opts.OOP {
		return nil
	}
	if v, ok := obj.(*phpast.Var); ok {
		if v.Name == "this" && sc.class != nil {
			return sc.class
		}
	}
	if objVal != nil && objVal.class != "" {
		return a.classes[objVal.class]
	}
	return nil
}

// objClassName returns the best-known class name string for config
// lookups, even when the class is not user-defined (e.g. "wpdb").
func (a *analysis) objClassName(obj phpast.Expr, objVal *value, sc *scope) string {
	if v, ok := obj.(*phpast.Var); ok {
		if v.Name == "this" && sc.class != nil {
			return sc.class.decl.Name
		}
		if cls, ok := a.cfg.ObjectClass(v.Name); ok {
			return cls
		}
	}
	if objVal != nil {
		return objVal.class
	}
	return ""
}

// readProperty evaluates $obj->name.
func (a *analysis) readProperty(x *phpast.PropertyFetch, sc *scope) *value {
	objVal := a.eval(x.Object, sc)
	if !a.opts.OOP {
		return untainted()
	}
	if x.NameExpr != nil {
		a.eval(x.NameExpr, sc)
		return untainted()
	}
	if ci := a.resolveObjectClass(x.Object, objVal, sc); ci != nil {
		for c := ci; c != nil; c = c.parent {
			if v, ok := c.props[x.Name]; ok {
				return v
			}
		}
		return untainted()
	}
	// Unknown object: a property of a tainted value (a database row
	// object, for example) is tainted.
	if len(objVal.taints) > 0 || objVal.hasParamDeps() || len(objVal.latent) > 0 {
		return objVal.withStep(a.opts.MaxTraceDepth, analyzer.TraceStep{
			File: a.curFile, Line: x.Pos(), Var: exprName(x),
			Note: "property of tainted object",
		})
	}
	return untainted()
}

// writeProperty stores into $obj->name.
func (a *analysis) writeProperty(x *phpast.PropertyFetch, v *value, sc *scope) {
	objVal := a.eval(x.Object, sc)
	if !a.opts.OOP || x.NameExpr != nil {
		return
	}
	if ci := a.resolveObjectClass(x.Object, objVal, sc); ci != nil {
		ci.props[x.Name] = v
	}
}

// execInclude follows include/require statically (§III.B: "as the PHP
// file can include other PHP files recursively, all of them must be
// analyzed to obtain the complete AST"). A tainted include path is a
// file-inclusion sink.
func (a *analysis) execInclude(x *phpast.IncludeExpr, sc *scope) {
	pathVal := a.eval(x.Path, sc)
	a.checkSink("include", analyzer.FileInclusion, pathVal, x.Pos(), exprName(x.Path), sc)
	path, ok := a.resolveIncludePath(a.curFile, x.Path)
	if !ok || a.includeStack[path] {
		return
	}
	f, ok := a.files[path]
	if !ok {
		return
	}
	a.includeStack[path] = true
	prev := a.curFile
	a.curFile = path
	a.execStmts(f.Stmts, sc)
	a.curFile = prev
	// The include stays on the stack: include_once semantics, and a
	// termination guarantee for mutually-including files.
}

// execClosure analyzes a closure body immediately in a fresh scope seeded
// with its use-clause captures, so sinks inside closures (hook callbacks)
// are still visited.
func (a *analysis) execClosure(x *phpast.Closure, sc *scope) {
	inner := &scope{
		vars:      make(map[string]*value, len(x.Uses)+len(x.Params)),
		class:     sc.class,
		collector: sc.collector,
		funcName:  sc.funcName + "{closure}",
	}
	for _, u := range x.Uses {
		inner.vars[u.Name] = a.readVar(u.Name, sc, x.Pos())
	}
	a.execStmts(x.Body, inner)
}

// exprName renders a short printable name for an expression, used in
// findings and traces.
func exprName(e phpast.Expr) string {
	switch x := e.(type) {
	case *phpast.Var:
		return "$" + x.Name
	case *phpast.PropertyFetch:
		if x.Name != "" {
			return exprName(x.Object) + "->" + x.Name
		}
		return exprName(x.Object) + "->{expr}"
	case *phpast.StaticPropertyFetch:
		return x.Class + "::$" + x.Name
	case *phpast.IndexFetch:
		idx := ""
		if lit, ok := x.Index.(*phpast.Literal); ok {
			idx = lit.Value
		}
		return exprName(x.Base) + "[" + idx + "]"
	case *phpast.FuncCall:
		if x.Name != "" {
			return x.Name + "()"
		}
		return "call()"
	case *phpast.MethodCall:
		return exprName(x.Object) + "->" + x.Name + "()"
	case *phpast.StaticCall:
		return x.Class + "::" + x.Name + "()"
	case *phpast.InterpString:
		// Name the attack-relevant interpolated variable: prefer plain
		// variables and array fetches over framework properties like
		// $wpdb->prefix, falling back to the last interpolated part.
		best := ""
		for _, p := range x.Parts {
			if _, isLit := p.(*phpast.Literal); isLit {
				continue
			}
			name := exprName(p)
			best = name
			switch p.(type) {
			case *phpast.Var, *phpast.IndexFetch:
				if !strings.HasPrefix(name, "$wpdb") {
					return name
				}
			}
		}
		if best != "" {
			return best
		}
		return `"..."`
	case *phpast.Binary:
		if x.Op == "." {
			// Prefer the attack-relevant side: superglobals first, then
			// any non-framework variable, then whatever is named.
			l, r := exprName(x.L), exprName(x.R)
			for _, cand := range []string{l, r} {
				if strings.Contains(cand, "$_") {
					return cand
				}
			}
			for _, cand := range []string{l, r} {
				if cand != "" && !strings.HasPrefix(cand, "$wpdb") {
					return cand
				}
			}
			if l != "" {
				return l
			}
			return r
		}
		return ""
	case *phpast.Literal:
		return ""
	default:
		return ""
	}
}
