package taint

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/wordpress"
)

// repeatedCallSource builds a plugin where one helper function is called
// from many sites — the workload where function summaries (paper §II,
// §III.C) pay off against whole-program re-analysis.
func repeatedCallSource(calls int) string {
	var sb strings.Builder
	sb.WriteString(`<?php
function deep3($s) { return '<i>' . $s . '</i>'; }
function deep2($s) { return deep3('[' . $s . ']'); }
function deep1($s) { return deep2(trim($s)); }
function format_row($s) {
	$wrapped = deep1($s);
	return '<td>' . $wrapped . '</td>';
}
`)
	for i := 0; i < calls; i++ {
		fmt.Fprintf(&sb, "echo format_row('cell %d');\n", i)
	}
	sb.WriteString("echo format_row($_GET['q']);\n")
	return sb.String()
}

// benchEngine runs one engine configuration over the repeated-call
// workload.
func benchEngine(b *testing.B, summaries bool) {
	b.Helper()
	opts := DefaultOptions()
	opts.FunctionSummaries = summaries
	engine := New(wordpress.Compiled(), opts)
	target := &analyzer.Target{
		Name:  "bench",
		Files: []analyzer.SourceFile{{Path: "bench.php", Content: repeatedCallSource(200)}},
	}
	// Both modes must find exactly the one real vulnerability.
	res, err := engine.Analyze(target)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Findings) != 1 {
		b.Fatalf("findings = %d, want 1", len(res.Findings))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Analyze(target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaries measures the summary-based engine on a call-heavy
// workload (§III.C: "every function is analyzed only the first time it
// is called").
func BenchmarkSummaries(b *testing.B) {
	benchEngine(b, true)
}

// BenchmarkWholeProgram measures the ablation: re-analyzing every call
// (§II: "requires a lot of memory and processing power").
func BenchmarkWholeProgram(b *testing.B) {
	benchEngine(b, false)
}

// BenchmarkAnalyzeOOPPlugin measures a representative OOP plugin scan.
func BenchmarkAnalyzeOOPPlugin(b *testing.B) {
	src := `<?php
class Gallery {
	public $items;
	function load() {
		global $wpdb;
		$this->items = $wpdb->get_results("SELECT * FROM {$wpdb->prefix}photos");
	}
	function render() {
		foreach ($this->items as $item) {
			echo '<img src="' . $item->path . '" alt="' . esc_attr($item->title) . '">';
		}
	}
}
$g = new Gallery();
$g->load();
$g->render();
`
	engine := New(wordpress.Compiled(), DefaultOptions())
	target := &analyzer.Target{
		Name:  "gallery",
		Files: []analyzer.SourceFile{{Path: "gallery.php", Content: src}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Analyze(target); err != nil {
			b.Fatal(err)
		}
	}
}
