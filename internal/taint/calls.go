package taint

import (
	"strings"

	"repro/internal/analyzer"
	"repro/internal/config"
	"repro/internal/phpast"
)

// passthroughBuiltins are PHP string/array builtins whose result carries
// the taint of their arguments. phpSAFE treats functions it has no
// configuration entry for as taint-preserving — the conservative choice
// that also reproduces its documented false positives on custom
// sanitization the configuration does not know (§V.A).
var passthroughBuiltins = map[string]bool{
	"sprintf": true, "vsprintf": true, "implode": true, "join": true,
	"explode": true, "trim": true, "ltrim": true, "rtrim": true,
	"str_replace": true, "str_ireplace": true, "preg_replace": true,
	"substr": true, "strtolower": true, "strtoupper": true,
	"ucfirst": true, "ucwords": true, "lcfirst": true, "nl2br": true,
	"str_pad": true, "str_repeat": true, "wordwrap": true, "strrev": true,
	"array_merge": true, "array_values": true, "array_keys": true,
	"array_map": true, "array_filter": true, "array_slice": true,
	"array_pop": true, "array_shift": true, "reset": true, "end": true,
	"current": true, "serialize": true, "unserialize": true,
	"maybe_unserialize": true, "strval": true, "chunk_split": true,
}

// evalArgs evaluates call arguments left to right.
func (a *analysis) evalArgs(args []phpast.Arg, sc *scope) []*value {
	vals := make([]*value, len(args))
	for i, arg := range args {
		vals[i] = a.eval(arg.Value, sc)
	}
	return vals
}

// evalFuncCall handles calls to plain functions: configured sanitizers,
// reverts, sources and sinks; user-defined functions through summaries;
// and builtin pass-throughs (§III.C "call of a PHP or CMS framework
// built-in function").
func (a *analysis) evalFuncCall(x *phpast.FuncCall, sc *scope) *value {
	if x.NameExpr != nil {
		// Dynamic call: evaluate and propagate conservatively.
		a.eval(x.NameExpr, sc)
		return mergeAll(a.evalArgs(x.Args, sc)...)
	}
	name := x.Name
	argVals := a.evalArgs(x.Args, sc)

	// Sanitizer: the return value is clean for the sanitized classes.
	if classes, ok := a.cfg.FunctionSanitizer(name); ok {
		a.stats.sanitizerHits++
		return mergeAll(argVals...).sanitize(classes, name)
	}

	// Revert: latent (sanitized) taint is re-activated (§III.A).
	if a.cfg.Revert(name) {
		return mergeAll(argVals...).revert(name, a.opts.MaxTraceDepth, analyzer.TraceStep{
			File: a.curFile, Line: x.Pos(), Var: name + "()",
			Note: "sanitization reverted by " + name,
		})
	}

	// Sink: check the sensitive arguments. A function may be both a sink
	// and a source (file_get_contents reads an attacker-chosen path and
	// returns attacker-influenced content), so the source check below
	// still runs; pure sinks return untainted after it.
	sinks := a.cfg.FunctionSinks(name)
	if len(sinks) > 0 {
		a.checkSinkArgs(sinks, name, x.Args, argVals, x.Pos(), sc)
	}

	// Source: the return value is attacker influenced.
	if src, ok := a.cfg.FunctionSource(name); ok {
		return newTaint(taintClasses(src.Taints), src.Vector, analyzer.TraceStep{
			File: a.curFile, Line: x.Pos(), Var: name + "()",
			Note: "source: " + name,
		})
	}
	if len(sinks) > 0 {
		return untainted()
	}

	// User-defined function: inter-procedural analysis via summary.
	if fi, ok := a.funcs[name]; ok {
		return a.callUser("func:"+name, fi.file, nil, fi.decl.Params, fi.decl.Body,
			argVals, name, x.Pos(), sc)
	}

	// Callable dispatch: call_user_func('fn', args...) and friends invoke
	// a user function named by their first argument — the idiom WordPress
	// itself uses to fire hooks.
	if v, handled := a.evalCallableDispatch(name, x, argVals, sc); handled {
		return v
	}

	// Builtin pass-through or unknown function: propagate argument taint.
	if passthroughBuiltins[name] || len(argVals) > 0 {
		return mergeAll(argVals...)
	}
	return untainted()
}

// evalCallableDispatch resolves string-callable invocation built-ins to
// the named user function. It reports handled=false when the call is not
// one of these built-ins or the callable is not a resolvable literal.
func (a *analysis) evalCallableDispatch(name string, x *phpast.FuncCall,
	argVals []*value, sc *scope) (*value, bool) {

	var calleeName string
	var calleeArgs []*value
	switch name {
	case "call_user_func":
		if len(x.Args) < 1 {
			return nil, false
		}
		calleeName = literalString(x.Args[0].Value)
		if len(argVals) > 1 {
			calleeArgs = argVals[1:]
		}
	case "call_user_func_array":
		if len(x.Args) < 1 {
			return nil, false
		}
		calleeName = literalString(x.Args[0].Value)
		// The packed argument array is coarse: every parameter receives
		// the array's merged taint.
		if len(argVals) > 1 {
			packed := argVals[1]
			calleeArgs = []*value{packed, packed, packed, packed}
		}
	case "array_map":
		if len(x.Args) < 2 {
			return nil, false
		}
		calleeName = literalString(x.Args[0].Value)
		calleeArgs = argVals[1:]
	default:
		return nil, false
	}
	if calleeName == "" {
		return nil, false
	}
	fi, ok := a.funcs[strings.ToLower(calleeName)]
	if !ok {
		return nil, false
	}
	ret := a.callUser("func:"+fi.decl.Name, fi.file, nil,
		fi.decl.Params, fi.decl.Body, calleeArgs, fi.decl.Name, x.Pos(), sc)
	if name == "array_map" {
		// array_map returns the mapped collection: element taint is the
		// callback's return taint.
		return ret, true
	}
	return ret, true
}

// literalString extracts a constant string from an expression, or "".
func literalString(e phpast.Expr) string {
	if lit, ok := e.(*phpast.Literal); ok && lit.Kind == phpast.LitString {
		return lit.Value
	}
	return ""
}

// evalMethodCall handles $obj->method(...) calls (§III.E): configured
// method sinks/sources/sanitizers on framework classes like wpdb, and
// summaries for user-defined methods.
func (a *analysis) evalMethodCall(x *phpast.MethodCall, sc *scope) *value {
	objVal := a.eval(x.Object, sc)
	argVals := a.evalArgs(x.Args, sc)

	if !a.opts.OOP {
		// The OOP-blind ablation cannot see encapsulated flows at all —
		// the documented RIPS/Pixy limitation.
		return untainted()
	}
	if x.NameExpr != nil {
		a.eval(x.NameExpr, sc)
		return untainted()
	}
	name := x.Name
	className := a.objClassName(x.Object, objVal, sc)

	// Configured method sanitizer ($wpdb->prepare).
	if classes, ok := a.cfg.MethodSanitizer(className, name); ok {
		a.stats.sanitizerHits++
		return mergeAll(argVals...).sanitize(classes, className+"::"+name)
	}

	// Configured method sink ($wpdb->query and the read methods' query
	// argument are SQLi sinks).
	sinks := a.cfg.MethodSinks(className, name)
	if len(sinks) > 0 {
		a.checkSinkArgs(sinks, exprName(x.Object)+"->"+name, x.Args, argVals, x.Pos(), sc)
	}

	// Configured method source ($wpdb->get_results returns database
	// rows: likely-poisoned second-order data, §III.E).
	if src, ok := a.cfg.MethodSource(className, name); ok {
		return newTaint(taintClasses(src.Taints), src.Vector, analyzer.TraceStep{
			File: a.curFile, Line: x.Pos(), Var: exprName(x.Object) + "->" + name + "()",
			Note: "source: " + name,
		})
	}
	if len(sinks) > 0 {
		return untainted()
	}

	// User-defined method: resolve through the class hierarchy.
	if ci := a.resolveObjectClass(x.Object, objVal, sc); ci != nil {
		if mi := ci.method(name); mi != nil {
			return a.callUser(methodSummaryKey(mi), mi.file, mi.class,
				mi.decl.Params, mi.decl.Body, argVals, name, x.Pos(), sc)
		}
		return untainted()
	}

	// Unknown receiver: conservative pass-through of the receiver's and
	// arguments' taint (a method of a tainted row object yields tainted
	// data).
	if len(objVal.taints) > 0 || objVal.hasParamDeps() {
		return merge(objVal, mergeAll(argVals...))
	}
	return untainted()
}

// methodSummaryKey builds the summary key for a resolved method.
func methodSummaryKey(mi *methodInfo) string {
	return "method:" + mi.class.decl.Name + "::" + mi.decl.Name
}

// evalStaticCall handles Class::method(...) including parent:: and
// self:: dispatch.
func (a *analysis) evalStaticCall(x *phpast.StaticCall, sc *scope) *value {
	argVals := a.evalArgs(x.Args, sc)
	if !a.opts.OOP {
		return untainted()
	}
	className := x.Class
	var ci *classInfo
	switch className {
	case "self", "static":
		ci = sc.class
	case "parent":
		if sc.class != nil {
			ci = sc.class.parent
		}
	default:
		ci = a.classes[className]
	}
	if ci != nil {
		className = ci.decl.Name
	}

	if classes, ok := a.cfg.MethodSanitizer(className, x.Name); ok {
		a.stats.sanitizerHits++
		return mergeAll(argVals...).sanitize(classes, className+"::"+x.Name)
	}
	if sinks := a.cfg.MethodSinks(className, x.Name); len(sinks) > 0 {
		a.checkSinkArgs(sinks, className+"::"+x.Name, x.Args, argVals, x.Pos(), sc)
		return untainted()
	}
	if src, ok := a.cfg.MethodSource(className, x.Name); ok {
		return newTaint(taintClasses(src.Taints), src.Vector, analyzer.TraceStep{
			File: a.curFile, Line: x.Pos(), Var: className + "::" + x.Name + "()",
			Note: "source: " + x.Name,
		})
	}
	if ci != nil {
		if mi := ci.method(x.Name); mi != nil {
			return a.callUser(methodSummaryKey(mi), mi.file, mi.class,
				mi.decl.Params, mi.decl.Body, argVals, x.Name, x.Pos(), sc)
		}
	}
	return mergeAll(argVals...)
}

// evalNew handles object creation: the constructor runs like a method
// call, and the result is a value of the named class (§III.E: "object
// creation with the PHP new construct is parsed as a function").
func (a *analysis) evalNew(x *phpast.New, sc *scope) *value {
	argVals := a.evalArgs(x.Args, sc)
	if x.ClassExpr != nil {
		a.eval(x.ClassExpr, sc)
		return untainted()
	}
	if !a.opts.OOP {
		return untainted()
	}
	className := x.Class
	if className == "self" || className == "static" {
		if sc.class != nil {
			className = sc.class.decl.Name
		}
	}
	if ci := a.classes[className]; ci != nil {
		ctor := ci.method("__construct")
		if ctor == nil {
			ctor = ci.method(className) // PHP 4 style constructor
		}
		if ctor != nil {
			a.callUser(methodSummaryKey(ctor), ctor.file, ctor.class,
				ctor.decl.Params, ctor.decl.Body, argVals, "__construct", x.Pos(), sc)
		}
	}
	return objectValue(className)
}

// checkSinkArgs applies sink declarations to evaluated call arguments.
func (a *analysis) checkSinkArgs(sinks []config.Sink, sinkName string,
	args []phpast.Arg, argVals []*value, line int, sc *scope) {
	for _, sink := range sinks {
		for i, v := range argVals {
			if !config.SinkSensitiveArg(sink, i) {
				continue
			}
			varName := ""
			if i < len(args) {
				varName = exprName(args[i].Value)
			}
			a.checkSinkMeta(sinkName, sink.Vuln, v, line, varName, sc, sink.CWE, sink.Severity)
		}
	}
}
