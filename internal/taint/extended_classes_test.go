package taint

import (
	"testing"

	"repro/internal/analyzer"
)

// Extended vulnerability coverage (§VI future work): command injection
// and file inclusion.

// countClass tallies findings of one class.
func countClass(res *analyzer.Result, class analyzer.VulnClass) int {
	n := 0
	for _, f := range res.Findings {
		if f.Class == class {
			n++
		}
	}
	return n
}

func TestCommandInjectionSystem(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$host = $_GET['host'];
system("ping -c 1 " . $host);`)
	if got := countClass(res, analyzer.CmdInjection); got != 1 {
		t.Fatalf("CMDi findings = %d, want 1: %v", got, res.Findings)
	}
}

func TestCommandInjectionBacktick(t *testing.T) {
	t.Parallel()
	res := scan(t, "<?php\n$f = $_POST['file'];\n$out = `cat $f`;\n")
	if got := countClass(res, analyzer.CmdInjection); got != 1 {
		t.Fatalf("CMDi findings = %d, want 1: %v", got, res.Findings)
	}
}

func TestEscapeshellargSanitizes(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$host = escapeshellarg($_GET['host']);
exec("ping -c 1 $host");`)
	if got := countClass(res, analyzer.CmdInjection); got != 0 {
		t.Fatalf("CMDi findings = %d, want 0: %v", got, res.Findings)
	}
}

func TestEscapeshellargDoesNotClearXSS(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$v = escapeshellarg($_GET['v']);
echo $v;`)
	if got := countClass(res, analyzer.XSS); got != 1 {
		t.Fatalf("XSS findings = %d, want 1 (shell escaping is not HTML escaping)", got)
	}
}

func TestFileInclusionTaintedPath(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$page = $_GET['page'];
include 'pages/' . $page . '.php';`)
	if got := countClass(res, analyzer.FileInclusion); got != 1 {
		t.Fatalf("LFI findings = %d, want 1: %v", got, res.Findings)
	}
}

func TestFileInclusionLiteralPathSafe(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
include 'inc/header.php';
require_once dirname(__FILE__) . '/settings.php';`)
	if got := countClass(res, analyzer.FileInclusion); got != 0 {
		t.Fatalf("LFI findings = %d, want 0: %v", got, res.Findings)
	}
}

func TestBasenameSanitizesInclusion(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$page = basename($_GET['page']);
include 'pages/' . $page;`)
	if got := countClass(res, analyzer.FileInclusion); got != 0 {
		t.Fatalf("LFI findings = %d, want 0 (basename strips traversal): %v", got, res.Findings)
	}
}

func TestEvalSink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$code = $_POST['snippet'];
eval($code);`)
	if got := countClass(res, analyzer.CmdInjection); got != 1 {
		t.Fatalf("eval findings = %d, want 1: %v", got, res.Findings)
	}
}

func TestExtendedClassesThroughSummary(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function run_tool($cmd) {
	return shell_exec($cmd);
}
run_tool('ls -la');
run_tool($_GET['cmd']);`)
	if got := countClass(res, analyzer.CmdInjection); got != 1 {
		t.Fatalf("CMDi via summary = %d, want 1: %v", got, res.Findings)
	}
}

func TestIntvalClearsAllClasses(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$n = intval($_GET['n']);
system("kill -9 $n");
include "part$n.php";
echo $n;`)
	if len(res.Findings) != 0 {
		t.Fatalf("findings = %v, want none after intval", res.Findings)
	}
}
