package taint

import (
	"fmt"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/phpast"
)

// ModelInfo is the inspectable output of the model-construction stage —
// the paper's results-processing resources beyond the findings themselves
// (§III.D: "variables, functions, PHP files included, tokens ... can be
// very useful in helping security practitioners").
type ModelInfo struct {
	// Functions lists the plugin's user-defined functions.
	Functions []FunctionInfo
	// Classes lists the plugin's class declarations.
	Classes []ClassInfo
	// Includes lists the statically resolved include edges.
	Includes []IncludeEdge
	// ParseErrors aggregates recoverable parse problems per file.
	ParseErrors []string
}

// FunctionInfo describes one user-defined function.
type FunctionInfo struct {
	// Name is the lower-case function name.
	Name string
	// File and Line locate the declaration.
	File string
	Line int
	// Params is the parameter count.
	Params int
	// Called reports whether plugin code calls the function. Uncalled
	// functions are typically CMS hook callbacks and are exactly the
	// ones a plugin analyzer must still analyze (§III.B).
	Called bool
}

// ClassInfo describes one class declaration.
type ClassInfo struct {
	// Name is the lower-case class name; Extends its parent or "".
	Name    string
	Extends string
	// File and Line locate the declaration.
	File string
	Line int
	// Props is the number of declared properties.
	Props int
	// Methods lists the class's methods.
	Methods []MethodInfoSummary
}

// MethodInfoSummary describes one method of a class.
type MethodInfoSummary struct {
	// Name is the lower-case method name.
	Name string
	// Line is the declaration line.
	Line int
	// Called reports whether plugin code calls a method of this name.
	Called bool
	// Static marks static methods.
	Static bool
}

// IncludeEdge is one statically resolved include/require relation.
type IncludeEdge struct {
	// From is the including file, To the resolved target.
	From string
	To   string
}

// Model builds the model-construction inventory for a target without
// running the taint analysis.
func (e *Engine) Model(target *analyzer.Target) (*ModelInfo, error) {
	if target == nil {
		return nil, fmt.Errorf("taint: nil target")
	}
	a := newAnalysis(e, target)
	a.buildModel(nil)

	info := &ModelInfo{}

	names := make([]string, 0, len(a.funcs))
	for name := range a.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fi := a.funcs[name]
		info.Functions = append(info.Functions, FunctionInfo{
			Name:   name,
			File:   fi.file,
			Line:   fi.decl.Pos(),
			Params: len(fi.decl.Params),
			Called: a.calledFuncs[name],
		})
	}

	classNames := make([]string, 0, len(a.classes))
	for name := range a.classes {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, name := range classNames {
		ci := a.classes[name]
		entry := ClassInfo{
			Name:    name,
			Extends: ci.decl.Extends,
			File:    ci.file,
			Line:    ci.decl.Pos(),
			Props:   len(ci.decl.Props),
		}
		methodNames := make([]string, 0, len(ci.methods))
		for mn := range ci.methods {
			methodNames = append(methodNames, mn)
		}
		sort.Strings(methodNames)
		for _, mn := range methodNames {
			mi := ci.methods[mn]
			entry.Methods = append(entry.Methods, MethodInfoSummary{
				Name:   mn,
				Line:   mi.decl.Line,
				Called: a.calledMethods[mn],
				Static: mi.decl.Static,
			})
		}
		info.Classes = append(info.Classes, entry)
	}

	for _, path := range a.fileOrder {
		f := a.files[path]
		for _, e := range f.Errors {
			info.ParseErrors = append(info.ParseErrors, path+": "+e)
		}
		phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
			inc, ok := n.(*phpast.IncludeExpr)
			if !ok {
				return true
			}
			if to, resolved := a.resolveIncludePath(path, inc.Path); resolved {
				info.Includes = append(info.Includes, IncludeEdge{From: path, To: to})
			}
			return true
		})
	}
	return info, nil
}

// Uncalled returns the functions never called from plugin code, the set
// the paper's uncalled-function pass analyzes first (§III.C).
func (m *ModelInfo) Uncalled() []FunctionInfo {
	out := make([]FunctionInfo, 0, len(m.Functions))
	for _, f := range m.Functions {
		if !f.Called {
			out = append(out, f)
		}
	}
	return out
}

// Class returns a class entry by lower-case name.
func (m *ModelInfo) Class(name string) (ClassInfo, bool) {
	for _, c := range m.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return ClassInfo{}, false
}
