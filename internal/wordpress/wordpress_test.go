package wordpress

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/phpparse"
)

func TestCompiledLookups(t *testing.T) {
	t.Parallel()
	cfg := Compiled()

	// Method sources on wpdb.
	src, ok := cfg.MethodSource("wpdb", "get_results")
	if !ok || src.Vector != analyzer.VectorDB {
		t.Errorf("wpdb::get_results = %+v, %v", src, ok)
	}
	// WordPress function sources.
	if src, ok := cfg.FunctionSource("get_option"); !ok || src.Vector != analyzer.VectorDB {
		t.Errorf("get_option = %+v, %v", src, ok)
	}
	if src, ok := cfg.FunctionSource("get_query_var"); !ok || src.Vector != analyzer.VectorGET {
		t.Errorf("get_query_var = %+v, %v", src, ok)
	}
	// Escaping API.
	classes, ok := cfg.FunctionSanitizer("esc_html")
	if !ok || len(classes) != 1 || classes[0] != analyzer.XSS {
		t.Errorf("esc_html = %v, %v", classes, ok)
	}
	// All-class sanitizers.
	if classes, _ := cfg.FunctionSanitizer("sanitize_text_field"); len(classes) != len(analyzer.Classes()) {
		t.Errorf("sanitize_text_field = %v, want all classes", classes)
	}
	// Method sanitizer.
	if classes, ok := cfg.MethodSanitizer("wpdb", "prepare"); !ok || classes[0] != analyzer.SQLi {
		t.Errorf("wpdb::prepare = %v, %v", classes, ok)
	}
	// Method sinks.
	sinks := cfg.MethodSinks("wpdb", "query")
	if len(sinks) != 1 || sinks[0].Vuln != analyzer.SQLi {
		t.Errorf("wpdb::query sinks = %v", sinks)
	}
	// Generic layer still present underneath.
	if _, ok := cfg.Superglobal("_GET"); !ok {
		t.Error("generic superglobals lost in the WordPress merge")
	}
	if _, ok := cfg.FunctionSanitizer("htmlentities"); !ok {
		t.Error("generic sanitizers lost in the WordPress merge")
	}
	// Framework globals.
	if cls, ok := cfg.ObjectClass("wpdb"); !ok || cls != "wpdb" {
		t.Errorf("ObjectClass(wpdb) = %q, %v", cls, ok)
	}
	// Reverts from both layers.
	if !cfg.Revert("stripslashes") || !cfg.Revert("wp_unslash") {
		t.Error("revert functions missing")
	}
}

func TestStubSourceParses(t *testing.T) {
	t.Parallel()
	f := phpparse.Parse(StubPath, StubSource())
	if len(f.Errors) > 0 {
		t.Fatalf("stub parse errors: %v", f.Errors[:min(3, len(f.Errors))])
	}
	// The stub must declare the wpdb class and the escaping functions the
	// profile references.
	src := StubSource()
	for _, want := range []string{
		"class wpdb", "function esc_html", "function add_action",
		"function get_option", "function sanitize_text_field",
		"$wpdb = new wpdb()",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("stub missing %q", want)
		}
	}
}

func TestProfileEntriesAreLowerCaseable(t *testing.T) {
	t.Parallel()
	p := Profile()
	for _, s := range p.Sources {
		if s.Kind != 1 && s.Name != strings.ToLower(s.Name) {
			t.Errorf("source %q should be lower-case", s.Name)
		}
	}
	for _, s := range p.Sinks {
		if s.Name != strings.ToLower(s.Name) {
			t.Errorf("sink %q should be lower-case", s.Name)
		}
	}
}
