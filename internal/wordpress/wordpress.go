// Package wordpress models the WordPress framework API surface that
// phpSAFE ships out-of-the-box knowledge of (DSN 2015, §III.A, §III.E).
//
// The paper's key observation is that plugins interact with the CMS
// through framework objects and functions — "$wpdb->get_results" retrieves
// likely-untrusted database rows, "esc_html" sanitizes for HTML output —
// and a tool unaware of them both misses vulnerabilities (unknown sources)
// and raises false alarms (unknown sanitizers). This package provides:
//
//   - Profile: the WordPress configuration layer (sources, sanitizers,
//     sinks, well-known globals) merged on top of config.Generic.
//   - StubSource: a PHP rendering of the modeled API, used by the corpus
//     generator so generated plugins can include a framework file the way
//     real plugins include wp-load.php.
package wordpress

import (
	"strings"

	"repro/internal/analyzer"
	"repro/internal/config"
)

// Profile returns the WordPress configuration layer. Merge it on top of
// config.Generic() to obtain phpSAFE's out-of-the-box configuration:
//
//	cfg := config.Compile(config.Merge("wordpress", config.Generic(), wordpress.Profile()))
func Profile() config.Profile {
	xss := []analyzer.VulnClass{analyzer.XSS}
	sqli := []analyzer.VulnClass{analyzer.SQLi}

	return config.Profile{
		Name: "wordpress",
		Sources: []config.Source{
			// $wpdb read methods return database rows: second-order data
			// that other users may have poisoned (§III.E's
			// mail-subscribe-list example).
			{Kind: config.MethodSource, Class: "wpdb", Name: "get_results", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: config.MethodSource, Class: "wpdb", Name: "get_row", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: config.MethodSource, Class: "wpdb", Name: "get_var", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: config.MethodSource, Class: "wpdb", Name: "get_col", Vector: analyzer.VectorDB, Taints: xss},

			// WordPress option/meta accessors also read from the database.
			{Kind: config.FunctionSource, Name: "get_option", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: config.FunctionSource, Name: "get_post_meta", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: config.FunctionSource, Name: "get_user_meta", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: config.FunctionSource, Name: "get_comment_meta", Vector: analyzer.VectorDB, Taints: xss},
			{Kind: config.FunctionSource, Name: "get_query_var", Vector: analyzer.VectorGET, Taints: xss},
			{Kind: config.FunctionSource, Name: "get_search_query", Vector: analyzer.VectorGET, Taints: xss},
		},

		Sanitizers: []config.Sanitizer{
			// Escaping API.
			{Name: "esc_html", Untaints: xss},
			{Name: "esc_attr", Untaints: xss},
			{Name: "esc_url", Untaints: xss},
			{Name: "esc_url_raw", Untaints: xss},
			{Name: "esc_js", Untaints: xss},
			{Name: "esc_textarea", Untaints: xss},
			{Name: "esc_html__", Untaints: xss},
			{Name: "esc_html_e", Untaints: xss},
			{Name: "esc_attr__", Untaints: xss},
			{Name: "esc_attr_e", Untaints: xss},
			{Name: "wp_kses", Untaints: xss},
			{Name: "wp_kses_post", Untaints: xss},
			{Name: "wp_kses_data", Untaints: xss},
			{Name: "tag_escape", Untaints: xss},

			// Sanitization API (both classes: the output is constrained).
			{Name: "sanitize_text_field"},
			{Name: "sanitize_email"},
			{Name: "sanitize_key"},
			{Name: "sanitize_file_name"},
			{Name: "sanitize_html_class"},
			{Name: "sanitize_title"},
			{Name: "sanitize_user"},
			{Name: "absint"},
			{Name: "wp_validate_boolean"},

			// SQL escaping.
			{Name: "esc_sql", Untaints: sqli},
			{Name: "like_escape", Untaints: sqli},
			{Class: "wpdb", Name: "prepare", Untaints: sqli},
			{Class: "wpdb", Name: "escape", Untaints: sqli},
		},

		Reverts: []string{
			"wp_specialchars_decode",
			"wp_unslash",
		},

		Sinks: []config.Sink{
			// $wpdb query methods are SQL sinks for their query argument.
			{Class: "wpdb", Name: "query", Vuln: analyzer.SQLi, Args: []int{0}},
			{Class: "wpdb", Name: "get_results", Vuln: analyzer.SQLi, Args: []int{0}},
			{Class: "wpdb", Name: "get_row", Vuln: analyzer.SQLi, Args: []int{0}},
			{Class: "wpdb", Name: "get_var", Vuln: analyzer.SQLi, Args: []int{0}},
			{Class: "wpdb", Name: "get_col", Vuln: analyzer.SQLi, Args: []int{0}},

			// Output helpers that echo their argument.
			{Name: "_e", Vuln: analyzer.XSS, Args: []int{0}},
			{Name: "comment_text", Vuln: analyzer.XSS},
			{Name: "the_content", Vuln: analyzer.XSS},
		},

		ObjectClasses: map[string]string{
			"wpdb":     "wpdb",
			"wp_query": "wp_query",
			"post":     "wp_post",
		},
	}
}

// Compiled returns the ready-to-use compiled WordPress configuration
// (generic PHP + WordPress), phpSAFE's out-of-the-box setup.
func Compiled() *config.Compiled {
	return config.Compile(config.Merge("wordpress", config.Generic(), Profile()))
}

// StubSource returns PHP source text declaring the modeled WordPress API:
// the wpdb class with its query/read methods, the escaping and
// sanitization functions, and the hook-registration functions plugins
// call. The corpus generator writes this as wp-stubs.php so generated
// plugins resemble real ones (and so include-following engines have a
// file to resolve).
func StubSource() string {
	var sb strings.Builder
	sb.WriteString(`<?php
/**
 * WordPress API stubs — a condensed model of the framework surface used
 * by the generated corpus plugins. Real plugins run inside WordPress and
 * include wp-load.php; corpus plugins include this file instead.
 */

class wpdb {
	public $prefix = 'wp_';
	public $insert_id = 0;
	function query($sql) { return 0; }
	function get_results($sql = null, $output = OBJECT) { return array(); }
	function get_row($sql = null, $output = OBJECT, $y = 0) { return null; }
	function get_var($sql = null, $x = 0, $y = 0) { return null; }
	function get_col($sql = null, $x = 0) { return array(); }
	function prepare($sql, $args = null) { return ''; }
	function escape($data) { return $data; }
	function insert($table, $data) { return 1; }
	function update($table, $data, $where) { return 1; }
}

$wpdb = new wpdb();

function add_action($hook, $callback, $priority = 10, $args = 1) { return true; }
function add_filter($hook, $callback, $priority = 10, $args = 1) { return true; }
function add_shortcode($tag, $callback) { return true; }
function register_activation_hook($file, $callback) { return true; }
function register_deactivation_hook($file, $callback) { return true; }
function add_options_page($pt, $mt, $cap, $slug, $cb) { return true; }
function add_menu_page($pt, $mt, $cap, $slug, $cb) { return true; }
function wp_enqueue_script($handle, $src = '') { return true; }
function wp_enqueue_style($handle, $src = '') { return true; }
function plugin_dir_path($file) { return dirname($file) . '/'; }
function plugin_dir_url($file) { return ''; }
function wp_die($message = '') { die($message); }

function get_option($name, $default = false) { return $default; }
function update_option($name, $value) { return true; }
function delete_option($name) { return true; }
function get_post_meta($id, $key = '', $single = false) { return ''; }
function update_post_meta($id, $key, $value) { return true; }
function get_user_meta($id, $key = '', $single = false) { return ''; }
function get_query_var($name, $default = '') { return $default; }
function get_search_query() { return ''; }

function esc_html($text) { return htmlspecialchars($text); }
function esc_attr($text) { return htmlspecialchars($text); }
function esc_url($url) { return $url; }
function esc_js($text) { return $text; }
function esc_textarea($text) { return htmlspecialchars($text); }
function esc_sql($sql) { return addslashes($sql); }
function like_escape($text) { return addslashes($text); }
function sanitize_text_field($str) { return trim(strip_tags($str)); }
function sanitize_email($email) { return $email; }
function sanitize_key($key) { return $key; }
function sanitize_title($title) { return $title; }
function absint($n) { return abs(intval($n)); }
function wp_kses($string, $allowed) { return $string; }
function wp_kses_post($string) { return $string; }
function wp_unslash($value) { return stripslashes($value); }
function wp_specialchars_decode($string) { return htmlspecialchars_decode($string); }

function __($text, $domain = 'default') { return $text; }
function _e($text, $domain = 'default') { echo $text; }
function current_user_can($cap) { return false; }
function is_admin() { return false; }
function wp_verify_nonce($nonce, $action = -1) { return false; }
function wp_create_nonce($action = -1) { return ''; }
function check_admin_referer($action = -1) { return true; }
`)
	return sb.String()
}

// StubPath is the corpus-relative path the stub file is written to.
const StubPath = "wp-stubs.php"
