package phptoken

import (
	"strings"
	"testing"
)

func TestLookupKeyword(t *testing.T) {
	t.Parallel()
	tests := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"if", KwIf, true},
		{"IF", KwIf, true},
		{"Echo", KwEcho, true},
		{"die", KwExit, true},
		{"exit", KwExit, true},
		{"include_once", KwIncludeOnce, true},
		{"and", KwLogicalAnd, true},
		{"notakeyword", 0, false},
		{"", 0, false},
		{"iff", 0, false},
	}
	for _, tt := range tests {
		got, ok := LookupKeyword(tt.in)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("LookupKeyword(%q) = %v, %v; want %v, %v", tt.in, got, ok, tt.want, tt.ok)
		}
	}
}

func TestTokenPredicates(t *testing.T) {
	t.Parallel()
	if !(Token{Kind: KwClass}).IsKeyword() {
		t.Error("class should be a keyword")
	}
	if (Token{Kind: Ident}).IsKeyword() {
		t.Error("ident is not a keyword")
	}
	if !(Token{Kind: Whitespace}).IsTrivia() || !(Token{Kind: Comment}).IsTrivia() ||
		!(Token{Kind: DocComment}).IsTrivia() {
		t.Error("whitespace/comments are trivia")
	}
	if (Token{Kind: Variable}).IsTrivia() {
		t.Error("variable is not trivia")
	}
	if !(Token{Kind: IntCast}).IsCast() || (Token{Kind: LParen}).IsCast() {
		t.Error("cast predicate wrong")
	}
}

func TestKindStringStability(t *testing.T) {
	t.Parallel()
	// The names phpSAFE's paper mentions must be PHP-compatible.
	fixed := map[Kind]string{
		Variable:    "T_VARIABLE",
		Arrow:       "T_OBJECT_OPERATOR",
		DoubleColon: "T_DOUBLE_COLON",
		KwIf:        "T_IF",
		KwUnset:     "T_UNSET",
		KwGlobal:    "T_GLOBAL",
		KwReturn:    "T_RETURN",
		InlineHTML:  "T_INLINE_HTML",
	}
	for k, want := range fixed {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if s := Kind(-1).String(); !strings.Contains(s, "-1") {
		t.Errorf("out-of-range kind = %q", s)
	}
	if s := Kind(KindCount() + 5).String(); !strings.Contains(s, "Kind(") {
		t.Errorf("out-of-range kind = %q", s)
	}
}

func TestTokenString(t *testing.T) {
	t.Parallel()
	tok := Token{Kind: Variable, Text: "$x", Line: 7}
	s := tok.String()
	if !strings.Contains(s, "T_VARIABLE") || !strings.Contains(s, "$x") || !strings.Contains(s, "7") {
		t.Errorf("Token.String() = %q", s)
	}
}

func TestAllKeywordsRoundTrip(t *testing.T) {
	t.Parallel()
	// Every keyword kind maps to a non-empty distinct name.
	seen := make(map[string]Kind)
	for k := KwAbstract; k <= KwLogicalXor; k++ {
		name := k.String()
		if name == "" {
			t.Errorf("keyword kind %d has empty name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("name %q reused by %d and %d", name, prev, k)
		}
		seen[name] = k
	}
}
