// Package phptoken defines the token taxonomy for PHP 5 source code.
//
// The taxonomy mirrors the token identifiers produced by the PHP
// interpreter's token_get_all function, which the phpSAFE paper (DSN 2015,
// §III.B) uses as the substrate of its model-construction stage. Single
// character punctuation, which token_get_all returns as bare strings, is
// represented here by dedicated kinds so that downstream passes can switch
// on a single enum.
package phptoken

import "strconv"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Names follow the PHP engine's T_* identifiers where an
// equivalent exists.
const (
	// Invalid is the zero Kind; it never appears in lexer output.
	Invalid Kind = iota

	// EOF marks the end of the token stream.
	EOF

	// InlineHTML is raw output outside <?php ... ?> regions (T_INLINE_HTML).
	InlineHTML
	// OpenTag is "<?php" or "<?=" (T_OPEN_TAG / T_OPEN_TAG_WITH_ECHO).
	OpenTag
	// OpenTagEcho is the short echo tag "<?=".
	OpenTagEcho
	// CloseTag is "?>" (T_CLOSE_TAG).
	CloseTag

	// Variable is "$name" (T_VARIABLE).
	Variable
	// Ident is a bare identifier: function names, class names, constants
	// (T_STRING).
	Ident
	// IntLit is an integer literal (T_LNUMBER).
	IntLit
	// FloatLit is a floating point literal (T_DNUMBER).
	FloatLit
	// StringLit is a single-quoted or non-interpolated double-quoted string
	// including its quotes (T_CONSTANT_ENCAPSED_STRING).
	StringLit
	// EncapsedText is a raw text fragment inside an interpolated string or
	// heredoc (T_ENCAPSED_AND_WHITESPACE).
	EncapsedText
	// Quote is the '"' delimiter of an interpolated string.
	Quote
	// StartHeredoc is "<<<LABEL" (T_START_HEREDOC).
	StartHeredoc
	// EndHeredoc is the closing heredoc label (T_END_HEREDOC).
	EndHeredoc
	// CurlyOpen is "{$" inside an interpolated string (T_CURLY_OPEN).
	CurlyOpen
	// DollarCurlyOpen is "${" inside an interpolated string
	// (T_DOLLAR_OPEN_CURLY_BRACES).
	DollarCurlyOpen

	// Comment is "// ...", "# ..." or "/* ... */" (T_COMMENT).
	Comment
	// DocComment is "/** ... */" (T_DOC_COMMENT).
	DocComment
	// Whitespace is a run of spaces, tabs and newlines (T_WHITESPACE).
	Whitespace

	// Keywords.
	KwAbstract
	KwArray
	KwAs
	KwBreak
	KwCase
	KwCatch
	KwClass
	KwClone
	KwConst
	KwContinue
	KwDeclare
	KwDefault
	KwDo
	KwEcho
	KwElse
	KwElseif
	KwEmpty
	KwExit
	KwExtends
	KwFinal
	KwFinally
	KwFor
	KwForeach
	KwFunction
	KwGlobal
	KwIf
	KwImplements
	KwInclude
	KwIncludeOnce
	KwInstanceof
	KwInterface
	KwIsset
	KwList
	KwNamespace
	KwNew
	KwPrint
	KwPrivate
	KwProtected
	KwPublic
	KwRequire
	KwRequireOnce
	KwReturn
	KwStatic
	KwSwitch
	KwThrow
	KwTrait
	KwTry
	KwUnset
	KwUse
	KwVar
	KwWhile
	// KwLogicalAnd, KwLogicalOr, KwLogicalXor are the word-form operators
	// "and", "or", "xor" (T_LOGICAL_AND/OR/XOR).
	KwLogicalAnd
	KwLogicalOr
	KwLogicalXor

	// Casts (T_INT_CAST, T_DOUBLE_CAST, ...).
	IntCast
	FloatCast
	StringCast
	ArrayCast
	ObjectCast
	BoolCast
	UnsetCast

	// Operators and punctuation.
	Assign         // =
	Plus           // +
	Minus          // -
	Star           // *
	Slash          // /
	Percent        // %
	Dot            // .
	Bang           // !
	Question       // ?
	Colon          // :
	Semicolon      // ;
	Comma          // ,
	LParen         // (
	RParen         // )
	LBrace         // {
	RBrace         // }
	LBracket       // [
	RBracket       // ]
	Lt             // <
	Gt             // >
	Amp            // &
	Pipe           // |
	Caret          // ^
	Tilde          // ~
	At             // @
	Dollar         // $
	Backslash      // \
	Backtick       // `
	IsEqual        // ==
	IsIdentical    // ===
	IsNotEqual     // != or <>
	IsNotIdentical // !==
	Le             // <=
	Ge             // >=
	BoolAnd        // &&
	BoolOr         // ||
	Inc            // ++
	Dec            // --
	PlusAssign     // +=
	MinusAssign    // -=
	StarAssign     // *=
	SlashAssign    // /=
	DotAssign      // .=
	PercentAssign  // %=
	AmpAssign      // &=
	PipeAssign     // |=
	CaretAssign    // ^=
	ShlAssign      // <<=
	ShrAssign      // >>=
	Shl            // <<
	Shr            // >>
	Arrow          // -> (T_OBJECT_OPERATOR)
	DoubleColon    // :: (T_PAAMAYIM_NEKUDOTAYIM)
	DoubleArrow    // => (T_DOUBLE_ARROW)
	Ellipsis       // ...

	// kindCount is the number of kinds; it must remain last.
	kindCount
)

// tokenNames maps each Kind to the PHP engine token name where one exists,
// or to a descriptive name otherwise.
var tokenNames = [kindCount]string{
	Invalid:         "INVALID",
	EOF:             "EOF",
	InlineHTML:      "T_INLINE_HTML",
	OpenTag:         "T_OPEN_TAG",
	OpenTagEcho:     "T_OPEN_TAG_WITH_ECHO",
	CloseTag:        "T_CLOSE_TAG",
	Variable:        "T_VARIABLE",
	Ident:           "T_STRING",
	IntLit:          "T_LNUMBER",
	FloatLit:        "T_DNUMBER",
	StringLit:       "T_CONSTANT_ENCAPSED_STRING",
	EncapsedText:    "T_ENCAPSED_AND_WHITESPACE",
	Quote:           `"`,
	StartHeredoc:    "T_START_HEREDOC",
	EndHeredoc:      "T_END_HEREDOC",
	CurlyOpen:       "T_CURLY_OPEN",
	DollarCurlyOpen: "T_DOLLAR_OPEN_CURLY_BRACES",
	Comment:         "T_COMMENT",
	DocComment:      "T_DOC_COMMENT",
	Whitespace:      "T_WHITESPACE",
	KwAbstract:      "T_ABSTRACT",
	KwArray:         "T_ARRAY",
	KwAs:            "T_AS",
	KwBreak:         "T_BREAK",
	KwCase:          "T_CASE",
	KwCatch:         "T_CATCH",
	KwClass:         "T_CLASS",
	KwClone:         "T_CLONE",
	KwConst:         "T_CONST",
	KwContinue:      "T_CONTINUE",
	KwDeclare:       "T_DECLARE",
	KwDefault:       "T_DEFAULT",
	KwDo:            "T_DO",
	KwEcho:          "T_ECHO",
	KwElse:          "T_ELSE",
	KwElseif:        "T_ELSEIF",
	KwEmpty:         "T_EMPTY",
	KwExit:          "T_EXIT",
	KwExtends:       "T_EXTENDS",
	KwFinal:         "T_FINAL",
	KwFinally:       "T_FINALLY",
	KwFor:           "T_FOR",
	KwForeach:       "T_FOREACH",
	KwFunction:      "T_FUNCTION",
	KwGlobal:        "T_GLOBAL",
	KwIf:            "T_IF",
	KwImplements:    "T_IMPLEMENTS",
	KwInclude:       "T_INCLUDE",
	KwIncludeOnce:   "T_INCLUDE_ONCE",
	KwInstanceof:    "T_INSTANCEOF",
	KwInterface:     "T_INTERFACE",
	KwIsset:         "T_ISSET",
	KwList:          "T_LIST",
	KwNamespace:     "T_NAMESPACE",
	KwNew:           "T_NEW",
	KwPrint:         "T_PRINT",
	KwPrivate:       "T_PRIVATE",
	KwProtected:     "T_PROTECTED",
	KwPublic:        "T_PUBLIC",
	KwRequire:       "T_REQUIRE",
	KwRequireOnce:   "T_REQUIRE_ONCE",
	KwReturn:        "T_RETURN",
	KwStatic:        "T_STATIC",
	KwSwitch:        "T_SWITCH",
	KwThrow:         "T_THROW",
	KwTrait:         "T_TRAIT",
	KwTry:           "T_TRY",
	KwUnset:         "T_UNSET",
	KwUse:           "T_USE",
	KwVar:           "T_VAR",
	KwWhile:         "T_WHILE",
	KwLogicalAnd:    "T_LOGICAL_AND",
	KwLogicalOr:     "T_LOGICAL_OR",
	KwLogicalXor:    "T_LOGICAL_XOR",
	IntCast:         "T_INT_CAST",
	FloatCast:       "T_DOUBLE_CAST",
	StringCast:      "T_STRING_CAST",
	ArrayCast:       "T_ARRAY_CAST",
	ObjectCast:      "T_OBJECT_CAST",
	BoolCast:        "T_BOOL_CAST",
	UnsetCast:       "T_UNSET_CAST",
	Assign:          "=",
	Plus:            "+",
	Minus:           "-",
	Star:            "*",
	Slash:           "/",
	Percent:         "%",
	Dot:             ".",
	Bang:            "!",
	Question:        "?",
	Colon:           ":",
	Semicolon:       ";",
	Comma:           ",",
	LParen:          "(",
	RParen:          ")",
	LBrace:          "{",
	RBrace:          "}",
	LBracket:        "[",
	RBracket:        "]",
	Lt:              "<",
	Gt:              ">",
	Amp:             "&",
	Pipe:            "|",
	Caret:           "^",
	Tilde:           "~",
	At:              "@",
	Dollar:          "$",
	Backslash:       "\\",
	Backtick:        "`",
	IsEqual:         "T_IS_EQUAL",
	IsIdentical:     "T_IS_IDENTICAL",
	IsNotEqual:      "T_IS_NOT_EQUAL",
	IsNotIdentical:  "T_IS_NOT_IDENTICAL",
	Le:              "T_IS_SMALLER_OR_EQUAL",
	Ge:              "T_IS_GREATER_OR_EQUAL",
	BoolAnd:         "T_BOOLEAN_AND",
	BoolOr:          "T_BOOLEAN_OR",
	Inc:             "T_INC",
	Dec:             "T_DEC",
	PlusAssign:      "T_PLUS_EQUAL",
	MinusAssign:     "T_MINUS_EQUAL",
	StarAssign:      "T_MUL_EQUAL",
	SlashAssign:     "T_DIV_EQUAL",
	DotAssign:       "T_CONCAT_EQUAL",
	PercentAssign:   "T_MOD_EQUAL",
	AmpAssign:       "T_AND_EQUAL",
	PipeAssign:      "T_OR_EQUAL",
	CaretAssign:     "T_XOR_EQUAL",
	ShlAssign:       "T_SL_EQUAL",
	ShrAssign:       "T_SR_EQUAL",
	Shl:             "T_SL",
	Shr:             "T_SR",
	Arrow:           "T_OBJECT_OPERATOR",
	DoubleColon:     "T_DOUBLE_COLON",
	DoubleArrow:     "T_DOUBLE_ARROW",
	Ellipsis:        "T_ELLIPSIS",
}

// String returns the PHP engine token name for k (the equivalent of PHP's
// token_name), or a bracketed number for out-of-range kinds.
func (k Kind) String() string {
	if k < 0 || k >= kindCount {
		return "Kind(" + strconv.Itoa(int(k)) + ")"
	}
	return tokenNames[k]
}

// KindCount reports the number of defined token kinds. It exists so tests
// can verify exhaustiveness of the name table.
func KindCount() int { return int(kindCount) }

// keywords maps lower-case PHP keyword spellings to their token kinds.
// PHP keywords are case-insensitive.
var keywords = map[string]Kind{
	"abstract":     KwAbstract,
	"array":        KwArray,
	"as":           KwAs,
	"break":        KwBreak,
	"case":         KwCase,
	"catch":        KwCatch,
	"class":        KwClass,
	"clone":        KwClone,
	"const":        KwConst,
	"continue":     KwContinue,
	"declare":      KwDeclare,
	"default":      KwDefault,
	"die":          KwExit,
	"do":           KwDo,
	"echo":         KwEcho,
	"else":         KwElse,
	"elseif":       KwElseif,
	"empty":        KwEmpty,
	"exit":         KwExit,
	"extends":      KwExtends,
	"final":        KwFinal,
	"finally":      KwFinally,
	"for":          KwFor,
	"foreach":      KwForeach,
	"function":     KwFunction,
	"global":       KwGlobal,
	"if":           KwIf,
	"implements":   KwImplements,
	"include":      KwInclude,
	"include_once": KwIncludeOnce,
	"instanceof":   KwInstanceof,
	"interface":    KwInterface,
	"isset":        KwIsset,
	"list":         KwList,
	"namespace":    KwNamespace,
	"new":          KwNew,
	"print":        KwPrint,
	"private":      KwPrivate,
	"protected":    KwProtected,
	"public":       KwPublic,
	"require":      KwRequire,
	"require_once": KwRequireOnce,
	"return":       KwReturn,
	"static":       KwStatic,
	"switch":       KwSwitch,
	"throw":        KwThrow,
	"trait":        KwTrait,
	"try":          KwTry,
	"unset":        KwUnset,
	"use":          KwUse,
	"var":          KwVar,
	"while":        KwWhile,
	"and":          KwLogicalAnd,
	"or":           KwLogicalOr,
	"xor":          KwLogicalXor,
}

// LookupKeyword returns the keyword Kind for an identifier spelling, using
// PHP's case-insensitive keyword matching. The second result reports whether
// the spelling is a keyword.
func LookupKeyword(ident string) (Kind, bool) {
	k, ok := keywords[lowerASCII(ident)]
	return k, ok
}

// lowerASCII lower-cases ASCII letters without allocating when the input is
// already lower-case.
func lowerASCII(s string) string {
	lower := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}

// Token is a single lexical token with its source position.
type Token struct {
	// Kind is the lexical class.
	Kind Kind
	// Text is the exact source text of the token.
	Text string
	// Line is the 1-based source line on which the token starts.
	Line int
	// Offset is the 0-based byte offset of the token start.
	Offset int
}

// IsKeyword reports whether the token is a PHP keyword.
func (t Token) IsKeyword() bool {
	return t.Kind >= KwAbstract && t.Kind <= KwLogicalXor
}

// IsTrivia reports whether the token carries no syntactic meaning
// (whitespace and comments). phpSAFE's model-construction stage strips
// trivia from the AST before analysis (paper §III.B).
func (t Token) IsTrivia() bool {
	return t.Kind == Whitespace || t.Kind == Comment || t.Kind == DocComment
}

// IsCast reports whether the token is a type-cast operator.
func (t Token) IsCast() bool {
	return t.Kind >= IntCast && t.Kind <= UnsetCast
}

// String renders the token as "T_NAME(text)@line" for debugging.
func (t Token) String() string {
	return t.Kind.String() + "(" + t.Text + ")@" + strconv.Itoa(t.Line)
}
