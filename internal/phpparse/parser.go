// Package phpparse parses PHP 5 source code into the AST of package phpast.
//
// The parser is the second half of phpSAFE's model-construction stage
// (DSN 2015, §III.B): it consumes the cleaned token stream produced by
// package phplex and produces one phpast.File per source file. It is
// tolerant by design — plugins in the wild contain constructs outside the
// analyzed subset, and the paper's tools must "finish the analysis and
// produce a result" (robustness, §IV.A) — so unparseable regions degrade
// to Bad nodes and a recorded error instead of failing the file.
package phpparse

import (
	"fmt"
	"strings"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/phpast"
	"repro/internal/phplex"
	"repro/internal/phptoken"
)

// Parse parses PHP source text and returns the file's AST. The returned
// file always has a usable (possibly partial) statement list; recoverable
// problems are listed in File.Errors.
func Parse(name, src string) *phpast.File {
	return ParseObserved(name, src, nil, nil)
}

// ParseObserved is Parse with model-construction cost recorded into a
// recorder: a "parse:<name>" span under parent (with a nested "lex"
// span from the lexer), parse time in the stage_parse_seconds
// histogram, and the parse_ast_nodes_total / parse_errors_total /
// parse_files_total counters. A nil recorder makes it identical to
// Parse — the counting walk only runs when observation is on, so the
// unobserved hot path stays unchanged.
func ParseObserved(name, src string, rec *obs.Recorder, parent *obs.Span) *phpast.File {
	return ParseGoverned(name, src, rec, parent, nil)
}

// ParseGoverned is ParseObserved under a resource governor: lexing and
// statement parsing carry cancellation checkpoints (a halted governor
// terminates the token stream and the statement list early, yielding a
// truncated but well-formed AST), and expression/statement nesting is
// bounded by the governor's parse-depth budget — deeper constructs
// degrade to Bad nodes with a recorded error, exactly like other
// malformed input. A nil governor still applies the default depth
// budget, so the parser is stack-safe on hostile input everywhere.
func ParseGoverned(name, src string, rec *obs.Recorder, parent *obs.Span, gov *govern.Governor) *phpast.File {
	return ParseInterned(name, src, rec, parent, gov, nil)
}

// ParseInterned is ParseGoverned with an identifier intern table: the
// case-folded names the parser materializes (function, class, method
// and call-site names) are deduplicated through in, so each distinct
// spelling is allocated once per scan instead of once per reference.
// The interner is not synchronized — the parallel pipeline hands each
// worker its own shard and merges them at the barrier. A nil interner
// still folds case (with the same ASCII fast path), it just doesn't
// deduplicate.
func ParseInterned(name, src string, rec *obs.Recorder, parent *obs.Span, gov *govern.Governor, in *phplex.Interner) *phpast.File {
	sp := rec.StartNamedSpan("parse:", name, parent)
	p := &parser{
		toks: phplex.TokenizeCodeGoverned(src, rec, sp, gov),
		file: &phpast.File{
			Name:  name,
			Lines: strings.Count(src, "\n") + 1,
		},
		gov:      gov,
		maxDepth: gov.MaxParseDepth(),
		in:       in,
	}
	p.file.Stmts = p.parseStmtList(func(t phptoken.Token) bool { return false })
	// The AST holds no references into the token stream (names are
	// substrings of src or interned copies), so the buffer can go back
	// to the pool as soon as parsing is done.
	phplex.PutTokens(p.toks)
	p.toks = nil
	sp.EndAndObserve("stage_parse_seconds")
	if rec != nil {
		rec.Counter("parse_files_total").Inc()
		rec.Counter("parse_ast_nodes_total").Add(int64(phpast.CountNodes(p.file)))
		rec.Counter("parse_errors_total").Add(int64(len(p.file.Errors)))
	}
	return p.file
}

// parser holds the token cursor and the file being built.
type parser struct {
	toks []phptoken.Token
	pos  int
	file *phpast.File

	// gov is the scan's resource governor (nil when ungoverned).
	gov *govern.Governor
	// depth tracks recursive-descent nesting against maxDepth; crossing
	// the budget degrades the construct to a Bad node instead of risking
	// stack exhaustion on hostile input.
	depth        int
	maxDepth     int
	depthErrored bool

	// in deduplicates case-folded identifiers (nil means fold without
	// interning).
	in *phplex.Interner
}

// lower case-folds an identifier through the intern table. It replaces
// strings.ToLower on the hot path: already-lowercase names (the common
// case) cost zero allocations, and distinct spellings are materialized
// once per scan when an interner is attached.
func (p *parser) lower(s string) string {
	return p.in.Lower(s)
}

// enterNesting guards one level of parser recursion. It reports false —
// recording the budget error once — when the depth budget is spent.
func (p *parser) enterNesting() bool {
	if p.depth >= p.maxDepth {
		if !p.depthErrored {
			p.depthErrored = true
			p.errorf("line %d: nesting exceeds parser depth budget (%d); degrading to bad node",
				p.cur().Line, p.maxDepth)
			p.gov.NoteParseDepth()
		}
		return false
	}
	p.depth++
	return true
}

// leaveNesting releases one level taken by enterNesting.
func (p *parser) leaveNesting() { p.depth-- }

// badExprOverDepth consumes one token (to guarantee forward progress in
// every caller's loop) and returns a placeholder expression.
func (p *parser) badExprOverDepth() phpast.Expr {
	line := p.cur().Line
	if !p.at(phptoken.EOF) {
		p.pos++
	}
	return &phpast.BadExpr{Reason: "nesting depth budget exceeded", Position: phpast.NewPosition(line)}
}

// cur returns the current token; past the end it returns the final EOF.
func (p *parser) cur() phptoken.Token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}

// peek returns the token n positions ahead.
func (p *parser) peek(n int) phptoken.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

// next consumes and returns the current token.
func (p *parser) next() phptoken.Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

// at reports whether the current token has kind k.
func (p *parser) at(k phptoken.Kind) bool { return p.cur().Kind == k }

// accept consumes the current token when it has kind k.
func (p *parser) accept(k phptoken.Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a token of kind k or records an error without consuming.
func (p *parser) expect(k phptoken.Kind, ctx string) bool {
	if p.accept(k) {
		return true
	}
	p.errorf("line %d: expected %v in %s, found %v", p.cur().Line, k, ctx, p.cur().Kind)
	return false
}

// errorf records a recoverable parse error.
func (p *parser) errorf(format string, args ...any) {
	p.file.Errors = append(p.file.Errors, fmt.Sprintf(format, args...))
}

// pos builds the embedded position from the current token.
func (p *parser) position() int { return p.cur().Line }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// parseStmtList parses statements until EOF or until stop returns true for
// the current token. It guarantees forward progress even on malformed
// input.
func (p *parser) parseStmtList(stop func(phptoken.Token) bool) []phpast.Stmt {
	var list []phpast.Stmt
	for {
		p.gov.Step()
		if p.gov.Halted() {
			// Cancellation or an exhausted budget: hand back what parsed
			// so far; the engine records the truncation.
			return list
		}
		t := p.cur()
		if t.Kind == phptoken.EOF || stop(t) {
			return list
		}
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			list = append(list, s)
		}
		if p.pos == before {
			// No progress: consume the offending token to avoid loops.
			bad := p.next()
			p.errorf("line %d: unexpected token %v", bad.Line, bad.Kind)
			list = append(list, &phpast.BadStmt{
				Reason:   "unexpected " + bad.Kind.String(),
				Position: phpast.NewPosition(bad.Line),
			})
		}
	}
}

// stopAt returns a stop predicate matching any of the given kinds.
func stopAt(kinds ...phptoken.Kind) func(phptoken.Token) bool {
	return func(t phptoken.Token) bool {
		for _, k := range kinds {
			if t.Kind == k {
				return true
			}
		}
		return false
	}
}

// stopAtIdents returns a stop predicate matching Ident tokens with any of
// the given case-insensitive spellings (used for endif/endwhile/...).
func stopAtIdents(names ...string) func(phptoken.Token) bool {
	return func(t phptoken.Token) bool {
		if t.Kind != phptoken.Ident {
			return false
		}
		for _, n := range names {
			if strings.EqualFold(t.Text, n) {
				return true
			}
		}
		return false
	}
}

// parseStmt parses one statement. It may return nil for tokens that carry
// no statement (open/close tags, stray semicolons).
func (p *parser) parseStmt() phpast.Stmt {
	if !p.enterNesting() {
		line := p.cur().Line
		if !p.at(phptoken.EOF) {
			p.pos++
		}
		return &phpast.BadStmt{Reason: "nesting depth budget exceeded", Position: phpast.NewPosition(line)}
	}
	s := p.parseStmtTail()
	p.leaveNesting()
	return s
}

// parseStmtTail is parseStmt without the depth guard.
func (p *parser) parseStmtTail() phpast.Stmt {
	t := p.cur()
	switch t.Kind {
	case phptoken.OpenTag, phptoken.CloseTag:
		p.next()
		return nil
	case phptoken.Semicolon:
		p.next()
		return nil
	case phptoken.InlineHTML:
		p.next()
		return &phpast.Echo{
			Args:     []phpast.Expr{p.lit(t.Line, phpast.LitString, t.Text)},
			FromHTML: true,
			Position: phpast.NewPosition(t.Line),
		}
	case phptoken.OpenTagEcho:
		p.next()
		args := p.parseExprListUntil(stopAt(phptoken.Semicolon, phptoken.CloseTag))
		p.accept(phptoken.Semicolon)
		return &phpast.Echo{Args: args, FromHTML: true, Position: phpast.NewPosition(t.Line)}
	case phptoken.KwEcho:
		p.next()
		args := p.parseExprListUntil(stopAt(phptoken.Semicolon, phptoken.CloseTag))
		p.endStmt()
		return &phpast.Echo{Args: args, Position: phpast.NewPosition(t.Line)}
	case phptoken.LBrace:
		p.next()
		body := p.parseStmtList(stopAt(phptoken.RBrace))
		p.expect(phptoken.RBrace, "block")
		return &phpast.Block{List: body, Position: phpast.NewPosition(t.Line)}
	case phptoken.KwIf:
		return p.parseIf()
	case phptoken.KwWhile:
		return p.parseWhile()
	case phptoken.KwDo:
		return p.parseDoWhile()
	case phptoken.KwFor:
		return p.parseFor()
	case phptoken.KwForeach:
		return p.parseForeach()
	case phptoken.KwSwitch:
		return p.parseSwitch()
	case phptoken.KwReturn:
		p.next()
		var x phpast.Expr
		if !p.at(phptoken.Semicolon) && !p.at(phptoken.CloseTag) && !p.at(phptoken.EOF) {
			x = p.parseExpr()
		}
		p.endStmt()
		return &phpast.Return{X: x, Position: phpast.NewPosition(t.Line)}
	case phptoken.KwBreak:
		p.next()
		p.skipOptionalLevel()
		p.endStmt()
		return &phpast.Break{Position: phpast.NewPosition(t.Line)}
	case phptoken.KwContinue:
		p.next()
		p.skipOptionalLevel()
		p.endStmt()
		return &phpast.Continue{Position: phpast.NewPosition(t.Line)}
	case phptoken.KwGlobal:
		return p.parseGlobal()
	case phptoken.KwStatic:
		// Distinguish "static $v = ..." from "static::" and class members.
		if p.peek(1).Kind == phptoken.Variable {
			return p.parseStaticVars()
		}
		return p.parseExprStmt()
	case phptoken.KwUnset:
		return p.parseUnset()
	case phptoken.KwFunction:
		// "function name(" declares; "function (" is a closure expression.
		if p.peek(1).Kind == phptoken.Ident ||
			(p.peek(1).Kind == phptoken.Amp && p.peek(2).Kind == phptoken.Ident) {
			return p.parseFuncDecl()
		}
		return p.parseExprStmt()
	case phptoken.KwAbstract, phptoken.KwFinal:
		if p.peek(1).Kind == phptoken.KwClass {
			return p.parseClassDecl()
		}
		return p.parseExprStmt()
	case phptoken.KwClass, phptoken.KwInterface, phptoken.KwTrait:
		return p.parseClassDecl()
	case phptoken.KwThrow:
		p.next()
		x := p.parseExpr()
		p.endStmt()
		return &phpast.Throw{X: x, Position: phpast.NewPosition(t.Line)}
	case phptoken.KwTry:
		return p.parseTry()
	case phptoken.KwNamespace:
		// namespace Foo\Bar; — record and skip.
		p.next()
		for !p.at(phptoken.Semicolon) && !p.at(phptoken.LBrace) && !p.at(phptoken.EOF) {
			p.next()
		}
		p.accept(phptoken.Semicolon)
		return nil
	case phptoken.KwUse:
		// use Foo\Bar; at top level — skip (aliases not modeled).
		p.next()
		for !p.at(phptoken.Semicolon) && !p.at(phptoken.EOF) {
			p.next()
		}
		p.accept(phptoken.Semicolon)
		return nil
	case phptoken.KwDeclare:
		p.next()
		p.skipParens()
		p.accept(phptoken.Semicolon)
		return nil
	default:
		return p.parseExprStmt()
	}
}

// endStmt consumes a statement terminator: semicolon, or a close tag which
// PHP treats as an implicit semicolon.
func (p *parser) endStmt() {
	if p.accept(phptoken.Semicolon) {
		return
	}
	if p.at(phptoken.CloseTag) || p.at(phptoken.EOF) || p.at(phptoken.RBrace) {
		return
	}
	p.errorf("line %d: expected ';', found %v", p.cur().Line, p.cur().Kind)
}

// skipOptionalLevel consumes the optional integer level of break/continue.
func (p *parser) skipOptionalLevel() {
	p.accept(phptoken.IntLit)
}

// skipParens consumes a balanced parenthesized group starting at "(".
func (p *parser) skipParens() {
	if !p.accept(phptoken.LParen) {
		return
	}
	depth := 1
	for depth > 0 && !p.at(phptoken.EOF) {
		switch p.next().Kind {
		case phptoken.LParen:
			depth++
		case phptoken.RParen:
			depth--
		}
	}
}

// parseExprStmt parses an expression statement.
func (p *parser) parseExprStmt() phpast.Stmt {
	line := p.position()
	x := p.parseExpr()
	p.endStmt()
	return &phpast.ExprStmt{X: x, Position: phpast.NewPosition(line)}
}

// parseIf parses if statements in both brace and alternative (colon)
// syntax.
func (p *parser) parseIf() phpast.Stmt {
	line := p.next().Line // if
	cond := p.parseParenExpr("if condition")
	node := &phpast.If{Cond: cond, Position: phpast.NewPosition(line)}

	if p.accept(phptoken.Colon) {
		// Alternative syntax: if (c): ... elseif: ... else: ... endif;
		stop := stopAtIdents("endif")
		node.Then = p.parseStmtListAlt(stop)
		for p.at(phptoken.KwElseif) ||
			(p.at(phptoken.KwElse) && p.peek(1).Kind == phptoken.KwIf) {
			eiLine := p.next().Line
			if p.cur().Kind == phptoken.KwIf { // "else if" split form
				p.next()
			}
			eiCond := p.parseParenExpr("elseif condition")
			p.expect(phptoken.Colon, "elseif")
			node.Elseifs = append(node.Elseifs, phpast.ElseIf{
				Line: eiLine, Cond: eiCond, Body: p.parseStmtListAlt(stop),
			})
		}
		if p.accept(phptoken.KwElse) {
			p.expect(phptoken.Colon, "else")
			node.Else = p.parseStmtListAlt(stop)
		}
		p.acceptIdent("endif")
		p.accept(phptoken.Semicolon)
		return node
	}

	node.Then = p.parseBody()
	for {
		if p.at(phptoken.KwElseif) {
			eiLine := p.next().Line
			eiCond := p.parseParenExpr("elseif condition")
			node.Elseifs = append(node.Elseifs, phpast.ElseIf{
				Line: eiLine, Cond: eiCond, Body: p.parseBody(),
			})
			continue
		}
		if p.at(phptoken.KwElse) && p.peek(1).Kind == phptoken.KwIf {
			eiLine := p.next().Line
			p.next() // if
			eiCond := p.parseParenExpr("else-if condition")
			node.Elseifs = append(node.Elseifs, phpast.ElseIf{
				Line: eiLine, Cond: eiCond, Body: p.parseBody(),
			})
			continue
		}
		break
	}
	if p.accept(phptoken.KwElse) {
		node.Else = p.parseBody()
	}
	return node
}

// parseStmtListAlt parses an alternative-syntax body: statements until
// elseif/else/case markers or the named end keyword.
func (p *parser) parseStmtListAlt(stopEnd func(phptoken.Token) bool) []phpast.Stmt {
	return p.parseStmtList(func(t phptoken.Token) bool {
		if t.Kind == phptoken.KwElseif || t.Kind == phptoken.KwElse {
			return true
		}
		return stopEnd(t)
	})
}

// acceptIdent consumes an Ident with the given case-insensitive spelling.
func (p *parser) acceptIdent(name string) bool {
	if p.at(phptoken.Ident) && strings.EqualFold(p.cur().Text, name) {
		p.next()
		return true
	}
	return false
}

// parseParenExpr parses "( expr )".
func (p *parser) parseParenExpr(ctx string) phpast.Expr {
	p.expect(phptoken.LParen, ctx)
	x := p.parseExpr()
	p.expect(phptoken.RParen, ctx)
	return x
}

// parseBody parses a statement body: a braced block, or a single
// statement.
func (p *parser) parseBody() []phpast.Stmt {
	if p.accept(phptoken.LBrace) {
		body := p.parseStmtList(stopAt(phptoken.RBrace))
		p.expect(phptoken.RBrace, "block")
		return body
	}
	if s := p.parseStmt(); s != nil {
		return []phpast.Stmt{s}
	}
	return nil
}

// parseWhile parses while loops in both syntaxes.
func (p *parser) parseWhile() phpast.Stmt {
	line := p.next().Line
	cond := p.parseParenExpr("while condition")
	node := &phpast.While{Cond: cond, Position: phpast.NewPosition(line)}
	if p.accept(phptoken.Colon) {
		node.Body = p.parseStmtList(stopAtIdents("endwhile"))
		p.acceptIdent("endwhile")
		p.accept(phptoken.Semicolon)
		return node
	}
	node.Body = p.parseBody()
	return node
}

// parseDoWhile parses do { } while ( );
func (p *parser) parseDoWhile() phpast.Stmt {
	line := p.next().Line
	body := p.parseBody()
	var cond phpast.Expr
	if p.accept(phptoken.KwWhile) {
		cond = p.parseParenExpr("do-while condition")
	} else {
		p.errorf("line %d: expected 'while' after do body", p.cur().Line)
	}
	p.endStmt()
	return &phpast.DoWhile{Body: body, Cond: cond, Position: phpast.NewPosition(line)}
}

// parseFor parses for (init; cond; post) body.
func (p *parser) parseFor() phpast.Stmt {
	line := p.next().Line
	node := &phpast.For{Position: phpast.NewPosition(line)}
	p.expect(phptoken.LParen, "for")
	node.Init = p.parseExprListUntil(stopAt(phptoken.Semicolon))
	p.accept(phptoken.Semicolon)
	node.Cond = p.parseExprListUntil(stopAt(phptoken.Semicolon))
	p.accept(phptoken.Semicolon)
	node.Post = p.parseExprListUntil(stopAt(phptoken.RParen))
	p.expect(phptoken.RParen, "for")
	if p.accept(phptoken.Colon) {
		node.Body = p.parseStmtList(stopAtIdents("endfor"))
		p.acceptIdent("endfor")
		p.accept(phptoken.Semicolon)
		return node
	}
	node.Body = p.parseBody()
	return node
}

// parseForeach parses foreach (expr as [$k =>] [&]$v) body.
func (p *parser) parseForeach() phpast.Stmt {
	line := p.next().Line
	node := &phpast.Foreach{Position: phpast.NewPosition(line)}
	p.expect(phptoken.LParen, "foreach")
	node.Expr = p.parseExpr()
	p.expect(phptoken.KwAs, "foreach")
	first := p.parseForeachTarget(&node.ByRef)
	if p.accept(phptoken.DoubleArrow) {
		node.Key = first
		node.Value = p.parseForeachTarget(&node.ByRef)
	} else {
		node.Value = first
	}
	p.expect(phptoken.RParen, "foreach")
	if p.accept(phptoken.Colon) {
		node.Body = p.parseStmtList(stopAtIdents("endforeach"))
		p.acceptIdent("endforeach")
		p.accept(phptoken.Semicolon)
		return node
	}
	node.Body = p.parseBody()
	return node
}

// parseForeachTarget parses a foreach key/value target, noting by-ref.
func (p *parser) parseForeachTarget(byRef *bool) phpast.Expr {
	if p.accept(phptoken.Amp) {
		*byRef = true
	}
	if p.at(phptoken.KwList) {
		return p.parseListExpr()
	}
	return p.parsePostfix(p.parsePrimary())
}

// parseSwitch parses switch statements in both syntaxes.
func (p *parser) parseSwitch() phpast.Stmt {
	line := p.next().Line
	node := &phpast.Switch{Position: phpast.NewPosition(line)}
	node.Cond = p.parseParenExpr("switch")

	alt := false
	if p.accept(phptoken.Colon) {
		alt = true
	} else {
		p.expect(phptoken.LBrace, "switch body")
	}
	stopBody := func(t phptoken.Token) bool {
		if t.Kind == phptoken.KwCase || t.Kind == phptoken.KwDefault {
			return true
		}
		if alt {
			return t.Kind == phptoken.Ident && strings.EqualFold(t.Text, "endswitch")
		}
		return t.Kind == phptoken.RBrace
	}
	for {
		t := p.cur()
		if t.Kind == phptoken.EOF {
			break
		}
		if alt && p.acceptIdent("endswitch") {
			p.accept(phptoken.Semicolon)
			return node
		}
		if !alt && p.accept(phptoken.RBrace) {
			return node
		}
		switch t.Kind {
		case phptoken.KwCase:
			p.next()
			cond := p.parseExpr()
			if !p.accept(phptoken.Colon) {
				p.accept(phptoken.Semicolon)
			}
			node.Cases = append(node.Cases, phpast.SwitchCase{
				Line: t.Line, Cond: cond, Body: p.parseStmtList(stopBody),
			})
		case phptoken.KwDefault:
			p.next()
			if !p.accept(phptoken.Colon) {
				p.accept(phptoken.Semicolon)
			}
			node.Cases = append(node.Cases, phpast.SwitchCase{
				Line: t.Line, Body: p.parseStmtList(stopBody),
			})
		default:
			p.errorf("line %d: unexpected %v in switch", t.Line, t.Kind)
			p.next()
		}
	}
	return node
}

// parseGlobal parses global $a, $b;
func (p *parser) parseGlobal() phpast.Stmt {
	line := p.next().Line
	node := &phpast.Global{Position: phpast.NewPosition(line)}
	for p.at(phptoken.Variable) {
		node.Names = append(node.Names, strings.TrimPrefix(p.next().Text, "$"))
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.endStmt()
	return node
}

// parseStaticVars parses static $a = 1, $b;
func (p *parser) parseStaticVars() phpast.Stmt {
	line := p.next().Line
	node := &phpast.StaticVars{Position: phpast.NewPosition(line)}
	for p.at(phptoken.Variable) {
		v := phpast.StaticVar{Name: strings.TrimPrefix(p.next().Text, "$")}
		if p.accept(phptoken.Assign) {
			v.Default = p.parseExpr()
		}
		node.Vars = append(node.Vars, v)
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.endStmt()
	return node
}

// parseUnset parses unset($a, $b);
func (p *parser) parseUnset() phpast.Stmt {
	line := p.next().Line
	node := &phpast.Unset{Position: phpast.NewPosition(line)}
	p.expect(phptoken.LParen, "unset")
	for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
		node.Vars = append(node.Vars, p.parseExpr())
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.RParen, "unset")
	p.endStmt()
	return node
}

// parseTry parses try/catch/finally.
func (p *parser) parseTry() phpast.Stmt {
	line := p.next().Line
	node := &phpast.Try{Position: phpast.NewPosition(line)}
	p.expect(phptoken.LBrace, "try")
	node.Body = p.parseStmtList(stopAt(phptoken.RBrace))
	p.expect(phptoken.RBrace, "try")
	for p.at(phptoken.KwCatch) {
		cLine := p.next().Line
		p.expect(phptoken.LParen, "catch")
		c := phpast.Catch{Line: cLine}
		if p.at(phptoken.Ident) {
			c.Class = p.next().Text
		}
		if p.at(phptoken.Variable) {
			c.Var = strings.TrimPrefix(p.next().Text, "$")
		}
		p.expect(phptoken.RParen, "catch")
		p.expect(phptoken.LBrace, "catch body")
		c.Body = p.parseStmtList(stopAt(phptoken.RBrace))
		p.expect(phptoken.RBrace, "catch body")
		node.Catches = append(node.Catches, c)
	}
	if p.at(phptoken.KwFinally) {
		p.next()
		p.expect(phptoken.LBrace, "finally")
		node.Finally = p.parseStmtList(stopAt(phptoken.RBrace))
		p.expect(phptoken.RBrace, "finally")
	}
	return node
}

// parseFuncDecl parses a named function declaration.
func (p *parser) parseFuncDecl() phpast.Stmt {
	line := p.next().Line // function
	node := &phpast.FuncDecl{Position: phpast.NewPosition(line)}
	if p.accept(phptoken.Amp) {
		node.ByRefReturn = true
	}
	if p.at(phptoken.Ident) {
		node.OrigName = p.next().Text
		node.Name = p.lower(node.OrigName)
	} else {
		p.errorf("line %d: expected function name", p.cur().Line)
	}
	node.Params = p.parseParams()
	if p.accept(phptoken.LBrace) {
		node.Body = p.parseStmtList(stopAt(phptoken.RBrace))
		p.expect(phptoken.RBrace, "function body")
	} else {
		p.errorf("line %d: expected function body", p.cur().Line)
	}
	return node
}

// parseParams parses a parenthesized parameter list.
func (p *parser) parseParams() []phpast.Param {
	var params []phpast.Param
	if !p.expect(phptoken.LParen, "parameter list") {
		return nil
	}
	for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
		var prm phpast.Param
		// Optional type hint: an identifier or "array" before the variable.
		if p.at(phptoken.Ident) {
			prm.TypeHint = p.next().Text
		} else if p.at(phptoken.KwArray) {
			prm.TypeHint = "array"
			p.next()
		}
		if p.accept(phptoken.Amp) {
			prm.ByRef = true
		}
		if p.at(phptoken.Variable) {
			prm.Name = strings.TrimPrefix(p.next().Text, "$")
		} else {
			p.errorf("line %d: expected parameter, found %v", p.cur().Line, p.cur().Kind)
			p.next()
			continue
		}
		if p.accept(phptoken.Assign) {
			prm.Default = p.parseExpr()
		}
		params = append(params, prm)
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.RParen, "parameter list")
	return params
}

// parseClassDecl parses class, interface and trait declarations.
func (p *parser) parseClassDecl() phpast.Stmt {
	node := &phpast.ClassDecl{Position: phpast.NewPosition(p.position())}
	for {
		switch p.cur().Kind {
		case phptoken.KwAbstract:
			node.Abstract = true
			p.next()
			continue
		case phptoken.KwFinal:
			p.next()
			continue
		}
		break
	}
	switch p.cur().Kind {
	case phptoken.KwInterface:
		node.IsInterface = true
		p.next()
	case phptoken.KwClass, phptoken.KwTrait:
		p.next()
	default:
		p.errorf("line %d: expected class keyword", p.cur().Line)
	}
	if p.at(phptoken.Ident) {
		node.OrigName = p.next().Text
		node.Name = p.lower(node.OrigName)
	}
	if p.accept(phptoken.KwExtends) {
		if p.at(phptoken.Ident) {
			node.Extends = p.lower(p.next().Text)
		}
	}
	if p.accept(phptoken.KwImplements) {
		for p.at(phptoken.Ident) {
			node.Implements = append(node.Implements, p.lower(p.next().Text))
			if !p.accept(phptoken.Comma) {
				break
			}
		}
	}
	p.expect(phptoken.LBrace, "class body")
	p.parseClassBody(node)
	p.expect(phptoken.RBrace, "class body")
	return node
}

// parseClassBody parses class members until the closing brace.
func (p *parser) parseClassBody(node *phpast.ClassDecl) {
	for !p.at(phptoken.RBrace) && !p.at(phptoken.EOF) {
		before := p.pos
		p.parseClassMember(node)
		if p.pos == before {
			bad := p.next()
			p.errorf("line %d: unexpected %v in class body", bad.Line, bad.Kind)
		}
	}
}

// parseClassMember parses one property, constant or method declaration.
func (p *parser) parseClassMember(node *phpast.ClassDecl) {
	vis := phpast.Public
	static := false
	abstract := false
	final := false
	for {
		switch p.cur().Kind {
		case phptoken.KwPublic, phptoken.KwVar:
			vis = phpast.Public
			p.next()
			continue
		case phptoken.KwProtected:
			vis = phpast.Protected
			p.next()
			continue
		case phptoken.KwPrivate:
			vis = phpast.Private
			p.next()
			continue
		case phptoken.KwStatic:
			static = true
			p.next()
			continue
		case phptoken.KwAbstract:
			abstract = true
			p.next()
			continue
		case phptoken.KwFinal:
			final = true
			p.next()
			continue
		}
		break
	}

	switch p.cur().Kind {
	case phptoken.KwConst:
		p.next()
		for p.at(phptoken.Ident) {
			c := phpast.ConstDecl{Line: p.cur().Line, Name: p.next().Text}
			if p.accept(phptoken.Assign) {
				c.Value = p.parseExpr()
			}
			node.Consts = append(node.Consts, c)
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.accept(phptoken.Semicolon)

	case phptoken.Variable:
		for p.at(phptoken.Variable) {
			prop := phpast.PropertyDecl{
				Line:       p.cur().Line,
				Name:       strings.TrimPrefix(p.next().Text, "$"),
				Visibility: vis,
				Static:     static,
			}
			if p.accept(phptoken.Assign) {
				prop.Default = p.parseExpr()
			}
			node.Props = append(node.Props, prop)
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.accept(phptoken.Semicolon)

	case phptoken.KwFunction:
		line := p.next().Line
		p.accept(phptoken.Amp)
		m := phpast.MethodDecl{
			Line:       line,
			Visibility: vis,
			Static:     static,
			Abstract:   abstract,
			Final:      final,
		}
		if name, ok := p.memberName(); ok {
			m.OrigName = name
			m.Name = p.lower(name)
		} else {
			p.errorf("line %d: expected method name", p.cur().Line)
		}
		m.Params = p.parseParams()
		if p.accept(phptoken.LBrace) {
			m.Body = p.parseStmtList(stopAt(phptoken.RBrace))
			p.expect(phptoken.RBrace, "method body")
		} else {
			p.accept(phptoken.Semicolon) // abstract or interface method
		}
		node.Methods = append(node.Methods, m)
	}
}

// memberName consumes a method/property name, allowing keywords to be used
// as names as PHP does for class members.
func (p *parser) memberName() (string, bool) {
	t := p.cur()
	if t.Kind == phptoken.Ident || t.IsKeyword() {
		p.next()
		return t.Text, true
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// parseExprListUntil parses a comma-separated expression list until the
// stop predicate matches.
func (p *parser) parseExprListUntil(stop func(phptoken.Token) bool) []phpast.Expr {
	var list []phpast.Expr
	for {
		t := p.cur()
		if t.Kind == phptoken.EOF || stop(t) {
			return list
		}
		before := p.pos
		list = append(list, p.parseExpr())
		if p.pos == before {
			p.next() // force progress
		}
		if !p.accept(phptoken.Comma) {
			return list
		}
	}
}

// parseExpr parses a full expression including the low-precedence word
// operators (or, xor, and).
func (p *parser) parseExpr() phpast.Expr {
	if !p.enterNesting() {
		return p.badExprOverDepth()
	}
	x := p.parseWordOr()
	p.leaveNesting()
	return x
}

func (p *parser) parseWordOr() phpast.Expr {
	left := p.parseWordXor()
	for p.at(phptoken.KwLogicalOr) {
		line := p.next().Line
		right := p.parseWordXor()
		left = &phpast.Binary{Op: "or", L: left, R: right, Position: phpast.NewPosition(line)}
	}
	return left
}

func (p *parser) parseWordXor() phpast.Expr {
	left := p.parseWordAnd()
	for p.at(phptoken.KwLogicalXor) {
		line := p.next().Line
		right := p.parseWordAnd()
		left = &phpast.Binary{Op: "xor", L: left, R: right, Position: phpast.NewPosition(line)}
	}
	return left
}

func (p *parser) parseWordAnd() phpast.Expr {
	left := p.parseAssign()
	for p.at(phptoken.KwLogicalAnd) {
		line := p.next().Line
		right := p.parseAssign()
		left = &phpast.Binary{Op: "and", L: left, R: right, Position: phpast.NewPosition(line)}
	}
	return left
}

// assignOps maps assignment token kinds to their operator spellings.
var assignOps = map[phptoken.Kind]string{
	phptoken.Assign:        "=",
	phptoken.PlusAssign:    "+=",
	phptoken.MinusAssign:   "-=",
	phptoken.StarAssign:    "*=",
	phptoken.SlashAssign:   "/=",
	phptoken.DotAssign:     ".=",
	phptoken.PercentAssign: "%=",
	phptoken.AmpAssign:     "&=",
	phptoken.PipeAssign:    "|=",
	phptoken.CaretAssign:   "^=",
	phptoken.ShlAssign:     "<<=",
	phptoken.ShrAssign:     ">>=",
}

// parseAssign parses right-associative assignment expressions.
func (p *parser) parseAssign() phpast.Expr {
	left := p.parseTernary()
	op, ok := assignOps[p.cur().Kind]
	if !ok {
		return left
	}
	line := p.next().Line
	node := &phpast.Assign{LHS: left, Op: op, Position: phpast.NewPosition(line)}
	if op == "=" && p.accept(phptoken.Amp) {
		node.ByRef = true
	}
	node.RHS = p.parseAssign()
	return node
}

// parseTernary parses cond ? then : else and the short ?: form.
func (p *parser) parseTernary() phpast.Expr {
	cond := p.parseBinary(0)
	if !p.at(phptoken.Question) {
		return cond
	}
	line := p.next().Line
	node := &phpast.Ternary{Cond: cond, Position: phpast.NewPosition(line)}
	if !p.at(phptoken.Colon) {
		node.Then = p.parseExpr()
	}
	p.expect(phptoken.Colon, "ternary")
	node.Else = p.parseTernary()
	return node
}

// binaryLevels lists binary operators from loosest to tightest binding.
var binaryLevels = [][]struct {
	kind phptoken.Kind
	op   string
}{
	{{phptoken.BoolOr, "||"}},
	{{phptoken.BoolAnd, "&&"}},
	{{phptoken.Pipe, "|"}},
	{{phptoken.Caret, "^"}},
	{{phptoken.Amp, "&"}},
	{
		{phptoken.IsEqual, "=="}, {phptoken.IsNotEqual, "!="},
		{phptoken.IsIdentical, "==="}, {phptoken.IsNotIdentical, "!=="},
	},
	{
		{phptoken.Lt, "<"}, {phptoken.Le, "<="},
		{phptoken.Gt, ">"}, {phptoken.Ge, ">="},
	},
	{{phptoken.Shl, "<<"}, {phptoken.Shr, ">>"}},
	{{phptoken.Plus, "+"}, {phptoken.Minus, "-"}, {phptoken.Dot, "."}},
	{{phptoken.Star, "*"}, {phptoken.Slash, "/"}, {phptoken.Percent, "%"}},
}

// parseBinary parses binary operators at the given precedence level and
// tighter.
func (p *parser) parseBinary(level int) phpast.Expr {
	if level >= len(binaryLevels) {
		return p.parseUnary()
	}
	left := p.parseBinary(level + 1)
	for {
		matched := false
		for _, cand := range binaryLevels[level] {
			if p.at(cand.kind) {
				line := p.next().Line
				right := p.parseBinary(level + 1)
				left = &phpast.Binary{
					Op: cand.op, L: left, R: right,
					Position: phpast.NewPosition(line),
				}
				matched = true
				break
			}
		}
		if !matched {
			return left
		}
	}
}

// castNames maps cast token kinds to canonical type names.
var castNames = map[phptoken.Kind]string{
	phptoken.IntCast:    "int",
	phptoken.FloatCast:  "float",
	phptoken.StringCast: "string",
	phptoken.ArrayCast:  "array",
	phptoken.ObjectCast: "object",
	phptoken.BoolCast:   "bool",
	phptoken.UnsetCast:  "unset",
}

// parseUnary parses prefix operators, casts and the expression keywords.
func (p *parser) parseUnary() phpast.Expr {
	if !p.enterNesting() {
		return p.badExprOverDepth()
	}
	x := p.parseUnaryTail()
	p.leaveNesting()
	return x
}

// parseUnaryTail is parseUnary without the depth guard; the prefix
// operators self-recurse through the guarded parseUnary.
func (p *parser) parseUnaryTail() phpast.Expr {
	t := p.cur()
	switch t.Kind {
	case phptoken.Bang:
		p.next()
		return &phpast.Unary{Op: "!", X: p.parseUnary(), Position: phpast.NewPosition(t.Line)}
	case phptoken.Minus:
		p.next()
		return &phpast.Unary{Op: "-", X: p.parseUnary(), Position: phpast.NewPosition(t.Line)}
	case phptoken.Plus:
		p.next()
		return &phpast.Unary{Op: "+", X: p.parseUnary(), Position: phpast.NewPosition(t.Line)}
	case phptoken.Tilde:
		p.next()
		return &phpast.Unary{Op: "~", X: p.parseUnary(), Position: phpast.NewPosition(t.Line)}
	case phptoken.At:
		p.next()
		return &phpast.Unary{Op: "@", X: p.parseUnary(), Position: phpast.NewPosition(t.Line)}
	case phptoken.Inc:
		p.next()
		return &phpast.IncDec{Op: "++", X: p.parseUnary(), Prefix: true, Position: phpast.NewPosition(t.Line)}
	case phptoken.Dec:
		p.next()
		return &phpast.IncDec{Op: "--", X: p.parseUnary(), Prefix: true, Position: phpast.NewPosition(t.Line)}
	case phptoken.KwPrint:
		p.next()
		return &phpast.PrintExpr{X: p.parseExpr(), Position: phpast.NewPosition(t.Line)}
	case phptoken.KwClone:
		p.next()
		return &phpast.CloneExpr{X: p.parseUnary(), Position: phpast.NewPosition(t.Line)}
	case phptoken.KwNew:
		return p.parseNew()
	case phptoken.KwInclude, phptoken.KwIncludeOnce, phptoken.KwRequire, phptoken.KwRequireOnce:
		kindMap := map[phptoken.Kind]phpast.IncludeKind{
			phptoken.KwInclude:     phpast.IncInclude,
			phptoken.KwIncludeOnce: phpast.IncIncludeOnce,
			phptoken.KwRequire:     phpast.IncRequire,
			phptoken.KwRequireOnce: phpast.IncRequireOnce,
		}
		kind := kindMap[t.Kind]
		p.next()
		return &phpast.IncludeExpr{Kind: kind, Path: p.parseExpr(), Position: phpast.NewPosition(t.Line)}
	case phptoken.KwExit:
		p.next()
		node := &phpast.ExitExpr{Position: phpast.NewPosition(t.Line)}
		if p.accept(phptoken.LParen) {
			if !p.at(phptoken.RParen) {
				node.X = p.parseExpr()
			}
			p.expect(phptoken.RParen, "exit")
		}
		return node
	}
	if name, ok := castNames[t.Kind]; ok {
		p.next()
		return &phpast.Cast{Type: name, X: p.parseUnary(), Position: phpast.NewPosition(t.Line)}
	}
	x := p.parsePostfix(p.parsePrimary())
	if p.at(phptoken.KwInstanceof) {
		line := p.next().Line
		cls := ""
		if p.at(phptoken.Ident) {
			cls = p.next().Text
		} else if p.at(phptoken.Variable) {
			p.next()
		}
		return &phpast.InstanceOf{X: x, Class: cls, Position: phpast.NewPosition(line)}
	}
	return x
}

// parseNew parses new ClassName(args) and new $var(args).
func (p *parser) parseNew() phpast.Expr {
	line := p.next().Line // new
	node := &phpast.New{Position: phpast.NewPosition(line)}
	switch {
	case p.at(phptoken.Ident):
		node.Class = p.lower(p.next().Text)
	case p.at(phptoken.KwStatic):
		node.Class = "static"
		p.next()
	case p.at(phptoken.Variable):
		node.ClassExpr = p.parsePostfix(p.parsePrimary())
	default:
		p.errorf("line %d: expected class name after new", p.cur().Line)
	}
	if p.at(phptoken.LParen) {
		node.Args = p.parseArgs()
	}
	return node
}

// parseArgs parses a parenthesized call argument list.
func (p *parser) parseArgs() []phpast.Arg {
	var args []phpast.Arg
	p.expect(phptoken.LParen, "argument list")
	for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
		var a phpast.Arg
		if p.accept(phptoken.Amp) {
			a.ByRef = true
		}
		before := p.pos
		a.Value = p.parseExpr()
		if p.pos == before {
			p.next() // force progress on malformed input
			continue
		}
		args = append(args, a)
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.RParen, "argument list")
	return args
}

// parsePostfix parses member access, indexing, calls and postfix inc/dec
// chained onto a primary expression.
func (p *parser) parsePostfix(x phpast.Expr) phpast.Expr {
	for {
		t := p.cur()
		switch t.Kind {
		case phptoken.Arrow:
			p.next()
			x = p.parseMemberAccess(x, t.Line)
		case phptoken.LBracket:
			p.next()
			node := &phpast.IndexFetch{Base: x, Position: phpast.NewPosition(t.Line)}
			if !p.at(phptoken.RBracket) {
				node.Index = p.parseExpr()
			}
			p.expect(phptoken.RBracket, "index")
			x = node
		case phptoken.LBrace:
			// String offset access $s{0} (deprecated form). Only treat "{"
			// as an offset when directly after a variable-like expression.
			if !isVarLike(x) {
				return x
			}
			p.next()
			node := &phpast.IndexFetch{Base: x, Position: phpast.NewPosition(t.Line)}
			if !p.at(phptoken.RBrace) {
				node.Index = p.parseExpr()
			}
			p.expect(phptoken.RBrace, "string offset")
			x = node
		case phptoken.LParen:
			// Dynamic call through a variable-like expression.
			if !isVarLike(x) {
				return x
			}
			x = &phpast.FuncCall{
				NameExpr: x, Args: p.parseArgs(),
				Position: phpast.NewPosition(t.Line),
			}
		case phptoken.Inc:
			p.next()
			x = &phpast.IncDec{Op: "++", X: x, Position: phpast.NewPosition(t.Line)}
		case phptoken.Dec:
			p.next()
			x = &phpast.IncDec{Op: "--", X: x, Position: phpast.NewPosition(t.Line)}
		default:
			return x
		}
	}
}

// isVarLike reports whether x can be called or brace-indexed.
func isVarLike(x phpast.Expr) bool {
	switch x.(type) {
	case *phpast.Var, *phpast.PropertyFetch, *phpast.IndexFetch,
		*phpast.StaticPropertyFetch, *phpast.VarVar:
		return true
	default:
		return false
	}
}

// parseMemberAccess parses ->name, ->$var, ->{expr} and method calls.
func (p *parser) parseMemberAccess(obj phpast.Expr, line int) phpast.Expr {
	var name string
	var nameExpr phpast.Expr
	switch {
	case p.at(phptoken.Ident) || p.cur().IsKeyword():
		name = p.next().Text
	case p.at(phptoken.Variable):
		nameExpr = p.parsePrimary()
	case p.accept(phptoken.LBrace):
		nameExpr = p.parseExpr()
		p.expect(phptoken.RBrace, "dynamic member name")
	default:
		p.errorf("line %d: expected member name after ->", p.cur().Line)
		return &phpast.BadExpr{Reason: "missing member name", Position: phpast.NewPosition(line)}
	}
	if p.at(phptoken.LParen) {
		return &phpast.MethodCall{
			Object: obj, Name: p.lower(name), NameExpr: nameExpr,
			Args: p.parseArgs(), Position: phpast.NewPosition(line),
		}
	}
	return &phpast.PropertyFetch{
		Object: obj, Name: name, NameExpr: nameExpr,
		Position: phpast.NewPosition(line),
	}
}

// parsePrimary parses atoms: literals, variables, identifiers and the
// bracketed constructs.
func (p *parser) parsePrimary() phpast.Expr {
	t := p.cur()
	switch t.Kind {
	case phptoken.Variable:
		p.next()
		return &phpast.Var{Name: strings.TrimPrefix(t.Text, "$"), Position: phpast.NewPosition(t.Line)}

	case phptoken.Dollar:
		p.next()
		if p.accept(phptoken.LBrace) {
			inner := p.parseExpr()
			p.expect(phptoken.RBrace, "variable variable")
			return &phpast.VarVar{Expr: inner, Position: phpast.NewPosition(t.Line)}
		}
		return &phpast.VarVar{Expr: p.parsePrimary(), Position: phpast.NewPosition(t.Line)}

	case phptoken.IntLit:
		p.next()
		return p.lit(t.Line, phpast.LitInt, t.Text)
	case phptoken.FloatLit:
		p.next()
		return p.lit(t.Line, phpast.LitFloat, t.Text)
	case phptoken.StringLit:
		p.next()
		return p.lit(t.Line, phpast.LitString, decodeStringLit(t.Text))

	case phptoken.Quote:
		p.next()
		return p.parseInterp(t.Line, phptoken.Quote, false)
	case phptoken.Backtick:
		p.next()
		return p.parseInterp(t.Line, phptoken.Backtick, true)
	case phptoken.StartHeredoc:
		p.next()
		return p.parseInterp(t.Line, phptoken.EndHeredoc, false)

	case phptoken.LParen:
		p.next()
		x := p.parseExpr()
		p.expect(phptoken.RParen, "parenthesized expression")
		return x

	case phptoken.KwArray:
		p.next()
		if p.at(phptoken.LParen) {
			return p.parseArrayLit(t.Line, phptoken.LParen, phptoken.RParen)
		}
		return &phpast.ConstFetch{Name: "array", Position: phpast.NewPosition(t.Line)}
	case phptoken.LBracket:
		return p.parseArrayLit(t.Line, phptoken.LBracket, phptoken.RBracket)

	case phptoken.KwList:
		return p.parseListExpr()

	case phptoken.KwIsset:
		p.next()
		node := &phpast.IssetExpr{Position: phpast.NewPosition(t.Line)}
		p.expect(phptoken.LParen, "isset")
		for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
			node.Vars = append(node.Vars, p.parseExpr())
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.expect(phptoken.RParen, "isset")
		return node

	case phptoken.KwEmpty:
		p.next()
		p.expect(phptoken.LParen, "empty")
		x := p.parseExpr()
		p.expect(phptoken.RParen, "empty")
		return &phpast.EmptyExpr{X: x, Position: phpast.NewPosition(t.Line)}

	case phptoken.KwFunction:
		return p.parseClosure()

	case phptoken.KwStatic:
		// static::method() late static binding.
		if p.peek(1).Kind == phptoken.DoubleColon {
			p.next()
			return p.parseStaticMember("static", t.Line)
		}
		p.next()
		if p.at(phptoken.KwFunction) {
			return p.parseClosure()
		}
		return &phpast.BadExpr{Reason: "unexpected static", Position: phpast.NewPosition(t.Line)}

	case phptoken.Ident:
		p.next()
		if p.at(phptoken.DoubleColon) {
			return p.parseStaticMember(t.Text, t.Line)
		}
		if p.at(phptoken.LParen) {
			return &phpast.FuncCall{
				Name: p.lower(t.Text), Args: p.parseArgs(),
				Position: phpast.NewPosition(t.Line),
			}
		}
		return &phpast.ConstFetch{Name: t.Text, Position: phpast.NewPosition(t.Line)}

	case phptoken.Amp:
		// Stray by-ref marker in expression context: parse the operand.
		p.next()
		return p.parseUnary()

	default:
		p.errorf("line %d: unexpected token %v in expression", t.Line, t.Kind)
		return &phpast.BadExpr{
			Reason:   "unexpected " + t.Kind.String(),
			Position: phpast.NewPosition(t.Line),
		}
	}
}

// parseStaticMember parses the continuation after "Class::".
func (p *parser) parseStaticMember(class string, line int) phpast.Expr {
	p.expect(phptoken.DoubleColon, "static member")
	class = p.lower(class)
	switch {
	case p.at(phptoken.Variable):
		name := strings.TrimPrefix(p.next().Text, "$")
		return &phpast.StaticPropertyFetch{
			Class: class, Name: name, Position: phpast.NewPosition(line),
		}
	case p.at(phptoken.Ident) || p.cur().IsKeyword():
		name := p.next().Text
		if p.at(phptoken.LParen) {
			return &phpast.StaticCall{
				Class: class, Name: p.lower(name), Args: p.parseArgs(),
				Position: phpast.NewPosition(line),
			}
		}
		return &phpast.ClassConstFetch{
			Class: class, Name: name, Position: phpast.NewPosition(line),
		}
	default:
		p.errorf("line %d: expected member after ::", p.cur().Line)
		return &phpast.BadExpr{Reason: "bad static member", Position: phpast.NewPosition(line)}
	}
}

// parseClosure parses function (params) use (vars) { body }.
func (p *parser) parseClosure() phpast.Expr {
	line := p.next().Line // function
	p.accept(phptoken.Amp)
	node := &phpast.Closure{Position: phpast.NewPosition(line)}
	node.Params = p.parseParams()
	if p.accept(phptoken.KwUse) {
		p.expect(phptoken.LParen, "closure use")
		for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
			var u phpast.ClosureUse
			if p.accept(phptoken.Amp) {
				u.ByRef = true
			}
			if p.at(phptoken.Variable) {
				u.Name = strings.TrimPrefix(p.next().Text, "$")
				node.Uses = append(node.Uses, u)
			} else {
				p.next()
			}
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.expect(phptoken.RParen, "closure use")
	}
	if p.accept(phptoken.LBrace) {
		node.Body = p.parseStmtList(stopAt(phptoken.RBrace))
		p.expect(phptoken.RBrace, "closure body")
	}
	return node
}

// parseListExpr parses list($a, , $b).
func (p *parser) parseListExpr() phpast.Expr {
	line := p.next().Line // list
	node := &phpast.ListExpr{Position: phpast.NewPosition(line)}
	p.expect(phptoken.LParen, "list")
	for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
		if p.at(phptoken.Comma) {
			node.Targets = append(node.Targets, nil)
			p.next()
			continue
		}
		node.Targets = append(node.Targets, p.parseExpr())
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.RParen, "list")
	return node
}

// parseArrayLit parses array(...) or [...] literals.
func (p *parser) parseArrayLit(line int, open, close phptoken.Kind) phpast.Expr {
	node := &phpast.ArrayLit{Position: phpast.NewPosition(line)}
	p.expect(open, "array literal")
	for !p.at(close) && !p.at(phptoken.EOF) {
		var item phpast.ArrayItem
		before := p.pos
		first := p.parseExpr()
		if p.accept(phptoken.DoubleArrow) {
			item.Key = first
			if p.accept(phptoken.Amp) {
				item.ByRef = true
			}
			item.Value = p.parseExpr()
		} else {
			item.Value = first
		}
		if p.pos == before {
			p.next()
			continue
		}
		node.Items = append(node.Items, item)
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(close, "array literal")
	return node
}

// parseInterp parses an interpolated string body up to the closing
// delimiter token kind.
func (p *parser) parseInterp(line int, closing phptoken.Kind, shell bool) phpast.Expr {
	node := &phpast.InterpString{IsShell: shell, Position: phpast.NewPosition(line)}
	for {
		t := p.cur()
		if t.Kind == phptoken.EOF {
			return node
		}
		if t.Kind == closing {
			p.next()
			return node
		}
		switch t.Kind {
		case phptoken.EncapsedText:
			p.next()
			node.Parts = append(node.Parts, p.lit(t.Line, phpast.LitString, decodeDouble(t.Text)))
		case phptoken.Variable:
			p.next()
			part := phpast.Expr(&phpast.Var{
				Name:     strings.TrimPrefix(t.Text, "$"),
				Position: phpast.NewPosition(t.Line),
			})
			part = p.parseInterpAccess(part)
			node.Parts = append(node.Parts, part)
		case phptoken.CurlyOpen:
			p.next()
			node.Parts = append(node.Parts, p.parseExpr())
			p.expect(phptoken.RBrace, "string interpolation")
		case phptoken.DollarCurlyOpen:
			p.next()
			if p.at(phptoken.Ident) {
				name := p.next().Text
				node.Parts = append(node.Parts, &phpast.Var{
					Name: name, Position: phpast.NewPosition(t.Line),
				})
			} else {
				node.Parts = append(node.Parts, &phpast.VarVar{
					Expr: p.parseExpr(), Position: phpast.NewPosition(t.Line),
				})
			}
			p.expect(phptoken.RBrace, "string interpolation")
		default:
			// Unexpected token inside a string: consume to stay live.
			p.next()
		}
	}
}

// parseInterpAccess parses the simple-syntax continuations of an
// interpolated variable: ->prop and [index].
func (p *parser) parseInterpAccess(base phpast.Expr) phpast.Expr {
	for {
		t := p.cur()
		switch t.Kind {
		case phptoken.Arrow:
			if p.peek(1).Kind != phptoken.Ident {
				return base
			}
			p.next()
			name := p.next().Text
			base = &phpast.PropertyFetch{
				Object: base, Name: name, Position: phpast.NewPosition(t.Line),
			}
		case phptoken.LBracket:
			p.next()
			var idx phpast.Expr
			switch p.cur().Kind {
			case phptoken.Ident:
				// Bare word index inside a string is a string key.
				it := p.next()
				idx = p.lit(it.Line, phpast.LitString, it.Text)
			case phptoken.IntLit:
				it := p.next()
				idx = p.lit(it.Line, phpast.LitInt, it.Text)
			case phptoken.Variable:
				it := p.next()
				idx = &phpast.Var{
					Name:     strings.TrimPrefix(it.Text, "$"),
					Position: phpast.NewPosition(it.Line),
				}
			}
			p.expect(phptoken.RBracket, "string array index")
			base = &phpast.IndexFetch{
				Base: base, Index: idx, Position: phpast.NewPosition(t.Line),
			}
		default:
			return base
		}
	}
}

// lit builds a literal node.
func (p *parser) lit(line int, kind phpast.LiteralKind, value string) *phpast.Literal {
	return &phpast.Literal{Kind: kind, Value: value, Position: phpast.NewPosition(line)}
}
