package phpparse

import (
	"testing"

	"repro/internal/phpast"
)

// FuzzParse exercises the parser's robustness contract on arbitrary
// input: it must terminate, never panic, and produce statements whose
// line numbers stay within the file.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<?php echo $_GET['x'];",
		"<?php if ($a): ?>x<?php elseif ($b): ?>y<?php else: ?>z<?php endif;",
		"<?php class A extends B implements C { const X = 1; public $p; function m(&$a, $b = 2) {} }",
		"<?php foreach ($x as $k => &$v) { list($a, $b) = $v; }",
		"<?php switch ($x) { case 1: default: }",
		"<?php function f() { global $g; static $s = 0; return function () use (&$s) { return $s; }; }",
		"<?php try { } catch (E $e) { } finally { }",
		"<?php $a = <<<EOT\n$x->y z\nEOT;",
		"<?php {{{",
		"<?php $a ->",
		"<?php class",
		"<?php \x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file := Parse("fuzz.php", src)
		if file == nil {
			t.Fatal("Parse returned nil")
		}
		phpast.InspectStmts(file.Stmts, func(n phpast.Node) bool {
			if n.Pos() < 0 || n.Pos() > file.Lines+1 {
				t.Fatalf("node line %d outside file of %d lines", n.Pos(), file.Lines)
			}
			return true
		})
	})
}
