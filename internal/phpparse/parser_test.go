package phpparse

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/phpast"
)

// mustParse parses src and fails the test on recorded errors.
func mustParse(t *testing.T, src string) *phpast.File {
	t.Helper()
	f := Parse("test.php", src)
	if len(f.Errors) > 0 {
		t.Fatalf("parse errors: %v", f.Errors)
	}
	return f
}

// firstStmt returns the first statement of the parsed file.
func firstStmt(t *testing.T, src string) phpast.Stmt {
	t.Helper()
	f := mustParse(t, src)
	if len(f.Stmts) == 0 {
		t.Fatalf("no statements parsed from %q", src)
	}
	return f.Stmts[0]
}

func TestParseAssignment(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $x = $_GET['id'];`)
	es, ok := s.(*phpast.ExprStmt)
	if !ok {
		t.Fatalf("stmt = %T, want *ExprStmt", s)
	}
	as, ok := es.X.(*phpast.Assign)
	if !ok {
		t.Fatalf("expr = %T, want *Assign", es.X)
	}
	lhs, ok := as.LHS.(*phpast.Var)
	if !ok || lhs.Name != "x" {
		t.Fatalf("LHS = %#v, want Var x", as.LHS)
	}
	idx, ok := as.RHS.(*phpast.IndexFetch)
	if !ok {
		t.Fatalf("RHS = %T, want *IndexFetch", as.RHS)
	}
	base, ok := idx.Base.(*phpast.Var)
	if !ok || base.Name != "_GET" {
		t.Fatalf("base = %#v, want Var _GET", idx.Base)
	}
	key, ok := idx.Index.(*phpast.Literal)
	if !ok || key.Value != "id" {
		t.Fatalf("index = %#v, want literal id", idx.Index)
	}
}

func TestParseEchoMultipleArgs(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php echo $a, 'x', $b;`)
	e, ok := s.(*phpast.Echo)
	if !ok {
		t.Fatalf("stmt = %T, want *Echo", s)
	}
	if len(e.Args) != 3 {
		t.Fatalf("len(Args) = %d, want 3", len(e.Args))
	}
}

func TestParseMethodCallChain(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $wpdb->get_results($q);`)
	mc, ok := s.(*phpast.ExprStmt).X.(*phpast.MethodCall)
	if !ok {
		t.Fatalf("expr type = %T, want *MethodCall", s.(*phpast.ExprStmt).X)
	}
	if mc.Name != "get_results" {
		t.Fatalf("Name = %q, want get_results", mc.Name)
	}
	obj, ok := mc.Object.(*phpast.Var)
	if !ok || obj.Name != "wpdb" {
		t.Fatalf("Object = %#v, want Var wpdb", mc.Object)
	}
	if len(mc.Args) != 1 {
		t.Fatalf("len(Args) = %d, want 1", len(mc.Args))
	}
}

func TestParsePropertyFetchChain(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php echo $row->user->name;`)
	outer, ok := s.(*phpast.Echo).Args[0].(*phpast.PropertyFetch)
	if !ok {
		t.Fatalf("arg = %T, want *PropertyFetch", s.(*phpast.Echo).Args[0])
	}
	if outer.Name != "name" {
		t.Fatalf("outer.Name = %q, want name", outer.Name)
	}
	inner, ok := outer.Object.(*phpast.PropertyFetch)
	if !ok || inner.Name != "user" {
		t.Fatalf("inner = %#v, want PropertyFetch user", outer.Object)
	}
}

func TestParseStaticConstructs(t *testing.T) {
	t.Parallel()
	f := mustParse(t, `<?php Foo::bar(1); Foo::$prop; Foo::BAZ;`)
	if len(f.Stmts) != 3 {
		t.Fatalf("len(Stmts) = %d, want 3", len(f.Stmts))
	}
	if _, ok := f.Stmts[0].(*phpast.ExprStmt).X.(*phpast.StaticCall); !ok {
		t.Errorf("stmt 0 = %T, want StaticCall", f.Stmts[0].(*phpast.ExprStmt).X)
	}
	if _, ok := f.Stmts[1].(*phpast.ExprStmt).X.(*phpast.StaticPropertyFetch); !ok {
		t.Errorf("stmt 1 = %T, want StaticPropertyFetch", f.Stmts[1].(*phpast.ExprStmt).X)
	}
	if _, ok := f.Stmts[2].(*phpast.ExprStmt).X.(*phpast.ClassConstFetch); !ok {
		t.Errorf("stmt 2 = %T, want ClassConstFetch", f.Stmts[2].(*phpast.ExprStmt).X)
	}
}

func TestParseFunctionDecl(t *testing.T) {
	t.Parallel()
	src := `<?php
function render_widget(&$out, $id = 7, array $opts = array()) {
	return $id;
}`
	fd, ok := firstStmt(t, src).(*phpast.FuncDecl)
	if !ok {
		t.Fatalf("stmt = %T, want *FuncDecl", firstStmt(t, src))
	}
	if fd.Name != "render_widget" {
		t.Fatalf("Name = %q", fd.Name)
	}
	if len(fd.Params) != 3 {
		t.Fatalf("len(Params) = %d, want 3", len(fd.Params))
	}
	if !fd.Params[0].ByRef {
		t.Error("param 0 should be by-ref")
	}
	if fd.Params[1].Default == nil {
		t.Error("param 1 should have a default")
	}
	if fd.Params[2].TypeHint != "array" {
		t.Errorf("param 2 hint = %q, want array", fd.Params[2].TypeHint)
	}
	if len(fd.Body) != 1 {
		t.Fatalf("len(Body) = %d, want 1", len(fd.Body))
	}
}

func TestParseClassDecl(t *testing.T) {
	t.Parallel()
	src := `<?php
class Subscriber_List extends WP_Widget implements Renderable {
	const VERSION = '2.1';
	public $name = 'default';
	private static $instances = 0;
	public function __construct($n) { $this->name = $n; }
	protected function render() { echo $this->name; }
	public static function boot() { return new self(); }
}`
	cd, ok := firstStmt(t, src).(*phpast.ClassDecl)
	if !ok {
		t.Fatalf("stmt = %T, want *ClassDecl", firstStmt(t, src))
	}
	if cd.Name != "subscriber_list" || cd.OrigName != "Subscriber_List" {
		t.Fatalf("Name = %q / %q", cd.Name, cd.OrigName)
	}
	if cd.Extends != "wp_widget" {
		t.Fatalf("Extends = %q, want wp_widget", cd.Extends)
	}
	if len(cd.Implements) != 1 || cd.Implements[0] != "renderable" {
		t.Fatalf("Implements = %v", cd.Implements)
	}
	if len(cd.Consts) != 1 || cd.Consts[0].Name != "VERSION" {
		t.Fatalf("Consts = %v", cd.Consts)
	}
	if len(cd.Props) != 2 {
		t.Fatalf("len(Props) = %d, want 2", len(cd.Props))
	}
	if cd.Props[1].Visibility != phpast.Private || !cd.Props[1].Static {
		t.Errorf("prop 1 = %+v, want private static", cd.Props[1])
	}
	if len(cd.Methods) != 3 {
		t.Fatalf("len(Methods) = %d, want 3", len(cd.Methods))
	}
	if cd.Methods[1].Visibility != phpast.Protected {
		t.Errorf("method 1 visibility = %v, want protected", cd.Methods[1].Visibility)
	}
	if !cd.Methods[2].Static {
		t.Error("method 2 should be static")
	}
}

func TestParseControlFlow(t *testing.T) {
	t.Parallel()
	src := `<?php
if ($a > 1) { echo 1; } elseif ($a < 0) { echo 2; } else { echo 3; }
while ($x) { $x--; }
do { $y++; } while ($y < 10);
for ($i = 0; $i < 5; $i++) { echo $i; }
foreach ($rows as $k => $v) { echo $v; }
switch ($mode) { case 'a': echo 'A'; break; default: echo 'D'; }`
	f := mustParse(t, src)
	wantTypes := []string{"*phpast.If", "*phpast.While", "*phpast.DoWhile",
		"*phpast.For", "*phpast.Foreach", "*phpast.Switch"}
	if len(f.Stmts) != len(wantTypes) {
		t.Fatalf("len(Stmts) = %d, want %d", len(f.Stmts), len(wantTypes))
	}
	for i, s := range f.Stmts {
		if got := typeName(s); got != wantTypes[i] {
			t.Errorf("stmt %d = %s, want %s", i, got, wantTypes[i])
		}
	}
	ifStmt := f.Stmts[0].(*phpast.If)
	if len(ifStmt.Elseifs) != 1 || len(ifStmt.Else) != 1 {
		t.Errorf("if: elseifs=%d else=%d, want 1/1", len(ifStmt.Elseifs), len(ifStmt.Else))
	}
	fe := f.Stmts[4].(*phpast.Foreach)
	if fe.Key == nil || fe.Value == nil {
		t.Error("foreach should have key and value")
	}
	sw := f.Stmts[5].(*phpast.Switch)
	if len(sw.Cases) != 2 {
		t.Errorf("switch cases = %d, want 2", len(sw.Cases))
	}
	if sw.Cases[1].Cond != nil {
		t.Error("default case should have nil Cond")
	}
}

func typeName(v any) string { return strings.TrimSpace(typeString(v)) }

func typeString(v any) string { return fmt.Sprintf("%T", v) }

func TestParseAlternativeSyntax(t *testing.T) {
	t.Parallel()
	src := `<?php if ($a): ?><p>yes</p><?php else: ?><p>no</p><?php endif; ?>`
	f := mustParse(t, src)
	if len(f.Stmts) != 1 {
		t.Fatalf("len(Stmts) = %d, want 1: %#v", len(f.Stmts), f.Stmts)
	}
	ifStmt, ok := f.Stmts[0].(*phpast.If)
	if !ok {
		t.Fatalf("stmt = %T, want *If", f.Stmts[0])
	}
	if len(ifStmt.Then) == 0 || len(ifStmt.Else) == 0 {
		t.Fatalf("then=%d else=%d, want nonzero", len(ifStmt.Then), len(ifStmt.Else))
	}
	h, ok := ifStmt.Then[0].(*phpast.Echo)
	if !ok || !h.FromHTML {
		t.Errorf("then[0] = %#v, want HTML echo", ifStmt.Then[0])
	}
}

func TestParseAlternativeForeach(t *testing.T) {
	t.Parallel()
	src := `<?php foreach ($list as $item): echo $item; endforeach;`
	fe, ok := firstStmt(t, src).(*phpast.Foreach)
	if !ok {
		t.Fatalf("stmt = %T, want *Foreach", firstStmt(t, src))
	}
	if len(fe.Body) != 1 {
		t.Fatalf("len(Body) = %d, want 1", len(fe.Body))
	}
}

func TestParseInterpolatedString(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $q = "SELECT * FROM {$wpdb->prefix}posts WHERE id=$id";`)
	as := s.(*phpast.ExprStmt).X.(*phpast.Assign)
	is, ok := as.RHS.(*phpast.InterpString)
	if !ok {
		t.Fatalf("RHS = %T, want *InterpString", as.RHS)
	}
	// Parts: "SELECT * FROM ", $wpdb->prefix, "posts WHERE id=", $id.
	if len(is.Parts) != 4 {
		t.Fatalf("len(Parts) = %d, want 4: %#v", len(is.Parts), is.Parts)
	}
	pf, ok := is.Parts[1].(*phpast.PropertyFetch)
	if !ok || pf.Name != "prefix" {
		t.Fatalf("part 1 = %#v, want PropertyFetch prefix", is.Parts[1])
	}
	v, ok := is.Parts[3].(*phpast.Var)
	if !ok || v.Name != "id" {
		t.Fatalf("part 3 = %#v, want Var id", is.Parts[3])
	}
}

func TestParseInterpolatedSimpleIndex(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php echo "v=$_GET[id]";`)
	is := s.(*phpast.Echo).Args[0].(*phpast.InterpString)
	if len(is.Parts) != 2 {
		t.Fatalf("len(Parts) = %d, want 2", len(is.Parts))
	}
	idx, ok := is.Parts[1].(*phpast.IndexFetch)
	if !ok {
		t.Fatalf("part 1 = %T, want *IndexFetch", is.Parts[1])
	}
	base := idx.Base.(*phpast.Var)
	if base.Name != "_GET" {
		t.Fatalf("base = %q, want _GET", base.Name)
	}
	key := idx.Index.(*phpast.Literal)
	if key.Value != "id" || key.Kind != phpast.LitString {
		t.Fatalf("key = %#v, want string literal id", idx.Index)
	}
}

func TestParseHeredoc(t *testing.T) {
	t.Parallel()
	src := "<?php $s = <<<EOT\nHello $name\nEOT;\n"
	as := firstStmt(t, src).(*phpast.ExprStmt).X.(*phpast.Assign)
	is, ok := as.RHS.(*phpast.InterpString)
	if !ok {
		t.Fatalf("RHS = %T, want *InterpString", as.RHS)
	}
	if len(is.Parts) < 2 {
		t.Fatalf("len(Parts) = %d, want >= 2", len(is.Parts))
	}
}

func TestParseArrayLiterals(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $a = array('k' => 1, 2, 'x' => $v);`)
	al, ok := s.(*phpast.ExprStmt).X.(*phpast.Assign).RHS.(*phpast.ArrayLit)
	if !ok {
		t.Fatal("RHS should be *ArrayLit")
	}
	if len(al.Items) != 3 {
		t.Fatalf("len(Items) = %d, want 3", len(al.Items))
	}
	if al.Items[0].Key == nil || al.Items[1].Key != nil {
		t.Error("item 0 keyed, item 1 positional expected")
	}

	s2 := firstStmt(t, `<?php $b = ['a', 'b'];`)
	al2, ok := s2.(*phpast.ExprStmt).X.(*phpast.Assign).RHS.(*phpast.ArrayLit)
	if !ok {
		t.Fatal("short array RHS should be *ArrayLit")
	}
	if len(al2.Items) != 2 {
		t.Fatalf("len(Items) = %d, want 2", len(al2.Items))
	}
}

func TestParseTernaryAndShortTernary(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $x = $a ? $b : $c;`)
	tern, ok := s.(*phpast.ExprStmt).X.(*phpast.Assign).RHS.(*phpast.Ternary)
	if !ok {
		t.Fatal("RHS should be *Ternary")
	}
	if tern.Then == nil {
		t.Error("full ternary should have Then")
	}
	s2 := firstStmt(t, `<?php $x = $a ?: $c;`)
	tern2 := s2.(*phpast.ExprStmt).X.(*phpast.Assign).RHS.(*phpast.Ternary)
	if tern2.Then != nil {
		t.Error("short ternary should have nil Then")
	}
}

func TestParsePrecedence(t *testing.T) {
	t.Parallel()
	// "a" . $b . "c" is left associative; * binds tighter than +.
	s := firstStmt(t, `<?php $x = 1 + 2 * 3;`)
	add := s.(*phpast.ExprStmt).X.(*phpast.Assign).RHS.(*phpast.Binary)
	if add.Op != "+" {
		t.Fatalf("top op = %q, want +", add.Op)
	}
	mul, ok := add.R.(*phpast.Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("right = %#v, want * binary", add.R)
	}
}

func TestParseConcatenation(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php echo "a" . $x . "b";`)
	outer, ok := s.(*phpast.Echo).Args[0].(*phpast.Binary)
	if !ok || outer.Op != "." {
		t.Fatalf("arg = %#v, want concat", s.(*phpast.Echo).Args[0])
	}
	inner, ok := outer.L.(*phpast.Binary)
	if !ok || inner.Op != "." {
		t.Fatalf("left = %#v, want concat (left assoc)", outer.L)
	}
}

func TestParseNew(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $w = new WP_Query($args);`)
	n, ok := s.(*phpast.ExprStmt).X.(*phpast.Assign).RHS.(*phpast.New)
	if !ok {
		t.Fatal("RHS should be *New")
	}
	if n.Class != "wp_query" || len(n.Args) != 1 {
		t.Fatalf("New = %#v", n)
	}
}

func TestParseIncludes(t *testing.T) {
	t.Parallel()
	f := mustParse(t, `<?php
include 'a.php';
include_once("b.php");
require 'c.php';
require_once(dirname(__FILE__) . '/d.php');`)
	if len(f.Stmts) != 4 {
		t.Fatalf("len(Stmts) = %d, want 4", len(f.Stmts))
	}
	kinds := []phpast.IncludeKind{
		phpast.IncInclude, phpast.IncIncludeOnce,
		phpast.IncRequire, phpast.IncRequireOnce,
	}
	for i, s := range f.Stmts {
		inc, ok := s.(*phpast.ExprStmt).X.(*phpast.IncludeExpr)
		if !ok {
			t.Fatalf("stmt %d = %T, want IncludeExpr", i, s.(*phpast.ExprStmt).X)
		}
		if inc.Kind != kinds[i] {
			t.Errorf("stmt %d kind = %v, want %v", i, inc.Kind, kinds[i])
		}
	}
}

func TestParseGlobalsAndUnset(t *testing.T) {
	t.Parallel()
	f := mustParse(t, `<?php
function f() {
	global $wpdb, $post;
	static $cache = array();
	unset($cache['x'], $post);
}`)
	fd := f.Stmts[0].(*phpast.FuncDecl)
	g, ok := fd.Body[0].(*phpast.Global)
	if !ok || len(g.Names) != 2 || g.Names[0] != "wpdb" {
		t.Fatalf("global = %#v", fd.Body[0])
	}
	sv, ok := fd.Body[1].(*phpast.StaticVars)
	if !ok || len(sv.Vars) != 1 || sv.Vars[0].Name != "cache" {
		t.Fatalf("static = %#v", fd.Body[1])
	}
	u, ok := fd.Body[2].(*phpast.Unset)
	if !ok || len(u.Vars) != 2 {
		t.Fatalf("unset = %#v", fd.Body[2])
	}
}

func TestParseClosure(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $f = function ($a) use (&$total) { $total += $a; };`)
	cl, ok := s.(*phpast.ExprStmt).X.(*phpast.Assign).RHS.(*phpast.Closure)
	if !ok {
		t.Fatal("RHS should be *Closure")
	}
	if len(cl.Params) != 1 || len(cl.Uses) != 1 {
		t.Fatalf("closure = %#v", cl)
	}
	if !cl.Uses[0].ByRef || cl.Uses[0].Name != "total" {
		t.Fatalf("use = %#v", cl.Uses[0])
	}
}

func TestParseTryCatch(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php try { risky(); } catch (Exception $e) { log_it($e); }`)
	tr, ok := s.(*phpast.Try)
	if !ok {
		t.Fatalf("stmt = %T, want *Try", s)
	}
	if len(tr.Catches) != 1 || tr.Catches[0].Class != "Exception" || tr.Catches[0].Var != "e" {
		t.Fatalf("catches = %#v", tr.Catches)
	}
}

func TestParseReferenceAssignment(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $a =& $b;`)
	as := s.(*phpast.ExprStmt).X.(*phpast.Assign)
	if !as.ByRef {
		t.Error("assignment should be by-ref")
	}
}

func TestParseCasts(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $n = (int) $_GET['n'];`)
	c, ok := s.(*phpast.ExprStmt).X.(*phpast.Assign).RHS.(*phpast.Cast)
	if !ok || c.Type != "int" {
		t.Fatalf("RHS = %#v, want int cast", s.(*phpast.ExprStmt).X.(*phpast.Assign).RHS)
	}
}

func TestParseExitAndPrint(t *testing.T) {
	t.Parallel()
	f := mustParse(t, `<?php print $x; exit(1); die();`)
	if _, ok := f.Stmts[0].(*phpast.ExprStmt).X.(*phpast.PrintExpr); !ok {
		t.Error("stmt 0 should be PrintExpr")
	}
	if _, ok := f.Stmts[1].(*phpast.ExprStmt).X.(*phpast.ExitExpr); !ok {
		t.Error("stmt 1 should be ExitExpr")
	}
	if _, ok := f.Stmts[2].(*phpast.ExprStmt).X.(*phpast.ExitExpr); !ok {
		t.Error("stmt 2 (die) should be ExitExpr")
	}
}

func TestParseWordOperators(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $ok = isset($x) and valid($x);`)
	// "and" binds looser than "=", so the top node is the binary.
	bin, ok := s.(*phpast.ExprStmt).X.(*phpast.Binary)
	if !ok || bin.Op != "and" {
		t.Fatalf("expr = %#v, want and-binary", s.(*phpast.ExprStmt).X)
	}
	if _, ok := bin.L.(*phpast.Assign); !ok {
		t.Fatalf("left = %T, want Assign", bin.L)
	}
}

func TestParseDynamicCall(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $fn($arg);`)
	fc, ok := s.(*phpast.ExprStmt).X.(*phpast.FuncCall)
	if !ok || fc.NameExpr == nil {
		t.Fatalf("expr = %#v, want dynamic FuncCall", s.(*phpast.ExprStmt).X)
	}
}

func TestParseListAssignment(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php list($a, $b) = explode(',', $csv);`)
	as := s.(*phpast.ExprStmt).X.(*phpast.Assign)
	le, ok := as.LHS.(*phpast.ListExpr)
	if !ok || len(le.Targets) != 2 {
		t.Fatalf("LHS = %#v, want 2-target list", as.LHS)
	}
}

func TestParseErrorRecovery(t *testing.T) {
	t.Parallel()
	// Malformed input parses with errors but terminates and keeps later
	// statements.
	f := Parse("bad.php", `<?php $x = ; echo $ok;`)
	if len(f.Errors) == 0 {
		t.Fatal("expected parse errors")
	}
	foundEcho := false
	for _, s := range f.Stmts {
		if _, ok := s.(*phpast.Echo); ok {
			foundEcho = true
		}
	}
	if !foundEcho {
		t.Fatal("echo after error should still be parsed")
	}
}

func TestParseKeywordMethodName(t *testing.T) {
	t.Parallel()
	s := firstStmt(t, `<?php $q->list();`)
	mc, ok := s.(*phpast.ExprStmt).X.(*phpast.MethodCall)
	if !ok || mc.Name != "list" {
		t.Fatalf("expr = %#v, want list() method call", s.(*phpast.ExprStmt).X)
	}
}

func TestParseLineNumbers(t *testing.T) {
	t.Parallel()
	src := "<?php\n$a = 1;\necho $a;\n"
	f := mustParse(t, src)
	if got := f.Stmts[0].Pos(); got != 2 {
		t.Errorf("stmt 0 line = %d, want 2", got)
	}
	if got := f.Stmts[1].Pos(); got != 3 {
		t.Errorf("stmt 1 line = %d, want 3", got)
	}
	if f.Lines != 4 {
		t.Errorf("file lines = %d, want 4", f.Lines)
	}
}

func TestParseNeverPanicsOrHangs(t *testing.T) {
	t.Parallel()
	inputs := []string{
		"",
		"<?php",
		"<?php ?>",
		"<?php {{{",
		"<?php class {",
		"<?php function",
		"<?php foreach",
		"<?php $a->",
		"<?php \"$",
		"<?php <<<EOT",
		"<?php switch ($x) {",
		"<?php if (",
		"no php at all",
		"<?php $a[ = 3; ]",
		"<?php ]]])))",
	}
	for _, src := range inputs {
		src := src
		t.Run(fmt.Sprintf("%.20q", src), func(t *testing.T) {
			t.Parallel()
			f := Parse("x.php", src)
			if f == nil {
				t.Fatal("Parse returned nil")
			}
		})
	}
}

// TestQuickParseTerminates feeds arbitrary bytes to the parser and checks
// it always terminates and returns a file (robustness property, paper
// §IV.A).
func TestQuickParseTerminates(t *testing.T) {
	t.Parallel()
	f := func(body string) bool {
		file := Parse("fuzz.php", "<?php "+body)
		return file != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStmtLinesWithinFile checks that every parsed statement carries a
// line number within the file bounds.
func TestQuickStmtLinesWithinFile(t *testing.T) {
	t.Parallel()
	f := func(body string) bool {
		src := "<?php\n" + body
		file := Parse("fuzz.php", src)
		ok := true
		phpast.InspectStmts(file.Stmts, func(n phpast.Node) bool {
			if n.Pos() < 0 || n.Pos() > file.Lines+1 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	src := `<?php
class Mail_Subscribe extends WP_Widget {
	public $prefix;
	function __construct() { $this->prefix = 'sml'; }
	function show($id) {
		global $wpdb;
		$rows = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
		foreach ($rows as $row) {
			echo '<li>' . $row->sml_name . '</li>';
		}
		if (isset($_GET['page'])) {
			$page = $_GET['page'];
			echo "<a href='?page=$page'>next</a>";
		}
	}
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse("bench.php", src)
	}
}
