package phpparse

// Version is the parser's model fingerprint. Together with
// phplex.Version it pins the shape of the ASTs that per-file analysis
// artifacts were computed from (internal/incremental); bump it whenever
// the parser maps the same tokens to a different tree, or stale
// artifacts could be reused across incompatible AST models.
const Version = "phpparse-1"
