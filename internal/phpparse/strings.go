package phpparse

import "strings"

// decodeStringLit decodes a T_CONSTANT_ENCAPSED_STRING token's text
// (including quotes) into its runtime string value.
func decodeStringLit(text string) string {
	if len(text) < 2 {
		return text
	}
	quote := text[0]
	body := text[1:]
	if body[len(body)-1] == quote {
		body = body[:len(body)-1]
	}
	switch quote {
	case '\'':
		return decodeSingle(body)
	case '"':
		return decodeDouble(body)
	default:
		return body
	}
}

// decodeSingle decodes single-quoted string content: only \' and \\ are
// escapes; every other backslash is literal.
func decodeSingle(body string) string {
	if !strings.ContainsRune(body, '\\') {
		return body
	}
	var sb strings.Builder
	sb.Grow(len(body))
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '\\' && i+1 < len(body) {
			next := body[i+1]
			if next == '\'' || next == '\\' {
				sb.WriteByte(next)
				i++
				continue
			}
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// decodeDouble decodes double-quoted (and heredoc) string content,
// handling the PHP escape sequences.
func decodeDouble(body string) string {
	if !strings.ContainsRune(body, '\\') {
		return body
	}
	var sb strings.Builder
	sb.Grow(len(body))
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' || i+1 >= len(body) {
			sb.WriteByte(c)
			continue
		}
		i++
		switch next := body[i]; next {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case 'v':
			sb.WriteByte('\v')
		case 'f':
			sb.WriteByte('\f')
		case '0':
			sb.WriteByte(0)
		case '\\', '"', '$', '`':
			sb.WriteByte(next)
		case 'x':
			// \xHH hex escape.
			val, n := hexByte(body[i+1:])
			if n > 0 {
				sb.WriteByte(val)
				i += n
			} else {
				sb.WriteByte('\\')
				sb.WriteByte(next)
			}
		default:
			sb.WriteByte('\\')
			sb.WriteByte(next)
		}
	}
	return sb.String()
}

// hexByte reads up to two hex digits from s and returns the byte value and
// how many digits were consumed (0 when s has no leading hex digit).
func hexByte(s string) (byte, int) {
	var val byte
	n := 0
	for n < 2 && n < len(s) {
		d, ok := hexVal(s[n])
		if !ok {
			break
		}
		val = val<<4 | d
		n++
	}
	return val, n
}

// hexVal converts one hex digit character.
func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}
