package phpparse

import (
	"testing"

	"repro/internal/phpast"
)

// tortureSource mixes most of the supported PHP 5 surface in one file,
// in the style of a real WordPress plugin.
const tortureSource = `<?php
/**
 * Plugin Name: Torture Case
 * @package torture
 */

if (!defined('ABSPATH')) { exit; }

define('TORTURE_VERSION', '1.0.' . 2);

include_once dirname(__FILE__) . '/inc/helpers.php';
require 'inc/settings.php';

global $wpdb, $post;

$config = array(
	'limit'  => 10,
	'labels' => array('a' => 'Alpha', 'b' => 'Beta'),
	'flag'   => true,
);

list($first, , $third) = explode(',', 'x,y,z');

function torture_format(&$out, $value = null, array $extra = array()) {
	static $calls = 0;
	$calls++;
	if (is_null($value)) {
		return '';
	}
	$out .= (string) $value;
	return $out;
}

abstract class Torture_Base {
	const MODE = 'base';
	protected static $instances = 0;
	public $prefix = 't_';

	public function __construct() {
		self::$instances++;
	}

	abstract protected function render();

	public static function instances() {
		return self::$instances;
	}
}

final class Torture_Widget extends Torture_Base implements Countable {
	private $items = array();

	protected function render() {
		foreach ($this->items as $key => &$item) {
			echo "<li data-k=\"$key\">{$item['label']}</li>";
		}
		unset($item);
	}

	public function count() {
		return count($this->items);
	}

	public function add($label) {
		$this->items[] = array('label' => $label);
		return $this;
	}
}

$w = new Torture_Widget();
$w->add('one')->add('two');

switch ($config['limit']) {
	case 10:
	case 20:
		$mode = 'paged';
		break;
	default:
		$mode = 'all';
}

do {
	$config['limit']--;
} while ($config['limit'] > 8);

for ($i = 0, $j = 10; $i < $j; $i++, $j--) {
	continue;
}

$sql = <<<SQL
SELECT id, name
FROM {$wpdb->prefix}torture
WHERE mode = '$mode'
SQL;

$fn = function ($row) use (&$config) {
	return $row . $config['limit'];
};

try {
	throw new Exception('nope');
} catch (Exception $e) {
	$msg = $e->getMessage();
} finally {
	$done = true;
}

$ternary = isset($msg) ? $msg : 'fallback';
$short = $ternary ?: 'empty';
$math = 1 + 2 * 3 % 4 - (int) '5';
$bits = 0xFF & 0x0F | 1 << 2;
$cmp = ($math <=> 2) == 0 or $bits and $short;
?>
<div class="torture">
	<?php if ($mode == 'paged'): ?>
		<p>Paged mode</p>
	<?php elseif ($mode == 'all'): ?>
		<p>Everything</p>
	<?php else: ?>
		<p>Unknown</p>
	<?php endif; ?>
</div>
<?php
echo $short, ' & done';
`

func TestTortureFileParses(t *testing.T) {
	t.Parallel()
	f := Parse("torture.php", tortureSource)
	// The spaceship operator <=> is PHP 7; our PHP 5 parser degrades on
	// that single line, everything else must be clean.
	if len(f.Errors) > 2 {
		t.Fatalf("too many parse errors: %v", f.Errors)
	}

	var (
		funcs    int
		classes  int
		methods  int
		closures int
		heredocs int
		switches int
		tries    int
	)
	phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
		switch x := n.(type) {
		case *phpast.FuncDecl:
			funcs++
		case *phpast.ClassDecl:
			classes++
			methods += len(x.Methods)
		case *phpast.Closure:
			closures++
		case *phpast.InterpString:
			if len(x.Parts) > 2 {
				heredocs++ // heredoc or rich interpolation
			}
		case *phpast.Switch:
			switches++
		case *phpast.Try:
			tries++
		}
		return true
	})
	if funcs != 1 {
		t.Errorf("functions = %d, want 1", funcs)
	}
	if classes != 2 {
		t.Errorf("classes = %d, want 2", classes)
	}
	if methods != 6 {
		t.Errorf("methods = %d, want 6", methods)
	}
	if closures != 1 {
		t.Errorf("closures = %d, want 1", closures)
	}
	if heredocs == 0 {
		t.Error("heredoc/interpolation missing from AST")
	}
	if switches != 1 || tries != 1 {
		t.Errorf("switch = %d, try = %d; want 1 each", switches, tries)
	}
}

func TestTortureClassDetails(t *testing.T) {
	t.Parallel()
	f := Parse("torture.php", tortureSource)
	var base, widget *phpast.ClassDecl
	phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
		if cd, ok := n.(*phpast.ClassDecl); ok {
			switch cd.Name {
			case "torture_base":
				base = cd
			case "torture_widget":
				widget = cd
			}
			return false
		}
		return true
	})
	if base == nil || widget == nil {
		t.Fatal("classes not found")
	}
	if !base.Abstract {
		t.Error("Torture_Base should be abstract")
	}
	if len(base.Consts) != 1 || base.Consts[0].Name != "MODE" {
		t.Errorf("base consts = %+v", base.Consts)
	}
	if widget.Extends != "torture_base" {
		t.Errorf("widget extends %q", widget.Extends)
	}
	if len(widget.Implements) != 1 || widget.Implements[0] != "countable" {
		t.Errorf("widget implements %v", widget.Implements)
	}
	var abstractRender bool
	for _, m := range base.Methods {
		if m.Name == "render" && m.Abstract && m.Body == nil {
			abstractRender = true
		}
	}
	if !abstractRender {
		t.Error("abstract render() should have no body")
	}
}

func TestMethodChaining(t *testing.T) {
	t.Parallel()
	f := mustParse(t, `<?php $w->add('one')->add('two')->render();`)
	mc, ok := f.Stmts[0].(*phpast.ExprStmt).X.(*phpast.MethodCall)
	if !ok || mc.Name != "render" {
		t.Fatalf("outer = %#v, want render()", f.Stmts[0])
	}
	mid, ok := mc.Object.(*phpast.MethodCall)
	if !ok || mid.Name != "add" {
		t.Fatalf("middle = %#v", mc.Object)
	}
	inner, ok := mid.Object.(*phpast.MethodCall)
	if !ok || inner.Name != "add" {
		t.Fatalf("inner = %#v", mid.Object)
	}
}

func TestHeredocWithInterpolation(t *testing.T) {
	t.Parallel()
	src := "<?php $sql = <<<SQL\nSELECT * FROM {$wpdb->prefix}t WHERE id=$id\nSQL;\n"
	f := mustParse(t, src)
	as := f.Stmts[0].(*phpast.ExprStmt).X.(*phpast.Assign)
	is, ok := as.RHS.(*phpast.InterpString)
	if !ok {
		t.Fatalf("RHS = %T", as.RHS)
	}
	var props, vars int
	for _, p := range is.Parts {
		switch p.(type) {
		case *phpast.PropertyFetch:
			props++
		case *phpast.Var:
			vars++
		}
	}
	if props != 1 || vars != 1 {
		t.Fatalf("props = %d, vars = %d; want 1 each (parts %#v)", props, vars, is.Parts)
	}
}

func TestNestedFunctionDeclaration(t *testing.T) {
	t.Parallel()
	// PHP allows declaring functions inside functions; the parser must
	// handle the nesting even though the model treats them as global.
	f := mustParse(t, `<?php
function outer() {
	function inner() { return 1; }
	return inner();
}`)
	outer := f.Stmts[0].(*phpast.FuncDecl)
	if len(outer.Body) != 2 {
		t.Fatalf("outer body = %d stmts", len(outer.Body))
	}
	if _, ok := outer.Body[0].(*phpast.FuncDecl); !ok {
		t.Fatalf("inner decl = %T", outer.Body[0])
	}
}
