package rulepack

import (
	"strings"
	"testing"
)

// mini is a syntactically minimal valid pack used as the mutation base.
const mini = `{
  "schema_version": 1,
  "name": "mini",
  "sources": [{"kind": "superglobal", "name": "_GET", "vector": "get"}],
  "sanitizers": [{"name": "esc_html", "untaints": ["xss"]}],
  "reverts": ["stripslashes"],
  "sinks": [{"name": "echo", "vuln": "xss", "args": [0]}]
}`

func TestLoadValid(t *testing.T) {
	p, err := Load([]byte(mini))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mini" || p.RuleCount() != 4 {
		t.Fatalf("got name=%q rules=%d, want mini/4", p.Name, p.RuleCount())
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"bad schema version", func(s string) string {
			return strings.Replace(s, `"schema_version": 1`, `"schema_version": 2`, 1)
		}, "unsupported schema_version"},
		{"bad pack name", func(s string) string {
			return strings.Replace(s, `"name": "mini"`, `"name": "Mini Pack"`, 1)
		}, "invalid pack name"},
		{"unknown field", func(s string) string {
			return strings.Replace(s, `"name": "mini",`, `"name": "mini", "bogus": true,`, 1)
		}, "unknown field"},
		{"trailing data", func(s string) string {
			return s + `{"schema_version": 1, "name": "extra"}`
		}, "trailing data"},
		{"not json", func(string) string { return "sources: []" }, "parse"},
		{"unknown source kind", func(s string) string {
			return strings.Replace(s, `"kind": "superglobal"`, `"kind": "global"`, 1)
		}, "unknown kind"},
		{"unknown vector", func(s string) string {
			return strings.Replace(s, `"vector": "get"`, `"vector": "url"`, 1)
		}, "unknown vector"},
		{"class on non-method source", func(s string) string {
			return strings.Replace(s, `"name": "_GET",`, `"name": "_GET", "class": "wpdb",`, 1)
		}, "non-method source"},
		{"unknown taint slug", func(s string) string {
			return strings.Replace(s, `"untaints": ["xss"]`, `"untaints": ["csrf"]`, 1)
		}, "unknown vulnerability class"},
		{"unknown sink vuln", func(s string) string {
			return strings.Replace(s, `"vuln": "xss"`, `"vuln": "rce"`, 1)
		}, "unknown vulnerability class"},
		{"negative arg index", func(s string) string {
			return strings.Replace(s, `"args": [0]`, `"args": [-1]`, 1)
		}, "negative arg index"},
		{"bad severity", func(s string) string {
			return strings.Replace(s, `"vuln": "xss"`, `"vuln": "xss", "severity": "urgent"`, 1)
		}, "unknown severity"},
		{"self extend", func(s string) string {
			return strings.Replace(s, `"name": "mini",`, `"name": "mini", "extends": ["mini"],`, 1)
		}, "extends itself"},
		{"missing sink name", func(s string) string {
			return strings.Replace(s, `"name": "echo",`, ``, 1)
		}, "missing name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(tc.mutate(mini)))
			if err == nil {
				t.Fatalf("mutation accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadRejectsDuplicateRuleIDs(t *testing.T) {
	dup := strings.Replace(mini,
		`{"name": "echo", "vuln": "xss", "args": [0]}`,
		`{"name": "echo", "vuln": "xss", "args": [0]}, {"name": "echo", "vuln": "xss"}`, 1)
	if _, err := Load([]byte(dup)); err == nil || !strings.Contains(err.Error(), "duplicate rule id") {
		t.Fatalf("duplicate sinks: err = %v, want duplicate rule id", err)
	}
	// Explicit IDs collide too, even across rule categories.
	ids := strings.Replace(mini, `{"kind": "superglobal"`, `{"id": "r1", "kind": "superglobal"`, 1)
	ids = strings.Replace(ids, `{"name": "echo"`, `{"id": "r1", "name": "echo"`, 1)
	if _, err := Load([]byte(ids)); err == nil || !strings.Contains(err.Error(), "duplicate rule id") {
		t.Fatalf("duplicate explicit ids: err = %v, want duplicate rule id", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, p := range Builtins() {
		data, err := p.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		back, err := Load(data)
		if err != nil {
			t.Fatalf("%s: reload: %v", p.Name, err)
		}
		again, err := back.Marshal()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", p.Name, err)
		}
		if string(data) != string(again) {
			t.Errorf("%s: marshal not stable across a load round trip", p.Name)
		}
	}
}

func TestRegistryResolve(t *testing.T) {
	reg := NewRegistry()

	t.Run("unknown pack lists known packs", func(t *testing.T) {
		_, err := reg.Resolve("no-such-pack")
		if err == nil {
			t.Fatal("want error")
		}
		for _, name := range []string{"generic", "wordpress", "drupal", "joomla", "security-extended"} {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error %v does not list builtin %q", err, name)
			}
		}
	})

	t.Run("extends cycle detected", func(t *testing.T) {
		a := &Pack{SchemaVersion: SchemaVersion, Name: "cyc-a", Extends: []string{"cyc-b"}}
		b := &Pack{SchemaVersion: SchemaVersion, Name: "cyc-b", Extends: []string{"cyc-a"}}
		r := NewRegistry()
		r.Register(a)
		r.Register(b)
		if _, err := r.Resolve("cyc-a"); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("err = %v, want extends cycle", err)
		}
	})

	t.Run("diamond extends applied once", func(t *testing.T) {
		// left and right both extend generic; resolving both must merge
		// generic exactly once (no duplicated sinks).
		left := &Pack{SchemaVersion: SchemaVersion, Name: "left", Extends: []string{"generic"}}
		right := &Pack{SchemaVersion: SchemaVersion, Name: "right", Extends: []string{"generic"}}
		r := NewRegistry()
		r.Register(left)
		r.Register(right)
		diamond, err := r.Resolve("left", "right")
		if err != nil {
			t.Fatal(err)
		}
		solo, err := r.Resolve("generic")
		if err != nil {
			t.Fatal(err)
		}
		if len(diamond.Sinks) != len(solo.Sinks) {
			t.Errorf("diamond sinks = %d, generic alone = %d (base merged twice?)",
				len(diamond.Sinks), len(solo.Sinks))
		}
	})

	t.Run("compile succeeds for every builtin", func(t *testing.T) {
		for _, name := range reg.Names() {
			if _, err := reg.Compile(name); err != nil {
				t.Errorf("compile %s: %v", name, err)
			}
		}
	})
}

func TestSplitSpec(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{" , ", 0},
		{"wordpress", 1},
		{"wordpress,security-extended", 2},
		{" generic , joomla ", 2},
	}
	for _, tc := range cases {
		if got := SplitSpec(tc.in); len(got) != tc.want {
			t.Errorf("SplitSpec(%q) = %v, want %d names", tc.in, got, tc.want)
		}
	}
}
