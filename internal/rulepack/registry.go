package rulepack

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
)

//go:embed builtin/*.json
var builtinFS embed.FS

// Registry resolves pack names to packs and composes them into compiled
// configurations. A registry starts with the builtin packs; callers add
// file-loaded packs with Register/RegisterFile.
type Registry struct {
	packs map[string]*Pack
}

// NewRegistry returns a registry seeded with the builtin packs.
func NewRegistry() *Registry {
	r := &Registry{packs: make(map[string]*Pack, 8)}
	for _, p := range Builtins() {
		r.packs[p.Name] = p
	}
	return r
}

// builtins are loaded once; the embedded files are validated at init so
// a malformed builtin fails every test immediately.
var builtinPacks = loadBuiltins()

func loadBuiltins() []*Pack {
	entries, err := builtinFS.ReadDir("builtin")
	if err != nil {
		panic(fmt.Sprintf("rulepack: embedded builtins: %v", err))
	}
	packs := make([]*Pack, 0, len(entries))
	for _, e := range entries {
		data, err := builtinFS.ReadFile("builtin/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("rulepack: embedded %s: %v", e.Name(), err))
		}
		p, err := Load(data)
		if err != nil {
			panic(fmt.Sprintf("rulepack: embedded %s: %v", e.Name(), err))
		}
		packs = append(packs, p)
	}
	sort.Slice(packs, func(i, j int) bool { return packs[i].Name < packs[j].Name })
	return packs
}

// Builtins returns the embedded builtin packs, sorted by name.
func Builtins() []*Pack { return builtinPacks }

// Register adds a pack to the registry, shadowing any builtin or
// previously registered pack with the same name.
func (r *Registry) Register(p *Pack) { r.packs[p.Name] = p }

// RegisterFile loads a pack from disk and registers it, returning the
// loaded pack.
func (r *Registry) RegisterFile(path string) (*Pack, error) {
	p, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	r.Register(p)
	return p, nil
}

// Get returns a registered pack by name.
func (r *Registry) Get(name string) (*Pack, bool) {
	p, ok := r.packs[name]
	return p, ok
}

// Names lists the registered pack names, sorted.
func (r *Registry) Names() []string { return sortedNames(r.packs) }

// SplitSpec parses a comma-separated pack spec ("wordpress,security-extended")
// into trimmed, non-empty names.
func SplitSpec(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Resolve composes the named packs — each with its transitive extends
// chain, depth first, bases before extenders, every pack applied once —
// into a single merged profile. The profile name records the resolved
// pack order, e.g. "packs:generic+wordpress".
func (r *Registry) Resolve(names ...string) (config.Profile, error) {
	var order []*Pack
	seen := make(map[string]bool, len(names)*2)
	onPath := make(map[string]bool, 4)

	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		if seen[name] {
			return nil
		}
		if onPath[name] {
			return fmt.Errorf("rulepack: extends cycle: %s", strings.Join(append(path, name), " -> "))
		}
		p, ok := r.packs[name]
		if !ok {
			return fmt.Errorf("rulepack: unknown pack %q (known packs: %s)",
				name, strings.Join(r.Names(), ", "))
		}
		onPath[name] = true
		for _, base := range p.Extends {
			if err := visit(base, append(path, name)); err != nil {
				return err
			}
		}
		delete(onPath, name)
		seen[name] = true
		order = append(order, p)
		return nil
	}
	if len(names) == 0 {
		return config.Profile{}, fmt.Errorf("rulepack: no packs named")
	}
	for _, name := range names {
		if err := visit(name, nil); err != nil {
			return config.Profile{}, err
		}
	}

	profiles := make([]config.Profile, len(order))
	labels := make([]string, len(order))
	for i, p := range order {
		profiles[i] = p.Profile()
		labels[i] = p.Name
	}
	return config.Merge("packs:"+strings.Join(labels, "+"), profiles...), nil
}

// Compile resolves the named packs and compiles the merged profile into
// the engines' lookup form.
func (r *Registry) Compile(names ...string) (*config.Compiled, error) {
	p, err := r.Resolve(names...)
	if err != nil {
		return nil, err
	}
	return config.Compile(p), nil
}
