package rulepack_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/corpus"
	"repro/internal/report"
	"repro/internal/rulepack"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// TestBuiltinPackEquivalence is the differential acceptance test for the
// generated builtin packs: scanning the full corpus through a
// pack-resolved configuration must yield byte-identical JSON findings
// and SARIF logs to the compiled-in Go profiles the packs were
// generated from.
func TestBuiltinPackEquivalence(t *testing.T) {
	t.Parallel()
	c2012, c2014 := corpus.MustGenerate()
	cases := []struct {
		name  string
		goCfg *config.Compiled
	}{
		{"generic", config.Compile(config.Generic())},
		{"wordpress", wordpress.Compiled()},
		{"drupal", config.Compile(config.Merge("drupal", config.Generic(), config.Drupal()))},
	}
	reg := rulepack.NewRegistry()
	for _, tc := range cases {
		packCfg, err := reg.Compile(tc.name)
		if err != nil {
			t.Fatalf("compile pack %s: %v", tc.name, err)
		}
		goEng := taint.New(tc.goCfg, taint.DefaultOptions())
		packEng := taint.New(packCfg, taint.DefaultOptions())
		for _, c := range []*corpus.Corpus{c2012, c2014} {
			for _, target := range c.Targets {
				resGo, err := goEng.Analyze(target)
				if err != nil {
					t.Fatalf("%s/%s/%s: go profile: %v", tc.name, c.Version, target.Name, err)
				}
				resPack, err := packEng.Analyze(target)
				if err != nil {
					t.Fatalf("%s/%s/%s: pack: %v", tc.name, c.Version, target.Name, err)
				}
				jsonGo, err := json.MarshalIndent(resGo, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				jsonPack, err := json.MarshalIndent(resPack, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(jsonGo, jsonPack) {
					t.Fatalf("%s/%s/%s: JSON results differ between pack and Go profile",
						tc.name, c.Version, target.Name)
				}
				sarifGo, err := report.SARIF(resGo)
				if err != nil {
					t.Fatal(err)
				}
				sarifPack, err := report.SARIF(resPack)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sarifGo, sarifPack) {
					t.Fatalf("%s/%s/%s: SARIF differs between pack and Go profile",
						tc.name, c.Version, target.Name)
				}
			}
		}
	}
}

// TestFingerprintsDistinctAcrossPackSets asserts the cache-separation
// property: engines built from different pack sets must never share an
// options fingerprint, or scancache/incremental state would leak
// findings across rule sets.
func TestFingerprintsDistinctAcrossPackSets(t *testing.T) {
	t.Parallel()
	reg := rulepack.NewRegistry()
	specs := [][]string{
		{"generic"},
		{"wordpress"},
		{"wordpress", "security-extended"},
		{"generic", "security-extended"},
		{"joomla"},
	}
	seen := make(map[string][]string)
	for _, names := range specs {
		cfg, err := reg.Compile(names...)
		if err != nil {
			t.Fatal(err)
		}
		fp := taint.New(cfg, taint.DefaultOptions()).OptionsFingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("pack sets %v and %v share fingerprint %q", prev, names, fp)
		}
		seen[fp] = names
	}
}
