// Package rulepack loads data-driven rule packs: JSON documents that
// declare the sources, sanitizers, reverts and sinks an analysis engine
// scans with, plus per-rule CWE and severity metadata. Packs replace the
// compiled-in Go profiles (config.Generic, wordpress.Profile, ...) with
// files a user can edit, and compose through an extends chain — the
// paper's §VI names Drupal and Joomla support as future work that should
// require "only" new configuration, which is exactly what a pack is.
//
// A pack resolves to a config.Profile and compiles into the same
// config.Compiled lookups the engines already use: the hot path is
// untouched, only the way rules arrive changes.
package rulepack

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/config"
)

// SchemaVersion is the pack schema this package reads and writes.
const SchemaVersion = 1

// Pack is one rule pack document, the unit of loading and composition.
type Pack struct {
	// SchemaVersion must equal SchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Name identifies the pack: lower-case letters, digits and dashes.
	Name string `json:"name"`
	// Description is a human-readable summary shown in pack listings.
	Description string `json:"description,omitempty"`
	// Extends lists pack names whose rules this pack builds on. Bases
	// must be resolvable from the registry the pack is resolved with.
	Extends []string `json:"extends,omitempty"`
	// Sources declare potentially malicious inputs.
	Sources []SourceRule `json:"sources,omitempty"`
	// Sanitizers declare filtering functions.
	Sanitizers []SanitizerRule `json:"sanitizers,omitempty"`
	// Reverts declare functions that undo sanitization (stripslashes).
	Reverts []string `json:"reverts,omitempty"`
	// Sinks declare sensitive output functions.
	Sinks []SinkRule `json:"sinks,omitempty"`
	// ObjectClasses maps global object variable names (without "$") to
	// class names, e.g. {"wpdb": "wpdb"}.
	ObjectClasses map[string]string `json:"object_classes,omitempty"`
}

// SourceRule declares one input vector.
type SourceRule struct {
	// ID optionally names the rule; defaults to a derived identifier.
	ID string `json:"id,omitempty"`
	// Kind is "superglobal", "function" or "method".
	Kind string `json:"kind"`
	// Name is the superglobal name without "$" or the function/method name.
	Name string `json:"name"`
	// Class is the receiver class for method rules.
	Class string `json:"class,omitempty"`
	// Vector is "get", "post", "cookie", "request", "db", "file" or "other".
	Vector string `json:"vector"`
	// Taints lists class slugs the data is dangerous for; empty = all.
	Taints []string `json:"taints,omitempty"`
}

// SanitizerRule declares one filtering function.
type SanitizerRule struct {
	// ID optionally names the rule; defaults to a derived identifier.
	ID string `json:"id,omitempty"`
	// Name is the function or method name.
	Name string `json:"name"`
	// Class is the receiver class for method sanitizers ($wpdb->prepare).
	Class string `json:"class,omitempty"`
	// Untaints lists class slugs the function protects; empty = all.
	Untaints []string `json:"untaints,omitempty"`
}

// SinkRule declares one sensitive output function.
type SinkRule struct {
	// ID optionally names the rule; defaults to a derived identifier.
	ID string `json:"id,omitempty"`
	// Name is the function or method name.
	Name string `json:"name"`
	// Class is the receiver class for method sinks ($wpdb->query).
	Class string `json:"class,omitempty"`
	// Vuln is the vulnerability class slug the sink is sensitive to.
	Vuln string `json:"vuln"`
	// Args lists 0-based sensitive argument positions; empty = all.
	Args []int `json:"args,omitempty"`
	// CWE overrides the class-default CWE identifier.
	CWE int `json:"cwe,omitempty"`
	// Severity overrides the class-default severity:
	// "low", "medium", "high" or "critical".
	Severity string `json:"severity,omitempty"`
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// vectors maps pack vector labels to the analyzer enumeration.
var vectors = map[string]analyzer.Vector{
	"get":     analyzer.VectorGET,
	"post":    analyzer.VectorPOST,
	"cookie":  analyzer.VectorCookie,
	"request": analyzer.VectorRequest,
	"db":      analyzer.VectorDB,
	"file":    analyzer.VectorFile,
	"other":   analyzer.VectorOther,
}

// sourceKinds maps pack source kind labels to the config enumeration.
var sourceKinds = map[string]config.SourceKind{
	"superglobal": config.SuperglobalSource,
	"function":    config.FunctionSource,
	"method":      config.MethodSource,
}

// severities are the accepted severity labels (besides empty = default).
var severities = map[string]bool{
	"low": true, "medium": true, "high": true, "critical": true,
}

// Load parses and validates one pack from JSON. Unknown fields, unknown
// kinds/vectors/class slugs, bad severities and duplicate rule IDs are
// all errors — a pack either loads fully understood or not at all.
func Load(data []byte) (*Pack, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Pack
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("rulepack: parse: %w", err)
	}
	// A second document in the stream is as suspicious as an unknown field.
	if dec.More() {
		return nil, fmt.Errorf("rulepack: trailing data after pack document")
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile loads and validates a pack from a file path.
func LoadFile(path string) (*Pack, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rulepack: %w", err)
	}
	p, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// validate checks the pack document for structural problems.
func (p *Pack) validate() error {
	if p.SchemaVersion != SchemaVersion {
		return fmt.Errorf("rulepack: unsupported schema_version %d (want %d)",
			p.SchemaVersion, SchemaVersion)
	}
	if !nameRE.MatchString(p.Name) {
		return fmt.Errorf("rulepack: invalid pack name %q (want lower-case letters, digits, dashes)", p.Name)
	}
	for _, base := range p.Extends {
		if !nameRE.MatchString(base) {
			return fmt.Errorf("rulepack %s: invalid extends entry %q", p.Name, base)
		}
		if base == p.Name {
			return fmt.Errorf("rulepack %s: pack extends itself", p.Name)
		}
	}
	ids := make(map[string]string, len(p.Sources)+len(p.Sanitizers)+len(p.Sinks))
	claim := func(id, what string) error {
		if prev, dup := ids[id]; dup {
			return fmt.Errorf("rulepack %s: duplicate rule id %q (%s and %s)", p.Name, id, prev, what)
		}
		ids[id] = what
		return nil
	}
	for i, s := range p.Sources {
		what := fmt.Sprintf("sources[%d]", i)
		if _, ok := sourceKinds[s.Kind]; !ok {
			return fmt.Errorf("rulepack %s: %s: unknown kind %q", p.Name, what, s.Kind)
		}
		if s.Name == "" {
			return fmt.Errorf("rulepack %s: %s: missing name", p.Name, what)
		}
		if _, ok := vectors[s.Vector]; !ok {
			return fmt.Errorf("rulepack %s: %s: unknown vector %q", p.Name, what, s.Vector)
		}
		if s.Class != "" && s.Kind != "method" {
			return fmt.Errorf("rulepack %s: %s: class %q on non-method source", p.Name, what, s.Class)
		}
		if _, err := classSlugs(s.Taints); err != nil {
			return fmt.Errorf("rulepack %s: %s: %w", p.Name, what, err)
		}
		if err := claim(s.ruleID(), what); err != nil {
			return err
		}
	}
	for i, s := range p.Sanitizers {
		what := fmt.Sprintf("sanitizers[%d]", i)
		if s.Name == "" {
			return fmt.Errorf("rulepack %s: %s: missing name", p.Name, what)
		}
		if _, err := classSlugs(s.Untaints); err != nil {
			return fmt.Errorf("rulepack %s: %s: %w", p.Name, what, err)
		}
		if err := claim(s.ruleID(), what); err != nil {
			return err
		}
	}
	for i, r := range p.Reverts {
		if r == "" {
			return fmt.Errorf("rulepack %s: reverts[%d]: empty name", p.Name, i)
		}
	}
	for i, s := range p.Sinks {
		what := fmt.Sprintf("sinks[%d]", i)
		if s.Name == "" {
			return fmt.Errorf("rulepack %s: %s: missing name", p.Name, what)
		}
		if _, ok := analyzer.ParseClassSlug(s.Vuln); !ok {
			return fmt.Errorf("rulepack %s: %s: unknown vulnerability class %q", p.Name, what, s.Vuln)
		}
		for _, a := range s.Args {
			if a < 0 {
				return fmt.Errorf("rulepack %s: %s: negative arg index %d", p.Name, what, a)
			}
		}
		if s.CWE < 0 {
			return fmt.Errorf("rulepack %s: %s: negative cwe", p.Name, what)
		}
		if s.Severity != "" && !severities[s.Severity] {
			return fmt.Errorf("rulepack %s: %s: unknown severity %q", p.Name, what, s.Severity)
		}
		if err := claim(s.ruleID(), what); err != nil {
			return err
		}
	}
	return nil
}

// ruleID returns the rule's explicit ID or a derived stable identifier.
func (s SourceRule) ruleID() string {
	if s.ID != "" {
		return s.ID
	}
	return strings.ToLower(fmt.Sprintf("source/%s/%s%s", s.Kind, prefixClass(s.Class), s.Name))
}

func (s SanitizerRule) ruleID() string {
	if s.ID != "" {
		return s.ID
	}
	return strings.ToLower(fmt.Sprintf("sanitizer/%s%s", prefixClass(s.Class), s.Name))
}

func (s SinkRule) ruleID() string {
	if s.ID != "" {
		return s.ID
	}
	return strings.ToLower(fmt.Sprintf("sink/%s/%s%s", s.Vuln, prefixClass(s.Class), s.Name))
}

func prefixClass(class string) string {
	if class == "" {
		return ""
	}
	return class + "::"
}

// classSlugs converts class slug labels to analyzer classes.
func classSlugs(slugs []string) ([]analyzer.VulnClass, error) {
	if len(slugs) == 0 {
		return nil, nil
	}
	out := make([]analyzer.VulnClass, 0, len(slugs))
	for _, slug := range slugs {
		c, ok := analyzer.ParseClassSlug(slug)
		if !ok {
			return nil, fmt.Errorf("unknown vulnerability class %q", slug)
		}
		out = append(out, c)
	}
	return out, nil
}

// Profile converts the pack body (ignoring extends) to a config.Profile.
// Validation has already run, so slug conversions cannot fail.
func (p *Pack) Profile() config.Profile {
	out := config.Profile{Name: p.Name}
	for _, s := range p.Sources {
		taints, _ := classSlugs(s.Taints)
		out.Sources = append(out.Sources, config.Source{
			Kind:   sourceKinds[s.Kind],
			Name:   s.Name,
			Class:  s.Class,
			Vector: vectors[s.Vector],
			Taints: taints,
		})
	}
	for _, s := range p.Sanitizers {
		untaints, _ := classSlugs(s.Untaints)
		out.Sanitizers = append(out.Sanitizers, config.Sanitizer{
			Name: s.Name, Class: s.Class, Untaints: untaints,
		})
	}
	out.Reverts = append(out.Reverts, p.Reverts...)
	for _, s := range p.Sinks {
		vuln, _ := analyzer.ParseClassSlug(s.Vuln)
		out.Sinks = append(out.Sinks, config.Sink{
			Name: s.Name, Class: s.Class, Vuln: vuln,
			Args: s.Args, CWE: s.CWE, Severity: s.Severity,
		})
	}
	if len(p.ObjectClasses) > 0 {
		out.ObjectClasses = make(map[string]string, len(p.ObjectClasses))
		for k, v := range p.ObjectClasses {
			out.ObjectClasses[k] = v
		}
	}
	return out
}

// RuleCount returns the number of rules the pack body declares.
func (p *Pack) RuleCount() int {
	return len(p.Sources) + len(p.Sanitizers) + len(p.Reverts) + len(p.Sinks)
}

// FromProfile converts a config.Profile to a pack document — the inverse
// of Pack.Profile, used to generate the builtin packs from the original
// compiled-in Go profiles so the two stay provably in sync.
func FromProfile(name, description string, p config.Profile) (*Pack, error) {
	out := &Pack{SchemaVersion: SchemaVersion, Name: name, Description: description}
	kindLabels := map[config.SourceKind]string{
		config.SuperglobalSource: "superglobal",
		config.FunctionSource:    "function",
		config.MethodSource:      "method",
	}
	vectorLabels := make(map[analyzer.Vector]string, len(vectors))
	for label, v := range vectors {
		vectorLabels[v] = label
	}
	for _, s := range p.Sources {
		kind, ok := kindLabels[s.Kind]
		if !ok {
			return nil, fmt.Errorf("rulepack: source %q: unknown kind %d", s.Name, s.Kind)
		}
		vec, ok := vectorLabels[s.Vector]
		if !ok {
			return nil, fmt.Errorf("rulepack: source %q: unknown vector %d", s.Name, s.Vector)
		}
		out.Sources = append(out.Sources, SourceRule{
			Kind: kind, Name: s.Name, Class: s.Class,
			Vector: vec, Taints: slugList(s.Taints),
		})
	}
	for _, s := range p.Sanitizers {
		out.Sanitizers = append(out.Sanitizers, SanitizerRule{
			Name: s.Name, Class: s.Class, Untaints: slugList(s.Untaints),
		})
	}
	out.Reverts = append(out.Reverts, p.Reverts...)
	for _, s := range p.Sinks {
		out.Sinks = append(out.Sinks, SinkRule{
			Name: s.Name, Class: s.Class, Vuln: s.Vuln.Slug(),
			Args: s.Args, CWE: s.CWE, Severity: s.Severity,
		})
	}
	if len(p.ObjectClasses) > 0 {
		out.ObjectClasses = make(map[string]string, len(p.ObjectClasses))
		for k, v := range p.ObjectClasses {
			out.ObjectClasses[k] = v
		}
	}
	if err := out.validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// slugList renders classes as slugs.
func slugList(cs []analyzer.VulnClass) []string {
	if len(cs) == 0 {
		return nil
	}
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Slug()
	}
	return out
}

// Marshal renders the pack as stable, indented JSON (keys in struct
// order, object_classes sorted by Go's map marshaling).
func (p *Pack) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// sortedNames returns map keys in order, for deterministic listings.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
