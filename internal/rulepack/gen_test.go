package rulepack

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/wordpress"
)

var update = flag.Bool("update", false, "regenerate builtin packs from the Go profiles")

// generated describes the builtin packs derived from the original
// compiled-in Go profiles. wordpress and drupal are stored as layers
// extending generic, mirroring how the Go code merges them.
var generated = []struct {
	file        string
	description string
	extends     []string
	profile     func() config.Profile
}{
	{"generic.json", "Generic PHP sources, sanitizers and sinks (phpSAFE class-vulnerable-*.php)",
		nil, config.Generic},
	{"wordpress.json", "WordPress framework layer: wpdb, esc_* sanitizers, nonce/option APIs",
		[]string{"generic"}, wordpress.Profile},
	{"drupal.json", "Drupal 7-era layer: db_fetch_* sources, check/filter API, db_query sinks",
		[]string{"generic"}, config.Drupal},
}

// TestGeneratedPacksInSync regenerates the derived builtin packs with
// -update, and otherwise proves byte-for-byte sync between the embedded
// JSON and the Go profiles they were generated from.
func TestGeneratedPacksInSync(t *testing.T) {
	for _, g := range generated {
		p, err := FromProfile(nameFromFile(g.file), g.description, g.profile())
		if err != nil {
			t.Fatalf("%s: FromProfile: %v", g.file, err)
		}
		p.Extends = g.extends
		want, err := p.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", g.file, err)
		}
		path := filepath.Join("builtin", g.file)
		if *update {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatalf("write %s: %v", path, err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is out of sync with its Go profile; run: go test ./internal/rulepack -run TestGeneratedPacksInSync -update", path)
		}
	}
}

func nameFromFile(file string) string {
	return file[:len(file)-len(".json")]
}

// TestResolvedEqualsMerged proves the pack path and the Go path build
// the same profile: resolving a derived pack must deep-equal the
// corresponding config.Merge chain, names aside.
func TestResolvedEqualsMerged(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	cases := []struct {
		packs []string
		want  config.Profile
	}{
		{[]string{"generic"}, config.Merge("x", config.Generic())},
		{[]string{"wordpress"}, config.Merge("x", config.Generic(), wordpress.Profile())},
		{[]string{"drupal"}, config.Merge("x", config.Generic(), config.Drupal())},
	}
	r := NewRegistry()
	for _, c := range cases {
		got, err := r.Resolve(c.packs...)
		if err != nil {
			t.Fatalf("resolve %v: %v", c.packs, err)
		}
		got.Name = "x"
		if !reflect.DeepEqual(normalize(got), normalize(c.want)) {
			t.Errorf("resolve %v != merged Go profiles", c.packs)
		}
	}
}

// normalize maps empty slices/maps to nil so JSON round-trips compare
// equal to hand-built profiles.
func normalize(p config.Profile) config.Profile {
	if len(p.Sources) == 0 {
		p.Sources = nil
	}
	if len(p.Sanitizers) == 0 {
		p.Sanitizers = nil
	}
	if len(p.Reverts) == 0 {
		p.Reverts = nil
	}
	if len(p.Sinks) == 0 {
		p.Sinks = nil
	}
	if len(p.ObjectClasses) == 0 {
		p.ObjectClasses = nil
	}
	return p
}
