package rulepack

import "testing"

// FuzzPackLoad asserts the loader's contract on arbitrary bytes: Load
// either returns a fully validated pack or an error — it never panics,
// and anything it accepts marshals and reloads cleanly.
func FuzzPackLoad(f *testing.F) {
	f.Add([]byte(mini))
	for _, p := range Builtins() {
		if data, err := p.Marshal(); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"schema_version": 1, "name": "x", "extends": ["x"]}`))
	f.Add([]byte(`{"schema_version": 99}`))
	f.Add([]byte(`{"schema_version": 1, "name": "x", "sinks": [{"name": "e", "vuln": "nope"}]}`))
	f.Add([]byte(`{"schema_version": 1, "name": "x", "sources": [{"kind": "?", "name": "_GET", "vector": "get"}]}`))
	f.Add([]byte(`{"schema_version": 1, "name": "x", "sinks": [{"name": "e", "vuln": "xss", "args": [-2]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"schema_version": 1, "name": "x"}{"schema_version": 1, "name": "y"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(data)
		if err != nil {
			return
		}
		// Accepted packs must survive a marshal/reload round trip and
		// convert to a profile without panicking.
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted pack does not marshal: %v", err)
		}
		if _, err := Load(out); err != nil {
			t.Fatalf("marshalled pack does not reload: %v", err)
		}
		_ = p.Profile()
		_ = p.RuleCount()
	})
}
