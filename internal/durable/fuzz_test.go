package durable

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the journal reader as a
// WAL file. Whatever the corruption — bit flips, torn lines, hostile
// JSON, binary garbage — Open must never panic and must return an
// intact prefix: every record it yields round-trips through the line
// codec, and the file offset it reports as good must itself replay to
// the same records.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a healthy journal, a torn tail, a flipped checksum and
	// assorted garbage.
	j, _, err := Open(f.TempDir(), Options{})
	if err != nil {
		f.Fatal(err)
	}
	j.Append(Record{Type: RecAccepted, ScanID: "s1"})
	j.Append(Record{Type: RecStarted, ScanID: "s1", Attempt: 1})
	j.Append(Record{Type: RecCompleted, ScanID: "s1"})
	healthy, err := os.ReadFile(filepath.Join(j.dir, walName))
	if err != nil {
		f.Fatal(err)
	}
	j.Close()
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-5])
	if len(healthy) > 20 {
		flipped := append([]byte(nil), healthy...)
		flipped[15] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte(""))
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte("not a journal at all\x00\xff\n"))
	f.Add([]byte("zzzzzzzz {\"type\":\"accepted\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		wal := filepath.Join(dir, walName)
		if err := os.WriteFile(wal, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := Open(dir, Options{})
		if err != nil {
			// Only environmental errors may surface; corruption must
			// degrade to a shorter replay, not an error.
			t.Fatalf("Open on corrupt WAL errored: %v", err)
		}
		defer j.Close()

		// Each replayed record must survive its own encode/decode.
		for _, r := range recs {
			line, err := encodeLine(r)
			if err != nil {
				t.Fatalf("replayed record does not re-encode: %+v: %v", r, err)
			}
			if _, ok := parseLine(line[:len(line)-1]); !ok {
				t.Fatalf("re-encoded record does not parse: %q", line)
			}
		}
		// Folding arbitrary replays must not panic either.
		_ = Fold(recs)

		// Open truncated the WAL to its intact prefix; a second open
		// must replay identically (replay is deterministic and stable).
		j2, recs2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer j2.Close()
		if len(recs2) != len(recs) {
			t.Fatalf("second replay %d records, first %d", len(recs2), len(recs))
		}
	})
}
