// Package durable is the crash-safety substrate of the scan daemon: a
// write-ahead journal that makes an accepted scan survive process
// death. The daemon appends one record per lifecycle transition
// (accepted, started, attempt_failed, completed, quarantined); on
// restart it replays the journal, rehydrates finished scans from their
// persisted results and resubmits everything still in flight.
//
// Format. The journal is a directory holding two append-only JSONL
// files: snapshot.jsonl (the compacted state as of the last
// compaction) and wal.jsonl (every record since). Each line is
//
//	<crc32-ieee hex8> <record JSON>\n
//
// where the checksum covers the JSON bytes. The checksum plus the
// trailing newline make torn writes detectable: replay stops at the
// first line that is incomplete, unparsable or checksum-damaged,
// truncates the WAL back to the last intact record, and carries on
// with the prefix — a crash mid-append loses at most the record being
// written, never the journal.
//
// Durability policy. Options.SyncEvery picks how many appends may pass
// between fsyncs: 1 (the default) syncs every record, so an accepted
// scan survives OS-level crash and power loss; N amortizes the sync
// over N appends (process-crash-safe; power loss may lose the last
// N-1 records); negative never syncs explicitly.
//
// Compaction. Compact rewrites the snapshot from the caller's live
// record set (atomically: temp file, fsync, rename) and resets the
// WAL. The snapshot's first line is a meta record carrying the highest
// sequence number it covers, so a crash between the rename and the WAL
// reset is harmless: replay skips WAL records the snapshot already
// absorbed.
//
// Failure. The journal is an aid, never a gate: when the disk fails
// mid-flight the journal flips to degraded (Degraded reports it,
// journal_degraded_events_total counts it), stops touching the disk,
// and every later Append returns ErrDegraded immediately — the scan
// path keeps running in-memory. govern.IOFaultHookForTesting injects
// exactly these failures in tests.
package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/govern"
	"repro/internal/obs"
)

// RecordType is a scan lifecycle transition.
type RecordType string

const (
	// RecAccepted marks a scan accepted into the queue; its payload is
	// the submission (target files, tool, budgets) so replay can rebuild
	// and resubmit the job.
	RecAccepted RecordType = "accepted"
	// RecStarted marks one attempt beginning on a worker.
	RecStarted RecordType = "started"
	// RecAttemptFailed marks one attempt failing retryably; the job
	// goes back to the queue after backoff.
	RecAttemptFailed RecordType = "attempt_failed"
	// RecCompleted marks the scan finished; its payload is the
	// persisted result, from which replay rehydrates the registry.
	RecCompleted RecordType = "completed"
	// RecQuarantined marks the scan dead-lettered after exhausting its
	// attempts (or failing terminally).
	RecQuarantined RecordType = "quarantined"
	// RecFleetMember marks a worker joining the coordinator's fleet
	// (Worker carries the address). Replaying these rebuilds the
	// dispatch ring after a coordinator restart, so auto-registered
	// workers survive without re-announcing.
	RecFleetMember RecordType = "fleet_member"
	// RecDispatchStarted is a fleet worker's local record of one
	// dispatched attempt it accepted (ScanID is the coordinator's scan
	// id; the payload carries the submission). A worker restart replays
	// unfinished dispatches so the coordinator finds the work still
	// running instead of vanished.
	RecDispatchStarted RecordType = "dispatch_started"
	// RecDispatchSettled closes a RecDispatchStarted: the worker-side
	// scan reached a terminal state.
	RecDispatchSettled RecordType = "dispatch_settled"
	// recSnapshot is the meta record heading a snapshot file; it
	// carries the highest sequence number the snapshot absorbed.
	recSnapshot RecordType = "snapshot"
)

// Record is one journal line. Payload is opaque to the journal; the
// server stores its submission and result envelopes there.
type Record struct {
	Seq       uint64          `json:"seq"`
	Type      RecordType      `json:"type"`
	Time      time.Time       `json:"time"`
	ScanID    string          `json:"scan,omitempty"`
	Attempt   int             `json:"attempt,omitempty"`
	Error     string          `json:"error,omitempty"`
	BackoffMS int64           `json:"backoff_ms,omitempty"`
	// Worker names the fleet worker that executed the transition, when
	// the daemon runs as a coordinator; empty in standalone mode. It
	// makes the journal a forensic record of where each scan actually
	// ran across ownership handoffs.
	Worker  string          `json:"worker,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// ErrDegraded is returned by Append once the journal has flipped to
// degraded mode after a disk failure; the caller should keep working
// in-memory.
var ErrDegraded = errors.New("durable: journal degraded, running in-memory")

// Options tunes a Journal.
type Options struct {
	// SyncEvery is how many appends may pass between fsyncs: 0 or 1
	// syncs every append, N>1 every Nth, negative never.
	SyncEvery int
	// Recorder, which may be nil, receives the journal_* counters.
	Recorder *obs.Recorder
	// Logger, when non-nil, receives structured journal events (tail
	// truncation, degradation); nil discards them.
	Logger *slog.Logger
}

const (
	walName  = "wal.jsonl"
	snapName = "snapshot.jsonl"
)

// Journal is an open scan journal. All methods are safe for
// concurrent use.
type Journal struct {
	dir string
	opt Options
	rec *obs.Recorder
	log *slog.Logger

	mu          sync.Mutex
	wal         *os.File
	seq         uint64
	unsynced    int
	walBytes    int64
	degraded    bool
	degradedErr error
}

// Open opens (creating if needed) the journal in dir and replays it:
// the returned records are every intact lifecycle record, snapshot
// first, in append order. The WAL is truncated back to its last
// intact record so subsequent appends continue from a clean tail.
func Open(dir string, opt Options) (*Journal, []Record, error) {
	if dir == "" {
		return nil, nil, errors.New("durable: empty journal directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: creating journal dir: %w", err)
	}
	logger := opt.Logger
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	j := &Journal{dir: dir, opt: opt, rec: opt.Recorder, log: logger.With("component", "journal")}

	snapRecs, _, err := readLog(filepath.Join(dir, snapName), j.rec)
	if err != nil {
		return nil, nil, err
	}
	// The snapshot's meta record tells us which WAL records it already
	// absorbed (a crash between snapshot rename and WAL reset leaves
	// them behind).
	var coveredSeq uint64
	records := make([]Record, 0, len(snapRecs))
	for _, r := range snapRecs {
		if r.Type == recSnapshot {
			coveredSeq = r.Seq
			continue
		}
		records = append(records, r)
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	// Resume numbering above the snapshot's horizon, not just above the
	// live records it carries: otherwise appends after a reopen would
	// reuse sequence numbers the meta record already covers, and the
	// next replay's Seq <= coveredSeq filter would silently drop them.
	if coveredSeq > j.seq {
		j.seq = coveredSeq
	}

	walPath := filepath.Join(dir, walName)
	walRecs, goodLen, err := readLog(walPath, j.rec)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range walRecs {
		if r.Seq <= coveredSeq {
			continue
		}
		records = append(records, r)
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	// Cut any damaged tail off before reopening for append.
	if fi, statErr := os.Stat(walPath); statErr == nil && fi.Size() > goodLen {
		if err := os.Truncate(walPath, goodLen); err != nil {
			return nil, nil, fmt.Errorf("durable: truncating damaged WAL tail: %w", err)
		}
		j.count("journal_tail_truncations_total")
		j.log.Warn("truncated damaged WAL tail", "bytes_dropped", fi.Size()-goodLen)
	}
	j.wal, err = os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: opening WAL: %w", err)
	}
	j.walBytes = goodLen
	j.count("journal_opens_total")
	if n := len(records); n > 0 {
		j.add("journal_replayed_records_total", int64(n))
	}
	return j, records, nil
}

// readLog parses one CRC-guarded JSONL file, tolerating a damaged
// tail: it returns every intact record plus the byte offset where the
// intact prefix ends. A missing file is an empty log.
func readLog(path string, rec *obs.Recorder) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("durable: reading %s: %w", filepath.Base(path), err)
	}
	var records []Record
	var good int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Incomplete final line: a torn write. Keep the prefix.
			break
		}
		line := data[off : off+nl]
		r, ok := parseLine(line)
		if !ok {
			// Checksum or format damage. Nothing after a damaged
			// record can be trusted to be ordered, so stop here.
			if rec != nil {
				rec.Counter("journal_corrupt_records_total").Inc()
			}
			break
		}
		records = append(records, r)
		off += nl + 1
		good = int64(off)
	}
	return records, good, nil
}

// parseLine decodes one "crc8hex json" line, verifying the checksum.
func parseLine(line []byte) (Record, bool) {
	var r Record
	if len(line) < 10 || line[8] != ' ' {
		return r, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return r, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != sum {
		return r, false
	}
	if err := json.Unmarshal(body, &r); err != nil {
		return r, false
	}
	return r, true
}

// encodeLine renders a record as its CRC-guarded journal line.
func encodeLine(r Record) ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(body)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(body))...)
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// Append journals one record, assigning its sequence number and
// timestamp, and fsyncs per the sync policy. After a disk failure the
// journal is degraded and Append returns ErrDegraded without touching
// the disk; it never blocks on a broken device.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return ErrDegraded
	}
	j.seq++
	r.Seq = j.seq
	if r.Time.IsZero() {
		r.Time = time.Now().UTC()
	}
	line, err := encodeLine(r)
	if err != nil {
		return fmt.Errorf("durable: encoding record: %w", err)
	}
	if err := j.faultLocked("append", j.wal.Name()); err != nil {
		return j.degradeLocked(err)
	}
	if _, err := j.wal.Write(line); err != nil {
		return j.degradeLocked(err)
	}
	j.walBytes += int64(len(line))
	j.count("journal_appends_total")
	j.unsynced++
	every := j.opt.SyncEvery
	if every == 0 {
		every = 1
	}
	if every > 0 && j.unsynced >= every {
		if err := j.syncLocked(); err != nil {
			return j.degradeLocked(err)
		}
	}
	return nil
}

// syncLocked fsyncs the WAL; caller holds j.mu.
func (j *Journal) syncLocked() error {
	if err := j.faultLocked("fsync", j.wal.Name()); err != nil {
		return err
	}
	if err := j.wal.Sync(); err != nil {
		return err
	}
	j.unsynced = 0
	j.count("journal_fsyncs_total")
	return nil
}

// Compact atomically replaces the snapshot with the live record set
// and resets the WAL. Callers pass the minimal records that
// reconstruct current state (typically one accepted plus one terminal
// record per retained scan); sequence numbers are reassigned.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return ErrDegraded
	}
	// The meta record pins the sequence horizon: every WAL record with
	// Seq <= the horizon is absorbed by this snapshot, and a reopened
	// journal resumes numbering above it. Live records get fresh
	// sequence numbers under that horizon (the max() keeps the horizon
	// sound even if the caller hands us more records than were ever
	// journaled).
	horizon := j.seq
	if n := uint64(len(live)); n > horizon {
		horizon = n
	}
	recs := make([]Record, 0, len(live)+1)
	recs = append(recs, Record{Seq: horizon, Type: recSnapshot, Time: time.Now().UTC()})
	for i, r := range live {
		r.Seq = uint64(i + 1)
		if r.Time.IsZero() {
			r.Time = time.Now().UTC()
		}
		recs = append(recs, r)
	}
	tmp := filepath.Join(j.dir, snapName+".tmp")
	if err := j.writeSnapshotLocked(tmp, recs); err != nil {
		return j.degradeLocked(err)
	}
	if err := j.faultLocked("rename", tmp); err != nil {
		return j.degradeLocked(err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		return j.degradeLocked(err)
	}
	// Make the rename durable before touching the WAL: if the truncate
	// persisted while the rename did not, power loss would leave an
	// empty WAL beside the stale snapshot — the whole journal gone.
	if err := j.syncDirLocked(); err != nil {
		return j.degradeLocked(err)
	}
	if err := j.wal.Truncate(0); err != nil {
		return j.degradeLocked(err)
	}
	if _, err := j.wal.Seek(0, 0); err != nil {
		return j.degradeLocked(err)
	}
	if err := j.syncLocked(); err != nil {
		return j.degradeLocked(err)
	}
	j.seq = horizon
	j.walBytes = 0
	j.count("journal_compactions_total")
	return nil
}

// syncDirLocked fsyncs the journal directory, making the snapshot
// rename (a directory-metadata operation) durable; caller holds j.mu.
func (j *Journal) syncDirLocked() error {
	if err := j.faultLocked("syncdir", j.dir); err != nil {
		return err
	}
	d, err := os.Open(j.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeSnapshotLocked writes and fsyncs one snapshot file.
func (j *Journal) writeSnapshotLocked(path string, recs []Record) error {
	if err := j.faultLocked("snapshot", path); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for _, r := range recs {
		line, err := encodeLine(r)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(line); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// faultLocked consults the test-only disk fault hook.
func (j *Journal) faultLocked(op, path string) error {
	if hook := govern.IOFaultHookForTesting; hook != nil {
		return hook(op, path)
	}
	return nil
}

// degradeLocked flips the journal to in-memory mode on its first disk
// failure; caller holds j.mu. The triggering error is returned so the
// caller can log it.
func (j *Journal) degradeLocked(err error) error {
	j.count("journal_append_errors_total")
	if !j.degraded {
		j.degraded = true
		j.degradedErr = err
		j.count("journal_degraded_events_total")
		j.wal.Close()
		j.log.Error("journal degraded to in-memory mode", "error", err.Error())
	}
	return fmt.Errorf("durable: journal degraded: %w", err)
}

// Degraded reports whether a disk failure has flipped the journal to
// in-memory mode (and with which error).
func (j *Journal) Degraded() (bool, error) {
	if j == nil {
		return false, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded, j.degradedErr
}

// WALBytes returns the current WAL size, the signal callers use to
// decide when to Compact.
func (j *Journal) WALBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.walBytes
}

// Close fsyncs and closes the WAL. The journal must not be used after.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return nil
	}
	if j.unsynced > 0 && j.opt.SyncEvery >= 0 {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	return j.wal.Close()
}

func (j *Journal) count(name string) { j.add(name, 1) }

func (j *Journal) add(name string, n int64) {
	if j.rec != nil {
		j.rec.Counter(name).Add(n)
	}
}

// JobState is one scan's folded journal state: the latest
// lifecycle-determining record plus the bookkeeping replay needs.
type JobState struct {
	// ScanID identifies the scan across records.
	ScanID string
	// Phase is the scan's current lifecycle position: RecCompleted and
	// RecQuarantined are settled; anything else means the scan is still
	// owed an execution and must be resubmitted.
	Phase RecordType
	// Attempts is how many attempts have already failed (the count of
	// attempt_failed records since the last accepted), so a resubmitted
	// job resumes its retry budget instead of resetting it.
	Attempts int
	// Accepted is the submission record (payload: the target).
	Accepted Record
	// Final is the completed or quarantined record when settled
	// (payload: the persisted result, if any).
	Final *Record
}

// Settled reports whether the scan needs no further execution.
func (s *JobState) Settled() bool {
	return s.Phase == RecCompleted || s.Phase == RecQuarantined
}

// Fold collapses a replayed record stream into per-scan states, in
// first-accepted order. A fresh accepted record after a terminal one
// (the manual retry path) re-opens the scan with a reset attempt
// budget. Records for scans with no accepted record (their acceptance
// fell in a lost tail) are dropped: there is nothing to resubmit.
func Fold(records []Record) []*JobState {
	byID := make(map[string]*JobState)
	var order []*JobState
	for _, r := range records {
		switch r.Type {
		case RecAccepted:
			st, ok := byID[r.ScanID]
			if !ok {
				st = &JobState{ScanID: r.ScanID}
				byID[r.ScanID] = st
				order = append(order, st)
			}
			st.Phase = RecAccepted
			st.Attempts = 0
			st.Accepted = r
			st.Final = nil
		case RecStarted, RecAttemptFailed, RecCompleted, RecQuarantined:
			st, ok := byID[r.ScanID]
			if !ok {
				continue
			}
			st.Phase = r.Type
			if r.Type == RecAttemptFailed {
				st.Attempts = r.Attempt
			}
			if r.Type == RecCompleted || r.Type == RecQuarantined {
				rr := r
				st.Final = &rr
			}
		}
	}
	return order
}
