package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/govern"
	"repro/internal/obs"
)

// openT opens a journal in dir, failing the test on error.
func openT(t *testing.T, dir string, opt Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, recs := openT(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	payload, _ := json.Marshal(map[string]string{"name": "plugin-a"})
	appends := []Record{
		{Type: RecAccepted, ScanID: "s1", Payload: payload},
		{Type: RecStarted, ScanID: "s1", Attempt: 1},
		{Type: RecAttemptFailed, ScanID: "s1", Attempt: 1, Error: "deadline", BackoffMS: 100},
		{Type: RecStarted, ScanID: "s1", Attempt: 2},
		{Type: RecCompleted, ScanID: "s1", Payload: payload},
		{Type: RecAccepted, ScanID: "s2", Payload: payload},
	}
	for i, r := range appends {
		if err := j.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, got := openT(t, dir, Options{})
	defer j2.Close()
	if len(got) != len(appends) {
		t.Fatalf("replayed %d records, want %d", len(got), len(appends))
	}
	for i, r := range got {
		if r.Type != appends[i].Type || r.ScanID != appends[i].ScanID ||
			r.Attempt != appends[i].Attempt || r.Error != appends[i].Error {
			t.Errorf("record %d = %+v, want %+v", i, r, appends[i])
		}
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
		if r.Time.IsZero() {
			t.Errorf("record %d has zero timestamp", i)
		}
	}
	if string(got[0].Payload) != string(payload) {
		t.Errorf("payload round trip = %s, want %s", got[0].Payload, payload)
	}

	// Sequence numbering continues past a reopen.
	if err := j2.Append(Record{Type: RecStarted, ScanID: "s2", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	_, got2, err := Open(t.TempDir(), Options{})
	if err != nil || len(got2) != 0 {
		t.Fatalf("fresh dir not empty: %d records, err %v", len(got2), err)
	}
}

func TestTruncatedTailTolerated(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := j.Append(Record{Type: RecAccepted, ScanID: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear the final record mid-line, as a crash mid-write would.
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7]
	if err := os.WriteFile(wal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	j2, got := openT(t, dir, Options{Recorder: rec})
	if len(got) != 4 {
		t.Fatalf("replayed %d records after torn tail, want 4", len(got))
	}
	// The WAL must have been cut back to the intact prefix so new
	// appends don't interleave with garbage.
	if err := j2.Append(Record{Type: RecAccepted, ScanID: "s9"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, got3 := openT(t, dir, Options{})
	defer j3.Close()
	if len(got3) != 5 || got3[4].ScanID != "s9" {
		t.Fatalf("after tail repair replayed %v", got3)
	}
	if n := rec.Snapshot().Counters["journal_tail_truncations_total"]; n != 1 {
		t.Errorf("journal_tail_truncations_total = %d, want 1", n)
	}
}

func TestCorruptRecordStopsReplayAtPrefix(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := j.Append(Record{Type: RecAccepted, ScanID: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip one byte inside the second record's JSON: its checksum no
	// longer matches, so replay must stop after record one.
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"s1"`, `"sX"`, 1)
	if err := os.WriteFile(wal, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	j2, got := openT(t, dir, Options{Recorder: rec})
	defer j2.Close()
	if len(got) != 1 || got[0].ScanID != "s0" {
		t.Fatalf("replayed %v, want just s0", got)
	}
	if n := rec.Snapshot().Counters["journal_corrupt_records_total"]; n != 1 {
		t.Errorf("journal_corrupt_records_total = %d, want 1", n)
	}
}

func TestCompactionShrinksWALAndPreservesState(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("s%d", i)
		j.Append(Record{Type: RecAccepted, ScanID: id})
		j.Append(Record{Type: RecStarted, ScanID: id, Attempt: 1})
		j.Append(Record{Type: RecCompleted, ScanID: id})
	}
	if j.WALBytes() == 0 {
		t.Fatal("WAL empty before compaction")
	}
	// Live state: two records per scan instead of three.
	var live []Record
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("s%d", i)
		live = append(live,
			Record{Type: RecAccepted, ScanID: id},
			Record{Type: RecCompleted, ScanID: id})
	}
	if err := j.Compact(live); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if j.WALBytes() != 0 {
		t.Fatalf("WAL bytes after compaction = %d, want 0", j.WALBytes())
	}
	// Post-compaction appends land in the WAL and replay after it.
	if err := j.Append(Record{Type: RecAccepted, ScanID: "fresh"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, got, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	states := Fold(got)
	if len(states) != 21 {
		t.Fatalf("folded %d scans, want 21", len(states))
	}
	settled := 0
	for _, st := range states {
		if st.Settled() {
			settled++
		}
	}
	if settled != 20 {
		t.Errorf("settled = %d, want 20", settled)
	}
}

func TestAppendsAfterCompactedReopenSurviveNextReplay(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	j.Append(Record{Type: RecAccepted, ScanID: "s1"})
	j.Append(Record{Type: RecCompleted, ScanID: "s1"})
	if err := j.Compact([]Record{
		{Type: RecAccepted, ScanID: "s1"},
		{Type: RecCompleted, ScanID: "s1"},
	}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	j.Close()

	// Clean restart from the compacted journal, then new work: the
	// reopened journal must number the append above the snapshot's
	// horizon, or the next replay's stale-WAL filter discards it.
	j2, recs := openT(t, dir, Options{})
	if len(recs) != 2 {
		t.Fatalf("replayed %d records from snapshot, want 2", len(recs))
	}
	if err := j2.Append(Record{Type: RecAccepted, ScanID: "s2"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	// The crash: reopen again and fold. s2 must still be owed work.
	j3, recs3 := openT(t, dir, Options{})
	defer j3.Close()
	states := Fold(recs3)
	if len(states) != 2 {
		t.Fatalf("folded %d scans after compacted-reopen append, want 2 (post-compaction append lost)", len(states))
	}
	s2 := states[1]
	if s2.ScanID != "s2" || s2.Settled() {
		t.Errorf("scan s2 = %+v, want unsettled accepted scan", s2)
	}
	// And the WAL append carries a sequence number above the snapshot's
	// horizon, so it survives the Seq <= coveredSeq filter.
	last := recs3[len(recs3)-1]
	for _, r := range recs3[:len(recs3)-1] {
		if r.Seq >= last.Seq {
			t.Errorf("post-compaction append seq %d not above snapshot record seq %d", last.Seq, r.Seq)
		}
	}
}

func TestSnapshotAbsorbsStaleWALRecords(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	j.Append(Record{Type: RecAccepted, ScanID: "s1"})
	j.Append(Record{Type: RecCompleted, ScanID: "s1"})
	// Simulate a crash between the snapshot rename and the WAL reset:
	// compact, then restore the pre-compaction WAL contents.
	preWAL, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact([]Record{
		{Type: RecAccepted, ScanID: "s1"},
		{Type: RecCompleted, ScanID: "s1"},
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.WriteFile(filepath.Join(dir, walName), preWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	// Replay must not double-apply: the stale accepted record would
	// otherwise re-open the completed scan.
	j2, got := openT(t, dir, Options{})
	defer j2.Close()
	states := Fold(got)
	if len(states) != 1 {
		t.Fatalf("folded %d scans, want 1", len(states))
	}
	if !states[0].Settled() {
		t.Errorf("scan phase = %s, want completed (stale WAL record re-opened it)", states[0].Phase)
	}
}

func TestFoldLifecycle(t *testing.T) {
	t.Parallel()
	states := Fold([]Record{
		{Type: RecAccepted, ScanID: "a"},
		{Type: RecAccepted, ScanID: "b"},
		{Type: RecStarted, ScanID: "a", Attempt: 1},
		{Type: RecAttemptFailed, ScanID: "a", Attempt: 1, Error: "deadline"},
		{Type: RecStarted, ScanID: "b", Attempt: 1},
		{Type: RecStarted, ScanID: "a", Attempt: 2},
		{Type: RecAttemptFailed, ScanID: "a", Attempt: 2, Error: "deadline"},
		{Type: RecQuarantined, ScanID: "a", Error: "deadline"},
		{Type: RecCompleted, ScanID: "b"},
		// Orphan records (acceptance lost in a damaged tail) are dropped.
		{Type: RecStarted, ScanID: "ghost", Attempt: 1},
		// Manual retry re-opens a quarantined scan with a fresh budget.
		{Type: RecAccepted, ScanID: "a"},
	})
	if len(states) != 2 {
		t.Fatalf("folded %d scans, want 2", len(states))
	}
	a, b := states[0], states[1]
	if a.ScanID != "a" || b.ScanID != "b" {
		t.Fatalf("fold order = %s, %s", a.ScanID, b.ScanID)
	}
	if a.Phase != RecAccepted || a.Attempts != 0 || a.Settled() {
		t.Errorf("retried scan a: phase=%s attempts=%d", a.Phase, a.Attempts)
	}
	if b.Phase != RecCompleted || !b.Settled() {
		t.Errorf("scan b: phase=%s", b.Phase)
	}

	// Without the trailing re-accept, a is quarantined with 2 attempts.
	states = Fold([]Record{
		{Type: RecAccepted, ScanID: "a"},
		{Type: RecAttemptFailed, ScanID: "a", Attempt: 1},
		{Type: RecAttemptFailed, ScanID: "a", Attempt: 2},
		{Type: RecQuarantined, ScanID: "a"},
	})
	if states[0].Phase != RecQuarantined || states[0].Final == nil {
		t.Errorf("quarantined fold: %+v", states[0])
	}

	// An in-flight scan resumes its attempt count.
	states = Fold([]Record{
		{Type: RecAccepted, ScanID: "a"},
		{Type: RecAttemptFailed, ScanID: "a", Attempt: 1},
		{Type: RecStarted, ScanID: "a", Attempt: 2},
	})
	if states[0].Settled() || states[0].Attempts != 1 {
		t.Errorf("in-flight fold: %+v", states[0])
	}
}

func TestDiskFailureDegradesWithoutBlocking(t *testing.T) {
	// Not parallel: installs the global fault hook.
	dir := t.TempDir()
	rec := obs.NewRecorder()
	j, _ := openT(t, dir, Options{Recorder: rec})
	if err := j.Append(Record{Type: RecAccepted, ScanID: "s1"}); err != nil {
		t.Fatal(err)
	}

	failing := true
	govern.IOFaultHookForTesting = func(op, path string) error {
		if failing {
			return errors.New("injected disk failure")
		}
		return nil
	}
	defer func() { govern.IOFaultHookForTesting = nil }()

	err := j.Append(Record{Type: RecStarted, ScanID: "s1", Attempt: 1})
	if err == nil || !strings.Contains(err.Error(), "injected disk failure") {
		t.Fatalf("append during fault = %v, want injected failure", err)
	}
	if deg, _ := j.Degraded(); !deg {
		t.Fatal("journal not degraded after disk failure")
	}
	// Later appends fail fast with ErrDegraded even once the disk
	// recovers: degraded is sticky for the journal's lifetime.
	failing = false
	if err := j.Append(Record{Type: RecCompleted, ScanID: "s1"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after degrade = %v, want ErrDegraded", err)
	}
	if err := j.Compact(nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("compact after degrade = %v, want ErrDegraded", err)
	}
	snap := rec.Snapshot()
	if snap.Counters["journal_degraded_events_total"] != 1 {
		t.Errorf("journal_degraded_events_total = %d, want 1",
			snap.Counters["journal_degraded_events_total"])
	}

	// The record accepted before the failure survived.
	_, got, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ScanID != "s1" {
		t.Fatalf("post-degrade replay = %v", got)
	}
}

func TestSyncEveryBatchesFsyncs(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	j, _ := openT(t, t.TempDir(), Options{SyncEvery: 4, Recorder: rec})
	for i := 0; i < 10; i++ {
		if err := j.Append(Record{Type: RecAccepted, ScanID: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := rec.Snapshot().Counters["journal_fsyncs_total"]; n != 2 {
		t.Errorf("journal_fsyncs_total = %d after 10 appends at SyncEvery=4, want 2", n)
	}
	// Close flushes the remainder.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if n := rec.Snapshot().Counters["journal_fsyncs_total"]; n != 3 {
		t.Errorf("journal_fsyncs_total after close = %d, want 3", n)
	}
}
