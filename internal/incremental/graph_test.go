package incremental

import (
	"testing"

	"repro/internal/phpast"
	"repro/internal/phpparse"
)

// parseAll parses a path→source map.
func parseAll(srcs map[string]string) map[string]*phpast.File {
	out := make(map[string]*phpast.File, len(srcs))
	for p, s := range srcs {
		out[p] = phpparse.Parse(p, s)
	}
	return out
}

// components builds the graph and returns its components.
func components(t *testing.T, srcs map[string]string, isSuper func(string) bool) [][]string {
	t.Helper()
	return BuildGraph(parseAll(srcs), isSuper).Components()
}

// wantComponents asserts the exact component partition.
func wantComponents(t *testing.T, got [][]string, want ...[]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d components %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("component %d: got %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("component %d: got %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestGraphIndependentFiles(t *testing.T) {
	got := components(t, map[string]string{
		"a.php": `<?php function a_fn($x) { echo $x; } $a = $_GET['a']; a_fn($a);`,
		"b.php": `<?php function b_fn($x) { echo $x; } $b = $_GET['b']; b_fn($b);`,
	}, nil)
	wantComponents(t, got, []string{"a.php"}, []string{"b.php"})
}

func TestGraphCrossFileCall(t *testing.T) {
	got := components(t, map[string]string{
		"lib.php":   `<?php function render($x) { echo $x; }`,
		"main.php":  `<?php render($_GET['q']);`,
		"other.php": `<?php echo 'static';`,
	}, nil)
	wantComponents(t, got, []string{"lib.php", "main.php"}, []string{"other.php"})
}

func TestGraphCallToUndeclaredBuiltinDoesNotLink(t *testing.T) {
	// Two files calling the same built-in must not be glued together:
	// only declared resources create edges.
	got := components(t, map[string]string{
		"a.php": `<?php echo trim($_GET['a']);`,
		"b.php": `<?php echo trim($_GET['b']);`,
	}, nil)
	wantComponents(t, got, []string{"a.php"}, []string{"b.php"})
}

func TestGraphInclude(t *testing.T) {
	got := components(t, map[string]string{
		"plugin.php":      `<?php include 'inc/helpers.php'; helper_echo($_GET['x']);`,
		"inc/helpers.php": `<?php function helper_echo($v) { echo $v; }`,
		"alone.php":       `<?php echo 1;`,
	}, nil)
	wantComponents(t, got, []string{"alone.php"}, []string{"inc/helpers.php", "plugin.php"})
}

func TestGraphIncludeBasenameSuffixLinksAllCandidates(t *testing.T) {
	// dirname(__FILE__) . '/util.php' style includes resolve by basename
	// suffix over the whole file list; every candidate must link.
	got := components(t, map[string]string{
		"main.php":      `<?php include dirname(__FILE__) . '/util.php';`,
		"a/util.php":    `<?php $u1 = 1;`,
		"b/util.php":    `<?php $u2 = 2;`,
		"unrelated.php": `<?php $u3 = 3;`,
	}, nil)
	wantComponents(t, got,
		[]string{"a/util.php", "b/util.php", "main.php"},
		[]string{"unrelated.php"})
}

func TestGraphSharedGlobal(t *testing.T) {
	isSuper := func(n string) bool { return n == "_GET" }
	got := components(t, map[string]string{
		"writer.php":     `<?php $shared = $_GET['x'];`,
		"reader.php":     `<?php echo $shared;`,
		"readonly_a.php": `<?php echo $never_written_a;`,
		"readonly_b.php": `<?php echo $never_written_b;`,
	}, isSuper)
	// writer+reader share $shared; the two read-only files read globals
	// nobody writes and stay independent.
	wantComponents(t, got,
		[]string{"reader.php", "writer.php"},
		[]string{"readonly_a.php"}, []string{"readonly_b.php"})
}

func TestGraphSuperglobalsDoNotLink(t *testing.T) {
	isSuper := func(n string) bool { return n == "_GET" }
	got := components(t, map[string]string{
		"a.php": `<?php $_GET['k'] = 'x'; echo $_GET['k'];`,
		"b.php": `<?php echo $_GET['k'];`,
	}, isSuper)
	wantComponents(t, got, []string{"a.php"}, []string{"b.php"})
}

func TestGraphGlobalKeywordInFunction(t *testing.T) {
	got := components(t, map[string]string{
		"def.php": `<?php function poison() { global $g; $g = $_GET['x']; }`,
		"use.php": `<?php echo $g;`,
	}, nil)
	wantComponents(t, got, []string{"def.php", "use.php"})
}

func TestGraphGLOBALSArray(t *testing.T) {
	got := components(t, map[string]string{
		"w.php": `<?php function f() { $GLOBALS['cfg'] = $_POST['c']; }`,
		"r.php": `<?php echo $cfg;`,
	}, nil)
	wantComponents(t, got, []string{"r.php", "w.php"})
}

func TestGraphClassAndMethodEdges(t *testing.T) {
	got := components(t, map[string]string{
		"class.php":      `<?php class Widget { var $d; function show() { echo $this->d; } }`,
		"user.php":       `<?php $w = new Widget(); $w->show();`,
		"methodname.php": `<?php $x->show();`, // unresolved receiver, same method name
		"free.php":       `<?php $z = 1;`,
	}, nil)
	// class.php+user.php via the class; methodname.php via the method
	// name (calling ->show() anywhere suppresses the uncalled pass for
	// every method named show).
	wantComponents(t, got,
		[]string{"class.php", "methodname.php", "user.php"},
		[]string{"free.php"})
}

func TestGraphExtends(t *testing.T) {
	got := components(t, map[string]string{
		"base.php":  `<?php class BaseW { var $v; }`,
		"child.php": `<?php class ChildW extends BaseW { }`,
		"free.php":  `<?php $z = 1;`,
	}, nil)
	wantComponents(t, got, []string{"base.php", "child.php"}, []string{"free.php"})
}

func TestGraphDuplicateDeclarationsLink(t *testing.T) {
	got := components(t, map[string]string{
		"one.php": `<?php function dup_fn() { return 1; }`,
		"two.php": `<?php function dup_fn() { return 2; }`,
	}, nil)
	wantComponents(t, got, []string{"one.php", "two.php"})
}

func TestGraphCallableDispatchLiteral(t *testing.T) {
	got := components(t, map[string]string{
		"cb.php":   `<?php function on_save($v) { echo $v; }`,
		"main.php": `<?php call_user_func('On_Save', $_GET['v']);`,
	}, nil)
	wantComponents(t, got, []string{"cb.php", "main.php"})
}

func TestGraphPHP4Constructor(t *testing.T) {
	// "new legacy" marks both a method and a function named "legacy" as
	// called; the declaring file must link to the instantiating file.
	got := components(t, map[string]string{
		"fn.php":  `<?php function legacy() { echo $_GET['x']; }`,
		"new.php": `<?php $o = new legacy();`,
	}, nil)
	wantComponents(t, got, []string{"fn.php", "new.php"})
}

func TestGraphClosureCaptureReadsGlobal(t *testing.T) {
	got := components(t, map[string]string{
		"writer.php":  `<?php $captured = $_GET['c'];`,
		"closure.php": `<?php $fn = function () use ($captured) { echo $captured; };`,
	}, nil)
	wantComponents(t, got, []string{"closure.php", "writer.php"})
}

func TestGraphClosureBodyIsNotGlobalScope(t *testing.T) {
	// Writes inside a closure body land in the closure's own scope;
	// they must not create a global edge.
	got := components(t, map[string]string{
		"closure.php": `<?php $fn = function () { $local_only = 1; };`,
		"reader.php":  `<?php echo $local_only;`,
	}, nil)
	wantComponents(t, got, []string{"closure.php"}, []string{"reader.php"})
}
