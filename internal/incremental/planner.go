package incremental

import (
	"sort"

	"repro/internal/analyzer"
	"repro/internal/phpast"
	"repro/internal/phplex"
	"repro/internal/phpparse"
	"repro/internal/taint"
)

// Plan is the partition of one snapshot into files whose artifacts are
// replayed and files that must be re-analyzed, plus everything the
// executor needs to seed the engine and write fresh artifacts back.
type Plan struct {
	// Reuse and Analyze partition the target's paths (both sorted).
	Reuse   []string
	Analyze []string

	// Components / ReusedComponents count dependency components.
	Components       int
	ReusedComponents int

	// Keys maps every path to its artifact key (component-closure
	// addressed); Hashes maps every path to its content hash.
	Keys   map[string]string
	Hashes map[string]string

	// Seed is the engine input: replayed results for reused files and
	// pre-parsed ASTs for every file.
	Seed *taint.Seed

	// TimeSavedSeconds sums the recorded analysis cost of the reused
	// files (an estimate: each artifact carries its file's share of the
	// scan that produced it).
	TimeSavedSeconds float64

	// Invalidated counts re-analyzed files that had an artifact from an
	// earlier scan under a different component hash — dependency-aware
	// invalidation at work, as opposed to files never seen before.
	Invalidated int
}

// planFingerprint pins everything an artifact's validity depends on
// besides file content: the caller's tool/config fingerprint plus the
// lexer and parser model versions.
func planFingerprint(fingerprint string) string {
	return fingerprint + "|" + phplex.Version + "|" + phpparse.Version
}

// BuildPlan hashes and parses the target (through the store's AST
// cache), builds the dependency graph, and partitions the components:
// a component whose every member has a stored artifact under the
// current component hash is reused whole; any other component is
// re-analyzed whole. Reusing a file therefore requires that nothing it
// could interact with has changed — a changed file transitively
// invalidates its dependents because their component hash changes.
func BuildPlan(store *Store, eng *taint.Engine, fingerprint string, target *analyzer.Target) *Plan {
	p := &Plan{
		Keys:   make(map[string]string, len(target.Files)),
		Hashes: make(map[string]string, len(target.Files)),
		Seed: &taint.Seed{
			Skip:   make(map[string]*taint.FileResult),
			Parsed: make(map[string]*phpast.File, len(target.Files)),
		},
	}
	fp := planFingerprint(fingerprint + "|" + eng.OptionsFingerprint())

	files := make(map[string]*phpast.File, len(target.Files))
	for _, sf := range target.Files {
		p.Hashes[sf.Path] = HashFile(sf.Content)
		f, ok := store.AST(sf.Path, sf.Content)
		if !ok {
			f = phpparse.Parse(sf.Path, sf.Content)
			store.PutAST(sf.Path, sf.Content, f)
		}
		files[sf.Path] = f
		p.Seed.Parsed[sf.Path] = f
	}

	g := BuildGraph(files, eng.IsSuperglobal)
	comps := g.Components()
	p.Components = len(comps)

	for _, members := range comps {
		// The component hash covers the fingerprint and every member's
		// path and content, so any change anywhere in the component
		// yields fresh keys for all of its files.
		fields := make([]string, 0, 2*len(members)+1)
		fields = append(fields, fp)
		for _, m := range members {
			fields = append(fields, m, p.Hashes[m])
		}
		compHash := hashFields(fields...)

		arts := make([]*Artifact, len(members))
		complete := true
		for i, m := range members {
			key := hashFields("artifact", compHash, m)
			p.Keys[m] = key
			if a, ok := store.Artifact(key); ok && a.Result != nil {
				arts[i] = a
			} else {
				complete = false
			}
		}
		if complete {
			p.ReusedComponents++
			for i, m := range members {
				p.Reuse = append(p.Reuse, m)
				p.Seed.Skip[m] = arts[i].Result
				p.TimeSavedSeconds += arts[i].AnalysisSeconds
			}
			continue
		}
		for _, m := range members {
			p.Analyze = append(p.Analyze, m)
			if last, ok := store.LastKey(m); ok && last != p.Keys[m] {
				p.Invalidated++
			}
		}
	}
	sort.Strings(p.Reuse)
	sort.Strings(p.Analyze)
	return p
}
