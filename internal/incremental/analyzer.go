package incremental

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analyzer"
	"repro/internal/obs"
	"repro/internal/taint"
)

// Report summarizes one incremental scan's reuse.
type Report struct {
	TotalFiles       int     `json:"total_files"`
	ReusedFiles      int     `json:"reused_files"`
	AnalyzedFiles    int     `json:"analyzed_files"`
	Components       int     `json:"components"`
	ReusedComponents int     `json:"reused_components"`
	InvalidatedFiles int     `json:"invalidated_files"`
	ReuseRatio       float64 `json:"reuse_ratio"`
	TimeSavedSeconds float64 `json:"time_saved_seconds"`
}

// Analyzer wraps a taint engine with artifact reuse: each scan plans a
// reuse/re-analyze partition against the store, seeds the engine with
// the reused files' recorded outcomes, and writes fresh artifacts back.
// Warm results are byte-identical to a cold Engine.Analyze of the same
// target (the differential test in this package holds that line).
//
// The wrapper is safe for concurrent use if its store is; the recorder
// (which may be nil) receives the inc_files_{reused,analyzed}_total,
// inc_components_reused_total and inc_files_invalidated_total counters
// and the inc_reuse_ratio / inc_time_saved_seconds histograms.
type Analyzer struct {
	eng         *taint.Engine
	store       *Store
	fingerprint string
	rec         *obs.Recorder
}

// Compile-time checks that Analyzer implements the shared interfaces.
var _ analyzer.Analyzer = (*Analyzer)(nil)

// New returns an incremental analyzer over eng and store. fingerprint
// must identify the tool build and configuration profile (the engine's
// own options are folded in automatically); artifacts never flow
// between different fingerprints.
func New(eng *taint.Engine, store *Store, fingerprint string, rec *obs.Recorder) *Analyzer {
	return &Analyzer{eng: eng, store: store, fingerprint: fingerprint, rec: rec}
}

// Name returns the wrapped engine's report name: incremental execution
// is a scheduling strategy, not a different tool.
func (a *Analyzer) Name() string { return a.eng.Name() }

// Analyze scans target with artifact reuse.
func (a *Analyzer) Analyze(target *analyzer.Target) (*analyzer.Result, error) {
	res, _, err := a.AnalyzeWithReport(target)
	return res, err
}

// AnalyzeContext scans target with artifact reuse under a context and
// resource budgets (analyzer.ContextAnalyzer).
func (a *Analyzer) AnalyzeContext(ctx context.Context, target *analyzer.Target, opts *analyzer.ScanOptions) (*analyzer.Result, error) {
	res, _, err := a.AnalyzeWithReportContext(ctx, target, opts)
	return res, err
}

// AnalyzeWithReport scans target with artifact reuse and also returns
// the reuse report.
func (a *Analyzer) AnalyzeWithReport(target *analyzer.Target) (*analyzer.Result, *Report, error) {
	return a.AnalyzeWithReportContext(context.Background(), target, nil)
}

// AnalyzeWithReportContext is AnalyzeWithReport under a context and
// resource budgets. A cancelled scan returns the partial result with
// the error and writes nothing back; a truncated or crash-isolated
// scan exports no artifacts (the engine withholds them), so the store
// never receives partial per-file state.
func (a *Analyzer) AnalyzeWithReportContext(ctx context.Context, target *analyzer.Target, opts *analyzer.ScanOptions) (*analyzer.Result, *Report, error) {
	if target == nil {
		return nil, nil, fmt.Errorf("incremental: nil target")
	}
	plan := BuildPlan(a.store, a.eng, a.fingerprint, target)

	start := time.Now()
	res, arts, err := a.eng.AnalyzeIncrementalContext(ctx, target, opts, plan.Seed)
	if err != nil {
		return res, nil, err
	}
	elapsed := time.Since(start).Seconds()

	// Write back one artifact per analyzed file. The per-file cost is
	// the scan's analysis time split evenly across the analyzed files —
	// an estimate that makes the reuse reports' "time saved" additive.
	perFile := 0.0
	if len(plan.Analyze) > 0 {
		perFile = elapsed / float64(len(plan.Analyze))
	}
	for _, path := range plan.Analyze {
		fr := arts[path]
		if fr == nil {
			continue
		}
		a.store.Put(plan.Keys[path], &Artifact{
			Path:            path,
			FileHash:        plan.Hashes[path],
			ComponentHash:   plan.Keys[path],
			AnalysisSeconds: perFile,
			Result:          fr,
		})
	}

	rep := &Report{
		TotalFiles:       len(target.Files),
		ReusedFiles:      len(plan.Reuse),
		AnalyzedFiles:    len(plan.Analyze),
		Components:       plan.Components,
		ReusedComponents: plan.ReusedComponents,
		InvalidatedFiles: plan.Invalidated,
		TimeSavedSeconds: plan.TimeSavedSeconds,
	}
	if rep.TotalFiles > 0 {
		rep.ReuseRatio = float64(rep.ReusedFiles) / float64(rep.TotalFiles)
	}
	a.rec.Counter("inc_files_reused_total").Add(int64(rep.ReusedFiles))
	a.rec.Counter("inc_files_analyzed_total").Add(int64(rep.AnalyzedFiles))
	a.rec.Counter("inc_components_reused_total").Add(int64(rep.ReusedComponents))
	a.rec.Counter("inc_files_invalidated_total").Add(int64(rep.InvalidatedFiles))
	a.rec.Observe("inc_reuse_ratio", rep.ReuseRatio)
	a.rec.Observe("inc_time_saved_seconds", rep.TimeSavedSeconds)
	return res, rep, nil
}
