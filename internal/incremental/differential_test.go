package incremental

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/report"
)

// TestDifferentialColdVsWarmCorpus is the incremental subsystem's
// correctness gate: for every plugin in both corpus snapshots, a warm
// scan (store populated by a full scan of the original plugin, then one
// file touched) must produce byte-identical findings AND byte-identical
// SARIF output to a cold scan of the touched plugin. Any divergence
// means a stale summary or finding was silently reused.
func TestDifferentialColdVsWarmCorpus(t *testing.T) {
	c2012, c2014 := corpus.MustGenerate()
	targets := append(append([]*analyzer.Target{}, c2012.Targets...), c2014.Targets...)

	for i, target := range targets {
		target := target
		t.Run(fmt.Sprintf("%02d_%s", i, target.Name), func(t *testing.T) {
			t.Parallel()
			eng := testEngine(t)
			store := memStore(t, nil)
			inc := New(eng, store, "diff-test", nil)

			// Populate the store from the original plugin version.
			if _, _, err := inc.AnalyzeWithReport(target); err != nil {
				t.Fatalf("baseline scan: %v", err)
			}

			// Touch one file — the canonical new-plugin-version edit.
			dirty := Touch(target, len(target.Files)/2, 1)

			warm, rep, err := inc.AnalyzeWithReport(dirty)
			if err != nil {
				t.Fatalf("warm scan: %v", err)
			}
			cold, err := eng.Analyze(dirty)
			if err != nil {
				t.Fatalf("cold scan: %v", err)
			}

			warmJSON, err := json.Marshal(warm)
			if err != nil {
				t.Fatal(err)
			}
			coldJSON, err := json.Marshal(cold)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(warmJSON, coldJSON) {
				t.Errorf("findings diverge (reused %d/%d files)",
					rep.ReusedFiles, rep.TotalFiles)
				logFirstDiff(t, warm, cold)
			}

			warmSARIF, err := report.SARIF(warm)
			if err != nil {
				t.Fatal(err)
			}
			coldSARIF, err := report.SARIF(cold)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(warmSARIF, coldSARIF) {
				t.Error("SARIF output diverges between warm and cold scan")
			}
		})
	}
}

// logFirstDiff points at the first finding-level divergence to keep
// failure output readable on large plugins.
func logFirstDiff(t *testing.T, warm, cold *analyzer.Result) {
	t.Helper()
	n := len(warm.Findings)
	if len(cold.Findings) < n {
		n = len(cold.Findings)
	}
	for i := 0; i < n; i++ {
		w, _ := json.Marshal(warm.Findings[i])
		c, _ := json.Marshal(cold.Findings[i])
		if !bytes.Equal(w, c) {
			t.Logf("finding %d:\n  warm: %s\n  cold: %s", i, w, c)
			return
		}
	}
	t.Logf("finding counts differ: warm=%d cold=%d", len(warm.Findings), len(cold.Findings))
}
