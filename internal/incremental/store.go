package incremental

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/phpast"
	"repro/internal/taint"
)

// Capacity bounds for the in-memory maps. Insertions beyond a bound are
// simply not retained (content addressing makes dropping an entry
// always safe — the next scan recomputes it), which keeps a long-lived
// daemon's memory flat without LRU bookkeeping on the scan hot path.
const (
	maxMemoryASTs      = 8192
	maxMemoryArtifacts = 16384
)

// Artifact is one file's recorded analysis outcome, addressed by the
// content of its whole dependency component.
type Artifact struct {
	// Path is the file's target-relative path.
	Path string `json:"path"`
	// FileHash is the SHA-256 of the file's content.
	FileHash string `json:"file_hash"`
	// ComponentHash identifies the dependency component (fingerprint +
	// every member path and content hash) this outcome is valid for.
	ComponentHash string `json:"component_hash"`
	// AnalysisSeconds is the file's share of its scan's analysis time,
	// used to report time saved by reuse.
	AnalysisSeconds float64 `json:"analysis_seconds"`
	// Result is the replayable per-file outcome.
	Result *taint.FileResult `json:"result"`
}

// Store is the content-addressed artifact store: parsed ASTs keyed by
// (path, content) and per-file analysis artifacts keyed by their
// component closure. It is safe for concurrent use. With a directory it
// persists artifacts as JSON (one file per key) and survives restarts;
// ASTs are memory-only. The recorder (which may be nil) receives the
// inc_{artifact,ast}_{hits,misses}_total and inc_artifacts_stored_total
// counters.
type Store struct {
	rec *obs.Recorder
	dir string

	mu        sync.Mutex
	asts      map[string]*phpast.File
	artifacts map[string]*Artifact
	// lastKey remembers the most recent artifact key stored per path, so
	// the planner can tell "invalidated" (prior artifact, different
	// component) from "never seen".
	lastKey map[string]string
}

// NewStore returns a store. dir may be empty for a memory-only store;
// otherwise it is created and used for artifact persistence.
func NewStore(dir string, rec *obs.Recorder) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("incremental: cache dir: %w", err)
		}
	}
	return &Store{
		rec:       rec,
		dir:       dir,
		asts:      make(map[string]*phpast.File),
		artifacts: make(map[string]*Artifact),
		lastKey:   make(map[string]string),
	}, nil
}

// HashFile returns the hex SHA-256 of a file's content.
func HashFile(content string) string {
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:])
}

// astKey addresses a parsed AST by path and content: the parser records
// the path inside the File, so identical content under two paths still
// parses twice.
func astKey(path, content string) string {
	return hashFields("ast", path, content)
}

// hashFields hashes length-prefixed fields so no concatenation of
// values collides with another.
func hashFields(fields ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, f := range fields {
		binary.BigEndian.PutUint64(n[:], uint64(len(f)))
		h.Write(n[:])
		h.Write([]byte(f))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// AST returns the cached parse of (path, content), if present.
func (s *Store) AST(path, content string) (*phpast.File, bool) {
	s.mu.Lock()
	f, ok := s.asts[astKey(path, content)]
	s.mu.Unlock()
	if ok {
		s.rec.Counter("inc_ast_hits_total").Inc()
	} else {
		s.rec.Counter("inc_ast_misses_total").Inc()
	}
	return f, ok
}

// PutAST caches a parsed file.
func (s *Store) PutAST(path, content string, f *phpast.File) {
	s.mu.Lock()
	if len(s.asts) < maxMemoryASTs {
		s.asts[astKey(path, content)] = f
	}
	s.mu.Unlock()
}

// Artifact returns the artifact stored under key, consulting the disk
// tier on a memory miss.
func (s *Store) Artifact(key string) (*Artifact, bool) {
	s.mu.Lock()
	a, ok := s.artifacts[key]
	s.mu.Unlock()
	if !ok && s.dir != "" {
		a = s.readDisk(key)
		if a != nil {
			ok = true
			s.mu.Lock()
			if len(s.artifacts) < maxMemoryArtifacts {
				s.artifacts[key] = a
			}
			s.mu.Unlock()
		}
	}
	if ok {
		s.rec.Counter("inc_artifact_hits_total").Inc()
	} else {
		s.rec.Counter("inc_artifact_misses_total").Inc()
	}
	return a, ok
}

// Put stores an artifact under key, write-through to disk when
// persistence is configured.
func (s *Store) Put(key string, a *Artifact) {
	if a == nil {
		return
	}
	s.mu.Lock()
	if len(s.artifacts) < maxMemoryArtifacts {
		s.artifacts[key] = a
	}
	s.lastKey[a.Path] = key
	s.mu.Unlock()
	s.rec.Counter("inc_artifacts_stored_total").Inc()
	if s.dir != "" {
		s.writeDisk(key, a)
	}
}

// LastKey returns the most recent artifact key stored for path in this
// process, if any.
func (s *Store) LastKey(path string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.lastKey[path]
	return k, ok
}

// diskPath shards artifacts by the first byte of the key to keep
// directories small.
func (s *Store) diskPath(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// readDisk loads an artifact from the disk tier; any problem (missing,
// corrupt, truncated) is treated as a miss.
func (s *Store) readDisk(key string) *Artifact {
	data, err := os.ReadFile(s.diskPath(key))
	if err != nil {
		return nil
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil || a.Result == nil {
		return nil
	}
	return &a
}

// writeDisk persists an artifact; failures are ignored (the disk tier
// is an optimization, never a correctness dependency).
func (s *Store) writeDisk(key string, a *Artifact) {
	data, err := json.Marshal(a)
	if err != nil {
		return
	}
	path := s.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	// Unique temp + rename: concurrent writers of the same key are
	// writing identical content, so whoever renames last wins safely.
	tmp, err := os.CreateTemp(filepath.Dir(path), key+".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	_ = os.Rename(tmp.Name(), path)
}
