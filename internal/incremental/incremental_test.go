package incremental

import (
	"encoding/json"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/taint"
)

// testEngine builds the default phpSAFE engine.
func testEngine(t testing.TB) *taint.Engine {
	t.Helper()
	tool, err := eval.BuildTool("phpsafe", "wordpress", eval.ToolOptions{})
	if err != nil {
		t.Fatalf("BuildTool: %v", err)
	}
	eng, ok := tool.(*taint.Engine)
	if !ok {
		t.Fatalf("BuildTool returned %T, want *taint.Engine", tool)
	}
	return eng
}

// memStore returns a memory-only store.
func memStore(t testing.TB, rec *obs.Recorder) *Store {
	t.Helper()
	s, err := NewStore("", rec)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

// resultJSON canonicalizes a result for byte comparison.
func resultJSON(t testing.TB, res *analyzer.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

func TestWarmScanIdenticalAndReuses(t *testing.T) {
	eng := testEngine(t)
	rec := obs.NewRecorder()
	store := memStore(t, rec)
	inc := New(eng, store, "test", rec)

	base := SyntheticTarget(8)
	coldRes, rep, err := inc.AnalyzeWithReport(base)
	if err != nil {
		t.Fatalf("cold scan: %v", err)
	}
	if rep.ReusedFiles != 0 || rep.AnalyzedFiles != 8 {
		t.Fatalf("cold report: %+v", rep)
	}
	if len(coldRes.Findings) == 0 {
		t.Fatal("synthetic target produced no findings")
	}

	// Unchanged rescan: everything reuses, result identical.
	warmRes, rep, err := inc.AnalyzeWithReport(base)
	if err != nil {
		t.Fatalf("warm scan: %v", err)
	}
	if rep.ReusedFiles != 8 || rep.AnalyzedFiles != 0 || rep.ReuseRatio != 1 {
		t.Fatalf("warm report: %+v", rep)
	}
	if resultJSON(t, warmRes) != resultJSON(t, coldRes) {
		t.Fatal("warm rescan result differs from cold scan")
	}

	// One-file-dirty rescan: exactly one component re-analyzed, and the
	// result matches a cold scan of the dirty target.
	dirty := Touch(base, 3, 1)
	warmDirty, rep, err := inc.AnalyzeWithReport(dirty)
	if err != nil {
		t.Fatalf("warm dirty scan: %v", err)
	}
	if rep.ReusedFiles != 7 || rep.AnalyzedFiles != 1 {
		t.Fatalf("dirty report: %+v", rep)
	}
	if rep.InvalidatedFiles != 1 {
		t.Fatalf("dirty report invalidated=%d, want 1", rep.InvalidatedFiles)
	}
	coldDirty, err := eng.Analyze(dirty)
	if err != nil {
		t.Fatalf("cold dirty scan: %v", err)
	}
	if resultJSON(t, warmDirty) != resultJSON(t, coldDirty) {
		t.Fatal("warm 1-dirty result differs from cold scan of same target")
	}

	// Metrics surfaced through obs.
	counters := rec.Snapshot().Counters
	for _, name := range []string{
		"inc_artifact_hits_total", "inc_artifacts_stored_total",
		"inc_files_reused_total", "inc_files_analyzed_total",
		"inc_files_invalidated_total",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %s = 0, want nonzero", name)
		}
	}
}

func TestChangedFileInvalidatesDependents(t *testing.T) {
	eng := testEngine(t)
	store := memStore(t, nil)
	inc := New(eng, store, "test", nil)

	lib := analyzer.SourceFile{Path: "lib.php",
		Content: `<?php function emit($x) { echo $x; }`}
	app := analyzer.SourceFile{Path: "app.php",
		Content: `<?php emit($_GET['q']);`}
	loner := analyzer.SourceFile{Path: "loner.php",
		Content: `<?php echo strip_tags($_GET['z']);`}
	base := &analyzer.Target{Name: "dep", Files: []analyzer.SourceFile{lib, app, loner}}

	if _, _, err := inc.AnalyzeWithReport(base); err != nil {
		t.Fatalf("cold: %v", err)
	}

	// Change lib.php: app.php depends on it and must be re-analyzed too;
	// loner.php is untouched and reuses.
	changed := &analyzer.Target{Name: "dep", Files: []analyzer.SourceFile{
		{Path: "lib.php", Content: `<?php function emit($x) { echo htmlspecialchars($x); }`},
		app, loner,
	}}
	res, rep, err := inc.AnalyzeWithReport(changed)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if rep.AnalyzedFiles != 2 || rep.ReusedFiles != 1 {
		t.Fatalf("report after dependency change: %+v", rep)
	}
	// The sanitizer now guards the sink: the XSS finding in lib.php must
	// be gone. Silent reuse of app.php's stale outcome would keep it.
	for _, f := range res.Findings {
		if f.File == "lib.php" {
			t.Fatalf("stale finding survived dependency change: %+v", f)
		}
	}
	cold, err := eng.Analyze(changed)
	if err != nil {
		t.Fatalf("cold changed: %v", err)
	}
	if resultJSON(t, res) != resultJSON(t, cold) {
		t.Fatal("warm result differs from cold after dependency change")
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	eng := testEngine(t)
	dir := t.TempDir()
	base := SyntheticTarget(4)

	s1, err := NewStore(dir, nil)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	cold, _, err := New(eng, s1, "test", nil).AnalyzeWithReport(base)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}

	// A fresh store over the same directory — a new process — must reuse
	// everything from disk.
	s2, err := NewStore(dir, nil)
	if err != nil {
		t.Fatalf("NewStore(2): %v", err)
	}
	warm, rep, err := New(eng, s2, "test", nil).AnalyzeWithReport(base)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if rep.ReusedFiles != 4 || rep.AnalyzedFiles != 0 {
		t.Fatalf("disk warm report: %+v", rep)
	}
	if resultJSON(t, warm) != resultJSON(t, cold) {
		t.Fatal("disk round-trip changed the result")
	}
}

func TestFingerprintSeparatesArtifacts(t *testing.T) {
	eng := testEngine(t)
	store := memStore(t, nil)
	base := SyntheticTarget(2)

	if _, _, err := New(eng, store, "fp-a", nil).AnalyzeWithReport(base); err != nil {
		t.Fatalf("cold: %v", err)
	}
	_, rep, err := New(eng, store, "fp-b", nil).AnalyzeWithReport(base)
	if err != nil {
		t.Fatalf("other fingerprint: %v", err)
	}
	if rep.ReusedFiles != 0 {
		t.Fatalf("artifacts leaked across fingerprints: %+v", rep)
	}
}

func TestPortableSummaryRoundTrip(t *testing.T) {
	// A target whose function summary carries every summary feature:
	// param-dependent sink flow, param-dependent return, sanitizer
	// filters and latent taint — exported, JSON-round-tripped, reused.
	eng := testEngine(t)
	store := memStore(t, nil)
	inc := New(eng, store, "test", nil)
	target := &analyzer.Target{Name: "rt", Files: []analyzer.SourceFile{
		{Path: "f.php", Content: `<?php
function pipeline($a, $b) {
    mysql_query("SELECT " . $a);
    $s = htmlspecialchars($b);
    return $s . $a;
}
`},
	}}
	cold, _, err := inc.AnalyzeWithReport(target)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, rep, err := inc.AnalyzeWithReport(target)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if rep.ReusedFiles != 1 {
		t.Fatalf("expected reuse, got %+v", rep)
	}
	if resultJSON(t, warm) != resultJSON(t, cold) {
		t.Fatal("summary round trip changed the result")
	}
}
