// Package incremental reuses per-file analysis artifacts across scans of
// nearly-identical snapshots — the plugin-update workload at the heart of
// the paper's evaluation (two versions of the same 35 plugins, most files
// byte-identical between them).
//
// The unit of reuse is not the file but the *dependency component*: the
// taint engine's function summaries are context-sensitive (the first
// call's concrete arguments are folded into the parameter bindings), and
// summarization itself mutates shared state (class properties, globals)
// and emits findings inline, so a file's recorded outcome is only valid
// while every file it could interact with is unchanged too. The graph in
// this file over-approximates "could interact with" symmetrically —
// includes, cross-file calls by name, class references, shared globals —
// and the planner (planner.go) reuses a file's artifact only when its
// entire component is unchanged. A changed file therefore transitively
// invalidates its dependents: stale summaries are structurally
// unreachable, never filtered by a heuristic.
package incremental

import (
	"sort"
	"strings"

	"repro/internal/phpast"
)

// fileRefs is the dependency-relevant surface of one parsed file: what
// it declares, what it refers to by name, what it includes, and which
// globals it touches at top level.
type fileRefs struct {
	declFuncs   []string
	declClasses []string
	declMethods []string

	callsFuncs   map[string]bool
	callsMethods map[string]bool
	refsClasses  map[string]bool

	// includeLits are the trailing path literals of include/require
	// expressions, normalized like the engine's resolver input.
	includeLits []string

	globalReads  map[string]bool
	globalWrites map[string]bool
}

// extractRefs collects a file's dependency surface. isSuper filters the
// engine's configured superglobals out of the global-variable edges:
// superglobal reads mint fresh taint and writes are discarded, so they
// carry no state between files.
func extractRefs(f *phpast.File, isSuper func(string) bool) *fileRefs {
	r := &fileRefs{
		callsFuncs:   make(map[string]bool),
		callsMethods: make(map[string]bool),
		refsClasses:  make(map[string]bool),
		globalReads:  make(map[string]bool),
		globalWrites: make(map[string]bool),
	}

	// Declarations, mirroring the engine's inventory walk (declarations
	// nested inside other declarations are invisible to both).
	phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
		switch d := n.(type) {
		case *phpast.FuncDecl:
			if d.Name != "" {
				r.declFuncs = append(r.declFuncs, d.Name)
			}
			return false
		case *phpast.ClassDecl:
			if d.Name != "" {
				r.declClasses = append(r.declClasses, d.Name)
				if d.Extends != "" {
					r.refsClasses[d.Extends] = true
				}
				for _, impl := range d.Implements {
					r.refsClasses[impl] = true
				}
				for i := range d.Methods {
					if mn := d.Methods[i].Name; mn != "" {
						r.declMethods = append(r.declMethods, mn)
					}
				}
			}
			return false
		}
		return true
	})

	// Name references, everywhere in the file (function and method
	// bodies included) — mirroring the engine's call-site inventory plus
	// the name resolutions its evaluator performs.
	phpast.InspectStmts(f.Stmts, func(n phpast.Node) bool {
		switch x := n.(type) {
		case *phpast.FuncCall:
			if x.Name != "" {
				r.callsFuncs[x.Name] = true
				switch x.Name {
				case "call_user_func", "call_user_func_array", "array_map":
					// String-callable dispatch resolves a literal first
					// argument to a user function.
					if len(x.Args) > 0 {
						if lit, ok := x.Args[0].Value.(*phpast.Literal); ok &&
							lit.Kind == phpast.LitString && lit.Value != "" {
							r.callsFuncs[strings.ToLower(lit.Value)] = true
						}
					}
				}
			}
		case *phpast.MethodCall:
			if x.Name != "" {
				r.callsMethods[x.Name] = true
			}
		case *phpast.StaticCall:
			if x.Name != "" {
				r.callsMethods[x.Name] = true
			}
			if x.Class != "" {
				r.refsClasses[x.Class] = true
			}
		case *phpast.New:
			if x.Class != "" {
				r.refsClasses[x.Class] = true
				r.callsMethods["__construct"] = true
				// PHP4-style constructors: "new foo" both calls a method
				// named foo and marks a function named foo as called.
				r.callsMethods[x.Class] = true
				r.callsFuncs[x.Class] = true
			}
		case *phpast.StaticPropertyFetch:
			if x.Class != "" {
				r.refsClasses[x.Class] = true
			}
		case *phpast.IncludeExpr:
			if lit, ok := trailingPathLiteral(x.Path); ok && lit != "" {
				r.includeLits = append(r.includeLits, strings.TrimPrefix(lit, "/"))
			}
		case *phpast.Global:
			// "global $g" aliases the shared scope for reads and writes.
			for _, name := range x.Names {
				r.global(name, isSuper, true, true)
			}
		case *phpast.IndexFetch:
			// $GLOBALS['name'] aliases the global directly, in any scope.
			// Position-insensitive (read+write) is conservative.
			if base, ok := x.Base.(*phpast.Var); ok && base.Name == "GLOBALS" {
				if key, ok := x.Index.(*phpast.Literal); ok && key.Kind == phpast.LitString {
					r.global(key.Value, isSuper, true, true)
				}
			}
		}
		return true
	})

	// Top-level variable flow. Only top-level code (plus "global"
	// declarations and $GLOBALS, handled above) touches the shared
	// global scope; function, method and closure bodies get fresh
	// scopes, so the walk stops at their boundaries.
	for _, s := range f.Stmts {
		r.topRead(s, isSuper)
	}

	return r
}

// global records a global-variable touch unless the name is a
// superglobal.
func (r *fileRefs) global(name string, isSuper func(string) bool, read, write bool) {
	if name == "" || isSuper(name) {
		return
	}
	if read {
		r.globalReads[name] = true
	}
	if write {
		r.globalWrites[name] = true
	}
}

// topRead walks top-level code recording global reads, dispatching
// assignment targets to topWrite and stopping at function-scope
// boundaries.
func (r *fileRefs) topRead(n phpast.Node, isSuper func(string) bool) {
	switch x := n.(type) {
	case nil:
		return
	case *phpast.FuncDecl, *phpast.ClassDecl:
		// Fresh scopes; their global interactions (global/$GLOBALS) are
		// collected by the whole-file walk above.
		return
	case *phpast.Closure:
		// The body runs in a fresh scope; only use-clause captures read
		// the enclosing (here: global) scope.
		for _, u := range x.Uses {
			r.global(u.Name, isSuper, true, false)
		}
		return
	case *phpast.Var:
		r.global(x.Name, isSuper, true, false)
		return
	case *phpast.Assign:
		r.topWrite(x.LHS, isSuper)
		r.topRead(x.RHS, isSuper)
		return
	case *phpast.IncDec:
		r.topWrite(x.X, isSuper)
		return
	case *phpast.Foreach:
		r.topRead(x.Expr, isSuper)
		if x.Key != nil {
			r.topWrite(x.Key, isSuper)
		}
		if x.Value != nil {
			r.topWrite(x.Value, isSuper)
		}
		for _, s := range x.Body {
			r.topRead(s, isSuper)
		}
		return
	case *phpast.Unset:
		for _, t := range x.Vars {
			r.topWrite(t, isSuper)
		}
		return
	case *phpast.StaticVars:
		for _, sv := range x.Vars {
			if sv.Default != nil {
				r.topRead(sv.Default, isSuper)
			}
			r.global(sv.Name, isSuper, false, true)
		}
		return
	}
	for _, c := range phpast.Children(n) {
		r.topRead(c, isSuper)
	}
}

// topWrite records the variables written by storing into lhs at top
// level. Assignment targets are conservatively marked read+write
// (compound assignments and element stores read the old value).
func (r *fileRefs) topWrite(lhs phpast.Expr, isSuper func(string) bool) {
	switch t := lhs.(type) {
	case nil:
		return
	case *phpast.Var:
		r.global(t.Name, isSuper, true, true)
	case *phpast.IndexFetch:
		// Element store taints the whole container; $GLOBALS['x'] is
		// handled by the whole-file walk.
		r.topWrite(t.Base, isSuper)
		if t.Index != nil {
			r.topRead(t.Index, isSuper)
		}
	case *phpast.PropertyFetch:
		r.topRead(t.Object, isSuper)
		if t.NameExpr != nil {
			r.topRead(t.NameExpr, isSuper)
		}
	case *phpast.ListExpr:
		for _, target := range t.Targets {
			r.topWrite(target, isSuper)
		}
	case *phpast.StaticPropertyFetch:
		// Class-level state; covered by the class-name resource.
	default:
		r.topRead(lhs, isSuper)
	}
}

// trailingPathLiteral extracts the rightmost string-literal component of
// an include path expression, exactly like the engine's resolver.
func trailingPathLiteral(e phpast.Expr) (string, bool) {
	switch x := e.(type) {
	case *phpast.Literal:
		if x.Kind == phpast.LitString {
			return x.Value, true
		}
	case *phpast.Binary:
		if x.Op == "." {
			return trailingPathLiteral(x.R)
		}
	case *phpast.InterpString:
		if n := len(x.Parts); n > 0 {
			return trailingPathLiteral(x.Parts[n-1])
		}
	}
	return "", false
}

// Graph partitions a snapshot's files into dependency components.
type Graph struct {
	paths  []string // sorted
	index  map[string]int
	parent []int
}

// BuildGraph extracts every file's dependency surface and unions files
// that share a resource. Resources are keyed names — functions, methods,
// classes, globals — and a resource only links files when someone
// *declares* it (for globals: writes it); references to undeclared names
// resolve to built-ins or to nothing and carry no cross-file state.
// Method and class-constructor resources are name-only (class-agnostic),
// matching the engine's called-name inventory, which suppresses the
// uncalled-function pass by bare name. Include edges link the includer
// to every file its path literal *could* resolve to, because the
// engine's basename-suffix resolution scans the whole file list and must
// see the same candidates in any sub-scope.
func BuildGraph(files map[string]*phpast.File, isSuper func(string) bool) *Graph {
	g := &Graph{
		paths: make([]string, 0, len(files)),
		index: make(map[string]int, len(files)),
	}
	for p := range files {
		g.paths = append(g.paths, p)
	}
	sort.Strings(g.paths)
	g.parent = make([]int, len(g.paths))
	for i := range g.parent {
		g.parent[i] = i
		g.index[g.paths[i]] = i
	}

	if isSuper == nil {
		isSuper = func(string) bool { return false }
	}

	type bucket struct {
		declarers []int
		users     []int
	}
	res := make(map[string]*bucket)
	at := func(key string) *bucket {
		b := res[key]
		if b == nil {
			b = &bucket{}
			res[key] = b
		}
		return b
	}

	refs := make([]*fileRefs, len(g.paths))
	for i, p := range g.paths {
		r := extractRefs(files[p], isSuper)
		refs[i] = r
		for _, n := range r.declFuncs {
			b := at("f:" + n)
			b.declarers = append(b.declarers, i)
		}
		for _, n := range r.declClasses {
			b := at("c:" + n)
			b.declarers = append(b.declarers, i)
		}
		for _, n := range r.declMethods {
			b := at("m:" + n)
			b.declarers = append(b.declarers, i)
		}
		for n := range r.globalWrites {
			b := at("g:" + n)
			b.declarers = append(b.declarers, i)
		}
		for n := range r.callsFuncs {
			b := at("f:" + n)
			b.users = append(b.users, i)
		}
		for n := range r.callsMethods {
			b := at("m:" + n)
			b.users = append(b.users, i)
		}
		for n := range r.refsClasses {
			b := at("c:" + n)
			b.users = append(b.users, i)
		}
		for n := range r.globalReads {
			b := at("g:" + n)
			b.users = append(b.users, i)
		}
	}

	for _, b := range res {
		if len(b.declarers) == 0 {
			continue
		}
		d0 := b.declarers[0]
		for _, d := range b.declarers[1:] {
			g.union(d0, d)
		}
		for _, u := range b.users {
			g.union(d0, u)
		}
	}

	// Include edges: link each includer to every candidate resolution.
	for i, r := range refs {
		for _, lit := range r.includeLits {
			for _, j := range g.includeCandidates(g.paths[i], lit) {
				g.union(i, j)
			}
		}
	}

	return g
}

// includeCandidates returns the indices of every file an include literal
// could resolve to: the exact target-relative path, the path relative to
// the including file's directory, and every basename-suffix match — a
// superset containing the engine's actual resolution in any scan scope.
func (g *Graph) includeCandidates(fromFile, lit string) []int {
	var out []int
	if j, ok := g.index[lit]; ok {
		out = append(out, j)
	}
	if dir := dirOf(fromFile); dir != "" {
		if j, ok := g.index[dir+"/"+lit]; ok {
			out = append(out, j)
		}
	}
	for j, p := range g.paths {
		if strings.HasSuffix(p, "/"+lit) || p == lit {
			out = append(out, j)
		}
	}
	return out
}

// dirOf returns the directory part of a slash-separated path, or "".
func dirOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return ""
}

// find is union-find root lookup with path compression.
func (g *Graph) find(i int) int {
	for g.parent[i] != i {
		g.parent[i] = g.parent[g.parent[i]]
		i = g.parent[i]
	}
	return i
}

// union merges the components of i and j.
func (g *Graph) union(i, j int) {
	ri, rj := g.find(i), g.find(j)
	if ri != rj {
		g.parent[rj] = ri
	}
}

// Components returns the dependency components as sorted path lists,
// ordered by their first member for determinism.
func (g *Graph) Components() [][]string {
	groups := make(map[int][]string)
	for i, p := range g.paths {
		root := g.find(i)
		groups[root] = append(groups[root], p)
	}
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
