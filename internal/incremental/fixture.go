package incremental

import (
	"fmt"

	"repro/internal/analyzer"
)

// SyntheticTarget generates a plugin of n mutually-independent files for
// incremental-rescan benchmarks: every file declares its own uniquely
// named function, class and variables (no shared includes, calls or
// globals), so each file is its own dependency component and dirtying
// one file re-analyzes exactly one file. Each file carries real taint
// work — a GET-to-SQL-sink flow through a function parameter and a
// GET-to-echo flow through an object property — so the cold/warm
// comparison measures analysis, not parsing alone.
func SyntheticTarget(n int) *analyzer.Target {
	files := make([]analyzer.SourceFile, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("mod%03d", i)
		src := fmt.Sprintf(`<?php
function %[1]s_handler($input_%[1]s) {
    $q_%[1]s = "SELECT * FROM t WHERE c = '" . $input_%[1]s . "'";
    mysql_query($q_%[1]s);
    return htmlspecialchars($input_%[1]s);
}
class %[1]s_widget {
    var $data_%[1]s;
    function set_%[1]s($v_%[1]s) { $this->data_%[1]s = $v_%[1]s; }
    function render_%[1]s() { echo $this->data_%[1]s; }
}
$in_%[1]s = $_GET['%[1]s'];
$w_%[1]s = new %[1]s_widget();
$w_%[1]s->set_%[1]s($in_%[1]s);
$w_%[1]s->render_%[1]s();
%[1]s_handler($_POST['p_%[1]s']);
$clean_%[1]s = %[1]s_handler('constant');
echo $clean_%[1]s;
`, id)
		files = append(files, analyzer.SourceFile{
			Path:    fmt.Sprintf("%s.php", id),
			Content: src,
		})
	}
	return &analyzer.Target{Name: "synthetic-incremental", Files: files}
}

// Touch returns a copy of target with one statement appended to the
// file at index idx — the canonical "one file changed between versions"
// edit. seq varies the appended content so successive touches of the
// same file keep producing fresh hashes.
func Touch(target *analyzer.Target, idx, seq int) *analyzer.Target {
	out := &analyzer.Target{Name: target.Name, Files: append([]analyzer.SourceFile(nil), target.Files...)}
	if idx >= 0 && idx < len(out.Files) {
		f := out.Files[idx]
		// A line comment is inert wherever the file left off: PHP mode
		// lexes it away, HTML mode treats it as flowless inline text.
		f.Content += fmt.Sprintf("\n// touched %d\n", seq)
		out.Files[idx] = f
	}
	return out
}
