package govern

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/analyzer"
)

func TestForkSharesRemainingStepBudget(t *testing.T) {
	g := New(context.Background(), &analyzer.ScanOptions{MaxSteps: 100}, nil)
	for i := 0; i < 40; i++ {
		g.Step()
	}
	child := g.Fork()
	if child.maxSteps != 60 {
		t.Errorf("child.maxSteps = %d, want the parent's remaining 60", child.maxSteps)
	}
	if child.steps != 0 {
		t.Errorf("child.steps = %d, want a fresh 0", child.steps)
	}

	// An exhausted parent still hands out a minimal budget so the child
	// reaches its first checkpoint and halts cleanly instead of
	// dividing by a dead allowance.
	spent := New(context.Background(), &analyzer.ScanOptions{MaxSteps: 10}, nil)
	for i := 0; i < 50; i++ {
		spent.Step()
	}
	if c := spent.Fork(); c.maxSteps < 1 {
		t.Errorf("fork of an overspent parent got maxSteps = %d, want >= 1", c.maxSteps)
	}
}

func TestForkOfHaltedGovernorStartsHalted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, nil, nil)
	cancel()
	for i := 0; i < 2*checkIntervalSteps; i++ {
		g.Step()
	}
	if !g.ScanHalted() {
		t.Fatal("parent did not halt on cancellation")
	}
	child := g.Fork()
	if !child.ScanHalted() {
		t.Error("child of a scan-halted parent must start halted")
	}
	if !errors.Is(child.cancelErr, context.Canceled) {
		t.Errorf("child.cancelErr = %v, want the parent's context.Canceled", child.cancelErr)
	}
}

func TestForkNilGovernor(t *testing.T) {
	var g *Governor
	if g.Fork() != nil {
		t.Error("Fork of nil must stay nil (ungoverned propagates)")
	}
	g.Join(nil) // must not panic
	visited := 0
	ForkJoin(nil, 4, 3, func(child *Governor, _, _ int) {
		if child != nil {
			t.Error("nil parent forked a non-nil child")
		}
		visited++
	})
	if visited != 3 {
		t.Errorf("ungoverned ForkJoin visited %d items, want 3", visited)
	}
}

func TestJoinAggregatesChildren(t *testing.T) {
	g := New(context.Background(), &analyzer.ScanOptions{MaxSteps: 1 << 20}, nil)
	a, b := g.Fork(), g.Fork()
	for i := 0; i < 10; i++ {
		a.Step()
	}
	for i := 0; i < 7; i++ {
		b.Step()
	}
	a.dims = []string{DimSteps}
	b.dims = []string{DimSteps, DimDeadline}
	b.halted = true
	b.cancelErr = context.Canceled

	g.Join(a, b, nil)
	if g.Steps() != 17 {
		t.Errorf("joined steps = %d, want 17", g.Steps())
	}
	if len(g.dims) != 2 {
		t.Errorf("joined dims = %v, want a duplicate-free union of 2", g.dims)
	}
	if !g.ScanHalted() {
		t.Error("a child's scan-scoped halt must halt the parent")
	}
	if !errors.Is(g.cancelErr, context.Canceled) {
		t.Errorf("parent did not adopt the child's cancelErr: %v", g.cancelErr)
	}
}

func TestForkJoinVisitsEachItemExactlyOnce(t *testing.T) {
	const workers, n = 4, 1000
	g := New(context.Background(), nil, nil)
	var visits [n]atomic.Int32
	ForkJoin(g, workers, n, func(child *Governor, worker, idx int) {
		if child == g {
			t.Error("parallel ForkJoin handed a worker the parent governor")
		}
		if worker < 0 || worker >= workers {
			t.Errorf("worker index %d out of range", worker)
		}
		visits[idx].Add(1)
	})
	for i := range visits {
		if got := visits[i].Load(); got != 1 {
			t.Fatalf("item %d visited %d times, want exactly once", i, got)
		}
	}
}

func TestForkJoinSerialFallback(t *testing.T) {
	g := New(context.Background(), nil, nil)
	var order []int
	ForkJoin(g, 1, 5, func(child *Governor, worker, idx int) {
		if child != g {
			t.Error("serial fallback must run under the parent governor itself")
		}
		if worker != 0 {
			t.Errorf("serial fallback worker = %d, want 0", worker)
		}
		order = append(order, idx)
	})
	for i, idx := range order {
		if idx != i {
			t.Fatalf("serial fallback visited %v, want strict 0..4 order", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("serial fallback visited %d items, want 5", len(order))
	}

	// A single item degenerates the same way even with a big pool.
	calls := 0
	ForkJoin(g, 8, 1, func(child *Governor, worker, idx int) {
		if child != g || worker != 0 || idx != 0 {
			t.Errorf("single-item ForkJoin got (worker=%d, idx=%d)", worker, idx)
		}
		calls++
	})
	if calls != 1 {
		t.Fatalf("single-item ForkJoin ran %d times", calls)
	}
}
