package govern

import (
	"sync"
	"sync/atomic"
)

// Parallel per-file support. A Governor is single-goroutine by design,
// so a parallel stage never shares one: each worker goroutine gets its
// own child via Fork, runs its files under it (checkpoints, per-file
// time slices and cancellation all hold per worker), and the parent
// absorbs every child's accounting at the merge barrier via Join.

// Fork returns a child governor for one worker goroutine of a parallel
// per-file stage. The child shares the scan's context, absolute
// deadline, findings/parse-depth limits, file-slice length and fault
// hook; it gets the scan's remaining step budget (the step limit is a
// pathological-input backstop, so it bounds each worker rather than
// being rationed across them). A child of an already scan-halted
// governor starts halted, so late-forked workers drain immediately.
// Fork of a nil governor is nil — the ungoverned state propagates.
func (g *Governor) Fork() *Governor {
	if g == nil {
		return nil
	}
	child := &Governor{
		ctx:           g.ctx,
		rec:           g.rec,
		deadline:      g.deadline,
		maxSteps:      g.maxSteps - g.steps,
		maxFindings:   g.maxFindings,
		maxParseDepth: g.maxParseDepth,
		fileSlice:     g.fileSlice,
		faultHook:     g.faultHook,
	}
	if child.maxSteps < 1 {
		child.maxSteps = 1
	}
	if g.halted && !g.fileScoped {
		child.halted = true
		child.cancelErr = g.cancelErr
	}
	return child
}

// Join absorbs forked children at the merge barrier: steps are summed,
// exhausted dimensions are unioned in join order (children already
// counted them into the recorder, so no re-count here), and a child's
// scan-scoped halt or cancellation halts the parent. Call it exactly
// once per Fork generation, after every worker has finished.
func (g *Governor) Join(children ...*Governor) {
	if g == nil {
		return
	}
	for _, c := range children {
		if c == nil {
			continue
		}
		g.steps += c.steps
		for _, dim := range c.dims {
			dup := false
			for _, d := range g.dims {
				if d == dim {
					dup = true
					break
				}
			}
			if !dup {
				g.dims = append(g.dims, dim)
			}
		}
		if c.cancelErr != nil && g.cancelErr == nil {
			g.cancelErr = c.cancelErr
		}
		if c.halted && !c.fileScoped {
			g.halted = true
			g.fileScoped = false
		}
	}
}

// ForkJoin fans n independent work items across a bounded pool of
// workers governed by per-worker children of g, then joins them. fn is
// called once per item with the worker's governor, the worker index
// (for sync-free per-worker state like interner shards) and the item
// index. Items are claimed from a shared counter (work stealing), so
// callers must make output deterministic by indexing results per item
// and merging in item order, never in completion order. With one
// worker (or one item) it degenerates to a plain loop under g itself —
// the exact serial semantics, no goroutines, no fork.
func ForkJoin(g *Governor, workers, n int, fn func(child *Governor, worker, idx int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(g, 0, i)
		}
		return
	}
	children := make([]*Governor, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		child := g.Fork()
		children[w] = child
		wg.Add(1)
		go func(child *Governor, w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(child, w, i)
			}
		}(child, w)
	}
	wg.Wait()
	g.Join(children...)
}
