package govern_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// FuzzGovernedAnalyze throws mutated PHP source at the richest engine
// under tiny budgets. The governance contract under fuzzing is simple:
// whatever the input, AnalyzeContext returns — no panic escapes, and a
// nil error always carries a result.
func FuzzGovernedAnalyze(f *testing.F) {
	f.Add("<?php echo $_GET['a']; ?>")
	f.Add("<?php $a = array(1, 2, 3); foreach ($a as $v) { echo $v; }")
	f.Add("<?php function f($x) { return f($x . 'y'); } f('z');")
	f.Add(`<?php $s = <<<EOT
	unterminated`)
	f.Add("<?php if (1) { if (2) { if (3) { echo ((((($_GET['q'])))));")
	for _, name := range []string{"include_cycle_a.php", "unterminated_heredoc.php"} {
		if content, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(string(content))
		}
	}

	eng := taint.New(wordpress.Compiled(), taint.DefaultOptions())
	opts := &analyzer.ScanOptions{
		Deadline:      2 * time.Second,
		MaxSteps:      50_000,
		MaxParseDepth: 64,
		MaxFindings:   100,
	}
	f.Fuzz(func(t *testing.T, src string) {
		target := &analyzer.Target{
			Name:  "fuzz",
			Files: []analyzer.SourceFile{{Path: "fuzz.php", Content: src}},
		}
		res, err := eng.AnalyzeContext(context.Background(), target, opts)
		if err != nil {
			t.Fatalf("governed scan errored on fuzz input: %v", err)
		}
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		if res.Truncated && len(res.TruncatedBy) == 0 {
			t.Error("Truncated result does not name a dimension")
		}
	})
}
