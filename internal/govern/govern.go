// Package govern is the resource-governance layer of the analysis
// pipeline. A Governor carries one scan's context and budgets
// (deadline, interpreter steps, findings, per-file time slice, parser
// depth) and exposes checkpoints cheap enough to sit inside the lexer
// loop, the parser recursion and the taint interpreter: the hot path
// is one integer increment plus a masked branch, with the actual
// clock/context inspection amortized over checkIntervalSteps steps.
//
// The degradation ladder, from mildest to hardest stop:
//
//  1. parse depth exceeded — one expression degrades to a recorded
//     parse error; the file and the scan continue.
//  2. file time slice exceeded — one file fails (FilesFailed); the
//     scan continues with the next file.
//  3. panic in per-file analysis — recovered by Protect, recorded as
//     a RobustnessFailure; the scan continues with the next file.
//  4. steps / findings / deadline budget exhausted — the scan stops
//     early with a partial Result flagged Truncated; no error.
//  5. context cancelled or expired — the scan stops early with a
//     partial Result and an error wrapping ctx.Err(); the daemon maps
//     this to the distinct "cancelled" scan state.
package govern

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analyzer"
	"repro/internal/obs"
)

// Budget dimension names, as recorded in Result.TruncatedBy and in the
// govern_truncations_total_* counters.
const (
	// DimDeadline is the whole-scan wall-clock budget.
	DimDeadline = "deadline"
	// DimSteps is the interpreter step budget.
	DimSteps = "steps"
	// DimFindings is the findings-count budget.
	DimFindings = "findings"
	// DimFileSlice is the per-file wall-clock budget.
	DimFileSlice = "file_slice"
	// DimParseDepth is the parser recursion budget.
	DimParseDepth = "parse_depth"
)

// checkIntervalSteps is how many Step calls pass between two slow
// checks (context poll + clock read). Power of two so the gate is a
// mask, not a division. At ~10ns/statement this bounds the reaction
// time to cancellation at a few microseconds of analysis work.
const checkIntervalSteps = 256

// Governor enforces one scan's budgets. It is used by a single
// goroutine (engines analyze one target sequentially); it is not safe
// for concurrent use. A nil *Governor is the ungoverned state: every
// method is a no-op, so pre-governance call paths need no branches.
type Governor struct {
	ctx context.Context
	rec *obs.Recorder

	deadline      time.Time // zero when no scan deadline
	maxSteps      int64
	maxFindings   int
	maxParseDepth int
	fileSlice     time.Duration
	fileDeadline  time.Time // zero when no slice or outside a file

	steps      int64
	halted     bool
	fileScoped bool // current halt stops the file, not the scan
	cancelErr  error
	dims       []string // exhausted dimensions, first exhaustion first

	faultHook func(file string) // test-only crash injection, see SetFaultHook
}

// FaultHookForTesting, when non-nil, is installed on every Governor
// New creates, as if SetFaultHook had been called. It is the seam the
// fault-injection suite uses to crash real engine scans on chosen
// files; production code never sets it.
var FaultHookForTesting func(file string)

// IOFaultHookForTesting is the disk sibling of FaultHookForTesting:
// when non-nil, durability-layer disk operations (journal appends,
// fsyncs, snapshot renames) consult it first and treat a non-nil
// return as that operation failing. The crash-safety suite uses it to
// fail the scan journal mid-flight and assert the daemon degrades to
// in-memory mode instead of blocking the scan path; production code
// never sets it.
var IOFaultHookForTesting func(op, path string) error

// New builds a Governor for one scan. A nil opts means default
// budgets; a nil rec disables counters. The context's own deadline (if
// any) is enforced through the cancellation path, not the truncation
// path — it belongs to the caller, not to the scan's budget.
func New(ctx context.Context, opts *analyzer.ScanOptions, rec *obs.Recorder) *Governor {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Governor{
		ctx:           ctx,
		rec:           rec,
		maxSteps:      opts.EffectiveMaxSteps(),
		maxFindings:   opts.EffectiveMaxFindings(),
		maxParseDepth: opts.EffectiveMaxParseDepth(),
		faultHook:     FaultHookForTesting,
	}
	if opts != nil {
		if opts.Deadline > 0 {
			g.deadline = time.Now().Add(opts.Deadline)
		}
		g.fileSlice = opts.FileTimeSlice
	}
	return g
}

// Step is the hot-path checkpoint: one increment and a masked branch.
// Every checkIntervalSteps calls it polls the context, the scan
// deadline, the step budget and the file slice.
func (g *Governor) Step() {
	if g == nil || g.halted {
		return
	}
	g.steps++
	if g.steps&(checkIntervalSteps-1) == 0 {
		g.slowCheck()
	}
}

// CheckNow forces a slow check immediately. Coarse loops (per file,
// per event) use it instead of Step so a scan reacts to cancellation
// even when no fine-grained steps are being taken.
func (g *Governor) CheckNow() {
	if g == nil || g.halted {
		return
	}
	g.slowCheck()
}

// slowCheck inspects every budget that needs a clock or context read.
func (g *Governor) slowCheck() {
	if err := g.ctx.Err(); err != nil {
		g.cancelErr = err
		g.halt("", false)
		g.counter("govern_cancellations_total")
		return
	}
	now := time.Time{}
	if !g.deadline.IsZero() || !g.fileDeadline.IsZero() {
		now = time.Now()
	}
	if !g.deadline.IsZero() && now.After(g.deadline) {
		g.halt(DimDeadline, false)
		return
	}
	if g.steps >= g.maxSteps {
		g.halt(DimSteps, false)
		return
	}
	if !g.fileDeadline.IsZero() && now.After(g.fileDeadline) {
		g.halt(DimFileSlice, true)
	}
}

// halt stops the scan (or, fileScoped, the current file), recording
// the exhausted dimension. An empty dim is cancellation: the error is
// reported through Finish instead of TruncatedBy.
func (g *Governor) halt(dim string, fileScoped bool) {
	g.halted = true
	g.fileScoped = fileScoped
	if dim != "" && !fileScoped {
		g.noteDim(dim)
	}
}

// noteDim records an exhausted dimension once and counts it.
func (g *Governor) noteDim(dim string) {
	for _, d := range g.dims {
		if d == dim {
			return
		}
	}
	g.dims = append(g.dims, dim)
	g.counter("govern_truncations_total_" + dim)
}

func (g *Governor) counter(name string) {
	if g.rec != nil {
		g.rec.Counter(name).Inc()
	}
}

// Halted reports whether work must stop — true for both scan-scoped
// and file-scoped halts, so interpreter checkpoints need one test.
func (g *Governor) Halted() bool { return g != nil && g.halted }

// ScanHalted reports whether the whole scan must stop (a file-scoped
// halt only stops the current file).
func (g *Governor) ScanHalted() bool { return g != nil && g.halted && !g.fileScoped }

// BeginFile opens a per-file accounting window: the file time slice
// restarts. It also runs the test-only fault hook, which may panic —
// callers invoke BeginFile inside Protect.
func (g *Governor) BeginFile(file string) {
	if g == nil {
		return
	}
	if g.fileSlice > 0 {
		g.fileDeadline = time.Now().Add(g.fileSlice)
	}
	if g.faultHook != nil {
		g.faultHook(file)
	}
}

// EndFile closes a file's accounting window. When the file was halted
// by its time slice, the halt is cleared (the scan continues), the
// file_slice dimension is recorded, and true is returned so the caller
// can fail the file.
func (g *Governor) EndFile() (sliceExceeded bool) {
	if g == nil {
		return false
	}
	g.fileDeadline = time.Time{}
	if g.halted && g.fileScoped {
		g.halted = false
		g.fileScoped = false
		g.noteDim(DimFileSlice)
		return true
	}
	return false
}

// CheckFindings halts the scan when count findings have been reported.
// Engines call it after appending to Result.Findings.
func (g *Governor) CheckFindings(count int) {
	if g == nil || g.halted {
		return
	}
	if count >= g.maxFindings {
		g.halt(DimFindings, false)
	}
}

// MaxParseDepth returns the parser recursion budget.
func (g *Governor) MaxParseDepth() int {
	if g == nil {
		return analyzer.DefaultMaxParseDepth
	}
	return g.maxParseDepth
}

// NoteParseDepth records that a file hit the parser depth budget. The
// parser degrades the construct itself; this only marks the result
// truncated.
func (g *Governor) NoteParseDepth() {
	if g == nil {
		return
	}
	g.noteDim(DimParseDepth)
}

// Steps returns how many steps the scan has consumed.
func (g *Governor) Steps() int64 {
	if g == nil {
		return 0
	}
	return g.steps
}

// Finish applies the governor's verdict to a finished (possibly
// partial) result: exhausted dimensions mark it Truncated, and a
// cancelled context comes back as the scan's error. Engines call it
// once, last.
func (g *Governor) Finish(res *analyzer.Result) error {
	if g == nil {
		return nil
	}
	if res != nil {
		for _, dim := range g.dims {
			res.MarkTruncated(dim)
		}
	}
	if g.cancelErr != nil {
		return fmt.Errorf("scan cancelled: %w", g.cancelErr)
	}
	return nil
}

// SetFaultHook installs a test-only hook run by BeginFile inside the
// protected region; a hook that panics simulates an engine crash on
// that file. Production code never calls this.
func (g *Governor) SetFaultHook(fn func(file string)) {
	if g != nil {
		g.faultHook = fn
	}
}

// Protect runs fn and converts a panic into a labelled
// RobustnessFailure on res: the file is failed, the scan survives.
// It reports whether fn completed without panicking.
func Protect(g *Governor, file string, res *analyzer.Result, fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
			if res != nil {
				res.RobustnessFailures = append(res.RobustnessFailures, analyzer.RobustnessFailure{
					File:   file,
					Reason: fmt.Sprintf("panic: %v", r),
				})
				res.FilesFailed = append(res.FilesFailed, file)
				res.Errors = append(res.Errors, fmt.Sprintf(
					"%s: error: analysis crashed (recovered): %v", file, r))
			}
			if g != nil {
				g.counter("govern_panics_recovered_total")
			}
		}
	}()
	fn()
	return true
}
