package govern

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/obs"
)

func TestNilGovernorIsNoOp(t *testing.T) {
	var g *Governor
	g.Step()
	g.CheckNow()
	g.BeginFile("a.php")
	if g.EndFile() {
		t.Error("nil governor reported a slice halt")
	}
	g.CheckFindings(1 << 30)
	g.NoteParseDepth()
	if g.Halted() || g.ScanHalted() {
		t.Error("nil governor halted")
	}
	if g.MaxParseDepth() != analyzer.DefaultMaxParseDepth {
		t.Errorf("nil MaxParseDepth = %d", g.MaxParseDepth())
	}
	if err := g.Finish(&analyzer.Result{}); err != nil {
		t.Errorf("nil Finish err = %v", err)
	}
}

func TestStepBudgetHaltsAtCheckpoint(t *testing.T) {
	rec := obs.NewRecorder()
	g := New(context.Background(), &analyzer.ScanOptions{MaxSteps: 100}, rec)
	for i := 0; i < 10_000 && !g.Halted(); i++ {
		g.Step()
	}
	if !g.ScanHalted() {
		t.Fatal("step budget never halted the scan")
	}
	// The masked gate means the halt lands on the first checkpoint at or
	// after the budget — within one interval, never unboundedly later.
	if got := g.Steps(); got > 100+checkIntervalSteps {
		t.Errorf("halted after %d steps, budget 100 (+%d checkpoint bound)", got, checkIntervalSteps)
	}
	res := &analyzer.Result{}
	if err := g.Finish(res); err != nil {
		t.Fatalf("budget exhaustion must not be an error, got %v", err)
	}
	if !res.Truncated || len(res.TruncatedBy) != 1 || res.TruncatedBy[0] != DimSteps {
		t.Errorf("result = truncated %v by %v, want steps", res.Truncated, res.TruncatedBy)
	}
	if got := rec.Snapshot().Counters["govern_truncations_total_steps"]; got != 1 {
		t.Errorf("govern_truncations_total_steps = %d, want 1", got)
	}
}

func TestDeadlineTruncates(t *testing.T) {
	g := New(context.Background(), &analyzer.ScanOptions{Deadline: time.Millisecond}, nil)
	time.Sleep(5 * time.Millisecond)
	g.CheckNow()
	if !g.ScanHalted() {
		t.Fatal("expired deadline did not halt")
	}
	res := &analyzer.Result{}
	if err := g.Finish(res); err != nil || !res.Truncated || res.TruncatedBy[0] != DimDeadline {
		t.Errorf("Finish = %v, truncated_by %v", err, res.TruncatedBy)
	}
}

func TestFileSliceFailsFileNotScan(t *testing.T) {
	g := New(context.Background(), &analyzer.ScanOptions{FileTimeSlice: time.Millisecond}, nil)
	g.BeginFile("slow.php")
	time.Sleep(5 * time.Millisecond)
	g.CheckNow()
	if !g.Halted() {
		t.Fatal("exceeded slice did not halt the file")
	}
	if g.ScanHalted() {
		t.Fatal("file-scoped halt must not stop the scan")
	}
	if !g.EndFile() {
		t.Fatal("EndFile did not report the exceeded slice")
	}
	if g.Halted() {
		t.Fatal("halt must clear when the sliced file ends")
	}
	res := &analyzer.Result{}
	if err := g.Finish(res); err != nil || !res.Truncated || res.TruncatedBy[0] != DimFileSlice {
		t.Errorf("Finish = %v, truncated_by %v", err, res.TruncatedBy)
	}
}

func TestFindingsBudget(t *testing.T) {
	g := New(context.Background(), &analyzer.ScanOptions{MaxFindings: 3}, nil)
	g.CheckFindings(2)
	if g.Halted() {
		t.Fatal("halted below the findings budget")
	}
	g.CheckFindings(3)
	if !g.ScanHalted() {
		t.Fatal("findings budget did not halt")
	}
}

func TestCancellationIsAnError(t *testing.T) {
	rec := obs.NewRecorder()
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, nil, rec)
	cancel()
	for i := 0; i < 2*checkIntervalSteps; i++ {
		g.Step()
	}
	if !g.ScanHalted() {
		t.Fatal("cancelled context did not halt within one checkpoint interval")
	}
	res := &analyzer.Result{}
	err := g.Finish(res)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Finish err = %v, want wrapped context.Canceled", err)
	}
	if res.Truncated {
		t.Error("cancellation must be an error, not a truncation")
	}
	if got := rec.Snapshot().Counters["govern_cancellations_total"]; got != 1 {
		t.Errorf("govern_cancellations_total = %d, want 1", got)
	}
}

func TestDimsDeduplicate(t *testing.T) {
	g := New(context.Background(), nil, nil)
	g.NoteParseDepth()
	g.NoteParseDepth()
	res := &analyzer.Result{}
	g.Finish(res)
	if len(res.TruncatedBy) != 1 {
		t.Errorf("TruncatedBy = %v, want one parse_depth entry", res.TruncatedBy)
	}
}

func TestProtectRecoversPanic(t *testing.T) {
	rec := obs.NewRecorder()
	g := New(context.Background(), nil, rec)
	res := &analyzer.Result{}
	ok := Protect(g, "crash.php", res, func() { panic("boom") })
	if ok {
		t.Fatal("Protect reported ok for a panicking fn")
	}
	if len(res.RobustnessFailures) != 1 || res.RobustnessFailures[0].File != "crash.php" ||
		!strings.Contains(res.RobustnessFailures[0].Reason, "boom") {
		t.Errorf("robustness failures = %+v", res.RobustnessFailures)
	}
	if len(res.FilesFailed) != 1 || len(res.Errors) != 1 {
		t.Errorf("failed files %v errors %v", res.FilesFailed, res.Errors)
	}
	if got := rec.Snapshot().Counters["govern_panics_recovered_total"]; got != 1 {
		t.Errorf("govern_panics_recovered_total = %d, want 1", got)
	}
	if !Protect(g, "fine.php", res, func() {}) {
		t.Error("Protect reported a panic for a clean fn")
	}
}

func TestFaultHookRunsInsideProtect(t *testing.T) {
	g := New(context.Background(), nil, nil)
	g.SetFaultHook(func(file string) {
		if file == "target.php" {
			panic("injected fault")
		}
	})
	res := &analyzer.Result{}
	if Protect(g, "target.php", res, func() { g.BeginFile("target.php") }) {
		t.Fatal("injected fault did not panic")
	}
	if len(res.RobustnessFailures) != 1 {
		t.Fatalf("injected fault not recorded: %+v", res.RobustnessFailures)
	}
	if !Protect(g, "other.php", res, func() { g.BeginFile("other.php") }) {
		t.Error("hook fired for the wrong file")
	}
}
