<?php
// Adversarial fixture: include cycle (b -> a -> b).
include 'include_cycle_a.php';
$ub = $_POST['b'];
mysql_query($ub);
