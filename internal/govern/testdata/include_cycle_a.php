<?php
// Adversarial fixture: include cycle (a -> b -> a).
include 'include_cycle_b.php';
$ua = $_GET['a'];
echo $ua;
