// Adversarial suite: every fixture under testdata is a pathological
// input (hostile nesting, include cycles, megabyte inline HTML, broken
// heredocs, absurd arity) and every engine must survive all of them —
// no escaped panics, partial results labelled, cancellation bounded.
//
// These tests mutate the package-level govern.FaultHookForTesting seam
// and measure goroutine-visible latencies, so none of them call
// t.Parallel.
package govern_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/govern"
	"repro/internal/pixy"
	"repro/internal/rips"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// engines returns fresh instances of the three real engines; fresh per
// test so recorded state never crosses tests.
func engines() []analyzer.Analyzer {
	return []analyzer.Analyzer{
		taint.New(wordpress.Compiled(), taint.DefaultOptions()),
		rips.NewDefault(),
		pixy.New(),
	}
}

// loadFixture reads one testdata file into a SourceFile.
func loadFixture(t *testing.T, name string) analyzer.SourceFile {
	t.Helper()
	content, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return analyzer.SourceFile{Path: name, Content: string(content)}
}

// fixtureTargets groups the fixture pack into analyzable targets; the
// mutually-including pair travels together so the cycle is reachable.
func fixtureTargets(t *testing.T) []*analyzer.Target {
	t.Helper()
	return []*analyzer.Target{
		{Name: "adv-deep-nesting", Files: []analyzer.SourceFile{loadFixture(t, "deep_nesting.php")}},
		{Name: "adv-include-cycle", Files: []analyzer.SourceFile{
			loadFixture(t, "include_cycle_a.php"),
			loadFixture(t, "include_cycle_b.php"),
		}},
		{Name: "adv-giant-html", Files: []analyzer.SourceFile{loadFixture(t, "giant_inline_html.php")}},
		{Name: "adv-heredoc", Files: []analyzer.SourceFile{loadFixture(t, "unterminated_heredoc.php")}},
		{Name: "adv-wide-call", Files: []analyzer.SourceFile{loadFixture(t, "wide_call.php")}},
	}
}

// TestAdversarialFixturesComplete runs every engine over every fixture
// under realistic budgets. The scan must settle: non-nil result, no
// error (nothing cancels it), and any degradation labelled — a
// Truncated result names its dimensions, a crashed file names its
// failure.
func TestAdversarialFixturesComplete(t *testing.T) {
	opts := &analyzer.ScanOptions{
		Deadline:      20 * time.Second,
		MaxParseDepth: 128,
		FileTimeSlice: 10 * time.Second,
	}
	for _, target := range fixtureTargets(t) {
		for _, eng := range engines() {
			t.Run(fmt.Sprintf("%s/%s", target.Name, eng.Name()), func(t *testing.T) {
				res, err := eng.AnalyzeContext(context.Background(), target, opts)
				if err != nil {
					t.Fatalf("scan errored (only cancellation may): %v", err)
				}
				if res == nil {
					t.Fatal("nil result from a completed scan")
				}
				if res.Truncated && len(res.TruncatedBy) == 0 {
					t.Error("Truncated result does not name a dimension")
				}
				if !res.Truncated && len(res.TruncatedBy) > 0 {
					t.Errorf("un-truncated result carries dimensions %v", res.TruncatedBy)
				}
				for _, rf := range res.RobustnessFailures {
					if rf.File == "" || rf.Reason == "" {
						t.Errorf("unlabelled robustness failure: %+v", rf)
					}
				}
			})
		}
	}
}

// TestTinyBudgetsTruncateNotCrash starves the richest engine of steps
// on the largest fixtures: the scan must come back as a labelled
// partial result, never an error or a panic.
func TestTinyBudgetsTruncateNotCrash(t *testing.T) {
	target := &analyzer.Target{Name: "adv-starved", Files: []analyzer.SourceFile{
		loadFixture(t, "giant_inline_html.php"),
		loadFixture(t, "wide_call.php"),
	}}
	eng := taint.New(wordpress.Compiled(), taint.DefaultOptions())
	opts := &analyzer.ScanOptions{MaxSteps: 300, MaxParseDepth: 64}
	res, err := eng.AnalyzeContext(context.Background(), target, opts)
	if err != nil {
		t.Fatalf("budget exhaustion must not be an error: %v", err)
	}
	if res == nil || !res.Truncated {
		t.Fatalf("starved scan not flagged Truncated: %+v", res)
	}
	found := false
	for _, dim := range res.TruncatedBy {
		if dim == govern.DimSteps {
			found = true
		}
	}
	if !found {
		t.Errorf("TruncatedBy = %v, want %q", res.TruncatedBy, govern.DimSteps)
	}
}

// TestCancellationBounded cancels a scan of a deliberately heavy target
// mid-flight and requires the engine to surface the cancellation within
// a generous multiple of the checkpoint interval — seconds, not the
// minutes the full scan would take.
func TestCancellationBounded(t *testing.T) {
	giant := loadFixture(t, "giant_inline_html.php")
	eng := taint.New(wordpress.Compiled(), taint.DefaultOptions())

	// A fast machine can finish the whole target before a fixed sleep
	// elapses, which proves nothing either way; grow the target until
	// the cancellation actually lands mid-flight.
	for copies := 25; ; copies *= 4 {
		target := &analyzer.Target{Name: "adv-cancel"}
		for i := 0; i < copies; i++ {
			target.Files = append(target.Files, analyzer.SourceFile{
				Path:    fmt.Sprintf("copy_%03d.php", i),
				Content: giant.Content,
			})
		}
		ctx, cancel := context.WithCancel(context.Background())

		type outcome struct {
			res     *analyzer.Result
			err     error
			settled time.Time
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := eng.AnalyzeContext(ctx, target, nil)
			done <- outcome{res, err, time.Now()}
		}()

		time.Sleep(25 * time.Millisecond)
		cancelled := time.Now()
		cancel()

		select {
		case out := <-done:
			if out.err == nil && copies < 1600 {
				// The scan outran the cancel; try a heavier target.
				continue
			}
			if !errors.Is(out.err, context.Canceled) {
				t.Fatalf("err = %v (copies=%d), want wrapped context.Canceled", out.err, copies)
			}
			if out.res == nil {
				t.Error("cancelled scan dropped its partial result")
			}
			if lag := out.settled.Sub(cancelled); lag > 5*time.Second {
				t.Errorf("cancellation took %v to surface", lag)
			}
			return
		case <-time.After(30 * time.Second):
			t.Fatal("cancelled scan never returned")
		}
	}
}

// TestFaultInjectionScanSurvives crashes a real engine on one chosen
// file via the govern.FaultHookForTesting seam and checks the blast
// radius: that file becomes a RobustnessFailure, every other file is
// still analyzed, and the scan settles without error.
func TestFaultInjectionScanSurvives(t *testing.T) {
	const victim = "include_cycle_b.php"
	govern.FaultHookForTesting = func(file string) {
		if strings.HasSuffix(file, victim) {
			panic("injected engine crash")
		}
	}
	defer func() { govern.FaultHookForTesting = nil }()

	target := &analyzer.Target{Name: "adv-fault", Files: []analyzer.SourceFile{
		loadFixture(t, "include_cycle_a.php"),
		loadFixture(t, "include_cycle_b.php"),
	}}
	for _, eng := range engines() {
		t.Run(eng.Name(), func(t *testing.T) {
			res, err := eng.AnalyzeContext(context.Background(), target, nil)
			if err != nil {
				t.Fatalf("injected crash escalated to a scan error: %v", err)
			}
			if res == nil {
				t.Fatal("nil result")
			}
			crashed := false
			for _, rf := range res.RobustnessFailures {
				if strings.HasSuffix(rf.File, victim) && strings.Contains(rf.Reason, "injected engine crash") {
					crashed = true
				}
			}
			if !crashed {
				t.Errorf("injected crash not recorded: %+v", res.RobustnessFailures)
			}
			for _, f := range res.FilesFailed {
				if !strings.HasSuffix(f, victim) {
					t.Errorf("healthy file %s failed", f)
				}
			}
		})
	}
}
