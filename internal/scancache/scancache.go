// Package scancache is the content-addressed result cache behind the
// scan daemon. Scans are pure functions of (file set, tool build), so
// a result can be keyed by a hash of its inputs and served to every
// later request with the same content — the architecture that makes
// repeated scanning of popular plugin versions cheap and concurrent
// scanning of the same upload safe (one computation, many readers).
//
// The cache bounds memory with LRU eviction by byte budget, and
// deduplicates identical in-flight computations with singleflight:
// callers of Do with the key of a scan already being computed block
// until that one computation finishes and share its result.
package scancache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"

	"repro/internal/analyzer"
	"repro/internal/obs"
)

// DefaultMaxBytes is the eviction budget used when New is given a
// non-positive one (256 MiB).
const DefaultMaxBytes = 256 << 20

// Key returns the content address of one scan: the SHA-256 of the
// tool/config fingerprint and the target's file set. Every field is
// length-prefixed and files are hashed in sorted path order, so the
// same content always hashes identically regardless of upload or walk
// order, while any change to a path, a file body or the fingerprint
// produces a new key. The target's display name is deliberately
// excluded: renaming a plugin does not change its scan result.
func Key(t *analyzer.Target, fingerprint string) string {
	h := sha256.New()
	writeField := func(s string) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeField(fingerprint)
	files := append([]analyzer.SourceFile(nil), t.Files...)
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	for _, f := range files {
		writeField(f.Path)
		writeField(f.Content)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entry is one cached result with its accounted size.
type entry struct {
	key  string
	res  *analyzer.Result
	size int64
}

// call is one in-flight computation other callers can join.
type call struct {
	done chan struct{}
	res  *analyzer.Result
	err  error
}

// Stats is a point-in-time snapshot of the cache's effectiveness.
type Stats struct {
	// Hits and Misses count lookups (Get and Do combined); Coalesced
	// counts Do callers that joined an identical in-flight computation
	// instead of starting their own.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Evictions and BytesEvicted account LRU pressure.
	Evictions    int64 `json:"evictions"`
	BytesEvicted int64 `json:"bytes_evicted"`
	// Entries and Bytes are current occupancy.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// HitRatio is Hits / (Hits + Misses), 0 before any lookup.
	HitRatio float64 `json:"hit_ratio"`
}

// Cache is a concurrency-safe LRU of scan results keyed by content
// address. The recorder (which may be nil) receives the
// scancache_{hits,misses,dedup,evictions,bytes_evicted}_total counters
// and the scancache_{entries,bytes,hit_ratio} gauges.
type Cache struct {
	rec *obs.Recorder

	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *entry
	items    map[string]*list.Element
	inflight map[string]*call

	hits, misses, coalesced int64
	evictions, bytesEvicted int64
}

// New returns an empty cache bounded to maxBytes of cached results
// (DefaultMaxBytes when non-positive).
func New(maxBytes int64, rec *obs.Recorder) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		rec:      rec,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Get returns the cached result for key, marking it most recently
// used. The returned result is shared: callers must not mutate it.
func (c *Cache) Get(key string) (*analyzer.Result, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var res *analyzer.Result
	if ok {
		c.ll.MoveToFront(el)
		res = el.Value.(*entry).res
		c.hits++
	} else {
		c.misses++
	}
	ratio := c.hitRatioLocked()
	c.mu.Unlock()
	c.rec.Gauge("scancache_hit_ratio").Set(ratio)
	if ok {
		c.rec.Counter("scancache_hits_total").Inc()
		return res, true
	}
	c.rec.Counter("scancache_misses_total").Inc()
	return nil, false
}

// Do returns the result for key, computing it with compute on a miss.
// Concurrent Do calls for the same key run compute once and share the
// outcome (including an error). hit reports whether the result came
// from the cache or a joined in-flight computation rather than this
// caller's own compute. Failed computations are not cached.
func (c *Cache) Do(key string, compute func() (*analyzer.Result, error)) (res *analyzer.Result, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		res = el.Value.(*entry).res
		c.hits++
		ratio := c.hitRatioLocked()
		c.mu.Unlock()
		c.rec.Counter("scancache_hits_total").Inc()
		c.rec.Gauge("scancache_hit_ratio").Set(ratio)
		return res, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		c.rec.Counter("scancache_dedup_total").Inc()
		<-cl.done
		return cl.res, true, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.misses++
	ratio := c.hitRatioLocked()
	c.mu.Unlock()
	c.rec.Counter("scancache_misses_total").Inc()
	c.rec.Gauge("scancache_hit_ratio").Set(ratio)

	cl.res, cl.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil && cl.res != nil {
		c.addLocked(key, cl.res)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.res, false, cl.err
}

// Put inserts an already-computed result under key, exactly as Do
// would after a successful compute (most recently used, evicting under
// budget pressure). The daemon's journal replay uses it to rehydrate
// the cache from persisted results, so re-submitting pre-crash content
// is served byte-identically from cache instead of being re-analyzed.
func (c *Cache) Put(key string, res *analyzer.Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	c.addLocked(key, res)
	c.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted size of all cached entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a point-in-time effectiveness snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:         c.hits,
		Misses:       c.misses,
		Coalesced:    c.coalesced,
		Evictions:    c.evictions,
		BytesEvicted: c.bytesEvicted,
		Entries:      c.ll.Len(),
		Bytes:        c.bytes,
		HitRatio:     c.hitRatioLocked(),
	}
}

// hitRatioLocked computes Hits/(Hits+Misses); caller holds c.mu.
func (c *Cache) hitRatioLocked() float64 {
	if total := c.hits + c.misses; total > 0 {
		return float64(c.hits) / float64(total)
	}
	return 0
}

// addLocked inserts res as most recently used and evicts from the LRU
// tail while over budget. The newest entry is never evicted, so a
// single result larger than the whole budget still serves its own
// duplicate requests. Caller holds c.mu.
func (c *Cache) addLocked(key string, res *analyzer.Result) {
	if el, ok := c.items[key]; ok {
		// A concurrent filler won the race; keep the existing entry.
		c.ll.MoveToFront(el)
		return
	}
	e := &entry{key: key, res: res, size: resultSize(res)}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.size
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		tail := c.ll.Back()
		victim := tail.Value.(*entry)
		c.ll.Remove(tail)
		delete(c.items, victim.key)
		c.bytes -= victim.size
		c.evictions++
		c.bytesEvicted += victim.size
		c.rec.Counter("scancache_evictions_total").Inc()
		c.rec.Counter("scancache_bytes_evicted_total").Add(victim.size)
	}
	c.rec.Gauge("scancache_entries").Set(float64(c.ll.Len()))
	c.rec.Gauge("scancache_bytes").Set(float64(c.bytes))
}

// resultSize accounts a result by its JSON encoding — close enough to
// resident size for budget purposes and exact for what the API would
// serve from this entry.
func resultSize(res *analyzer.Result) int64 {
	b, err := json.Marshal(res)
	if err != nil {
		return 1024
	}
	return int64(len(b))
}
