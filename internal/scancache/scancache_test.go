package scancache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/obs"
)

func target(name string, files ...analyzer.SourceFile) *analyzer.Target {
	return &analyzer.Target{Name: name, Files: files}
}

func TestKeyStability(t *testing.T) {
	t.Parallel()
	a := analyzer.SourceFile{Path: "a.php", Content: "<?php echo 1;"}
	b := analyzer.SourceFile{Path: "b.php", Content: "<?php echo 2;"}

	k1 := Key(target("p", a, b), "fp")
	k2 := Key(target("p", b, a), "fp")
	if k1 != k2 {
		t.Error("key must not depend on file order")
	}
	if k1 != Key(target("renamed", a, b), "fp") {
		t.Error("key must not depend on the target name")
	}
	if k1 == Key(target("p", a, b), "fp2") {
		t.Error("key must depend on the fingerprint")
	}
	changed := analyzer.SourceFile{Path: "b.php", Content: "<?php echo 3;"}
	if k1 == Key(target("p", a, changed), "fp") {
		t.Error("key must depend on file content")
	}
	moved := analyzer.SourceFile{Path: "c.php", Content: b.Content}
	if k1 == Key(target("p", a, moved), "fp") {
		t.Error("key must depend on file paths")
	}
	// Length prefixing: the boundary between path and content must
	// matter, not just the concatenated bytes.
	if Key(target("p", analyzer.SourceFile{Path: "ab", Content: "c"}), "") ==
		Key(target("p", analyzer.SourceFile{Path: "a", Content: "bc"}), "") {
		t.Error("key must be ambiguity-free across field boundaries")
	}
	if len(k1) != 64 {
		t.Errorf("key length = %d, want 64 hex chars", len(k1))
	}
}

func TestGetAndDo(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	c := New(1<<20, rec)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("empty cache must miss")
	}
	want := &analyzer.Result{Tool: "phpSAFE", Target: "p"}
	res, hit, err := c.Do("k", func() (*analyzer.Result, error) { return want, nil })
	if err != nil || hit || res != want {
		t.Fatalf("first Do = (%v, %v, %v)", res, hit, err)
	}
	res, hit, err = c.Do("k", func() (*analyzer.Result, error) {
		t.Error("second Do must not recompute")
		return nil, nil
	})
	if err != nil || !hit || res != want {
		t.Fatalf("second Do = (%v, %v, %v)", res, hit, err)
	}
	if res, ok := c.Get("k"); !ok || res != want {
		t.Fatalf("Get after fill = (%v, %v)", res, ok)
	}
	snap := rec.Snapshot()
	if snap.Counters["scancache_hits_total"] != 2 {
		t.Errorf("hits = %d, want 2", snap.Counters["scancache_hits_total"])
	}
	if snap.Counters["scancache_misses_total"] != 2 {
		t.Errorf("misses = %d, want 2 (initial Get + first Do)", snap.Counters["scancache_misses_total"])
	}
}

func TestErrorsNotCached(t *testing.T) {
	t.Parallel()
	c := New(0, nil)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (*analyzer.Result, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed computation must not be cached")
	}
	recovered := &analyzer.Result{Tool: "phpSAFE"}
	res, hit, err := c.Do("k", func() (*analyzer.Result, error) { return recovered, nil })
	if err != nil || hit || res != recovered {
		t.Fatalf("retry after error = (%v, %v, %v)", res, hit, err)
	}
}

func TestLRUEviction(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	// Budget for roughly two of the ~padded results below.
	pad := strings.Repeat("x", 400)
	mk := func(i int) *analyzer.Result {
		return &analyzer.Result{Tool: "phpSAFE", Target: fmt.Sprintf("p%d-%s", i, pad)}
	}
	one := resultSize(mk(0))
	c := New(2*one+one/2, rec)

	for i := 0; i < 3; i++ {
		if _, _, err := c.Do(fmt.Sprintf("k%d", i), func() (*analyzer.Result, error) { return mk(i), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2 after eviction", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 (least recently used) should be evicted")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Error("k2 (most recent) should survive")
	}
	if got := rec.Snapshot().Counters["scancache_evictions_total"]; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Bytes() > 2*one+one/2 {
		t.Errorf("bytes = %d over budget", c.Bytes())
	}

	// Touch order controls the victim: refresh k1, insert k3, expect k2 out.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 should still be cached")
	}
	if _, _, err := c.Do("k3", func() (*analyzer.Result, error) { return mk(3), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 should be evicted after k1 was refreshed")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("refreshed k1 should survive")
	}
}

func TestOversizeEntryStillCached(t *testing.T) {
	t.Parallel()
	c := New(1, nil) // budget smaller than any entry
	want := &analyzer.Result{Tool: "phpSAFE", Target: "huge"}
	if _, _, err := c.Do("k", func() (*analyzer.Result, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if res, ok := c.Get("k"); !ok || res != want {
		t.Fatal("the newest entry must never be evicted by its own insert")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestSingleflightDedup(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	c := New(0, rec)
	const callers = 16

	var computes atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]*analyzer.Result, callers)
	hits := make([]bool, callers)

	// The first caller computes and blocks on the gate so the rest
	// provably join in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, hit, err := c.Do("k", func() (*analyzer.Result, error) {
			computes.Add(1)
			close(entered)
			<-gate
			return &analyzer.Result{Tool: "phpSAFE", Target: "shared"}, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], hits[0] = res, hit
	}()
	<-entered

	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, hit, err := c.Do("k", func() (*analyzer.Result, error) {
				computes.Add(1)
				return nil, errors.New("joiners must not compute")
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = res, hit
		}(i)
	}

	// The computation is gated, so every joiner must register against
	// the in-flight call (incrementing the dedup counter) before it can
	// block; wait for all of them so the join is provably in flight.
	deadline := time.Now().Add(10 * time.Second)
	for rec.Snapshot().Counters["scancache_dedup_total"] < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("joiners never registered: dedup = %d",
				rec.Snapshot().Counters["scancache_dedup_total"])
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result", i)
		}
	}
	if hits[0] {
		t.Error("the computing caller must report a miss")
	}
	snap := rec.Snapshot()
	if got := snap.Counters["scancache_dedup_total"]; got != callers-1 {
		t.Errorf("scancache_dedup_total = %d, want %d", got, callers-1)
	}
	if got := snap.Counters["scancache_misses_total"]; got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	t.Parallel()
	c := New(8<<10, obs.NewRecorder())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%20)
				res, _, err := c.Do(key, func() (*analyzer.Result, error) {
					return &analyzer.Result{Tool: "phpSAFE", Target: key}, nil
				})
				if err != nil || res == nil {
					t.Errorf("Do(%s) = (%v, %v)", key, res, err)
					return
				}
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
}

func TestStatsTracksEffectiveness(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	// Budget fits roughly one entry, so the second insert evicts.
	c := New(100, rec)
	mk := func(key string) {
		c.Do(key, func() (*analyzer.Result, error) {
			return &analyzer.Result{Tool: "phpSAFE", Target: key,
				FilesAnalyzed: 1, LinesAnalyzed: 100}, nil
		})
	}
	mk("a") // miss, insert
	c.Get("a")
	mk("b") // miss, insert, evicts a
	c.Get("a")

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", st.Hits, st.Misses)
	}
	if st.Evictions != 1 || st.BytesEvicted <= 0 {
		t.Errorf("evictions = %d bytesEvicted = %d, want 1 and > 0", st.Evictions, st.BytesEvicted)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	if want := 0.25; st.HitRatio != want {
		t.Errorf("hit ratio = %v, want %v", st.HitRatio, want)
	}

	snap := rec.Snapshot()
	if got := snap.Counters["scancache_bytes_evicted_total"]; got != st.BytesEvicted {
		t.Errorf("scancache_bytes_evicted_total = %d, want %d", got, st.BytesEvicted)
	}
	if g, ok := snap.Gauges["scancache_hit_ratio"]; !ok || g != 0.25 {
		t.Errorf("scancache_hit_ratio gauge = %v (present %v), want 0.25", g, ok)
	}
}

func TestStatsCoalesced(t *testing.T) {
	t.Parallel()
	c := New(1<<20, nil)
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do("k", func() (*analyzer.Result, error) {
		close(started)
		<-release
		return &analyzer.Result{Tool: "phpSAFE"}, nil
	})
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do("k", func() (*analyzer.Result, error) {
				return &analyzer.Result{Tool: "phpSAFE"}, nil
			})
		}()
	}
	waitFor(t, func() bool { return c.Stats().Coalesced == 3 })
	close(release)
	wg.Wait()
	if got := c.Stats().Coalesced; got != 3 {
		t.Errorf("coalesced = %d, want 3", got)
	}
}

// waitFor polls cond briefly; the singleflight joiners register before
// blocking on the leader's channel.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
