// Package version pins the tree's single version string. Both binaries
// report it through their -version flags, and the scan daemon folds it
// into cache keys so results computed by one build are never served for
// another (a tool upgrade must invalidate every cached scan).
package version

import (
	"fmt"
	"runtime"
)

// Version is the reproduction's release identifier. Bump it whenever
// analysis behaviour changes: it is part of the scan-cache fingerprint.
const Version = "0.2.0"

// String renders the full human-readable version line.
func String() string {
	return fmt.Sprintf("phpSAFE-repro %s (%s %s/%s)",
		Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
