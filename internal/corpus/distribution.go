package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/analyzer"
)

// placement says where in a plugin a seeded snippet lives. Placement
// determines which tools can see it, per each tool's documented envelope:
//
//	placeTopProc    — top-level code in a purely procedural file:
//	                  visible to phpSAFE, RIPS and Pixy.
//	placeTopOOPFile — top-level code in a file that also declares a class:
//	                  Pixy fails the whole file; phpSAFE and RIPS see it.
//	placeUncalled   — inside a hook function never called by the plugin:
//	                  phpSAFE and RIPS analyze it; Pixy does not (§V.A).
//	placeMethod     — inside a class method: only phpSAFE (OOP, §III.E).
//	placeHuge       — top-level code in a file whose include closure
//	                  exceeds phpSAFE's budget: only RIPS (§V.A).
type placement int

const (
	placeTopProc placement = iota + 1
	placeTopOOPFile
	placeUncalled
	placeMethod
	placeHuge
)

// vulnKind selects the vulnerability snippet template.
type vulnKind int

const (
	// vkWpdbRowsEcho: $wpdb->get_results rows echoed (the §III.E
	// mail-subscribe-list pattern). WordPress-object vulnerability.
	vkWpdbRowsEcho vulnKind = iota + 1
	// vkWpdbVarEcho: $wpdb->get_var + stripslashes echo (the §V.C
	// wp-photo-album-plus pattern). WordPress-object vulnerability.
	vkWpdbVarEcho
	// vkGetOptionEcho: get_option (DB-backed WordPress function) echoed.
	vkGetOptionEcho
	// vkQueryVarEcho: get_query_var (GET-backed WordPress function).
	vkQueryVarEcho
	// vkProcDBEcho: mysql_query + mysql_fetch_assoc row echoed.
	vkProcDBEcho
	// vkGetEcho / vkPostEcho / vkCookieEcho / vkRequestEcho: direct
	// superglobal to echo flows (§V.C class 1, wp-symposium pattern).
	vkGetEcho
	vkPostEcho
	vkCookieEcho
	vkRequestEcho
	// vkFileEcho: fgets/file_get_contents echoed (§V.C qtranslate
	// pattern).
	vkFileEcho
	// vkSqliWpdb: $wpdb->query with unsanitized user input (SQLi).
	vkSqliWpdb
	// vkRegGlobals: an uninitialized variable echoed — exploitable only
	// under register_globals=1 (Pixy's specialty, §V.A).
	vkRegGlobals
	// --- Extended classes (Spec.ExtendedClasses), beyond the paper's
	// XSS/SQLi evaluation. ---
	// vkCmdExec: user input concatenated into system/exec/passthru
	// (command injection, CWE-78).
	vkCmdExec
	// vkEvalInject: user input reaching assert/create_function (code
	// evaluation, CWE-95; needs the security-extended rule pack).
	vkEvalInject
	// vkPathRead: user input in a filesystem path (path traversal,
	// CWE-22; needs the security-extended rule pack).
	vkPathRead
	// vkIncludeGet: user input in a native include/require path (file
	// inclusion, CWE-98).
	vkIncludeGet
	// vkHeaderRedirect: user input in a Location header (open redirect,
	// CWE-601; needs the security-extended rule pack).
	vkHeaderRedirect
)

// trapKind selects the false-positive trap template.
type trapKind int

const (
	// tkEscHtml: echo esc_html($_GET[...]) — safe; RIPS and Pixy do not
	// know the WordPress escaping API.
	tkEscHtml trapKind = iota + 1
	// tkSanitizeField: echo sanitize_text_field($_POST[...]) — same.
	tkSanitizeField
	// tkNumericGuard: is_numeric-guarded echo — safe; phpSAFE ignores
	// validation conditions (§III.C) and flags it.
	tkNumericGuard
	// tkNumericGuardSqli: is_numeric-guarded $wpdb query — phpSAFE SQLi
	// false positive.
	tkNumericGuardSqli
	// tkPregWhitelist: a custom cleaner built on a whitelist
	// preg_replace — safe; phpSAFE cannot interpret the regex.
	tkPregWhitelist
	// tkIncludedVar: echo of a variable defined in an included file —
	// safe; Pixy does not follow includes and suspects register_globals.
	tkIncludedVar
	// tkEscSql: mysql_query with esc_sql-escaped input — safe; RIPS and
	// Pixy do not know esc_sql.
	tkEscSql
	// tkPrepared: a $wpdb->prepare parameterized query — safe for every
	// tool; pure realism.
	tkPrepared
)

// vulnRow is one line of the seeding distribution: how many instances of
// a template/placement exist in both versions, only in 2012, and only in
// 2014.
type vulnRow struct {
	kind    vulnKind
	class   analyzer.VulnClass
	vector  analyzer.Vector
	place   placement
	oop     bool
	regGlob bool
	both    int
	only12  int
	only14  int
}

// vulnDistribution is calibrated so that running the three analyzers over
// the generated corpus reproduces the shapes of the paper's Table I
// (per-tool TP/FP/precision ordering), Table II (input-vector mix — the
// both/only12/only14 sums per vector equal Table II's columns), Fig. 2
// (overlap structure) and §V.D (persistence). See DESIGN.md §5.
var vulnDistribution = []vulnRow{
	// --- GET, XSS (Table II GET row minus the SQLi seeds) ---
	{kind: vkGetEcho, class: analyzer.XSS, vector: analyzer.VectorGET, place: placeHuge, both: 0, only12: 5, only14: 40},
	{kind: vkQueryVarEcho, class: analyzer.XSS, vector: analyzer.VectorGET, place: placeTopProc, both: 5, only12: 5, only14: 5},
	{kind: vkGetEcho, class: analyzer.XSS, vector: analyzer.VectorGET, place: placeMethod, oop: false, both: 8, only12: 12, only14: 3},
	{kind: vkGetEcho, class: analyzer.XSS, vector: analyzer.VectorGET, place: placeUncalled, both: 12, only12: 18, only14: 12},
	{kind: vkGetEcho, class: analyzer.XSS, vector: analyzer.VectorGET, place: placeTopProc, both: 4, only12: 8, only14: 0},
	{kind: vkGetEcho, class: analyzer.XSS, vector: analyzer.VectorGET, place: placeTopOOPFile, both: 1, only12: 10, only14: 12},

	// --- GET, SQLi (only phpSAFE detects: wpdb-encapsulated) ---
	{kind: vkSqliWpdb, class: analyzer.SQLi, vector: analyzer.VectorGET, place: placeTopProc, oop: true, both: 4, only12: 1, only14: 2},
	{kind: vkSqliWpdb, class: analyzer.SQLi, vector: analyzer.VectorGET, place: placeMethod, oop: true, both: 2, only12: 1, only14: 1},

	// --- POST, XSS ---
	{kind: vkPostEcho, class: analyzer.XSS, vector: analyzer.VectorPOST, place: placeMethod, both: 3, only12: 3, only14: 6},
	{kind: vkPostEcho, class: analyzer.XSS, vector: analyzer.VectorPOST, place: placeUncalled, both: 6, only12: 4, only14: 18},
	{kind: vkPostEcho, class: analyzer.XSS, vector: analyzer.VectorPOST, place: placeTopProc, both: 2, only12: 4, only14: 0},
	{kind: vkPostEcho, class: analyzer.XSS, vector: analyzer.VectorPOST, place: placeTopOOPFile, both: 0, only12: 0, only14: 8},

	// --- POST/GET/COOKIE, XSS ---
	{kind: vkRegGlobals, class: analyzer.XSS, vector: analyzer.VectorRequest, place: placeTopProc, regGlob: true, both: 8, only12: 5, only14: 0},
	{kind: vkCookieEcho, class: analyzer.XSS, vector: analyzer.VectorCookie, place: placeUncalled, both: 5, only12: 0, only14: 26},
	{kind: vkRequestEcho, class: analyzer.XSS, vector: analyzer.VectorRequest, place: placeTopProc, both: 3, only12: 0, only14: 0},
	{kind: vkCookieEcho, class: analyzer.XSS, vector: analyzer.VectorCookie, place: placeMethod, both: 3, only12: 0, only14: 4},
	{kind: vkRequestEcho, class: analyzer.XSS, vector: analyzer.VectorRequest, place: placeTopOOPFile, both: 0, only12: 0, only14: 8},

	// --- DB, XSS: WordPress-object (OOP) vulnerabilities ---
	{kind: vkWpdbRowsEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeMethod, oop: true, both: 50, only12: 10, only14: 20},
	{kind: vkWpdbRowsEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeTopOOPFile, oop: true, both: 30, only12: 5, only14: 10},
	{kind: vkWpdbVarEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeTopProc, oop: true, both: 25, only12: 5, only14: 10},
	{kind: vkWpdbRowsEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeUncalled, oop: true, both: 20, only12: 6, only14: 14},

	// --- DB, XSS: WordPress function source (phpSAFE only, not OOP) ---
	{kind: vkGetOptionEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeTopProc, both: 12, only12: 8, only14: 28},

	// --- DB, XSS: procedural mysql_* flows (RIPS-visible) ---
	{kind: vkProcDBEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeUncalled, both: 15, only12: 5, only14: 84},
	{kind: vkProcDBEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeTopProc, both: 6, only12: 2, only14: 0},
	{kind: vkProcDBEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeTopOOPFile, both: 4, only12: 0, only14: 30},
	{kind: vkProcDBEcho, class: analyzer.XSS, vector: analyzer.VectorDB, place: placeMethod, both: 0, only12: 8, only14: 5},

	// --- File/Function/Array, XSS ---
	{kind: vkFileEcho, class: analyzer.XSS, vector: analyzer.VectorFile, place: placeUncalled, both: 2, only12: 18, only14: 3},
	{kind: vkFileEcho, class: analyzer.XSS, vector: analyzer.VectorFile, place: placeMethod, both: 1, only12: 11, only14: 4},
	{kind: vkFileEcho, class: analyzer.XSS, vector: analyzer.VectorFile, place: placeTopProc, both: 1, only12: 8, only14: 0},
}

// extendedVulnDistribution seeds the classes beyond the paper's XSS/SQLi
// evaluation (Spec.ExtendedClasses): command injection, code evaluation,
// path traversal, file inclusion and open redirect. It is expanded after
// the base tables so enabling it never perturbs the base corpus — the
// default corpus stays byte-identical with the flag off.
var extendedVulnDistribution = []vulnRow{
	{kind: vkCmdExec, class: analyzer.CmdInjection, vector: analyzer.VectorGET, place: placeTopProc, both: 4, only12: 2, only14: 3},
	{kind: vkCmdExec, class: analyzer.CmdInjection, vector: analyzer.VectorGET, place: placeUncalled, both: 3, only12: 1, only14: 2},
	{kind: vkEvalInject, class: analyzer.CodeEval, vector: analyzer.VectorPOST, place: placeTopProc, both: 3, only12: 1, only14: 2},
	{kind: vkEvalInject, class: analyzer.CodeEval, vector: analyzer.VectorPOST, place: placeUncalled, both: 2, only12: 0, only14: 2},
	{kind: vkPathRead, class: analyzer.PathTraversal, vector: analyzer.VectorGET, place: placeTopProc, both: 4, only12: 1, only14: 3},
	{kind: vkPathRead, class: analyzer.PathTraversal, vector: analyzer.VectorGET, place: placeUncalled, both: 2, only12: 1, only14: 2},
	{kind: vkIncludeGet, class: analyzer.FileInclusion, vector: analyzer.VectorGET, place: placeTopProc, both: 3, only12: 1, only14: 2},
	{kind: vkHeaderRedirect, class: analyzer.OpenRedirect, vector: analyzer.VectorGET, place: placeTopProc, both: 3, only12: 1, only14: 2},
}

// trapRow is one line of the false-positive trap distribution.
type trapRow struct {
	kind   trapKind
	class  analyzer.VulnClass
	place  placement
	both   int
	only12 int
	only14 int
}

// trapDistribution is calibrated against Table I's FP columns: RIPS's FPs
// come from the WordPress escaping API it does not know; phpSAFE's from
// validation guards and custom regex cleaners it cannot interpret; Pixy's
// (the bulk) from variables defined in files it does not follow.
var trapDistribution = []trapRow{
	// RIPS false positives (plus Pixy where Pixy-visible).
	{kind: tkEscHtml, class: analyzer.XSS, place: placeTopProc, both: 12, only12: 13, only14: 0},
	{kind: tkEscHtml, class: analyzer.XSS, place: placeUncalled, both: 14, only12: 10, only14: 6},
	{kind: tkSanitizeField, class: analyzer.XSS, place: placeUncalled, both: 6, only12: 4, only14: 2},
	{kind: tkEscHtml, class: analyzer.XSS, place: placeTopOOPFile, both: 10, only12: 10, only14: 4},
	{kind: tkEscSql, class: analyzer.SQLi, place: placeTopOOPFile, both: 0, only12: 0, only14: 1},

	// phpSAFE false positives (guards and custom cleaners).
	{kind: tkNumericGuard, class: analyzer.XSS, place: placeMethod, both: 22, only12: 8, only14: 6},
	{kind: tkNumericGuard, class: analyzer.XSS, place: placeTopProc, both: 8, only12: 0, only14: 0},
	{kind: tkPregWhitelist, class: analyzer.XSS, place: placeMethod, both: 14, only12: 4, only14: 2},
	{kind: tkPregWhitelist, class: analyzer.XSS, place: placeUncalled, both: 4, only12: 3, only14: 1},
	{kind: tkNumericGuardSqli, class: analyzer.SQLi, place: placeMethod, both: 2, only12: 0, only14: 3},

	// Pixy false positives (register_globals suspicion on included
	// definitions).
	{kind: tkIncludedVar, class: analyzer.XSS, place: placeTopProc, both: 100, only12: 50, only14: 85},

	// Realism: parameterized queries nobody should flag.
	{kind: tkPrepared, class: analyzer.SQLi, place: placeTopProc, both: 12, only12: 0, only14: 8},
}

// vulnPlan is one concrete planned vulnerability in the master plan.
type vulnPlan struct {
	id      string
	row     vulnRow
	plugin  int
	numeric bool
	in2012  bool
	in2014  bool
	// variant picks among snippet template variations.
	variant int
}

// trapPlan is one concrete planned trap.
type trapPlan struct {
	row     trapRow
	plugin  int
	in2012  bool
	in2014  bool
	variant int
}

// masterPlan is the version-independent generation plan.
type masterPlan struct {
	vulns []vulnPlan
	traps []trapPlan
	// hugePlugins2012/2014 are the plugin indices hosting oversized
	// include-closure files per version.
	hugePlugins2012 []int
	hugePlugins2014 []int
}

// buildMasterPlan expands the distribution tables into concrete plans
// with plugin assignments.
func buildMasterPlan(spec Spec, rng *rand.Rand) *masterPlan {
	plan := &masterPlan{
		hugePlugins2012: hugeHosts(spec.HugeFiles2012, spec.OOPPlugins, 2),
		hugePlugins2014: hugeHosts(spec.HugeFiles2014, spec.OOPPlugins, 4),
	}

	nextID := 0
	assign := newAssigner(spec, rng, plan)

	addVuln := func(row vulnRow, in12, in14 bool) {
		nextID++
		plan.vulns = append(plan.vulns, vulnPlan{
			id:      fmt.Sprintf("V%04d", nextID),
			row:     row,
			plugin:  assign.pluginFor(row.place, row.oop, in12, in14),
			numeric: rng.Intn(100) < 39, // §V.C: 39% numeric variables
			in2012:  in12,
			in2014:  in14,
			variant: rng.Intn(4),
		})
	}
	for _, row := range vulnDistribution {
		for i := 0; i < row.both; i++ {
			addVuln(row, true, true)
		}
		for i := 0; i < row.only12; i++ {
			addVuln(row, true, false)
		}
		for i := 0; i < row.only14; i++ {
			addVuln(row, false, true)
		}
	}
	// Extended classes come strictly after the base tables: the base
	// plans consume the same rng draws either way, so the default corpus
	// is byte-identical whether or not the extension is enabled.
	if spec.ExtendedClasses {
		for _, row := range extendedVulnDistribution {
			for i := 0; i < row.both; i++ {
				addVuln(row, true, true)
			}
			for i := 0; i < row.only12; i++ {
				addVuln(row, true, false)
			}
			for i := 0; i < row.only14; i++ {
				addVuln(row, false, true)
			}
		}
	}

	addTrap := func(row trapRow, in12, in14 bool) {
		plan.traps = append(plan.traps, trapPlan{
			row:     row,
			plugin:  assign.pluginFor(row.place, false, in12, in14),
			in2012:  in12,
			in2014:  in14,
			variant: rng.Intn(4),
		})
	}
	for _, row := range trapDistribution {
		for i := 0; i < row.both; i++ {
			addTrap(row, true, true)
		}
		for i := 0; i < row.only12; i++ {
			addTrap(row, true, false)
		}
		for i := 0; i < row.only14; i++ {
			addTrap(row, false, true)
		}
	}
	return plan
}

// hugeHosts picks n distinct OOP plugin indices for huge files, spaced
// from a starting offset.
func hugeHosts(n, oopCount, start int) []int {
	hosts := make([]int, 0, n)
	for i := 0; i < n; i++ {
		hosts = append(hosts, (start+i*5)%oopCount)
	}
	return hosts
}

// assigner spreads plans over plugins under the placement constraints.
type assigner struct {
	spec Spec
	rng  *rand.Rand
	plan *masterPlan
	// rotating cursors per category keep the spread deterministic.
	oopCursor  int
	anyCursor  int
	oopDBSlots []int
}

func newAssigner(spec Spec, rng *rand.Rand, plan *masterPlan) *assigner {
	return &assigner{spec: spec, rng: rng, plan: plan}
}

// pluginFor picks the owning plugin index for a plan.
func (as *assigner) pluginFor(place placement, oopVuln bool, in12, in14 bool) int {
	switch place {
	case placeHuge:
		// Huge snippets live in their version's designated huge plugins.
		if in14 {
			hosts := as.plan.hugePlugins2014
			return hosts[as.anyCursor%len(hosts)]
		}
		hosts := as.plan.hugePlugins2012
		return hosts[as.anyCursor%len(hosts)]

	case placeMethod, placeTopOOPFile:
		// Must live in an OOP plugin. WordPress-object vulnerabilities
		// concentrate in fewer plugins (paper §V.A: 10 plugins in 2012,
		// 7 in 2014).
		as.oopCursor++
		if oopVuln {
			if in12 {
				return as.oopCursor % 10
			}
			return as.oopCursor % 7
		}
		return as.oopCursor % as.spec.OOPPlugins

	default:
		as.anyCursor++
		return as.anyCursor % as.spec.Plugins
	}
}
