package corpus

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/phpparse"
)

// extendedSpec is the default spec with the extra vulnerability classes
// switched on.
func extendedSpec() Spec {
	spec := DefaultSpec()
	spec.ExtendedClasses = true
	return spec
}

// baseClasses are the paper's evaluation classes; everything else comes
// from extendedVulnDistribution.
func isBaseClass(c analyzer.VulnClass) bool {
	return c == analyzer.XSS || c == analyzer.SQLi
}

func TestDefaultCorpusHasNoExtendedClasses(t *testing.T) {
	t.Parallel()
	for _, c := range []*Corpus{gen2012, gen2014} {
		for _, g := range c.Truths {
			if !isBaseClass(g.Class) {
				t.Errorf("%s: default corpus seeded extended class %s (%s)",
					c.Version, g.Class, g.ID)
			}
		}
	}
}

func TestExtendedClassesSeeded(t *testing.T) {
	t.Parallel()
	e12, e14, err := Generate(extendedSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := []analyzer.VulnClass{
		analyzer.CmdInjection,
		analyzer.CodeEval,
		analyzer.PathTraversal,
		analyzer.FileInclusion,
		analyzer.OpenRedirect,
	}
	for _, c := range []*Corpus{e12, e14} {
		seeded := make(map[analyzer.VulnClass]int)
		for _, g := range c.Truths {
			seeded[g.Class]++
		}
		for _, class := range want {
			if seeded[class] == 0 {
				t.Errorf("%s: extended corpus has no %s vulnerabilities", c.Version, class)
			}
		}
	}

	// The 2014 extended snapshot must carry the full per-row budget.
	wantTotal := 0
	for _, row := range extendedVulnDistribution {
		wantTotal += row.both + row.only14
	}
	got := 0
	for _, g := range e14.Truths {
		if !isBaseClass(g.Class) {
			got++
		}
	}
	if got != wantTotal {
		t.Errorf("2014 extended vuln count = %d, want %d", got, wantTotal)
	}
}

func TestExtendedBaseUnperturbed(t *testing.T) {
	t.Parallel()
	// Enabling ExtendedClasses must reproduce the base vulnerabilities
	// with unchanged identity: same IDs, classes, vectors and kinds, in
	// the same order (extended rows expand strictly after the base rows,
	// so the base rng draws are a shared prefix).
	_, e14, err := Generate(extendedSpec())
	if err != nil {
		t.Fatal(err)
	}
	var base []GroundTruth
	for _, g := range e14.Truths {
		if isBaseClass(g.Class) {
			base = append(base, g)
		}
	}
	if len(base) != len(gen2014.Truths) {
		t.Fatalf("extended corpus has %d base truths, default has %d",
			len(base), len(gen2014.Truths))
	}
	for i, g := range gen2014.Truths {
		got := base[i]
		if got.ID != g.ID || got.Class != g.Class || got.Vector != g.Vector || got.Kind != g.Kind {
			t.Fatalf("base truth %d drifted: got %+v, want %+v", i, got, g)
		}
	}
}

func TestExtendedCorpusParsesAndPointsAtSinks(t *testing.T) {
	t.Parallel()
	e12, e14, err := Generate(extendedSpec())
	if err != nil {
		t.Fatal(err)
	}
	sinkHints := []string{
		"echo", "print", "query", // base classes
		"system", "exec(", "passthru", // cmd-exec
		"assert",                      // eval-inject
		"readfile", "fopen", "unlink", // path-read
		"include", "require", // include-get
		"header", // header-redirect
	}
	for _, c := range []*Corpus{e12, e14} {
		for _, target := range c.Targets {
			for _, f := range target.Files {
				parsed := phpparse.Parse(f.Path, f.Content)
				if len(parsed.Errors) > 0 {
					t.Errorf("%s %s/%s: parse errors: %v",
						c.Version, target.Name, f.Path, parsed.Errors[:min(3, len(parsed.Errors))])
				}
			}
		}
		for _, g := range c.Truths {
			target := c.Target(g.Plugin)
			file, ok := target.File(g.File)
			if !ok {
				t.Fatalf("%s: missing file %s", g.Plugin, g.File)
			}
			lines := strings.Split(file.Content, "\n")
			if g.Line < 1 || g.Line > len(lines) {
				t.Fatalf("%s %s:%d out of range", g.Plugin, g.File, g.Line)
			}
			text := lines[g.Line-1]
			found := false
			for _, hint := range sinkHints {
				if strings.Contains(text, hint) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s %s %s:%d does not look like a sink: %q",
					c.Version, g.Plugin, g.File, g.Line, text)
			}
		}
	}
}
