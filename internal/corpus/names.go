package corpus

import (
	"fmt"
	"strings"
)

// pluginNames are the 35 plugin identities. The first OOPPlugins entries
// are the object-oriented plugins. Several names nod to plugins the paper
// itself mentions (mail-subscribe-list, wp-photo-album-plus, qtranslate,
// wp-symposium).
var pluginNames = []string{
	// Object-oriented plugins (indices 0..18).
	"mail-subscribe-list",
	"wp-photo-album-plus",
	"wp-symposium",
	"event-calendar-pro",
	"simple-forum-engine",
	"gallery-manager-plus",
	"contact-form-builder",
	"newsletter-campaigns",
	"shop-catalog-lite",
	"member-directory",
	"booking-scheduler",
	"poll-voting-system",
	"download-monitor-x",
	"testimonial-rotator",
	"faq-accordion-pro",
	"slider-revolutions",
	"user-profile-fields",
	"review-rating-stars",
	"social-share-counts",
	// Procedural plugins (indices 19..34).
	"qtranslate",
	"simple-guestbook",
	"link-shortener",
	"random-quotes",
	"visitor-counter",
	"sitemap-generator",
	"related-posts-basic",
	"rss-feed-importer",
	"maintenance-mode",
	"code-highlighter",
	"archive-widget",
	"breadcrumb-trail",
	"custom-footer-text",
	"image-watermarker",
	"search-log",
	"print-friendly-page",
}

// pluginName returns the canonical name for a plugin index, extending the
// fixed list deterministically for oversized specs.
func pluginName(i int) string {
	if i < len(pluginNames) {
		return pluginNames[i]
	}
	return fmt.Sprintf("extra-plugin-%02d", i)
}

// classNameFor derives a PHP class name from a plugin name:
// "mail-subscribe-list" → "Mail_Subscribe_List".
func classNameFor(plugin string) string {
	parts := strings.Split(plugin, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "_")
}

// funcPrefixFor derives a function prefix: "mail-subscribe-list" → "msl".
func funcPrefixFor(plugin string) string {
	var sb strings.Builder
	for _, part := range strings.Split(plugin, "-") {
		if part != "" {
			sb.WriteByte(part[0])
		}
	}
	return sb.String()
}

// Identifier word pools for generated variables and fields.
var (
	nounPool = []string{
		"item", "entry", "record", "post", "page", "user", "member",
		"comment", "message", "subscriber", "event", "ticket", "order",
		"product", "album", "photo", "topic", "reply", "field", "option",
		"setting", "label", "title", "caption", "note", "tag", "category",
		"link", "slot", "row",
	}
	numericNounPool = []string{
		"id", "count", "page_id", "item_id", "user_id", "post_id",
		"offset", "limit", "index", "year", "month", "day", "level",
		"rank", "score", "qty", "num", "total", "width", "height",
	}
	tablePool = []string{
		"entries", "subscribers", "events", "messages", "albums",
		"photos", "topics", "orders", "logs", "ratings", "votes",
		"downloads", "profiles", "reviews", "shares",
	}
	fieldPool = []string{
		"name", "email", "body", "subject", "content", "summary",
		"address", "phone", "website", "bio", "headline", "excerpt",
	}
	optionPool = []string{
		"site_title", "footer_text", "welcome_message", "theme_color",
		"date_format", "items_per_page", "admin_email", "cache_ttl",
		"header_banner", "locale_code", "widget_heading", "button_label",
	}
)

// nameGen hands out unique identifiers within one plugin version so
// generated functions and variables never collide.
type nameGen struct {
	prefix  string
	counter int
}

// newNameGen returns a generator with the plugin's function prefix.
func newNameGen(plugin string) *nameGen {
	return &nameGen{prefix: funcPrefixFor(plugin)}
}

// next returns a unique suffix number.
func (ng *nameGen) next() int {
	ng.counter++
	return ng.counter
}

// fn builds a unique plugin-prefixed function name like "msl_show_item_7".
func (ng *nameGen) fn(stem string) string {
	return fmt.Sprintf("%s_%s_%d", ng.prefix, stem, ng.next())
}

// v builds a unique variable name like "item3".
func (ng *nameGen) v(stem string) string {
	return fmt.Sprintf("%s%d", stem, ng.next())
}

// pick selects deterministically from a pool using the generator counter.
func (ng *nameGen) pick(pool []string) string {
	ng.counter++
	return pool[ng.counter%len(pool)]
}
