package corpus

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wordpress"
)

// WriteTo materializes the corpus under dir/<version>/: one directory per
// plugin, the WordPress API stub file, and labels.tsv with the ground
// truth (one row per seeded vulnerability or trap). The layout is what
// cmd/phpsafe and external tools can scan directly.
func (c *Corpus) WriteTo(dir string) error {
	root := filepath.Join(dir, string(c.Version))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err := os.WriteFile(filepath.Join(root, wordpress.StubPath),
		[]byte(wordpress.StubSource()), 0o644); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	for _, target := range c.Targets {
		for _, f := range target.Files {
			path := filepath.Join(root, target.Name, filepath.FromSlash(f.Path))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return fmt.Errorf("corpus: %w", err)
			}
			if err := os.WriteFile(path, []byte(f.Content), 0o644); err != nil {
				return fmt.Errorf("corpus: %w", err)
			}
		}
	}
	return c.writeLabels(filepath.Join(root, "labels.tsv"))
}

// writeLabels writes the ground-truth TSV.
func (c *Corpus) writeLabels(path string) error {
	labels, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	defer labels.Close()

	fmt.Fprintln(labels, "type\tid\tplugin\tfile\tline\tclass\tvector\toop\tregister_globals\tnumeric\tpersists\tkind")
	for _, g := range c.Truths {
		fmt.Fprintf(labels, "vuln\t%s\t%s\t%s\t%d\t%s\t%s\t%t\t%t\t%t\t%t\t%s\n",
			g.ID, g.Plugin, g.File, g.Line, g.Class, g.Vector,
			g.OOP, g.RegisterGlobals, g.Numeric, g.Persists, g.Kind)
	}
	for _, tr := range c.Traps {
		fmt.Fprintf(labels, "trap\t-\t%s\t%s\t%d\t%s\t-\t-\t-\t-\t-\t%s\n",
			tr.Plugin, tr.File, tr.Line, tr.Class, tr.Kind)
	}
	return labels.Sync()
}
