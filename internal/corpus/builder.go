package corpus

import "strings"

// fileBuilder assembles one PHP file line by line, tracking line numbers
// so snippet emitters can record exact ground-truth sink positions.
type fileBuilder struct {
	// path is the plugin-relative file path.
	path string
	// lines holds the emitted source lines (no trailing newlines).
	lines []string
}

// newFileBuilder starts a PHP file with its open tag.
func newFileBuilder(path string) *fileBuilder {
	return &fileBuilder{path: path, lines: []string{"<?php"}}
}

// add appends lines and returns the 1-based line number of the first one.
func (fb *fileBuilder) add(lines ...string) int {
	first := len(fb.lines) + 1
	fb.lines = append(fb.lines, lines...)
	return first
}

// nextLine returns the 1-based number the next added line will get.
func (fb *fileBuilder) nextLine() int { return len(fb.lines) + 1 }

// lineCount returns the current number of lines.
func (fb *fileBuilder) lineCount() int { return len(fb.lines) }

// content renders the file.
func (fb *fileBuilder) content() string {
	return strings.Join(fb.lines, "\n") + "\n"
}
