package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/phpparse"
)

// generateOnce caches one generation for the whole test package.
var gen2012, gen2014 = MustGenerate()

func TestPopulationShape(t *testing.T) {
	t.Parallel()
	spec := DefaultSpec()

	if got := len(gen2012.Targets); got != spec.Plugins {
		t.Errorf("2012 plugins = %d, want %d", got, spec.Plugins)
	}
	if got := len(gen2014.Targets); got != spec.Plugins {
		t.Errorf("2014 plugins = %d, want %d", got, spec.Plugins)
	}

	// Line counts should land near the paper's 89,560 / 180,801 (±15%).
	check := func(name string, got, want int) {
		t.Helper()
		lo, hi := want*85/100, want*115/100
		if got < lo || got > hi {
			t.Errorf("%s lines = %d, want within [%d, %d]", name, got, lo, hi)
		}
	}
	check("2012", gen2012.Lines(), spec.TargetLines2012)
	check("2014", gen2014.Lines(), spec.TargetLines2014)

	// File counts near 266 / 356 (±20%).
	files12, files14 := gen2012.Files(), gen2014.Files()
	if files12 < 212 || files12 > 320 {
		t.Errorf("2012 files = %d, want near 266", files12)
	}
	if files14 < 285 || files14 > 427 {
		t.Errorf("2014 files = %d, want near 356", files14)
	}
}

func TestTableIIVectorSums(t *testing.T) {
	t.Parallel()
	// The seeded distribution must reproduce Table II's columns exactly.
	wantRows := map[string][3]int{ // row → {2012, 2014, both}
		"POST":                {22, 43, 11},
		"GET":                 {96, 111, 36},
		"POST/GET/COOKIE":     {24, 57, 19},
		"DB":                  {211, 363, 162},
		"File/Function/Array": {41, 11, 4},
	}
	count := func(c *Corpus) map[string]int {
		m := make(map[string]int)
		for _, g := range c.Truths {
			m[g.Vector.TableIIRow()]++
		}
		return m
	}
	got12, got14 := count(gen2012), count(gen2014)
	persisting := make(map[string]int)
	for _, g := range gen2014.Truths {
		if g.Persists {
			persisting[g.Vector.TableIIRow()]++
		}
	}
	for row, want := range wantRows {
		if got12[row] != want[0] {
			t.Errorf("2012 %s = %d, want %d", row, got12[row], want[0])
		}
		if got14[row] != want[1] {
			t.Errorf("2014 %s = %d, want %d", row, got14[row], want[1])
		}
		if persisting[row] != want[2] {
			t.Errorf("both %s = %d, want %d", row, persisting[row], want[2])
		}
	}
}

func TestOOPVulnCounts(t *testing.T) {
	t.Parallel()
	// §V.A: 151 WordPress-object vulnerabilities in 2012, 179 in 2014.
	countOOP := func(c *Corpus) int {
		n := 0
		for _, g := range c.Truths {
			if g.OOP && g.Class == analyzer.XSS {
				n++
			}
		}
		return n
	}
	if got := countOOP(gen2012); got != 151 {
		t.Errorf("2012 OOP XSS vulns = %d, want 151", got)
	}
	if got := countOOP(gen2014); got != 179 {
		t.Errorf("2014 OOP XSS vulns = %d, want 179", got)
	}
}

func TestSQLiCounts(t *testing.T) {
	t.Parallel()
	countSQLi := func(c *Corpus) int {
		n := 0
		for _, g := range c.Truths {
			if g.Class == analyzer.SQLi {
				n++
			}
		}
		return n
	}
	if got := countSQLi(gen2012); got != 8 {
		t.Errorf("2012 SQLi = %d, want 8", got)
	}
	if got := countSQLi(gen2014); got != 9 {
		t.Errorf("2014 SQLi = %d, want 9", got)
	}
}

func TestPersistenceShare(t *testing.T) {
	t.Parallel()
	// §V.D / §VI: roughly 40% of the 2014 vulnerabilities persist.
	persisting := 0
	for _, g := range gen2014.Truths {
		if g.Persists {
			persisting++
		}
	}
	share := float64(persisting) / float64(len(gen2014.Truths))
	if share < 0.32 || share > 0.48 {
		t.Errorf("persistence share = %.2f, want ≈ 0.40", share)
	}
	// Persisting IDs must exist in the 2012 truth set.
	ids12 := make(map[string]bool, len(gen2012.Truths))
	for _, g := range gen2012.Truths {
		ids12[g.ID] = true
	}
	for _, g := range gen2014.Truths {
		if g.Persists && !ids12[g.ID] {
			t.Errorf("persisting vuln %s not present in 2012 corpus", g.ID)
		}
	}
}

func TestNumericShare(t *testing.T) {
	t.Parallel()
	// §V.C: about 39% of vulnerable variables store numeric values.
	numeric := 0
	for _, g := range gen2014.Truths {
		if g.Numeric {
			numeric++
		}
	}
	share := float64(numeric) / float64(len(gen2014.Truths))
	if share < 0.30 || share > 0.48 {
		t.Errorf("numeric share = %.2f, want ≈ 0.39", share)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a12, a14, err := Generate(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*Corpus{{gen2012, a12}, {gen2014, a14}} {
		x, y := pair[0], pair[1]
		if len(x.Truths) != len(y.Truths) || len(x.Traps) != len(y.Traps) {
			t.Fatalf("non-deterministic label counts")
		}
		for i := range x.Targets {
			if len(x.Targets[i].Files) != len(y.Targets[i].Files) {
				t.Fatalf("plugin %s file count differs", x.Targets[i].Name)
			}
			for j := range x.Targets[i].Files {
				if x.Targets[i].Files[j].Content != y.Targets[i].Files[j].Content {
					t.Fatalf("plugin %s file %s differs between runs",
						x.Targets[i].Name, x.Targets[i].Files[j].Path)
				}
			}
		}
	}
}

func TestAllFilesParse(t *testing.T) {
	t.Parallel()
	for _, c := range []*Corpus{gen2012, gen2014} {
		for _, target := range c.Targets {
			for _, f := range target.Files {
				parsed := phpparse.Parse(f.Path, f.Content)
				if len(parsed.Errors) > 0 {
					t.Errorf("%s %s/%s: parse errors: %v",
						c.Version, target.Name, f.Path, parsed.Errors[:min(3, len(parsed.Errors))])
				}
			}
		}
	}
}

func TestGroundTruthLinesPointAtSinks(t *testing.T) {
	t.Parallel()
	// Every ground-truth line must contain sink-looking source text.
	for _, c := range []*Corpus{gen2012, gen2014} {
		for _, g := range c.Truths {
			target := c.Target(g.Plugin)
			if target == nil {
				t.Fatalf("missing plugin %s", g.Plugin)
			}
			file, ok := target.File(g.File)
			if !ok {
				t.Fatalf("%s: missing file %s", g.Plugin, g.File)
			}
			lines := strings.Split(file.Content, "\n")
			if g.Line < 1 || g.Line > len(lines) {
				t.Fatalf("%s %s:%d out of range", g.Plugin, g.File, g.Line)
			}
			text := lines[g.Line-1]
			if !strings.Contains(text, "echo") && !strings.Contains(text, "print") &&
				!strings.Contains(text, "query") {
				t.Errorf("%s %s %s:%d does not look like a sink: %q",
					c.Version, g.Plugin, g.File, g.Line, text)
			}
		}
	}
}

func TestHugeFilesPresent(t *testing.T) {
	t.Parallel()
	countHuge := func(c *Corpus) int {
		n := 0
		for _, target := range c.Targets {
			for _, f := range target.Files {
				if strings.HasSuffix(f.Path, "huge-admin.php") {
					n++
				}
			}
		}
		return n
	}
	if got := countHuge(gen2012); got != 1 {
		t.Errorf("2012 huge files = %d, want 1", got)
	}
	if got := countHuge(gen2014); got != 3 {
		t.Errorf("2014 huge files = %d, want 3", got)
	}
}

func TestOOPPluginShare(t *testing.T) {
	t.Parallel()
	// 19 of 35 plugins declare classes (§V.A).
	oop := 0
	for _, target := range gen2012.Targets {
		hasClass := false
		for _, f := range target.Files {
			if strings.Contains(f.Content, "class ") && strings.Contains(f.Path, "class-") {
				hasClass = true
			}
		}
		if hasClass {
			oop++
		}
	}
	if oop != DefaultSpec().OOPPlugins {
		t.Errorf("OOP plugins = %d, want %d", oop, DefaultSpec().OOPPlugins)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	t.Parallel()
	if _, _, err := Generate(Spec{Plugins: 0}); err == nil {
		t.Error("zero plugins should be rejected")
	}
	if _, _, err := Generate(Spec{Plugins: 3, OOPPlugins: 5}); err == nil {
		t.Error("OOP > plugins should be rejected")
	}
}

func TestWriteTo(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if err := gen2012.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	// Spot-check structure: stub, one plugin file, labels.
	for _, rel := range []string{
		"2012/wp-stubs.php",
		"2012/mail-subscribe-list/mail-subscribe-list.php",
		"2012/labels.tsv",
	} {
		if _, err := os.Stat(filepath.Join(dir, filepath.FromSlash(rel))); err != nil {
			t.Errorf("missing %s: %v", rel, err)
		}
	}
	labels, err := os.ReadFile(filepath.Join(dir, "2012", "labels.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(labels), "\n")
	want := 1 + len(gen2012.Truths) + len(gen2012.Traps)
	if lines != want {
		t.Errorf("labels lines = %d, want %d", lines, want)
	}
	if !strings.Contains(string(labels), "register_globals") {
		t.Error("labels header missing expected column")
	}
}
