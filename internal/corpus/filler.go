package corpus

import (
	"fmt"
	"math/rand"
)

// fillerBlock returns a benign top-level code block. Filler is carefully
// taint-free for every analyzer: no superglobals, no input functions, no
// undefined variable reads (which would trip Pixy's register_globals
// modeling), and nothing that echoes framework-sourced data.
func fillerBlock(ng *nameGen, rng *rand.Rand) []string {
	switch rng.Intn(8) {
	case 0: // i18n string table
		name := ng.v("strings")
		return []string{
			"/** Translatable interface strings. */",
			fmt.Sprintf("$%s = array(", name),
			"\t'save'   => 'Save Changes',",
			"\t'cancel' => 'Cancel',",
			"\t'delete' => 'Delete entry',",
			fmt.Sprintf("\t'title'  => '%s panel',", ng.pick(nounPool)),
			");",
			fmt.Sprintf("update_option('labels_%d', $%s);", ng.next(), name),
			"",
		}
	case 1: // version constant + registration
		n := ng.next()
		return []string{
			fmt.Sprintf("define('PLUGIN_MODULE_%d_VERSION', '1.%d.%d');", n, n%7, n%13),
			fmt.Sprintf("add_filter('the_content_%d', 'strip_tags');", n),
			"",
		}
	case 2: // defaults bootstrap
		opt := ng.v("defaults")
		return []string{
			fmt.Sprintf("$%s = array('per_page' => 10, 'order' => 'ASC', 'cache' => 300);", opt),
			fmt.Sprintf("if (false === get_option('boot_%d')) {", ng.next()),
			fmt.Sprintf("\tupdate_option('boot_%d', $%s);", ng.next(), opt),
			"}",
			"",
		}
	case 3: // static HTML banner
		return []string{
			"if (get_option('show_banner')) {",
			"\techo '<div class=\"banner\">';",
			fmt.Sprintf("\techo '<p>Powered by the %s module</p>';", ng.pick(nounPool)),
			"\techo '</div>';",
			"}",
			"",
		}
	case 4: // arithmetic bookkeeping
		a, b := ng.v("count"), ng.v("total")
		return []string{
			fmt.Sprintf("$%s = intval(get_option('hits_%d'));", a, ng.next()),
			fmt.Sprintf("$%s = $%s + 1;", b, a),
			fmt.Sprintf("update_option('hits_%d', $%s);", ng.next(), b),
			"",
		}
	case 5: // enqueue assets
		n := ng.next()
		return []string{
			fmt.Sprintf("wp_enqueue_style('mod-style-%d', plugin_dir_url(__FILE__) . 'css/style.css');", n),
			fmt.Sprintf("wp_enqueue_script('mod-script-%d', plugin_dir_url(__FILE__) . 'js/app.js');", n),
			"",
		}
	case 6: // safe echo of sanitized literal-derived value
		v := ng.v("slug")
		return []string{
			fmt.Sprintf("$%s = sanitize_key('section-%d');", v, ng.next()),
			fmt.Sprintf("echo '<section id=\"' . $%s . '\">';", v),
			"echo '</section>';",
			"",
		}
	default: // documented no-op hook registration
		return []string{
			"/*",
			" * Compatibility shim retained for installations migrated",
			" * from the 0.9 branch; the hook is a no-op since 1.2.",
			" */",
			fmt.Sprintf("add_action('admin_notices_%d', '__return_false');", ng.next()),
			"",
		}
	}
}

// fillerFunction returns a benign named function definition (helpers that
// other parts of the plugin call with literals, or not at all).
func fillerFunction(ng *nameGen, rng *rand.Rand) []string {
	name := ng.fn("helper")
	switch rng.Intn(5) {
	case 0: // numeric clamp
		return []string{
			"/**",
			" * Clamp a pagination size to a sane range.",
			" */",
			fmt.Sprintf("function %s($value) {", name),
			"\t$n = intval($value);",
			"\tif ($n < 1) {",
			"\t\treturn 1;",
			"\t}",
			"\tif ($n > 100) {",
			"\t\treturn 100;",
			"\t}",
			"\treturn $n;",
			"}",
			"",
		}
	case 1: // static markup renderer
		return []string{
			fmt.Sprintf("function %s() {", name),
			"\techo '<table class=\"widefat\">';",
			"\techo '<thead><tr><th>Name</th><th>Status</th></tr></thead>';",
			"\techo '<tbody></tbody>';",
			"\techo '</table>';",
			"}",
			"",
		}
	case 2: // option round-trip with literals
		n := ng.next()
		return []string{
			fmt.Sprintf("function %s($enabled = false) {", name),
			fmt.Sprintf("\tupdate_option('feature_%d', $enabled ? 1 : 0);", n),
			fmt.Sprintf("\treturn intval(get_option('feature_%d'));", n),
			"}",
			"",
		}
	case 3: // formatting helper that escapes
		return []string{
			fmt.Sprintf("function %s($label, $value) {", name),
			"\t$safe = esc_html($value);",
			"\treturn '<label>' . esc_html($label) . ': ' . $safe . '</label>';",
			"}",
			"",
		}
	default: // date helper
		return []string{
			fmt.Sprintf("function %s($ts = 0) {", name),
			"\t$ts = intval($ts);",
			"\tif ($ts <= 0) {",
			"\t\treturn '-';",
			"\t}",
			"\treturn date('Y-m-d', $ts);",
			"}",
			"",
		}
	}
}

// fillerMethod returns a benign method body for class filler.
func fillerMethod(ng *nameGen, rng *rand.Rand) []string {
	name := ng.fn("get")
	switch rng.Intn(4) {
	case 0:
		return []string{
			fmt.Sprintf("\tpublic function %s() {", name),
			fmt.Sprintf("\t\treturn $this->prefix . '%s';", ng.pick(nounPool)),
			"\t}",
			"",
		}
	case 1:
		n := ng.next()
		return []string{
			fmt.Sprintf("\tpublic function %s($n = %d) {", name, n%9+1),
			"\t\treturn intval($n) * 2;",
			"\t}",
			"",
		}
	case 2:
		return []string{
			fmt.Sprintf("\tprotected function %s() {", name),
			"\t\techo '<div class=\"widget-frame\">';",
			"\t\techo '</div>';",
			"\t}",
			"",
		}
	default:
		return []string{
			fmt.Sprintf("\tpublic function %s($key = '') {", name),
			"\t\t$key = sanitize_key($key);",
			fmt.Sprintf("\t\treturn get_option('cfg_%d_' . $key);", ng.next()),
			"\t}",
			"",
		}
	}
}

// fillerTemplate returns template-style filler using PHP's alternative
// syntax and inline HTML, for templates/display.php files.
func fillerTemplate(ng *nameGen, rng *rand.Rand) []string {
	n := ng.next()
	switch rng.Intn(3) {
	case 0:
		return []string{
			fmt.Sprintf("if (get_option('show_section_%d')): ?>", n),
			"<div class=\"section\">",
			"\t<h3>Latest updates</h3>",
			"\t<p>Nothing new this week.</p>",
			"</div>",
			"<?php endif;",
			"",
		}
	case 1:
		v := ng.v("i")
		return []string{
			fmt.Sprintf("for ($%s = 0; $%s < 3; $%s++): ?>", v, v, v),
			"<hr class=\"divider\" />",
			"<?php endfor;",
			"",
		}
	default:
		return []string{
			"?>",
			"<footer class=\"plugin-footer\">",
			fmt.Sprintf("\t<span>Module %d</span>", n),
			"</footer>",
			"<?php",
			"",
		}
	}
}
