// Package corpus generates the synthetic WordPress-plugin corpus that
// substitutes for the paper's 35 real plugins in their 2012 and 2014
// versions (DSN 2015, §IV.B).
//
// The real plugin snapshots (89,560 LOC in 2012, 180,801 LOC in 2014) are
// not redistributable and their vulnerability ground truth lives in the
// authors' manual-verification records. This generator reproduces the
// *population* the evaluation depends on, with exact machine-readable
// ground truth instead of a security expert:
//
//   - 35 plugins, 19 of them object-oriented (§V.A), in two versions.
//   - Seeded vulnerabilities distributed over the paper's input-vector
//     taxonomy (Table II): GET, POST, POST/GET/COOKIE, DB, and
//     File/Function/Array, including the WordPress-object (wpdb)
//     vulnerabilities only an OOP-aware tool can find.
//   - False-positive traps exercising each tool's documented blind spots:
//     WordPress sanitizers (RIPS/Pixy FPs), validation guards and custom
//     regex cleaners (phpSAFE FPs), variables defined in included files
//     (Pixy register_globals FPs).
//   - Persistence labels: a configurable share of the 2014 vulnerabilities
//     also exists, verbatim, in the 2012 version (§V.D inertia analysis).
//   - Robustness fixtures: files with oversized include closures that
//     phpSAFE cannot analyze, and OOP files Pixy cannot parse (§V.E).
//
// Generation is deterministic for a given Spec (including its Seed), so
// evaluations are reproducible; the analyzers never see the labels.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/analyzer"
)

// Version identifies a corpus snapshot year.
type Version string

// Corpus versions, matching the paper's two snapshots.
const (
	V2012 Version = "2012"
	V2014 Version = "2014"
)

// Spec parameterizes generation. Use DefaultSpec for the paper-calibrated
// population.
type Spec struct {
	// Seed drives all pseudo-random choices.
	Seed int64
	// Plugins is the number of plugins (the paper uses 35).
	Plugins int
	// OOPPlugins is how many plugins are object-oriented (the paper: 19).
	OOPPlugins int
	// TargetLines2012/2014 are the approximate corpus-wide line counts
	// (the paper: 89,560 and 180,801).
	TargetLines2012 int
	TargetLines2014 int
	// HugeFiles2012/2014 are the number of files with include closures
	// beyond phpSAFE's budget (the paper: 1 and 3).
	HugeFiles2012 int
	HugeFiles2014 int
	// HugeIncludeParts is how many part files each huge file includes;
	// it must exceed the analyzer's include budget.
	HugeIncludeParts int
	// ExtendedClasses additionally seeds vulnerability classes beyond
	// the paper's XSS/SQLi evaluation: command injection, code
	// evaluation, path traversal, file inclusion and open redirect
	// (see extendedVulnDistribution). Off by default — the paper-
	// calibrated corpus is byte-identical with the flag off.
	ExtendedClasses bool
}

// DefaultSpec returns the paper-calibrated specification. The seed is the
// DSN 2015 conference opening date.
func DefaultSpec() Spec {
	return Spec{
		Seed:             20150622,
		Plugins:          35,
		OOPPlugins:       19,
		TargetLines2012:  89560,
		TargetLines2014:  180801,
		HugeFiles2012:    1,
		HugeFiles2014:    3,
		HugeIncludeParts: 26,
	}
}

// GroundTruth is the label of one seeded vulnerability.
type GroundTruth struct {
	// ID is stable across versions: a 2014 vulnerability that persists
	// from 2012 carries the same ID in both corpora (§V.D).
	ID string
	// Plugin is the owning plugin's name.
	Plugin string
	// File is the plugin-relative path containing the sink.
	File string
	// Line is the sink's 1-based line.
	Line int
	// Class is the vulnerability class.
	Class analyzer.VulnClass
	// Vector is the input vector (Table II taxonomy).
	Vector analyzer.Vector
	// OOP marks WordPress-object vulnerabilities (§III.E, §V.A).
	OOP bool
	// RegisterGlobals marks vulnerabilities that exist only under the
	// register_globals=1 directive (§V.A: Pixy's specialty).
	RegisterGlobals bool
	// Numeric marks vulnerable variables meant to store numbers (§V.C:
	// 39% of vulnerable variables).
	Numeric bool
	// Persists marks 2014 vulnerabilities already present (and disclosed)
	// in the 2012 version.
	Persists bool
	// Kind names the generator template, for diagnostics.
	Kind string
}

// EasyToExploit reports whether the vulnerability is directly
// attacker-manipulable (§V.C class 1 / §V.D).
func (g GroundTruth) EasyToExploit() bool { return g.Vector.DirectlyManipulable() }

// Trap is the label of one seeded false-positive trap: code that is
// actually safe but that at least one tool is expected to flag.
type Trap struct {
	// Plugin, File, Line locate the trap's would-be sink.
	Plugin string
	File   string
	Line   int
	// Class is the vulnerability class a tool would report.
	Class analyzer.VulnClass
	// Kind names the trap template (esc-html, numeric-guard, ...).
	Kind string
}

// Corpus is one generated snapshot: the analyzable targets plus the
// labels the evaluation oracle uses.
type Corpus struct {
	// Version is the snapshot year.
	Version Version
	// Targets lists the plugins.
	Targets []*analyzer.Target
	// Truths lists every seeded vulnerability.
	Truths []GroundTruth
	// Traps lists every seeded false-positive trap.
	Traps []Trap
}

// Lines returns the corpus-wide source line count.
func (c *Corpus) Lines() int {
	total := 0
	for _, t := range c.Targets {
		total += t.Lines()
	}
	return total
}

// Files returns the corpus-wide file count.
func (c *Corpus) Files() int {
	total := 0
	for _, t := range c.Targets {
		total += len(t.Files)
	}
	return total
}

// Target returns the plugin with the given name, or nil.
func (c *Corpus) Target(name string) *analyzer.Target {
	for _, t := range c.Targets {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Generate builds both corpus versions from one specification. The same
// master plan drives both snapshots so persistence labels line up.
func Generate(spec Spec) (v2012, v2014 *Corpus, err error) {
	if spec.Plugins <= 0 || spec.OOPPlugins > spec.Plugins {
		return nil, nil, fmt.Errorf("corpus: invalid spec: %d plugins, %d OOP", spec.Plugins, spec.OOPPlugins)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	plan := buildMasterPlan(spec, rng)

	v2012 = emitVersion(spec, plan, V2012, rand.New(rand.NewSource(spec.Seed+1)))
	v2014 = emitVersion(spec, plan, V2014, rand.New(rand.NewSource(spec.Seed+2)))
	return v2012, v2014, nil
}

// MustGenerate is Generate for the default spec, panicking on spec errors
// (which cannot happen for DefaultSpec).
func MustGenerate() (*Corpus, *Corpus) {
	a, b, err := Generate(DefaultSpec())
	if err != nil {
		panic(err)
	}
	return a, b
}
