package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/analyzer"
)

// emitVersion renders one corpus snapshot from the master plan.
func emitVersion(spec Spec, plan *masterPlan, ver Version, rng *rand.Rand) *Corpus {
	c := &Corpus{Version: ver}

	hugeHosts := plan.hugePlugins2012
	targetLines := spec.TargetLines2012
	if ver == V2014 {
		hugeHosts = plan.hugePlugins2014
		targetLines = spec.TargetLines2014
	}
	hostSet := make(map[int]bool, len(hugeHosts))
	for _, h := range hugeHosts {
		hostSet[h] = true
	}

	// Per-plugin line weights ("a very diverse set", §IV.B).
	weights := make([]float64, spec.Plugins)
	var weightSum float64
	for i := range weights {
		weights[i] = 0.5 + 1.5*rng.Float64()
		weightSum += weights[i]
	}

	for i := 0; i < spec.Plugins; i++ {
		pe := &pluginEmitter{
			spec:     spec,
			idx:      i,
			name:     pluginName(i),
			oop:      i < spec.OOPPlugins,
			ver:      ver,
			rng:      rng,
			ng:       newNameGen(pluginName(i)),
			hugeHost: hostSet[i],
		}
		for _, vp := range plan.vulns {
			if vp.plugin == i && vp.inVersion(ver) {
				pe.vulns = append(pe.vulns, vp)
			}
		}
		for _, tp := range plan.traps {
			if tp.plugin == i && tp.inVersion(ver) {
				pe.traps = append(pe.traps, tp)
			}
		}
		pe.targetLines = int(weights[i] / weightSum * float64(targetLines))

		target := pe.emit()
		c.Targets = append(c.Targets, target)
		c.Truths = append(c.Truths, pe.truths...)
		c.Traps = append(c.Traps, pe.trapRecs...)
	}
	return c
}

// inVersion reports plan membership in a snapshot.
func (p vulnPlan) inVersion(v Version) bool {
	if v == V2012 {
		return p.in2012
	}
	return p.in2014
}

// inVersion reports plan membership in a snapshot.
func (p trapPlan) inVersion(v Version) bool {
	if v == V2012 {
		return p.in2012
	}
	return p.in2014
}

// pluginEmitter renders one plugin for one version.
type pluginEmitter struct {
	spec        Spec
	idx         int
	name        string
	oop         bool
	ver         Version
	rng         *rand.Rand
	ng          *nameGen
	vulns       []vulnPlan
	traps       []trapPlan
	hugeHost    bool
	targetLines int

	files    []*fileBuilder
	hooks    []string // function names registered via add_action
	truths   []GroundTruth
	trapRecs []Trap

	// mainExtraVulns/mainExtraTraps hold the share of top-level snippets
	// routed to the main file (2012 versions; 2014 uses ajax.php).
	mainExtraVulns []vulnPlan
	mainExtraTraps []trapPlan
}

// emit renders the plugin's files.
func (pe *pluginEmitter) emit() *analyzer.Target {
	// Partition plans by placement.
	byPlace := func(p placement) (vs []vulnPlan, ts []trapPlan) {
		for _, v := range pe.vulns {
			if v.row.place == p {
				vs = append(vs, v)
			}
		}
		for _, t := range pe.traps {
			if t.row.place == p {
				ts = append(ts, t)
			}
		}
		return vs, ts
	}
	topVs, topTs := byPlace(placeTopProc)
	oopVs, oopTs := byPlace(placeTopOOPFile)
	funcVs, funcTs := byPlace(placeUncalled)
	methVs, methTs := byPlace(placeMethod)
	hugeVs, _ := byPlace(placeHuge)

	// Separate the traps that need the settings file (included-var) from
	// other top-level traps.
	var includedTs, plainTopTs []trapPlan
	for _, t := range topTs {
		if t.row.kind == tkIncludedVar {
			includedTs = append(includedTs, t)
		} else {
			plainTopTs = append(plainTopTs, t)
		}
	}

	settingsVars := pe.buildSettings(len(includedTs))
	pe.buildAdmin(includedTs, settingsVars, splitVulns(topVs, 2, 0), splitTraps(plainTopTs, 2, 0))
	pe.buildFunctions(funcVs, funcTs)
	if pe.oop {
		pe.buildClassFile(methVs, methTs, oopVs, oopTs)
		pe.buildWidget()
	}
	pe.buildTemplates()
	if pe.ver == V2014 {
		pe.buildAjax(splitVulns(topVs, 2, 1), splitTraps(plainTopTs, 2, 1))
		pe.buildAPI()
	} else {
		// 2012 keeps its remaining top-level snippets in the main file.
		pe.mainExtraVulns = splitVulns(topVs, 2, 1)
		pe.mainExtraTraps = splitTraps(plainTopTs, 2, 1)
	}
	if pe.hugeHost {
		pe.buildHuge(hugeVs)
	}
	pe.buildMain() // last: it references the registered hooks

	pe.pad()

	target := &analyzer.Target{Name: pe.name}
	for _, fb := range pe.files {
		target.Files = append(target.Files, analyzer.SourceFile{
			Path:    fb.path,
			Content: fb.content(),
		})
	}
	return target
}

// splitVulns returns the bucket'th of n round-robin shares.
func splitVulns(vs []vulnPlan, n, bucket int) []vulnPlan {
	var out []vulnPlan
	for i, v := range vs {
		if i%n == bucket {
			out = append(out, v)
		}
	}
	return out
}

// splitTraps returns the bucket'th of n round-robin shares.
func splitTraps(ts []trapPlan, n, bucket int) []trapPlan {
	var out []trapPlan
	for i, t := range ts {
		if i%n == bucket {
			out = append(out, t)
		}
	}
	return out
}

// recordVuln appends a ground-truth record for a seeded vulnerability.
func (pe *pluginEmitter) recordVuln(p vulnPlan, file string, line int) {
	pe.truths = append(pe.truths, GroundTruth{
		ID:              p.id,
		Plugin:          pe.name,
		File:            file,
		Line:            line,
		Class:           p.row.class,
		Vector:          p.row.vector,
		OOP:             p.row.oop,
		RegisterGlobals: p.row.regGlob,
		Numeric:         p.numeric,
		Persists:        pe.ver == V2014 && p.in2012 && p.in2014,
		Kind:            kindName(p.row.kind),
	})
}

// recordTrap appends a trap record.
func (pe *pluginEmitter) recordTrap(p trapPlan, file string, line int) {
	pe.trapRecs = append(pe.trapRecs, Trap{
		Plugin: pe.name,
		File:   file,
		Line:   line,
		Class:  p.row.class,
		Kind:   trapName(p.row.kind),
	})
}

// emitVulnTop writes a vulnerability snippet at the top level of a file.
func (pe *pluginEmitter) emitVulnTop(fb *fileBuilder, p vulnPlan) {
	sn := vulnSnippet(p, pe.ng)
	start := fb.add(sn.lines...)
	fb.add("")
	pe.recordVuln(p, fb.path, start+sn.sinkIdx)
}

// emitTrapTop writes a trap snippet at the top level of a file.
func (pe *pluginEmitter) emitTrapTop(fb *fileBuilder, p trapPlan, settingsVar string) {
	sn := trapSnippet(p, pe.ng, settingsVar)
	start := fb.add(sn.lines...)
	fb.add("")
	pe.recordTrap(p, fb.path, start+sn.sinkIdx)
}

// emitVulnFunc wraps a vulnerability snippet in a hook function.
func (pe *pluginEmitter) emitVulnFunc(fb *fileBuilder, p vulnPlan) {
	sn := vulnSnippet(p, pe.ng).indent("\t")
	fname := pe.ng.fn("handler")
	fb.add(fmt.Sprintf("function %s() {", fname))
	start := fb.add(sn.lines...)
	fb.add("}", "")
	pe.hooks = append(pe.hooks, fname)
	pe.recordVuln(p, fb.path, start+sn.sinkIdx)
}

// emitTrapFunc wraps a trap snippet in a hook function.
func (pe *pluginEmitter) emitTrapFunc(fb *fileBuilder, p trapPlan) {
	sn := trapSnippet(p, pe.ng, "").indent("\t")
	fname := pe.ng.fn("handler")
	fb.add(fmt.Sprintf("function %s() {", fname))
	start := fb.add(sn.lines...)
	fb.add("}", "")
	pe.hooks = append(pe.hooks, fname)
	pe.recordTrap(p, fb.path, start+sn.sinkIdx)
}

// buildSettings writes inc/settings.php defining literal configuration
// variables; the first n are reserved for included-var traps and their
// names are returned.
func (pe *pluginEmitter) buildSettings(n int) []string {
	fb := newFileBuilder("inc/settings.php")
	fb.add("/** Plugin configuration defaults, included by the admin screens. */", "")
	vars := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v := pe.ng.v("cfg_" + pe.ng.pick(optionPool))
		vars = append(vars, v)
		fb.add(fmt.Sprintf("$%s = '%s default %d';", v, pe.ng.pick(nounPool), i+1))
	}
	fb.add("")
	for i := 0; i < 4; i++ {
		fb.add(fillerBlock(pe.ng, pe.rng)...)
	}
	pe.files = append(pe.files, fb)
	return vars
}

// buildAdmin writes admin/admin.php: includes the settings, then hosts
// the included-var traps, register-globals snippets and a share of the
// top-level plans.
func (pe *pluginEmitter) buildAdmin(includedTs []trapPlan, settingsVars []string,
	vs []vulnPlan, ts []trapPlan) {
	fb := newFileBuilder("admin/admin.php")
	fb.add("/** Admin screen rendering. */")
	fb.add("include 'inc/settings.php';", "")

	for i, t := range includedTs {
		pe.emitTrapTop(fb, t, settingsVars[i])
	}
	for _, v := range vs {
		pe.emitVulnTop(fb, v)
	}
	for _, t := range ts {
		pe.emitTrapTop(fb, t, "")
	}
	pe.files = append(pe.files, fb)
}

// buildFunctions writes includes/functions.php with the uncalled hook
// functions (§III.B: exported callbacks the CMS calls, not the plugin).
func (pe *pluginEmitter) buildFunctions(vs []vulnPlan, ts []trapPlan) {
	fb := newFileBuilder("includes/functions.php")
	fb.add("/** Hook callbacks registered with the WordPress API. */", "")
	for _, v := range vs {
		pe.emitVulnFunc(fb, v)
	}
	for _, t := range ts {
		pe.emitTrapFunc(fb, t)
	}
	for i := 0; i < 3; i++ {
		fb.add(fillerFunction(pe.ng, pe.rng)...)
	}
	pe.files = append(pe.files, fb)
}

// buildClassFile writes the plugin's main class with method-placed
// snippets, followed by top-level code (the placeTopOOPFile snippets that
// make Pixy fail the file while phpSAFE and RIPS still see the top
// level).
func (pe *pluginEmitter) buildClassFile(methVs []vulnPlan, methTs []trapPlan,
	topVs []vulnPlan, topTs []trapPlan) {
	className := classNameFor(pe.name) + "_Core"
	fb := newFileBuilder("class-" + pe.name + ".php")
	fb.add(
		"/**",
		fmt.Sprintf(" * Core controller for the %s plugin.", pe.name),
		" */",
		fmt.Sprintf("class %s {", className),
		"\tpublic $prefix = '"+funcPrefixFor(pe.name)+"';",
		"",
		"\tpublic function __construct() {",
		"\t\t$this->prefix = 'wp_"+funcPrefixFor(pe.name)+"';",
		"\t}",
		"",
	)
	for _, v := range methVs {
		sn := vulnSnippet(v, pe.ng).indent("\t\t")
		mname := pe.ng.fn("render")
		fb.add(fmt.Sprintf("\tpublic function %s() {", mname))
		start := fb.add(sn.lines...)
		fb.add("\t}", "")
		pe.recordVuln(v, fb.path, start+sn.sinkIdx)
	}
	for _, t := range methTs {
		sn := trapSnippet(t, pe.ng, "").indent("\t\t")
		mname := pe.ng.fn("render")
		fb.add(fmt.Sprintf("\tpublic function %s() {", mname))
		start := fb.add(sn.lines...)
		fb.add("\t}", "")
		pe.recordTrap(t, fb.path, start+sn.sinkIdx)
	}
	for i := 0; i < 2; i++ {
		fb.add(fillerMethod(pe.ng, pe.rng)...)
	}
	fb.add("}", "")

	for _, v := range topVs {
		pe.emitVulnTop(fb, v)
	}
	for _, t := range topTs {
		pe.emitTrapTop(fb, t, "")
	}
	pe.files = append(pe.files, fb)
}

// buildWidget writes a second class file for OOP plugins.
func (pe *pluginEmitter) buildWidget() {
	className := classNameFor(pe.name) + "_Widget"
	fb := newFileBuilder("includes/widget.php")
	fb.add(
		fmt.Sprintf("class %s extends WP_Widget {", className),
		"\tpublic $prefix = 'w';",
		"",
		"\tpublic function form() {",
		"\t\techo '<p class=\"widget-form\">Configure in the admin panel.</p>';",
		"\t}",
		"",
	)
	for i := 0; i < 2; i++ {
		fb.add(fillerMethod(pe.ng, pe.rng)...)
	}
	fb.add("}", "")
	pe.files = append(pe.files, fb)
}

// buildTemplates writes templates/display.php.
func (pe *pluginEmitter) buildTemplates() {
	fb := newFileBuilder("templates/display.php")
	fb.add("/** Front-end display template. */", "")
	for i := 0; i < 3; i++ {
		fb.add(fillerTemplate(pe.ng, pe.rng)...)
	}
	pe.files = append(pe.files, fb)
}

// buildAjax writes ajax.php (2014 versions only).
func (pe *pluginEmitter) buildAjax(vs []vulnPlan, ts []trapPlan) {
	fb := newFileBuilder("ajax.php")
	fb.add("/** AJAX endpoints added in the 2.x series. */", "")
	for _, v := range vs {
		pe.emitVulnTop(fb, v)
	}
	for _, t := range ts {
		pe.emitTrapTop(fb, t, "")
	}
	pe.files = append(pe.files, fb)
}

// buildAPI writes api/rest.php filler (2014 versions only).
func (pe *pluginEmitter) buildAPI() {
	fb := newFileBuilder("api/rest.php")
	fb.add("/** REST-style endpoints (experimental). */", "")
	for i := 0; i < 3; i++ {
		fb.add(fillerFunction(pe.ng, pe.rng)...)
	}
	pe.files = append(pe.files, fb)
}

// buildHuge writes the oversized-include-closure file and its parts: the
// robustness fixture phpSAFE cannot analyze (include budget) and Pixy
// cannot parse (class declaration), leaving RIPS as the only detector of
// the snippets inside (§V.A).
func (pe *pluginEmitter) buildHuge(vs []vulnPlan) {
	fb := newFileBuilder("huge-admin.php")
	fb.add("/** Monolithic admin module: loads every feature part. */", "")
	for i := 0; i < pe.spec.HugeIncludeParts; i++ {
		fb.add(fmt.Sprintf("include 'parts/part%02d.php';", i))
	}
	fb.add("")
	fb.add(
		fmt.Sprintf("class %s_Huge_Module {", classNameFor(pe.name)),
		"\tpublic $prefix = 'huge';",
		"",
		"\tpublic function boot() {",
		"\t\treturn true;",
		"\t}",
		"}",
		"",
	)
	for _, v := range vs {
		pe.emitVulnTop(fb, v)
	}
	pe.files = append(pe.files, fb)

	for i := 0; i < pe.spec.HugeIncludeParts; i++ {
		part := newFileBuilder(fmt.Sprintf("parts/part%02d.php", i))
		part.add(fmt.Sprintf("/** Feature part %02d. */", i), "")
		for part.lineCount() < 40 {
			part.add(fillerBlock(pe.ng, pe.rng)...)
		}
		pe.files = append(pe.files, part)
	}
}

// buildMain writes the plugin's main file: header, includes, hook
// registrations and (in 2012) the remaining top-level snippets.
func (pe *pluginEmitter) buildMain() {
	fb := newFileBuilder(pe.name + ".php")
	version := "1.4.2"
	if pe.ver == V2014 {
		version = "2.3.1"
	}
	fb.add(
		"/**",
		fmt.Sprintf(" * Plugin Name: %s", classNameFor(pe.name)),
		fmt.Sprintf(" * Version: %s", version),
		" * Description: Generated corpus plugin (phpSAFE reproduction).",
		" */",
		"",
		"include 'includes/functions.php';",
		"include 'admin/admin.php';",
	)
	if pe.oop {
		fb.add(fmt.Sprintf("include 'class-%s.php';", pe.name))
		fb.add("include 'includes/widget.php';")
	}
	fb.add("")
	for i, hook := range pe.hooks {
		fb.add(fmt.Sprintf("add_action('plugin_hook_%d', '%s');", i, hook))
	}
	fb.add("")
	for _, v := range pe.mainExtraVulns {
		pe.emitVulnTop(fb, v)
	}
	for _, t := range pe.mainExtraTraps {
		pe.emitTrapTop(fb, t, "")
	}
	pe.files = append(pe.files, fb)
}

// pad appends benign filler until the plugin reaches its line target.
func (pe *pluginEmitter) pad() {
	total := 0
	for _, fb := range pe.files {
		total += fb.lineCount()
	}
	if len(pe.files) == 0 {
		return
	}
	// Pad the procedural, non-settings files; class files get top-level
	// filler after their class body, which every analyzer accepts.
	for total < pe.targetLines {
		fb := pe.files[pe.rng.Intn(len(pe.files))]
		block := fillerBlock(pe.ng, pe.rng)
		fb.add(block...)
		total += len(block)
	}
}
