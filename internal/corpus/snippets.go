package corpus

import "fmt"

// snippet is a generated code fragment plus the 0-based offset of its
// sink line within the fragment.
type snippet struct {
	lines   []string
	sinkIdx int
}

// indent prefixes every line of a snippet (for function/method bodies).
func (s snippet) indent(prefix string) snippet {
	out := make([]string, len(s.lines))
	for i, l := range s.lines {
		if l == "" {
			out[i] = l
			continue
		}
		out[i] = prefix + l
	}
	return snippet{lines: out, sinkIdx: s.sinkIdx}
}

// vulnSnippet renders the body of a planned vulnerability. Variable and
// key names come from the name generator so no two snippets collide.
func vulnSnippet(p vulnPlan, ng *nameGen) snippet {
	noun := ng.pick(nounPool)
	if p.numeric {
		noun = ng.pick(numericNounPool)
	}
	v := ng.v(noun)
	key := noun

	switch p.row.kind {
	case vkGetEcho:
		return superglobalEcho("_GET", key, v, p.variant)
	case vkPostEcho:
		return superglobalEcho("_POST", key, v, p.variant)
	case vkCookieEcho:
		return superglobalEcho("_COOKIE", key, v, p.variant)
	case vkRequestEcho:
		return superglobalEcho("_REQUEST", key, v, p.variant)

	case vkFileEcho:
		fh := ng.v("fh")
		switch p.variant % 3 {
		case 0:
			return snippet{lines: []string{
				fmt.Sprintf("$%s = fopen('data/%s.txt', 'r');", fh, key),
				fmt.Sprintf("$%s = fgets($%s, 128);", v, fh),
				fmt.Sprintf("echo $%s;", v),
			}, sinkIdx: 2}
		case 1:
			return snippet{lines: []string{
				fmt.Sprintf("$%s = file_get_contents('cache/%s.log');", v, key),
				fmt.Sprintf("echo '<pre>' . $%s . '</pre>';", v),
			}, sinkIdx: 1}
		default:
			rows := ng.v("rows")
			return snippet{lines: []string{
				fmt.Sprintf("$%s = file('import/%s.csv');", rows, key),
				fmt.Sprintf("foreach ($%s as $%s) {", rows, v),
				fmt.Sprintf("\techo '<li>' . $%s . '</li>';", v),
				"}",
			}, sinkIdx: 2}
		}

	case vkProcDBEcho:
		res := ng.v("res")
		table := ng.pick(tablePool)
		field := ng.pick(fieldPool)
		switch p.variant % 3 {
		case 0:
			row := ng.v("row")
			return snippet{lines: []string{
				fmt.Sprintf("$%s = mysql_query(\"SELECT %s FROM %s LIMIT 10\");", res, field, table),
				fmt.Sprintf("$%s = mysql_fetch_assoc($%s);", row, res),
				fmt.Sprintf("echo '<td>' . $%s['%s'] . '</td>';", row, field),
			}, sinkIdx: 2}
		case 1:
			row := ng.v("row")
			return snippet{lines: []string{
				fmt.Sprintf("$%s = mysql_query(\"SELECT %s FROM %s\");", res, field, table),
				fmt.Sprintf("while ($%s = mysql_fetch_assoc($%s)) {", row, res),
				fmt.Sprintf("\techo '<li>' . $%s['%s'] . '</li>';", row, field),
				"}",
			}, sinkIdx: 2}
		default:
			return snippet{lines: []string{
				fmt.Sprintf("$%s = mysql_query(\"SELECT %s FROM %s WHERE id=1\");", res, field, table),
				fmt.Sprintf("$%s = mysql_result($%s, 0);", v, res),
				fmt.Sprintf("echo \"<span>$%s</span>\";", v),
			}, sinkIdx: 2}
		}

	case vkWpdbRowsEcho:
		rows := ng.v("rows")
		row := ng.v("row")
		table := ng.pick(tablePool)
		field := ng.pick(fieldPool)
		if p.variant%2 == 0 {
			// The paper's §III.E mail-subscribe-list pattern.
			return snippet{lines: []string{
				"global $wpdb;",
				fmt.Sprintf("$%s = $wpdb->get_results(\"SELECT * FROM \" . $wpdb->prefix . \"%s\");", rows, table),
				fmt.Sprintf("foreach ($%s as $%s) {", rows, row),
				fmt.Sprintf("\techo '<li>' . $%s->%s . '</li>';", row, field),
				"}",
			}, sinkIdx: 3}
		}
		return snippet{lines: []string{
			"global $wpdb;",
			fmt.Sprintf("$%s = $wpdb->get_results(\"SELECT %s FROM {$wpdb->prefix}%s ORDER BY id\");", rows, field, table),
			fmt.Sprintf("foreach ($%s as $%s) {", rows, row),
			fmt.Sprintf("\techo \"<td>$%s->%s</td>\";", row, field),
			"}",
		}, sinkIdx: 3}

	case vkWpdbVarEcho:
		table := ng.pick(tablePool)
		field := ng.pick(fieldPool)
		if p.variant%2 == 0 {
			// The paper's §V.C wp-photo-album-plus pattern.
			return snippet{lines: []string{
				"global $wpdb;",
				fmt.Sprintf("$%s = $wpdb->get_var($wpdb->prepare(\"SELECT %s FROM {$wpdb->prefix}%s WHERE id = %%d\", 3));", v, field, table),
				fmt.Sprintf("echo stripslashes($%s);", v),
			}, sinkIdx: 2}
		}
		return snippet{lines: []string{
			"global $wpdb;",
			fmt.Sprintf("$%s = $wpdb->get_var(\"SELECT %s FROM {$wpdb->prefix}%s LIMIT 1\");", v, field, table),
			fmt.Sprintf("echo '<h3>' . $%s . '</h3>';", v),
		}, sinkIdx: 2}

	case vkGetOptionEcho:
		opt := ng.pick(optionPool)
		if p.variant%2 == 0 {
			return snippet{lines: []string{
				fmt.Sprintf("$%s = get_option('%s_%d');", v, opt, ng.next()),
				fmt.Sprintf("echo '<h2>' . $%s . '</h2>';", v),
			}, sinkIdx: 1}
		}
		return snippet{lines: []string{
			fmt.Sprintf("echo '<div class=\"opt\">' . get_option('%s_%d') . '</div>';", opt, ng.next()),
		}, sinkIdx: 0}

	case vkQueryVarEcho:
		return snippet{lines: []string{
			fmt.Sprintf("$%s = get_query_var('%s');", v, key),
			fmt.Sprintf("echo '<p>' . $%s . '</p>';", v),
		}, sinkIdx: 1}

	case vkSqliWpdb:
		table := ng.pick(tablePool)
		if p.variant%2 == 0 {
			return snippet{lines: []string{
				"global $wpdb;",
				fmt.Sprintf("$%s = $_GET['%s'];", v, key),
				fmt.Sprintf("$wpdb->query(\"DELETE FROM {$wpdb->prefix}%s WHERE id=$%s\");", table, v),
			}, sinkIdx: 2}
		}
		return snippet{lines: []string{
			"global $wpdb;",
			fmt.Sprintf("$wpdb->query(\"UPDATE {$wpdb->prefix}%s SET seen=1 WHERE id=\" . $_GET['%s']);", table, key),
		}, sinkIdx: 1}

	case vkRegGlobals:
		// Exploitable only under register_globals=1: the variable is
		// never initialized anywhere in the plugin.
		flag := ng.v("mode")
		if p.variant%2 == 0 {
			return snippet{lines: []string{
				fmt.Sprintf("if ($%s) {", flag),
				fmt.Sprintf("\techo $%s;", v),
				"}",
			}, sinkIdx: 1}
		}
		return snippet{lines: []string{
			fmt.Sprintf("echo '<div class=\"notice\">' . $%s . '</div>';", v),
		}, sinkIdx: 0}

	case vkCmdExec:
		switch p.variant % 3 {
		case 0:
			return snippet{lines: []string{
				fmt.Sprintf("$%s = $_GET['%s'];", v, key),
				fmt.Sprintf("system('ls -la exports/' . $%s);", v),
			}, sinkIdx: 1}
		case 1:
			return snippet{lines: []string{
				fmt.Sprintf("exec('tar czf backups/%s.tgz ' . $_GET['%s']);", key, key),
			}, sinkIdx: 0}
		default:
			return snippet{lines: []string{
				fmt.Sprintf("$%s = $_GET['%s'];", v, key),
				fmt.Sprintf("passthru(\"convert uploads/$%s thumb_%s.png\");", v, key),
			}, sinkIdx: 1}
		}

	case vkEvalInject:
		if p.variant%2 == 0 {
			return snippet{lines: []string{
				fmt.Sprintf("assert($_POST['%s']);", key),
			}, sinkIdx: 0}
		}
		return snippet{lines: []string{
			fmt.Sprintf("$%s = $_POST['%s'];", v, key),
			fmt.Sprintf("assert('is_string(' . $%s . ')');", v),
		}, sinkIdx: 1}

	case vkPathRead:
		switch p.variant % 3 {
		case 0:
			return snippet{lines: []string{
				fmt.Sprintf("readfile('uploads/' . $_GET['%s']);", key),
			}, sinkIdx: 0}
		case 1:
			fh := ng.v("fh")
			return snippet{lines: []string{
				fmt.Sprintf("$%s = $_GET['%s'];", v, key),
				fmt.Sprintf("$%s = fopen('attachments/' . $%s, 'rb');", fh, v),
			}, sinkIdx: 1}
		default:
			return snippet{lines: []string{
				fmt.Sprintf("unlink('cache/' . $_GET['%s'] . '.tmp');", key),
			}, sinkIdx: 0}
		}

	case vkIncludeGet:
		if p.variant%2 == 0 {
			return snippet{lines: []string{
				fmt.Sprintf("include $_GET['%s'] . '.php';", key),
			}, sinkIdx: 0}
		}
		return snippet{lines: []string{
			fmt.Sprintf("$%s = $_GET['%s'];", v, key),
			fmt.Sprintf("require 'pages/' . $%s;", v),
		}, sinkIdx: 1}

	case vkHeaderRedirect:
		if p.variant%2 == 0 {
			return snippet{lines: []string{
				fmt.Sprintf("header('Location: ' . $_GET['%s']);", key),
			}, sinkIdx: 0}
		}
		return snippet{lines: []string{
			fmt.Sprintf("$%s = $_GET['%s'];", v, key),
			fmt.Sprintf("header('Location: ' . $%s);", v),
			"exit;",
		}, sinkIdx: 1}

	default:
		return snippet{lines: []string{"// unreachable"}, sinkIdx: 0}
	}
}

// superglobalEcho renders the direct superglobal-to-echo variants (the
// §V.C wp-symposium pattern).
func superglobalEcho(global, key, v string, variant int) snippet {
	switch variant % 4 {
	case 0:
		return snippet{lines: []string{
			fmt.Sprintf("$%s = $%s['%s'];", v, global, key),
			fmt.Sprintf("echo '<div class=\"val\">' . $%s . '</div>';", v),
		}, sinkIdx: 1}
	case 1:
		return snippet{lines: []string{
			fmt.Sprintf("echo $%s['%s'];", global, key),
		}, sinkIdx: 0}
	case 2:
		return snippet{lines: []string{
			fmt.Sprintf("$%s = $%s['%s'];", v, global, key),
			fmt.Sprintf("echo \"<a href='?%s=$%s'>next</a>\";", key, v),
		}, sinkIdx: 1}
	default:
		return snippet{lines: []string{
			fmt.Sprintf("$%s = trim($%s['%s']);", v, global, key),
			fmt.Sprintf("print '<span>' . $%s . '</span>';", v),
		}, sinkIdx: 1}
	}
}

// trapSnippet renders a false-positive trap body. settingsVar is only
// used by tkIncludedVar (the variable the plugin's settings file
// defines).
func trapSnippet(p trapPlan, ng *nameGen, settingsVar string) snippet {
	noun := ng.pick(nounPool)
	v := ng.v(noun)

	switch p.row.kind {
	case tkEscHtml:
		switch p.variant % 3 {
		case 0:
			return snippet{lines: []string{
				fmt.Sprintf("echo esc_html($_GET['%s']);", noun),
			}, sinkIdx: 0}
		case 1:
			return snippet{lines: []string{
				fmt.Sprintf("$%s = esc_html($_POST['%s']);", v, noun),
				fmt.Sprintf("echo '<div>' . $%s . '</div>';", v),
			}, sinkIdx: 1}
		default:
			return snippet{lines: []string{
				fmt.Sprintf("echo '<input value=\"' . esc_attr($_GET['%s']) . '\">';", noun),
			}, sinkIdx: 0}
		}

	case tkSanitizeField:
		return snippet{lines: []string{
			fmt.Sprintf("$%s = sanitize_text_field($_POST['%s']);", v, noun),
			fmt.Sprintf("echo '<p>' . $%s . '</p>';", v),
		}, sinkIdx: 1}

	case tkNumericGuard:
		id := ng.v(ng.pick(numericNounPool))
		return snippet{lines: []string{
			fmt.Sprintf("$%s = $_GET['%s'];", id, noun),
			fmt.Sprintf("if (!is_numeric($%s)) {", id),
			"\tdie('invalid id');",
			"}",
			fmt.Sprintf("echo '<a href=\"?p=' . $%s . '\">view</a>';", id),
		}, sinkIdx: 4}

	case tkNumericGuardSqli:
		id := ng.v(ng.pick(numericNounPool))
		table := ng.pick(tablePool)
		return snippet{lines: []string{
			"global $wpdb;",
			fmt.Sprintf("$%s = $_GET['%s'];", id, noun),
			fmt.Sprintf("if (!is_numeric($%s)) {", id),
			"\texit;",
			"}",
			fmt.Sprintf("$wpdb->query(\"SELECT * FROM {$wpdb->prefix}%s WHERE id=$%s\");", table, id),
		}, sinkIdx: 5}

	case tkPregWhitelist:
		raw := ng.v("raw")
		return snippet{lines: []string{
			fmt.Sprintf("$%s = $_GET['%s'];", raw, noun),
			fmt.Sprintf("$%s = preg_replace('/[^a-zA-Z0-9_]/', '', $%s);", v, raw),
			fmt.Sprintf("echo '<code>' . $%s . '</code>';", v),
		}, sinkIdx: 2}

	case tkIncludedVar:
		return snippet{lines: []string{
			fmt.Sprintf("echo '<h4>' . $%s . '</h4>';", settingsVar),
		}, sinkIdx: 0}

	case tkEscSql:
		term := ng.v("term")
		return snippet{lines: []string{
			fmt.Sprintf("$%s = esc_sql($_GET['%s']);", term, noun),
			fmt.Sprintf("mysql_query(\"SELECT id FROM posts WHERE title LIKE '%%$%s%%'\");", term),
		}, sinkIdx: 1}

	case tkPrepared:
		row := ng.v("row")
		table := ng.pick(tablePool)
		return snippet{lines: []string{
			"global $wpdb;",
			fmt.Sprintf("$%s = $wpdb->get_row($wpdb->prepare(\"SELECT * FROM {$wpdb->prefix}%s WHERE id = %%d\", 7));", row, table),
			fmt.Sprintf("if ($%s) {", row),
			"\tupdate_option('last_seen', 1);",
			"}",
		}, sinkIdx: 1}

	default:
		return snippet{lines: []string{"// unreachable"}, sinkIdx: 0}
	}
}

// kindName labels vulnerability kinds for ground-truth diagnostics.
func kindName(k vulnKind) string {
	switch k {
	case vkWpdbRowsEcho:
		return "wpdb-rows-echo"
	case vkWpdbVarEcho:
		return "wpdb-var-echo"
	case vkGetOptionEcho:
		return "get-option-echo"
	case vkQueryVarEcho:
		return "query-var-echo"
	case vkProcDBEcho:
		return "proc-db-echo"
	case vkGetEcho:
		return "get-echo"
	case vkPostEcho:
		return "post-echo"
	case vkCookieEcho:
		return "cookie-echo"
	case vkRequestEcho:
		return "request-echo"
	case vkFileEcho:
		return "file-echo"
	case vkSqliWpdb:
		return "sqli-wpdb"
	case vkRegGlobals:
		return "register-globals"
	case vkCmdExec:
		return "cmd-exec"
	case vkEvalInject:
		return "eval-inject"
	case vkPathRead:
		return "path-read"
	case vkIncludeGet:
		return "include-get"
	case vkHeaderRedirect:
		return "header-redirect"
	default:
		return "unknown"
	}
}

// trapName labels trap kinds.
func trapName(k trapKind) string {
	switch k {
	case tkEscHtml:
		return "esc-html"
	case tkSanitizeField:
		return "sanitize-text-field"
	case tkNumericGuard:
		return "numeric-guard"
	case tkNumericGuardSqli:
		return "numeric-guard-sqli"
	case tkPregWhitelist:
		return "preg-whitelist"
	case tkIncludedVar:
		return "included-var"
	case tkEscSql:
		return "esc-sql"
	case tkPrepared:
		return "prepared-query"
	default:
		return "unknown"
	}
}
