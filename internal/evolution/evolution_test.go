package evolution

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// find builds a finding for matcher tests.
func find(file string, line int, class analyzer.VulnClass, sink, variable string,
	vector analyzer.Vector) analyzer.Finding {
	return analyzer.Finding{
		Tool: "phpSAFE", File: file, Line: line, Class: class,
		Sink: sink, Variable: variable, Vector: vector,
	}
}

func TestCompareClassification(t *testing.T) {
	t.Parallel()
	oldRes := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 10, analyzer.XSS, "echo", "name", analyzer.VectorGET),       // persists (moves to line 14)
		find("a.php", 20, analyzer.SQLi, "mysql_query", "id", analyzer.VectorGET), // fixed
	}}
	newRes := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 14, analyzer.XSS, "echo", "name", analyzer.VectorGET), // persisting
		find("b.php", 5, analyzer.XSS, "print", "bio", analyzer.VectorPOST), // introduced
	}}
	r := Compare(oldRes, newRes, "1.0", "2.0")

	if r.Count(Persisting) != 1 || r.Count(Fixed) != 1 || r.Count(Introduced) != 1 {
		t.Fatalf("counts = fixed %d / persisting %d / introduced %d",
			r.Count(Fixed), r.Count(Persisting), r.Count(Introduced))
	}
	if got := r.PersistShare(); got != 0.5 {
		t.Errorf("persist share = %v, want 0.5", got)
	}
	if got := r.PersistingEasy(); got != 1 {
		t.Errorf("persisting easy = %d, want 1 (GET vector)", got)
	}
}

func TestCompareLineMovementIgnored(t *testing.T) {
	t.Parallel()
	oldRes := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 10, analyzer.XSS, "echo", "title7", analyzer.VectorDB),
	}}
	newRes := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		// Same vulnerability, different line AND renamed counter suffix.
		find("a.php", 182, analyzer.XSS, "echo", "title12", analyzer.VectorDB),
	}}
	r := Compare(oldRes, newRes, "old", "new")
	if r.Count(Persisting) != 1 || r.Count(Fixed) != 0 || r.Count(Introduced) != 0 {
		t.Fatalf("changes = %+v, want one persisting", r.Changes)
	}
}

func TestCompareDifferentSinkIsDifferentVuln(t *testing.T) {
	t.Parallel()
	oldRes := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 10, analyzer.XSS, "echo", "x", analyzer.VectorGET),
	}}
	newRes := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 10, analyzer.XSS, "printf", "x", analyzer.VectorGET),
	}}
	r := Compare(oldRes, newRes, "old", "new")
	if r.Count(Fixed) != 1 || r.Count(Introduced) != 1 {
		t.Fatalf("changes = %+v, want fixed+introduced", r.Changes)
	}
}

func TestCompareNilTolerant(t *testing.T) {
	t.Parallel()
	r := Compare(nil, &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 1, analyzer.XSS, "echo", "x", analyzer.VectorGET),
	}}, "old", "new")
	if r.Count(Introduced) != 1 {
		t.Fatalf("nil old: %+v", r.Changes)
	}
	r2 := Compare(nil, nil, "a", "b")
	if len(r2.Changes) != 0 {
		t.Fatal("nil/nil should have no changes")
	}
}

func TestTrackHistory(t *testing.T) {
	t.Parallel()
	v1 := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 1, analyzer.XSS, "echo", "x", analyzer.VectorGET),
		find("a.php", 2, analyzer.XSS, "echo", "y", analyzer.VectorPOST),
	}}
	v2 := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 1, analyzer.XSS, "echo", "x", analyzer.VectorGET), // persists
	}}
	v3 := &analyzer.Result{Target: "p", Findings: []analyzer.Finding{
		find("a.php", 1, analyzer.XSS, "echo", "x", analyzer.VectorGET),    // persists
		find("c.php", 9, analyzer.SQLi, "query", "id", analyzer.VectorGET), // introduced
	}}
	h, err := Track([]string{"1.0", "1.1", "2.0"}, []*analyzer.Result{v1, v2, v3})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(h.Steps))
	}
	if h.TotalFixed() != 1 || h.TotalIntroduced() != 1 {
		t.Errorf("fixed=%d introduced=%d, want 1/1", h.TotalFixed(), h.TotalIntroduced())
	}
	s := h.Summary()
	for _, want := range []string{"1.0 -> 1.1", "1.1 -> 2.0", "fixed", "persisting"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestTrackValidation(t *testing.T) {
	t.Parallel()
	if _, err := Track([]string{"a"}, []*analyzer.Result{{}}); err == nil {
		t.Error("single version should error")
	}
	if _, err := Track([]string{"a", "b"}, []*analyzer.Result{{}}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

// TestCorpusEvolutionMatchesLabels runs the real engine over both
// versions of one corpus plugin and checks the evolution report's
// persisting count against the generator's persistence labels.
func TestCorpusEvolutionMatchesLabels(t *testing.T) {
	t.Parallel()
	c12, c14 := corpus.MustGenerate()
	const plugin = "mail-subscribe-list"
	engine := taint.New(wordpress.Compiled(), taint.DefaultOptions())

	res12, err := engine.Analyze(c12.Target(plugin))
	if err != nil {
		t.Fatal(err)
	}
	res14, err := engine.Analyze(c14.Target(plugin))
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(res12, res14, "2012", "2014")

	// Labelled persisting vulnerabilities of this plugin that phpSAFE can
	// see (exclude register_globals, which it cannot detect).
	labelled := 0
	for _, g := range c14.Truths {
		if g.Plugin == plugin && g.Persists && !g.RegisterGlobals {
			labelled++
		}
	}
	got := r.Count(Persisting)
	// Structural matching may merge a few same-signature snippets, so
	// allow slack but demand the right magnitude.
	if got < labelled/2 || got > labelled+5 {
		t.Errorf("persisting = %d, labelled = %d (out of plausible range)", got, labelled)
	}
	if r.Count(Introduced) == 0 {
		t.Error("2014 should introduce new vulnerabilities")
	}
}
