// Package evolution tracks plugin security across versions — the paper's
// §VI future work ("we also intend to study the evolution of plugin
// security and plugin updates over time by enabling historic data in
// phpSAFE") and the machinery behind its §V.D inertia analysis.
//
// Given analysis results for two snapshots of the same plugin, the
// package classifies each vulnerability as fixed, persisting or newly
// introduced. Findings are matched structurally (file, sink, variable,
// class, vector) rather than by line number, because plugin code moves
// between releases.
package evolution

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analyzer"
)

// Status classifies one vulnerability across two versions.
type Status int

// Vulnerability statuses.
const (
	// Fixed findings exist in the old version only.
	Fixed Status = iota + 1
	// Persisting findings exist in both versions — the §V.D inertia
	// class: vulnerabilities still present after disclosure.
	Persisting
	// Introduced findings exist in the new version only.
	Introduced
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Fixed:
		return "fixed"
	case Persisting:
		return "persisting"
	case Introduced:
		return "introduced"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Change is one vulnerability with its cross-version classification.
type Change struct {
	// Status is the classification.
	Status Status
	// Finding is the old-version finding for Fixed, and the new-version
	// finding for Persisting and Introduced.
	Finding analyzer.Finding
}

// Report is the outcome of comparing two versions of one plugin.
type Report struct {
	// Plugin is the target name.
	Plugin string
	// OldVersion and NewVersion label the compared snapshots.
	OldVersion string
	NewVersion string
	// Changes lists every vulnerability with its status, sorted by
	// status, then file and line.
	Changes []Change
}

// Count returns how many changes have the given status.
func (r *Report) Count(s Status) int {
	n := 0
	for _, c := range r.Changes {
		if c.Status == s {
			n++
		}
	}
	return n
}

// PersistShare returns the fraction of new-version vulnerabilities that
// persist from the old version (§V.D reports 42%).
func (r *Report) PersistShare() float64 {
	newTotal := r.Count(Persisting) + r.Count(Introduced)
	if newTotal == 0 {
		return 0
	}
	return float64(r.Count(Persisting)) / float64(newTotal)
}

// PersistingEasy returns how many persisting vulnerabilities are directly
// attacker-manipulable (§V.D's "very easy to exploit" class).
func (r *Report) PersistingEasy() int {
	n := 0
	for _, c := range r.Changes {
		if c.Status == Persisting && c.Finding.Vector.DirectlyManipulable() {
			n++
		}
	}
	return n
}

// signature is the structural identity used to match findings across
// versions. Line numbers are deliberately excluded: code moves between
// releases, but a vulnerability keeps its file, sink construct, variable
// and provenance.
type signature struct {
	file     string
	class    analyzer.VulnClass
	sink     string
	variable string
	vector   analyzer.Vector
}

// sigOf builds a finding's structural signature.
func sigOf(f analyzer.Finding) signature {
	return signature{
		file:     f.File,
		class:    f.Class,
		sink:     f.Sink,
		variable: normalizeVariable(f.Variable),
		vector:   f.Vector,
	}
}

// normalizeVariable strips generated-suffix digits so renamed counters
// still match ("item3" and "item7" are the same logical variable).
func normalizeVariable(v string) string {
	return strings.TrimRight(v, "0123456789")
}

// relaxedKey drops the variable name from the identity: the second
// matching pass pairs findings that moved AND were renamed between
// releases, by multiplicity within (file, class, sink, vector) groups.
type relaxedKey struct {
	file   string
	class  analyzer.VulnClass
	sink   string
	vector analyzer.Vector
}

// relaxOf builds a signature's relaxed key.
func relaxOf(s signature) relaxedKey {
	return relaxedKey{file: s.file, class: s.class, sink: s.sink, vector: s.vector}
}

// Compare classifies the vulnerabilities of two versions of one plugin.
// Findings within each version are first deduplicated by signature, then
// matched in two passes: exact structural signatures first, and the
// remainder by multiplicity within relaxed (variable-free) groups, so
// renamed variables still pair up.
func Compare(oldRes, newRes *analyzer.Result, oldVersion, newVersion string) *Report {
	r := &Report{
		Plugin:     pluginName(oldRes, newRes),
		OldVersion: oldVersion,
		NewVersion: newVersion,
	}

	oldBySig := make(map[signature]analyzer.Finding)
	if oldRes != nil {
		for _, f := range oldRes.Findings {
			s := sigOf(f)
			if _, dup := oldBySig[s]; !dup {
				oldBySig[s] = f
			}
		}
	}
	newBySig := make(map[signature]analyzer.Finding)
	if newRes != nil {
		for _, f := range newRes.Findings {
			s := sigOf(f)
			if _, dup := newBySig[s]; !dup {
				newBySig[s] = f
			}
		}
	}

	// Pass 1: exact signature matches persist.
	oldLeft := make(map[signature]analyzer.Finding)
	var newLeft []signature
	for s, f := range newBySig {
		if _, existed := oldBySig[s]; existed {
			r.Changes = append(r.Changes, Change{Status: Persisting, Finding: f})
		} else {
			newLeft = append(newLeft, s)
		}
	}
	for s, f := range oldBySig {
		if _, still := newBySig[s]; !still {
			oldLeft[s] = f
		}
	}

	// Pass 2: pair leftovers by multiplicity within relaxed groups.
	oldGroups := make(map[relaxedKey]int, len(oldLeft))
	for s := range oldLeft {
		oldGroups[relaxOf(s)]++
	}
	sort.Slice(newLeft, func(i, j int) bool {
		a, b := newBySig[newLeft[i]], newBySig[newLeft[j]]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	for _, s := range newLeft {
		f := newBySig[s]
		k := relaxOf(s)
		if oldGroups[k] > 0 {
			oldGroups[k]--
			r.Changes = append(r.Changes, Change{Status: Persisting, Finding: f})
		} else {
			r.Changes = append(r.Changes, Change{Status: Introduced, Finding: f})
		}
	}
	// Whatever remains unpaired on the old side was fixed.
	remaining := make(map[relaxedKey]int, len(oldGroups))
	for k, n := range oldGroups {
		remaining[k] = n
	}
	oldSigs := make([]signature, 0, len(oldLeft))
	for s := range oldLeft {
		oldSigs = append(oldSigs, s)
	}
	sort.Slice(oldSigs, func(i, j int) bool {
		a, b := oldLeft[oldSigs[i]], oldLeft[oldSigs[j]]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	for _, s := range oldSigs {
		k := relaxOf(s)
		if remaining[k] > 0 {
			remaining[k]--
			r.Changes = append(r.Changes, Change{Status: Fixed, Finding: oldLeft[s]})
		}
	}

	sort.Slice(r.Changes, func(i, j int) bool {
		a, b := r.Changes[i], r.Changes[j]
		if a.Status != b.Status {
			return a.Status < b.Status
		}
		if a.Finding.File != b.Finding.File {
			return a.Finding.File < b.Finding.File
		}
		return a.Finding.Line < b.Finding.Line
	})
	return r
}

// pluginName picks the target name from whichever result is present.
func pluginName(oldRes, newRes *analyzer.Result) string {
	if newRes != nil && newRes.Target != "" {
		return newRes.Target
	}
	if oldRes != nil {
		return oldRes.Target
	}
	return ""
}

// History tracks one plugin across an ordered series of versions.
type History struct {
	// Plugin is the target name.
	Plugin string
	// Versions labels the snapshots in order.
	Versions []string
	// Steps holds the pairwise comparison between consecutive versions.
	Steps []*Report
}

// Track compares an ordered series of snapshots of one plugin. Labels and
// results must have equal length; at least two snapshots are required.
func Track(labels []string, results []*analyzer.Result) (*History, error) {
	if len(labels) != len(results) {
		return nil, fmt.Errorf("evolution: %d labels for %d results", len(labels), len(results))
	}
	if len(results) < 2 {
		return nil, fmt.Errorf("evolution: need at least two versions, got %d", len(results))
	}
	h := &History{Plugin: pluginName(results[0], results[len(results)-1]), Versions: labels}
	for i := 1; i < len(results); i++ {
		h.Steps = append(h.Steps, Compare(results[i-1], results[i], labels[i-1], labels[i]))
	}
	return h, nil
}

// TotalFixed sums fixes across all steps.
func (h *History) TotalFixed() int {
	n := 0
	for _, s := range h.Steps {
		n += s.Count(Fixed)
	}
	return n
}

// TotalIntroduced sums newly introduced vulnerabilities across all steps.
func (h *History) TotalIntroduced() int {
	n := 0
	for _, s := range h.Steps {
		n += s.Count(Introduced)
	}
	return n
}

// Summary renders the history as text.
func (h *History) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "security evolution of %s across %s\n",
		h.Plugin, strings.Join(h.Versions, " -> "))
	for _, step := range h.Steps {
		fmt.Fprintf(&sb, "  %s -> %s: %d fixed, %d persisting (%d easy to exploit), %d introduced\n",
			step.OldVersion, step.NewVersion,
			step.Count(Fixed), step.Count(Persisting), step.PersistingEasy(),
			step.Count(Introduced))
	}
	return sb.String()
}
