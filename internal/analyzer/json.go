package analyzer

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON renders the class as its display name.
func (c VulnClass) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON parses a class display name.
func (c *VulnClass) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for _, cand := range Classes() {
		if cand.String() == s {
			*c = cand
			return nil
		}
	}
	return fmt.Errorf("analyzer: unknown vulnerability class %q", s)
}

// MarshalJSON renders the vector as its display name.
func (v Vector) MarshalJSON() ([]byte, error) {
	return json.Marshal(v.String())
}

// UnmarshalJSON parses a vector display name.
func (v *Vector) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for _, cand := range []Vector{
		VectorGET, VectorPOST, VectorCookie, VectorRequest,
		VectorDB, VectorFile, VectorOther,
	} {
		if cand.String() == s {
			*v = cand
			return nil
		}
	}
	return fmt.Errorf("analyzer: unknown vector %q", s)
}
