package analyzer

import (
	"runtime"
	"time"
)

// Default scan budgets. The values are deliberately generous: at these
// limits no plugin in the paper's corpus (nor the evaluation fixtures)
// comes close to truncation, so governed and ungoverned scans produce
// byte-identical reports. The budgets exist to bound hostile or
// pathological inputs — megabyte token streams, pathological nesting,
// runaway inter-procedural fixpoints — not to trim ordinary work.
const (
	// DefaultMaxParseDepth bounds expression/statement nesting in the
	// parser. Real plugin code stays under a few dozen levels.
	DefaultMaxParseDepth = 512
	// DefaultMaxSteps bounds taint-interpreter statement executions (and
	// the baselines' trace visits) per scan.
	DefaultMaxSteps = 20_000_000
	// DefaultMaxFindings bounds reported findings per scan; a report
	// this large is an analysis pathology, not a security report.
	DefaultMaxFindings = 10_000
)

// ScanOptions carries the resource budgets of one scan. The zero value
// of an individual field means "no limit" for durations and "use the
// package default" for the integer budgets; a nil *ScanOptions means
// all defaults. Options are read-only during the scan and may be shared
// across concurrent scans.
type ScanOptions struct {
	// Deadline bounds the whole scan's wall-clock time. Zero disables
	// the deadline. The deadline is enforced cooperatively at the same
	// checkpoints as context cancellation; exceeding it truncates the
	// scan (partial result, no error) rather than failing it.
	Deadline time.Duration `json:"deadline,omitempty"`
	// MaxParseDepth bounds parser recursion depth per file. Deeper
	// nesting degrades into a recorded parse error, mirroring how
	// malformed source already degrades. Zero means default.
	MaxParseDepth int `json:"max_parse_depth,omitempty"`
	// MaxSteps bounds interpreter statement steps across the scan.
	// Zero means default; negative means unlimited.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// MaxFindings bounds the findings list. Zero means default;
	// negative means unlimited.
	MaxFindings int `json:"max_findings,omitempty"`
	// FileTimeSlice bounds wall-clock time spent on a single file.
	// Exceeding it fails that file (recorded in FilesFailed) and the
	// scan continues with the next file. Zero disables the slice.
	FileTimeSlice time.Duration `json:"file_time_slice,omitempty"`
	// FileWorkers sizes the intra-scan worker pool that fans per-file
	// lex/parse/analysis across goroutines. Zero or negative means
	// GOMAXPROCS (use every core); 1 runs the scan strictly serially.
	// Output is byte-identical regardless of the worker count: per-file
	// results are merged in sorted path order.
	FileWorkers int `json:"file_workers,omitempty"`
}

// DefaultScanOptions returns the default budgets spelled out; it is
// what a nil *ScanOptions resolves to.
func DefaultScanOptions() *ScanOptions {
	return &ScanOptions{
		MaxParseDepth: DefaultMaxParseDepth,
		MaxSteps:      DefaultMaxSteps,
		MaxFindings:   DefaultMaxFindings,
	}
}

// EffectiveMaxParseDepth resolves the zero-means-default convention.
func (o *ScanOptions) EffectiveMaxParseDepth() int {
	if o == nil || o.MaxParseDepth == 0 {
		return DefaultMaxParseDepth
	}
	if o.MaxParseDepth < 0 {
		return int(^uint(0) >> 1)
	}
	return o.MaxParseDepth
}

// EffectiveMaxSteps resolves the zero-means-default convention.
func (o *ScanOptions) EffectiveMaxSteps() int64 {
	if o == nil || o.MaxSteps == 0 {
		return DefaultMaxSteps
	}
	if o.MaxSteps < 0 {
		return int64(^uint64(0) >> 1)
	}
	return o.MaxSteps
}

// EffectiveFileWorkers resolves the worker-pool size: zero or negative
// means GOMAXPROCS, anything else is taken literally.
func (o *ScanOptions) EffectiveFileWorkers() int {
	if o == nil || o.FileWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.FileWorkers
}

// EffectiveMaxFindings resolves the zero-means-default convention.
func (o *ScanOptions) EffectiveMaxFindings() int {
	if o == nil || o.MaxFindings == 0 {
		return DefaultMaxFindings
	}
	if o.MaxFindings < 0 {
		return int(^uint(0) >> 1)
	}
	return o.MaxFindings
}

// RobustnessFailure records a file whose analysis crashed (panicked)
// and was isolated: the panic was recovered, the file counted as
// failed, and the rest of the scan proceeded. It is the crash-grade
// analogue of an entry in Result.FilesFailed (paper §V.E robustness).
type RobustnessFailure struct {
	// File is the path of the file whose analysis crashed.
	File string `json:"file"`
	// Reason is the recovered panic value, formatted.
	Reason string `json:"reason"`
}

// ContextAnalyzer is the historical name of the context-first contract
// from the era when the interface also carried a legacy Analyze method.
// Analyzer itself is now that contract; the alias keeps existing
// declarations compiling.
type ContextAnalyzer = Analyzer
