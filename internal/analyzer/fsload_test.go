package analyzer

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadFileAndDir(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	writeFile(t, dir, "plugin.php", "<?php echo 1;")
	writeFile(t, dir, "inc/helpers.php", "<?php echo 2;")
	writeFile(t, dir, "readme.txt", "not php")

	target, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(target.Files) != 2 {
		t.Fatalf("files = %d, want 2 (txt skipped): %+v", len(target.Files), target.Files)
	}
	if _, ok := target.File("inc/helpers.php"); !ok {
		t.Error("relative path should use forward slashes")
	}

	single, err := LoadFile(filepath.Join(dir, "plugin.php"))
	if err != nil {
		t.Fatal(err)
	}
	if single.Name != "plugin" || len(single.Files) != 1 {
		t.Fatalf("single = %+v", single)
	}

	viaLoad, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaLoad.Files) != 2 {
		t.Fatalf("Load(dir) files = %d", len(viaLoad.Files))
	}
	if _, err := Load(filepath.Join(dir, "missing.php")); err == nil {
		t.Error("missing path should error")
	}
}

func TestLoadDirCaseInsensitiveExtensions(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	writeFile(t, dir, "zz-main.PHP", "<?php echo 1;")
	writeFile(t, dir, "inc/Util.Php", "<?php echo 2;")
	writeFile(t, dir, "aa-last.php", "<?php echo 3;")
	writeFile(t, dir, "notes.phps", "not a plugin file")

	target, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(target.Files))
	for _, f := range target.Files {
		got = append(got, f.Path)
	}
	want := []string{"aa-last.php", "inc/Util.Php", "zz-main.PHP"}
	if len(got) != len(want) {
		t.Fatalf("files = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order = %v, want %v", got, want)
		}
	}

	single, err := LoadFile(filepath.Join(dir, "zz-main.PHP"))
	if err != nil {
		t.Fatal(err)
	}
	if single.Name != "zz-main" {
		t.Errorf("uppercase extension should be trimmed from name: %q", single.Name)
	}
}

func TestIsPHPPath(t *testing.T) {
	t.Parallel()
	for path, want := range map[string]bool{
		"a.php":     true,
		"a.PHP":     true,
		"dir/B.Php": true,
		"a.phps":    false,
		"a.php.txt": false,
		"php":       false,
	} {
		if got := IsPHPPath(path); got != want {
			t.Errorf("IsPHPPath(%q) = %v, want %v", path, got, want)
		}
	}
}

// writeFile creates a file under dir, making parent directories.
func writeFile(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	t.Parallel()
	in := Result{
		Tool:   "phpSAFE",
		Target: "demo",
		Findings: []Finding{{
			Tool: "phpSAFE", File: "a.php", Line: 3, Class: SQLi,
			Sink: "mysql_query", Variable: "id", Vector: VectorRequest,
			Trace: []TraceStep{{File: "a.php", Line: 2, Var: "$id", Note: "source"}},
		}},
		FilesAnalyzed: 1,
		LinesAnalyzed: 9,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Findings[0].Class != SQLi {
		t.Errorf("class round-trip = %v", out.Findings[0].Class)
	}
	if out.Findings[0].Vector != VectorRequest {
		t.Errorf("vector round-trip = %v", out.Findings[0].Vector)
	}
	if out.Findings[0].Trace[0].Note != "source" {
		t.Errorf("trace round-trip = %+v", out.Findings[0].Trace)
	}
}

func TestJSONRejectsUnknownNames(t *testing.T) {
	t.Parallel()
	var c VulnClass
	if err := json.Unmarshal([]byte(`"CSRF"`), &c); err == nil {
		t.Error("unknown class should fail to parse")
	}
	var v Vector
	if err := json.Unmarshal([]byte(`"TELEPATHY"`), &v); err == nil {
		t.Error("unknown vector should fail to parse")
	}
	if err := json.Unmarshal([]byte(`5`), &c); err == nil {
		t.Error("non-string class should fail to parse")
	}
}

func TestJSONVectorNames(t *testing.T) {
	t.Parallel()
	for _, v := range []Vector{
		VectorGET, VectorPOST, VectorCookie, VectorRequest,
		VectorDB, VectorFile, VectorOther,
	} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back Vector
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if back != v {
			t.Errorf("round-trip %v -> %v", v, back)
		}
	}
}
