package analyzer

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// LoadFile builds a single-file target from a PHP file on disk.
func LoadFile(path string) (*Target, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Target{
		Name: strings.TrimSuffix(filepath.Base(path), ".php"),
		Files: []SourceFile{{
			Path:    filepath.Base(path),
			Content: string(content),
		}},
	}, nil
}

// LoadDir builds a target from every .php file under root, with paths
// relative to root (the layout plugin analysis expects).
func LoadDir(root string) (*Target, error) {
	target := &Target{Name: filepath.Base(root)}
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".php") {
			return nil
		}
		content, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			rel = p
		}
		target.Files = append(target.Files, SourceFile{
			Path:    filepath.ToSlash(rel),
			Content: string(content),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return target, nil
}

// Load builds a target from a path that may be a file or a directory.
func Load(path string) (*Target, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return LoadDir(path)
	}
	return LoadFile(path)
}
