package analyzer

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// IsPHPPath reports whether path names a PHP source file. Extension
// matching is case-insensitive because real plugin trees ship `.PHP`
// and `.Php` files (Windows-authored archives in particular); a
// case-sensitive match silently drops those files from the analysis.
func IsPHPPath(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".php")
}

// LoadFile builds a single-file target from a PHP file on disk.
func LoadFile(path string) (*Target, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	base := filepath.Base(path)
	name := base
	if IsPHPPath(base) {
		name = base[:len(base)-len(filepath.Ext(base))]
	}
	return &Target{
		Name: name,
		Files: []SourceFile{{
			Path:    base,
			Content: string(content),
		}},
	}, nil
}

// LoadDir builds a target from every .php file under root, with paths
// relative to root (the layout plugin analysis expects). Files are
// emitted in sorted path order regardless of the filesystem's walk
// order, so targets — and everything derived from them, such as cache
// keys — are deterministic across platforms.
func LoadDir(root string) (*Target, error) {
	target := &Target{Name: filepath.Base(root)}
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !IsPHPPath(p) {
			return nil
		}
		content, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			rel = p
		}
		target.Files = append(target.Files, SourceFile{
			Path:    filepath.ToSlash(rel),
			Content: string(content),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(target.Files, func(i, j int) bool {
		return target.Files[i].Path < target.Files[j].Path
	})
	return target, nil
}

// Load builds a target from a path that may be a file or a directory.
func Load(path string) (*Target, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return LoadDir(path)
	}
	return LoadFile(path)
}
