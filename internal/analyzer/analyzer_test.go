package analyzer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestVulnClassStrings(t *testing.T) {
	t.Parallel()
	if XSS.String() != "XSS" || SQLi.String() != "SQLi" {
		t.Errorf("class names wrong: %s %s", XSS, SQLi)
	}
	if s := VulnClass(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown class = %q", s)
	}
	if len(Classes()) != 7 {
		t.Errorf("Classes() = %v, want 7 entries", Classes())
	}
	if CmdInjection.String() != "CMDi" || FileInclusion.String() != "LFI" {
		t.Errorf("extended class names wrong: %s %s", CmdInjection, FileInclusion)
	}
	if CodeEval.String() != "EVAL" || PathTraversal.String() != "TRAVERSAL" || OpenRedirect.String() != "REDIRECT" {
		t.Errorf("new class names wrong: %s %s %s", CodeEval, PathTraversal, OpenRedirect)
	}
	for _, c := range Classes() {
		if c.CWE() == 0 || c.Severity() == "" || c.Slug() == "" || c.Description() == "" {
			t.Errorf("%v: incomplete metadata (cwe=%d severity=%q slug=%q)", c, c.CWE(), c.Severity(), c.Slug())
		}
		back, ok := ParseClassSlug(c.Slug())
		if !ok || back != c {
			t.Errorf("ParseClassSlug(%q) = %v, %v", c.Slug(), back, ok)
		}
	}
}

func TestVectorTableIIRows(t *testing.T) {
	t.Parallel()
	tests := []struct {
		v    Vector
		want string
	}{
		{VectorGET, "GET"},
		{VectorPOST, "POST"},
		{VectorCookie, "POST/GET/COOKIE"},
		{VectorRequest, "POST/GET/COOKIE"},
		{VectorDB, "DB"},
		{VectorFile, "File/Function/Array"},
		{VectorOther, "File/Function/Array"},
	}
	for _, tt := range tests {
		if got := tt.v.TableIIRow(); got != tt.want {
			t.Errorf("%v.TableIIRow() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestVectorDirectlyManipulable(t *testing.T) {
	t.Parallel()
	direct := []Vector{VectorGET, VectorPOST, VectorCookie, VectorRequest}
	for _, v := range direct {
		if !v.DirectlyManipulable() {
			t.Errorf("%v should be directly manipulable", v)
		}
	}
	for _, v := range []Vector{VectorDB, VectorFile, VectorOther} {
		if v.DirectlyManipulable() {
			t.Errorf("%v should not be directly manipulable", v)
		}
	}
}

func TestFindingKeyAndString(t *testing.T) {
	t.Parallel()
	f := Finding{
		Tool: "phpSAFE", File: "a.php", Line: 12, Class: XSS,
		Sink: "echo", Variable: "name", Vector: VectorGET,
	}
	if f.Key() != "a.php:12:XSS" {
		t.Errorf("Key() = %q", f.Key())
	}
	s := f.String()
	for _, want := range []string{"XSS", "GET", "a.php:12", "echo", "$name"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	// Without a variable, no "$" suffix appears.
	f.Variable = ""
	if strings.Contains(f.String(), "$") {
		t.Errorf("String() should omit empty variable: %s", f.String())
	}
}

func TestResultDedup(t *testing.T) {
	t.Parallel()
	r := Result{Findings: []Finding{
		{File: "b.php", Line: 2, Class: XSS},
		{File: "a.php", Line: 9, Class: SQLi},
		{File: "b.php", Line: 2, Class: XSS}, // duplicate
		{File: "a.php", Line: 9, Class: XSS},
		{File: "a.php", Line: 3, Class: XSS},
	}}
	r.Dedup()
	if len(r.Findings) != 4 {
		t.Fatalf("len = %d, want 4: %v", len(r.Findings), r.Findings)
	}
	// Sorted by file, line, class.
	want := []string{"a.php:3:XSS", "a.php:9:XSS", "a.php:9:SQLi", "b.php:2:XSS"}
	for i, f := range r.Findings {
		if f.Key() != want[i] {
			t.Errorf("finding %d = %s, want %s", i, f.Key(), want[i])
		}
	}
}

func TestResultMerge(t *testing.T) {
	t.Parallel()
	a := Result{FilesAnalyzed: 1, LinesAnalyzed: 10,
		Findings: []Finding{{File: "x.php", Line: 1, Class: XSS}}}
	b := Result{FilesAnalyzed: 2, LinesAnalyzed: 20,
		FilesFailed: []string{"y.php"}, Errors: []string{"boom"},
		Findings: []Finding{{File: "z.php", Line: 2, Class: SQLi}}}
	a.Merge(&b)
	if a.FilesAnalyzed != 3 || a.LinesAnalyzed != 30 {
		t.Errorf("counters wrong: %+v", a)
	}
	if len(a.Findings) != 2 || len(a.FilesFailed) != 1 || len(a.Errors) != 1 {
		t.Errorf("slices wrong: %+v", a)
	}
	a.Merge(nil) // must not panic
}

func TestTargetHelpers(t *testing.T) {
	t.Parallel()
	tg := Target{Name: "p", Files: []SourceFile{
		{Path: "a.php", Content: "line1\nline2\n"},
		{Path: "dir/b.php", Content: "x"},
	}}
	if got := tg.Lines(); got != 4 {
		t.Errorf("Lines() = %d, want 4", got)
	}
	if _, ok := tg.File("dir/b.php"); !ok {
		t.Error("File() should find dir/b.php")
	}
	if _, ok := tg.File("missing.php"); ok {
		t.Error("File() should miss missing.php")
	}
}

// TestQuickDedupIdempotent checks Dedup is idempotent and never grows the
// result for arbitrary finding sets.
func TestQuickDedupIdempotent(t *testing.T) {
	t.Parallel()
	f := func(lines []uint8) bool {
		r := Result{}
		for _, l := range lines {
			r.Findings = append(r.Findings, Finding{
				File: "f.php", Line: int(l % 16), Class: XSS,
			})
		}
		r.Dedup()
		n := len(r.Findings)
		if n > len(lines) {
			return false
		}
		r.Dedup()
		return len(r.Findings) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
