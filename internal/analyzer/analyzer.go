// Package analyzer defines the common vocabulary shared by the three
// static analysis tools in this repository: phpSAFE (package taint) and
// the two comparison baselines RIPS (package rips) and Pixy (package pixy).
//
// The paper (DSN 2015, §IV) evaluates all tools over the same plugin
// corpus and normalizes their reports "into a single repository"; this
// package is that normalized report model.
package analyzer

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// VulnClass identifies a vulnerability class. The paper's phpSAFE detects
// Cross-Site Scripting and SQL Injection (§III).
type VulnClass int

// Vulnerability classes. XSS and SQLi are the paper's evaluated classes
// (§III); CmdInjection and FileInclusion extend the coverage along the
// paper's §VI future work ("improvement of phpSAFE, mainly regarding ...
// vulnerability coverage").
const (
	// XSS is Cross-Site Scripting: tainted data reaching an HTML output
	// sink.
	XSS VulnClass = iota + 1
	// SQLi is SQL Injection: tainted data reaching a query sink.
	SQLi
	// CmdInjection is OS command injection: tainted data reaching a
	// shell-execution sink (system, exec, backticks).
	CmdInjection
	// FileInclusion is local/remote file inclusion: tainted data used as
	// an include/require path.
	FileInclusion
	// CodeEval is dynamic code evaluation / remote code execution:
	// tainted data reaching an eval-like sink (assert, create_function).
	CodeEval
	// PathTraversal is directory traversal: tainted data used as a
	// filesystem path in a read/write/delete operation.
	PathTraversal
	// OpenRedirect is an open redirect: tainted data controlling a
	// Location header or redirect target.
	OpenRedirect
)

// Classes lists all vulnerability classes in display order.
func Classes() []VulnClass {
	return []VulnClass{XSS, SQLi, CmdInjection, FileInclusion, CodeEval, PathTraversal, OpenRedirect}
}

// String returns the conventional abbreviation.
func (c VulnClass) String() string {
	switch c {
	case XSS:
		return "XSS"
	case SQLi:
		return "SQLi"
	case CmdInjection:
		return "CMDi"
	case FileInclusion:
		return "LFI"
	case CodeEval:
		return "EVAL"
	case PathTraversal:
		return "TRAVERSAL"
	case OpenRedirect:
		return "REDIRECT"
	default:
		return fmt.Sprintf("VulnClass(%d)", int(c))
	}
}

// Slug returns the lower-case identifier used in rule packs and SARIF
// rule IDs.
func (c VulnClass) Slug() string {
	switch c {
	case XSS:
		return "xss"
	case SQLi:
		return "sqli"
	case CmdInjection:
		return "cmdi"
	case FileInclusion:
		return "lfi"
	case CodeEval:
		return "eval"
	case PathTraversal:
		return "traversal"
	case OpenRedirect:
		return "redirect"
	default:
		return fmt.Sprintf("class-%d", int(c))
	}
}

// ParseClassSlug resolves a rule-pack class slug to its VulnClass.
func ParseClassSlug(slug string) (VulnClass, bool) {
	for _, c := range Classes() {
		if c.Slug() == slug {
			return c, true
		}
	}
	return 0, false
}

// CWE returns the class's default CWE identifier (MITRE Common Weakness
// Enumeration); rule packs may override it per sink rule.
func (c VulnClass) CWE() int {
	switch c {
	case XSS:
		return 79
	case SQLi:
		return 89
	case CmdInjection:
		return 78
	case FileInclusion:
		return 98
	case CodeEval:
		return 95
	case PathTraversal:
		return 22
	case OpenRedirect:
		return 601
	default:
		return 0
	}
}

// Severity returns the class's default severity label ("medium",
// "high", "critical"); rule packs may override it per sink rule.
func (c VulnClass) Severity() string {
	switch c {
	case SQLi, CmdInjection, CodeEval, FileInclusion:
		return "critical"
	case XSS, PathTraversal:
		return "high"
	case OpenRedirect:
		return "medium"
	default:
		return "high"
	}
}

// Description returns the one-line rule description used in reports.
func (c VulnClass) Description() string {
	switch c {
	case XSS:
		return "Cross-Site Scripting: attacker data reaches an HTML output sink"
	case SQLi:
		return "SQL Injection: attacker data reaches a query sink"
	case CmdInjection:
		return "Command Injection: attacker data reaches a shell-execution sink"
	case FileInclusion:
		return "File Inclusion: attacker data used as an include path"
	case CodeEval:
		return "Code Injection: attacker data evaluated as PHP code"
	case PathTraversal:
		return "Path Traversal: attacker data used as a filesystem path"
	case OpenRedirect:
		return "Open Redirect: attacker data controls a redirect target"
	default:
		return "Tainted data reaches a sensitive sink"
	}
}

// Vector classifies where the malicious data enters the plugin. It matches
// the paper's Table II input-vector taxonomy (§V.C).
type Vector int

// Input vectors.
const (
	// VectorGET is direct manipulation through $_GET.
	VectorGET Vector = iota + 1
	// VectorPOST is direct manipulation through $_POST.
	VectorPOST
	// VectorCookie is manipulation through $_COOKIE.
	VectorCookie
	// VectorRequest is mixed GET/POST/COOKIE input ($_REQUEST).
	VectorRequest
	// VectorDB is data read back from the database (second-order).
	VectorDB
	// VectorFile is data read from files, functions or arrays — the
	// paper's "unlikely to be easily manipulated" class.
	VectorFile
	// VectorOther covers remaining indirect sources (environment, server
	// variables).
	VectorOther
)

// String returns a short vector name.
func (v Vector) String() string {
	switch v {
	case VectorGET:
		return "GET"
	case VectorPOST:
		return "POST"
	case VectorCookie:
		return "COOKIE"
	case VectorRequest:
		return "POST/GET/COOKIE"
	case VectorDB:
		return "DB"
	case VectorFile:
		return "File/Function/Array"
	case VectorOther:
		return "Other"
	default:
		return fmt.Sprintf("Vector(%d)", int(v))
	}
}

// TableIIRow maps the vector to the row label of the paper's Table II.
// COOKIE and REQUEST vectors share the "POST/GET/COOKIE" row; File and
// Other share "File/Function/Array".
func (v Vector) TableIIRow() string {
	switch v {
	case VectorGET:
		return "GET"
	case VectorPOST:
		return "POST"
	case VectorCookie, VectorRequest:
		return "POST/GET/COOKIE"
	case VectorDB:
		return "DB"
	default:
		return "File/Function/Array"
	}
}

// DirectlyManipulable reports whether an attacker controls the vector
// directly (the paper's root-cause class 1, §V.C): GET, POST and COOKIE
// input.
func (v Vector) DirectlyManipulable() bool {
	switch v {
	case VectorGET, VectorPOST, VectorCookie, VectorRequest:
		return true
	default:
		return false
	}
}

// TraceStep is one hop of a tainted data flow, from the source toward the
// sink. phpSAFE's results-processing stage exposes this flow "from
// variable to variable" (§III.D).
type TraceStep struct {
	// File is the source file of this hop.
	File string `json:"file"`
	// Line is the 1-based line of this hop.
	Line int `json:"line"`
	// Var is the variable (or property, or function return) holding the
	// tainted value at this hop.
	Var string `json:"var"`
	// Note describes the hop (e.g. "source $_GET", "assigned", "returned
	// from get_name", "sanitized by esc_html reverted by stripslashes").
	Note string `json:"note"`
}

// Finding is one reported vulnerability.
type Finding struct {
	// Tool is the reporting tool's name.
	Tool string `json:"tool"`
	// File is the path of the file containing the sink.
	File string `json:"file"`
	// Line is the sink's 1-based line.
	Line int `json:"line"`
	// Class is the vulnerability class.
	Class VulnClass `json:"class"`
	// Sink is the sink function or construct (echo, mysql_query, ...).
	Sink string `json:"sink"`
	// Variable is the vulnerable variable reaching the sink, when known.
	Variable string `json:"variable,omitempty"`
	// Vector is the input vector the taint entered through.
	Vector Vector `json:"vector"`
	// CWE is the finding's Common Weakness Enumeration identifier. Zero
	// means unset; readers should fall back to Class.CWE().
	CWE int `json:"cwe,omitempty"`
	// Severity is the finding's severity label ("medium", "high",
	// "critical"). Empty means unset; readers should fall back to
	// Class.Severity().
	Severity string `json:"severity,omitempty"`
	// Trace is the data-flow path from source to sink, oldest first.
	Trace []TraceStep `json:"trace,omitempty"`
}

// EffectiveCWE returns the finding's CWE, defaulting to the class CWE.
func (f Finding) EffectiveCWE() int {
	if f.CWE != 0 {
		return f.CWE
	}
	return f.Class.CWE()
}

// EffectiveSeverity returns the finding's severity, defaulting to the
// class severity.
func (f Finding) EffectiveSeverity() string {
	if f.Severity != "" {
		return f.Severity
	}
	return f.Class.Severity()
}

// Key returns a stable identity for deduplication: tools reporting the
// same sink location and class are reporting the same vulnerability.
func (f Finding) Key() string {
	return fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Class)
}

// String renders a one-line summary.
func (f Finding) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s] %s at %s:%d (sink %s", f.Class, f.Vector, f.File, f.Line, f.Sink)
	if f.Variable != "" {
		fmt.Fprintf(&sb, ", var $%s", f.Variable)
	}
	sb.WriteString(")")
	return sb.String()
}

// Result is the outcome of analyzing one target.
type Result struct {
	// Tool is the analyzer's name.
	Tool string `json:"tool"`
	// Target is the analyzed plugin's name.
	Target string `json:"target"`
	// Findings lists the reported vulnerabilities.
	Findings []Finding `json:"findings"`
	// FilesAnalyzed counts files the tool completed.
	FilesAnalyzed int `json:"files_analyzed"`
	// FilesFailed lists files the tool could not analyze (robustness,
	// paper §V.E).
	FilesFailed []string `json:"files_failed,omitempty"`
	// Errors lists error messages the tool raised while analyzing.
	Errors []string `json:"errors,omitempty"`
	// LinesAnalyzed counts source lines in completed files.
	LinesAnalyzed int `json:"lines_analyzed"`
	// Truncated marks a scan that stopped early because a resource
	// budget was exhausted. The findings gathered up to that point are
	// valid; completeness is not guaranteed.
	Truncated bool `json:"truncated,omitempty"`
	// TruncatedBy lists the exhausted budget dimensions ("deadline",
	// "steps", "findings", ...), first exhaustion first.
	TruncatedBy []string `json:"truncated_by,omitempty"`
	// RobustnessFailures lists files whose analysis panicked and was
	// isolated (crash-grade FilesFailed entries).
	RobustnessFailures []RobustnessFailure `json:"robustness_failures,omitempty"`
}

// MarkTruncated flags the result as truncated by the given dimension,
// keeping TruncatedBy duplicate-free.
func (r *Result) MarkTruncated(dim string) {
	r.Truncated = true
	for _, d := range r.TruncatedBy {
		if d == dim {
			return
		}
	}
	r.TruncatedBy = append(r.TruncatedBy, dim)
}

// Merge appends other's counters and findings into r.
func (r *Result) Merge(other *Result) {
	if other == nil {
		return
	}
	r.Findings = append(r.Findings, other.Findings...)
	r.FilesAnalyzed += other.FilesAnalyzed
	r.FilesFailed = append(r.FilesFailed, other.FilesFailed...)
	r.Errors = append(r.Errors, other.Errors...)
	r.LinesAnalyzed += other.LinesAnalyzed
	for _, dim := range other.TruncatedBy {
		r.MarkTruncated(dim)
	}
	if other.Truncated {
		r.Truncated = true
	}
	r.RobustnessFailures = append(r.RobustnessFailures, other.RobustnessFailures...)
}

// Dedup removes duplicate findings (same key), keeping the first
// occurrence, and sorts findings by file, line and class for stable
// output.
func (r *Result) Dedup() {
	seen := make(map[string]bool, len(r.Findings))
	out := r.Findings[:0]
	for _, f := range r.Findings {
		k := f.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	r.Findings = out
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Class < b.Class
	})
}

// SourceFile is one PHP file of a target.
type SourceFile struct {
	// Path is the file's path relative to the plugin root.
	Path string
	// Content is the PHP source text.
	Content string
}

// Target is one analyzable unit: a plugin with its files.
type Target struct {
	// Name identifies the plugin (e.g. "mail-subscribe-list").
	Name string
	// Files are the plugin's PHP files.
	Files []SourceFile
}

// Lines returns the total number of source lines across all files.
func (t *Target) Lines() int {
	total := 0
	for _, f := range t.Files {
		total += strings.Count(f.Content, "\n") + 1
	}
	return total
}

// File returns the file with the given path and whether it exists.
func (t *Target) File(path string) (SourceFile, bool) {
	for _, f := range t.Files {
		if f.Path == path {
			return f, true
		}
	}
	return SourceFile{}, false
}

// Analyzer is a static vulnerability analysis tool. The contract is
// context-first: every scan observes a context and resource budgets.
// Implementations must be safe for concurrent use by multiple
// goroutines on distinct targets.
//
// AnalyzeContext returns a non-nil partial Result whenever any file
// was processed, even alongside a non-nil error. Context cancellation
// (or expiry) is the only budget reported as an error — the returned
// error wraps ctx.Err() and the partial result is still valid. All
// other exhausted budgets degrade: the scan stops early, the Result
// carries Truncated/TruncatedBy, and the error is nil. Per-file
// problems are recorded in the Result, never returned as errors
// (robustness requirement, paper §IV.A).
//
// The engines in this repository additionally provide a concrete
// Analyze(target) convenience method (background context, default
// budgets); it is deliberately not part of the interface.
type Analyzer interface {
	// Name returns the tool's display name.
	Name() string
	// AnalyzeContext scans one target under ctx and the given resource
	// budgets (nil opts means defaults).
	AnalyzeContext(ctx context.Context, t *Target, opts *ScanOptions) (*Result, error)
}
