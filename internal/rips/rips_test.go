package rips

import (
	"testing"

	"repro/internal/analyzer"
)

// scan runs the default RIPS engine over one file.
func scan(t *testing.T, src string) *analyzer.Result {
	t.Helper()
	res, err := NewDefault().Analyze(&analyzer.Target{
		Name:  "test-plugin",
		Files: []analyzer.SourceFile{{Path: "plugin.php", Content: src}},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// count tallies findings per class.
func count(res *analyzer.Result) (xss, sqli int) {
	for _, f := range res.Findings {
		switch f.Class {
		case analyzer.XSS:
			xss++
		case analyzer.SQLi:
			sqli++
		}
	}
	return xss, sqli
}

func want(t *testing.T, res *analyzer.Result, xss, sqli int) {
	t.Helper()
	gx, gs := count(res)
	if gx != xss || gs != sqli {
		t.Fatalf("XSS=%d SQLi=%d, want XSS=%d SQLi=%d\n%v", gx, gs, xss, sqli, res.Findings)
	}
}

func TestBackwardDirectGET(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php echo $_GET['q'];`)
	want(t, res, 1, 0)
	if res.Findings[0].Vector != analyzer.VectorGET {
		t.Errorf("vector = %v, want GET", res.Findings[0].Vector)
	}
}

func TestBackwardThroughAssignments(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$a = $_POST['x'];
$b = "prefix " . $a;
echo $b;`)
	want(t, res, 1, 0)
}

func TestBackwardOverwriteKillsTaint(t *testing.T) {
	t.Parallel()
	// Flow-sensitivity: the nearest definition wins on the backward walk.
	res := scan(t, `<?php
$a = $_GET['x'];
$a = 'safe';
echo $a;`)
	want(t, res, 0, 0)
}

func TestBackwardConcatKeepsEarlierTaint(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$out = $_GET['x'];
$out .= ' more';
echo $out;`)
	want(t, res, 1, 0)
}

func TestSanitizerStopsTrace(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
echo htmlspecialchars($_GET['a']);
$n = intval($_GET['b']);
echo $n;`)
	want(t, res, 0, 0)
}

func TestNoOOPVisibility(t *testing.T) {
	t.Parallel()
	// The paper's central comparison point (§II, §V.A): RIPS misses
	// every WordPress-object flow.
	res := scan(t, `<?php
global $wpdb;
$rows = $wpdb->get_results("SELECT * FROM t");
foreach ($rows as $row) { echo $row->name; }
$wpdb->query("DELETE FROM t WHERE id=" . $_GET['id']);`)
	want(t, res, 0, 0)
}

func TestNoWordPressSanitizerKnowledge(t *testing.T) {
	t.Parallel()
	// esc_html is unknown to RIPS → pass-through → false positive. This
	// drives RIPS's FP column in Table I.
	res := scan(t, `<?php echo esc_html($_GET['name']);`)
	want(t, res, 1, 0)
}

func TestNoWordPressSourceKnowledge(t *testing.T) {
	t.Parallel()
	// get_option is unknown → RIPS sees no source (false negative).
	res := scan(t, `<?php
$v = get_option('x');
echo $v;`)
	want(t, res, 0, 0)
}

func TestGuardSimulationAvoidsFP(t *testing.T) {
	t.Parallel()
	// RIPS simulates is_numeric (phpSAFE does not — §V.A FP source).
	res := scan(t, `<?php
$id = $_GET['id'];
if (!is_numeric($id)) { die('bad'); }
echo $id;`)
	want(t, res, 0, 0)
}

func TestPregReplaceWhitelistSimulation(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$slug = preg_replace('/[^a-z0-9_]/', '', $_GET['slug']);
echo $slug;`)
	want(t, res, 0, 0)

	// A non-whitelist replacement is not sanitizing.
	res2 := scan(t, `<?php
$s = preg_replace('/foo/', 'bar', $_GET['x']);
echo $s;`)
	want(t, res2, 1, 0)
}

func TestSQLiSink(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$id = $_REQUEST['id'];
mysql_query("SELECT * FROM t WHERE id=$id");`)
	want(t, res, 0, 1)
}

func TestInterproceduralParam(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function show($m) { echo $m; }
show($_GET['m']);`)
	want(t, res, 1, 0)
}

func TestInterproceduralReturn(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function grab() { return $_POST['v']; }
$x = grab();
echo $x;`)
	want(t, res, 1, 0)
}

func TestUncalledFunctionAnalyzed(t *testing.T) {
	t.Parallel()
	// §V.A: RIPS, like phpSAFE, detects vulnerabilities in functions not
	// called from the plugin code.
	res := scan(t, `<?php
add_action('init', 'my_hook');
function my_hook() { echo $_GET['x']; }`)
	want(t, res, 1, 0)
}

func TestParamSafeAtAllSites(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function show($m) { echo $m; }
show('static text');`)
	want(t, res, 0, 0)
}

func TestDBFunctionSource(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$r = mysql_query("SELECT * FROM t");
$row = mysql_fetch_assoc($r);
echo $row['name'];`)
	want(t, res, 1, 0)
	if res.Findings[0].Vector != analyzer.VectorDB {
		t.Errorf("vector = %v, want DB", res.Findings[0].Vector)
	}
}

func TestRecursiveFunctionTerminates(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function r($n) { return r($n - 1); }
echo r($_GET['x']);`)
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestMutualRecursionTerminates(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function a($x) { return b($x); }
function b($x) { return a($x); }
echo a($_GET['x']);`)
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestRevertNotModeled(t *testing.T) {
	t.Parallel()
	// RIPS's backward slicing stops at the addslashes sanitizer; it does
	// not model the stripslashes revert that phpSAFE catches (§III.A).
	res := scan(t, `<?php
$x = addslashes($_GET['x']);
$y = stripslashes($x);
mysql_query("SELECT * FROM t WHERE a='$y'");`)
	want(t, res, 0, 0)
}

func TestMultiFileIndependence(t *testing.T) {
	t.Parallel()
	res, err := NewDefault().Analyze(&analyzer.Target{
		Name: "multi",
		Files: []analyzer.SourceFile{
			{Path: "a.php", Content: `<?php echo $_GET['a'];`},
			{Path: "b.php", Content: `<?php echo $_GET['b'];`},
		},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	want(t, res, 2, 0)
	if res.FilesAnalyzed != 2 {
		t.Errorf("FilesAnalyzed = %d, want 2", res.FilesAnalyzed)
	}
}

func TestCrossFileFunctionResolution(t *testing.T) {
	t.Parallel()
	// Functions resolve target-wide even without include processing.
	res, err := NewDefault().Analyze(&analyzer.Target{
		Name: "multi",
		Files: []analyzer.SourceFile{
			{Path: "lib.php", Content: `<?php function put($s) { echo $s; }`},
			{Path: "main.php", Content: `<?php put($_GET['x']);`},
		},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	want(t, res, 1, 0)
}
