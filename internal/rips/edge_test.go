package rips

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analyzer"
)

// Additional RIPS backward-slicing coverage.

func TestBackwardThroughTernary(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$v = $flag ? $_GET['a'] : 'safe';
echo $v;`)
	want(t, res, 1, 0)
}

func TestBackwardThroughForeach(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$rows = $_POST['rows'];
foreach ($rows as $r) {
	echo $r;
}`)
	want(t, res, 1, 0)
}

func TestBackwardCastStops(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$n = (int) $_GET['n'];
echo $n;`)
	want(t, res, 0, 0)
}

func TestBackwardArithmeticStops(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$n = $_GET['n'] + 1;
echo $n;`)
	want(t, res, 0, 0)
}

func TestBackwardInterpolatedString(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$id = $_REQUEST['id'];
mysql_query("DELETE FROM t WHERE id=$id");`)
	want(t, res, 0, 1)
}

func TestBackwardHeredoc(t *testing.T) {
	t.Parallel()
	src := "<?php\n$w = $_GET['w'];\n$sql = <<<S\nSELECT * FROM t WHERE a='$w'\nS;\nmysql_query($sql);\n"
	res := scan(t, src)
	want(t, res, 0, 1)
}

func TestUnsetStopsTrace(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$x = $_GET['x'];
unset($x);
echo $x;`)
	want(t, res, 0, 0)
}

func TestGuardOnlyCoversNamedVariable(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$a = $_GET['a'];
$b = $_GET['b'];
if (!is_numeric($a)) { die(); }
echo $a;
echo $b;`)
	// $a is guarded, $b is not.
	want(t, res, 1, 0)
}

func TestArgumentEvaluationSinksInsideCalls(t *testing.T) {
	t.Parallel()
	// A sink used as an argument expression still triggers.
	res := scan(t, `<?php
my_log(print($_GET['x']));`)
	want(t, res, 1, 0)
}

func TestMultipleCallSitesAnyTainted(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
function show($m) { echo $m; }
show('safe one');
show('safe two');
show($_COOKIE['c']);`)
	want(t, res, 1, 0)
	if res.Findings[0].Vector != analyzer.VectorCookie {
		t.Errorf("vector = %v, want Cookie", res.Findings[0].Vector)
	}
}

func TestExitAndVarDumpSinks(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
die($_GET['msg']);
var_dump($_POST['v']);`)
	want(t, res, 2, 0)
}

func TestClosureBodySinks(t *testing.T) {
	t.Parallel()
	// RIPS flattens closure bodies into the surrounding flow.
	res := scan(t, `<?php
add_action('init', function () {
	echo $_GET['q'];
});`)
	want(t, res, 1, 0)
}

func TestDynamicCallArgsTraced(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
$fn = 'htmlspecialchars';
echo $fn($_GET['x']);`)
	// RIPS cannot resolve the dynamic name and conservatively keeps the
	// argument taint: a known (and faithful) false positive source.
	want(t, res, 1, 0)
}

func TestDeepRecursionBounded(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	sb.WriteString("<?php\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "function g%d($x) { return g%d($x); }\n", i, i+1)
	}
	sb.WriteString("function g40($x) { return $x; }\n")
	sb.WriteString("echo g0($_GET['x']);\n")
	res := scan(t, sb.String())
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestWhitelistPatternRecognizer(t *testing.T) {
	t.Parallel()
	tests := []struct {
		pattern     string
		replacement string
		safe        bool
	}{
		{`/[^a-z0-9]/`, ``, true},
		{`/[^a-zA-Z0-9_\-]/i`, ``, true},
		{`/[^a-z<>]/`, ``, false}, // allows angle brackets through
		{`/foo/`, ``, false},      // not a whitelist
		{`/[^a-z]/`, `X`, false},  // non-empty replacement
	}
	for _, tt := range tests {
		src := fmt.Sprintf(`<?php
$c = preg_replace('%s', '%s', $_GET['x']);
echo $c;`, tt.pattern, tt.replacement)
		res := scan(t, src)
		got := len(res.Findings) == 0
		if got != tt.safe {
			t.Errorf("pattern %q repl %q: safe = %v, want %v",
				tt.pattern, tt.replacement, got, tt.safe)
		}
	}
}

// TestQuickRIPSNeverPanics exercises robustness on arbitrary inputs.
func TestQuickRIPSNeverPanics(t *testing.T) {
	t.Parallel()
	eng := NewDefault()
	f := func(body string) bool {
		res, err := eng.Analyze(&analyzer.Target{
			Name:  "fuzz",
			Files: []analyzer.SourceFile{{Path: "fuzz.php", Content: "<?php " + body}},
		})
		return err == nil && res != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedClassSinks(t *testing.T) {
	t.Parallel()
	// RIPS's generic configuration covers the extended sink families too
	// (the real tool detects 20 vulnerability types).
	res := scan(t, `<?php
$cmd = $_GET['cmd'];
system("run " . $cmd);`)
	found := false
	for _, f := range res.Findings {
		if f.Class == analyzer.CmdInjection {
			found = true
		}
	}
	if !found {
		t.Fatalf("RIPS should flag the system() sink: %v", res.Findings)
	}
}

func TestEscapeshellargStopsRIPS(t *testing.T) {
	t.Parallel()
	res := scan(t, `<?php
exec("ping " . escapeshellarg($_GET['h']));`)
	for _, f := range res.Findings {
		if f.Class == analyzer.CmdInjection {
			t.Fatalf("escapeshellarg should stop the trace: %v", res.Findings)
		}
	}
}
