package rips

import (
	"repro/internal/analyzer"
	"repro/internal/config"
	"repro/internal/govern"
	"repro/internal/phpast"
)

// maxDepth bounds inter-procedural backward tracing.
const maxDepth = 24

// fileAnalysis runs the backward-directed analysis for one file.
type fileAnalysis struct {
	eng   *Engine
	model *model
	res   *analyzer.Result
	// gov carries the scan's budgets into the tracing recursion (nil
	// when ungoverned).
	gov *govern.Governor
}

// taintResult is the outcome of a backward trace.
type taintResult struct {
	tainted bool
	vector  analyzer.Vector
	source  string
}

var clean = taintResult{}

// analyzeFile analyzes a file's top-level flow plus every function
// declared in it (RIPS analyzes uncalled functions too).
func (fa *fileAnalysis) analyzeFile(path string) {
	main := fa.model.topLevel(path)
	fa.analyzeFunc(&ctx{fm: main})
	for _, fm := range fa.model.funcs {
		if fm.file == path {
			fa.analyzeFunc(&ctx{fm: fm})
		}
	}
}

// ctx is a backward-tracing context: a function body plus, when entered
// through a specific call, the binding of its parameters to caller
// argument expressions.
type ctx struct {
	fm    *funcModel
	bind  *binding
	depth int
}

// binding connects a callee's parameters to a particular call site.
type binding struct {
	caller    *ctx
	callerIdx int
	args      []phpast.Expr
}

// analyzeFunc checks every sink event of a context for backward-reachable
// taint.
func (fa *fileAnalysis) analyzeFunc(c *ctx) {
	for i, ev := range c.fm.events {
		fa.gov.Step()
		if fa.gov.Halted() {
			return
		}
		switch ev.kind {
		case evSink:
			if r := fa.traceExpr(c, i, ev.sinkExpr, ev.vuln); r.tainted {
				fa.report(ev, ev.vuln, ev.sinkExpr, r)
			}
		case evCall:
			for _, sink := range fa.eng.sinksOf(ev) {
				for ai, arg := range ev.args {
					if !config.SinkSensitiveArg(sink, ai) {
						continue
					}
					if r := fa.traceExpr(c, i, arg, sink.Vuln); r.tainted {
						fa.report(ev, sink.Vuln, arg, r)
					}
				}
			}
		}
	}
}

// report records one finding.
func (fa *fileAnalysis) report(ev event, vuln analyzer.VulnClass, expr phpast.Expr, r taintResult) {
	varName := ""
	if base, ok := baseVarDeep(expr); ok {
		varName = base
	}
	fa.res.Findings = append(fa.res.Findings, analyzer.Finding{
		Tool:     fa.eng.Name(),
		File:     ev.file,
		Line:     ev.line,
		Class:    vuln,
		Sink:     sinkName(ev),
		Variable: varName,
		Vector:   r.vector,
		Trace: []analyzer.TraceStep{
			{File: ev.file, Line: ev.line, Var: "$" + varName,
				Note: "backward trace to " + r.source},
		},
	})
	fa.gov.CheckFindings(len(fa.res.Findings))
}

// sinkName renders the sink label of an event.
func sinkName(ev event) string {
	if ev.kind == evCall {
		return ev.callee
	}
	return ev.sink
}

// baseVarDeep finds a variable name anywhere in an expression for
// reporting purposes.
func baseVarDeep(e phpast.Expr) (string, bool) {
	found := ""
	phpast.Inspect(e, func(n phpast.Node) bool {
		if v, ok := n.(*phpast.Var); ok && found == "" {
			found = v.Name
			return false
		}
		return true
	})
	return found, found != ""
}

// traceExpr decides whether expr can carry taint of the given class at
// event index idx of context c.
func (fa *fileAnalysis) traceExpr(c *ctx, idx int, e phpast.Expr, class analyzer.VulnClass) taintResult {
	if c.depth > maxDepth {
		return clean
	}
	fa.gov.Step()
	if fa.gov.Halted() {
		return clean
	}
	switch x := e.(type) {
	case nil:
		return clean

	case *phpast.Var:
		return fa.traceVar(c, idx, x.Name, class, make(map[string]bool))

	case *phpast.IndexFetch:
		return fa.traceExpr(c, idx, x.Base, class)

	case *phpast.Literal, *phpast.ConstFetch, *phpast.ClassConstFetch,
		*phpast.IssetExpr, *phpast.EmptyExpr, *phpast.InstanceOf:
		return clean

	case *phpast.InterpString:
		for _, p := range x.Parts {
			if r := fa.traceExpr(c, idx, p, class); r.tainted {
				return r
			}
		}
		return clean

	case *phpast.Binary:
		switch x.Op {
		case ".":
			if r := fa.traceExpr(c, idx, x.L, class); r.tainted {
				return r
			}
			return fa.traceExpr(c, idx, x.R, class)
		default:
			return clean // arithmetic and comparisons cannot carry payloads
		}

	case *phpast.Unary:
		if x.Op == "@" {
			return fa.traceExpr(c, idx, x.X, class)
		}
		return clean

	case *phpast.Ternary:
		if x.Then != nil {
			if r := fa.traceExpr(c, idx, x.Then, class); r.tainted {
				return r
			}
		} else if r := fa.traceExpr(c, idx, x.Cond, class); r.tainted {
			return r
		}
		return fa.traceExpr(c, idx, x.Else, class)

	case *phpast.Cast:
		switch x.Type {
		case "int", "float", "bool", "unset":
			return clean
		default:
			return fa.traceExpr(c, idx, x.X, class)
		}

	case *phpast.Assign:
		return fa.traceExpr(c, idx, x.RHS, class)

	case *phpast.ArrayLit:
		for _, it := range x.Items {
			if r := fa.traceExpr(c, idx, it.Value, class); r.tainted {
				return r
			}
		}
		return clean

	case *phpast.FuncCall:
		return fa.traceCall(c, idx, x, class)

	case *phpast.MethodCall, *phpast.PropertyFetch, *phpast.StaticCall,
		*phpast.New, *phpast.StaticPropertyFetch, *phpast.CloneExpr:
		// RIPS does not parse PHP objects (§II): encapsulated data flow
		// is invisible, producing its OOP false negatives.
		return clean

	default:
		return clean
	}
}

// traceVar walks the event list backwards from idx looking for the
// definition of a variable, honoring guards, assignments, foreach
// bindings, unset and — at function entry — parameter bindings.
func (fa *fileAnalysis) traceVar(c *ctx, idx int, name string,
	class analyzer.VulnClass, visiting map[string]bool) taintResult {

	if src, ok := fa.eng.cfg.Superglobal(name); ok {
		if taintsClass(src.Taints, class) {
			return taintResult{tainted: true, vector: src.Vector, source: "$" + name}
		}
		return clean
	}
	key := c.fm.name + "::" + name
	if visiting[key] {
		return clean
	}
	visiting[key] = true
	defer delete(visiting, key)

	for j := idx - 1; j >= 0; j-- {
		ev := c.fm.events[j]
		switch ev.kind {
		case evGuard:
			if ev.guardVar == name {
				// Simulated validation built-in: the variable is numeric
				// below this check.
				return clean
			}
		case evAssign:
			if ev.lhsVar != name {
				continue
			}
			if ev.rhs == nil {
				return clean // unset
			}
			r := fa.traceExpr(c, j, ev.rhs, class)
			if r.tainted || !ev.concat {
				return r
			}
			// ".=": earlier pieces may still be tainted; keep scanning.
		case evForeach:
			if ev.lhsVar == name {
				return fa.traceExpr(c, j, ev.collExpr, class)
			}
		}
	}

	// Function entry: parameter?
	for pi, p := range c.fm.params {
		if p.Name != name {
			continue
		}
		if c.bind != nil {
			if pi < len(c.bind.args) {
				return fa.traceExpr(c.bind.caller, c.bind.callerIdx, c.bind.args[pi], class)
			}
			return clean
		}
		// Unbound: check every known call site of this function.
		return fa.traceParamAllSites(c, pi, class)
	}
	return clean
}

// traceParamAllSites checks whether any call site passes taint into
// parameter pi of the context's function.
func (fa *fileAnalysis) traceParamAllSites(c *ctx, pi int, class analyzer.VulnClass) taintResult {
	if c.depth >= maxDepth {
		return clean
	}
	for _, site := range fa.model.callSites[c.fm.name] {
		if site.fn == c.fm {
			continue // direct recursion
		}
		if pi >= len(site.args) {
			continue
		}
		caller := &ctx{fm: site.fn, depth: c.depth + 1}
		if r := fa.traceExpr(caller, site.index, site.args[pi], class); r.tainted {
			return r
		}
	}
	return clean
}

// traceCall decides the taint of a function call's return value.
func (fa *fileAnalysis) traceCall(c *ctx, idx int, x *phpast.FuncCall, class analyzer.VulnClass) taintResult {
	if x.NameExpr != nil {
		// Dynamic call: conservative pass-through of arguments.
		for _, a := range x.Args {
			if r := fa.traceExpr(c, idx, a.Value, class); r.tainted {
				return r
			}
		}
		return clean
	}
	name := x.Name
	cfg := fa.eng.cfg

	// Simulated built-in sanitizers.
	if classes, ok := cfg.FunctionSanitizer(name); ok {
		if containsClass(classes, class) {
			return clean
		}
		for _, a := range x.Args {
			if r := fa.traceExpr(c, idx, a.Value, class); r.tainted {
				return r
			}
		}
		return clean
	}

	// preg_replace simulation: a restrictive whitelist pattern with an
	// empty replacement is recognized as sanitizing (RIPS's precise
	// built-in simulation; phpSAFE lacks this and false-positives here).
	if name == "preg_replace" && len(x.Args) >= 3 {
		if isWhitelistPattern(x.Args[0].Value, x.Args[1].Value) {
			return clean
		}
		return fa.traceExpr(c, idx, x.Args[2].Value, class)
	}

	// Sources.
	if src, ok := cfg.FunctionSource(name); ok {
		if taintsClass(src.Taints, class) {
			return taintResult{tainted: true, vector: src.Vector, source: name + "()"}
		}
		return clean
	}

	// User-defined function: trace its return statements with parameters
	// bound to this call's arguments.
	if fm, ok := fa.model.funcs[name]; ok && c.depth < maxDepth {
		callee := &ctx{
			fm:    fm,
			bind:  &binding{caller: c, callerIdx: idx, args: argExprsFromCall(x)},
			depth: c.depth + 1,
		}
		for _, ri := range fm.returns {
			ev := fm.events[ri]
			if r := fa.traceExpr(callee, ri, ev.rhs, class); r.tainted {
				return r
			}
		}
		return clean
	}

	// Unknown function (including every CMS framework function — RIPS has
	// no WordPress knowledge): conservative argument pass-through. This
	// is what makes esc_html(...) a RIPS false positive.
	for _, a := range x.Args {
		if r := fa.traceExpr(c, idx, a.Value, class); r.tainted {
			return r
		}
	}
	return clean
}

// argExprsFromCall extracts argument expressions of a call node.
func argExprsFromCall(x *phpast.FuncCall) []phpast.Expr {
	out := make([]phpast.Expr, len(x.Args))
	for i, a := range x.Args {
		out[i] = a.Value
	}
	return out
}

// isWhitelistPattern recognizes preg_replace('/[^...]/', ”, $x) style
// character-class whitelists that strip every dangerous character.
func isWhitelistPattern(pattern, replacement phpast.Expr) bool {
	p, ok := pattern.(*phpast.Literal)
	if !ok || p.Kind != phpast.LitString {
		return false
	}
	r, ok := replacement.(*phpast.Literal)
	if !ok || r.Kind != phpast.LitString || r.Value != "" {
		return false
	}
	// Pattern shaped like /[^ ... ]/flags with no dangerous characters
	// allowed through ("<", ">", "'", quotes).
	v := p.Value
	if len(v) < 5 {
		return false
	}
	delim := v[0]
	end := -1
	for i := len(v) - 1; i > 0; i-- {
		if v[i] == delim {
			end = i
			break
		}
	}
	if end <= 1 {
		return false
	}
	v = v[1:end] // the pattern body between the delimiters
	if len(v) < 3 || v[0] != '[' || v[1] != '^' || v[len(v)-1] != ']' {
		return false
	}
	allowed := v[2 : len(v)-1]
	for _, bad := range "<>'\"&" {
		for _, a := range allowed {
			if a == bad {
				return false
			}
		}
	}
	return true
}

// taintsClass reports whether a source's class list covers class (empty
// means all).
func taintsClass(cs []analyzer.VulnClass, class analyzer.VulnClass) bool {
	if len(cs) == 0 {
		return true
	}
	return containsClass(cs, class)
}

// containsClass reports membership.
func containsClass(cs []analyzer.VulnClass, class analyzer.VulnClass) bool {
	for _, c := range cs {
		if c == class {
			return true
		}
	}
	return false
}
